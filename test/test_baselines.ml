(* The comparison schemes: SIFF routers/hosts, pushback's allocation and
   identification machinery, and the plain-Internet glue. *)

let src = Wire.Addr.of_int 0x0a000001
let dst = Wire.Addr.of_int 0xc0a80001

(* --- SIFF router ---------------------------------------------------------- *)

let siff_marking_deterministic () =
  let sim = Sim.create () in
  let r = Siff.Router.create ~secret_master:"s" ~router_id:1 ~sim () in
  Alcotest.(check int) "stable" (Siff.Router.marking_bits r ~now:1. ~src ~dst)
    (Siff.Router.marking_bits r ~now:2. ~src ~dst)

let siff_marking_is_two_bits () =
  let sim = Sim.create () in
  let r = Siff.Router.create ~secret_master:"s" ~router_id:1 ~sim () in
  for i = 0 to 50 do
    let b = Siff.Router.marking_bits r ~now:1. ~src:(Wire.Addr.of_int i) ~dst in
    if b < 0 || b > 3 then Alcotest.failf "marking %d out of 2-bit range" b
  done

let siff_marking_rotates () =
  let sim = Sim.create () in
  let r = Siff.Router.create ~rotation_period:3. ~secret_master:"s" ~router_id:1 ~sim () in
  (* Across many (src,dst) pairs, markings in epoch 0 and epoch 2 must
     differ somewhere (2-bit values collide often, so check in bulk). *)
  let differs = ref false in
  for i = 0 to 63 do
    let a = Siff.Router.marking_bits r ~now:1. ~src:(Wire.Addr.of_int i) ~dst in
    let b = Siff.Router.marking_bits r ~now:7. ~src:(Wire.Addr.of_int i) ~dst in
    if a <> b then differs := true
  done;
  Alcotest.(check bool) "rotation changes markings" true !differs

let siff_sim () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let sink _node ~in_link:_ _p = () in
  let a = Net.add_node ~addr:src ~name:"a" net sink in
  let r = Net.add_node ~name:"r" net sink in
  let b = Net.add_node ~addr:dst ~name:"b" net sink in
  let connect x y =
    ignore
      (Net.duplex net x y ~bandwidth_bps:10e6 ~delay:0.001 ~qdisc:(fun () ->
           Siff.Router.make_qdisc ~bandwidth_bps:10e6))
  in
  connect a r;
  connect r b;
  Net.compute_routes net;
  let router = Siff.Router.create ~rotation_period:3. ~secret_master:"s" ~router_id:7 ~sim () in
  Net.set_handler r (Siff.Router.handler router);
  (sim, net, a, b, router)

let siff_exp_collects_markings () =
  let sim, _net, a, b, router = siff_sim () in
  let got = ref None in
  Net.set_handler b (fun _ ~in_link:_ p -> got := p.Wire.Packet.siff);
  let siff = Wire.Siff_marking.exp_packet () in
  Net.originate a (Wire.Packet.make ~siff ~src ~dst ~created:0. (Wire.Packet.Raw 100));
  Sim.run sim;
  match !got with
  | Some m ->
      Alcotest.(check (option int)) "router marked"
        (Some (Siff.Router.marking_bits router ~now:0. ~src ~dst))
        (Wire.Siff_marking.marking_of m ~router:7)
  | None -> Alcotest.fail "explorer lost"

let siff_valid_dta_passes_invalid_dropped () =
  let sim, _net, a, b, router = siff_sim () in
  let delivered = ref 0 in
  Net.set_handler b (fun _ ~in_link:_ _ -> incr delivered);
  let good = Siff.Router.marking_bits router ~now:0. ~src ~dst in
  let siff = Wire.Siff_marking.dta ~markings:[ (7, good) ] in
  Net.originate a (Wire.Packet.make ~siff ~src ~dst ~created:0. (Wire.Packet.Raw 100));
  Sim.run sim;
  Alcotest.(check int) "valid delivered" 1 !delivered;
  let bad = Wire.Siff_marking.dta ~markings:[ (7, (good + 1) land 3) ] in
  Net.originate a (Wire.Packet.make ~siff:bad ~src ~dst ~created:(Sim.now sim) (Wire.Packet.Raw 100));
  Sim.run sim;
  Alcotest.(check int) "invalid dropped" 1 !delivered;
  Alcotest.(check int) "drop counted" 1 (Siff.Router.dropped_dta router)

let siff_stale_marking_dies_after_two_epochs () =
  let sim, _net, a, b, router = siff_sim () in
  let delivered = ref 0 in
  Net.set_handler b (fun _ ~in_link:_ _ -> incr delivered);
  let good = Siff.Router.marking_bits router ~now:0. ~src ~dst in
  (* Advance two 3 s epochs; the old marking should no longer verify
     (unless the 2-bit value collides by chance — pick a pair for which it
     does not). *)
  ignore (Sim.schedule_at sim ~time:7. (fun () -> ()));
  Sim.run sim;
  let now = Sim.now sim in
  if Siff.Router.marking_bits router ~now ~src ~dst <> good
     && Siff.Router.marking_bits router ~now:(now -. 3.) ~src ~dst <> good then begin
    let siff = Wire.Siff_marking.dta ~markings:[ (7, good) ] in
    Net.originate a (Wire.Packet.make ~siff ~src ~dst ~created:now (Wire.Packet.Raw 100));
    Sim.run sim;
    Alcotest.(check int) "stale dropped" 0 !delivered
  end

let siff_host_handshake_is_explorer () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let sink _node ~in_link:_ _p = () in
  let a = Net.add_node ~addr:src ~name:"a" net sink in
  let b = Net.add_node ~addr:dst ~name:"b" net sink in
  ignore
    (Net.duplex net a b ~bandwidth_bps:10e6 ~delay:0.001 ~qdisc:(fun () ->
         Siff.Router.make_qdisc ~bandwidth_bps:10e6));
  Net.compute_routes net;
  let seen = ref [] in
  Net.set_trace net
    (Some
       (function
       | Net.Transmit (_, p) -> begin
           match p.Wire.Packet.siff with
           | Some m -> seen := m.Wire.Siff_marking.flavor :: !seen
           | None -> ()
         end
       | _ -> ()));
  let host_a = Siff.Host.create ~policy:(Tva.Policy.client ()) ~node:a () in
  let _host_b = Siff.Host.create ~auto_reply:true ~policy:(Tva.Policy.allow_all ()) ~node:b () in
  Siff.Host.send_segment host_a ~dst
    { Wire.Tcp_segment.conn = 1; flags = Wire.Tcp_segment.Syn; seq = 0; ack = 0; payload = 0 };
  Sim.run ~until:1. sim;
  Alcotest.(check bool) "SYN went out as explorer" true
    (List.mem Wire.Siff_marking.Exp !seen)

let siff_host_data_uses_markings () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let sink _node ~in_link:_ _p = () in
  let a = Net.add_node ~addr:src ~name:"a" net sink in
  let r = Net.add_node ~name:"r" net sink in
  let b = Net.add_node ~addr:dst ~name:"b" net sink in
  let connect x y =
    ignore
      (Net.duplex net x y ~bandwidth_bps:10e6 ~delay:0.001 ~qdisc:(fun () ->
           Siff.Router.make_qdisc ~bandwidth_bps:10e6))
  in
  connect a r;
  connect r b;
  Net.compute_routes net;
  let router = Siff.Router.create ~secret_master:"s" ~router_id:99 ~sim () in
  Net.set_handler r (Siff.Router.handler router);
  let host_a = Siff.Host.create ~policy:(Tva.Policy.client ()) ~node:a () in
  let _host_b = Siff.Host.create ~auto_reply:true ~policy:(Tva.Policy.allow_all ()) ~node:b () in
  (* Raw request (EXP) then data: data must carry DTA markings. *)
  Siff.Host.send_raw host_a ~dst ~bytes:64;
  Sim.run ~until:1. sim;
  Alcotest.(check bool) "markings installed" true (Siff.Host.markings_for host_a ~dst <> None);
  let dta_seen = ref false in
  Net.set_trace net
    (Some
       (function
       | Net.Transmit (_, p) -> begin
           match p.Wire.Packet.siff with
           | Some { Wire.Siff_marking.flavor = Wire.Siff_marking.Dta; _ } -> dta_seen := true
           | _ -> ()
         end
       | _ -> ()));
  Siff.Host.send_raw host_a ~dst ~bytes:1000;
  Sim.run ~until:2. sim;
  Alcotest.(check bool) "data is DTA" true !dta_seen

(* --- Pushback -------------------------------------------------------------- *)

let pushback_qdisc_is_fifo_when_unlimited () =
  let sim = Sim.create () in
  let t = Pushback.create ~sim () in
  let q = Pushback.make_qdisc t ~bandwidth_bps:10e6 in
  let p1 = Wire.Packet.make ~src ~dst ~created:0. (Wire.Packet.Raw 100) in
  let p2 = Wire.Packet.make ~src ~dst ~created:0. (Wire.Packet.Raw 100) in
  ignore (Qdisc.enqueue q ~now:0. p1);
  ignore (Qdisc.enqueue q ~now:0. p2);
  (match Qdisc.dequeue_opt q ~now:0. with
  | Some p -> Alcotest.(check int) "fifo" p1.Wire.Packet.id p.Wire.Packet.id
  | None -> Alcotest.fail "empty");
  match Qdisc.dequeue_opt q ~now:0. with
  | Some p -> Alcotest.(check int) "fifo 2" p2.Wire.Packet.id p.Wire.Packet.id
  | None -> Alcotest.fail "empty"

let pushback_engages_and_protects () =
  (* Dumbbell, 10 attackers: within a few control intervals filters exist
     and the bottleneck drop rate falls. *)
  let sim = Sim.create ~seed:5 () in
  let controller = Pushback.create ~interval:0.5 ~sim () in
  let topo =
    Topology.dumbbell ~n_attackers:10
      ~make_qdisc:(fun ~bandwidth_bps -> Pushback.make_qdisc controller ~bandwidth_bps)
      sim
  in
  Pushback.install controller topo.Topology.left;
  Pushback.install controller topo.Topology.right;
  Array.iter
    (fun a ->
      let addr = match Net.node_addr a with Some x -> x | None -> assert false in
      let rec flood () =
        Net.originate a
          (Wire.Packet.make ~src:addr ~dst:Topology.destination_addr ~created:(Sim.now sim)
             (Wire.Packet.Raw 1000));
        (* 2 Mb/s x 10 attackers = twice the bottleneck. *)
        ignore (Sim.schedule sim ~delay:0.004 flood)
      in
      flood ())
    topo.Topology.attackers;
  Sim.run ~until:5. sim;
  Alcotest.(check bool) "filters installed" true (Pushback.active_filters controller > 0);
  (* With the flood clipped, the bottleneck should now be loafing: measure
     fresh drops over one more second. *)
  let stats = (Net.link_qdisc topo.Topology.bottleneck).Qdisc.stats in
  let drops_before = stats.Qdisc.dropped in
  Sim.run ~until:6. sim;
  let new_drops = stats.Qdisc.dropped - drops_before in
  Alcotest.(check bool) (Printf.sprintf "%d drops in final second" new_drops) true (new_drops < 200)

let pushback_releases_after_quiet () =
  let sim = Sim.create ~seed:5 () in
  let controller = Pushback.create ~interval:0.5 ~release_after:2 ~sim () in
  let topo =
    Topology.dumbbell ~n_attackers:5
      ~make_qdisc:(fun ~bandwidth_bps -> Pushback.make_qdisc controller ~bandwidth_bps)
      sim
  in
  Pushback.install controller topo.Topology.left;
  let stop_at = 3.0 in
  Array.iter
    (fun a ->
      let addr = match Net.node_addr a with Some x -> x | None -> assert false in
      let rec flood () =
        if Sim.now sim < stop_at then begin
          Net.originate a
            (Wire.Packet.make ~src:addr ~dst:Topology.destination_addr ~created:(Sim.now sim)
               (Wire.Packet.Raw 1000));
          ignore (Sim.schedule sim ~delay:0.002 flood)
        end
      in
      flood ())
    topo.Topology.attackers;
  Sim.run ~until:2.9 sim;
  Alcotest.(check bool) "filters during attack" true (Pushback.active_filters controller > 0);
  (* Attack ends at t=3; filters must age out within a few intervals once
     the upstream queues drain. *)
  Sim.run ~until:12. sim;
  Alcotest.(check int) "filters released" 0 (Pushback.active_filters controller)

(* --- Internet glue ----------------------------------------------------------- *)

let internet_host_roundtrip () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let sink _node ~in_link:_ _p = () in
  let a = Net.add_node ~addr:src ~name:"a" net sink in
  let b = Net.add_node ~addr:dst ~name:"b" net sink in
  ignore
    (Net.duplex net a b ~bandwidth_bps:10e6 ~delay:0.001 ~qdisc:(fun () ->
         Baseline.Internet.make_qdisc ~bandwidth_bps:10e6));
  Net.compute_routes net;
  let host_a = Baseline.Internet.Host.create ~node:a in
  let host_b = Baseline.Internet.Host.create ~node:b in
  let got = ref None in
  Baseline.Internet.Host.set_segment_handler host_b (fun ~src:from seg -> got := Some (from, seg));
  Baseline.Internet.Host.send_segment host_a ~dst
    { Wire.Tcp_segment.conn = 5; flags = Wire.Tcp_segment.Syn; seq = 0; ack = 0; payload = 0 };
  Sim.run sim;
  match !got with
  | Some (from, seg) ->
      Alcotest.(check bool) "from a" true (Wire.Addr.equal from src);
      Alcotest.(check int) "conn id" 5 seg.Wire.Tcp_segment.conn
  | None -> Alcotest.fail "segment lost"

let suite =
  [
    Alcotest.test_case "siff marking stable" `Quick siff_marking_deterministic;
    Alcotest.test_case "siff marking 2-bit" `Quick siff_marking_is_two_bits;
    Alcotest.test_case "siff marking rotates" `Quick siff_marking_rotates;
    Alcotest.test_case "siff explorer marked" `Quick siff_exp_collects_markings;
    Alcotest.test_case "siff dta verify/drop" `Quick siff_valid_dta_passes_invalid_dropped;
    Alcotest.test_case "siff stale marking" `Quick siff_stale_marking_dies_after_two_epochs;
    Alcotest.test_case "siff handshake explorer" `Quick siff_host_handshake_is_explorer;
    Alcotest.test_case "siff data dta" `Quick siff_host_data_uses_markings;
    Alcotest.test_case "pushback fifo" `Quick pushback_qdisc_is_fifo_when_unlimited;
    Alcotest.test_case "pushback engages" `Quick pushback_engages_and_protects;
    Alcotest.test_case "pushback releases" `Quick pushback_releases_after_quiet;
    Alcotest.test_case "internet host" `Quick internet_host_roundtrip;
  ]
