(* Queueing disciplines: FIFO semantics, DRR fairness, the token-bucket
   request limiter, the Fig. 2 tri-class scheduler, strict priority and
   SFQ collisions. *)

let mk_packet ?(src = 1) ?(dst = 2) ?(bytes = 1000) () =
  Wire.Packet.make ~src:(Wire.Addr.of_int src) ~dst:(Wire.Addr.of_int dst) ~created:0.
    (Wire.Packet.Raw bytes)

(* --- Droptail ----------------------------------------------------------- *)

let droptail_fifo_order () =
  let q = Droptail.create ~capacity_bytes:10_000 () in
  let a = mk_packet () and b = mk_packet () in
  Alcotest.(check bool) "enq a" true (Qdisc.enqueue q ~now:0. a);
  Alcotest.(check bool) "enq b" true (Qdisc.enqueue q ~now:0. b);
  (match Qdisc.dequeue_opt q ~now:0. with
  | Some p -> Alcotest.(check int) "a first" a.Wire.Packet.id p.Wire.Packet.id
  | None -> Alcotest.fail "empty");
  match Qdisc.dequeue_opt q ~now:0. with
  | Some p -> Alcotest.(check int) "b second" b.Wire.Packet.id p.Wire.Packet.id
  | None -> Alcotest.fail "empty"

let droptail_byte_capacity () =
  let q = Droptail.create ~capacity_bytes:2500 () in
  Alcotest.(check bool) "1" true (Qdisc.enqueue q ~now:0. (mk_packet ()));
  Alcotest.(check bool) "2" true (Qdisc.enqueue q ~now:0. (mk_packet ()));
  Alcotest.(check bool) "3 dropped" false (Qdisc.enqueue q ~now:0. (mk_packet ()));
  Alcotest.(check int) "drop counted" 1 q.Qdisc.stats.Qdisc.dropped;
  ignore (Qdisc.dequeue_opt q ~now:0.);
  Alcotest.(check bool) "space after dequeue" true (Qdisc.enqueue q ~now:0. (mk_packet ()))

let droptail_packet_capacity () =
  let q = Droptail.create ~capacity_packets:2 ~capacity_bytes:1_000_000 () in
  Alcotest.(check bool) "1" true (Qdisc.enqueue q ~now:0. (mk_packet ~bytes:40 ()));
  Alcotest.(check bool) "2" true (Qdisc.enqueue q ~now:0. (mk_packet ~bytes:40 ()));
  (* A tiny packet is still rejected once the packet count is reached —
     no small-packet advantage. *)
  Alcotest.(check bool) "3 dropped" false (Qdisc.enqueue q ~now:0. (mk_packet ~bytes:40 ()))

let droptail_counts () =
  let q = Droptail.create ~capacity_bytes:10_000 () in
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ()));
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ~bytes:500 ()));
  Alcotest.(check int) "packets" 2 (Qdisc.packet_count q);
  Alcotest.(check int) "bytes" 1500 (Qdisc.byte_count q);
  Alcotest.(check (float 0.)) "ready now" 0. (Qdisc.next_ready q ~now:0.)

let droptail_empty_next_ready () =
  let q = Droptail.create ~capacity_bytes:1000 () in
  Alcotest.(check bool) "idle" true (Qdisc.next_ready q ~now:0. = infinity)

(* --- DRR ----------------------------------------------------------------- *)

let drr_round_robins_equally () =
  let q = Drr.create ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
  (* Backlog: 10 packets from A, 10 from B. *)
  for _ = 1 to 10 do
    ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:1 ()));
    ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:2 ()))
  done;
  (* Twelve dequeues cover whole DRR rounds: the split must be 6/6 (within
     a round the 1500-byte quantum staggers 1000-byte packets 1-then-2). *)
  let counts = Hashtbl.create 2 in
  for _ = 1 to 12 do
    match Qdisc.dequeue_opt q ~now:0. with
    | Some p ->
        let k = Wire.Addr.to_int p.Wire.Packet.src in
        Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
    | None -> Alcotest.fail "ran dry"
  done;
  Alcotest.(check int) "class A" 6 (Option.value ~default:0 (Hashtbl.find_opt counts 1));
  Alcotest.(check int) "class B" 6 (Option.value ~default:0 (Hashtbl.find_opt counts 2))

let drr_byte_fairness_with_unequal_sizes () =
  (* Class A sends 1500-byte packets, class B 500-byte ones: per round B
     should get ~3 packets for A's 1. *)
  let q = Drr.create ~quantum:1500 ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
  for _ = 1 to 30 do
    ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:1 ~bytes:1500 ()));
    ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:2 ~bytes:500 ()))
  done;
  let bytes = Hashtbl.create 2 in
  for _ = 1 to 24 do
    match Qdisc.dequeue_opt q ~now:0. with
    | Some p ->
        let k = Wire.Addr.to_int p.Wire.Packet.src in
        Hashtbl.replace bytes k
          (Wire.Packet.size p + Option.value ~default:0 (Hashtbl.find_opt bytes k))
    | None -> Alcotest.fail "ran dry"
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt bytes 1) in
  let b = Option.value ~default:0 (Hashtbl.find_opt bytes 2) in
  Alcotest.(check bool)
    (Printf.sprintf "byte shares close (a=%d b=%d)" a b)
    true
    (float_of_int (abs (a - b)) /. float_of_int (a + b) < 0.2)

let drr_starvation_free =
  QCheck.Test.make ~name:"drr: every backlogged class is eventually served" ~count:50
    QCheck.(list_of_size Gen.(int_range 2 50) (int_range 0 7))
    (fun classes ->
      let q = Drr.create ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
      List.iter (fun c -> ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:(c + 1) ()))) classes;
      let served = Hashtbl.create 8 in
      let rec drain () =
        match Qdisc.dequeue_opt q ~now:0. with
        | Some p ->
            Hashtbl.replace served (Wire.Addr.to_int p.Wire.Packet.src) ();
            drain ()
        | None -> ()
      in
      drain ();
      List.for_all (fun c -> Hashtbl.mem served (c + 1)) classes
      && Qdisc.packet_count q = 0)

let drr_respects_per_class_capacity () =
  let q =
    Drr.create ~queue_capacity_bytes:2000 ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) ()
  in
  Alcotest.(check bool) "1" true (Qdisc.enqueue q ~now:0. (mk_packet ~src:1 ()));
  Alcotest.(check bool) "2" true (Qdisc.enqueue q ~now:0. (mk_packet ~src:1 ()));
  Alcotest.(check bool) "class full" false (Qdisc.enqueue q ~now:0. (mk_packet ~src:1 ()));
  Alcotest.(check bool) "other class fine" true (Qdisc.enqueue q ~now:0. (mk_packet ~src:2 ()))

let drr_overflow_class_shares () =
  let q = Drr.create ~max_queues:2 ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
  (* Three distinct classes with a 2-class bound: the third lands in the
     shared overflow queue rather than being dropped. *)
  Alcotest.(check bool) "a" true (Qdisc.enqueue q ~now:0. (mk_packet ~src:1 ()));
  Alcotest.(check bool) "b" true (Qdisc.enqueue q ~now:0. (mk_packet ~src:2 ()));
  Alcotest.(check bool) "c overflows but queues" true (Qdisc.enqueue q ~now:0. (mk_packet ~src:3 ()));
  Alcotest.(check int) "all queued" 3 (Qdisc.packet_count q)

let drr_active_queue_count () =
  let q = Drr.create ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:1 ()));
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:2 ()));
  Alcotest.(check int) "two active" 2 (Drr.active_queues q);
  let rec drain () = match Qdisc.dequeue_opt q ~now:0. with Some _ -> drain () | None -> () in
  drain ();
  Alcotest.(check int) "none active" 0 (Drr.active_queues q)

(* --- Token bucket ---------------------------------------------------------- *)

let token_bucket_limits_rate () =
  let inner = Droptail.create ~capacity_bytes:1_000_000 () in
  (* 80 kb/s = 10 KB/s, 2 KB burst. *)
  let q = Token_bucket.create ~rate_bps:80_000. ~burst_bytes:2000 ~inner () in
  for _ = 1 to 10 do
    ignore (Qdisc.enqueue q ~now:0. (mk_packet ()))
  done;
  (* At t=0 the bucket holds 2 KB: exactly two 1 KB packets. *)
  Alcotest.(check bool) "1st" true (Qdisc.dequeue_opt q ~now:0. <> None);
  Alcotest.(check bool) "2nd" true (Qdisc.dequeue_opt q ~now:0. <> None);
  Alcotest.(check bool) "3rd blocked" true (Qdisc.dequeue_opt q ~now:0. = None);
  (* next_ready points at when the tokens suffice... *)
  let at = Qdisc.next_ready q ~now:0. in
  if at = infinity then Alcotest.fail "no readiness"
  else Alcotest.(check bool) "ready within 0.1s" true (at > 0. && at <= 0.11);
  (* ...and the packet flows once they do. *)
  Alcotest.(check bool) "after refill" true (Qdisc.dequeue_opt q ~now:0.11 <> None)

let token_bucket_long_run_rate () =
  let inner = Droptail.create ~capacity_bytes:10_000_000 () in
  let q = Token_bucket.create ~rate_bps:800_000. ~burst_bytes:2000 ~inner () in
  for _ = 1 to 1000 do
    ignore (Qdisc.enqueue q ~now:0. (mk_packet ()))
  done;
  (* Pull as fast as permitted for 1 simulated second: ~100 packets
     (100 KB/s) plus the burst. *)
  let served = ref 0 in
  let t = ref 0. in
  while !t < 1.0 do
    (match Qdisc.dequeue_opt q ~now:!t with Some _ -> incr served | None -> ());
    t := !t +. 0.001
  done;
  Alcotest.(check bool)
    (Printf.sprintf "served %d ≈ 102" !served)
    true
    (!served >= 95 && !served <= 110)

let token_bucket_passes_stats_through () =
  let inner = Droptail.create ~capacity_bytes:500 () in
  let q = Token_bucket.create ~rate_bps:1e6 ~burst_bytes:10_000 ~inner () in
  Alcotest.(check bool) "fits" true (Qdisc.enqueue q ~now:0. (mk_packet ~bytes:400 ()));
  Alcotest.(check bool) "inner full" false (Qdisc.enqueue q ~now:0. (mk_packet ~bytes:400 ()))

(* --- Priority --------------------------------------------------------------- *)

let priority_serves_high_first () =
  let high = Droptail.create ~capacity_bytes:10_000 () in
  let low = Droptail.create ~capacity_bytes:10_000 () in
  let q =
    Priority.create
      ~classify:(fun p -> if Wire.Addr.to_int p.Wire.Packet.src = 1 then 0 else 1)
      ~classes:[ high; low ] ()
  in
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:2 ()));
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:1 ()));
  (match Qdisc.dequeue_opt q ~now:0. with
  | Some p -> Alcotest.(check int) "high first" 1 (Wire.Addr.to_int p.Wire.Packet.src)
  | None -> Alcotest.fail "empty");
  match Qdisc.dequeue_opt q ~now:0. with
  | Some p -> Alcotest.(check int) "then low" 2 (Wire.Addr.to_int p.Wire.Packet.src)
  | None -> Alcotest.fail "empty"

let priority_clamps_class_index () =
  let a = Droptail.create ~capacity_bytes:10_000 () in
  let b = Droptail.create ~capacity_bytes:10_000 () in
  let q = Priority.create ~classify:(fun _ -> 99) ~classes:[ a; b ] () in
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ()));
  Alcotest.(check int) "landed in last class" 1 (Qdisc.packet_count b)

(* --- Tri-class (Fig. 2) ------------------------------------------------------ *)

let tva_shim kind =
  match kind with
  | `Request -> Wire.Cap_shim.request ()
  | `Regular -> Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:false ()

let tri_class_classifier () =
  let p_legacy = mk_packet () in
  Alcotest.(check bool) "legacy" true (Tri_class.classify_by_shim p_legacy = Tri_class.Legacy);
  let p_req = mk_packet () in
  p_req.Wire.Packet.shim <- Some (tva_shim `Request);
  Alcotest.(check bool) "request" true (Tri_class.classify_by_shim p_req = Tri_class.Request);
  let p_reg = mk_packet () in
  p_reg.Wire.Packet.shim <- Some (tva_shim `Regular);
  Alcotest.(check bool) "regular" true (Tri_class.classify_by_shim p_reg = Tri_class.Regular);
  let p_dem = mk_packet () in
  let shim = tva_shim `Regular in
  shim.Wire.Cap_shim.demoted <- true;
  p_dem.Wire.Packet.shim <- Some shim;
  Alcotest.(check bool) "demoted is legacy" true (Tri_class.classify_by_shim p_dem = Tri_class.Legacy)

let tri_class_legacy_is_lowest_priority () =
  let q = Tva.Qdiscs.make ~params:Tva.Params.default ~bandwidth_bps:10e6 () in
  (* Backlog legacy then regular: regular must come out first. *)
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ()));
  let reg = mk_packet ~src:5 () in
  reg.Wire.Packet.shim <- Some (tva_shim `Regular);
  ignore (Qdisc.enqueue q ~now:0. reg);
  match Qdisc.dequeue_opt q ~now:0. with
  | Some p -> Alcotest.(check bool) "regular first" true (p.Wire.Packet.shim <> None)
  | None -> Alcotest.fail "empty"

let tri_class_requests_rate_limited () =
  let params = { Tva.Params.default with Tva.Params.request_fraction = 0.01; request_burst_bytes = 500 } in
  let q = Tva.Qdiscs.make ~params ~bandwidth_bps:10e6 () in
  (* 1% of 10 Mb/s = 100 kb/s = 12.5 KB/s.  Queue 100 requests of 250 B. *)
  for _ = 1 to 100 do
    let p = mk_packet ~bytes:250 () in
    p.Wire.Packet.shim <- Some (tva_shim `Request);
    (* account for shim size: Raw 250 + shim *)
    ignore (Qdisc.enqueue q ~now:0. p)
  done;
  (* Draining for one second should release roughly rate/size packets, not
     all 100. *)
  let served = ref 0 in
  let t = ref 0. in
  while !t < 1.0 do
    (match Qdisc.dequeue_opt q ~now:!t with Some _ -> incr served | None -> ());
    t := !t +. 0.001
  done;
  Alcotest.(check bool)
    (Printf.sprintf "served %d bounded by limiter" !served)
    true
    (!served > 10 && !served < 70)

let tri_class_regular_unaffected_by_request_backlog () =
  let q = Tva.Qdiscs.make ~params:Tva.Params.default ~bandwidth_bps:10e6 () in
  for _ = 1 to 50 do
    let p = mk_packet ~bytes:250 () in
    p.Wire.Packet.shim <- Some (tva_shim `Request);
    ignore (Qdisc.enqueue q ~now:0. p)
  done;
  let reg = mk_packet () in
  reg.Wire.Packet.shim <- Some (tva_shim `Regular);
  ignore (Qdisc.enqueue q ~now:0. reg);
  (* Drain: the regular packet must appear as soon as the request
     limiter's initial token burst (~16 small requests) is spent, long
     before the 50-request backlog clears on rate. *)
  let found_at = ref None in
  for i = 1 to 25 do
    match Qdisc.dequeue_opt q ~now:0. with
    | Some p ->
        if !found_at = None && Tri_class.classify_by_shim p = Tri_class.Regular then
          found_at := Some i
    | None -> ()
  done;
  match !found_at with
  | Some i -> Alcotest.(check bool) (Printf.sprintf "served at %d" i) true (i <= 20)
  | None -> Alcotest.fail "regular never served"

(* --- DRR differential model --------------------------------------------------- *)

(* Reference model: the pre-ring DRR exactly as it shipped — per-class
   [Stdlib.Queue] FIFOs, an [int Queue.t] round-robin ring, and an option
   current pointer.  The production DRR (ring buffers, pooled class
   records, sentinel dispatch) must agree with it decision-for-decision:
   same accepts/rejects, same service order, same counts — including the
   overflow-key sharing, the [max_queues] boundary, and the quirk that a
   rejected oversized packet still files an empty class record. *)
module Drr_model = struct
  type subqueue = {
    q : Wire.Packet.t Queue.t;
    mutable bytes : int;
    mutable deficit : int;
    mutable active : bool;
  }

  type t = {
    quantum : int;
    queue_capacity : int;
    max_queues : int;
    classify : Wire.Packet.t -> int;
    table : (int, subqueue) Hashtbl.t;
    ring : int Queue.t;
    mutable current : int option;
    mutable packets : int;
    mutable bytes : int;
  }

  let overflow_key = min_int

  let create ~quantum ~queue_capacity ~max_queues ~classify =
    {
      quantum;
      queue_capacity;
      max_queues;
      classify;
      table = Hashtbl.create 16;
      ring = Queue.create ();
      current = None;
      packets = 0;
      bytes = 0;
    }

  let subqueue_of st key =
    match Hashtbl.find_opt st.table key with
    | Some sq -> Some (key, sq)
    | None ->
        if Hashtbl.length st.table >= st.max_queues && key <> overflow_key then None
        else begin
          let sq = { q = Queue.create (); bytes = 0; deficit = 0; active = false } in
          Hashtbl.add st.table key sq;
          Some (key, sq)
        end

  let enqueue st p =
    let size = Wire.Packet.size p in
    let key = st.classify p in
    let slot =
      match subqueue_of st key with Some s -> Some s | None -> subqueue_of st overflow_key
    in
    match slot with
    | None -> false
    | Some (key, sq) ->
        if sq.bytes + size > st.queue_capacity then false
        else begin
          Queue.push p sq.q;
          sq.bytes <- sq.bytes + size;
          st.packets <- st.packets + 1;
          st.bytes <- st.bytes + size;
          if not sq.active then begin
            sq.active <- true;
            sq.deficit <- 0;
            Queue.push key st.ring
          end;
          true
        end

  let rec dequeue st =
    match st.current with
    | None ->
        if Queue.is_empty st.ring then None
        else begin
          let key = Queue.pop st.ring in
          (match Hashtbl.find_opt st.table key with
          | None -> ()
          | Some sq -> sq.deficit <- sq.deficit + st.quantum);
          st.current <- Some key;
          dequeue st
        end
    | Some key -> begin
        match Hashtbl.find_opt st.table key with
        | None ->
            st.current <- None;
            dequeue st
        | Some sq -> begin
            match Queue.peek_opt sq.q with
            | None ->
                Hashtbl.remove st.table key;
                st.current <- None;
                dequeue st
            | Some head ->
                let size = Wire.Packet.size head in
                if size <= sq.deficit then begin
                  let p = Queue.pop sq.q in
                  sq.deficit <- sq.deficit - size;
                  sq.bytes <- sq.bytes - size;
                  st.packets <- st.packets - 1;
                  st.bytes <- st.bytes - size;
                  if Queue.is_empty sq.q then begin
                    Hashtbl.remove st.table key;
                    st.current <- None
                  end;
                  Some p
                end
                else begin
                  Queue.push key st.ring;
                  st.current <- None;
                  dequeue st
                end
          end
      end
end

type drr_op = Enq of int * int | Deq

let drr_op_gen =
  (* Keys 0-5 against max_queues 3 exercises the overflow class; sizes up
     to 2600 against a 2500-byte class capacity exercises rejects,
     including the oversized-first-packet edge. *)
  QCheck.Gen.(
    frequency
      [ (3, map2 (fun k s -> Enq (k, s)) (int_range 0 5) (int_range 100 2600)); (2, return Deq) ])

let drr_op_print = function
  | Enq (k, s) -> Printf.sprintf "Enq(key=%d,%dB)" k s
  | Deq -> "Deq"

let drr_matches_reference_model =
  QCheck.Test.make ~name:"drr: ring-buffer datapath matches the queue-based reference model"
    ~count:300
    (QCheck.make ~print:QCheck.Print.(list drr_op_print) QCheck.Gen.(list_size (int_range 1 200) drr_op_gen))
    (fun ops ->
      let classify p = Wire.Addr.to_int p.Wire.Packet.src in
      let quantum = 1500 and capacity = 2500 and max_queues = 3 in
      let q =
        Drr.create ~quantum ~queue_capacity_bytes:capacity ~max_queues ~classify ()
      in
      let m = Drr_model.create ~quantum ~queue_capacity:capacity ~max_queues ~classify in
      List.for_all
        (fun op ->
          match op with
          | Enq (key, bytes) ->
              let p = mk_packet ~src:key ~bytes () in
              let got = Qdisc.enqueue q ~now:0. p in
              let want = Drr_model.enqueue m p in
              got = want
          | Deq -> begin
              let got = Qdisc.dequeue_opt q ~now:0. in
              let want = Drr_model.dequeue m in
              match (got, want) with
              | None, None -> true
              | Some g, Some w -> g.Wire.Packet.id = w.Wire.Packet.id
              | _ -> false
            end)
        ops
      && Qdisc.packet_count q = m.Drr_model.packets
      && Qdisc.byte_count q = m.Drr_model.bytes)

let drr_overflow_key_is_reachable () =
  (* Once [max_queues] classes are backlogged, further keys all share the
     overflow class: they are FIFO among themselves regardless of key. *)
  let q = Drr.create ~max_queues:2 ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.src) () in
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:1 ()));
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:2 ()));
  let c = mk_packet ~src:3 () and d = mk_packet ~src:4 () in
  ignore (Qdisc.enqueue q ~now:0. c);
  ignore (Qdisc.enqueue q ~now:0. d);
  Alcotest.(check int) "four queued" 4 (Qdisc.packet_count q);
  (* Drain and confirm the two overflow packets come out in arrival order. *)
  let order = ref [] in
  let rec drain () =
    match Qdisc.dequeue_opt q ~now:0. with
    | Some p ->
        order := p.Wire.Packet.id :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  let order = List.rev !order in
  let pos id = Option.get (List.find_index (fun x -> x = id) order) in
  Alcotest.(check bool) "overflow is FIFO" true (pos c.Wire.Packet.id < pos d.Wire.Packet.id)

(* --- Token bucket conformance --------------------------------------------------- *)

let token_bucket_window_conformance =
  (* Over any observation window [t, t+w], a conformant shaper releases at
     most burst + rate*w bytes.  Drive the bucket with a randomized
     dequeue schedule and check every window pair. *)
  QCheck.Test.make ~name:"token bucket: released bytes within burst + rate*w in every window"
    ~count:100
    QCheck.(
      triple (int_range 1 40) (* rate, units of 10 KB/s *)
        (int_range 1500 20_000) (* burst bytes *)
        (list_of_size Gen.(int_range 10 120) (pair (int_range 1 50) (int_range 100 1500))))
    (fun (rate10k, burst, steps) ->
      let rate_bytes = float_of_int rate10k *. 10_000. in
      let inner = Droptail.create ~capacity_bytes:max_int () in
      let q =
        Token_bucket.create ~rate_bps:(rate_bytes *. 8.) ~burst_bytes:burst ~inner ()
      in
      (* Pre-load a deep backlog with varying packet sizes. *)
      List.iter (fun (_, bytes) -> ignore (Qdisc.enqueue q ~now:0. (mk_packet ~bytes ()))) steps;
      for _ = 1 to 100 do
        ignore (Qdisc.enqueue q ~now:0. (mk_packet ~bytes:700 ()))
      done;
      (* Random dequeue schedule: advance time by 0.1-5 ms per step, pull
         until refused. *)
      let releases = ref [] in
      let t = ref 0. in
      List.iter
        (fun (dt_tenth_ms, _) ->
          t := !t +. (float_of_int dt_tenth_ms *. 1e-4);
          let rec pull () =
            match Qdisc.dequeue_opt q ~now:!t with
            | Some p ->
                releases := (!t, Wire.Packet.size p) :: !releases;
                pull ()
            | None -> ()
          in
          pull ())
        steps;
      let releases = Array.of_list (List.rev !releases) in
      let n = Array.length releases in
      let ok = ref true in
      for i = 0 to n - 1 do
        let ti, _ = releases.(i) in
        let bytes = ref 0 in
        for j = i to n - 1 do
          let tj, sz = releases.(j) in
          bytes := !bytes + sz;
          (* 1-byte slack for float rounding in the bound itself; the
             fixed-point bucket only truncates grants, never inflates. *)
          if float_of_int !bytes > float_of_int burst +. (rate_bytes *. (tj -. ti)) +. 1. then
            ok := false
        done
      done;
      !ok)

(* --- SFQ ----------------------------------------------------------------------- *)

let sfq_seed_breaks_collision_set () =
  (* Craft a set of path-ids that all collide under one seed, then check a
     different seed scatters them — the rehash-on-new-secret defense of
     paper Sec. 3.9.  (The old multiplicative hash failed this: bucket
     choice depended on a narrow band of key bits, so a collision set
     survived every seed.) *)
  let buckets = 64 in
  let seed1 = 0x1234 and seed2 = 0x9e3779b9 in
  let target = Sfq.hash ~seed:seed1 ~buckets 1 in
  let colliding = ref [ 1 ] in
  let k = ref 2 in
  while List.length !colliding < 8 do
    if Sfq.hash ~seed:seed1 ~buckets !k = target then colliding := !k :: !colliding;
    incr k
  done;
  let spread seed =
    let tbl = Hashtbl.create 8 in
    List.iter (fun key -> Hashtbl.replace tbl (Sfq.hash ~seed ~buckets key) ()) !colliding;
    Hashtbl.length tbl
  in
  Alcotest.(check int) "collides under seed1" 1 (spread seed1);
  Alcotest.(check bool)
    (Printf.sprintf "seed2 scatters to %d buckets" (spread seed2))
    true
    (spread seed2 >= 4)

let sfq_collisions_share_fate () =
  let buckets = 8 and seed = 3 in
  (* Find two distinct keys that collide. *)
  let k1 = 1 in
  let target = Sfq.hash ~seed ~buckets k1 in
  let k2 =
    let rec find k = if k <> k1 && Sfq.hash ~seed ~buckets k = target then k else find (k + 1) in
    find 2
  in
  let q =
    Sfq.create ~queue_capacity_bytes:2000 ~seed ~buckets
      ~flow_key:(fun p -> Wire.Addr.to_int p.Wire.Packet.src)
      ()
  in
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:k1 ()));
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ~src:k1 ()));
  (* The colliding flow shares the same (full) bucket and is dropped — the
     deliberate-collision crowding the paper warns about (Sec. 3.9). *)
  Alcotest.(check bool) "collision crowded out" false (Qdisc.enqueue q ~now:0. (mk_packet ~src:k2 ()))

let sfq_hash_stable () =
  Alcotest.(check int) "deterministic" (Sfq.hash ~seed:7 ~buckets:16 123)
    (Sfq.hash ~seed:7 ~buckets:16 123)

let sfq_hash_in_range =
  QCheck.Test.make ~name:"sfq: hash lands in a bucket" ~count:500
    QCheck.(pair int (int_range 1 64))
    (fun (key, buckets) ->
      let h = Sfq.hash ~seed:1 ~buckets key in
      h >= 0 && h < buckets)

let suite =
  [
    Alcotest.test_case "droptail fifo" `Quick droptail_fifo_order;
    Alcotest.test_case "droptail bytes" `Quick droptail_byte_capacity;
    Alcotest.test_case "droptail packets" `Quick droptail_packet_capacity;
    Alcotest.test_case "droptail counts" `Quick droptail_counts;
    Alcotest.test_case "droptail idle" `Quick droptail_empty_next_ready;
    Alcotest.test_case "drr equal split" `Quick drr_round_robins_equally;
    Alcotest.test_case "drr byte fairness" `Quick drr_byte_fairness_with_unequal_sizes;
    QCheck_alcotest.to_alcotest drr_starvation_free;
    Alcotest.test_case "drr class capacity" `Quick drr_respects_per_class_capacity;
    Alcotest.test_case "drr overflow class" `Quick drr_overflow_class_shares;
    Alcotest.test_case "drr overflow fifo" `Quick drr_overflow_key_is_reachable;
    Alcotest.test_case "drr active queues" `Quick drr_active_queue_count;
    QCheck_alcotest.to_alcotest drr_matches_reference_model;
    Alcotest.test_case "token bucket burst" `Quick token_bucket_limits_rate;
    Alcotest.test_case "token bucket rate" `Quick token_bucket_long_run_rate;
    Alcotest.test_case "token bucket inner stats" `Quick token_bucket_passes_stats_through;
    QCheck_alcotest.to_alcotest token_bucket_window_conformance;
    Alcotest.test_case "priority order" `Quick priority_serves_high_first;
    Alcotest.test_case "priority clamp" `Quick priority_clamps_class_index;
    Alcotest.test_case "tri-class classifier" `Quick tri_class_classifier;
    Alcotest.test_case "tri-class legacy lowest" `Quick tri_class_legacy_is_lowest_priority;
    Alcotest.test_case "tri-class request limiter" `Quick tri_class_requests_rate_limited;
    Alcotest.test_case "tri-class regular protected" `Quick tri_class_regular_unaffected_by_request_backlog;
    Alcotest.test_case "sfq collisions" `Quick sfq_collisions_share_fate;
    Alcotest.test_case "sfq seed breaks collisions" `Quick sfq_seed_breaks_collision_set;
    Alcotest.test_case "sfq stable" `Quick sfq_hash_stable;
    QCheck_alcotest.to_alcotest sfq_hash_in_range;
  ]
