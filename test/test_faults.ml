(* Fault layer: spec parsing, the deterministic link models, the
   invariants checker's algebra, and the chaos harness's recovery and
   reproducibility guarantees. *)

let packet () =
  Wire.Packet.make ~src:(Wire.Addr.of_int 1) ~dst:(Wire.Addr.of_int 2) ~created:0.
    (Wire.Packet.Raw 1000)

(* --- Spec ---------------------------------------------------------------- *)

let spec_roundtrip () =
  List.iter
    (fun s ->
      match Faults.Spec.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok spec -> (
          let canonical = Faults.Spec.to_string spec in
          match Faults.Spec.parse canonical with
          | Error e -> Alcotest.failf "reparse %S: %s" canonical e
          | Ok spec2 ->
              Alcotest.(check string) ("canonical fixpoint of " ^ s) canonical
                (Faults.Spec.to_string spec2)))
    [
      "loss:bottleneck:p=0.01";
      "corrupt:access:p=0.1";
      "dup:all:p=0.05";
      "burst:bottleneck:pgb=0.02,pbg=0.3,pbad=0.5,pgood=0";
      "reorder:rbottleneck:p=0.02,delay=0.05";
      "down:bottleneck:at=5,for=2";
      "flap:bottleneck:at=2,until=8,period=3,down=0.5";
      "wipe:all:at=2,every=10";
      "rotate:left:at=3";
      "restart:right:at=4,for=0.25";
      "loss:bottleneck:p=0.01;wipe:all:at=2";
    ]

let spec_errors () =
  List.iter
    (fun s ->
      match Faults.Spec.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse %S should have failed" s)
    [
      "";
      "bogus:bottleneck:p=0.1";
      "loss:nowhere:p=0.1";
      "loss:bottleneck:p=1.5";
      "loss:bottleneck:p=nope";
      "loss:bottleneck:zap=0.1";
      "wipe:bottleneck:at=1";
      "down:left:at=1";
      "flap:bottleneck:period=0";
    ]

(* --- Link models --------------------------------------------------------- *)

let model_determinism () =
  let decisions seed =
    let rng = Rng.create ~seed in
    let m = Faults.Link_model.bernoulli ~rng ~p:0.3 ~action:Net.Fault_lose in
    List.init 100 (fun _ -> m (packet ()) = Net.Fault_lose)
  in
  Alcotest.(check (list bool)) "same seed, same decisions" (decisions 42) (decisions 42);
  let rng = Rng.create ~seed:7 in
  let never = Faults.Link_model.bernoulli ~rng ~p:0. ~action:Net.Fault_lose in
  let always = Faults.Link_model.bernoulli ~rng ~p:1. ~action:Net.Fault_dup in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never fires" true (never (packet ()) = Net.Fault_pass);
    Alcotest.(check bool) "p=1 always fires" true (always (packet ()) = Net.Fault_dup)
  done

let gilbert_elliott_states () =
  (* Forced into the bad state immediately and kept there, losing
     everything: p_gb=1, p_bg=0, p_bad=1. *)
  let rng = Rng.create ~seed:1 in
  let m = Faults.Link_model.gilbert_elliott ~rng ~p_gb:1. ~p_bg:0. ~p_bad:1. ~p_good:0. in
  for i = 1 to 20 do
    Alcotest.(check bool)
      (Printf.sprintf "packet %d lost in bad state" i)
      true
      (m (packet ()) = Net.Fault_lose)
  done

let compose_first_wins () =
  let rng = Rng.create ~seed:1 in
  let lose = Faults.Link_model.bernoulli ~rng ~p:1. ~action:Net.Fault_lose in
  let dup = Faults.Link_model.bernoulli ~rng ~p:1. ~action:Net.Fault_dup in
  Alcotest.(check bool) "first non-pass wins" true
    (Faults.Link_model.compose [ lose; dup ] (packet ()) = Net.Fault_lose);
  Alcotest.(check bool) "order matters" true
    (Faults.Link_model.compose [ dup; lose ] (packet ()) = Net.Fault_dup);
  Alcotest.(check bool) "all pass" true
    (Faults.Link_model.compose [] (packet ()) = Net.Fault_pass)

(* --- Invariants checker -------------------------------------------------- *)

let base_row () =
  let arr = Array.make Obs.Event.count 0 in
  let set e v = arr.(Obs.Event.to_int e) <- v in
  (* 100 packets: 10 legacy, 20 request, 70 regular; of the regular, 60
     nonce hits and 10 misses; of the misses, 6 revalidated and 4 demoted
     (all for lack of a cache entry). *)
  set Obs.Event.Packets_in 100;
  set Obs.Event.Legacy_in 10;
  set Obs.Event.Request_in 20;
  set Obs.Event.Regular_in 70;
  set Obs.Event.Nonce_hit 60;
  set Obs.Event.Nonce_miss 10;
  set Obs.Event.Regular_validated 6;
  set Obs.Event.Demoted 4;
  set Obs.Event.Demoted_no_cap 4;
  arr

let run_check ?(exp = Faults.Invariants.relaxed) ?(injected = 1) ?(latencies = []) arr =
  Faults.Invariants.check exp
    ~counters:[ ("left-router", arr) ]
    ~router_names:[ "left-router" ] ~injected ~reacquire_latencies:latencies ~fraction:1.

let invariants_clean () =
  Alcotest.(check bool) "consistent row passes" true (run_check (base_row ())).Faults.Invariants.ok

let invariants_catch_drop () =
  (* A router that dropped 2 of the nonce misses instead of demoting them:
     miss=10 but validated+demoted=8. *)
  let arr = base_row () in
  arr.(Obs.Event.to_int Obs.Event.Demoted) <- 2;
  arr.(Obs.Event.to_int Obs.Event.Demoted_no_cap) <- 2;
  let v = run_check arr in
  Alcotest.(check bool) "drop caught" false v.Faults.Invariants.ok;
  let failed =
    List.filter_map
      (fun (c : Faults.Invariants.check) ->
        if c.Faults.Invariants.ck_ok then None else Some c.ck_name)
      v.Faults.Invariants.checks
  in
  Alcotest.(check (list string)) "demote-not-drop is the failure" [ "demote-not-drop" ] failed

let invariants_expectations () =
  let exp =
    {
      Faults.Invariants.exp_injected = true;
      exp_demotions = true;
      exp_reacquire = true;
      exp_latency_bound = 0.5;
      exp_min_fraction = 0.9;
    }
  in
  let ok = run_check ~exp ~latencies:[ 0.1; 0.4 ] (base_row ()) in
  Alcotest.(check bool) "expectations met" true ok.Faults.Invariants.ok;
  let late = run_check ~exp ~latencies:[ 0.1; 0.6 ] (base_row ()) in
  Alcotest.(check bool) "latency bound enforced" false late.Faults.Invariants.ok;
  let silent = run_check ~exp ~injected:0 ~latencies:[ 0.1 ] (base_row ()) in
  Alcotest.(check bool) "unfired fault caught" false silent.Faults.Invariants.ok

(* --- Chaos runs ---------------------------------------------------------- *)

let quick_base =
  {
    Workload.Chaos.base_config with
    Workload.Experiment.transfers_per_user = 10;
    max_time = 60.;
  }

let suite_table ~jobs ~seed =
  let base = { quick_base with Workload.Experiment.seed } in
  Stats.Table.render
    (Workload.Chaos.render (Workload.Chaos.run_suite ~jobs ~base Workload.Chaos.default_suite))

let chaos_deterministic () =
  Alcotest.(check string) "same seed, same table" (suite_table ~jobs:1 ~seed:1)
    (suite_table ~jobs:1 ~seed:1)

let chaos_jobs_invariant () =
  Alcotest.(check string) "jobs 1 = jobs 4" (suite_table ~jobs:1 ~seed:3)
    (suite_table ~jobs:4 ~seed:3)

let wipe_recovers () =
  let cell =
    List.find (fun c -> c.Workload.Chaos.cl_label = "wipe") Workload.Chaos.default_suite
  in
  let o = Workload.Chaos.run_cell ~base:quick_base cell in
  Alcotest.(check bool) "verdict ok" true o.Workload.Chaos.oc_verdict.Faults.Invariants.ok;
  Alcotest.(check bool) "demoted senders reacquired" true (o.oc_latencies <> []);
  let worst = List.fold_left Float.max 0. o.oc_latencies in
  Alcotest.(check bool)
    (Printf.sprintf "worst %.3fs within the documented bound" worst)
    true
    (worst <= Workload.Chaos.reacquire_bound);
  Alcotest.(check bool) "completion above floor" true (o.oc_fraction >= 0.5)

let restart_recovers () =
  let cell =
    List.find (fun c -> c.Workload.Chaos.cl_label = "restart") Workload.Chaos.default_suite
  in
  let o = Workload.Chaos.run_cell ~base:quick_base cell in
  Alcotest.(check bool) "verdict ok" true o.Workload.Chaos.oc_verdict.Faults.Invariants.ok;
  Alcotest.(check bool) "senders reacquired after restart" true (o.oc_latencies <> [])

(* With the fault layer compiled in but no faults requested, the harness
   runs the exact pre-fault code path: repeated unfaulted runs are
   byte-identical (the fig8 regeneration in CI checks the same property
   against the committed seed output). *)
let unfaulted_runs_identical () =
  let render () =
    let base = { quick_base with Workload.Experiment.n_attackers = 10 } in
    Stats.Table.render
      (Workload.Scenario.render
         (Workload.Scenario.flood_sweep ~jobs:1
            ~schemes:[ ("tva", Workload.Scenario.sim_params |> fun p -> Workload.Scheme.tva ~params:p ()) ]
            ~attacker_counts:[ 1; 10 ] ~base
            ~attack:(fun ~rate_bps -> Workload.Experiment.Legacy_flood { rate_bps })
            ()))
  in
  Alcotest.(check string) "unfaulted sweep reproducible" (render ()) (render ())

let suite =
  [
    Alcotest.test_case "spec roundtrip" `Quick spec_roundtrip;
    Alcotest.test_case "spec errors" `Quick spec_errors;
    Alcotest.test_case "model determinism" `Quick model_determinism;
    Alcotest.test_case "gilbert-elliott" `Quick gilbert_elliott_states;
    Alcotest.test_case "compose" `Quick compose_first_wins;
    Alcotest.test_case "invariants clean" `Quick invariants_clean;
    Alcotest.test_case "invariants catch drop" `Quick invariants_catch_drop;
    Alcotest.test_case "invariants expectations" `Quick invariants_expectations;
    Alcotest.test_case "chaos deterministic" `Quick chaos_deterministic;
    Alcotest.test_case "chaos jobs-invariant" `Quick chaos_jobs_invariant;
    Alcotest.test_case "wipe recovers" `Quick wipe_recovers;
    Alcotest.test_case "restart recovers" `Quick restart_recovers;
    Alcotest.test_case "unfaulted identical" `Quick unfaulted_runs_identical;
  ]
