(* NetFence: the secure-feedback datapath (mint/validate) and the AIMD
   policing loop that makes per-sender rates converge to fair shares. *)

let src = Wire.Addr.of_int 0x0a000001
let other = Wire.Addr.of_int 0x0a000002

let make_router ?(router_id = 7) ?(secret_master = "k") () =
  let sim = Sim.create () in
  (sim, Netfence.Router.create ~secret_master ~router_id ~sim ~link_bps:10e6 ())

let action = Alcotest.testable Wire.Nf_feedback.pp_action ( = )

let mac_roundtrip () =
  let _sim, r = make_router () in
  List.iter
    (fun a ->
      let tok = Netfence.Router.mint r ~now:1. ~src a in
      Alcotest.(check (option action))
        "token validates as minted" (Some a)
        (Netfence.Router.validate r ~now:1.2 tok ~src))
    [ Wire.Nf_feedback.Incr; Wire.Nf_feedback.Decr ]

let forgery_rejected () =
  let _sim, r = make_router () in
  let tok = Netfence.Router.mint r ~now:1. ~src Wire.Nf_feedback.Decr in
  let check name t expected = Alcotest.(check (option action)) name expected (Netfence.Router.validate r ~now:1.2 t ~src) in
  check "intact token accepted" tok (Some Wire.Nf_feedback.Decr);
  check "tampered MAC rejected"
    { tok with Wire.Nf_feedback.nf_mac = Int64.add tok.Wire.Nf_feedback.nf_mac 1L }
    None;
  (* Flipping Decr to Incr is the attack NetFence's MAC exists to stop:
     the action is part of the preimage, so the old MAC no longer
     verifies. *)
  check "flipped action rejected" { tok with Wire.Nf_feedback.nf_action = Wire.Nf_feedback.Incr } None;
  Alcotest.(check (option action))
    "token bound to sender" None
    (Netfence.Router.validate r ~now:1.2 tok ~src:other);
  let lifetime = float_of_int Netfence.Router.default_params.Netfence.Router.token_lifetime in
  Alcotest.(check (option action))
    "stale token rejected" None
    (Netfence.Router.validate r ~now:(1. +. lifetime +. 2.) tok ~src);
  Alcotest.(check bool) "rejections counted" true (Netfence.Router.rejected r > 0)

let shared_master_validates_across_routers () =
  (* NetFence's pairwise keys, modeled as one shared master: a token
     minted by router 7 must verify at any other router of the run, and
     must not at a router with a different master. *)
  let _s1, minter = make_router ~router_id:7 () in
  let _s2, peer = make_router ~router_id:9 () in
  let _s3, stranger = make_router ~router_id:9 ~secret_master:"other" () in
  let tok = Netfence.Router.mint minter ~now:1. ~src Wire.Nf_feedback.Incr in
  Alcotest.(check (option action))
    "peer accepts" (Some Wire.Nf_feedback.Incr)
    (Netfence.Router.validate peer ~now:1.2 tok ~src);
  Alcotest.(check (option action))
    "stranger rejects" None
    (Netfence.Router.validate stranger ~now:1.2 tok ~src)

let rotate_invalidates () =
  let _sim, r = make_router () in
  let tok = Netfence.Router.mint r ~now:1. ~src Wire.Nf_feedback.Incr in
  Netfence.Router.rotate_secret r;
  Alcotest.(check (option action))
    "token dies with the key" None
    (Netfence.Router.validate r ~now:1.2 tok ~src)

(* Two senders flooding through a shared bottleneck, the second joining
   late from the small initial rate: AIMD must pull their policed rates
   within 10% of each other (Chiu-Jain), i.e. fairness is enforced at the
   access router regardless of how fast either host transmits. *)
let aimd_converges_to_equal_rates () =
  let sim = Sim.create ~seed:3 () in
  let topo =
    Topology.dumbbell ~n_users:0 ~n_attackers:2
      ~make_qdisc:(fun ~bandwidth_bps -> Netfence.Router.make_qdisc ~bandwidth_bps)
      sim
  in
  let router node =
    let r =
      Netfence.Router.create ~secret_master:"k" ~router_id:(Net.node_id node) ~sim
        ~link_bps:10e6 ()
    in
    Net.set_handler node (Netfence.Router.handler r);
    r
  in
  let left = router topo.Topology.left in
  let _right = router topo.Topology.right in
  let _dst_host = Netfence.Host.create ~auto_reply:true ~node:topo.Topology.destination () in
  let start_flood host ~at =
    let h = Netfence.Host.create ~node:host () in
    let rec send () =
      (* 1000 B / 1 ms = 8 Mb/s offered per sender, far above fair share. *)
      Netfence.Host.send_raw h ~dst:Topology.destination_addr ~bytes:1000;
      ignore (Sim.schedule sim ~delay:0.001 send)
    in
    ignore (Sim.schedule_at sim ~time:at send)
  in
  start_flood topo.Topology.attackers.(0) ~at:0.;
  start_flood topo.Topology.attackers.(1) ~at:10.;
  Sim.run ~until:60. sim;
  match Netfence.Router.sender_rates left with
  | [ (_, r1); (_, r2) ] ->
      let hi = Float.max r1 r2 and lo = Float.min r1 r2 in
      Alcotest.(check bool)
        (Printf.sprintf "rates within 10%% (%.0f vs %.0f bps)" r1 r2)
        true
        ((hi -. lo) /. hi <= 0.10);
      Alcotest.(check bool)
        (Printf.sprintf "combined rate tracks the bottleneck (%.0f bps)" (r1 +. r2))
        true
        (r1 +. r2 <= 1.3 *. 10e6 && r1 +. r2 >= 2e6);
      Alcotest.(check bool) "overload was policed" true (Netfence.Router.policed left > 0)
  | rates -> Alcotest.failf "expected 2 policed senders, got %d" (List.length rates)

let suite =
  [
    Alcotest.test_case "feedback MAC roundtrip" `Quick mac_roundtrip;
    Alcotest.test_case "forgery rejected" `Quick forgery_rejected;
    Alcotest.test_case "shared master cross-validates" `Quick shared_master_validates_across_routers;
    Alcotest.test_case "rotation invalidates" `Quick rotate_invalidates;
    Alcotest.test_case "aimd converges" `Quick aimd_converges_to_equal_rates;
  ]
