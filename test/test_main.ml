let () =
  Alcotest.run "tva"
    [
      ("crypto", Test_crypto.suite);
      ("engine", Test_engine.suite);
      ("pool", Test_pool.suite);
      ("stats", Test_stats.suite);
      ("wire", Test_wire.suite);
      ("queueing", Test_queueing.suite);
      ("netsim", Test_netsim.suite);
      ("tcp", Test_tcp.suite);
      ("tva", Test_tva.suite);
      ("baselines", Test_baselines.suite);
      ("netfence", Test_netfence.suite);
      ("workload", Test_workload.suite);
      ("obs", Test_obs.suite);
      ("faults", Test_faults.suite);
      ("forwarder", Test_forwarder.suite);
      ("batch", Test_batch.suite);
    ]
