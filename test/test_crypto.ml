(* Known-answer tests for every primitive (the capability scheme is only as
   sound as these), plus properties of the rotating-secret machinery. *)

let hex s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c)) (List.init (String.length s) (String.get s)))

let check_hex msg expected got = Alcotest.(check string) msg expected (hex got)

(* --- SHA-1 (RFC 3174 / FIPS 180 vectors) --------------------------- *)

let sha1_empty () =
  check_hex "sha1('')" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Crypto.Sha1.digest "")

let sha1_abc () =
  check_hex "sha1(abc)" "a9993e364706816aba3e25717850c26c9cd0d89d" (Crypto.Sha1.digest "abc")

let sha1_448bits () =
  check_hex "sha1(two-block)" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Crypto.Sha1.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let sha1_million_a () =
  check_hex "sha1(a^1e6)" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Crypto.Sha1.digest (String.make 1_000_000 'a'))

let sha1_streaming_equals_oneshot () =
  let msg = String.init 1000 (fun i -> Char.chr (i land 0xff)) in
  let ctx = Crypto.Sha1.init () in
  (* Feed in awkward chunk sizes crossing block boundaries. *)
  let rec feed off =
    if off < String.length msg then begin
      let len = min 17 (String.length msg - off) in
      Crypto.Sha1.feed ctx (String.sub msg off len);
      feed (off + len)
    end
  in
  feed 0;
  Alcotest.(check string) "streaming = one-shot" (hex (Crypto.Sha1.digest msg)) (hex (Crypto.Sha1.get ctx))

let sha1_get_is_idempotent () =
  let ctx = Crypto.Sha1.init () in
  Crypto.Sha1.feed ctx "hello";
  let d1 = Crypto.Sha1.get ctx in
  let d2 = Crypto.Sha1.get ctx in
  Alcotest.(check string) "get twice" (hex d1) (hex d2);
  Crypto.Sha1.feed ctx " world";
  Alcotest.(check string) "continue after get" (hex (Crypto.Sha1.digest "hello world"))
    (hex (Crypto.Sha1.get ctx))

(* --- AES-128 (FIPS-197 appendix vectors) ---------------------------- *)

let aes_fips_c1 () =
  let key = Crypto.Aes128.expand_key (String.init 16 Char.chr) in
  let plain = String.init 16 (fun i -> Char.chr ((i * 0x11) land 0xff)) in
  check_hex "FIPS-197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (Crypto.Aes128.encrypt key plain)

let aes_gladman_vector () =
  (* FIPS-197 appendix B example. *)
  let key =
    Crypto.Aes128.expand_key
      "\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c"
  in
  let plain = "\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34" in
  check_hex "FIPS-197 B" "3925841d02dc09fbdc118597196a0b32" (Crypto.Aes128.encrypt key plain)

let aes_rejects_bad_key () =
  Alcotest.check_raises "short key" (Invalid_argument "Aes128.expand_key: key must be 16 bytes")
    (fun () -> ignore (Crypto.Aes128.expand_key "short"))

let aes_in_place () =
  let key = Crypto.Aes128.expand_key (String.make 16 'k') in
  let buf = Bytes.of_string (String.make 16 'p') in
  Crypto.Aes128.encrypt_block key buf ~src_off:0 buf ~dst_off:0;
  Alcotest.(check string) "in-place = copy" (hex (Crypto.Aes128.encrypt key (String.make 16 'p')))
    (hex (Bytes.to_string buf))

(* --- SipHash-2-4 (reference vectors) -------------------------------- *)

let siphash_reference_vectors () =
  (* First eight rows of the reference implementation's vectors_sip64. *)
  let expected =
    [|
      "310e0edd47db6f72"; "fd67dc93c539f874"; "5a4fa9d909806c0d"; "2d7efbd796666785";
      "b7877127e09427cf"; "8da699cd64557618"; "cee3fe586e46c9cb"; "37d1018bf50002ab";
    |]
  in
  let key = String.init 16 Char.chr in
  Array.iteri
    (fun i e ->
      let msg = String.init i Char.chr in
      check_hex (Printf.sprintf "siphash len=%d" i) e (Crypto.Siphash.mac_string ~key msg))
    expected

let siphash_15byte_vector () =
  let key = String.init 16 Char.chr in
  check_hex "siphash len=15" "e545be4961ca29a1"
    (Crypto.Siphash.mac_string ~key (String.init 15 Char.chr))

let siphash_rejects_bad_key () =
  Alcotest.check_raises "bad key" (Invalid_argument "Siphash.mac: key must be 16 bytes") (fun () ->
      ignore (Crypto.Siphash.mac ~key:"tiny" "msg"))

(* The word-packed hot-path entry point must agree with the string path on
   every message length it covers. *)
let siphash_mac_short_matches_mac =
  QCheck.Test.make ~name:"siphash: mac_short = mac on all 8..15-byte messages" ~count:500
    QCheck.(
      triple (int_range 8 15)
        (list_of_size (QCheck.Gen.return 15) (int_range 0 255))
        (string_of_size (QCheck.Gen.return 16)))
    (fun (len, bytes, key) ->
      let bytes = Array.of_list bytes in
      let msg = String.init len (fun i -> Char.chr bytes.(i)) in
      let w0 = ref 0L in
      for i = 0 to 7 do
        w0 := Int64.logor !w0 (Int64.shift_left (Int64.of_int bytes.(i)) (8 * i))
      done;
      let tail = ref 0L in
      for i = 8 to len - 1 do
        tail := Int64.logor !tail (Int64.shift_left (Int64.of_int bytes.(i)) (8 * (i - 8)))
      done;
      Int64.equal
        (Crypto.Siphash.mac_short ~key ~len ~w0:!w0 ~tail:!tail)
        (Crypto.Siphash.mac ~key msg))

(* --- HMAC-SHA1 (RFC 2202 vectors) ----------------------------------- *)

let hmac_rfc2202_case1 () =
  check_hex "rfc2202 #1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Crypto.Hmac_sha1.mac ~key:(String.make 20 '\x0b') "Hi There")

let hmac_rfc2202_case2 () =
  check_hex "rfc2202 #2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (Crypto.Hmac_sha1.mac ~key:"Jefe" "what do ya want for nothing?")

let hmac_rfc2202_case3 () =
  check_hex "rfc2202 #3" "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
    (Crypto.Hmac_sha1.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let hmac_long_key () =
  (* RFC 2202 case 6: keys longer than a block are hashed first. *)
  check_hex "rfc2202 #6" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (Crypto.Hmac_sha1.mac ~key:(String.make 80 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First")

(* --- AES-hash (MMO construction) ------------------------------------ *)

let aes_hash_deterministic () =
  Alcotest.(check string) "deterministic" (hex (Crypto.Aes_hash.digest "hello"))
    (hex (Crypto.Aes_hash.digest "hello"))

let aes_hash_length_extension_guard () =
  (* Padding includes the length, so "a" and "a\x80..." differ. *)
  let a = Crypto.Aes_hash.digest "a" in
  let b = Crypto.Aes_hash.digest ("a" ^ "\x80" ^ String.make 6 '\000') in
  Alcotest.(check bool) "distinct" false (String.equal a b)

let aes_hash_sizes () =
  Alcotest.(check int) "digest size" 16 (String.length (Crypto.Aes_hash.digest ""));
  Alcotest.(check int) "mac size" 16 (String.length (Crypto.Aes_hash.mac ~key:"k" "m"))

let aes_hash_key_separates () =
  let a = Crypto.Aes_hash.mac ~key:"key1" "msg" in
  let b = Crypto.Aes_hash.mac ~key:"key2" "msg" in
  Alcotest.(check bool) "keys matter" false (String.equal a b)

(* --- Keyed_hash instances ------------------------------------------- *)

let keyed_hash_width () =
  List.iter
    (fun (module H : Crypto.Keyed_hash.S) ->
      let v = H.mac56 ~key:(String.make 16 'k') "some message" in
      Alcotest.(check bool)
        (H.name ^ " fits 56 bits")
        true
        (Int64.shift_right_logical v 56 = 0L))
    [ (module Crypto.Keyed_hash.Fast); (module Crypto.Keyed_hash.Aes); (module Crypto.Keyed_hash.Sha) ]

let keyed_hash_distinct_messages =
  QCheck.Test.make ~name:"keyed_hash: distinct messages give distinct macs (w.h.p.)" ~count:100
    QCheck.(pair small_string small_string)
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let key = String.make 16 'k' in
      not (Int64.equal (Crypto.Keyed_hash.Fast.mac56 ~key a) (Crypto.Keyed_hash.Fast.mac56 ~key b)))

(* The fixed-preimage entry points must be bit-for-bit the same hash as the
   legacy string-preimage path, for every implementation — the router's
   fast path and the destination's slow path have to mint identical
   capabilities. *)
let direct_mac56_matches_string_preimage =
  let modules =
    [
      (module Crypto.Keyed_hash.Fast : Crypto.Keyed_hash.S);
      (module Crypto.Keyed_hash.Aes);
      (module Crypto.Keyed_hash.Sha);
    ]
  in
  QCheck.Test.make
    ~name:"keyed_hash: mac56_precap/mac56_cap = string-preimage path (Fast/Aes/Sha)" ~count:100
    QCheck.(
      pair
        (string_of_size QCheck.Gen.(int_range 1 32))
        (triple
           (pair (map (fun i -> i land 0xFFFFFFFF) int) (map (fun i -> i land 0xFFFFFFFF) int))
           (int_range 0 255)
           (pair (int_range 0 1023) (int_range 0 63))))
    (fun (key, ((src, dst), ts, (n_kb, t_sec))) ->
      List.for_all
        (fun (module H : Crypto.Keyed_hash.S) ->
          let ph = H.mac56_precap ~key ~src ~dst ~ts in
          let ph_str = H.mac56 ~key (Crypto.Keyed_hash.precap_preimage ~src ~dst ~ts) in
          let ch = H.mac56_cap ~key ~precap_ts:ts ~precap_hash:ph ~n_kb ~t_sec in
          let ch_str =
            H.mac56 ~key
              (Crypto.Keyed_hash.cap_preimage ~precap_ts:ts ~precap_hash:ph ~n_kb ~t_sec)
          in
          Int64.equal ph ph_str && Int64.equal ch ch_str)
        modules)

(* --- Rotating secrets (paper Sec. 3.4) ------------------------------- *)

let secret_issuing_is_stable_within_epoch () =
  let s = Crypto.Secret.create ~master:"m" in
  Alcotest.(check string) "same epoch" (Crypto.Secret.issuing_secret s ~now:10.)
    (Crypto.Secret.issuing_secret s ~now:127.9)

let secret_rotates_every_128s () =
  let s = Crypto.Secret.create ~master:"m" in
  Alcotest.(check bool) "rotated" false
    (String.equal (Crypto.Secret.issuing_secret s ~now:10.) (Crypto.Secret.issuing_secret s ~now:140.))

let secret_high_bit_selects () =
  let s = Crypto.Secret.create ~master:"m" in
  (* A capability issued at t=100 (ts=100, high bit 0, epoch 0) validated at
     t=150 (epoch 1): the validator must pick the previous secret. *)
  let issue = Crypto.Secret.issuing_secret s ~now:100. in
  let ts = Crypto.Secret.timestamp ~now:100. in
  (match Crypto.Secret.validating_secret s ~now:150. ~ts with
  | Some key -> Alcotest.(check string) "previous secret selected" issue key
  | None -> Alcotest.fail "no validating secret");
  (* And at t=120 (same epoch) it picks the current secret. *)
  match Crypto.Secret.validating_secret s ~now:120. ~ts with
  | Some key -> Alcotest.(check string) "current secret selected" issue key
  | None -> Alcotest.fail "no validating secret"

let secret_expires_after_two_epochs () =
  let s = Crypto.Secret.create ~master:"m" in
  let issue = Crypto.Secret.issuing_secret s ~now:100. in
  let ts = Crypto.Secret.timestamp ~now:100. in
  (* Two epochs later the same parity maps to a *newer* secret, so the old
     one can never validate again. *)
  match Crypto.Secret.validating_secret s ~now:(100. +. 256.) ~ts with
  | Some key -> Alcotest.(check bool) "secret retired" false (String.equal issue key)
  | None -> ()

let secret_timestamp_is_modulo_256 () =
  Alcotest.(check int) "ts at 300s" (300 mod 256) (Crypto.Secret.timestamp ~now:300.);
  Alcotest.(check int) "ts at 255.9" 255 (Crypto.Secret.timestamp ~now:255.9)

let secret_deterministic_from_master () =
  let a = Crypto.Secret.create ~master:"same" and b = Crypto.Secret.create ~master:"same" in
  Alcotest.(check string) "same master, same secrets" (Crypto.Secret.issuing_secret a ~now:42.)
    (Crypto.Secret.issuing_secret b ~now:42.)

let secret_epoch_cache_is_transparent () =
  (* The per-instance epoch-key cache (two slots, current + previous) must
     be invisible: hammering one instance across epoch changes, in both
     directions, returns exactly what a fresh instance computes. *)
  let cached = Crypto.Secret.create ~master:"cache-check" in
  let times = [ 10.; 140.; 10.; 300.; 140.; 10.; 1000.; 300. ] in
  List.iter
    (fun now ->
      let fresh = Crypto.Secret.create ~master:"cache-check" in
      Alcotest.(check string)
        (Printf.sprintf "issuing at t=%g" now)
        (Crypto.Secret.issuing_secret fresh ~now)
        (Crypto.Secret.issuing_secret cached ~now);
      let ts = Crypto.Secret.timestamp ~now in
      let opt = function None -> "none" | Some s -> s in
      Alcotest.(check string)
        (Printf.sprintf "validating at t=%g" now)
        (opt (Crypto.Secret.validating_secret fresh ~now ~ts))
        (opt (Crypto.Secret.validating_secret cached ~now ~ts)))
    times

let suite =
  [
    Alcotest.test_case "sha1 empty" `Quick sha1_empty;
    Alcotest.test_case "sha1 abc" `Quick sha1_abc;
    Alcotest.test_case "sha1 448-bit" `Quick sha1_448bits;
    Alcotest.test_case "sha1 million a" `Slow sha1_million_a;
    Alcotest.test_case "sha1 streaming" `Quick sha1_streaming_equals_oneshot;
    Alcotest.test_case "sha1 get idempotent" `Quick sha1_get_is_idempotent;
    Alcotest.test_case "aes FIPS C.1" `Quick aes_fips_c1;
    Alcotest.test_case "aes FIPS B" `Quick aes_gladman_vector;
    Alcotest.test_case "aes bad key" `Quick aes_rejects_bad_key;
    Alcotest.test_case "aes in place" `Quick aes_in_place;
    Alcotest.test_case "siphash vectors 0-7" `Quick siphash_reference_vectors;
    Alcotest.test_case "siphash vector 15" `Quick siphash_15byte_vector;
    Alcotest.test_case "siphash bad key" `Quick siphash_rejects_bad_key;
    QCheck_alcotest.to_alcotest siphash_mac_short_matches_mac;
    QCheck_alcotest.to_alcotest direct_mac56_matches_string_preimage;
    Alcotest.test_case "hmac rfc2202 #1" `Quick hmac_rfc2202_case1;
    Alcotest.test_case "hmac rfc2202 #2" `Quick hmac_rfc2202_case2;
    Alcotest.test_case "hmac rfc2202 #3" `Quick hmac_rfc2202_case3;
    Alcotest.test_case "hmac long key" `Quick hmac_long_key;
    Alcotest.test_case "aes-hash deterministic" `Quick aes_hash_deterministic;
    Alcotest.test_case "aes-hash no trivial extension" `Quick aes_hash_length_extension_guard;
    Alcotest.test_case "aes-hash sizes" `Quick aes_hash_sizes;
    Alcotest.test_case "aes-hash keyed" `Quick aes_hash_key_separates;
    Alcotest.test_case "keyed-hash 56-bit width" `Quick keyed_hash_width;
    QCheck_alcotest.to_alcotest keyed_hash_distinct_messages;
    Alcotest.test_case "secret stable in epoch" `Quick secret_issuing_is_stable_within_epoch;
    Alcotest.test_case "secret rotates" `Quick secret_rotates_every_128s;
    Alcotest.test_case "secret high-bit selection" `Quick secret_high_bit_selects;
    Alcotest.test_case "secret retired after 2 epochs" `Quick secret_expires_after_two_epochs;
    Alcotest.test_case "timestamp modulo 256" `Quick secret_timestamp_is_modulo_256;
    Alcotest.test_case "secret deterministic" `Quick secret_deterministic_from_master;
    Alcotest.test_case "secret epoch cache transparent" `Quick secret_epoch_cache_is_transparent;
  ]
