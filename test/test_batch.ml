(* The batched and sharded datapath (DESIGN §12): differential equivalence
   of [Router.process_batch] against sequential [process], bit-identity of
   K=1 sharding, occupancy conservation across shards, the size_fast and
   paired-hash algebraic identities, and the batch allocation budget. *)

let fast = (module Crypto.Keyed_hash.Fast : Crypto.Keyed_hash.S)
let dst = Wire.Addr.of_int 0x0B000001
let flow_src f = Wire.Addr.of_int (0x0A000000 + f)
let flow_nonce f = Int64.of_int (1000 + f)
let flow_n_kb f = if f mod 4 = 0 then 1 else 1023
let flow_t_sec f = if f mod 3 = 0 then 2 else 32

(* Mint a capability valid for routers created with [master] — the secret
   derivation is a pure function of the master string, so this never
   touches the routers under test. *)
let mint_cap ~master ~now ~src ~dst ~n_kb ~t_sec =
  let secret = Crypto.Secret.create ~master in
  let precap = Tva.Capability.mint_precap ~hash:fast ~secret ~now ~src ~dst in
  Tva.Capability.cap_of_precap ~hash:fast ~precap ~n_kb ~t_sec

(* One packet spec; [build] instantiates it fresh per router so the two
   sides mutate physically distinct packets. *)
type spec = { kind : int; flow : int; bytes : int }

let n_kinds = 10

let gen_specs st n ~flows =
  List.init n (fun _ ->
      {
        kind = Random.State.int st n_kinds;
        flow = Random.State.int st flows;
        bytes = 20 + Random.State.int st 400;
      })

let build ~master ~now spec =
  let f = spec.flow in
  let src = flow_src f in
  let n_kb = flow_n_kb f and t_sec = flow_t_sec f in
  let nonce = flow_nonce f in
  let valid () = mint_cap ~master ~now ~src ~dst ~n_kb ~t_sec in
  let mk ?(nonce = nonce) ?(caps = []) ?(renewal = false) () =
    Wire.Packet.make
      ~shim:(Wire.Cap_shim.regular ~nonce ~caps ~n_kb ~t_sec ~renewal ())
      ~src ~dst ~created:now
      (Wire.Packet.Raw spec.bytes)
  in
  match spec.kind with
  | 0 -> Wire.Packet.make ~src ~dst ~created:now (Wire.Packet.Raw spec.bytes) (* legacy *)
  | 1 ->
      let p = mk () in
      (match p.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted <- true | None -> ());
      p (* pre-demoted: must pass through as legacy *)
  | 2 ->
      Wire.Packet.make ~shim:(Wire.Cap_shim.request ()) ~src ~dst ~created:now
        (Wire.Packet.Raw spec.bytes)
  | 3 -> mk () (* nonce only: hit if cached, Demoted_no_cap otherwise *)
  | 4 -> mk ~caps:[ valid () ] () (* valid capability: insert / renew / hit *)
  | 5 ->
      let c = valid () in
      mk ~caps:[ { c with Wire.Cap_shim.hash = Int64.logxor c.Wire.Cap_shim.hash 0x5aL } ] ()
      (* bad hash *)
  | 6 ->
      let c = valid () in
      let ts_old = (c.Wire.Cap_shim.ts - (t_sec + 5) + 256) land 255 in
      mk ~caps:[ { c with Wire.Cap_shim.ts = ts_old } ] () (* expired on the modulo clock *)
  | 7 -> mk ~caps:[ valid () ] ~renewal:true () (* renewal carrying a capability *)
  | 8 -> mk ~renewal:true () (* renewal, nonce only *)
  | _ -> mk ~nonce:(Int64.add nonce 7L) () (* wrong nonce, no caps: Demoted_no_cap *)

let shim_repr (p : Wire.Packet.t) =
  match p.Wire.Packet.shim with
  | None -> "none"
  | Some s -> Printf.sprintf "%b/%s" s.Wire.Cap_shim.demoted (Wire.Cap_shim.encode s)

let check_packets_equal ~what ps_a ps_b =
  List.iteri
    (fun i (a, b) ->
      let ra = shim_repr a and rb = shim_repr b in
      if not (String.equal ra rb) then
        Alcotest.failf "%s: packet %d diverged: %S vs %S" what i ra rb)
    (List.combine ps_a ps_b)

let check_counters_equal ~what (a : Tva.Router.counters) (b : Tva.Router.counters) =
  let pairs =
    [
      ("requests", a.Tva.Router.requests, b.Tva.Router.requests);
      ("regular_cached", a.Tva.Router.regular_cached, b.Tva.Router.regular_cached);
      ("regular_validated", a.Tva.Router.regular_validated, b.Tva.Router.regular_validated);
      ("renewals", a.Tva.Router.renewals, b.Tva.Router.renewals);
      ("demotions", a.Tva.Router.demotions, b.Tva.Router.demotions);
      ("legacy", a.Tva.Router.legacy, b.Tva.Router.legacy);
    ]
  in
  List.iter
    (fun (n, x, y) -> Alcotest.(check int) (Printf.sprintf "%s: %s" what n) x y)
    pairs

let check_events_equal ~what ea eb =
  List.iter
    (fun ev ->
      let i = Obs.Event.to_int ev in
      if ea.(i) <> eb.(i) then
        Alcotest.failf "%s: event %s: %d vs %d" what (Obs.Event.name ev) ea.(i) eb.(i))
    Obs.Event.all

let snap_events obs = snd (Obs.Counters.snapshot obs)

(* --- Differential: process_batch vs sequential process ------------------- *)

let batch_differential () =
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let master = "batch-differential" in
      let sim = Sim.create () in
      let obs_a = Obs.Counters.create ~name:"seq" () in
      let obs_b = Obs.Counters.create ~name:"batch" () in
      (* Small cache so eviction, reclaim and Cache_full demotions are on
         the menu; 16 flows over 8 entries guarantees pressure. *)
      let mk_router obs =
        Tva.Router.create ~obs ~cache_entries:8 ~secret_master:master ~router_id:1 ~sim
          ~link_bps:10e6 ()
      in
      let r_seq = mk_router obs_a and r_batch = mk_router obs_b in
      let run_phase ~now specs =
        let ps_a = List.map (build ~master ~now) specs in
        let ps_b = List.map (build ~master ~now) specs in
        List.iter (fun p -> Tva.Router.process r_seq ~in_interface:2 p) ps_a;
        Tva.Router.process_batch r_batch ~in_interface:2 (Array.of_list ps_b);
        check_packets_equal ~what:(Printf.sprintf "seed %d" seed) ps_a ps_b
      in
      (* Phase 1 at t=0 populates caches; phase 2 after an advance past the
         short T flows exercises expiry on cached entries and ttl reclaim. *)
      run_phase ~now:0. (gen_specs st 400 ~flows:16);
      ignore (Sim.schedule_at sim ~time:10. (fun () -> ()));
      Sim.run sim;
      run_phase ~now:10. (gen_specs st 400 ~flows:16);
      let what = Printf.sprintf "seed %d" seed in
      check_counters_equal ~what (Tva.Router.counters r_seq) (Tva.Router.counters r_batch);
      check_events_equal ~what (snap_events obs_a) (snap_events obs_b);
      let ca = Tva.Router.cache r_seq and cb = Tva.Router.cache r_batch in
      Alcotest.(check int) (what ^ ": cache size") (Tva.Flow_cache.size ca)
        (Tva.Flow_cache.size cb);
      Alcotest.(check int) (what ^ ": evictions") (Tva.Flow_cache.evictions ca)
        (Tva.Flow_cache.evictions cb);
      Alcotest.(check int) (what ^ ": hwm") (Tva.Flow_cache.hwm ca) (Tva.Flow_cache.hwm cb))
    [ 11; 42; 1234 ]

(* Same-flow bursts inside one batch: the insert must be visible to the
   packets behind it in the same call (in-order state mutation, not a
   lookup pass followed by a process pass). *)
let batch_intra_batch_same_flow () =
  let master = "batch-intra" in
  let sim = Sim.create () in
  let mk_router () =
    Tva.Router.create ~cache_entries:8 ~secret_master:master ~router_id:1 ~sim ~link_bps:10e6 ()
  in
  let r_seq = mk_router () and r_batch = mk_router () in
  let specs =
    [
      { kind = 4; flow = 1; bytes = 100 };
      (* insert... *)
      { kind = 3; flow = 1; bytes = 100 };
      (* ...nonce-only hit in the same batch *)
      { kind = 3; flow = 1; bytes = 100 };
      { kind = 4; flow = 2; bytes = 100 };
      { kind = 3; flow = 2; bytes = 100 };
    ]
  in
  let ps_a = List.map (build ~master ~now:0.) specs in
  let ps_b = List.map (build ~master ~now:0.) specs in
  List.iter (fun p -> Tva.Router.process r_seq ~in_interface:0 p) ps_a;
  Tva.Router.process_batch r_batch ~in_interface:0 (Array.of_list ps_b);
  check_packets_equal ~what:"intra-batch" ps_a ps_b;
  let c = Tva.Router.counters r_batch in
  Alcotest.(check int) "cached hits happened in-batch" 3 c.Tva.Router.regular_cached;
  Alcotest.(check int) "no demotions" 0 c.Tva.Router.demotions

let batch_window () =
  (* ?off/?len must process exactly the window. *)
  let master = "batch-window" in
  let sim = Sim.create () in
  let r = Tva.Router.create ~secret_master:master ~router_id:1 ~sim ~link_bps:10e6 () in
  let specs = List.init 10 (fun i -> { kind = 0; flow = i; bytes = 50 }) in
  let ps = Array.of_list (List.map (build ~master ~now:0.) specs) in
  Tva.Router.process_batch r ~in_interface:0 ~off:2 ~len:5 ps;
  Alcotest.(check int) "window length" 5 (Tva.Router.counters r).Tva.Router.legacy;
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Router.process_batch: window out of bounds") (fun () ->
      Tva.Router.process_batch r ~in_interface:0 ~off:8 ~len:5 ps)

(* --- Sharding ------------------------------------------------------------ *)

let shard_k1_bit_identical () =
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let master = "shard-k1" in
      let sim = Sim.create () in
      let obs_a = Obs.Counters.create ~name:"unsharded" () in
      let r_plain =
        Tva.Router.create ~obs:obs_a ~cache_entries:8 ~secret_master:master ~router_id:1 ~sim
          ~link_bps:10e6 ()
      in
      let sp =
        Forwarder.Shardpath.create ~observe:true ~cache_entries:8 ~k:1 ~secret_master:master
          ~router_id:1 ~sim ~link_bps:10e6 ()
      in
      let specs = gen_specs st 500 ~flows:16 in
      let ps_a = List.map (build ~master ~now:0.) specs in
      let ps_b = List.map (build ~master ~now:0.) specs in
      List.iter (fun p -> Tva.Router.process r_plain ~in_interface:0 p) ps_a;
      Forwarder.Shardpath.process_batch sp ~in_interface:0 (Array.of_list ps_b);
      let what = Printf.sprintf "k1 seed %d" seed in
      check_packets_equal ~what ps_a ps_b;
      check_counters_equal ~what (Tva.Router.counters r_plain)
        (Forwarder.Shardpath.merged_counters sp);
      check_events_equal ~what (snap_events obs_a) (Forwarder.Shardpath.merged_events sp);
      let ca = Tva.Router.cache r_plain in
      let cb = Tva.Router.cache (Forwarder.Shardpath.router sp 0) in
      Alcotest.(check int) (what ^ ": cache size") (Tva.Flow_cache.size ca)
        (Tva.Flow_cache.size cb);
      Alcotest.(check int) (what ^ ": evictions") (Tva.Flow_cache.evictions ca)
        (Tva.Flow_cache.evictions cb))
    [ 7; 99 ]

let shard_occupancy_conservation () =
  let st = Random.State.make [| 5 |] in
  let master = "shard-occ" in
  let sim = Sim.create () in
  let r_plain =
    Tva.Router.create ~cache_entries:64 ~secret_master:master ~router_id:1 ~sim ~link_bps:10e6 ()
  in
  let sp =
    Forwarder.Shardpath.create ~cache_entries:64 ~k:4 ~secret_master:master ~router_id:1 ~sim
      ~link_bps:10e6 ()
  in
  let specs = gen_specs st 600 ~flows:24 in
  let ps_a = List.map (build ~master ~now:0.) specs in
  let ps_b = List.map (build ~master ~now:0.) specs in
  List.iter (fun p -> Tva.Router.process r_plain ~in_interface:0 p) ps_a;
  Forwarder.Shardpath.process_batch sp ~in_interface:0 (Array.of_list ps_b);
  (* Flows partition across shards, so while under capacity the occupancy
     and the counter totals are conserved exactly. *)
  Alcotest.(check int) "occupancy conserved"
    (Tva.Flow_cache.size (Tva.Router.cache r_plain))
    (Forwarder.Shardpath.occupancy sp);
  check_counters_equal ~what:"k4 totals" (Tva.Router.counters r_plain)
    (Forwarder.Shardpath.merged_counters sp)

let shard_staged_matches_sequential () =
  let st = Random.State.make [| 21 |] in
  let master = "shard-staged" in
  let sim = Sim.create () in
  let mk () =
    Forwarder.Shardpath.create ~observe:true ~cache_entries:64 ~k:4 ~secret_master:master
      ~router_id:1 ~sim ~link_bps:10e6 ()
  in
  let sp_seq = mk () and sp_par = mk () in
  let specs = gen_specs st 600 ~flows:24 in
  let ps_a = List.map (build ~master ~now:0.) specs in
  let ps_b = List.map (build ~master ~now:0.) specs in
  Forwarder.Shardpath.process_batch sp_seq ~in_interface:0 (Array.of_list ps_a);
  Forwarder.Shardpath.process_staged ~jobs:4 sp_par ~in_interface:0 (Array.of_list ps_b);
  check_packets_equal ~what:"staged" ps_a ps_b;
  check_counters_equal ~what:"staged totals"
    (Forwarder.Shardpath.merged_counters sp_seq)
    (Forwarder.Shardpath.merged_counters sp_par);
  check_events_equal ~what:"staged events"
    (Forwarder.Shardpath.merged_events sp_seq)
    (Forwarder.Shardpath.merged_events sp_par);
  (* Per-shard (not just total) state must agree: same partition, same
     per-shard processing, whatever the domain count. *)
  for s = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "shard %d occupancy" s)
      (Tva.Flow_cache.size (Tva.Router.cache (Forwarder.Shardpath.router sp_seq s)))
      (Tva.Flow_cache.size (Tva.Router.cache (Forwarder.Shardpath.router sp_par s)))
  done

let shard_partition_is_stable () =
  let sp =
    Forwarder.Shardpath.create ~cache_entries:64 ~k:4 ~secret_master:"part" ~router_id:1
      ~sim:(Sim.create ()) ~link_bps:10e6 ()
  in
  let packets =
    Array.init 100 (fun i ->
        Wire.Packet.make ~src:(flow_src (i mod 13)) ~dst ~created:0. (Wire.Packet.Raw 40))
  in
  let parts = Forwarder.Shardpath.partition sp packets in
  Alcotest.(check int) "partition covers everything" 100
    (Array.fold_left (fun acc a -> acc + Array.length a) 0 parts);
  (* Stability: within a shard, packets keep submission order. *)
  Array.iter
    (fun part ->
      let ids = Array.map (fun (p : Wire.Packet.t) -> p.Wire.Packet.id) part in
      let sorted = Array.copy ids in
      Array.sort compare sorted;
      Alcotest.(check bool) "submission order" true (ids = sorted))
    parts;
  (* Placement is per-flow: each flow's packets land on one shard. *)
  Array.iteri
    (fun s part ->
      Array.iter
        (fun (p : Wire.Packet.t) ->
          Alcotest.(check int) "flow maps to its shard" s
            (Forwarder.Shardpath.shard_of sp ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst))
        part)
    parts

(* --- Flow_cache presize --------------------------------------------------- *)

let presize_semantics_unchanged () =
  (* A presized cache must behave identically to an organically grown one
     (hint affects layout, not semantics): same inserts, same lookups. *)
  let mk presize = Tva.Flow_cache.create ?presize ~max_entries:256 () in
  let a = mk None and b = mk (Some 256) in
  for f = 0 to 199 do
    let src = flow_src f in
    List.iter
      (fun c ->
        match
          Tva.Flow_cache.insert c ~now:0. ~src ~dst ~nonce:(flow_nonce f) ~n_kb:8 ~t_sec:10
            ~cap_ts:0 ~packet_bytes:100
        with
        | Tva.Flow_cache.Inserted _ -> ()
        | _ -> Alcotest.fail "insert failed")
      [ a; b ]
  done;
  Alcotest.(check int) "same size" (Tva.Flow_cache.size a) (Tva.Flow_cache.size b);
  for f = 0 to 199 do
    let src = flow_src f in
    let la = Tva.Flow_cache.lookup a ~src ~dst and lb = Tva.Flow_cache.lookup b ~src ~dst in
    Alcotest.(check bool) "same hit" (la <> None) (lb <> None)
  done;
  Alcotest.check_raises "nonpositive presize"
    (Invalid_argument "Flow_cache.create: presize must be positive") (fun () ->
      ignore (Tva.Flow_cache.create ~presize:0 ~max_entries:16 ()));
  let c = mk None in
  Tva.Flow_cache.presize c 256;
  Tva.Flow_cache.presize c 256;
  (* idempotent *)
  Alcotest.check_raises "nonpositive presize (grow)"
    (Invalid_argument "Flow_cache.presize: hint must be positive") (fun () ->
      Tva.Flow_cache.presize c 0)

(* --- size_fast and the paired hashes -------------------------------------- *)

let size_fast_matches_size () =
  let cap = mint_cap ~master:"sz" ~now:0. ~src:(flow_src 1) ~dst ~n_kb:32 ~t_sec:10 in
  let shims =
    [
      None;
      Some (Wire.Cap_shim.request ());
      Some (Wire.Cap_shim.regular ~nonce:5L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:false ());
      Some (Wire.Cap_shim.regular ~nonce:5L ~caps:[ cap ] ~n_kb:32 ~t_sec:10 ~renewal:false ());
      Some (Wire.Cap_shim.regular ~nonce:5L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:true ());
      Some
        (Wire.Cap_shim.regular ~fresh_precaps:[ cap; cap ] ~nonce:5L ~caps:[ cap ] ~n_kb:32
           ~t_sec:10 ~renewal:true ());
    ]
  in
  List.iteri
    (fun i shim ->
      List.iter
        (fun demote ->
          let p = Wire.Packet.make ?shim ~src:(flow_src 1) ~dst ~created:0. (Wire.Packet.Raw 77) in
          if demote then
            (match p.Wire.Packet.shim with
            | Some s -> s.Wire.Cap_shim.demoted <- true
            | None -> ());
          Alcotest.(check int)
            (Printf.sprintf "shape %d demoted=%b" i demote)
            (Wire.Packet.size p) (Wire.Packet.size_fast p))
        [ false; true ])
    shims;
  (* And with return info set, the nonce-only shape must fall back. *)
  let p =
    Wire.Packet.make
      ~shim:(Wire.Cap_shim.regular ~nonce:5L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:false ())
      ~src:(flow_src 1) ~dst ~created:0. (Wire.Packet.Raw 77)
  in
  (match p.Wire.Packet.shim with
  | Some s -> s.Wire.Cap_shim.return_info <- Some Wire.Cap_shim.Demotion_notice
  | None -> ());
  Alcotest.(check int) "return info falls back" (Wire.Packet.size p) (Wire.Packet.size_fast p)

let pair_hash_matches_two_calls () =
  let st = Random.State.make [| 3 |] in
  for _ = 1 to 2000 do
    let k0 = Random.State.int64 st Int64.max_int and k1 = Random.State.int64 st Int64.max_int in
    let len = 8 + Random.State.int st 8 in
    let w0a = Random.State.int64 st Int64.max_int
    and w0b = Random.State.int64 st Int64.max_int in
    let taila = Int64.of_int (Random.State.int st 0xFFFFFF)
    and tailb = Int64.of_int (Random.State.int st 0xFFFFFF) in
    let da, db = Crypto.Siphash.mac_short_k2 ~k0 ~k1 ~len ~w0a ~taila ~w0b ~tailb in
    let ea = Crypto.Siphash.mac_short_k ~k0 ~k1 ~len ~w0:w0a ~tail:taila in
    let eb = Crypto.Siphash.mac_short_k ~k0 ~k1 ~len ~w0:w0b ~tail:tailb in
    if not (Int64.equal da ea && Int64.equal db eb) then
      Alcotest.failf "mac_short_k2 diverged from mac_short_k at len %d" len
  done

let keyed_pair_matches_two_calls () =
  List.iter
    (fun (module H : Crypto.Keyed_hash.S) ->
      let prep = H.prepare "pair-entry-point-key" in
      let st = Random.State.make [| 9 |] in
      for _ = 1 to 200 do
        let src_a = Random.State.int st 0x3FFFFFFF
        and dst_a = Random.State.int st 0x3FFFFFFF
        and src_b = Random.State.int st 0x3FFFFFFF
        and dst_b = Random.State.int st 0x3FFFFFFF in
        let ts_a = Random.State.int st 256 and ts_b = Random.State.int st 256 in
        let pa, pb = H.mac56_precap_p2 ~prep ~src_a ~dst_a ~ts_a ~src_b ~dst_b ~ts_b in
        Alcotest.(check int64)
          (H.name ^ " precap pair a")
          (H.mac56_precap_p ~prep ~src:src_a ~dst:dst_a ~ts:ts_a)
          pa;
        Alcotest.(check int64)
          (H.name ^ " precap pair b")
          (H.mac56_precap_p ~prep ~src:src_b ~dst:dst_b ~ts:ts_b)
          pb;
        let n_kb_a = Random.State.int st 1024 and n_kb_b = Random.State.int st 1024 in
        let t_sec_a = Random.State.int st 64 and t_sec_b = Random.State.int st 64 in
        let ca, cb =
          H.mac56_cap_p2 ~prep ~precap_ts_a:ts_a ~precap_hash_a:pa ~n_kb_a ~t_sec_a
            ~precap_ts_b:ts_b ~precap_hash_b:pb ~n_kb_b ~t_sec_b
        in
        Alcotest.(check int64)
          (H.name ^ " cap pair a")
          (H.mac56_cap_p ~prep ~precap_ts:ts_a ~precap_hash:pa ~n_kb:n_kb_a ~t_sec:t_sec_a)
          ca;
        Alcotest.(check int64)
          (H.name ^ " cap pair b")
          (H.mac56_cap_p ~prep ~precap_ts:ts_b ~precap_hash:pb ~n_kb:n_kb_b ~t_sec:t_sec_b)
          cb
      done)
    [
      (module Crypto.Keyed_hash.Fast : Crypto.Keyed_hash.S);
      (module Crypto.Keyed_hash.Aes : Crypto.Keyed_hash.S);
      (module Crypto.Keyed_hash.Sha : Crypto.Keyed_hash.S);
    ]

let expired_ts_matches_expired () =
  for now_i = 0 to 600 do
    let now = float_of_int now_i *. 0.7 in
    let now_ts = Crypto.Secret.timestamp ~now in
    for ts = 0 to 255 do
      List.iter
        (fun t_sec ->
          if
            Bool.not
              (Bool.equal
                 (Tva.Capability.expired ~now ~ts ~t_sec)
                 (Tva.Capability.expired_ts ~now_ts ~ts ~t_sec))
          then Alcotest.failf "expired_ts diverged at now=%f ts=%d t=%d" now ts t_sec)
        [ 0; 1; 10; 63 ]
    done
  done

(* --- Fastpath batching ---------------------------------------------------- *)

let fastpath_validate_batch_counts () =
  let fp = Forwarder.Fastpath.create () in
  List.iter
    (fun n -> Alcotest.(check int) (Printf.sprintf "all %d valid" n) n
        (Forwarder.Fastpath.validate_batch fp n))
    [ 0; 1; 2; 7; 64 ];
  let fp_fast =
    Forwarder.Fastpath.create
      ~hash_precap:(module Crypto.Keyed_hash.Fast)
      ~hash_cap:(module Crypto.Keyed_hash.Fast)
      ()
  in
  Alcotest.(check int) "siphash pairing agrees" 33 (Forwarder.Fastpath.validate_batch fp_fast 33)

let fastpath_run_batch_smoke () =
  let fp = Forwarder.Fastpath.create () in
  let ops = Array.of_list Forwarder.Fastpath.all_ops in
  for _ = 1 to 50 do
    Forwarder.Fastpath.run_batch fp (Array.append ops ops)
  done;
  List.iter
    (fun op ->
      ignore (Forwarder.Fastpath.op_class op);
      ignore (Forwarder.Fastpath.class_name (Forwarder.Fastpath.op_class op)))
    Forwarder.Fastpath.all_ops

(* --- The batch allocation budget ------------------------------------------ *)

let batch_allocation_budget () =
  let budget = 2. in
  let master = "batch-budget" in
  let sim = Sim.create () in
  let router = Tva.Router.create ~secret_master:master ~router_id:1 ~sim ~link_bps:10e6 () in
  let src = flow_src 1 in
  let cap = mint_cap ~master ~now:0. ~src ~dst ~n_kb:1023 ~t_sec:32 in
  let first =
    Wire.Packet.make
      ~shim:(Wire.Cap_shim.regular ~nonce:3L ~caps:[ cap ] ~n_kb:1023 ~t_sec:32 ~renewal:false ())
      ~src ~dst ~created:0. (Wire.Packet.Raw 100)
  in
  Tva.Router.process router ~in_interface:0 first;
  let batch =
    Array.init 64 (fun _ ->
        Wire.Packet.make
          ~shim:(Wire.Cap_shim.regular ~nonce:3L ~caps:[] ~n_kb:1023 ~t_sec:32 ~renewal:false ())
          ~src ~dst ~created:0. (Wire.Packet.Raw 10))
  in
  for _ = 1 to 20 do
    Tva.Router.process_batch router ~in_interface:0 batch
  done;
  let passes = 400 in
  Gc.full_major ();
  let words0 = Gc.minor_words () in
  for _ = 1 to passes do
    Tva.Router.process_batch router ~in_interface:0 batch
  done;
  let per_packet = (Gc.minor_words () -. words0) /. float_of_int (passes * 64) in
  Alcotest.(check bool) "stayed on the cached path" false
    (match batch.(0).Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true);
  if per_packet > budget then
    Alcotest.failf "batch path allocates %.2f minor words/packet (budget %g)" per_packet budget

let suite =
  [
    Alcotest.test_case "process_batch ≡ sequential process (differential)" `Quick
      batch_differential;
    Alcotest.test_case "in-batch insert visible to later packets" `Quick
      batch_intra_batch_same_flow;
    Alcotest.test_case "process_batch window handling" `Quick batch_window;
    Alcotest.test_case "sharded K=1 bit-identical to unsharded" `Quick shard_k1_bit_identical;
    Alcotest.test_case "K=4 occupancy and counter conservation" `Quick
      shard_occupancy_conservation;
    Alcotest.test_case "staged shards match sequential reference" `Quick
      shard_staged_matches_sequential;
    Alcotest.test_case "partition is stable and per-flow" `Quick shard_partition_is_stable;
    Alcotest.test_case "presize changes layout, not semantics" `Quick presize_semantics_unchanged;
    Alcotest.test_case "size_fast = size on all shim shapes" `Quick size_fast_matches_size;
    Alcotest.test_case "mac_short_k2 = two mac_short_k" `Quick pair_hash_matches_two_calls;
    Alcotest.test_case "keyed pair entry points = two calls" `Quick keyed_pair_matches_two_calls;
    Alcotest.test_case "expired_ts = expired" `Quick expired_ts_matches_expired;
    Alcotest.test_case "fastpath validate_batch verdicts" `Quick fastpath_validate_batch_counts;
    Alcotest.test_case "fastpath run_batch smoke" `Quick fastpath_run_batch_smoke;
    Alcotest.test_case "batch path allocation budget" `Quick batch_allocation_budget;
  ]
