(* The TVA core: capability crypto, the bounded flow cache and its 2N
   byte-bound property, path identifiers, router packet processing (Fig. 6),
   destination policies, and the host protocol end to end. *)

let fast = (module Crypto.Keyed_hash.Fast : Crypto.Keyed_hash.S)

let src = Wire.Addr.of_int 0x0a000001
let dst = Wire.Addr.of_int 0xc0a80001

(* --- Capability construction and validation -------------------------- *)

let mint_and_validate () =
  let secret = Crypto.Secret.create ~master:"r1" in
  let precap = Tva.Capability.mint_precap ~hash:fast ~secret ~now:5. ~src ~dst in
  let cap = Tva.Capability.cap_of_precap ~hash:fast ~precap ~n_kb:32 ~t_sec:10 in
  Alcotest.(check string) "valid" "valid"
    (Format.asprintf "%a" Tva.Capability.pp_verdict
       (Tva.Capability.validate ~hash:fast ~secret ~now:6. ~src ~dst ~n_kb:32 ~t_sec:10 cap))

let validation_is_bound_to_addresses () =
  let secret = Crypto.Secret.create ~master:"r1" in
  let precap = Tva.Capability.mint_precap ~hash:fast ~secret ~now:5. ~src ~dst in
  let cap = Tva.Capability.cap_of_precap ~hash:fast ~precap ~n_kb:32 ~t_sec:10 in
  let thief = Wire.Addr.of_int 0x0b000001 in
  Alcotest.(check bool) "stolen by another source" true
    (Tva.Capability.validate ~hash:fast ~secret ~now:6. ~src:thief ~dst ~n_kb:32 ~t_sec:10 cap
    = Tva.Capability.Bad_hash);
  Alcotest.(check bool) "redirected to another destination" true
    (Tva.Capability.validate ~hash:fast ~secret ~now:6. ~src ~dst:thief ~n_kb:32 ~t_sec:10 cap
    = Tva.Capability.Bad_hash)

let validation_is_bound_to_n_and_t () =
  let secret = Crypto.Secret.create ~master:"r1" in
  let precap = Tva.Capability.mint_precap ~hash:fast ~secret ~now:5. ~src ~dst in
  let cap = Tva.Capability.cap_of_precap ~hash:fast ~precap ~n_kb:32 ~t_sec:10 in
  (* Inflating N or T breaks the second hash: fine-grained limits cannot be
     tampered with. *)
  Alcotest.(check bool) "bigger N rejected" true
    (Tva.Capability.validate ~hash:fast ~secret ~now:6. ~src ~dst ~n_kb:1000 ~t_sec:10 cap
    = Tva.Capability.Bad_hash);
  Alcotest.(check bool) "longer T rejected" true
    (Tva.Capability.validate ~hash:fast ~secret ~now:6. ~src ~dst ~n_kb:32 ~t_sec:63 cap
    = Tva.Capability.Bad_hash)

let validation_is_bound_to_router_secret () =
  let secret = Crypto.Secret.create ~master:"r1" in
  let other = Crypto.Secret.create ~master:"r2" in
  let precap = Tva.Capability.mint_precap ~hash:fast ~secret ~now:5. ~src ~dst in
  let cap = Tva.Capability.cap_of_precap ~hash:fast ~precap ~n_kb:32 ~t_sec:10 in
  Alcotest.(check bool) "another router's secret" true
    (Tva.Capability.validate ~hash:fast ~secret:other ~now:6. ~src ~dst ~n_kb:32 ~t_sec:10 cap
    = Tva.Capability.Bad_hash)

let capability_expires_after_t () =
  let secret = Crypto.Secret.create ~master:"r1" in
  let precap = Tva.Capability.mint_precap ~hash:fast ~secret ~now:5. ~src ~dst in
  let cap = Tva.Capability.cap_of_precap ~hash:fast ~precap ~n_kb:32 ~t_sec:10 in
  Alcotest.(check bool) "alive at T" true
    (Tva.Capability.validate ~hash:fast ~secret ~now:15. ~src ~dst ~n_kb:32 ~t_sec:10 cap
    = Tva.Capability.Valid);
  Alcotest.(check bool) "dead after T" true
    (Tva.Capability.validate ~hash:fast ~secret ~now:16. ~src ~dst ~n_kb:32 ~t_sec:10 cap
    = Tva.Capability.Expired)

let capability_survives_secret_rotation_within_t () =
  let secret = Crypto.Secret.create ~master:"r1" in
  (* Minted just before the 128 s rotation, checked just after: the high
     bit of the timestamp directs the router to the previous secret. *)
  let precap = Tva.Capability.mint_precap ~hash:fast ~secret ~now:126. ~src ~dst in
  let cap = Tva.Capability.cap_of_precap ~hash:fast ~precap ~n_kb:32 ~t_sec:10 in
  Alcotest.(check bool) "valid across rotation" true
    (Tva.Capability.validate ~hash:fast ~secret ~now:130. ~src ~dst ~n_kb:32 ~t_sec:10 cap
    = Tva.Capability.Valid)

let forged_capabilities_rejected =
  QCheck.Test.make ~name:"capability: random 64-bit values never validate" ~count:300
    QCheck.(pair (int_range 0 255) int64)
    (fun (ts, h) ->
      let secret = Crypto.Secret.create ~master:"r1" in
      let cap = { Wire.Cap_shim.ts; hash = Int64.logand h 0xFFFFFFFFFFFFFFL } in
      Tva.Capability.validate ~hash:fast ~secret ~now:(float_of_int ts +. 0.5) ~src ~dst ~n_kb:32
        ~t_sec:10 cap
      <> Tva.Capability.Valid)

let two_hash_pairing_matches () =
  (* validate2 with AES + SHA accepts exactly what the same pairing
     minted. *)
  let aes = (module Crypto.Keyed_hash.Aes : Crypto.Keyed_hash.S) in
  let sha = (module Crypto.Keyed_hash.Sha : Crypto.Keyed_hash.S) in
  let secret = Crypto.Secret.create ~master:"proto" in
  let precap = Tva.Capability.mint_precap2 ~precap_hash:aes ~secret ~now:3. ~src ~dst in
  let cap = Tva.Capability.cap_of_precap2 ~cap_hash:sha ~precap ~n_kb:8 ~t_sec:5 in
  Alcotest.(check bool) "aes+sha validates" true
    (Tva.Capability.validate2 ~precap_hash:aes ~cap_hash:sha ~secret ~now:4. ~src ~dst ~n_kb:8
       ~t_sec:5 cap
    = Tva.Capability.Valid);
  Alcotest.(check bool) "mismatched pairing rejects" true
    (Tva.Capability.validate2 ~precap_hash:sha ~cap_hash:aes ~secret ~now:4. ~src ~dst ~n_kb:8
       ~t_sec:5 cap
    = Tva.Capability.Bad_hash)

(* --- Path identifiers -------------------------------------------------- *)

let path_id_deterministic () =
  Alcotest.(check int) "stable" (Tva.Path_id.tag ~router_id:1 ~interface_id:2)
    (Tva.Path_id.tag ~router_id:1 ~interface_id:2)

let path_id_16_bits () =
  for r = 0 to 20 do
    for i = 0 to 20 do
      let tag = Tva.Path_id.tag ~router_id:r ~interface_id:i in
      if tag < 0 || tag > 0xffff then Alcotest.failf "tag %d out of range" tag
    done
  done

let path_id_most_recent () =
  let shim = Wire.Cap_shim.request () in
  Alcotest.(check int) "untagged" 0 (Tva.Path_id.most_recent shim);
  Tva.Path_id.push shim 100;
  Tva.Path_id.push shim 200;
  Alcotest.(check int) "latest tag wins" 200 (Tva.Path_id.most_recent shim)

let path_id_ignores_regular () =
  let shim = Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:1 ~t_sec:1 ~renewal:false () in
  Tva.Path_id.push shim 7;
  Alcotest.(check int) "no-op on regular" 0 (Tva.Path_id.most_recent shim)

(* --- Flow cache (Sec. 3.6) ---------------------------------------------- *)

let cache_charges_and_limits () =
  let cache = Tva.Flow_cache.create ~max_entries:16 () in
  match
    Tva.Flow_cache.insert cache ~now:0. ~src ~dst ~nonce:1L ~n_kb:4 ~t_sec:10
      ~cap_ts:0 ~packet_bytes:1000
  with
  | Tva.Flow_cache.Inserted entry ->
      Alcotest.(check int) "first packet charged" 1000 entry.Tva.Flow_cache.bytes_used;
      Alcotest.(check bool) "more fits" true
        (Tva.Flow_cache.charge cache entry ~now:0.1 ~bytes:3000 = Tva.Flow_cache.Charged);
      (* 4 KB = 4096 B budget; 1000+3000+97 just exceeds it. *)
      Alcotest.(check bool) "over budget rejected" true
        (Tva.Flow_cache.charge cache entry ~now:0.2 ~bytes:97 = Tva.Flow_cache.Byte_limit);
      Alcotest.(check bool) "96 still fits exactly" true
        (Tva.Flow_cache.charge cache entry ~now:0.2 ~bytes:96 = Tva.Flow_cache.Charged)
  | _ -> Alcotest.fail "insert failed"

let cache_over_limit_first_packet () =
  let cache = Tva.Flow_cache.create ~max_entries:4 () in
  Alcotest.(check bool) "oversized first packet" true
    (Tva.Flow_cache.insert cache ~now:0. ~src ~dst ~nonce:1L ~n_kb:1 ~t_sec:10 ~cap_ts:0
       ~packet_bytes:2000
    = Tva.Flow_cache.Over_limit)

let cache_ttl_reclaim () =
  let cache = Tva.Flow_cache.create ~max_entries:4 () in
  (match
     Tva.Flow_cache.insert cache ~now:0. ~src ~dst ~nonce:1L ~n_kb:10 ~t_sec:10 ~cap_ts:0
       ~packet_bytes:1024
   with
  | Tva.Flow_cache.Inserted entry ->
      (* ttl = L*T/N = 1024*10/10240 = 1 s. *)
      Alcotest.(check (float 1e-9)) "initial ttl" 1. (Tva.Flow_cache.ttl_remaining cache entry ~now:0.);
      Alcotest.(check bool) "not reclaimable yet" true (Tva.Flow_cache.sweep cache ~now:0.5 = 0);
      Alcotest.(check int) "reclaimed when expired" 1 (Tva.Flow_cache.sweep cache ~now:1.5)
  | _ -> Alcotest.fail "insert failed");
  Alcotest.(check int) "cache empty" 0 (Tva.Flow_cache.size cache)

let cache_bounded_size () =
  let cache = Tva.Flow_cache.create ~max_entries:2 () in
  let insert i =
    Tva.Flow_cache.insert cache ~now:0. ~src:(Wire.Addr.of_int i) ~dst ~nonce:1L ~n_kb:10
      ~t_sec:10 ~cap_ts:0 ~packet_bytes:5120
  in
  (match insert 1 with Tva.Flow_cache.Inserted _ -> () | _ -> Alcotest.fail "1");
  (match insert 2 with Tva.Flow_cache.Inserted _ -> () | _ -> Alcotest.fail "2");
  (* Full, nothing reclaimable (5 s ttls): attackers cannot make a third
     entry. *)
  (match insert 3 with
  | Tva.Flow_cache.Cache_full -> ()
  | _ -> Alcotest.fail "expected Cache_full");
  Alcotest.(check int) "still two" 2 (Tva.Flow_cache.size cache)

let cache_full_reclaims_expired () =
  let cache = Tva.Flow_cache.create ~max_entries:1 () in
  (match
     Tva.Flow_cache.insert cache ~now:0. ~src ~dst ~nonce:1L ~n_kb:10 ~t_sec:10 ~cap_ts:0
       ~packet_bytes:1024
   with
  | Tva.Flow_cache.Inserted _ -> ()
  | _ -> Alcotest.fail "insert");
  (* At t=2 the 1 s ttl has lapsed: insertion of a new flow evicts it. *)
  match
    Tva.Flow_cache.insert cache ~now:2. ~src:(Wire.Addr.of_int 9) ~dst ~nonce:2L ~n_kb:10
      ~t_sec:10 ~cap_ts:2 ~packet_bytes:1024
  with
  | Tva.Flow_cache.Inserted _ -> ()
  | _ -> Alcotest.fail "expected reclaim + insert"

let cache_lookup_and_remove () =
  let cache = Tva.Flow_cache.create ~max_entries:4 () in
  (match
     Tva.Flow_cache.insert cache ~now:0. ~src ~dst ~nonce:7L ~n_kb:10 ~t_sec:10 ~cap_ts:0
       ~packet_bytes:100
   with
  | Tva.Flow_cache.Inserted entry ->
      (match Tva.Flow_cache.lookup cache ~src ~dst with
      | Some e -> Alcotest.(check bool) "lookup hits" true (e == entry)
      | None -> Alcotest.fail "lookup missed");
      Alcotest.(check bool) "reverse direction is a different flow" true
        (Tva.Flow_cache.lookup cache ~src:dst ~dst:src = None);
      Tva.Flow_cache.remove cache entry;
      Alcotest.(check bool) "gone" true (Tva.Flow_cache.lookup cache ~src ~dst = None)
  | _ -> Alcotest.fail "insert failed")

let cache_renew_resets_budget () =
  let cache = Tva.Flow_cache.create ~max_entries:4 () in
  match
    Tva.Flow_cache.insert cache ~now:0. ~src ~dst ~nonce:1L ~n_kb:4 ~t_sec:10 ~cap_ts:0
      ~packet_bytes:4000
  with
  | Tva.Flow_cache.Inserted entry ->
      Alcotest.(check bool) "old budget nearly spent" true
        (Tva.Flow_cache.charge cache entry ~now:0.1 ~bytes:1000 = Tva.Flow_cache.Byte_limit);
      Alcotest.(check bool) "renewal accepted" true
        (Tva.Flow_cache.renew cache entry ~now:0.2 ~nonce:2L ~n_kb:4 ~t_sec:10 ~cap_ts:0
           ~packet_bytes:1000
        = Tva.Flow_cache.Charged);
      Alcotest.(check int64) "new nonce" 2L entry.Tva.Flow_cache.nonce;
      Alcotest.(check int) "budget restarted" 1000 entry.Tva.Flow_cache.bytes_used
  | _ -> Alcotest.fail "insert failed"

(* The paper's Sec. 3.6 theorem: no matter when the router reclaims state,
   a single capability can never move more than 2N bytes.  The adversary
   here controls packet sizes, packet timing and eviction timing. *)
let two_n_byte_bound =
  QCheck.Test.make ~name:"flow cache: adversarial schedule never exceeds 2N bytes" ~count:300
    QCheck.(
      triple (int_range 1 20) (* N in KB *)
        (list_of_size Gen.(int_range 1 80) (pair (int_range 1 1500) (float_range 0. 1.)))
        (list_of_size Gen.(int_range 0 40) (float_range 0. 1.)))
    (fun (n_kb, sends, evictions) ->
      let t_sec = 10 in
      let horizon = float_of_int t_sec in
      let cache = Tva.Flow_cache.create ~max_entries:4 () in
      (* Sort both schedules into one adversarial timeline over [0, T). *)
      let events =
        List.sort (fun (a, _) (b, _) -> compare a b)
          (List.map (fun (size, frac) -> (frac *. horizon, `Send size)) sends
          @ List.map (fun frac -> (frac *. horizon, `Evict)) evictions)
      in
      let accepted = ref 0 in
      List.iter
        (fun (now, ev) ->
          match ev with
          | `Send size -> begin
              match Tva.Flow_cache.lookup cache ~src ~dst with
              | Some entry -> begin
                  match Tva.Flow_cache.charge cache entry ~now ~bytes:size with
                  | Tva.Flow_cache.Charged -> accepted := !accepted + size
                  | Tva.Flow_cache.Byte_limit -> ()
                end
              | None -> begin
                  match
                    Tva.Flow_cache.insert cache ~now ~src ~dst ~nonce:1L ~n_kb ~t_sec ~cap_ts:0
                      ~packet_bytes:size
                  with
                  | Tva.Flow_cache.Inserted _ -> accepted := !accepted + size
                  | Tva.Flow_cache.Cache_full | Tva.Flow_cache.Over_limit -> ()
                end
            end
          | `Evict ->
              (* The router may reclaim any record whose ttl has lapsed —
                 and only those. *)
              ignore (Tva.Flow_cache.sweep cache ~now))
        events;
      !accepted <= 2 * n_kb * 1024)

let no_eviction_means_exactly_n =
  QCheck.Test.make ~name:"flow cache: without memory pressure the limit is exactly N" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 1 1500))
    (fun sizes ->
      let n_kb = 4 in
      let cache = Tva.Flow_cache.create ~max_entries:4 () in
      let accepted = ref 0 in
      let now = ref 0.0 in
      List.iter
        (fun size ->
          now := !now +. 0.001;
          match Tva.Flow_cache.lookup cache ~src ~dst with
          | Some entry -> begin
              match Tva.Flow_cache.charge cache entry ~now:!now ~bytes:size with
              | Tva.Flow_cache.Charged -> accepted := !accepted + size
              | Tva.Flow_cache.Byte_limit -> ()
            end
          | None -> begin
              match
                Tva.Flow_cache.insert cache ~now:!now ~src ~dst ~nonce:1L ~n_kb ~t_sec:10
                  ~cap_ts:0 ~packet_bytes:size
              with
              | Tva.Flow_cache.Inserted _ -> accepted := !accepted + size
              | Tva.Flow_cache.Cache_full | Tva.Flow_cache.Over_limit -> ()
            end)
        sizes;
      !accepted <= n_kb * 1024)

(* --- Router processing (Fig. 6) ----------------------------------------- *)

let make_router ?(trust_boundary = true) ?(secret = "router-secret") sim =
  Tva.Router.create ~trust_boundary ~secret_master:secret ~router_id:1 ~sim ~link_bps:10e6 ()

let advance sim t =
  ignore (Sim.schedule_at sim ~time:t (fun () -> ()));
  Sim.run sim

let request_packet () =
  Wire.Packet.make ~shim:(Wire.Cap_shim.request ()) ~src ~dst ~created:0. (Wire.Packet.Raw 250)

let router_stamps_requests () =
  let sim = Sim.create () in
  let router = make_router sim in
  let p = request_packet () in
  Tva.Router.process router ~in_interface:3 p;
  match p.Wire.Packet.shim with
  | Some { Wire.Cap_shim.kind = Wire.Cap_shim.Request req; _ } ->
      let path_ids = Wire.Cap_shim.path_ids req in
      Alcotest.(check int) "one tag" 1 (List.length path_ids);
      Alcotest.(check int) "one precap" 1 (Wire.Cap_shim.precap_count req);
      Alcotest.(check int) "tag is interface-determined"
        (Tva.Path_id.tag ~router_id:1 ~interface_id:3)
        (List.hd path_ids)
  | _ -> Alcotest.fail "not a request anymore"

let non_boundary_router_does_not_tag () =
  let sim = Sim.create () in
  let router = make_router ~trust_boundary:false sim in
  let p = request_packet () in
  Tva.Router.process router ~in_interface:3 p;
  match p.Wire.Packet.shim with
  | Some { Wire.Cap_shim.kind = Wire.Cap_shim.Request req; _ } ->
      Alcotest.(check int) "no tag" 0 (List.length (Wire.Cap_shim.path_ids req));
      Alcotest.(check int) "still a precap" 1 (Wire.Cap_shim.precap_count req)
  | _ -> Alcotest.fail "not a request anymore"

(* Drive a full grant through one router: request -> precap -> destination
   conversion -> regular packet. *)
let granted_regular sim router ~n_kb ~t_sec ~nonce =
  let req = request_packet () in
  Tva.Router.process router ~in_interface:0 req;
  let precap =
    match req.Wire.Packet.shim with
    | Some { Wire.Cap_shim.kind = Wire.Cap_shim.Request { rev_precaps = [ pc ]; _ }; _ } -> pc
    | _ -> Alcotest.fail "no precap"
  in
  ignore sim;
  let cap = Tva.Capability.cap_of_precap ~hash:fast ~precap ~n_kb ~t_sec in
  fun ?(renewal = false) ?(with_caps = true) ~bytes () ->
    let shim =
      Wire.Cap_shim.regular ~nonce ~caps:(if with_caps then [ cap ] else []) ~n_kb ~t_sec ~renewal
        ()
    in
    Wire.Packet.make ~shim ~src ~dst ~created:0. (Wire.Packet.Raw bytes)

let router_validates_and_caches () =
  let sim = Sim.create () in
  let router = make_router sim in
  let mk = granted_regular sim router ~n_kb:32 ~t_sec:10 ~nonce:42L in
  let p1 = mk ~bytes:1000 () in
  Tva.Router.process router ~in_interface:0 p1;
  Alcotest.(check bool) "not demoted" false
    (match p1.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true);
  Alcotest.(check int) "ptr advanced" 1
    (match p1.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.ptr | None -> -1);
  Alcotest.(check int) "validated via hashes" 1 (Tva.Router.counters router).Tva.Router.regular_validated;
  (* Nonce-only packet hits the cache. *)
  let p2 = mk ~with_caps:false ~bytes:1000 () in
  Tva.Router.process router ~in_interface:0 p2;
  Alcotest.(check bool) "cached accept" false
    (match p2.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true);
  Alcotest.(check int) "cache hit counted" 1 (Tva.Router.counters router).Tva.Router.regular_cached

let router_demotes_forgeries () =
  let sim = Sim.create () in
  let router = make_router sim in
  let shim =
    Wire.Cap_shim.regular ~nonce:1L
      ~caps:[ { Wire.Cap_shim.ts = 0; hash = 0x1234L } ]
      ~n_kb:32 ~t_sec:10 ~renewal:false ()
  in
  let p = Wire.Packet.make ~shim ~src ~dst ~created:0. (Wire.Packet.Raw 1000) in
  Tva.Router.process router ~in_interface:0 p;
  Alcotest.(check bool) "demoted" true shim.Wire.Cap_shim.demoted;
  Alcotest.(check int) "counted" 1 (Tva.Router.counters router).Tva.Router.demotions

let router_demotes_unknown_nonce () =
  let sim = Sim.create () in
  let router = make_router sim in
  let shim = Wire.Cap_shim.regular ~nonce:99L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:false () in
  let p = Wire.Packet.make ~shim ~src ~dst ~created:0. (Wire.Packet.Raw 1000) in
  Tva.Router.process router ~in_interface:0 p;
  Alcotest.(check bool) "demoted (no entry, no caps)" true shim.Wire.Cap_shim.demoted

let router_enforces_byte_limit () =
  let sim = Sim.create () in
  let router = make_router sim in
  (* 1 KB budget. *)
  let mk = granted_regular sim router ~n_kb:1 ~t_sec:10 ~nonce:7L in
  let p1 = mk ~bytes:800 () in
  Tva.Router.process router ~in_interface:0 p1;
  Alcotest.(check bool) "within budget" false
    (match p1.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true);
  let p2 = mk ~with_caps:false ~bytes:800 () in
  Tva.Router.process router ~in_interface:0 p2;
  Alcotest.(check bool) "over budget demoted" true
    (match p2.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> false)

let router_enforces_expiry () =
  let sim = Sim.create () in
  let router = make_router sim in
  let mk = granted_regular sim router ~n_kb:32 ~t_sec:5 ~nonce:8L in
  let p1 = mk ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p1;
  Alcotest.(check bool) "fresh ok" false
    (match p1.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true);
  advance sim 6.;
  let p2 = mk ~with_caps:false ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p2;
  Alcotest.(check bool) "expired demoted" true
    (match p2.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> false)

let router_renewal_mints_fresh_precap () =
  let sim = Sim.create () in
  let router = make_router sim in
  let mk = granted_regular sim router ~n_kb:32 ~t_sec:10 ~nonce:9L in
  let p1 = mk ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p1;
  let p2 = mk ~renewal:true ~with_caps:true ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p2;
  match p2.Wire.Packet.shim with
  | Some { Wire.Cap_shim.kind = Wire.Cap_shim.Regular { rev_fresh_precaps = [ pc ]; _ }; demoted; _ } ->
      Alcotest.(check bool) "not demoted" false demoted;
      (* The fresh pre-capability converts into a capability that validates
         against the same router. *)
      let cap = Tva.Capability.cap_of_precap ~hash:fast ~precap:pc ~n_kb:16 ~t_sec:8 in
      let shim = Wire.Cap_shim.regular ~nonce:10L ~caps:[ cap ] ~n_kb:16 ~t_sec:8 ~renewal:false () in
      let p3 = Wire.Packet.make ~shim ~src ~dst ~created:0. (Wire.Packet.Raw 100) in
      Tva.Router.process router ~in_interface:0 p3;
      Alcotest.(check bool) "renewed capability works" false shim.Wire.Cap_shim.demoted
  | _ -> Alcotest.fail "no fresh precap"

let router_cache_flush_demotes_nonce_only () =
  let sim = Sim.create () in
  let router = make_router sim in
  let mk = granted_regular sim router ~n_kb:32 ~t_sec:10 ~nonce:11L in
  Tva.Router.process router ~in_interface:0 (mk ~bytes:100 ());
  (* Route change / restart: cache gone (Sec. 3.8). *)
  Tva.Router.flush_cache router;
  let p = mk ~with_caps:false ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p;
  Alcotest.(check bool) "demoted after flush" true
    (match p.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> false);
  (* But a packet carrying the full capability list recovers. *)
  let p2 = mk ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p2;
  Alcotest.(check bool) "caps list re-establishes state" false
    (match p2.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true)

let router_secret_rotation_invalidates () =
  let sim = Sim.create () in
  let router = make_router sim in
  let mk = granted_regular sim router ~n_kb:32 ~t_sec:10 ~nonce:12L in
  Tva.Router.flush_cache router;
  Tva.Router.rotate_secret router;
  let p = mk ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p;
  Alcotest.(check bool) "old capability dead after restart" true
    (match p.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> false)

(* Each rotation must yield a fresh secret.  An earlier implementation
   derived the rotated master as [id ^ "/rotated"], so a second rotation was
   a no-op and capabilities minted after the first rotation survived it. *)
let router_two_rotations_distinct () =
  let sim = Sim.create () in
  let router = make_router sim in
  Tva.Router.rotate_secret router;
  (* Mint under the once-rotated secret; it must validate... *)
  let mk = granted_regular sim router ~n_kb:32 ~t_sec:10 ~nonce:13L in
  let p1 = mk ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p1;
  Alcotest.(check bool) "valid under first rotated secret" false
    (match p1.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true);
  (* ...and die under the twice-rotated one. *)
  Tva.Router.rotate_secret router;
  Tva.Router.flush_cache router;
  let p2 = mk ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p2;
  Alcotest.(check bool) "second rotation yields a distinct secret" true
    (match p2.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> false)

(* Regression guard for the zero-allocation hot path: a nonce-only packet
   hitting the flow cache must stay within the same minor-words budget the
   pps benchmark enforces (bench/pps_bench.ml). *)
let router_cached_path_allocation_budget () =
  let budget = 32. in
  let sim = Sim.create () in
  let router = make_router sim in
  let mk = granted_regular sim router ~n_kb:1023 ~t_sec:32 ~nonce:14L in
  let p0 = mk ~bytes:100 () in
  Tva.Router.process router ~in_interface:0 p0;
  Alcotest.(check bool) "entry established" false
    (match p0.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true);
  (* Small body so the loop stays far below the 1023 KB byte budget. *)
  let p = mk ~with_caps:false ~bytes:10 () in
  for _ = 1 to 100 do
    Tva.Router.process router ~in_interface:0 p
  done;
  let iters = 8000 in
  Gc.full_major ();
  let words0 = Gc.minor_words () in
  for _ = 1 to iters do
    Tva.Router.process router ~in_interface:0 p
  done;
  let per_packet = (Gc.minor_words () -. words0) /. float_of_int iters in
  Alcotest.(check bool) "stayed on the cached path" false
    (match p.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true);
  if per_packet > budget then
    Alcotest.failf "cached-nonce path allocates %.2f minor words/packet (budget %g)" per_packet
      budget

(* Same guard for the validate path (nonce mismatch, two hash checks).
   Alternating two nonces against one flow-cache entry forces every packet
   through full validation, as in bench/pps_bench.ml. *)
let router_validate_path_allocation_budget () =
  let budget = 56. in
  let sim = Sim.create () in
  let router = make_router sim in
  let mk_a = granted_regular sim router ~n_kb:1023 ~t_sec:32 ~nonce:15L in
  let mk_b = granted_regular sim router ~n_kb:1023 ~t_sec:32 ~nonce:16L in
  let p_a = mk_a ~bytes:10 () and p_b = mk_b ~bytes:10 () in
  let reset (p : Wire.Packet.t) =
    match p.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.ptr <- 0 | None -> ()
  in
  let one p =
    Tva.Router.process router ~in_interface:0 p;
    reset p
  in
  one p_a;
  one p_b;
  let iters = 4000 in
  Gc.full_major ();
  let words0 = Gc.minor_words () in
  for _ = 1 to iters do
    one p_a;
    one p_b
  done;
  let per_packet = (Gc.minor_words () -. words0) /. float_of_int (2 * iters) in
  Alcotest.(check bool) "packets kept validating" false
    (match p_a.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.demoted | None -> true);
  if per_packet > budget then
    Alcotest.failf "validate path allocates %.2f minor words/packet (budget %g)" per_packet budget

(* And for the request path (path-id tag + pre-capability mint).  The shim's
   accumulated lists are rewound in place so only the router's work counts. *)
let router_request_path_allocation_budget () =
  let budget = 32. in
  let sim = Sim.create () in
  let router = make_router sim in
  let p = request_packet () in
  let reset (p : Wire.Packet.t) =
    match p.Wire.Packet.shim with
    | Some ({ Wire.Cap_shim.kind = Wire.Cap_shim.Request req; _ } as shim) ->
        req.Wire.Cap_shim.rev_path_ids <- [];
        req.Wire.Cap_shim.rev_precaps <- [];
        shim.Wire.Cap_shim.demoted <- false
    | _ -> Alcotest.fail "not a request"
  in
  let one () =
    reset p;
    Tva.Router.process router ~in_interface:0 p
  in
  for _ = 1 to 100 do
    one ()
  done;
  let iters = 8000 in
  Gc.full_major ();
  let words0 = Gc.minor_words () in
  for _ = 1 to iters do
    one ()
  done;
  let per_packet = (Gc.minor_words () -. words0) /. float_of_int iters in
  if per_packet > budget then
    Alcotest.failf "request path allocates %.2f minor words/packet (budget %g)" per_packet budget

let router_passes_legacy () =
  let sim = Sim.create () in
  let router = make_router sim in
  let p = Wire.Packet.make ~src ~dst ~created:0. (Wire.Packet.Raw 1000) in
  Tva.Router.process router ~in_interface:0 p;
  Alcotest.(check int) "legacy counted" 1 (Tva.Router.counters router).Tva.Router.legacy;
  Alcotest.(check bool) "no shim added" true (p.Wire.Packet.shim = None)

let router_skips_demoted () =
  let sim = Sim.create () in
  let router = make_router sim in
  let shim = Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:1 ~t_sec:1 ~renewal:false () in
  shim.Wire.Cap_shim.demoted <- true;
  let p = Wire.Packet.make ~shim ~src ~dst ~created:0. (Wire.Packet.Raw 100) in
  Tva.Router.process router ~in_interface:0 p;
  Alcotest.(check int) "treated as legacy" 1 (Tva.Router.counters router).Tva.Router.legacy

(* --- Policies ------------------------------------------------------------ *)

let policy_allow_all () =
  let p = Tva.Policy.allow_all ~n_kb:7 ~t_sec:3 () in
  match Tva.Policy.decide p ~now:0. ~src ~renewal:false with
  | Tva.Policy.Granted { n_kb; t_sec } ->
      Alcotest.(check int) "n" 7 n_kb;
      Alcotest.(check int) "t" 3 t_sec
  | Tva.Policy.Refused -> Alcotest.fail "refused"

let policy_refuse_all () =
  let p = Tva.Policy.refuse_all () in
  Alcotest.(check bool) "refused" true
    (Tva.Policy.decide p ~now:0. ~src ~renewal:false = Tva.Policy.Refused)

let policy_client_requires_contact () =
  let p = Tva.Policy.client ~window:10. () in
  Alcotest.(check bool) "stranger refused" true
    (Tva.Policy.decide p ~now:0. ~src ~renewal:false = Tva.Policy.Refused);
  Tva.Policy.note_outgoing_request p ~now:1. ~dst:src;
  Alcotest.(check bool) "contacted peer granted" true
    (match Tva.Policy.decide p ~now:2. ~src ~renewal:false with
    | Tva.Policy.Granted _ -> true
    | Tva.Policy.Refused -> false);
  Alcotest.(check bool) "window lapses" true
    (Tva.Policy.decide p ~now:20. ~src ~renewal:false = Tva.Policy.Refused)

let policy_server_grants_once_to_suspicious () =
  let p = Tva.Policy.server ~suspicious:(fun a -> Wire.Addr.equal a src) () in
  Alcotest.(check bool) "first grant" true
    (match Tva.Policy.decide p ~now:0. ~src ~renewal:false with
    | Tva.Policy.Granted _ -> true
    | Tva.Policy.Refused -> false);
  Alcotest.(check bool) "renewal refused" true
    (Tva.Policy.decide p ~now:1. ~src ~renewal:true = Tva.Policy.Refused);
  Alcotest.(check bool) "now blacklisted" true (Tva.Policy.is_blacklisted p src);
  (* An innocent host keeps being granted. *)
  let good = Wire.Addr.of_int 0x0a000002 in
  Alcotest.(check bool) "good host re-granted" true
    (match Tva.Policy.decide p ~now:2. ~src:good ~renewal:true with
    | Tva.Policy.Granted _ -> true
    | Tva.Policy.Refused -> false)

let policy_server_flood_detector () =
  let p = Tva.Policy.server ~flood_threshold_bps:1e6 () in
  (* 2 Mb/s sustained for two seconds trips the detector. *)
  for i = 1 to 200 do
    Tva.Policy.note_traffic p ~now:(float_of_int i *. 0.01) ~src ~bytes:2500 ~demoted:false
  done;
  Alcotest.(check bool) "flooder blacklisted" true (Tva.Policy.is_blacklisted p src);
  Alcotest.(check bool) "refused" true
    (Tva.Policy.decide p ~now:3. ~src ~renewal:false = Tva.Policy.Refused)

let policy_manual_blacklist () =
  let p = Tva.Policy.server () in
  Tva.Policy.blacklist p src;
  Alcotest.(check bool) "refused" true
    (Tva.Policy.decide p ~now:0. ~src ~renewal:false = Tva.Policy.Refused);
  (* blacklist on a non-server policy is a no-op *)
  let c = Tva.Policy.client () in
  Tva.Policy.blacklist c src;
  Alcotest.(check bool) "no-op" false (Tva.Policy.is_blacklisted c src)

(* --- Host protocol end to end --------------------------------------------- *)

(* A 4-node line: clientA - router - router - serverB, all TVA. *)
let make_tva_net ?(policy_b = Tva.Policy.server ()) () =
  let sim = Sim.create ~seed:77 () in
  let net = Net.create sim in
  let params = Tva.Params.default in
  let sink _node ~in_link:_ _p = () in
  let a = Net.add_node ~addr:src ~name:"a" net sink in
  let r1 = Net.add_node ~name:"r1" net sink in
  let r2 = Net.add_node ~name:"r2" net sink in
  let b = Net.add_node ~addr:dst ~name:"b" net sink in
  let connect x y =
    ignore
      (Net.duplex net x y ~bandwidth_bps:10e6 ~delay:0.005 ~qdisc:(fun () ->
           Tva.Qdiscs.make ~params ~bandwidth_bps:10e6 ()))
  in
  connect a r1;
  connect r1 r2;
  connect r2 b;
  Net.compute_routes net;
  let router1 =
    Tva.Router.create ~params ~secret_master:"r1" ~router_id:(Net.node_id r1) ~sim ~link_bps:10e6 ()
  in
  Net.set_handler r1 (Tva.Router.handler router1);
  let router2 =
    Tva.Router.create ~params ~secret_master:"r2" ~router_id:(Net.node_id r2) ~sim ~link_bps:10e6 ()
  in
  Net.set_handler r2 (Tva.Router.handler router2);
  let host_a =
    Tva.Host.create ~params ~policy:(Tva.Policy.client ()) ~node:a ~rng:(Rng.split (Sim.rng sim)) ()
  in
  let host_b =
    Tva.Host.create ~params ~auto_reply:true ~policy:policy_b ~node:b
      ~rng:(Rng.split (Sim.rng sim)) ()
  in
  (sim, host_a, host_b, router1, router2)

let host_bootstrap_and_grant () =
  let sim, host_a, host_b, _, _ = make_tva_net () in
  Tva.Host.send_raw host_a ~dst ~bytes:100;
  Sim.run ~until:1. sim;
  Alcotest.(check int) "request sent" 1 (Tva.Host.counters host_a).Tva.Host.requests_sent;
  Alcotest.(check int) "grant issued" 1 (Tva.Host.counters host_b).Tva.Host.grants_issued;
  Alcotest.(check int) "grant received" 1 (Tva.Host.counters host_a).Tva.Host.grants_received;
  match Tva.Host.grant_for host_a ~dst with
  | Some g -> Alcotest.(check int) "two routers, two caps" 2 (List.length g.Tva.Host.caps)
  | None -> Alcotest.fail "no grant installed"

let host_regular_packets_validated () =
  let sim, host_a, _host_b, router1, router2 = make_tva_net () in
  Tva.Host.send_raw host_a ~dst ~bytes:100;
  Sim.run ~until:1. sim;
  (* Now send data: first regular packet carries caps, later ones nonce
     only; zero demotions anywhere. *)
  for _ = 1 to 10 do
    Tva.Host.send_raw host_a ~dst ~bytes:1000
  done;
  Sim.run ~until:2. sim;
  Alcotest.(check int) "no demotions at r1" 0 (Tva.Router.counters router1).Tva.Router.demotions;
  Alcotest.(check int) "no demotions at r2" 0 (Tva.Router.counters router2).Tva.Router.demotions;
  Alcotest.(check bool) "r1 used its cache" true
    ((Tva.Router.counters router1).Tva.Router.regular_cached >= 9)

let host_renews_before_exhaustion () =
  let sim, host_a, host_b, _, _ = make_tva_net () in
  Tva.Host.send_raw host_a ~dst ~bytes:100;
  Sim.run ~until:1. sim;
  (* Push ~28 KB through a 32 KB grant: a renewal must fire and be granted,
     and nothing may be demoted. *)
  for _ = 1 to 28 do
    Tva.Host.send_raw host_a ~dst ~bytes:1000
  done;
  Sim.run ~until:3. sim;
  Alcotest.(check bool) "renewal sent" true ((Tva.Host.counters host_a).Tva.Host.renewals_sent >= 1);
  Alcotest.(check bool) "renewal granted" true
    ((Tva.Host.counters host_a).Tva.Host.grants_received >= 2);
  Alcotest.(check int) "no demotions seen at B" 0 (Tva.Host.counters host_b).Tva.Host.demotions_seen

let host_demotion_echo_recovers () =
  let sim, host_a, host_b, router1, router2 = make_tva_net () in
  Tva.Host.send_raw host_a ~dst ~bytes:100;
  Sim.run ~until:1. sim;
  Tva.Host.send_raw host_a ~dst ~bytes:1000;
  Sim.run ~until:2. sim;
  (* Routers lose all state (route change): the next nonce-only packet is
     demoted, B echoes, A re-requests and traffic recovers. *)
  Tva.Router.flush_cache router1;
  Tva.Router.flush_cache router2;
  Tva.Host.send_raw host_a ~dst ~bytes:1000;
  Sim.run ~until:3. sim;
  Alcotest.(check bool) "demoted packet reached B" true
    ((Tva.Host.counters host_b).Tva.Host.demotions_seen >= 1);
  (* B owes A a demotion echo; it rides B's next packet (auto-reply covers
     the raw-traffic case only for grants, so send something from B). *)
  Tva.Host.send_raw host_b ~dst:src ~bytes:100;
  Sim.run ~until:4. sim;
  Alcotest.(check bool) "echo delivered" true
    ((Tva.Host.counters host_b).Tva.Host.demotion_echoes_sent >= 1);
  Tva.Host.send_raw host_a ~dst ~bytes:1000;
  Sim.run ~until:6. sim;
  Alcotest.(check bool) "A re-requested" true ((Tva.Host.counters host_a).Tva.Host.requests_sent >= 2);
  Alcotest.(check bool) "fresh grant works" true
    ((Tva.Host.counters host_a).Tva.Host.grants_received >= 2)

let host_refusal_blocks_sender () =
  let sim, host_a, host_b, _, _ = make_tva_net ~policy_b:(Tva.Policy.refuse_all ()) () in
  Tva.Host.send_raw host_a ~dst ~bytes:100;
  Sim.run ~until:1. sim;
  Alcotest.(check int) "refused" 1 (Tva.Host.counters host_b).Tva.Host.requests_refused;
  Alcotest.(check bool) "no grant" true (Tva.Host.grant_for host_a ~dst = None)

let host_tcp_transfer_over_tva () =
  let sim, host_a, host_b, _, _ = make_tva_net () in
  let outcome = ref None in
  let server = ref None in
  Tva.Host.set_segment_handler host_b (fun ~src:from seg ->
      let s =
        match !server with
        | Some s -> s
        | None ->
            let s =
              Tcp.Conn.create_server ~sim ~conn_id:seg.Wire.Tcp_segment.conn
                ~tx:(fun reply -> Tva.Host.send_segment host_b ~dst:from reply)
                ()
            in
            server := Some s;
            s
      in
      Tcp.Conn.server_receive s seg);
  let client =
    Tcp.Conn.create_client ~sim ~conn_id:1 ~transfer_bytes:(20 * 1024)
      ~tx:(fun seg -> Tva.Host.send_segment host_a ~dst seg)
      ~on_complete:(fun o -> outcome := Some o)
      ()
  in
  Tva.Host.set_segment_handler host_a (fun ~src:_ seg -> Tcp.Conn.client_receive client seg);
  Tcp.Conn.start client;
  Sim.run ~until:10. sim;
  match !outcome with
  | Some (Tcp.Conn.Completed { duration }) ->
      Alcotest.(check bool) (Printf.sprintf "fast (%.3fs)" duration) true (duration < 0.4)
  | Some (Tcp.Conn.Aborted { reason; _ }) -> Alcotest.failf "aborted: %s" reason
  | None -> Alcotest.fail "hung"

let suite =
  [
    Alcotest.test_case "mint+validate" `Quick mint_and_validate;
    Alcotest.test_case "bound to addresses" `Quick validation_is_bound_to_addresses;
    Alcotest.test_case "bound to N,T" `Quick validation_is_bound_to_n_and_t;
    Alcotest.test_case "bound to secret" `Quick validation_is_bound_to_router_secret;
    Alcotest.test_case "expiry" `Quick capability_expires_after_t;
    Alcotest.test_case "survives rotation" `Quick capability_survives_secret_rotation_within_t;
    QCheck_alcotest.to_alcotest forged_capabilities_rejected;
    Alcotest.test_case "aes+sha pairing" `Quick two_hash_pairing_matches;
    Alcotest.test_case "path id stable" `Quick path_id_deterministic;
    Alcotest.test_case "path id 16-bit" `Quick path_id_16_bits;
    Alcotest.test_case "path id most recent" `Quick path_id_most_recent;
    Alcotest.test_case "path id regular no-op" `Quick path_id_ignores_regular;
    Alcotest.test_case "cache charge/limit" `Quick cache_charges_and_limits;
    Alcotest.test_case "cache oversize insert" `Quick cache_over_limit_first_packet;
    Alcotest.test_case "cache ttl reclaim" `Quick cache_ttl_reclaim;
    Alcotest.test_case "cache bounded" `Quick cache_bounded_size;
    Alcotest.test_case "cache full reclaims" `Quick cache_full_reclaims_expired;
    Alcotest.test_case "cache lookup/remove" `Quick cache_lookup_and_remove;
    Alcotest.test_case "cache renew" `Quick cache_renew_resets_budget;
    QCheck_alcotest.to_alcotest two_n_byte_bound;
    QCheck_alcotest.to_alcotest no_eviction_means_exactly_n;
    Alcotest.test_case "router stamps requests" `Quick router_stamps_requests;
    Alcotest.test_case "router no tag inside domain" `Quick non_boundary_router_does_not_tag;
    Alcotest.test_case "router validate+cache" `Quick router_validates_and_caches;
    Alcotest.test_case "router demotes forgery" `Quick router_demotes_forgeries;
    Alcotest.test_case "router demotes unknown nonce" `Quick router_demotes_unknown_nonce;
    Alcotest.test_case "router byte limit" `Quick router_enforces_byte_limit;
    Alcotest.test_case "router expiry" `Quick router_enforces_expiry;
    Alcotest.test_case "router renewal" `Quick router_renewal_mints_fresh_precap;
    Alcotest.test_case "router cache flush" `Quick router_cache_flush_demotes_nonce_only;
    Alcotest.test_case "router secret rotation" `Quick router_secret_rotation_invalidates;
    Alcotest.test_case "router two rotations distinct" `Quick router_two_rotations_distinct;
    Alcotest.test_case "router cached path allocation" `Quick router_cached_path_allocation_budget;
    Alcotest.test_case "router validate path allocation" `Quick
      router_validate_path_allocation_budget;
    Alcotest.test_case "router request path allocation" `Quick
      router_request_path_allocation_budget;
    Alcotest.test_case "router legacy" `Quick router_passes_legacy;
    Alcotest.test_case "router demoted passthrough" `Quick router_skips_demoted;
    Alcotest.test_case "policy allow_all" `Quick policy_allow_all;
    Alcotest.test_case "policy refuse_all" `Quick policy_refuse_all;
    Alcotest.test_case "policy client" `Quick policy_client_requires_contact;
    Alcotest.test_case "policy server suspicious" `Quick policy_server_grants_once_to_suspicious;
    Alcotest.test_case "policy flood detector" `Quick policy_server_flood_detector;
    Alcotest.test_case "policy manual blacklist" `Quick policy_manual_blacklist;
    Alcotest.test_case "host bootstrap" `Quick host_bootstrap_and_grant;
    Alcotest.test_case "host regular traffic" `Quick host_regular_packets_validated;
    Alcotest.test_case "host renewal" `Quick host_renews_before_exhaustion;
    Alcotest.test_case "host demotion echo" `Quick host_demotion_echo_recovers;
    Alcotest.test_case "host refusal" `Quick host_refusal_blocks_sender;
    Alcotest.test_case "host tcp transfer" `Quick host_tcp_transfer_over_tva;
  ]
