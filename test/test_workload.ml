(* Integration: small versions of the paper's experiments asserting the
   qualitative claims — the shapes the figures show — rather than exact
   numbers. *)

let quick_cfg ?(transfers = 10) ?(max_time = 60.) scheme n attack =
  {
    Workload.Experiment.default with
    Workload.Experiment.scheme;
    n_attackers = n;
    attack;
    transfers_per_user = transfers;
    max_time;
  }

let tva = Workload.Scheme.tva ~params:Workload.Scenario.sim_params ()
let internet = Workload.Scheme.internet ()
let siff = Workload.Scheme.siff ()

let baseline_all_schemes_healthy () =
  (* No attack: every scheme completes everything at ~0.32 s. *)
  List.iter
    (fun (name, factory) ->
      let r = Workload.Experiment.run (quick_cfg factory 0 Workload.Experiment.No_attack) in
      Alcotest.(check (float 1e-9))
        (name ^ " fraction") 1.0 r.Workload.Experiment.fraction_completed;
      Alcotest.(check bool)
        (Printf.sprintf "%s time %.3f" name r.Workload.Experiment.avg_transfer_time)
        true
        (r.Workload.Experiment.avg_transfer_time < 0.4))
    Workload.Scenario.schemes

let tva_unaffected_by_legacy_flood () =
  let r =
    Workload.Experiment.run
      (quick_cfg tva 100 (Workload.Experiment.Legacy_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check (float 1e-9)) "all complete" 1.0 r.Workload.Experiment.fraction_completed;
  Alcotest.(check bool)
    (Printf.sprintf "time flat (%.3f)" r.Workload.Experiment.avg_transfer_time)
    true
    (r.Workload.Experiment.avg_transfer_time < 0.4)

let internet_collapses_under_legacy_flood () =
  let r =
    Workload.Experiment.run
      (quick_cfg internet 100 (Workload.Experiment.Legacy_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check bool)
    (Printf.sprintf "collapse (%.2f)" r.Workload.Experiment.fraction_completed)
    true
    (r.Workload.Experiment.fraction_completed < 0.3)

let siff_partially_degrades_under_legacy_flood () =
  (* The paper's 1-p^9 model: at 10x overload SIFF completes ~60%, far
     better than the Internet but far worse than TVA. *)
  let r =
    Workload.Experiment.run
      (quick_cfg ~transfers:20 ~max_time:90. siff 100
         (Workload.Experiment.Legacy_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check bool)
    (Printf.sprintf "in between (%.2f)" r.Workload.Experiment.fraction_completed)
    true
    (r.Workload.Experiment.fraction_completed > 0.3
    && r.Workload.Experiment.fraction_completed < 0.95)

let tva_unaffected_by_request_flood () =
  let r =
    Workload.Experiment.run
      (quick_cfg tva 100 (Workload.Experiment.Request_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check (float 1e-9)) "all complete" 1.0 r.Workload.Experiment.fraction_completed;
  Alcotest.(check bool)
    (Printf.sprintf "time flat (%.3f)" r.Workload.Experiment.avg_transfer_time)
    true
    (r.Workload.Experiment.avg_transfer_time < 0.6)

let tva_survives_authorized_flood () =
  (* Fig. 10: per-destination fairness halves the victim's bandwidth but
     nothing worse. *)
  let r =
    Workload.Experiment.run
      (quick_cfg tva 40 (Workload.Experiment.Authorized_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check (float 1e-9)) "all complete" 1.0 r.Workload.Experiment.fraction_completed;
  Alcotest.(check bool)
    (Printf.sprintf "mild slowdown (%.3f)" r.Workload.Experiment.avg_transfer_time)
    true
    (r.Workload.Experiment.avg_transfer_time < 0.8)

let siff_starved_by_authorized_flood () =
  let r =
    Workload.Experiment.run
      (quick_cfg siff 40 (Workload.Experiment.Authorized_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check bool)
    (Printf.sprintf "starved (%.2f)" r.Workload.Experiment.fraction_completed)
    true
    (r.Workload.Experiment.fraction_completed < 0.3)

let imprecise_policy_damage_is_bounded () =
  (* Fig. 11 with TVA: 100 attackers granted 32 KB once at t=10; service
     must be fully recovered well before t=40 and stay clean after. *)
  let cfg =
    {
      (quick_cfg ~transfers:max_int ~max_time:50. tva 100
         (Workload.Experiment.Imprecise_flood
            { rate_bps = 1e6; groups = 1; group_interval = 3.; start_at = 10. }))
      with
      Workload.Experiment.seed = 3;
    }
  in
  let r = Workload.Experiment.run cfg in
  let late = Stats.Timeseries.values_in (Workload.Metrics.timeline r.Workload.Experiment.metrics) ~lo:40. ~hi:50. in
  Alcotest.(check bool) "transfers flowing after recovery" true (List.length late > 20);
  let worst_late = List.fold_left Float.max 0. late in
  Alcotest.(check bool)
    (Printf.sprintf "recovered (worst %.2f)" worst_late)
    true (worst_late < 1.0)

let metrics_accounting () =
  let m = Workload.Metrics.create () in
  Workload.Metrics.record_start m;
  Workload.Metrics.record_start m;
  Workload.Metrics.record_start m;
  Workload.Metrics.record_outcome m ~now:1. (Tcp.Conn.Completed { duration = 0.5 });
  Workload.Metrics.record_outcome m ~now:2. (Tcp.Conn.Aborted { reason = "x"; at = 2. });
  Alcotest.(check int) "attempted" 3 (Workload.Metrics.attempted m);
  Alcotest.(check int) "completed" 1 (Workload.Metrics.completed m);
  Alcotest.(check int) "aborted" 1 (Workload.Metrics.aborted m);
  Alcotest.(check (float 1e-9)) "fraction" (1. /. 3.) (Workload.Metrics.fraction_completed m);
  Alcotest.(check (float 1e-9)) "avg" 0.5 (Workload.Metrics.avg_transfer_time m)

let metrics_merge () =
  let a = Workload.Metrics.create () and b = Workload.Metrics.create () in
  Workload.Metrics.record_start a;
  Workload.Metrics.record_outcome a ~now:1. (Tcp.Conn.Completed { duration = 1.0 });
  Workload.Metrics.record_start b;
  Workload.Metrics.record_outcome b ~now:2. (Tcp.Conn.Completed { duration = 3.0 });
  Workload.Metrics.merge_into a b;
  Alcotest.(check int) "attempted" 2 (Workload.Metrics.attempted a);
  Alcotest.(check (float 1e-9)) "avg" 2.0 (Workload.Metrics.avg_transfer_time a);
  Alcotest.(check int) "timeline merged" 2 (Stats.Timeseries.length (Workload.Metrics.timeline a))

let experiment_deterministic () =
  let cfg = quick_cfg ~transfers:5 tva 10 (Workload.Experiment.Legacy_flood { rate_bps = 1e6 }) in
  let r1 = Workload.Experiment.run cfg in
  let r2 = Workload.Experiment.run cfg in
  Alcotest.(check (float 1e-12)) "same avg time" r1.Workload.Experiment.avg_transfer_time
    r2.Workload.Experiment.avg_transfer_time;
  Alcotest.(check (float 1e-12)) "same fraction" r1.Workload.Experiment.fraction_completed
    r2.Workload.Experiment.fraction_completed

let parallel_sweep_matches_sequential () =
  (* The Pool.map determinism contract on a real (small) Fig. 8 grid: the
     parallel sweep must render byte-for-byte the same table as the
     sequential one. *)
  let base =
    {
      Workload.Experiment.default with
      Workload.Experiment.transfers_per_user = 3;
      max_time = 30.;
    }
  in
  let sweep jobs =
    Stats.Table.render
      (Workload.Scenario.render (Workload.Scenario.fig8 ~jobs ~attacker_counts:[ 1; 10 ] ~base ()))
  in
  Alcotest.(check string) "jobs=4 table = jobs=1 table" (sweep 1) (sweep 4)

let scenario_render_shapes () =
  let series =
    [
      {
        Workload.Scenario.scheme = "x";
        points =
          [
            {
              Workload.Scenario.n_attackers = 1;
              fraction_completed = 1.;
              avg_transfer_time = 0.3;
              median_transfer_time = 0.3;
              jain = 1.;
            };
          ];
      };
    ]
  in
  let t = Workload.Scenario.render series in
  Alcotest.(check int) "one row" 1 (List.length (Stats.Table.rows t))

(* --- cross-scheme fairness report (DESIGN.md section 16) ---------------- *)

let jain_index_algebra () =
  let jain = Workload.Metrics.jain_index in
  Alcotest.(check (float 1e-12)) "empty is fair" 1.0 (jain []);
  Alcotest.(check (float 1e-12)) "singleton" 1.0 (jain [ 42. ]);
  Alcotest.(check (float 1e-12)) "equal shares" 1.0 (jain [ 3.; 3.; 3.; 3. ]);
  Alcotest.(check (float 1e-12)) "all idle is fair" 1.0 (jain [ 0.; 0.; 0. ]);
  (* One user hogging everything among n: (x)^2 / (n * x^2) = 1/n. *)
  Alcotest.(check (float 1e-12)) "one hog of 4" 0.25 (jain [ 10.; 0.; 0.; 0. ]);
  Alcotest.(check (float 1e-12)) "scale invariant" (jain [ 1.; 2.; 3. ]) (jain [ 10.; 20.; 30. ])

let median_transfer_time_shapes () =
  let m = Workload.Metrics.create () in
  Alcotest.(check bool) "no transfers is nan" true
    (Float.is_nan (Workload.Metrics.median_transfer_time m));
  List.iteri
    (fun i d ->
      Workload.Metrics.record_outcome m ~now:(float_of_int i)
        (Tcp.Conn.Completed { duration = d }))
    [ 0.5; 0.1; 0.9 ];
  Alcotest.(check (float 1e-12)) "odd count picks the middle" 0.5
    (Workload.Metrics.median_transfer_time m);
  Workload.Metrics.record_outcome m ~now:4. (Tcp.Conn.Completed { duration = 0.3 });
  Alcotest.(check (float 1e-12)) "even count averages the middle two" 0.4
    (Workload.Metrics.median_transfer_time m)

let report_deterministic_across_jobs () =
  (* The report is the artifact CI pins; it must not depend on -j. *)
  let base =
    {
      Workload.Experiment.default with
      Workload.Experiment.transfers_per_user = 3;
      max_time = 20.;
    }
  in
  let render jobs =
    let r = Workload.Report.run ~jobs ~attacker_counts:[ 1; 10 ] ~base () in
    (Workload.Report.to_markdown r, Workload.Report.to_json r)
  in
  let md1, json1 = render 1 and md4, json4 = render 4 in
  Alcotest.(check string) "markdown jobs=4 = jobs=1" md1 md4;
  Alcotest.(check string) "json jobs=4 = jobs=1" json1 json4;
  List.iter
    (fun scheme ->
      Alcotest.(check bool)
        (scheme ^ " headline present") true
        (let needle = "\"" ^ scheme ^ "_fraction\":" in
         let len = String.length needle in
         let rec scan i =
           i + len <= String.length json1
           && (String.sub json1 i len = needle || scan (i + 1))
         in
         scan 0))
    (List.map fst Workload.Scenario.schemes)


(* --- aggregate senders (DESIGN.md section 13) -------------------------- *)

let null_endpoint ~on_legacy =
  {
    Workload.Scheme.ep_addr = Wire.Addr.of_int 7;
    ep_send_segment = (fun ~dst:_ _ -> ());
    ep_set_demux = (fun _ -> ());
    ep_send_raw = (fun ~dst:_ ~bytes:_ -> ());
    ep_send_legacy = on_legacy;
    ep_send_request = (fun ~dst:_ ~bytes:_ -> ());
    ep_flood_misbehaving = (fun ~dst:_ ~bytes:_ -> ());
    ep_reacquire_latencies = (fun () -> []);
  }

(* 800 kb/s at 1000 B -> one packet per 10 ms per member. *)
let swarm_stream ~mode ?(batch_window = 0.) ~n ~seed ~stop_at () =
  let sim = Sim.create ~seed:99 () in
  let log = ref [] in
  let sw =
    Workload.Swarm.start ~sim ~n ~seed ~rate_bps:800_000. ~start_at:0.25 ~stop_at ~batch_window
      ~mode
      ~emit:(fun ~member ~due -> log := (due, member) :: !log)
      ()
  in
  Sim.run ~until:10. sim;
  (List.rev !log, sw)

let flooder_stream ~n ~seed ~stop_at () =
  let sim = Sim.create ~seed:99 () in
  let log = ref [] in
  for i = 0 to n - 1 do
    let ep =
      null_endpoint ~on_legacy:(fun ~dst:_ ~bytes:_ -> log := (Sim.now sim, i) :: !log)
    in
    Workload.Agents.Flooder.start ~sim ~endpoint:ep ~dst:(Wire.Addr.of_int 1) ~rate_bps:800_000.
      ~start_at:0.25 ~stop_at
      ~rng:(Rng.lane ~seed i)
      ~mode:Workload.Agents.Flooder.Legacy ()
  done;
  Sim.run ~until:10. sim;
  List.rev !log

let sorted s = List.sort compare s

let check_streams name a b =
  Alcotest.(check int) (name ^ " packet count") (List.length a) (List.length b);
  Alcotest.(check bool) (name ^ " identical (time, member) stream") true (sorted a = sorted b)

(* The tentpole equivalence: one Coalesced swarm emits bit-for-bit the
   stream n real flooders driven by the matching Rng lanes would. *)
let swarm_matches_real_flooders () =
  let n = 7 and seed = 42 and stop_at = 2.0 in
  let agg, sw = swarm_stream ~mode:Workload.Swarm.Coalesced ~n ~seed ~stop_at () in
  let real = flooder_stream ~n ~seed ~stop_at () in
  Alcotest.(check bool) "emitted something" true (List.length real > 1000);
  check_streams "swarm vs flooders" agg real;
  Alcotest.(check int) "sent counter" (List.length agg) (Workload.Swarm.packets_sent sw);
  Alcotest.(check int) "all retired at stop_at" 0 (Workload.Swarm.live_members sw)

let swarm_modes_agree () =
  let n = 11 and seed = 5 and stop_at = 1.5 in
  let a, _ = swarm_stream ~mode:Workload.Swarm.Coalesced ~n ~seed ~stop_at () in
  let b, _ = swarm_stream ~mode:Workload.Swarm.Independent ~n ~seed ~stop_at () in
  check_streams "coalesced vs independent" a b

(* Batching coarsens only the injection instant: the nominal per-member
   (due, member) stream is unchanged. *)
let swarm_batching_preserves_stream () =
  let n = 9 and seed = 3 and stop_at = 1.5 in
  let exact, _ = swarm_stream ~mode:Workload.Swarm.Coalesced ~n ~seed ~stop_at () in
  let batched, _ =
    swarm_stream ~mode:Workload.Swarm.Coalesced ~batch_window:0.005 ~n ~seed ~stop_at ()
  in
  check_streams "batched vs exact" exact batched

(* --- scale experiment --------------------------------------------------- *)

let tiny_scale topology =
  {
    Workload.Scale.default with
    Workload.Scale.sc_topology = topology;
    sc_senders = 200;
    sc_aggregates = 3;
    sc_n_users = 4;
    sc_transfers_per_user = 2;
    sc_max_time = 8.;
  }

let scale_heap_wheel_identical () =
  let cfg = tiny_scale (Workload.Scale.Fan_in { depth = 2; fanout = 3 }) in
  let rh = Workload.Scale.run { cfg with Workload.Scale.sc_sched = Some Sim.Heap } in
  let rw = Workload.Scale.run { cfg with Workload.Scale.sc_sched = Some Sim.Wheel } in
  Alcotest.(check int) "events" rh.Workload.Scale.sr_events rw.Workload.Scale.sr_events;
  Alcotest.(check int) "attack packets" rh.Workload.Scale.sr_attack_packets
    rw.Workload.Scale.sr_attack_packets;
  Alcotest.(check (float 0.)) "fraction" rh.Workload.Scale.sr_fraction_completed
    rw.Workload.Scale.sr_fraction_completed;
  Alcotest.(check (float 0.)) "sim end" rh.Workload.Scale.sr_sim_end
    rw.Workload.Scale.sr_sim_end

let scale_topologies_smoke () =
  List.iter
    (fun topology ->
      let r = Workload.Scale.run (tiny_scale topology) in
      let name = r.Workload.Scale.sr_topology in
      Alcotest.(check bool) (name ^ " attack ran") true (r.Workload.Scale.sr_attack_packets > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s tva completes (%.2f)" name r.Workload.Scale.sr_fraction_completed)
        true
        (r.Workload.Scale.sr_fraction_completed > 0.9))
    [
      Workload.Scale.Scale_dumbbell;
      Workload.Scale.Fan_in { depth = 2; fanout = 3 };
      Workload.Scale.Parking_lot { segments = 2 };
      Workload.Scale.Power_law { routers = 24; edges_per_node = 2 };
    ]

let scale_memory_gauges_reported () =
  let obs =
    { Workload.Experiment.obs_default with Workload.Experiment.obs_gauge_period = 0.05 }
  in
  let r =
    Workload.Scale.run ~obs (tiny_scale (Workload.Scale.Fan_in { depth = 2; fanout = 3 }))
  in
  match r.Workload.Scale.sr_obs with
  | None -> Alcotest.fail "expected an obs report"
  | Some rep ->
      let find name =
        List.find_opt (fun g -> g.Obs.Report.g_name = name) rep.Obs.Report.gauges
      in
      (match find "live-heap-words" with
      | Some g -> Alcotest.(check bool) "heap gauge sampled" true (g.Obs.Report.g_max > 1e4)
      | None -> Alcotest.fail "live-heap-words gauge missing");
      (match find "sim-pending-events" with
      | Some g -> Alcotest.(check bool) "pending gauge sampled" true (g.Obs.Report.g_max >= 1.)
      | None -> Alcotest.fail "sim-pending-events gauge missing")

(* --- conservative parallel driver --------------------------------------- *)

(* The tentpole's determinism contract: a K-domain run must be
   result-identical to the sequential run — same event count, same packet
   streams (attack packets), same metrics, same per-node Obs counters,
   same final clock.  Counters are compared via their JSON rendering so a
   mismatch prints the full diff. *)
let counters_string (r : Workload.Scale.result) =
  match r.Workload.Scale.sr_obs with
  | None -> Alcotest.fail "expected an obs report"
  | Some rep ->
      (* Sort by node name: the sequential run registers counters lazily
         (first-event order) while the parallel run pre-registers them, so
         snapshot order differs even when every value is identical. *)
      let snap =
        rep.Obs.Report.counters
        |> List.filter (fun (_, counts) -> Array.exists (fun c -> c <> 0) counts)
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Obs.Export.to_string_pretty (Obs.Report.counters_json snap)

let check_scale_identical label (seq : Workload.Scale.result) (par : Workload.Scale.result) =
  Alcotest.(check int) (label ^ ": events") seq.Workload.Scale.sr_events par.Workload.Scale.sr_events;
  Alcotest.(check int)
    (label ^ ": attack packets")
    seq.Workload.Scale.sr_attack_packets par.Workload.Scale.sr_attack_packets;
  Alcotest.(check (float 0.))
    (label ^ ": fraction")
    seq.Workload.Scale.sr_fraction_completed par.Workload.Scale.sr_fraction_completed;
  Alcotest.(check (float 0.))
    (label ^ ": avg transfer time")
    seq.Workload.Scale.sr_avg_transfer_time par.Workload.Scale.sr_avg_transfer_time;
  Alcotest.(check (float 0.))
    (label ^ ": sim end")
    seq.Workload.Scale.sr_sim_end par.Workload.Scale.sr_sim_end;
  Alcotest.(check string) (label ^ ": counters") (counters_string seq) (counters_string par)

let scale_par_matches_seq () =
  let obs = Workload.Experiment.obs_default in
  List.iter
    (fun (topology, kdoms) ->
      let cfg = tiny_scale topology in
      let seq = Workload.Scale.run ~obs cfg in
      let par = Workload.Scale.run ~obs { cfg with Workload.Scale.sc_par_domains = kdoms } in
      let label = Printf.sprintf "%s k=%d" seq.Workload.Scale.sr_topology kdoms in
      Alcotest.(check int) (label ^ ": partitions") kdoms par.Workload.Scale.sr_partitions;
      Alcotest.(check int)
        (label ^ ": partition events sum")
        par.Workload.Scale.sr_events
        (Array.fold_left ( + ) 0 par.Workload.Scale.sr_partition_events);
      check_scale_identical label seq par)
    [
      (Workload.Scale.Fan_in { depth = 2; fanout = 3 }, 2);
      (Workload.Scale.Fan_in { depth = 2; fanout = 3 }, 4);
      (Workload.Scale.Scale_dumbbell, 2);
      (Workload.Scale.Parking_lot { segments = 3 }, 3);
      (Workload.Scale.Power_law { routers = 24; edges_per_node = 2 }, 4);
    ]

(* Both schedulers under the parallel driver, against the sequential
   reference: wheel-vs-heap and par-vs-seq must commute. *)
let scale_par_wheel_matches_seq () =
  let obs = Workload.Experiment.obs_default in
  let cfg =
    {
      (tiny_scale (Workload.Scale.Fan_in { depth = 2; fanout = 3 })) with
      Workload.Scale.sc_sched = Some Sim.Wheel;
    }
  in
  let seq = Workload.Scale.run ~obs cfg in
  let par = Workload.Scale.run ~obs { cfg with Workload.Scale.sc_par_domains = 3 } in
  check_scale_identical "wheel k=3" seq par

let scale_par_rejects_unsafe () =
  let cfg =
    {
      (tiny_scale (Workload.Scale.Fan_in { depth = 2; fanout = 3 })) with
      Workload.Scale.sc_par_domains = 2;
    }
  in
  Alcotest.check_raises "pushback refused"
    (Invalid_argument "Scale.run: scheme \"pushback\" is not partition-safe (sc_par_domains > 1)")
    (fun () ->
      ignore (Workload.Scale.run { cfg with Workload.Scale.sc_scheme = Workload.Scheme.pushback () }));
  let obs =
    { Workload.Experiment.obs_default with Workload.Experiment.obs_trace_capacity = 128 }
  in
  Alcotest.check_raises "tracing refused"
    (Invalid_argument "Scale.run: packet tracing is not supported with sc_par_domains > 1")
    (fun () -> ignore (Workload.Scale.run ~obs cfg))

(* The partitioner itself: deterministic, covering, balanced enough that
   every region is nonempty. *)
let topology_partition_properties () =
  let sim = Sim.create ~seed:7 () in
  let scheme = Workload.Scheme.internet () sim in
  let make_qdisc ~bandwidth_bps = scheme.Workload.Scheme.make_qdisc ~bandwidth_bps in
  let t = Topology.fanin ~depth:3 ~fanout:3 ~bottleneck_bps:10e6 ~make_qdisc sim in
  let net = t.Topology.fi_net in
  let n = List.length (Net.nodes net) in
  List.iter
    (fun k ->
      let a = Topology.partition ~k net in
      let b = Topology.partition ~k net in
      Alcotest.(check (array int)) (Printf.sprintf "k=%d deterministic" k) a b;
      Alcotest.(check int) (Printf.sprintf "k=%d covers all nodes" k) n (Array.length a);
      let sizes = Array.make k 0 in
      Array.iter
        (fun p ->
          Alcotest.(check bool) "index in range" true (p >= 0 && p < k);
          sizes.(p) <- sizes.(p) + 1)
        a;
      Array.iteri
        (fun r s -> Alcotest.(check bool) (Printf.sprintf "k=%d region %d nonempty" k r) true (s > 0))
        sizes)
    [ 1; 2; 3; 4 ];
  Alcotest.check_raises "k=0 refused"
    (Invalid_argument "Topology.partition: need at least one partition") (fun () ->
      ignore (Topology.partition ~k:0 net));
  Alcotest.(check bool) "k>n refused" true
    (match Topology.partition ~k:(n + 1) net with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- in-run telemetry through the workload layer (DESIGN.md §15) -------- *)

(* The §15 bit-identity claim at the experiment level: a telemetry-on run
   must report exactly the workload numbers of a telemetry-off run — the
   tick chain rides auxiliary events that never consume a scheduler
   sequence number.  (The [events] count legitimately differs: aux ticks
   are processed events.) *)
let telemetry_does_not_perturb_results () =
  let cfg = quick_cfg tva 10 (Workload.Experiment.Legacy_flood { rate_bps = 1e6 }) in
  let plain = Workload.Experiment.run cfg in
  let obs =
    {
      Workload.Experiment.obs_default with
      Workload.Experiment.obs_telemetry_interval = 0.1;
    }
  in
  let telem = Workload.Experiment.run ~obs cfg in
  Alcotest.(check (float 0.))
    "fraction identical" plain.Workload.Experiment.fraction_completed
    telem.Workload.Experiment.fraction_completed;
  Alcotest.(check (float 0.))
    "avg time identical" plain.Workload.Experiment.avg_transfer_time
    telem.Workload.Experiment.avg_transfer_time;
  Alcotest.(check (float 0.))
    "sim end identical" plain.Workload.Experiment.sim_end telem.Workload.Experiment.sim_end;
  (* and the telemetry actually recorded: interval series + channels *)
  match telem.Workload.Experiment.obs with
  | None -> Alcotest.fail "expected an obs report"
  | Some rep ->
      Alcotest.(check (float 0.)) "interval" 0.1 rep.Obs.Report.series_interval;
      let names = List.map (fun s -> s.Obs.Report.s_name) rep.Obs.Report.series in
      List.iter
        (fun chan ->
          Alcotest.(check bool) (chan ^ " channel present") true (List.mem chan names))
        [ "demoted"; "request_bytes"; "drops"; "queue_depth"; "flow_cache"; "events" ];
      List.iter
        (fun s -> Alcotest.(check bool) "windows recorded" true (s.Obs.Report.s_windows > 0))
        rep.Obs.Report.series

(* Chaos outcomes must carry measured detector timings: the wipe scenario
   injects at t = 2 s, so the detectors engage shortly after and clear
   before run end. *)
let chaos_measures_engage_recover () =
  let base =
    {
      Workload.Chaos.base_config with
      Workload.Experiment.transfers_per_user = 10;
      max_time = 60.;
    }
  in
  let cell =
    List.find (fun c -> c.Workload.Chaos.cl_label = "wipe") Workload.Chaos.default_suite
  in
  let o = Workload.Chaos.run_cell ~base cell in
  Alcotest.(check bool) "verdict ok" true o.Workload.Chaos.oc_verdict.Faults.Invariants.ok;
  (match o.Workload.Chaos.oc_engage_s with
  | None -> Alcotest.fail "no engage time measured"
  | Some e ->
      Alcotest.(check bool) (Printf.sprintf "engage after injection (%.1fs)" e) true
        (e >= 2.0 && e < 10.));
  (match o.Workload.Chaos.oc_recover_s with
  | None -> Alcotest.fail "no recover time measured"
  | Some r -> Alcotest.(check bool) (Printf.sprintf "recover bounded (%.1fs)" r) true (r >= 0.));
  Alcotest.(check (list string)) "no flight dumps without --flight-dir" []
    o.Workload.Chaos.oc_flight_dumps;
  Alcotest.(check bool) "incidents in the report" true
    (o.Workload.Chaos.oc_report.Obs.Report.incidents <> []);
  (* recovered iff no incident stayed open to run end: a clear stamped by
     Detect.finish must not pass for a measured recovery *)
  Alcotest.(check bool) "recovered consistent with incidents"
    (List.for_all
       (fun (r : Obs.Report.incident_row) -> not r.Obs.Report.i_open)
       o.Workload.Chaos.oc_report.Obs.Report.incidents)
    o.Workload.Chaos.oc_recovered

(* Interval series under the parallel driver: barrier pulses stamp window
   k at [k *. interval] exactly like the sequential aux chain, so the
   datapath channels must be window-for-window identical for any K.  The
   [events] and per-partition channels are mode-dependent diagnostics and
   excluded by construction of the comparison. *)
let scale_telemetry_series_jobs_invariant () =
  let obs =
    {
      Workload.Experiment.obs_default with
      Workload.Experiment.obs_telemetry_interval = 0.5;
    }
  in
  let cfg = tiny_scale (Workload.Scale.Fan_in { depth = 2; fanout = 3 }) in
  let series r =
    match r.Workload.Scale.sr_obs with
    | None -> Alcotest.fail "expected an obs report"
    | Some rep -> rep.Obs.Report.series
  in
  let seq = Workload.Scale.run ~obs cfg in
  let par = Workload.Scale.run ~obs { cfg with Workload.Scale.sc_par_domains = 2 } in
  let datapath = [ "demoted"; "drops"; "flow_cache" ] in
  let row r name =
    match List.find_opt (fun s -> s.Obs.Report.s_name = name) (series r) with
    | Some s -> s
    | None -> Alcotest.fail ("series " ^ name ^ " missing")
  in
  List.iter
    (fun name ->
      let a = row seq name and b = row par name in
      Alcotest.(check int) (name ^ ": windows") a.Obs.Report.s_windows b.Obs.Report.s_windows;
      Alcotest.(check (float 0.)) (name ^ ": mean") a.Obs.Report.s_mean b.Obs.Report.s_mean;
      Alcotest.(check (float 0.)) (name ^ ": max") a.Obs.Report.s_max b.Obs.Report.s_max;
      Alcotest.(check (float 0.)) (name ^ ": p50") a.Obs.Report.s_p50 b.Obs.Report.s_p50;
      Alcotest.(check (float 0.)) (name ^ ": p99") a.Obs.Report.s_p99 b.Obs.Report.s_p99;
      Alcotest.(check string) (name ^ ": spark") a.Obs.Report.s_spark b.Obs.Report.s_spark)
    datapath;
  (* K = 2 additionally reports one events channel per partition *)
  let par_names = List.map (fun s -> s.Obs.Report.s_name) (series par) in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " present under K=2") true (List.mem n par_names))
    [ "p0_events"; "p1_events" ]

let suite =
  [
    Alcotest.test_case "all schemes healthy unattacked" `Slow baseline_all_schemes_healthy;
    Alcotest.test_case "tva vs legacy flood" `Slow tva_unaffected_by_legacy_flood;
    Alcotest.test_case "internet collapse" `Slow internet_collapses_under_legacy_flood;
    Alcotest.test_case "siff partial degradation" `Slow siff_partially_degrades_under_legacy_flood;
    Alcotest.test_case "tva vs request flood" `Slow tva_unaffected_by_request_flood;
    Alcotest.test_case "tva vs authorized flood" `Slow tva_survives_authorized_flood;
    Alcotest.test_case "siff vs authorized flood" `Slow siff_starved_by_authorized_flood;
    Alcotest.test_case "fig11 bounded damage" `Slow imprecise_policy_damage_is_bounded;
    Alcotest.test_case "metrics accounting" `Quick metrics_accounting;
    Alcotest.test_case "metrics merge" `Quick metrics_merge;
    Alcotest.test_case "experiment deterministic" `Slow experiment_deterministic;
    Alcotest.test_case "parallel sweep = sequential sweep" `Slow parallel_sweep_matches_sequential;
    Alcotest.test_case "scenario render" `Quick scenario_render_shapes;
    Alcotest.test_case "jain index algebra" `Quick jain_index_algebra;
    Alcotest.test_case "median transfer time" `Quick median_transfer_time_shapes;
    Alcotest.test_case "report deterministic across jobs" `Slow report_deterministic_across_jobs;
    Alcotest.test_case "swarm = n real flooders" `Quick swarm_matches_real_flooders;
    Alcotest.test_case "swarm coalesced = independent" `Quick swarm_modes_agree;
    Alcotest.test_case "swarm batching preserves stream" `Quick swarm_batching_preserves_stream;
    Alcotest.test_case "scale heap = wheel" `Slow scale_heap_wheel_identical;
    Alcotest.test_case "scale topologies smoke" `Slow scale_topologies_smoke;
    Alcotest.test_case "scale memory gauges" `Slow scale_memory_gauges_reported;
    Alcotest.test_case "scale parallel = sequential" `Slow scale_par_matches_seq;
    Alcotest.test_case "scale parallel wheel = sequential" `Slow scale_par_wheel_matches_seq;
    Alcotest.test_case "scale parallel rejects unsafe" `Quick scale_par_rejects_unsafe;
    Alcotest.test_case "topology partitioner properties" `Quick topology_partition_properties;
    Alcotest.test_case "telemetry does not perturb results" `Slow telemetry_does_not_perturb_results;
    Alcotest.test_case "chaos measures engage/recover" `Slow chaos_measures_engage_recover;
    Alcotest.test_case "scale telemetry series jobs-invariant" `Slow
      scale_telemetry_series_jobs_invariant;
  ]
