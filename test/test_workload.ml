(* Integration: small versions of the paper's experiments asserting the
   qualitative claims — the shapes the figures show — rather than exact
   numbers. *)

let quick_cfg ?(transfers = 10) ?(max_time = 60.) scheme n attack =
  {
    Workload.Experiment.default with
    Workload.Experiment.scheme;
    n_attackers = n;
    attack;
    transfers_per_user = transfers;
    max_time;
  }

let tva = Workload.Scheme.tva ~params:Workload.Scenario.sim_params ()
let internet = Workload.Scheme.internet ()
let siff = Workload.Scheme.siff ()

let baseline_all_schemes_healthy () =
  (* No attack: every scheme completes everything at ~0.32 s. *)
  List.iter
    (fun (name, factory) ->
      let r = Workload.Experiment.run (quick_cfg factory 0 Workload.Experiment.No_attack) in
      Alcotest.(check (float 1e-9))
        (name ^ " fraction") 1.0 r.Workload.Experiment.fraction_completed;
      Alcotest.(check bool)
        (Printf.sprintf "%s time %.3f" name r.Workload.Experiment.avg_transfer_time)
        true
        (r.Workload.Experiment.avg_transfer_time < 0.4))
    Workload.Scenario.schemes

let tva_unaffected_by_legacy_flood () =
  let r =
    Workload.Experiment.run
      (quick_cfg tva 100 (Workload.Experiment.Legacy_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check (float 1e-9)) "all complete" 1.0 r.Workload.Experiment.fraction_completed;
  Alcotest.(check bool)
    (Printf.sprintf "time flat (%.3f)" r.Workload.Experiment.avg_transfer_time)
    true
    (r.Workload.Experiment.avg_transfer_time < 0.4)

let internet_collapses_under_legacy_flood () =
  let r =
    Workload.Experiment.run
      (quick_cfg internet 100 (Workload.Experiment.Legacy_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check bool)
    (Printf.sprintf "collapse (%.2f)" r.Workload.Experiment.fraction_completed)
    true
    (r.Workload.Experiment.fraction_completed < 0.3)

let siff_partially_degrades_under_legacy_flood () =
  (* The paper's 1-p^9 model: at 10x overload SIFF completes ~60%, far
     better than the Internet but far worse than TVA. *)
  let r =
    Workload.Experiment.run
      (quick_cfg ~transfers:20 ~max_time:90. siff 100
         (Workload.Experiment.Legacy_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check bool)
    (Printf.sprintf "in between (%.2f)" r.Workload.Experiment.fraction_completed)
    true
    (r.Workload.Experiment.fraction_completed > 0.3
    && r.Workload.Experiment.fraction_completed < 0.95)

let tva_unaffected_by_request_flood () =
  let r =
    Workload.Experiment.run
      (quick_cfg tva 100 (Workload.Experiment.Request_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check (float 1e-9)) "all complete" 1.0 r.Workload.Experiment.fraction_completed;
  Alcotest.(check bool)
    (Printf.sprintf "time flat (%.3f)" r.Workload.Experiment.avg_transfer_time)
    true
    (r.Workload.Experiment.avg_transfer_time < 0.6)

let tva_survives_authorized_flood () =
  (* Fig. 10: per-destination fairness halves the victim's bandwidth but
     nothing worse. *)
  let r =
    Workload.Experiment.run
      (quick_cfg tva 40 (Workload.Experiment.Authorized_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check (float 1e-9)) "all complete" 1.0 r.Workload.Experiment.fraction_completed;
  Alcotest.(check bool)
    (Printf.sprintf "mild slowdown (%.3f)" r.Workload.Experiment.avg_transfer_time)
    true
    (r.Workload.Experiment.avg_transfer_time < 0.8)

let siff_starved_by_authorized_flood () =
  let r =
    Workload.Experiment.run
      (quick_cfg siff 40 (Workload.Experiment.Authorized_flood { rate_bps = 1e6 }))
  in
  Alcotest.(check bool)
    (Printf.sprintf "starved (%.2f)" r.Workload.Experiment.fraction_completed)
    true
    (r.Workload.Experiment.fraction_completed < 0.3)

let imprecise_policy_damage_is_bounded () =
  (* Fig. 11 with TVA: 100 attackers granted 32 KB once at t=10; service
     must be fully recovered well before t=40 and stay clean after. *)
  let cfg =
    {
      (quick_cfg ~transfers:max_int ~max_time:50. tva 100
         (Workload.Experiment.Imprecise_flood
            { rate_bps = 1e6; groups = 1; group_interval = 3.; start_at = 10. }))
      with
      Workload.Experiment.seed = 3;
    }
  in
  let r = Workload.Experiment.run cfg in
  let late = Stats.Timeseries.values_in (Workload.Metrics.timeline r.Workload.Experiment.metrics) ~lo:40. ~hi:50. in
  Alcotest.(check bool) "transfers flowing after recovery" true (List.length late > 20);
  let worst_late = List.fold_left Float.max 0. late in
  Alcotest.(check bool)
    (Printf.sprintf "recovered (worst %.2f)" worst_late)
    true (worst_late < 1.0)

let metrics_accounting () =
  let m = Workload.Metrics.create () in
  Workload.Metrics.record_start m;
  Workload.Metrics.record_start m;
  Workload.Metrics.record_start m;
  Workload.Metrics.record_outcome m ~now:1. (Tcp.Conn.Completed { duration = 0.5 });
  Workload.Metrics.record_outcome m ~now:2. (Tcp.Conn.Aborted { reason = "x"; at = 2. });
  Alcotest.(check int) "attempted" 3 (Workload.Metrics.attempted m);
  Alcotest.(check int) "completed" 1 (Workload.Metrics.completed m);
  Alcotest.(check int) "aborted" 1 (Workload.Metrics.aborted m);
  Alcotest.(check (float 1e-9)) "fraction" (1. /. 3.) (Workload.Metrics.fraction_completed m);
  Alcotest.(check (float 1e-9)) "avg" 0.5 (Workload.Metrics.avg_transfer_time m)

let metrics_merge () =
  let a = Workload.Metrics.create () and b = Workload.Metrics.create () in
  Workload.Metrics.record_start a;
  Workload.Metrics.record_outcome a ~now:1. (Tcp.Conn.Completed { duration = 1.0 });
  Workload.Metrics.record_start b;
  Workload.Metrics.record_outcome b ~now:2. (Tcp.Conn.Completed { duration = 3.0 });
  Workload.Metrics.merge_into a b;
  Alcotest.(check int) "attempted" 2 (Workload.Metrics.attempted a);
  Alcotest.(check (float 1e-9)) "avg" 2.0 (Workload.Metrics.avg_transfer_time a);
  Alcotest.(check int) "timeline merged" 2 (Stats.Timeseries.length (Workload.Metrics.timeline a))

let experiment_deterministic () =
  let cfg = quick_cfg ~transfers:5 tva 10 (Workload.Experiment.Legacy_flood { rate_bps = 1e6 }) in
  let r1 = Workload.Experiment.run cfg in
  let r2 = Workload.Experiment.run cfg in
  Alcotest.(check (float 1e-12)) "same avg time" r1.Workload.Experiment.avg_transfer_time
    r2.Workload.Experiment.avg_transfer_time;
  Alcotest.(check (float 1e-12)) "same fraction" r1.Workload.Experiment.fraction_completed
    r2.Workload.Experiment.fraction_completed

let parallel_sweep_matches_sequential () =
  (* The Pool.map determinism contract on a real (small) Fig. 8 grid: the
     parallel sweep must render byte-for-byte the same table as the
     sequential one. *)
  let base =
    {
      Workload.Experiment.default with
      Workload.Experiment.transfers_per_user = 3;
      max_time = 30.;
    }
  in
  let sweep jobs =
    Stats.Table.render
      (Workload.Scenario.render (Workload.Scenario.fig8 ~jobs ~attacker_counts:[ 1; 10 ] ~base ()))
  in
  Alcotest.(check string) "jobs=4 table = jobs=1 table" (sweep 1) (sweep 4)

let scenario_render_shapes () =
  let series =
    [
      {
        Workload.Scenario.scheme = "x";
        points =
          [ { Workload.Scenario.n_attackers = 1; fraction_completed = 1.; avg_transfer_time = 0.3 } ];
      };
    ]
  in
  let t = Workload.Scenario.render series in
  Alcotest.(check int) "one row" 1 (List.length (Stats.Table.rows t))

let suite =
  [
    Alcotest.test_case "all schemes healthy unattacked" `Slow baseline_all_schemes_healthy;
    Alcotest.test_case "tva vs legacy flood" `Slow tva_unaffected_by_legacy_flood;
    Alcotest.test_case "internet collapse" `Slow internet_collapses_under_legacy_flood;
    Alcotest.test_case "siff partial degradation" `Slow siff_partially_degrades_under_legacy_flood;
    Alcotest.test_case "tva vs request flood" `Slow tva_unaffected_by_request_flood;
    Alcotest.test_case "tva vs authorized flood" `Slow tva_survives_authorized_flood;
    Alcotest.test_case "siff vs authorized flood" `Slow siff_starved_by_authorized_flood;
    Alcotest.test_case "fig11 bounded damage" `Slow imprecise_policy_damage_is_bounded;
    Alcotest.test_case "metrics accounting" `Quick metrics_accounting;
    Alcotest.test_case "metrics merge" `Quick metrics_merge;
    Alcotest.test_case "experiment deterministic" `Slow experiment_deterministic;
    Alcotest.test_case "parallel sweep = sequential sweep" `Slow parallel_sweep_matches_sequential;
    Alcotest.test_case "scenario render" `Quick scenario_render_shapes;
  ]
