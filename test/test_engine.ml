(* The event loop: ordering, cancellation, horizons, and the deterministic
   PRNG everything else builds on. *)

let events_fire_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule_at sim ~time:3. (fun () -> log := 3 :: !log));
  ignore (Sim.schedule_at sim ~time:1. (fun () -> log := 1 :: !log));
  ignore (Sim.schedule_at sim ~time:2. (fun () -> log := 2 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log)

let ties_break_by_scheduling_order () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Sim.schedule_at sim ~time:1. (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo ties" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let clock_advances_to_event_time () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:5. (fun () -> Alcotest.(check (float 1e-9)) "now" 5. (Sim.now sim)));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "final clock" 5. (Sim.now sim)

let cancelled_events_do_not_fire () =
  let sim = Sim.create () in
  let fired = ref false in
  let h = Sim.schedule_at sim ~time:1. (fun () -> fired := true) in
  Sim.cancel h;
  Alcotest.(check bool) "cancelled" true (Sim.cancelled h);
  Sim.run sim;
  Alcotest.(check bool) "did not fire" false !fired

let cancel_is_idempotent () =
  let sim = Sim.create () in
  let h = Sim.schedule_at sim ~time:1. (fun () -> ()) in
  Sim.cancel h;
  Sim.cancel h;
  Alcotest.(check int) "pending" 0 (Sim.pending sim)

let pending_counts_live_events () =
  let sim = Sim.create () in
  let h1 = Sim.schedule_at sim ~time:1. (fun () -> ()) in
  ignore (Sim.schedule_at sim ~time:2. (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Sim.pending sim);
  Sim.cancel h1;
  Alcotest.(check int) "one pending" 1 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check int) "none pending" 0 (Sim.pending sim)

let run_until_stops_at_horizon () =
  let sim = Sim.create () in
  let fired = ref [] in
  ignore (Sim.schedule_at sim ~time:1. (fun () -> fired := 1 :: !fired));
  ignore (Sim.schedule_at sim ~time:10. (fun () -> fired := 10 :: !fired));
  Sim.run ~until:5. sim;
  Alcotest.(check (list int)) "only the early one" [ 1 ] !fired;
  Alcotest.(check (float 1e-9)) "clock at horizon" 5. (Sim.now sim);
  Sim.run sim;
  Alcotest.(check (list int)) "late one after resume" [ 10; 1 ] !fired

let events_scheduled_during_run_fire () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      ignore
        (Sim.schedule sim ~delay:1. (fun () ->
             incr count;
             chain (n - 1)))
  in
  chain 5;
  Sim.run sim;
  Alcotest.(check int) "chained" 5 !count;
  Alcotest.(check (float 1e-9)) "clock" 5. (Sim.now sim)

let stop_halts_processing () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    ignore
      (Sim.schedule sim ~delay:1. (fun () ->
           incr count;
           if !count = 3 then Sim.stop sim))
  done;
  Sim.run sim;
  Alcotest.(check int) "stopped at 3" 3 !count

let scheduling_in_past_rejected () =
  let sim = Sim.create () in
  ignore (Sim.schedule_at sim ~time:5. (fun () -> ()));
  Sim.run sim;
  (match Sim.schedule_at sim ~time:1. (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  match Sim.schedule sim ~delay:(-1.) (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let step_processes_one_event () =
  let sim = Sim.create () in
  let count = ref 0 in
  ignore (Sim.schedule_at sim ~time:1. (fun () -> incr count));
  ignore (Sim.schedule_at sim ~time:2. (fun () -> incr count));
  Alcotest.(check bool) "step 1" true (Sim.step sim);
  Alcotest.(check int) "one fired" 1 !count;
  Alcotest.(check bool) "step 2" true (Sim.step sim);
  Alcotest.(check bool) "empty" false (Sim.step sim)

let heap_survives_many_events =
  QCheck.Test.make ~name:"sim: random schedules fire in sorted order" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range 0. 1000.))
    (fun times ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iter (fun t -> ignore (Sim.schedule_at sim ~time:t (fun () -> fired := t :: !fired))) times;
      Sim.run sim;
      let fired = List.rev !fired in
      List.sort compare times = fired)

(* Guards the 4-ary heap: 10k random schedule/cancel/step operations, then
   a full drain, asserting every fired event is nondecreasing in (time,
   creation order) — creation order equals the heap's tie-breaking [seq]. *)
let heap_order_under_random_schedule_cancel =
  QCheck.Test.make ~name:"sim: 10k random schedule/cancel pop in (time, seq) order" ~count:10
    QCheck.small_int (fun seed ->
      let sim = Sim.create ~seed:(seed + 1) () in
      let rng = Rng.create ~seed:(seed + 1000) in
      let fired = ref [] in
      let stamp = ref 0 in
      let live = ref [] in
      for _ = 1 to 10_000 do
        match Rng.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 ->
            (* Schedule at now + random delay; delay 0 and duplicate times
               are common, exercising the seq tie-break. *)
            let delay = float_of_int (Rng.int rng 50) /. 10. in
            let k = !stamp in
            incr stamp;
            let h =
              Sim.schedule sim ~delay (fun () -> fired := (Sim.now sim, k) :: !fired)
            in
            live := h :: !live
        | 6 | 7 -> (
            (* Cancel a random live handle (possibly already fired). *)
            match !live with
            | [] -> ()
            | handles ->
                let i = Rng.int rng (List.length handles) in
                Sim.cancel (List.nth handles i))
        | _ -> ignore (Sim.step sim)
      done;
      Sim.run sim;
      let fired = List.rev !fired in
      let rec nondecreasing = function
        | (t1, k1) :: ((t2, k2) :: _ as rest) ->
            (t1 < t2 || (t1 = t2 && k1 < k2)) && nondecreasing rest
        | [ _ ] | [] -> true
      in
      nondecreasing fired)

(* --- Timing wheel vs the reference heap -------------------------------- *)

(* One command script, two simulators: the wheel must fire the exact same
   (time, stamp) sequence as the reference heap — same-timestamp ties,
   sub-tick time differences, cancels, single steps, and partial runs with
   a horizon (which make the wheel advance its tick past events that are
   then scheduled "behind" it). *)
type cmd = Csched of float | Ccancel of int | Cstep | Cuntil of float

let gen_script seed n =
  let rng = Rng.create ~seed in
  List.init n (fun _ ->
      match Rng.int rng 12 with
      | 0 | 1 | 2 | 3 | 4 | 5 ->
          let delay =
            match Rng.int rng 4 with
            | 0 -> float_of_int (Rng.int rng 20) (* whole seconds: heavy ties *)
            | 1 -> float_of_int (Rng.int rng 50) /. 10.
            | 2 -> float_of_int (Rng.int rng 1000) *. 1e-7 (* sub-tick offsets *)
            | _ -> Rng.float rng 10.
          in
          Csched delay
      | 6 | 7 -> Ccancel (Rng.int rng 1_000_000)
      | 8 | 9 | 10 -> Cstep
      | _ -> Cuntil (Rng.float rng 5.))

let run_script ~sched cmds =
  let sim = Sim.create ~sched () in
  let fired = ref [] in
  let stamp = ref 0 in
  let handles = ref [] in
  let n_handles = ref 0 in
  List.iter
    (fun cmd ->
      match cmd with
      | Csched delay ->
          let k = !stamp in
          incr stamp;
          let h = Sim.schedule sim ~delay (fun () -> fired := (Sim.now sim, k) :: !fired) in
          handles := h :: !handles;
          incr n_handles
      | Ccancel i -> if !n_handles > 0 then Sim.cancel (List.nth !handles (i mod !n_handles))
      | Cstep -> ignore (Sim.step sim)
      | Cuntil d -> Sim.run ~until:(Sim.now sim +. d) sim)
    cmds;
  Sim.run sim;
  (List.rev !fired, Sim.now sim, Sim.pending sim)

let wheel_matches_heap_differential =
  QCheck.Test.make ~name:"sim: wheel fires identically to the 4-ary heap" ~count:15
    QCheck.small_int (fun seed ->
      let cmds = gen_script (seed + 1) 3000 in
      run_script ~sched:Sim.Heap cmds = run_script ~sched:Sim.Wheel cmds)

let wheel_overflow_far_future () =
  (* Spans beyond the wheel's 2^32 us levels exercise the overflow list and
     its reseeding jump. *)
  let sim = Sim.create ~sched:Sim.Wheel () in
  let log = ref [] in
  let at t tag = ignore (Sim.schedule_at sim ~time:t (fun () -> log := tag :: !log)) in
  at 9000. 3;
  at 0.001 1;
  at (9000. +. 1e-7) 4;
  at 4000. 2;
  at 50000. 5;
  Sim.run sim;
  Alcotest.(check (list int)) "overflow order" [ 1; 2; 3; 4; 5 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 50000. (Sim.now sim)

let wheel_schedule_behind_advanced_tick () =
  (* run ~until peeks the next event, advancing the wheel's tick to it;
     an event scheduled after that, earlier than the peeked one, must
     still fire first. *)
  let sim = Sim.create ~sched:Sim.Wheel () in
  let log = ref [] in
  ignore (Sim.schedule_at sim ~time:1. (fun () -> log := 1 :: !log));
  ignore (Sim.schedule_at sim ~time:10. (fun () -> log := 10 :: !log));
  Sim.run ~until:5. sim;
  Alcotest.(check (list int)) "horizon respected" [ 1 ] !log;
  ignore (Sim.schedule_at sim ~time:6. (fun () -> log := 6 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "behind-tick event first" [ 1; 6; 10 ] (List.rev !log)

let wheel_tie_break_fifo () =
  let sim = Sim.create ~sched:Sim.Wheel () in
  let log = ref [] in
  for i = 0 to 99 do
    ignore (Sim.schedule_at sim ~time:1. (fun () -> log := i :: !log))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo ties" (List.init 100 Fun.id) (List.rev !log)

(* --- scheduler edges, each differential heap vs wheel ------------------- *)

(* Events far beyond the wheel's 2^32-microsecond level span live in the
   top-level overflow list; mixing them with near-term ties must still fire
   in the heap's exact (time, seq) order through the reseeding jumps. *)
let beyond_horizon_differential =
  QCheck.Test.make ~name:"sim: beyond-horizon overflow fires like the heap" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed:(seed + 21) in
      let cmds =
        List.init 600 (fun _ ->
            match Rng.int rng 8 with
            | 0 | 1 | 2 -> Csched (float_of_int (Rng.int rng 200_000)) (* deep overflow, ties *)
            | 3 | 4 -> Csched (Rng.float rng 300_000.)
            | 5 -> Csched (Rng.float rng 5.)
            | 6 -> Ccancel (Rng.int rng 1_000_000)
            | _ -> Cuntil (Rng.float rng 50_000.))
      in
      run_script ~sched:Sim.Heap cmds = run_script ~sched:Sim.Wheel cmds)

(* A cancel-heavy load (well over half of everything scheduled dies before
   firing) stresses the wheel's slot compaction and the freelist's
   all-dummy invariant on recycled slot arrays. *)
let cancel_heavy_differential =
  QCheck.Test.make ~name:"sim: >=50% cancelled fires like the heap" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed:(seed + 43) in
      let cmds =
        List.concat
          (List.init 500 (fun _ ->
               let delay =
                 match Rng.int rng 3 with
                 | 0 -> float_of_int (Rng.int rng 20)
                 | 1 -> float_of_int (Rng.int rng 1000) *. 1e-7
                 | _ -> Rng.float rng 50.
               in
               (* Schedule, then 60% of the time cancel that same event
                  ([Ccancel 0] targets the newest handle) plus sometimes a
                  random older one: most of the population dies unfired. *)
               Csched delay
               :: (if Rng.int rng 10 < 6 then
                     Ccancel 0
                     :: (if Rng.int rng 4 = 0 then [ Ccancel (Rng.int rng 1_000_000) ] else [])
                   else [])))
      in
      let fired_h, now_h, pending_h = run_script ~sched:Sim.Heap cmds in
      let fired_w, now_w, pending_w = run_script ~sched:Sim.Wheel cmds in
      let total = 500 in
      List.length fired_h * 2 <= total
      && fired_h = fired_w && now_h = now_w && pending_h = pending_w)

(* [run ~until] horizons that land between wheel ticks (sub-microsecond
   fractions) must stop the wheel mid-tick exactly where the heap stops. *)
let until_mid_tick_differential =
  QCheck.Test.make ~name:"sim: run ~until mid-tick stops like the heap" ~count:10
    QCheck.small_int (fun seed ->
      let run sched =
        (* A fresh identically-seeded rng per run: both schedulers must see
           the exact same script. *)
        let rng = Rng.create ~seed:(seed + 87) in
        let sim = Sim.create ~sched () in
        let fired = ref [] in
        (* Sub-tick offsets around whole-microsecond boundaries. *)
        List.iter
          (fun (t, k) -> ignore (Sim.schedule_at sim ~time:t (fun () -> fired := (Sim.now sim, k) :: !fired)))
          (List.init 400 (fun k ->
               (float_of_int (Rng.int rng 50) *. 1e-6 +. float_of_int (Rng.int rng 10) *. 1e-7, k)));
        let marks = ref [] in
        for _ = 1 to 30 do
          let upto = float_of_int (Rng.int rng 50) *. 1e-6 +. float_of_int (Rng.int rng 10) *. 1e-7 in
          if upto >= Sim.now sim then begin
            Sim.run ~until:upto sim;
            marks := (Sim.now sim, List.length !fired) :: !marks
          end
        done;
        Sim.run sim;
        (List.rev !fired, !marks, Sim.now sim)
      in
      run Sim.Heap = run Sim.Wheel)

(* --- windowed execution and the domain team ------------------------------ *)

(* The window bound is exclusive by default (an event exactly AT the edge
   waits for the next window, after the mailbox exchange) and inclusive on
   demand (the final window at [until]). *)
let run_window_bounds () =
  List.iter
    (fun sched ->
      let sim = Sim.create ~sched () in
      let log = ref [] in
      let at t k = ignore (Sim.schedule_at sim ~time:t (fun () -> log := k :: !log)) in
      at 1.0 1;
      at 2.0 2;
      at 2.0 3;
      at 3.0 4;
      Alcotest.(check (float 0.)) "next_time" 1.0 (Sim.next_time sim);
      Sim.run_window sim ~upto:2.0;
      Alcotest.(check (list int)) "exclusive edge holds back" [ 1 ] (List.rev !log);
      Alcotest.(check (float 0.)) "clock at window edge" 2.0 (Sim.now sim);
      Sim.run_window ~inclusive:true sim ~upto:2.0;
      Alcotest.(check (list int)) "inclusive fires edge ties in order" [ 1; 2; 3 ] (List.rev !log);
      Sim.run_window sim ~upto:10.0;
      Alcotest.(check (list int)) "drains" [ 1; 2; 3; 4 ] (List.rev !log);
      Alcotest.(check (float 0.)) "drained clock stays at last event" 3.0 (Sim.now sim);
      Alcotest.(check (float 0.)) "next_time empty" infinity (Sim.next_time sim))
    [ Sim.Heap; Sim.Wheel ]

(* Chopping a run into arbitrary exclusive windows must fire the exact
   stream [Sim.run] fires — the sequential core of the lockstep driver. *)
let run_window_differential =
  QCheck.Test.make ~name:"sim: windowed run fires identically to Sim.run" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create ~seed:(seed + 5) in
      let sched = if seed mod 2 = 0 then Sim.Heap else Sim.Wheel in
      let script =
        List.init 800 (fun k ->
            let t =
              match Rng.int rng 3 with
              | 0 -> float_of_int (Rng.int rng 30)
              | 1 -> Rng.float rng 40.
              | _ -> float_of_int (Rng.int rng 1000) *. 1e-7
            in
            (t, k))
      in
      let load sim fired =
        List.iter
          (fun (t, k) -> ignore (Sim.schedule_at sim ~time:t (fun () -> fired := (Sim.now sim, k) :: !fired)))
          script
      in
      let ref_sim = Sim.create ~sched () in
      let ref_fired = ref [] in
      load ref_sim ref_fired;
      Sim.run ref_sim;
      let win_sim = Sim.create ~sched () in
      let win_fired = ref [] in
      load win_sim win_fired;
      let rec windows () =
        match Sim.next_time win_sim with
        | t when t = infinity -> ()
        | t ->
            Sim.run_window win_sim ~upto:(t +. Rng.float rng 3.);
            windows ()
      in
      windows ();
      !ref_fired = !win_fired && Sim.now ref_sim = Sim.now win_sim)

let par_team_runs_all_lanes () =
  let team = Par.create 3 in
  Fun.protect
    ~finally:(fun () -> Par.shutdown team)
    (fun () ->
      Alcotest.(check int) "size" 3 (Par.size team);
      let hits = Array.make 3 0 in
      Par.run team (fun lane -> hits.(lane) <- hits.(lane) + 1);
      Par.run team (fun lane -> hits.(lane) <- hits.(lane) + 1);
      Alcotest.(check (array int)) "every lane ran twice" [| 2; 2; 2 |] hits;
      (match Par.run team (fun lane -> if lane = 1 then failwith "boom") with
      | () -> Alcotest.fail "expected the lane failure to re-raise"
      | exception Failure m -> Alcotest.(check string) "lane failure surfaces" "boom" m);
      (* The barrier completed despite the failure: the team is reusable. *)
      Par.run team (fun lane -> hits.(lane) <- hits.(lane) + 1);
      Alcotest.(check (array int)) "reusable after failure" [| 3; 3; 3 |] hits);
  (* Idempotent shutdown. *)
  Par.shutdown team

(* A two-lane ping-pong through mailboxes: every bounce crosses the cut at
   exactly [lookahead], the worst case for the window loop. *)
let par_drive_ping_pong () =
  let sims = [| Sim.create (); Sim.create () |] in
  let mb =
    [| Mailbox.create ~dummy:(fun () -> ()) (); Mailbox.create ~dummy:(fun () -> ()) () |]
  in
  let logs = [| ref []; ref [] |] in
  let rec hop lane n () =
    let sim = sims.(lane) in
    logs.(lane) := Sim.now sim :: !(logs.(lane));
    if n > 0 then Mailbox.push mb.(1 - lane) ~time:(Sim.now sim +. 0.05) (hop (1 - lane) (n - 1))
  in
  ignore (Sim.schedule_at sims.(0) ~time:0.1 (hop 0 8));
  let exchange () =
    Array.iteri
      (fun i m -> Mailbox.drain m ~f:(fun ~time thunk -> ignore (Sim.schedule_at sims.(i) ~time thunk)))
      mb
  in
  let team = Par.create 2 in
  Fun.protect
    ~finally:(fun () -> Par.shutdown team)
    (fun () -> Par.drive team ~sims ~lookahead:0.05 ~until:10. ~exchange);
  Alcotest.(check int) "lane 0 bounces" 5 (List.length !(logs.(0)));
  Alcotest.(check int) "lane 1 bounces" 4 (List.length !(logs.(1)));
  let sorted l = List.sort compare l in
  Alcotest.(check bool) "lane 0 fired in order" true (sorted !(logs.(0)) = List.rev !(logs.(0)));
  Alcotest.(check bool) "lane 1 fired in order" true (sorted !(logs.(1)) = List.rev !(logs.(1)));
  (* Each bounce advanced by exactly one lookahead. *)
  let all = List.sort compare (!(logs.(0)) @ !(logs.(1))) in
  List.iteri
    (fun i t -> Alcotest.(check (float 1e-9)) (Printf.sprintf "hop %d" i) (0.1 +. (0.05 *. float_of_int i)) t)
    all

(* Regression: a run-dry drive ([until = infinity], no pulse) must
   terminate once the lanes drain — the pulse sentinel [next_pulse () =
   infinity] used to satisfy [infinity <= infinity] in the final drain
   and spin forever.  And a pulse with a non-finite [until] is rejected
   up front, mirroring [Net.run_parallel]: its series never ends. *)
let par_drive_run_dry_terminates () =
  let sims = [| Sim.create (); Sim.create () |] in
  let fired = ref 0 in
  ignore (Sim.schedule_at sims.(0) ~time:0.1 (fun () -> incr fired));
  ignore (Sim.schedule_at sims.(1) ~time:0.2 (fun () -> incr fired));
  let team = Par.create 2 in
  Fun.protect
    ~finally:(fun () -> Par.shutdown team)
    (fun () ->
      Par.drive team ~sims ~lookahead:0.05 ~until:infinity ~exchange:(fun () -> ());
      Alcotest.(check int) "both lanes drained" 2 !fired;
      Alcotest.check_raises "pulse needs a finite until"
        (Invalid_argument "Par.drive: a pulse needs a finite until") (fun () ->
          Par.drive team ~sims ~lookahead:0.05 ~until:infinity
            ~pulse:(0.1, fun _ -> ())
            ~exchange:(fun () -> ())))

let sched_of_string_roundtrip () =
  Alcotest.(check bool) "heap" true (Sim.sched_of_string "heap" = Ok Sim.Heap);
  Alcotest.(check bool) "wheel" true (Sim.sched_of_string "wheel" = Ok Sim.Wheel);
  (match Sim.sched_of_string "calendar" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  Alcotest.(check bool) "auto small" true (Sim.recommended_sched ~expected_pending:100 = Sim.Heap);
  Alcotest.(check bool) "auto large" true
    (Sim.recommended_sched ~expected_pending:100_000 = Sim.Wheel)

(* --- Rng ------------------------------------------------------------- *)

let rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false (Int64.equal (Rng.bits64 a) (Rng.bits64 b))

let rng_split_independent () =
  let a = Rng.create ~seed:1 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let rng_float_in_range =
  QCheck.Test.make ~name:"rng: float stays in [0, bound)" ~count:200
    QCheck.(pair small_int (float_range 0.001 1000.))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let x = Rng.float rng bound in
      x >= 0. && x < bound)

let rng_int_in_range =
  QCheck.Test.make ~name:"rng: int stays in [0, bound)" ~count:200
    QCheck.(pair small_int (int_range 1 100000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let rng_exponential_positive () =
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    if Rng.exponential rng ~mean:0.5 < 0. then Alcotest.fail "negative exponential"
  done

let rng_exponential_mean_approx () =
  let rng = Rng.create ~seed:11 in
  let n = 20000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:2.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean within 5%" true (Float.abs (mean -. 2.0) < 0.1)

let rng_bytes_length () =
  let rng = Rng.create ~seed:3 in
  Alcotest.(check int) "length" 33 (String.length (Rng.bytes rng 33))

(* Bank lane [i] must replay [Rng.lane ~seed i] bit-for-bit: the
   aggregate-sender equivalence (Swarm vs real flooders) rests on it. *)
let bank_matches_lane () =
  let seed = 77 and n = 5 in
  let bank = Rng.Bank.create ~seed ~n in
  for i = 0 to n - 1 do
    let r = Rng.lane ~seed i in
    for draw = 0 to 99 do
      Alcotest.(check int64)
        (Printf.sprintf "lane %d draw %d" i draw)
        (Rng.bits64 r) (Rng.Bank.bits64 bank i)
    done
  done;
  (* The float mapping matches the scalar one too. *)
  let r = Rng.lane ~seed n in
  let bank2 = Rng.Bank.create ~seed ~n:(n + 1) in
  for _ = 0 to 49 do
    Alcotest.(check (float 0.)) "float mapping" (Rng.float r 3.5) (Rng.Bank.float bank2 n 3.5)
  done

(* --- auxiliary (telemetry) events ---------------------------------------- *)

(* schedule_aux's two contracts: at equal time the aux event fires before
   every normal event (the "all events < T fired, none at T" observation
   cut), and scheduling aux events never consumes a normal sequence
   number, so the normal events' tie order is exactly what it would be
   without them. *)
let aux_fires_first_and_does_not_perturb () =
  let run ~with_aux =
    let sim = Sim.create () in
    let order = ref [] in
    let note name () = order := name :: !order in
    ignore (Sim.schedule_at sim ~time:1. (note "n1"));
    if with_aux then ignore (Sim.schedule_aux sim ~time:1. (note "aux1"));
    ignore (Sim.schedule_at sim ~time:1. (note "n2"));
    if with_aux then ignore (Sim.schedule_aux sim ~time:2. (note "aux2"));
    (* same-time ties scheduled from inside handlers keep their relative
       order too *)
    ignore
      (Sim.schedule_at sim ~time:2. (fun () ->
           note "n3" ();
           ignore (Sim.schedule_at sim ~time:2. (note "n4"))));
    Sim.run sim;
    List.rev !order
  in
  Alcotest.(check (list string))
    "aux events fire before same-time normal events"
    [ "aux1"; "n1"; "n2"; "aux2"; "n3"; "n4" ]
    (run ~with_aux:true);
  let strip = List.filter (fun n -> not (String.length n >= 3 && String.sub n 0 3 = "aux")) in
  Alcotest.(check (list string))
    "normal order identical with aux stripped"
    (run ~with_aux:false)
    (strip (run ~with_aux:true))

(* A self-rearming aux chain (how Timeseries.attach drives ticks): later
   aux events keep firing first at each time point, and the chain observes
   the pre-T state — handlers at T run after the tick at T. *)
let aux_chain_observes_cut () =
  let sim = Sim.create () in
  let v = ref 0 in
  let seen = ref [] in
  let rec tick k =
    if k <= 4 then
      ignore
        (Sim.schedule_aux sim ~time:(float_of_int k) (fun () ->
             seen := !v :: !seen;
             tick (k + 1)))
  in
  tick 1;
  (* v increments at each integer time via normal events; the aux tick at
     the same time must read the value from before the increment *)
  for k = 1 to 4 do
    ignore (Sim.schedule_at sim ~time:(float_of_int k) (fun () -> incr v))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "each tick sees pre-T state" [ 0; 1; 2; 3 ] (List.rev !seen)

let suite =
  [
    Alcotest.test_case "time order" `Quick events_fire_in_time_order;
    Alcotest.test_case "tie order" `Quick ties_break_by_scheduling_order;
    Alcotest.test_case "clock" `Quick clock_advances_to_event_time;
    Alcotest.test_case "cancel" `Quick cancelled_events_do_not_fire;
    Alcotest.test_case "cancel idempotent" `Quick cancel_is_idempotent;
    Alcotest.test_case "pending count" `Quick pending_counts_live_events;
    Alcotest.test_case "run until" `Quick run_until_stops_at_horizon;
    Alcotest.test_case "schedule during run" `Quick events_scheduled_during_run_fire;
    Alcotest.test_case "stop" `Quick stop_halts_processing;
    Alcotest.test_case "past rejected" `Quick scheduling_in_past_rejected;
    Alcotest.test_case "step" `Quick step_processes_one_event;
    QCheck_alcotest.to_alcotest heap_survives_many_events;
    QCheck_alcotest.to_alcotest heap_order_under_random_schedule_cancel;
    QCheck_alcotest.to_alcotest wheel_matches_heap_differential;
    Alcotest.test_case "wheel overflow order" `Quick wheel_overflow_far_future;
    Alcotest.test_case "wheel behind-tick schedule" `Quick wheel_schedule_behind_advanced_tick;
    Alcotest.test_case "wheel tie fifo" `Quick wheel_tie_break_fifo;
    QCheck_alcotest.to_alcotest beyond_horizon_differential;
    QCheck_alcotest.to_alcotest cancel_heavy_differential;
    QCheck_alcotest.to_alcotest until_mid_tick_differential;
    Alcotest.test_case "run_window bounds" `Quick run_window_bounds;
    QCheck_alcotest.to_alcotest run_window_differential;
    Alcotest.test_case "par team lanes" `Quick par_team_runs_all_lanes;
    Alcotest.test_case "par drive ping-pong" `Quick par_drive_ping_pong;
    Alcotest.test_case "par drive run-dry terminates" `Quick par_drive_run_dry_terminates;
    Alcotest.test_case "aux fires first, no perturbation" `Quick
      aux_fires_first_and_does_not_perturb;
    Alcotest.test_case "aux chain observes cut" `Quick aux_chain_observes_cut;
    Alcotest.test_case "sched selection" `Quick sched_of_string_roundtrip;
    Alcotest.test_case "rng deterministic" `Quick rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick rng_seeds_differ;
    Alcotest.test_case "rng split" `Quick rng_split_independent;
    QCheck_alcotest.to_alcotest rng_float_in_range;
    QCheck_alcotest.to_alcotest rng_int_in_range;
    Alcotest.test_case "rng exponential positive" `Quick rng_exponential_positive;
    Alcotest.test_case "rng exponential mean" `Quick rng_exponential_mean_approx;
    Alcotest.test_case "rng bytes" `Quick rng_bytes_length;
    Alcotest.test_case "rng bank = rng lane" `Quick bank_matches_lane;
  ]
