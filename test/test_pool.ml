(* The deterministic domain pool: submission-order results, sequential
   equivalence, exception propagation. *)

let map_matches_list_map () =
  let items = List.init 50 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = List.map f items in
  Alcotest.(check (list int)) "jobs=1" expected (Pool.map ~jobs:1 f items);
  Alcotest.(check (list int)) "jobs=4" expected (Pool.map ~jobs:4 f items);
  Alcotest.(check (list int)) "jobs>items" expected (Pool.map ~jobs:64 f items)

let results_in_submission_order () =
  (* Make early jobs the slowest so completion order inverts submission
     order: results must still come back in submission order. *)
  let items = List.init 8 (fun i -> i) in
  let f i =
    let spin = (8 - i) * 100_000 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := !acc + k
    done;
    ignore !acc;
    i
  in
  Alcotest.(check (list int)) "order" items (Pool.map ~jobs:4 f items)

let empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map ~jobs:4 (fun x -> x) [ 7 ])

exception Boom of int

let exceptions_propagate () =
  match Pool.map ~jobs:4 (fun i -> if i = 3 then raise (Boom i) else i) (List.init 8 Fun.id) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 3 -> ()
  | exception e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)

let default_jobs_positive () =
  Alcotest.(check bool) "at least one worker" true (Pool.default_jobs () >= 1)

let independent_sims_in_parallel () =
  (* Each job runs its own simulator; parallel results must equal the
     sequential ones exactly (shared-nothing determinism). *)
  let job seed =
    let sim = Sim.create ~seed () in
    let total = ref 0. in
    for i = 1 to 100 do
      ignore
        (Sim.schedule sim ~delay:(Rng.float (Sim.rng sim) 10.)
           (fun () -> total := !total +. (Sim.now sim *. float_of_int i)))
    done;
    Sim.run sim;
    !total
  in
  let seeds = List.init 16 (fun i -> i + 1) in
  let seq = Pool.map ~jobs:1 job seeds in
  let par = Pool.map ~jobs:4 job seeds in
  List.iter2 (fun a b -> Alcotest.(check (float 0.)) "bitwise equal" a b) seq par

let suite =
  [
    Alcotest.test_case "map = List.map" `Quick map_matches_list_map;
    Alcotest.test_case "submission order" `Quick results_in_submission_order;
    Alcotest.test_case "empty/singleton" `Quick empty_and_singleton;
    Alcotest.test_case "exception propagation" `Quick exceptions_propagate;
    Alcotest.test_case "default jobs" `Quick default_jobs_positive;
    Alcotest.test_case "parallel sims deterministic" `Quick independent_sims_in_parallel;
  ]
