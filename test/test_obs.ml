(* Observability: the counter registry, the trace ring, the event-loop
   profiler, the export surfaces, and — most importantly — conservation
   properties tying the obs counters to what the datapath actually did. *)

let ev snap name e =
  match List.assoc_opt name snap with
  | None -> 0
  | Some arr -> arr.(Obs.Event.to_int e)

(* --- Counters ------------------------------------------------------------ *)

let counters_basics () =
  let c = Obs.Counters.create ~name:"c" () in
  Alcotest.(check bool) "not nop" false (Obs.Counters.is_nop c);
  Alcotest.(check bool) "nop is nop" true (Obs.Counters.is_nop Obs.Counters.nop);
  Obs.Counters.incr c Obs.Event.Packets_in;
  Obs.Counters.incr c Obs.Event.Packets_in;
  Obs.Counters.add c Obs.Event.Demoted 5;
  Alcotest.(check int) "incr" 2 (Obs.Counters.get c Obs.Event.Packets_in);
  Alcotest.(check int) "add" 5 (Obs.Counters.get c Obs.Event.Demoted);
  Alcotest.(check int) "total" 7 (Obs.Counters.total c);
  (* the nop sink absorbs increments without being observable *)
  Obs.Counters.incr Obs.Counters.nop Obs.Event.Packets_in;
  Obs.Counters.reset c;
  Alcotest.(check int) "reset" 0 (Obs.Counters.total c)

let counters_registry_and_merge () =
  let reg = Obs.Counters.registry () in
  let a = Obs.Counters.register reg ~name:"a" in
  let b = Obs.Counters.register reg ~name:"b" in
  Alcotest.(check (list string)) "creation order"
    [ "a"; "b" ]
    (List.map Obs.Counters.name (Obs.Counters.registered reg));
  Alcotest.(check bool) "find" true
    (match Obs.Counters.find reg ~name:"b" with Some c -> c == b | None -> false);
  Obs.Counters.incr a Obs.Event.Transmitted;
  Obs.Counters.add b Obs.Event.Delivered 3;
  let s1 = Obs.Counters.snapshot_all reg in
  (* A second "run" with overlapping and fresh instances. *)
  let reg2 = Obs.Counters.registry () in
  let b2 = Obs.Counters.register reg2 ~name:"b" in
  let c2 = Obs.Counters.register reg2 ~name:"c" in
  Obs.Counters.add b2 Obs.Event.Delivered 4;
  Obs.Counters.incr c2 Obs.Event.Packets_in;
  let merged = Obs.Counters.merge_snaps s1 (Obs.Counters.snapshot_all reg2) in
  Alcotest.(check (list string)) "first-seen order then appendees"
    [ "a"; "b"; "c" ] (List.map fst merged);
  Alcotest.(check int) "pointwise sum" 7 (ev merged "b" Obs.Event.Delivered);
  Alcotest.(check int) "left-only survives" 1 (ev merged "a" Obs.Event.Transmitted);
  Alcotest.(check int) "right-only appended" 1 (ev merged "c" Obs.Event.Packets_in)

(* --- Trace ring ---------------------------------------------------------- *)

let record t i =
  Obs.Trace.record t ~time:(float_of_int i) ~node:i ~event:Obs.Event.Transmitted ~src:1 ~dst:2
    ~size:100

let trace_sampling_and_wraparound () =
  (* capacity rounds up to a power of two *)
  let t = Obs.Trace.create ~capacity:5 () in
  Alcotest.(check int) "pow2 capacity" 8 (Obs.Trace.capacity t);
  for i = 0 to 19 do
    record t i
  done;
  Alcotest.(check int) "seen all offers" 20 (Obs.Trace.seen t);
  Alcotest.(check int) "written all (sample=1)" 20 (Obs.Trace.written t);
  Alcotest.(check int) "ring holds the tail" 8 (Obs.Trace.length t);
  let times = ref [] in
  Obs.Trace.iter t (fun ~time ~node:_ ~event:_ ~src:_ ~dst:_ ~size:_ ->
      times := time :: !times);
  Alcotest.(check (list (float 0.))) "oldest surviving first"
    [ 12.; 13.; 14.; 15.; 16.; 17.; 18.; 19. ]
    (List.rev !times);
  (* 1-in-3 sampling keeps offers 0, 3, 6, ... *)
  let s = Obs.Trace.create ~capacity:64 ~sample:3 () in
  for i = 0 to 9 do
    record s i
  done;
  Alcotest.(check int) "seen" 10 (Obs.Trace.seen s);
  Alcotest.(check int) "1 in 3 written" 4 (Obs.Trace.written s);
  (* nop: recording is a no-op *)
  record Obs.Trace.nop 0;
  Alcotest.(check int) "nop seen" 0 (Obs.Trace.seen Obs.Trace.nop)

let trace_filter_and_formats () =
  let t =
    Obs.Trace.create ~capacity:16 ~filter:(fun e -> e = Obs.Event.Delivered) ()
  in
  record t 0;
  (* filtered out: does not advance the sampling phase either *)
  Alcotest.(check int) "filtered not seen" 0 (Obs.Trace.seen t);
  Obs.Trace.record t ~time:1.5 ~node:7 ~event:Obs.Event.Delivered ~src:3 ~dst:4 ~size:64;
  Alcotest.(check int) "kept" 1 (Obs.Trace.written t);
  let buf = Buffer.create 256 in
  Obs.Trace.to_jsonl ~node_name:(fun i -> Printf.sprintf "n%d" i) t buf;
  let line = String.trim (Buffer.contents buf) in
  Alcotest.(check string) "jsonl record"
    "{\"t\":1.500000000,\"node\":\"n7\",\"event\":\"delivered\",\"src\":3,\"dst\":4,\"size\":64}"
    line;
  Buffer.clear buf;
  Obs.Trace.to_csv t buf;
  Alcotest.(check string) "csv" "time,node,event,src,dst,size\n1.500000000,7,delivered,3,4,64\n"
    (Buffer.contents buf)

(* --- Histogram log binning + pp alignment -------------------------------- *)

let histogram_log_bins () =
  (match Stats.Histogram.create_log ~lo:0. ~hi:10. ~bins:4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "lo = 0 must be rejected");
  let h = Stats.Histogram.create_log ~lo:1. ~hi:1000. ~bins:3 in
  (* decade bins: [1,10) [10,100) [100,1000) *)
  List.iteri
    (fun i (lo, hi) ->
      let blo, bhi = Stats.Histogram.bin_bounds h i in
      Alcotest.(check (float 1e-9)) (Printf.sprintf "bin %d lo" i) lo blo;
      Alcotest.(check (float 1e-9)) (Printf.sprintf "bin %d hi" i) hi bhi)
    [ (1., 10.); (10., 100.); (100., 1000.) ];
  List.iter (Stats.Histogram.add h) [ 2.; 5.; 20.; 500.; 0.5; 5000. ];
  Alcotest.(check int) "bin0" 2 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "bin1" 1 (Stats.Histogram.bin_count h 1);
  Alcotest.(check int) "bin2" 1 (Stats.Histogram.bin_count h 2);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Stats.Histogram.overflow h);
  Alcotest.(check int) "count" 6 (Stats.Histogram.count h)

let histogram_pp_alignment () =
  (* Mixed-width labels and counts: every rendered line must come out the
     same length — labels left-padded to one width, counts right-aligned. *)
  let h = Stats.Histogram.create_log ~lo:1. ~hi:10000. ~bins:4 in
  List.iter (Stats.Histogram.add h) [ 0.1; 2.; 2.; 2.; 20.; 20000. ];
  for _ = 1 to 150 do
    Stats.Histogram.add h 200.
  done;
  let rendered = Format.asprintf "%a" Stats.Histogram.pp h in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' rendered) in
  Alcotest.(check bool) "several lines" true (List.length lines >= 4);
  let widths = List.sort_uniq compare (List.map String.length lines) in
  Alcotest.(check int) "all lines equally wide" 1 (List.length widths)

(* --- Profiler ------------------------------------------------------------ *)

let profile_kinds_and_gauges () =
  let p = Obs.Profile.create ~clock:(fun () -> 0.) () in
  Obs.Profile.hit p ~kind:Sim.Kind.agent ~dt:0.5;
  Obs.Profile.hit p ~kind:Sim.Kind.agent ~dt:0.25;
  Obs.Profile.hit p ~kind:Sim.Kind.net_deliver ~dt:1.;
  Alcotest.(check int) "agent events" 2 (Obs.Profile.events p ~kind:Sim.Kind.agent);
  Alcotest.(check (float 1e-9)) "agent wall" 0.75 (Obs.Profile.wall_s p ~kind:Sim.Kind.agent);
  Alcotest.(check int) "total events" 3 (Obs.Profile.total_events p);
  let rows = Obs.Profile.kind_rows p in
  Alcotest.(check (list string)) "nonzero kinds in kind order"
    [ Sim.Kind.name Sim.Kind.net_deliver; Sim.Kind.name Sim.Kind.agent ]
    (List.map (fun (n, _, _, _) -> n) rows);
  let g = Obs.Profile.gauge p ~name:"depth" ~lo:1. ~hi:100. ~bins:8 in
  Alcotest.(check bool) "find-or-create" true
    (g == Obs.Profile.gauge p ~name:"depth" ~lo:1. ~hi:100. ~bins:8);
  Obs.Profile.observe g 3.;
  Obs.Profile.observe g 30.;
  Alcotest.(check int) "gauge count" 2 (Stats.Summary.count (Obs.Profile.gauge_summary g));
  let sim = Sim.create () in
  match Obs.Profile.sample_every p sim ~period:0. [ (g, fun () -> 1.) ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "nonpositive period must be rejected"

let profile_attach_counts_sim_events () =
  let sim = Sim.create () in
  let p = Obs.Profile.create ~clock:Unix.gettimeofday () in
  Obs.Profile.attach p sim;
  ignore (Sim.schedule sim ~delay:0.1 ~kind:Sim.Kind.agent (fun () -> ()));
  ignore (Sim.schedule sim ~delay:0.2 (fun () -> ()));
  Sim.run sim;
  Obs.Profile.detach sim;
  Alcotest.(check int) "agent kind" 1 (Obs.Profile.events p ~kind:Sim.Kind.agent);
  Alcotest.(check int) "default kind" 1 (Obs.Profile.events p ~kind:Sim.Kind.other);
  ignore (Sim.schedule sim ~delay:0.1 ~kind:Sim.Kind.agent (fun () -> ()));
  Sim.run sim;
  Alcotest.(check int) "detached: no more hits" 1 (Obs.Profile.events p ~kind:Sim.Kind.agent)

(* --- Export -------------------------------------------------------------- *)

let export_null_markers () =
  Alcotest.(check string) "nan is null" "null"
    (Obs.Export.to_string (Obs.Export.number_or_null Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Obs.Export.to_string (Obs.Export.number_or_null Float.infinity));
  Alcotest.(check string) "finite passes" "0.5"
    (Obs.Export.to_string (Obs.Export.number_or_null 0.5));
  Alcotest.(check string) "escaping"
    "{\"a\\\"b\": [1, null, true]}"
    (Obs.Export.to_string
       (Obs.Export.Obj
          [ ("a\"b", Obs.Export.List [ Obs.Export.Int 1; Obs.Export.Null; Obs.Export.Bool true ]) ]))

let metrics_no_attempts_regression () =
  let m = Workload.Metrics.create () in
  (* The legacy accessor keeps its vacuous-truth value for renderers... *)
  Alcotest.(check (float 1e-9)) "legacy accessor" 1.0 (Workload.Metrics.fraction_completed m);
  (* ...but the export path can tell "nothing attempted" apart. *)
  Alcotest.(check bool) "opt is None" true (Workload.Metrics.fraction_completed_opt m = None);
  Workload.Metrics.record_start m;
  Alcotest.(check bool) "attempted but incomplete" true
    (Workload.Metrics.fraction_completed_opt m = Some 0.)

(* --- Flow-cache eviction statistics -------------------------------------- *)

let flow_cache_eviction_stats () =
  let obs = Obs.Counters.create ~name:"cache" () in
  let cache = Tva.Flow_cache.create ~obs ~max_entries:4 () in
  let insert i ~now =
    match
      Tva.Flow_cache.insert cache ~now ~src:(Wire.Addr.of_int (100 + i))
        ~dst:(Wire.Addr.of_int 1) ~nonce:(Int64.of_int i) ~n_kb:10 ~t_sec:1 ~cap_ts:0
        ~packet_bytes:100
    with
    | Tva.Flow_cache.Inserted _ -> true
    | _ -> false
  in
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "insert %d" i) true (insert i ~now:0.)
  done;
  Alcotest.(check int) "hwm at fill" 4 (Tva.Flow_cache.hwm cache);
  Alcotest.(check int) "no evictions yet" 0 (Tva.Flow_cache.evictions cache);
  (* All four entries' T windows passed: inserting reclaims one by one. *)
  for i = 5 to 6 do
    Alcotest.(check bool) (Printf.sprintf "insert %d reclaims" i) true (insert i ~now:10.)
  done;
  Alcotest.(check int) "two cursor evictions" 2 (Tva.Flow_cache.evictions cache);
  (* By now=20 everything left (two originals plus inserts 5 and 6, all
     with T=1) has expired. *)
  let swept = Tva.Flow_cache.sweep cache ~now:20. in
  Alcotest.(check int) "sweep reclaims the rest" 4 swept;
  Alcotest.(check int) "evictions total" 6 (Tva.Flow_cache.evictions cache);
  Alcotest.(check int) "counter mirrors evictions" 6 (Obs.Counters.get obs Obs.Event.Cache_evicted);
  Alcotest.(check int) "hwm survives eviction" 4 (Tva.Flow_cache.hwm cache);
  Alcotest.(check int) "size back down" 0 (Tva.Flow_cache.size cache);
  (* Explicit removal is not an eviction. *)
  (match
     Tva.Flow_cache.insert cache ~now:20. ~src:(Wire.Addr.of_int 200) ~dst:(Wire.Addr.of_int 1)
       ~nonce:9L ~n_kb:10 ~t_sec:1 ~cap_ts:0 ~packet_bytes:100
   with
  | Tva.Flow_cache.Inserted e -> Tva.Flow_cache.remove cache e
  | _ -> Alcotest.fail "insert into empty cache");
  Alcotest.(check int) "remove not counted" 6 (Tva.Flow_cache.evictions cache)

(* --- Qdisc high-water mark ----------------------------------------------- *)

let mk_packet ?(bytes = 1000) () =
  Wire.Packet.make ~src:(Wire.Addr.of_int 1) ~dst:(Wire.Addr.of_int 2) ~created:0.
    (Wire.Packet.Raw bytes)

let qdisc_hwm () =
  let q = Droptail.create ~capacity_bytes:10_000 () in
  Alcotest.(check int) "fresh hwm" 0 q.Qdisc.stats.Qdisc.hwm_packets;
  for _ = 1 to 3 do
    ignore (Qdisc.enqueue q ~now:0. (mk_packet ()))
  done;
  ignore (Qdisc.dequeue_opt q ~now:0.);
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ()));
  (* depth went 1,2,3 then 2,3: the mark stays at the peak *)
  Alcotest.(check int) "hwm is the peak" 3 q.Qdisc.stats.Qdisc.hwm_packets;
  Alcotest.(check int) "current depth below" 3 (Qdisc.packet_count q);
  ignore (Qdisc.enqueue q ~now:0. (mk_packet ()));
  Alcotest.(check int) "new peak" 4 q.Qdisc.stats.Qdisc.hwm_packets

(* --- Conservation over a real run ---------------------------------------- *)

let obs_cfg =
  {
    Workload.Experiment.default with
    Workload.Experiment.scheme = Workload.Scheme.tva ~params:Workload.Scenario.sim_params ();
    n_attackers = 5;
    attack = Workload.Experiment.Legacy_flood { rate_bps = 1e6 };
    transfers_per_user = 3;
    max_time = 15.;
  }

let run_with_obs () =
  let r = Workload.Experiment.run ~obs:Workload.Experiment.obs_default obs_cfg in
  match r.Workload.Experiment.obs with
  | Some report -> (r, report)
  | None -> Alcotest.fail "obs run produced no report"

let routers = [ "left-router"; "right-router" ]

let conservation_packet_classes () =
  let _, report = run_with_obs () in
  let snap = report.Obs.Report.counters in
  List.iter
    (fun name ->
      let c e = ev snap name e in
      Alcotest.(check bool) (name ^ " saw traffic") true (c Obs.Event.Packets_in > 0);
      Alcotest.(check int)
        (name ^ ": in = legacy + request + regular")
        (c Obs.Event.Packets_in)
        (c Obs.Event.Legacy_in + c Obs.Event.Request_in + c Obs.Event.Regular_in);
      Alcotest.(check int)
        (name ^ ": demoted = sum of reasons")
        (c Obs.Event.Demoted)
        (c Obs.Event.Demoted_bad_cap + c Obs.Event.Demoted_cap_expired + c Obs.Event.Demoted_no_cap
       + c Obs.Event.Demoted_bytes_exhausted + c Obs.Event.Demoted_cache_full
       + c Obs.Event.Demoted_over_limit + c Obs.Event.Demoted_header_full))
    routers

let conservation_forwarding () =
  (* Every packet handed to a router is accounted for: transmitted on some
     out-link, dropped by a qdisc (or unroutable), or still queued when the
     run ended. *)
  let _, report = run_with_obs () in
  let snap = report.Obs.Report.counters in
  List.iter
    (fun name ->
      let c e = ev snap name e in
      let residual =
        List.fold_left
          (fun acc (l : Obs.Report.link_row) ->
            if String.length l.l_name >= String.length name + 2
               && String.sub l.l_name 0 (String.length name + 2) = name ^ "->"
            then
              (* the first row is the link's root qdisc; nested rows would
                 double-count *)
              acc + (List.hd l.l_qdiscs).Obs.Report.q_residual_packets
            else acc)
          0 report.Obs.Report.links
      in
      Alcotest.(check int)
        (name ^ ": delivered = transmitted + drops + residual")
        (c Obs.Event.Delivered)
        (c Obs.Event.Transmitted + c Obs.Event.Queue_drop_request + c Obs.Event.Queue_drop_regular
       + c Obs.Event.Queue_drop_legacy + c Obs.Event.No_route + c Obs.Event.Hops_exceeded
       + residual))
    routers

let conservation_caches () =
  let _, report = run_with_obs () in
  let snap = report.Obs.Report.counters in
  let expected_capacity =
    Tva.Params.flow_cache_entries Workload.Scenario.sim_params
      ~link_bps:obs_cfg.Workload.Experiment.bottleneck_bps
  in
  Alcotest.(check int) "one cache row per router" 2 (List.length report.Obs.Report.caches);
  List.iter
    (fun (row : Obs.Report.cache_row) ->
      Alcotest.(check int)
        (row.c_router ^ ": Sec 3.6 provisioning")
        expected_capacity row.c_capacity;
      Alcotest.(check bool) (row.c_router ^ ": size within bound") true
        (row.c_size <= row.c_capacity);
      Alcotest.(check bool) (row.c_router ^ ": hwm within bound") true
        (row.c_size <= row.c_hwm && row.c_hwm <= row.c_capacity);
      Alcotest.(check int)
        (row.c_router ^ ": evictions mirror counter")
        (ev snap row.c_router Obs.Event.Cache_evicted)
        row.c_evictions;
      Alcotest.(check int)
        (row.c_router ^ ": inserts cover occupancy peak")
        row.c_hwm
        (min (ev snap row.c_router Obs.Event.Cache_inserted) row.c_capacity))
    report.Obs.Report.caches

let obs_counters_do_not_perturb_results () =
  let bare = Workload.Experiment.run obs_cfg in
  let observed, _ = run_with_obs () in
  Alcotest.(check (float 0.)) "fraction identical" bare.Workload.Experiment.fraction_completed
    observed.Workload.Experiment.fraction_completed;
  Alcotest.(check (float 0.)) "avg time identical" bare.Workload.Experiment.avg_transfer_time
    observed.Workload.Experiment.avg_transfer_time;
  Alcotest.(check (float 0.)) "sim end identical" bare.Workload.Experiment.sim_end
    observed.Workload.Experiment.sim_end;
  Alcotest.(check int) "event count identical" bare.Workload.Experiment.events
    observed.Workload.Experiment.events

(* --- Demotions vs the host protocol -------------------------------------- *)

let src = Wire.Addr.of_int 0x0a000001
let dst = Wire.Addr.of_int 0x0a000002

(* The 4-node TVA line of test_tva, with obs counters on both routers. *)
let demotions_match_host_echoes () =
  let sim = Sim.create ~seed:77 () in
  let net = Net.create sim in
  let params = Tva.Params.default in
  let sink _node ~in_link:_ _p = () in
  let a = Net.add_node ~addr:src ~name:"a" net sink in
  let r1 = Net.add_node ~name:"r1" net sink in
  let r2 = Net.add_node ~name:"r2" net sink in
  let b = Net.add_node ~addr:dst ~name:"b" net sink in
  let connect x y =
    ignore
      (Net.duplex net x y ~bandwidth_bps:10e6 ~delay:0.005 ~qdisc:(fun () ->
           Tva.Qdiscs.make ~params ~bandwidth_bps:10e6 ()))
  in
  connect a r1;
  connect r1 r2;
  connect r2 b;
  Net.compute_routes net;
  let obs1 = Obs.Counters.create ~name:"r1" () in
  let obs2 = Obs.Counters.create ~name:"r2" () in
  let router1 =
    Tva.Router.create ~obs:obs1 ~params ~secret_master:"r1" ~router_id:(Net.node_id r1) ~sim
      ~link_bps:10e6 ()
  in
  Net.set_handler r1 (Tva.Router.handler router1);
  let router2 =
    Tva.Router.create ~obs:obs2 ~params ~secret_master:"r2" ~router_id:(Net.node_id r2) ~sim
      ~link_bps:10e6 ()
  in
  Net.set_handler r2 (Tva.Router.handler router2);
  let host_a =
    Tva.Host.create ~params ~policy:(Tva.Policy.client ()) ~node:a ~rng:(Rng.split (Sim.rng sim))
      ()
  in
  let host_b =
    Tva.Host.create ~params ~auto_reply:true ~policy:(Tva.Policy.server ()) ~node:b
      ~rng:(Rng.split (Sim.rng sim)) ()
  in
  Tva.Host.send_raw host_a ~dst ~bytes:100;
  Sim.run ~until:1. sim;
  Tva.Host.send_raw host_a ~dst ~bytes:1000;
  Sim.run ~until:2. sim;
  let demoted () = Obs.Counters.get obs1 Obs.Event.Demoted + Obs.Counters.get obs2 Obs.Event.Demoted in
  Alcotest.(check int) "authorized traffic: zero demotions" 0 (demoted ());
  (* Route change: both routers lose their caches.  The next nonce-only
     packet is demoted exactly once (r1 demotes; r2 then counts it as
     legacy), and B sees exactly that many demoted arrivals. *)
  Tva.Router.flush_cache router1;
  Tva.Router.flush_cache router2;
  Tva.Host.send_raw host_a ~dst ~bytes:1000;
  Sim.run ~until:3. sim;
  Alcotest.(check int) "one demotion, counted once" 1 (demoted ());
  Alcotest.(check int) "r1 reason: no capability" 1
    (Obs.Counters.get obs1 Obs.Event.Demoted_no_cap);
  Alcotest.(check int) "obs matches router counters"
    ((Tva.Router.counters router1).Tva.Router.demotions
    + (Tva.Router.counters router2).Tva.Router.demotions)
    (demoted ());
  Alcotest.(check int) "obs matches host demotions_seen"
    (Tva.Host.counters host_b).Tva.Host.demotions_seen (demoted ())

(* --- In-run telemetry: Timeseries / Detect / Flight (DESIGN.md §15) ----- *)

let timeseries_basics () =
  let v = ref 0 and depth = ref 0 in
  let ts = Obs.Timeseries.create ~capacity:4 ~interval:0.5 () in
  Obs.Timeseries.add ts ~name:"count" ~mode:Obs.Timeseries.Cumulative
    (Obs.Timeseries.Int_fn (fun () -> !v));
  Obs.Timeseries.add ts ~name:"depth" ~mode:Obs.Timeseries.Level
    (Obs.Timeseries.Int_fn (fun () -> !depth));
  (match
     Obs.Timeseries.add ts ~name:"count" ~mode:Obs.Timeseries.Level
       (Obs.Timeseries.Int_fn (fun () -> 0))
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate channel name accepted");
  Alcotest.(check (list string)) "channels" [ "count"; "depth" ] (Obs.Timeseries.channels ts);
  let count = Option.get (Obs.Timeseries.chan_index ts "count") in
  let dep = Option.get (Obs.Timeseries.chan_index ts "depth") in
  v := 10;
  depth := 3;
  Obs.Timeseries.tick ts ~time:0.5;
  v := 25;
  depth := 7;
  Obs.Timeseries.tick ts ~time:1.0;
  (* cumulative channels store the delta since the previous tick (baseline
     0 at freeze); rate divides by the interval; level channels store the
     instantaneous value *)
  Alcotest.(check (float 0.)) "first delta" 10. (Obs.Timeseries.value ts ~chan:count 0);
  Alcotest.(check (float 0.)) "second delta" 15. (Obs.Timeseries.value ts ~chan:count 1);
  Alcotest.(check (float 0.)) "rate" 30. (Obs.Timeseries.rate ts ~chan:count 1);
  Alcotest.(check (float 0.)) "level" 7. (Obs.Timeseries.value ts ~chan:dep 1);
  Alcotest.(check (float 0.)) "last time" 1.0 (Obs.Timeseries.last_time ts);
  (* the channel set is frozen after the first tick *)
  (match
     Obs.Timeseries.add ts ~name:"late" ~mode:Obs.Timeseries.Level
       (Obs.Timeseries.Int_fn (fun () -> 0))
   with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "add after tick accepted");
  (* ring wrap: capacity 4, six ticks total -> the four newest survive *)
  for k = 3 to 6 do
    v := !v + k;
    Obs.Timeseries.tick ts ~time:(0.5 *. float_of_int k)
  done;
  Alcotest.(check int) "written counts all ticks" 6 (Obs.Timeseries.written ts);
  Alcotest.(check int) "ring holds capacity" 4 (Obs.Timeseries.length ts);
  Alcotest.(check (float 0.)) "oldest surviving window" 1.5 (Obs.Timeseries.time_at ts 0);
  Alcotest.(check (float 0.)) "newest window" 3.0 (Obs.Timeseries.time_at ts 3)

(* The documented hysteresis property: a signal that oscillates every
   window between a firing level (>= on) and a dip below it never flaps.
   With alpha = 1 (no smoothing), up = 1 and down = 2, strict alternation
   yields exactly one incident however long it runs and wherever the dip
   lands below the on threshold — a single dip window can never satisfy
   two consecutive clear windows. *)
let detect_no_flapping =
  QCheck.Test.make ~name:"detect: hysteresis absorbs single-window oscillation" ~count:100
    QCheck.(triple (int_range 1 50) (int_range 50 1000) (int_range 0 49))
    (fun (pairs, high, dip) ->
      let v = ref 0 in
      let ts = Obs.Timeseries.create ~capacity:256 ~interval:1.0 () in
      Obs.Timeseries.add ts ~name:"sig" ~mode:Obs.Timeseries.Level
        (Obs.Timeseries.Int_fn (fun () -> !v));
      let rules =
        [
          Obs.Detect.rule ~signal:`Value ~up:1 ~down:2 ~alpha:1.0 ~name:"osc" ~chan:"sig"
            ~on:50. ~off:10. ();
        ]
      in
      let det = Obs.Detect.create ~rules ts in
      let t = ref 0. in
      for _ = 1 to pairs do
        v := high;
        t := !t +. 1.;
        Obs.Timeseries.tick ts ~time:!t;
        Obs.Detect.step det;
        v := dip;
        t := !t +. 1.;
        Obs.Timeseries.tick ts ~time:!t;
        Obs.Detect.step det
      done;
      Obs.Detect.finish det ~time:!t;
      match Obs.Detect.incidents det with
      | [ inc ] ->
          inc.Obs.Detect.in_rule = "osc"
          && inc.Obs.Detect.in_onset = 1.
          && inc.Obs.Detect.in_open
          && inc.Obs.Detect.in_peak = float_of_int high
          && Obs.Detect.engage_recover det = Some (1., !t -. 1.)
      | incs -> QCheck.Test.fail_reportf "expected 1 incident, got %d" (List.length incs))

(* A clean clear: hold the signal over the threshold, then below [off]
   long enough — the incident closes with the right onset/clear/peak and
   a second excursion opens a second incident. *)
let detect_onset_clear_peak () =
  let v = ref 0 in
  let ts = Obs.Timeseries.create ~interval:1.0 () in
  Obs.Timeseries.add ts ~name:"sig" ~mode:Obs.Timeseries.Level
    (Obs.Timeseries.Int_fn (fun () -> !v));
  let rules =
    [
      Obs.Detect.rule ~signal:`Value ~up:2 ~down:2 ~alpha:1.0 ~name:"r" ~chan:"sig" ~on:50.
        ~off:10. ();
    ]
  in
  let det = Obs.Detect.create ~rules ts in
  let t = ref 0. in
  let feed value =
    v := value;
    t := !t +. 1.;
    Obs.Timeseries.tick ts ~time:!t;
    Obs.Detect.step det
  in
  (* two windows over [on] to open (up = 2), a peak, two windows at or
     below [off] to clear (down = 2) *)
  List.iter feed [ 60; 60; 90; 5; 5; 0 ];
  (* second excursion, still open at finish *)
  List.iter feed [ 70; 70 ];
  Obs.Detect.finish det ~time:!t;
  match Obs.Detect.incidents det with
  | [ a; b ] ->
      Alcotest.(check (float 0.)) "onset at the up-th window" 2. a.Obs.Detect.in_onset;
      Alcotest.(check (float 0.)) "clear at the down-th quiet window" 5. a.Obs.Detect.in_clear;
      Alcotest.(check bool) "first incident closed" false a.Obs.Detect.in_open;
      Alcotest.(check (float 0.)) "peak value" 90. a.Obs.Detect.in_peak;
      Alcotest.(check (float 0.)) "peak time" 3. a.Obs.Detect.in_peak_at;
      Alcotest.(check (float 0.)) "second onset" 8. b.Obs.Detect.in_onset;
      Alcotest.(check bool) "second still open" true b.Obs.Detect.in_open;
      Alcotest.(check (float 0.)) "open incident finalized at run end" 8. b.Obs.Detect.in_clear
  | incs -> Alcotest.failf "expected 2 incidents, got %d" (List.length incs)

let export_parse_roundtrip () =
  let v =
    Obs.Export.(
      Obj
        [
          ("int", Int 42);
          ("neg", Int (-7));
          ("float", Float 2.5);
          ("exp", Float 1e-9);
          ("nan_as_null", number_or_null Float.nan);
          ("string", String "quote\" backslash\\ newline\n tab\t");
          ("list", List [ Null; Bool true; Bool false; Int 0 ]);
          ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
        ])
  in
  let expect =
    (* NaN serializes as null, so the round trip lands on Null there *)
    Obs.Export.(
      Obj
        [
          ("int", Int 42);
          ("neg", Int (-7));
          ("float", Float 2.5);
          ("exp", Float 1e-9);
          ("nan_as_null", Null);
          ("string", String "quote\" backslash\\ newline\n tab\t");
          ("list", List [ Null; Bool true; Bool false; Int 0 ]);
          ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
        ])
  in
  (match Obs.Export.parse (Obs.Export.to_string v) with
  | Ok got -> Alcotest.(check bool) "compact round-trips" true (got = expect)
  | Error e -> Alcotest.failf "compact parse failed: %s" e);
  match Obs.Export.parse (Obs.Export.to_string_pretty v) with
  | Ok got -> Alcotest.(check bool) "pretty round-trips" true (got = expect)
  | Error e -> Alcotest.failf "pretty parse failed: %s" e

let obj_field json name =
  match json with Obs.Export.Obj fields -> List.assoc_opt name fields | _ -> None

let flight_dump_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "tva_test_flight" in
  List.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Array.to_list (Sys.readdir dir) with Sys_error _ -> []);
  let v = ref 0 in
  let ts = Obs.Timeseries.create ~interval:0.5 () in
  Obs.Timeseries.add ts ~name:"sig" ~mode:Obs.Timeseries.Level
    (Obs.Timeseries.Int_fn (fun () -> !v));
  let det =
    Obs.Detect.create
      ~rules:
        [ Obs.Detect.rule ~signal:`Value ~alpha:1.0 ~name:"hot" ~chan:"sig" ~on:5. ~off:1. () ]
      ts
  in
  let f = Obs.Flight.create ~windows:8 ~max_dumps:2 ~dir ~label:"unit" () in
  Obs.Flight.set_timeseries f ts;
  Obs.Flight.set_detect f det;
  v := 9;
  Obs.Timeseries.tick ts ~time:0.5;
  Obs.Detect.step det;
  (* the in-memory dump round-trips through the parser and carries the
     trigger metadata plus the series *)
  let json = Obs.Flight.dump_json f ~reason:"unit-test" ~time:0.5 in
  (match Obs.Export.parse (Obs.Export.to_string_pretty json) with
  | Error e -> Alcotest.failf "dump_json does not re-parse: %s" e
  | Ok parsed ->
      Alcotest.(check bool) "flight marker" true (obj_field parsed "flight" = Some (Obs.Export.Bool true));
      Alcotest.(check bool) "label" true (obj_field parsed "label" = Some (Obs.Export.String "unit"));
      Alcotest.(check bool) "reason" true
        (obj_field parsed "reason" = Some (Obs.Export.String "unit-test"));
      Alcotest.(check bool) "series present" true (obj_field parsed "series" <> None));
  (* on-disk dumps: two under the cap, the third refused *)
  let p1 = Obs.Flight.trigger f ~reason:"one" ~time:0.5 in
  let p2 = Obs.Flight.trigger f ~reason:"two" ~time:0.5 in
  let p3 = Obs.Flight.trigger f ~reason:"three" ~time:0.5 in
  Alcotest.(check bool) "first dump written" true (p1 <> None);
  Alcotest.(check bool) "second dump written" true (p2 <> None);
  Alcotest.(check bool) "max_dumps cap enforced" true (p3 = None);
  Alcotest.(check (list string))
    "dumps in write order"
    [ Option.get p1; Option.get p2 ]
    (Obs.Flight.dumps f);
  let ic = open_in_bin (Option.get p1) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Obs.Export.parse s with
  | Ok parsed ->
      Alcotest.(check bool) "on-disk dump re-parses with reason" true
        (obj_field parsed "reason" = Some (Obs.Export.String "one"))
  | Error e -> Alcotest.failf "on-disk dump does not re-parse: %s" e

(* Regression: an unwritable flight dir (here: the path is a regular
   file) must degrade to a missing dump — [trigger] fires from detector
   callbacks on the simulation tick path, so it returns [None] instead of
   raising [Sys_error] and aborting the run at incident onset. *)
let flight_unwritable_dir_degrades () =
  let file = Filename.temp_file "tva_flight_blocked" "" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let f = Obs.Flight.create ~dir:file ~label:"blocked" () in
      (match Obs.Flight.trigger f ~reason:"onset" ~time:1.0 with
      | None -> ()
      | Some p -> Alcotest.failf "expected no dump, got %s" p);
      Alcotest.(check (list string)) "no dumps recorded" [] (Obs.Flight.dumps f))

(* The committed example artifact (results/flight_example.json, produced
   by the chaos suite's wipe scenario) must keep parsing with the same
   loader tooling uses; this pins the dump format. *)
let flight_example_parses () =
  (* cwd is test/ under `dune runtest` but the project root under
     `dune exec test/test_main.exe` *)
  let path =
    match
      List.find_opt Sys.file_exists
        [ "../results/flight_example.json"; "results/flight_example.json" ]
    with
    | Some p -> p
    | None -> Alcotest.fail "results/flight_example.json not found (missing dune dep?)"
  in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Obs.Export.parse s with
  | Error e -> Alcotest.failf "committed flight dump does not parse: %s" e
  | Ok json ->
      Alcotest.(check bool) "flight marker" true (obj_field json "flight" = Some (Obs.Export.Bool true));
      Alcotest.(check bool) "labelled" true (obj_field json "label" <> None);
      Alcotest.(check bool) "reasoned" true (obj_field json "reason" <> None);
      (match obj_field json "series" with
      | Some series ->
          (match obj_field series "windows" with
          | Some (Obs.Export.List (_ :: _)) -> ()
          | _ -> Alcotest.fail "series.windows empty or missing")
      | None -> Alcotest.fail "series missing");
      Alcotest.(check bool) "incidents present" true (obj_field json "incidents" <> None)

let report_series_rows () =
  let v = ref 0 in
  let ts = Obs.Timeseries.create ~interval:1.0 () in
  Obs.Timeseries.add ts ~name:"load" ~mode:Obs.Timeseries.Cumulative
    (Obs.Timeseries.Int_fn (fun () -> !v));
  (* baseline the cumulative source at v = 0 — without the explicit freeze
     the first tick would baseline-and-record in one go, storing delta 0 *)
  Obs.Timeseries.freeze ts;
  for k = 1 to 10 do
    v := !v + k;
    Obs.Timeseries.tick ts ~time:(float_of_int k)
  done;
  match Obs.Report.series_rows ts with
  | [ row ] ->
      Alcotest.(check string) "name" "load" row.Obs.Report.s_name;
      Alcotest.(check string) "mode" "cumulative" row.Obs.Report.s_mode;
      Alcotest.(check int) "windows" 10 row.Obs.Report.s_windows;
      (* deltas are 1..10 per-second rates: mean 5.5, max 10 *)
      Alcotest.(check (float 1e-9)) "mean" 5.5 row.Obs.Report.s_mean;
      Alcotest.(check (float 0.)) "max" 10. row.Obs.Report.s_max;
      Alcotest.(check int) "spark covers every window" 10
        (let d = Obs.Report.sparkline [| 1.; 2. |] in
         (* sparkline glyphs are multi-byte; count glyphs, not bytes *)
         String.length row.Obs.Report.s_spark / (String.length d / 2))
  | rows -> Alcotest.failf "expected 1 series row, got %d" (List.length rows)

let suite =
  [
    Alcotest.test_case "counters basics" `Quick counters_basics;
    Alcotest.test_case "registry + merge" `Quick counters_registry_and_merge;
    Alcotest.test_case "trace sampling + wraparound" `Quick trace_sampling_and_wraparound;
    Alcotest.test_case "trace filter + formats" `Quick trace_filter_and_formats;
    Alcotest.test_case "histogram log bins" `Quick histogram_log_bins;
    Alcotest.test_case "histogram pp alignment" `Quick histogram_pp_alignment;
    Alcotest.test_case "profile kinds + gauges" `Quick profile_kinds_and_gauges;
    Alcotest.test_case "profile attach/detach" `Quick profile_attach_counts_sim_events;
    Alcotest.test_case "export null markers" `Quick export_null_markers;
    Alcotest.test_case "metrics no-attempts regression" `Quick metrics_no_attempts_regression;
    Alcotest.test_case "flow-cache eviction stats" `Quick flow_cache_eviction_stats;
    Alcotest.test_case "qdisc high-water mark" `Quick qdisc_hwm;
    Alcotest.test_case "conservation: packet classes" `Quick conservation_packet_classes;
    Alcotest.test_case "conservation: forwarding" `Quick conservation_forwarding;
    Alcotest.test_case "conservation: flow caches" `Quick conservation_caches;
    Alcotest.test_case "counters do not perturb results" `Quick obs_counters_do_not_perturb_results;
    Alcotest.test_case "demotions match host echoes" `Quick demotions_match_host_echoes;
    Alcotest.test_case "timeseries basics" `Quick timeseries_basics;
    QCheck_alcotest.to_alcotest detect_no_flapping;
    Alcotest.test_case "detect onset/clear/peak" `Quick detect_onset_clear_peak;
    Alcotest.test_case "export parse round-trip" `Quick export_parse_roundtrip;
    Alcotest.test_case "flight dump round-trip" `Quick flight_dump_roundtrip;
    Alcotest.test_case "flight unwritable dir degrades" `Quick flight_unwritable_dir_degrades;
    Alcotest.test_case "committed flight example parses" `Quick flight_example_parses;
    Alcotest.test_case "report series rows" `Quick report_series_rows;
  ]
