(* Wire formats: addresses, the bit-level buffer, the capability header
   codec (Fig. 5), SIFF markings, and packet size accounting. *)

(* --- Addr ------------------------------------------------------------- *)

let addr_roundtrip () =
  let a = Wire.Addr.of_int 0x0a000001 in
  Alcotest.(check int) "roundtrip" 0x0a000001 (Wire.Addr.to_int a);
  Alcotest.(check string) "wire string" "\x0a\x00\x00\x01" (Wire.Addr.to_wire_string a)

let addr_rejects_out_of_range () =
  (match Wire.Addr.of_int (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative accepted");
  match Wire.Addr.of_int 0x1_0000_0000 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too large accepted"

let addr_pp () =
  Alcotest.(check string) "dotted quad" "10.0.0.1"
    (Format.asprintf "%a" Wire.Addr.pp (Wire.Addr.of_int 0x0a000001))

(* --- Bitbuf ------------------------------------------------------------ *)

let bitbuf_simple_roundtrip () =
  let w = Wire.Bitbuf.Writer.create () in
  Wire.Bitbuf.Writer.put w ~bits:4 0xA;
  Wire.Bitbuf.Writer.put w ~bits:4 0x5;
  Wire.Bitbuf.Writer.put w ~bits:16 0xBEEF;
  Wire.Bitbuf.Writer.put64 w ~bits:48 0x123456789ABCL;
  let s = Wire.Bitbuf.Writer.contents w in
  Alcotest.(check int) "length" 9 (String.length s);
  let r = Wire.Bitbuf.Reader.create s in
  Alcotest.(check int) "nibble 1" 0xA (Wire.Bitbuf.Reader.get r ~bits:4);
  Alcotest.(check int) "nibble 2" 0x5 (Wire.Bitbuf.Reader.get r ~bits:4);
  Alcotest.(check int) "word" 0xBEEF (Wire.Bitbuf.Reader.get r ~bits:16);
  Alcotest.(check int64) "48 bits" 0x123456789ABCL (Wire.Bitbuf.Reader.get64 r ~bits:48)

let bitbuf_64bit () =
  let w = Wire.Bitbuf.Writer.create () in
  Wire.Bitbuf.Writer.put64 w ~bits:64 0xFFEEDDCCBBAA9988L;
  let r = Wire.Bitbuf.Reader.create (Wire.Bitbuf.Writer.contents w) in
  Alcotest.(check int64) "full word" 0xFFEEDDCCBBAA9988L (Wire.Bitbuf.Reader.get64 r ~bits:64)

let bitbuf_rejects_overflow () =
  let w = Wire.Bitbuf.Writer.create () in
  match Wire.Bitbuf.Writer.put w ~bits:4 16 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "overflow accepted"

let bitbuf_truncated_read () =
  let r = Wire.Bitbuf.Reader.create "\xff" in
  ignore (Wire.Bitbuf.Reader.get r ~bits:8);
  match Wire.Bitbuf.Reader.get r ~bits:1 with
  | exception Wire.Bitbuf.Reader.Truncated -> ()
  | _ -> Alcotest.fail "read past end"

let bitbuf_padding_is_zero () =
  let w = Wire.Bitbuf.Writer.create () in
  Wire.Bitbuf.Writer.put w ~bits:3 0b111;
  let s = Wire.Bitbuf.Writer.contents w in
  Alcotest.(check int) "one byte" 1 (String.length s);
  Alcotest.(check int) "left aligned, zero padded" 0b11100000 (Char.code s.[0])

let bitbuf_random_roundtrip =
  QCheck.Test.make ~name:"bitbuf: arbitrary field sequences round-trip" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_range 1 30) small_nat))
    (fun fields ->
      let fields = List.map (fun (bits, v) -> (bits, v land ((1 lsl bits) - 1))) fields in
      let w = Wire.Bitbuf.Writer.create () in
      List.iter (fun (bits, v) -> Wire.Bitbuf.Writer.put w ~bits v) fields;
      let r = Wire.Bitbuf.Reader.create (Wire.Bitbuf.Writer.contents w) in
      List.for_all (fun (bits, v) -> Wire.Bitbuf.Reader.get r ~bits = v) fields)

(* --- Cap_shim codec ----------------------------------------------------- *)

let cap ts hash = { Wire.Cap_shim.ts; hash }

let roundtrip shim =
  match Wire.Cap_shim.decode (Wire.Cap_shim.encode shim) with
  | Ok decoded -> decoded
  | Error e -> Alcotest.failf "decode failed: %s" e

let shim_equal (a : Wire.Cap_shim.t) (b : Wire.Cap_shim.t) =
  a.Wire.Cap_shim.kind = b.Wire.Cap_shim.kind
  && a.Wire.Cap_shim.demoted = b.Wire.Cap_shim.demoted
  && a.Wire.Cap_shim.return_info = b.Wire.Cap_shim.return_info
  && a.Wire.Cap_shim.ptr = b.Wire.Cap_shim.ptr

let request_roundtrip () =
  let shim = Wire.Cap_shim.request () in
  shim.Wire.Cap_shim.kind <-
    Wire.Cap_shim.Request
      {
        rev_path_ids = List.rev [ 0x1234; 0xFFFF ];
        rev_precaps = List.rev [ cap 12 0xAABBCCDDEEFFL; cap 255 1L ];
      };
  Alcotest.(check bool) "request round-trips" true (shim_equal shim (roundtrip shim))

let regular_nonce_only_roundtrip () =
  let shim =
    Wire.Cap_shim.regular ~nonce:0xABCDEF012345L ~caps:[] ~n_kb:100 ~t_sec:10 ~renewal:false ()
  in
  Alcotest.(check bool) "nonce-only round-trips" true (shim_equal shim (roundtrip shim))

let regular_with_caps_roundtrip () =
  let shim =
    Wire.Cap_shim.regular ~nonce:1L
      ~caps:[ cap 1 2L; cap 3 4L; cap 5 6L ]
      ~n_kb:1023 ~t_sec:63 ~renewal:false ()
  in
  shim.Wire.Cap_shim.ptr <- 2;
  Alcotest.(check bool) "caps round-trip" true (shim_equal shim (roundtrip shim))

let renewal_roundtrip () =
  let shim =
    Wire.Cap_shim.regular ~nonce:42L ~caps:[ cap 1 2L ] ~n_kb:32 ~t_sec:10 ~renewal:true
      ~fresh_precaps:[ cap 9 10L; cap 11 12L ] ()
  in
  Alcotest.(check bool) "renewal round-trips" true (shim_equal shim (roundtrip shim))

let demoted_flag_roundtrip () =
  let shim = Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:1 ~t_sec:1 ~renewal:false () in
  shim.Wire.Cap_shim.demoted <- true;
  Alcotest.(check bool) "demoted round-trips" true (shim_equal shim (roundtrip shim))

let return_info_roundtrip () =
  let shim = Wire.Cap_shim.request () in
  shim.Wire.Cap_shim.return_info <- Some Wire.Cap_shim.Demotion_notice;
  Alcotest.(check bool) "demotion notice" true (shim_equal shim (roundtrip shim));
  shim.Wire.Cap_shim.return_info <-
    Some (Wire.Cap_shim.Grant { n_kb = 32; t_sec = 10; caps = [ cap 7 8L ] });
  Alcotest.(check bool) "grant" true (shim_equal shim (roundtrip shim))

let wire_size_matches_encoding () =
  let shims =
    [
      Wire.Cap_shim.request ();
      Wire.Cap_shim.regular ~nonce:1L ~caps:[ cap 1 2L; cap 3 4L ] ~n_kb:32 ~t_sec:10
        ~renewal:false ();
      Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:false ();
    ]
  in
  List.iter
    (fun shim ->
      Alcotest.(check int) "wire_size = encoded length" (String.length (Wire.Cap_shim.encode shim))
        (Wire.Cap_shim.wire_size shim))
    shims

let nonce_only_is_small () =
  (* The common-case header must be small: 2 B common + 6 B nonce + 2 B
     counts + 2 B N/T = 12 bytes. *)
  let shim = Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:false () in
  Alcotest.(check int) "nonce-only size" 12 (Wire.Cap_shim.wire_size shim)

let per_router_capability_is_8_bytes () =
  let without = Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:false () in
  let with_two =
    Wire.Cap_shim.regular ~nonce:1L ~caps:[ cap 1 2L; cap 3 4L ] ~n_kb:32 ~t_sec:10
      ~renewal:false ()
  in
  Alcotest.(check int) "64 bits per router" 16
    (Wire.Cap_shim.wire_size with_two - Wire.Cap_shim.wire_size without)

let encode_rejects_out_of_range () =
  let shim = Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:1024 ~t_sec:10 ~renewal:false () in
  (match Wire.Cap_shim.encode shim with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "N=1024 accepted (10-bit field)");
  let shim = Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:10 ~t_sec:64 ~renewal:false () in
  (match Wire.Cap_shim.encode shim with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "T=64 accepted (6-bit field)");
  let shim = Wire.Cap_shim.regular ~nonce:(-1L) ~caps:[] ~n_kb:1 ~t_sec:1 ~renewal:false () in
  match Wire.Cap_shim.encode shim with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "49-bit nonce accepted"

let decode_rejects_garbage () =
  (match Wire.Cap_shim.decode "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty decoded");
  match Wire.Cap_shim.decode "\xff\xff\xff" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded"

let gen_cap =
  QCheck.Gen.(
    map2 (fun ts h -> cap ts h) (int_range 0 255)
      (map (fun i -> Int64.of_int (i land 0xFFFFFFFFFFFFF)) int))

let gen_shim =
  QCheck.Gen.(
    let* kind_choice = int_range 0 3 in
    let* demoted = bool in
    let* return_choice = int_range 0 2 in
    let* caps = list_size (int_range 0 4) gen_cap in
    let* path_ids = list_size (int_range 0 4) (int_range 0 65535) in
    let* nonce = map (fun i -> Int64.of_int (abs i land 0xFFFFFFFFFFF)) int in
    let* n_kb = int_range 0 1023 in
    let* t_sec = int_range 0 63 in
    let* fresh = list_size (int_range 0 3) gen_cap in
    let kind =
      match kind_choice with
      | 0 ->
          Wire.Cap_shim.Request
            { rev_path_ids = List.rev path_ids; rev_precaps = List.rev caps }
      | 1 ->
          Wire.Cap_shim.Regular
            {
              nonce;
              caps = Array.of_list caps;
              n_kb;
              t_sec;
              renewal = false;
              rev_fresh_precaps = [];
            }
      | 2 ->
          Wire.Cap_shim.Regular
            { nonce; caps = [||]; n_kb; t_sec; renewal = false; rev_fresh_precaps = [] }
      | _ ->
          Wire.Cap_shim.Regular
            {
              nonce;
              caps = Array.of_list caps;
              n_kb;
              t_sec;
              renewal = true;
              rev_fresh_precaps = List.rev fresh;
            }
    in
    let return_info =
      match return_choice with
      | 0 -> None
      | 1 -> Some Wire.Cap_shim.Demotion_notice
      | _ -> Some (Wire.Cap_shim.Grant { n_kb; t_sec; caps = fresh })
    in
    (* Request headers carry no capability ptr on the wire; only regular
       packets round-trip it. *)
    let* ptr =
      match kind with
      | Wire.Cap_shim.Request _ -> return 0
      | Wire.Cap_shim.Regular _ -> int_range 0 (max 0 (List.length caps))
    in
    return { Wire.Cap_shim.kind; demoted; return_info; ptr })

let codec_roundtrip_property =
  QCheck.Test.make ~name:"cap_shim: encode/decode round-trips" ~count:500
    (QCheck.make gen_shim) (fun shim ->
      match Wire.Cap_shim.decode (Wire.Cap_shim.encode shim) with
      | Ok decoded -> shim_equal shim decoded
      | Error _ -> false)

let codec_size_property =
  QCheck.Test.make ~name:"cap_shim: wire_size equals encoded length" ~count:500
    (QCheck.make gen_shim) (fun shim ->
      String.length (Wire.Cap_shim.encode shim) = Wire.Cap_shim.wire_size shim)

(* --- Packet sizes -------------------------------------------------------- *)

let packet_size_tcp () =
  let seg = { Wire.Tcp_segment.conn = 1; flags = Wire.Tcp_segment.Ack; seq = 0; ack = 0; payload = 1000 } in
  let p =
    Wire.Packet.make ~src:(Wire.Addr.of_int 1) ~dst:(Wire.Addr.of_int 2) ~created:0.
      (Wire.Packet.Tcp seg)
  in
  Alcotest.(check int) "40B header + payload" 1040 (Wire.Packet.size p)

let packet_size_includes_shim () =
  let p =
    Wire.Packet.make ~src:(Wire.Addr.of_int 1) ~dst:(Wire.Addr.of_int 2) ~created:0.
      (Wire.Packet.Raw 100)
  in
  let bare = Wire.Packet.size p in
  p.Wire.Packet.shim <-
    Some (Wire.Cap_shim.regular ~nonce:1L ~caps:[] ~n_kb:32 ~t_sec:10 ~renewal:false ());
  Alcotest.(check int) "shim adds its wire size" (bare + 12) (Wire.Packet.size p)

let packet_size_grows_with_precaps () =
  let p =
    Wire.Packet.make
      ~shim:(Wire.Cap_shim.request ())
      ~src:(Wire.Addr.of_int 1) ~dst:(Wire.Addr.of_int 2) ~created:0. (Wire.Packet.Raw 100)
  in
  let before = Wire.Packet.size p in
  (match p.Wire.Packet.shim with
  | Some shim ->
      shim.Wire.Cap_shim.kind <-
        Wire.Cap_shim.Request { rev_path_ids = [ 7 ]; rev_precaps = [ cap 1 2L ] }
  | None -> assert false);
  Alcotest.(check int) "10 more bytes (16-bit tag + 64-bit precap)" (before + 10) (Wire.Packet.size p)

let flow_keys () =
  let src = Wire.Addr.of_int 10 and dst = Wire.Addr.of_int 20 in
  let p = Wire.Packet.make ~src ~dst ~created:0. (Wire.Packet.Raw 1) in
  Alcotest.(check int) "flow key" (Wire.Packet.flow_key_of ~src ~dst) (Wire.Packet.flow_key p);
  Alcotest.(check int) "reverse" (Wire.Packet.flow_key_of ~src:dst ~dst:src)
    (Wire.Packet.reverse_flow_key p);
  Alcotest.(check bool) "direction matters" false
    (Wire.Packet.flow_key p = Wire.Packet.reverse_flow_key p)

let packet_ids_unique () =
  let mk () = Wire.Packet.make ~src:(Wire.Addr.of_int 1) ~dst:(Wire.Addr.of_int 2) ~created:0. (Wire.Packet.Raw 1) in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "distinct ids" true (a.Wire.Packet.id <> b.Wire.Packet.id)

(* --- Siff marking --------------------------------------------------------- *)

let siff_markings () =
  let m = Wire.Siff_marking.exp_packet () in
  Wire.Siff_marking.add_marking m ~router:1 ~bits:2;
  Wire.Siff_marking.add_marking m ~router:2 ~bits:3;
  Alcotest.(check (option int)) "router 1" (Some 2) (Wire.Siff_marking.marking_of m ~router:1);
  Alcotest.(check (option int)) "router 2" (Some 3) (Wire.Siff_marking.marking_of m ~router:2);
  Alcotest.(check (option int)) "unknown" None (Wire.Siff_marking.marking_of m ~router:9);
  Alcotest.(check int) "order preserved" 1 (fst (List.hd m.Wire.Siff_marking.markings))

let suite =
  [
    Alcotest.test_case "addr roundtrip" `Quick addr_roundtrip;
    Alcotest.test_case "addr range" `Quick addr_rejects_out_of_range;
    Alcotest.test_case "addr pp" `Quick addr_pp;
    Alcotest.test_case "bitbuf roundtrip" `Quick bitbuf_simple_roundtrip;
    Alcotest.test_case "bitbuf 64-bit" `Quick bitbuf_64bit;
    Alcotest.test_case "bitbuf overflow" `Quick bitbuf_rejects_overflow;
    Alcotest.test_case "bitbuf truncated" `Quick bitbuf_truncated_read;
    Alcotest.test_case "bitbuf padding" `Quick bitbuf_padding_is_zero;
    QCheck_alcotest.to_alcotest bitbuf_random_roundtrip;
    Alcotest.test_case "codec request" `Quick request_roundtrip;
    Alcotest.test_case "codec nonce-only" `Quick regular_nonce_only_roundtrip;
    Alcotest.test_case "codec caps" `Quick regular_with_caps_roundtrip;
    Alcotest.test_case "codec renewal" `Quick renewal_roundtrip;
    Alcotest.test_case "codec demoted" `Quick demoted_flag_roundtrip;
    Alcotest.test_case "codec return info" `Quick return_info_roundtrip;
    Alcotest.test_case "codec sizes" `Quick wire_size_matches_encoding;
    Alcotest.test_case "nonce-only is 12 B" `Quick nonce_only_is_small;
    Alcotest.test_case "64 bits per router" `Quick per_router_capability_is_8_bytes;
    Alcotest.test_case "codec range checks" `Quick encode_rejects_out_of_range;
    Alcotest.test_case "codec garbage" `Quick decode_rejects_garbage;
    QCheck_alcotest.to_alcotest codec_roundtrip_property;
    QCheck_alcotest.to_alcotest codec_size_property;
    Alcotest.test_case "packet tcp size" `Quick packet_size_tcp;
    Alcotest.test_case "packet shim size" `Quick packet_size_includes_shim;
    Alcotest.test_case "packet grows en route" `Quick packet_size_grows_with_precaps;
    Alcotest.test_case "flow keys" `Quick flow_keys;
    Alcotest.test_case "packet ids" `Quick packet_ids_unique;
    Alcotest.test_case "siff markings" `Quick siff_markings;
  ]
