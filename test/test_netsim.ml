(* The network layer: link timing (serialization + propagation), routing,
   tracing, forwarding edge cases, and the canned topologies. *)

let mk_net () =
  let sim = Sim.create () in
  let net = Net.create sim in
  (sim, net)

let plain_qdisc () = Droptail.create ~capacity_bytes:1_000_000 ()

let sink () =
  let received = ref [] in
  let handler _node ~in_link:_ p = received := p :: !received in
  (received, handler)

let mk_packet ~src ~dst ?(bytes = 1000) created =
  Wire.Packet.make ~src ~dst ~created (Wire.Packet.Raw bytes)

let a_addr = Wire.Addr.of_int 1
let b_addr = Wire.Addr.of_int 2

let link_delivers_with_correct_latency () =
  let sim, net = mk_net () in
  let received, handler = sink () in
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()) in
  let b = Net.add_node ~addr:b_addr ~name:"b" net handler in
  (* 1000-byte packet on 1 Mb/s with 10 ms propagation: 8 ms + 10 ms. *)
  ignore (Net.link_oneway net ~src:a ~dst:b ~bandwidth_bps:1e6 ~delay:0.010 ~qdisc:(plain_qdisc ()));
  Net.compute_routes net;
  let arrival = ref 0. in
  Net.set_handler b (fun _ ~in_link:_ _ -> arrival := Sim.now sim);
  Net.originate a (mk_packet ~src:a_addr ~dst:b_addr 0.);
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "8ms tx + 10ms prop" 0.018 !arrival;
  ignore received

let link_serializes_back_to_back () =
  let sim, net = mk_net () in
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()) in
  let b = Net.add_node ~addr:b_addr ~name:"b" net (fun _ ~in_link:_ _ -> ()) in
  ignore (Net.link_oneway net ~src:a ~dst:b ~bandwidth_bps:1e6 ~delay:0.010 ~qdisc:(plain_qdisc ()));
  Net.compute_routes net;
  let arrivals = ref [] in
  Net.set_handler b (fun _ ~in_link:_ _ -> arrivals := Sim.now sim :: !arrivals);
  Net.originate a (mk_packet ~src:a_addr ~dst:b_addr 0.);
  Net.originate a (mk_packet ~src:a_addr ~dst:b_addr 0.);
  Sim.run sim;
  match List.rev !arrivals with
  | [ t1; t2 ] ->
      Alcotest.(check (float 1e-9)) "first" 0.018 t1;
      (* The second serializes behind the first: one more 8 ms tx time. *)
      Alcotest.(check (float 1e-9)) "second" 0.026 t2
  | other -> Alcotest.failf "expected 2 arrivals, got %d" (List.length other)

let multi_hop_routing () =
  let sim, net = mk_net () in
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()) in
  let r = Net.add_node ~name:"r" net (fun node ~in_link:_ p -> Net.forward node p) in
  let got = ref false in
  let b = Net.add_node ~addr:b_addr ~name:"b" net (fun _ ~in_link:_ _ -> got := true) in
  ignore (Net.duplex net a r ~bandwidth_bps:1e6 ~delay:0.001 ~qdisc:plain_qdisc);
  ignore (Net.duplex net r b ~bandwidth_bps:1e6 ~delay:0.001 ~qdisc:plain_qdisc);
  Net.compute_routes net;
  Net.originate a (mk_packet ~src:a_addr ~dst:b_addr 0.);
  Sim.run sim;
  Alcotest.(check bool) "delivered over two hops" true !got

let shortest_path_chosen () =
  let sim, net = mk_net () in
  ignore sim;
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun node ~in_link:_ p -> Net.forward node p) in
  let r1 = Net.add_node ~name:"r1" net (fun node ~in_link:_ p -> Net.forward node p) in
  let r2 = Net.add_node ~name:"r2" net (fun node ~in_link:_ p -> Net.forward node p) in
  let b = Net.add_node ~addr:b_addr ~name:"b" net (fun _ ~in_link:_ _ -> ()) in
  (* Long path a-r1-r2-b and a direct short path a-b. *)
  ignore (Net.duplex net a r1 ~bandwidth_bps:1e6 ~delay:0.001 ~qdisc:plain_qdisc);
  ignore (Net.duplex net r1 r2 ~bandwidth_bps:1e6 ~delay:0.001 ~qdisc:plain_qdisc);
  ignore (Net.duplex net r2 b ~bandwidth_bps:1e6 ~delay:0.001 ~qdisc:plain_qdisc);
  let direct, _ = Net.duplex net a b ~bandwidth_bps:1e6 ~delay:0.001 ~qdisc:plain_qdisc in
  Net.compute_routes net;
  match Net.route_for a b_addr with
  | Some link -> Alcotest.(check int) "direct link" (Net.link_id direct) (Net.link_id link)
  | None -> Alcotest.fail "no route"

let hop_limit_drops_loops () =
  let sim, net = mk_net () in
  (* Two routers bouncing every packet back at each other: the hop budget
     must terminate the loop. *)
  let dropped = ref 0 in
  Net.set_trace net (Some (function Net.Hops_exceeded _ -> incr dropped | _ -> ()));
  let bounce node ~in_link p =
    (* Send back where it came from — the worst routing loop. *)
    match in_link with
    | Some l ->
        let back =
          List.find (fun out -> Net.node_id (Net.link_dst out) = Net.node_id (Net.link_src l))
            (Net.links_out_of node)
        in
        Net.forward_on node back p
    | None -> ()
  in
  let r1 = Net.add_node ~name:"r1" net bounce in
  let r2 = Net.add_node ~name:"r2" net bounce in
  let l12, _ = Net.duplex net r1 r2 ~bandwidth_bps:1e9 ~delay:0.0001 ~qdisc:plain_qdisc in
  Net.compute_routes net;
  let p = mk_packet ~src:(Wire.Addr.of_int 9) ~dst:b_addr 0. in
  Net.forward_on r1 l12 p;
  Sim.run sim;
  Alcotest.(check int) "loop terminated" 1 !dropped;
  Alcotest.(check int) "hops exhausted" 0 p.Wire.Packet.hops

let no_route_traced () =
  let sim, net = mk_net () in
  let traced = ref 0 in
  Net.set_trace net (Some (function Net.No_route _ -> incr traced | _ -> ()));
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()) in
  Net.compute_routes net;
  Net.originate a (mk_packet ~src:a_addr ~dst:b_addr 0.);
  Sim.run sim;
  Alcotest.(check int) "no-route event" 1 !traced

let queue_drop_traced () =
  let sim, net = mk_net () in
  let drops = ref 0 in
  Net.set_trace net (Some (function Net.Queue_drop _ -> incr drops | _ -> ()));
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()) in
  let b = Net.add_node ~addr:b_addr ~name:"b" net (fun _ ~in_link:_ _ -> ()) in
  ignore
    (Net.link_oneway net ~src:a ~dst:b ~bandwidth_bps:1e3 ~delay:0.01
       ~qdisc:(Droptail.create ~capacity_bytes:1500 ()));
  Net.compute_routes net;
  for _ = 1 to 5 do
    Net.originate a (mk_packet ~src:a_addr ~dst:b_addr 0.)
  done;
  Sim.run ~until:1. sim;
  Alcotest.(check bool) (Printf.sprintf "%d drops" !drops) true (!drops >= 3)

let limiter_blocks_packets () =
  let sim, net = mk_net () in
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()) in
  let got = ref 0 in
  let b = Net.add_node ~addr:b_addr ~name:"b" net (fun _ ~in_link:_ _ -> incr got) in
  let link = Net.link_oneway net ~src:a ~dst:b ~bandwidth_bps:1e6 ~delay:0.001 ~qdisc:(plain_qdisc ()) in
  Net.compute_routes net;
  Net.link_set_limiter link (Some (fun _ -> false));
  Net.originate a (mk_packet ~src:a_addr ~dst:b_addr 0.);
  Sim.run sim;
  Alcotest.(check int) "blocked" 0 !got;
  Net.link_set_limiter link None;
  Net.originate a (mk_packet ~src:a_addr ~dst:b_addr (Sim.now sim));
  Sim.run sim;
  Alcotest.(check int) "released" 1 !got

let duplicate_address_rejected () =
  let _, net = mk_net () in
  ignore (Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()));
  match Net.add_node ~addr:a_addr ~name:"dup" net (fun _ ~in_link:_ _ -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate accepted"

let bad_link_params_rejected () =
  let _, net = mk_net () in
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()) in
  let b = Net.add_node ~addr:b_addr ~name:"b" net (fun _ ~in_link:_ _ -> ()) in
  (match Net.link_oneway net ~src:a ~dst:b ~bandwidth_bps:0. ~delay:0.01 ~qdisc:(plain_qdisc ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero bandwidth accepted");
  match Net.link_oneway net ~src:a ~dst:b ~bandwidth_bps:1e6 ~delay:(-0.1) ~qdisc:(plain_qdisc ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay accepted"

let find_node_by_addr () =
  let _, net = mk_net () in
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()) in
  (match Net.find_node_by_addr net a_addr with
  | Some n -> Alcotest.(check bool) "found the node" true (n == a)
  | None -> Alcotest.fail "not found");
  Alcotest.(check bool) "absent" true (Net.find_node_by_addr net b_addr = None)

(* --- Topology builders ------------------------------------------------- *)

let dumbbell_shape () =
  let sim = Sim.create () in
  let topo =
    Topology.dumbbell ~n_attackers:3 ~with_colluder:true
      ~make_qdisc:(fun ~bandwidth_bps:_ -> plain_qdisc ())
      sim
  in
  Alcotest.(check int) "users" 10 (Array.length topo.Topology.users);
  Alcotest.(check int) "attackers" 3 (Array.length topo.Topology.attackers);
  Alcotest.(check bool) "colluder" true (topo.Topology.colluder <> None);
  (* Every user routes to the destination via the left router's bottleneck. *)
  Array.iter
    (fun u ->
      match Net.route_for u Topology.destination_addr with
      | Some _ -> ()
      | None -> Alcotest.fail "user lacks route")
    topo.Topology.users;
  match Net.route_for topo.Topology.left Topology.destination_addr with
  | Some link ->
      Alcotest.(check int) "left routes via bottleneck" (Net.link_id topo.Topology.bottleneck)
        (Net.link_id link)
  | None -> Alcotest.fail "left router lacks route"

let dumbbell_end_to_end_rtt () =
  (* One packet each way should take ~30 ms one-way at 3 hops x 10 ms plus
     transmission times: the paper's 60 ms RTT. *)
  let sim = Sim.create () in
  let topo =
    Topology.dumbbell ~n_attackers:0 ~make_qdisc:(fun ~bandwidth_bps:_ -> plain_qdisc ()) sim
  in
  List.iter (fun r -> Net.set_handler r (fun node ~in_link:_ p -> Net.forward node p))
    [ topo.Topology.left; topo.Topology.right ];
  let arrival = ref 0. in
  Net.set_handler topo.Topology.destination (fun _ ~in_link:_ _ -> arrival := Sim.now sim);
  Net.originate topo.Topology.users.(0)
    (mk_packet ~src:(Topology.user_addr 0) ~dst:Topology.destination_addr ~bytes:40 0.);
  Sim.run sim;
  Alcotest.(check bool)
    (Printf.sprintf "one-way %.4fs ≈ 30ms" !arrival)
    true
    (!arrival > 0.030 && !arrival < 0.032)

let chain_shape () =
  let sim = Sim.create () in
  let chain =
    Topology.chain ~hops:4 ~make_qdisc:(fun ~bandwidth_bps:_ -> plain_qdisc ()) sim
  in
  Alcotest.(check int) "routers" 4 (Array.length chain.Topology.chain_routers);
  match Net.route_for chain.Topology.chain_source Topology.chain_destination_addr with
  | Some _ -> ()
  | None -> Alcotest.fail "chain not routed"

(* Regression for the [Net.min_poll_delay] floor: a token-bucket-style
   qdisc that holds a packet and claims readiness *now* yet refuses every
   dequeue (its tokens perpetually round to just under one packet) must
   not spin the event loop at a fixed virtual instant.  With the floor,
   the transmitter re-polls every [min_poll_delay]; without it this test
   would hang at time 0. *)
let unservable_qdisc_does_not_spin () =
  let sim, net = mk_net () in
  let held = ref None in
  let stuck_bucket =
    Qdisc.make_custom ~name:"stuck-token-bucket"
      ~enqueue:(fun ~now:_ p ->
        held := Some p;
        true)
      ~dequeue:(fun ~now:_ -> Qdisc.none)
      ~next_ready:(fun ~now -> if !held = None then infinity else now)
      ~packet_count:(fun () -> if !held = None then 0 else 1)
      ~byte_count:(fun () ->
        match !held with None -> 0 | Some p -> Wire.Packet.size p)
      ()
  in
  let a = Net.add_node ~addr:a_addr ~name:"a" net (fun _ ~in_link:_ _ -> ()) in
  let b = Net.add_node ~addr:b_addr ~name:"b" net (fun _ ~in_link:_ _ -> ()) in
  ignore (Net.link_oneway net ~src:a ~dst:b ~bandwidth_bps:1e6 ~delay:0.001 ~qdisc:stuck_bucket);
  Net.compute_routes net;
  Net.originate a (mk_packet ~src:a_addr ~dst:b_addr 0.);
  let horizon = 1000. *. Net.min_poll_delay in
  Sim.run ~until:horizon sim;
  Alcotest.(check (float 1e-12)) "clock reached horizon" horizon (Sim.now sim);
  (* One poll per min_poll_delay tick plus bookkeeping — not an unbounded
     spin.  (A zero-delay re-poll would never let the clock advance.) *)
  Alcotest.(check bool)
    (Printf.sprintf "bounded polling (%d events)" (Sim.events_processed sim))
    true
    (Sim.events_processed sim <= 1100)

let suite =
  [
    Alcotest.test_case "link latency" `Quick link_delivers_with_correct_latency;
    Alcotest.test_case "unservable qdisc no spin" `Quick unservable_qdisc_does_not_spin;
    Alcotest.test_case "serialization" `Quick link_serializes_back_to_back;
    Alcotest.test_case "multi-hop" `Quick multi_hop_routing;
    Alcotest.test_case "shortest path" `Quick shortest_path_chosen;
    Alcotest.test_case "hop limit" `Quick hop_limit_drops_loops;
    Alcotest.test_case "no route" `Quick no_route_traced;
    Alcotest.test_case "queue drops traced" `Quick queue_drop_traced;
    Alcotest.test_case "limiter" `Quick limiter_blocks_packets;
    Alcotest.test_case "duplicate addr" `Quick duplicate_address_rejected;
    Alcotest.test_case "bad link params" `Quick bad_link_params_rejected;
    Alcotest.test_case "find by addr" `Quick find_node_by_addr;
    Alcotest.test_case "dumbbell shape" `Quick dumbbell_shape;
    Alcotest.test_case "dumbbell rtt" `Quick dumbbell_end_to_end_rtt;
    Alcotest.test_case "chain shape" `Quick chain_shape;
  ]
