(* tva_sim — command-line driver for every experiment in the paper's
   evaluation (Figs. 8-12, Table 1) plus the ablations called out in
   DESIGN.md.  All output is the same tabular shape as the paper's
   figures; --csv switches to machine-readable output. *)

open Cmdliner

let ints_conv = Arg.(list int)

let attackers_arg =
  let doc = "Comma-separated attacker counts to sweep." in
  Arg.(value & opt ints_conv Workload.Scenario.default_attacker_counts & info [ "attackers" ] ~doc)

let transfers_arg =
  let doc = "Transfers each legitimate user performs (paper: 1000)." in
  Arg.(value & opt int 50 & info [ "transfers" ] ~doc)

let max_time_arg =
  let doc = "Simulated-time cutoff per run, in seconds." in
  Arg.(value & opt float 120. & info [ "max-time" ] ~doc)

let seed_arg =
  let doc = "PRNG seed (runs are deterministic given the seed)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let csv_arg =
  let doc = "Emit CSV instead of an aligned table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for independent simulation runs (sweep cells, ablation variants).  \
     Defaults to all cores; 1 runs sequentially.  Output is bit-identical for any value."
  in
  Arg.(value & opt int (Pool.default_jobs ()) & info [ "j"; "jobs" ] ~doc ~docv:"N")

(* Both scheme lists come from the registry, so a scheme added to
   [Workload.Scenario.schemes] shows up on every CLI surface by itself.
   The figure sweeps default to the paper's four so their output stays
   pinned; everything else offers the full set. *)
let all_scheme_names = List.map fst Workload.Scenario.schemes
let paper_scheme_names = List.map fst Workload.Scenario.paper_schemes

let schemes_arg =
  let doc =
    Printf.sprintf "Comma-separated subset of schemes (%s)." (String.concat "," all_scheme_names)
  in
  Arg.(value & opt (list string) paper_scheme_names & info [ "schemes" ] ~doc)

let stats_arg =
  let doc = "Write an observability report (counters, per-link queue stats, flow caches) as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "stats" ] ~doc ~docv:"FILE")

let trace_arg =
  let doc = "Enable the packet-lifecycle trace ring and dump it as JSONL to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let trace_sample_arg =
  let doc = "Record 1 in $(docv) trace-eligible packet events." in
  Arg.(value & opt int 1 & info [ "trace-sample" ] ~doc ~docv:"K")

let telemetry_arg =
  let doc =
    "Record interval telemetry (counter deltas, queue depths, flow-cache occupancy) and run \
     the incident detectors.  Telemetry ticks ride auxiliary scheduler events, so results are \
     bit-identical to a run without this flag."
  in
  Arg.(value & flag & info [ "telemetry" ] ~doc)

let telemetry_interval_arg =
  let doc = "Sim-seconds between telemetry windows (default 0.1; implies $(b,--telemetry))." in
  Arg.(value & opt (some float) None & info [ "telemetry-interval" ] ~doc ~docv:"SECONDS")

(* The three flags collapse to one number: 0 = telemetry off. *)
let resolve_telemetry_interval ~telemetry ~interval ~flight_dir =
  match interval with
  | Some s ->
      if s <= 0. then failwith "--telemetry-interval must be positive";
      s
  | None -> if telemetry || flight_dir <> None then 0.1 else 0.

let flight_dir_arg =
  let doc =
    "Enable the flight recorder: on each incident onset (and any chaos invariant failure) \
     freeze the last telemetry windows, incidents and packet trace into a self-contained \
     $(i,flight_<label>_<n>.json) dump under $(docv).  Implies $(b,--telemetry)."
  in
  Arg.(value & opt (some string) None & info [ "flight-dir" ] ~doc ~docv:"DIR")

let base_config transfers max_time seed =
  { Workload.Experiment.default with Workload.Experiment.transfers_per_user = transfers; max_time; seed }

let select_schemes names =
  List.iter
    (fun n ->
      if not (List.mem n all_scheme_names) then
        failwith
          (Printf.sprintf "unknown scheme %s (known: %s)" n (String.concat "," all_scheme_names)))
    names;
  List.filter (fun (n, _) -> List.mem n names) Workload.Scenario.schemes

let print_table csv table =
  print_string (if csv then Stats.Table.to_csv table else Stats.Table.render table)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Sweep stats file: the counters merged across every grid cell, then each
   cell's full report keyed by its grid position. *)
let sweep_stats_json (o : Workload.Scenario.observed) =
  Obs.Export.to_string_pretty
    (Obs.Export.Obj
       [
         ("merged_counters", Obs.Report.counters_json o.Workload.Scenario.obs_counters);
         ( "cells",
           Obs.Export.List
             (List.map
                (fun (c : Workload.Scenario.cell_report) ->
                  Obs.Export.Obj
                    [
                      ("scheme", Obs.Export.String c.Workload.Scenario.cr_scheme);
                      ("attackers", Obs.Export.Int c.cr_attackers);
                      ("report", Obs.Report.to_json c.cr_report);
                    ])
                o.obs_cells) );
       ])

(* Sweep trace file: each cell's JSONL records, preceded by a cell-marker
   line (itself a JSON object, so the file stays line-delimited JSON). *)
let sweep_trace_jsonl (o : Workload.Scenario.observed) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (c : Workload.Scenario.cell_report) ->
      match c.cr_report.Obs.Report.trace_jsonl with
      | None -> ()
      | Some body ->
          Buffer.add_string buf
            (Printf.sprintf "{\"cell\": {\"scheme\": \"%s\", \"attackers\": %d}}\n"
               c.Workload.Scenario.cr_scheme c.cr_attackers);
          Buffer.add_string buf body)
    o.obs_cells;
  Buffer.contents buf

let sweep_obs_config ~trace ~trace_sample =
  {
    Workload.Experiment.obs_default with
    Workload.Experiment.obs_trace_capacity = (if trace = None then 0 else 65536);
    obs_trace_sample = trace_sample;
  }

let sweep_cmd name ~doc ~attack =
  let run attackers transfers max_time seed csv schemes jobs stats trace trace_sample =
    let base = base_config transfers max_time seed in
    let schemes = select_schemes schemes in
    match (stats, trace) with
    | None, None ->
        (* The unobserved path: nothing observability-related is installed,
           so figure output stays byte-identical to the pre-obs driver. *)
        let series =
          Workload.Scenario.flood_sweep ~jobs ~schemes ~attacker_counts:attackers ~base ~attack ()
        in
        print_table csv (Workload.Scenario.render series)
    | _ ->
        let obs = sweep_obs_config ~trace ~trace_sample in
        let observed =
          Workload.Scenario.flood_sweep_observed ~jobs ~obs ~schemes ~attacker_counts:attackers
            ~base ~attack ()
        in
        print_table csv (Workload.Scenario.render observed.Workload.Scenario.obs_series);
        Option.iter (fun path -> write_file path (sweep_stats_json observed)) stats;
        Option.iter (fun path -> write_file path (sweep_trace_jsonl observed)) trace
  in
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const run $ attackers_arg $ transfers_arg $ max_time_arg $ seed_arg $ csv_arg $ schemes_arg
      $ jobs_arg $ stats_arg $ trace_arg $ trace_sample_arg)

let fig8_cmd =
  sweep_cmd "fig8" ~doc:"Legacy traffic floods (paper Fig. 8)."
    ~attack:(fun ~rate_bps -> Workload.Experiment.Legacy_flood { rate_bps })

let fig9_cmd =
  sweep_cmd "fig9" ~doc:"Request packet floods (paper Fig. 9)."
    ~attack:(fun ~rate_bps -> Workload.Experiment.Request_flood { rate_bps })

let fig10_cmd =
  sweep_cmd "fig10" ~doc:"Authorized floods via a colluder (paper Fig. 10)."
    ~attack:(fun ~rate_bps -> Workload.Experiment.Authorized_flood { rate_bps })

let fig11_cmd =
  let doc = "Imprecise authorization policies (paper Fig. 11)." in
  let run duration seed csv jobs =
    let base = { Workload.Experiment.default with Workload.Experiment.seed = seed } in
    let runs = Workload.Scenario.fig11 ~jobs ~base ~duration () in
    print_table csv (Workload.Scenario.render_fig11 runs ~bins:5.)
  in
  let duration_arg =
    Arg.(value & opt float 60. & info [ "duration" ] ~doc:"Simulated seconds (attack at t=10).")
  in
  Cmd.v (Cmd.info "fig11" ~doc) Term.(const run $ duration_arg $ seed_arg $ csv_arg $ jobs_arg)

let table1_cmd =
  let doc = "Per-packet processing cost of each packet type (paper Table 1)." in
  let run iters csv =
    let fp = Forwarder.Fastpath.create () in
    let table = Stats.Table.create ~columns:[ "packet type"; "processing time (ns)" ] in
    List.iter
      (fun op ->
        let ns = Forwarder.Fastpath.calibrate ~iters fp op in
        Stats.Table.add_row table [ Forwarder.Fastpath.op_name op; Printf.sprintf "%.0f" ns ])
      Forwarder.Fastpath.all_ops;
    print_table csv table
  in
  let iters_arg = Arg.(value & opt int 20000 & info [ "iters" ] ~doc:"Iterations per type.") in
  Cmd.v (Cmd.info "table1" ~doc) Term.(const run $ iters_arg $ csv_arg)

let fig12_cmd =
  let doc = "Forwarding rate vs input rate (paper Fig. 12)." in
  let run lrp measured csv =
    let discipline = if lrp then Forwarder.Livelock.Lrp else Forwarder.Livelock.Naive in
    (* Per-type processing costs: the paper's Table 1 values by default
       (shape reproduction on the paper's hardware), or calibrated from
       this machine's fast path with --measured. *)
    let costs =
      if measured then begin
        let fp = Forwarder.Fastpath.create () in
        List.map
          (fun op -> (Forwarder.Fastpath.op_name op, Forwarder.Fastpath.calibrate fp op *. 1e-9))
          Forwarder.Fastpath.all_ops
      end
      else
        [
          ("legacy IP forward", 10e-9);
          ("request", 460e-9);
          ("regular w/ cached entry", 33e-9);
          ("regular w/o cached entry", 1486e-9);
          ("renewal w/ cached entry", 439e-9);
          ("renewal w/o cached entry", 1821e-9);
        ]
    in
    let inputs = List.init 21 (fun i -> float_of_int i *. 20_000.) in
    let table =
      Stats.Table.create ~columns:("input_kpps" :: List.map (fun (n, _) -> n) costs)
    in
    List.iter
      (fun input_pps ->
        let row =
          Printf.sprintf "%.0f" (input_pps /. 1e3)
          :: List.map
               (fun (_, processing_s) ->
                 Printf.sprintf "%.1f"
                   (Forwarder.Livelock.output_rate discipline
                      ~interrupt_s:Forwarder.Livelock.default_interrupt_s ~processing_s ~input_pps
                   /. 1e3))
               costs
        in
        Stats.Table.add_row table row)
      inputs;
    print_table csv table
  in
  let lrp_arg = Arg.(value & flag & info [ "lrp" ] ~doc:"Use lazy receiver processing.") in
  let measured_arg =
    Arg.(value & flag & info [ "measured" ] ~doc:"Calibrate costs on this machine instead of Table 1.")
  in
  Cmd.v (Cmd.info "fig12" ~doc) Term.(const run $ lrp_arg $ measured_arg $ csv_arg)

let scheme_arg =
  Arg.(
    value
    & opt string "tva"
    & info [ "scheme" ] ~doc:(String.concat " | " all_scheme_names))

let nattackers_arg = Arg.(value & opt int 10 & info [ "n" ] ~doc:"Number of attackers.")

let attack_arg =
  Arg.(
    value
    & opt string "legacy"
    & info [ "attack" ] ~doc:"none | legacy | request | authorized | imprecise")

let single_config scheme_name n attack transfers max_time seed =
  let scheme =
    match List.assoc_opt scheme_name Workload.Scenario.schemes with
    | Some s -> s
    | None -> failwith ("unknown scheme " ^ scheme_name)
  in
  let attack =
    match attack with
    | "none" -> Workload.Experiment.No_attack
    | "legacy" -> Workload.Experiment.Legacy_flood { rate_bps = 1e6 }
    | "request" -> Workload.Experiment.Request_flood { rate_bps = 1e6 }
    | "authorized" -> Workload.Experiment.Authorized_flood { rate_bps = 1e6 }
    | "imprecise" ->
        Workload.Experiment.Imprecise_flood
          { rate_bps = 1e6; groups = 1; group_interval = 3.; start_at = 10. }
    | other -> failwith ("unknown attack " ^ other)
  in
  {
    (base_config transfers max_time seed) with
    Workload.Experiment.scheme;
    n_attackers = n;
    attack;
  }

(* The experiment summary that heads a single-run stats file.  Metrics that
   never had data ("no transfers attempted", "none completed") export as
   JSON null, not a fake 1.0 or NaN. *)
let experiment_json (r : Workload.Experiment.result) ~attackers =
  Obs.Export.Obj
    [
      ("scheme", Obs.Export.String r.Workload.Experiment.scheme_name);
      ("attackers", Obs.Export.Int attackers);
      ( "fraction_completed",
        match Workload.Metrics.fraction_completed_opt r.Workload.Experiment.metrics with
        | None -> Obs.Export.Null
        | Some f -> Obs.Export.Float f );
      ("avg_transfer_time_s", Obs.Export.number_or_null r.Workload.Experiment.avg_transfer_time);
      ("attempted", Obs.Export.Int (Workload.Metrics.attempted r.Workload.Experiment.metrics));
      ("completed", Obs.Export.Int (Workload.Metrics.completed r.Workload.Experiment.metrics));
      ("aborted", Obs.Export.Int (Workload.Metrics.aborted r.Workload.Experiment.metrics));
      ("sim_end_s", Obs.Export.Float r.Workload.Experiment.sim_end);
    ]

let run_stats_json (r : Workload.Experiment.result) ~attackers report =
  Obs.Export.to_string_pretty
    (Obs.Export.Obj
       [
         ("experiment", experiment_json r ~attackers);
         ("report", Obs.Report.to_json report);
       ])

let run_cmd =
  let doc = "One custom experiment run." in
  let run scheme_name n attack transfers max_time seed stats trace trace_sample telemetry
      telemetry_interval flight_dir =
    let cfg = single_config scheme_name n attack transfers max_time seed in
    let ti =
      resolve_telemetry_interval ~telemetry ~interval:telemetry_interval ~flight_dir
    in
    let r =
      if stats = None && trace = None && ti = 0. then Workload.Experiment.run cfg
      else
        (* Counters, the net-event bridge, the wall-time profiler and (if
           asked) the trace ring and telemetry; no gauges, so the simulated
           outcome is identical to the unobserved run. *)
        let obs =
          {
            Workload.Experiment.obs_trace_capacity = (if trace = None then 0 else 65536);
            obs_trace_sample = trace_sample;
            obs_profile = true;
            obs_gauge_period = 0.;
            obs_telemetry_interval = ti;
            obs_flight_windows = 64;
            obs_flight_dir = flight_dir;
            obs_flight_label = "run";
          }
        in
        Workload.Experiment.run ~obs cfg
    in
    Printf.printf "scheme=%s attackers=%d fraction_completed=%.4f avg_transfer_time=%.4fs\n"
      r.Workload.Experiment.scheme_name n r.fraction_completed r.avg_transfer_time;
    Printf.printf "attempted=%d completed=%d aborted=%d sim_end=%.1fs\n"
      (Workload.Metrics.attempted r.metrics)
      (Workload.Metrics.completed r.metrics)
      (Workload.Metrics.aborted r.metrics)
      r.sim_end;
    (match r.Workload.Experiment.flight with
    | Some f ->
        List.iter (fun p -> Printf.printf "flight-dump %s\n" p) (Obs.Flight.dumps f)
    | None -> ());
    match r.Workload.Experiment.obs with
    | None -> ()
    | Some report ->
        if ti > 0. then Format.printf "@.%a" Obs.Report.pp_series report;
        if ti > 0. then Format.printf "%a" Obs.Report.pp_incidents report.Obs.Report.incidents;
        Option.iter (fun path -> write_file path (run_stats_json r ~attackers:n report)) stats;
        Option.iter
          (fun path ->
            write_file path (Option.value ~default:"" report.Obs.Report.trace_jsonl))
          trace
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ scheme_arg $ nattackers_arg $ attack_arg $ transfers_arg $ max_time_arg
      $ seed_arg $ stats_arg $ trace_arg $ trace_sample_arg $ telemetry_arg
      $ telemetry_interval_arg $ flight_dir_arg)

let dashboard_cmd =
  let doc =
    "Run one experiment with full observability (counters, profiler, queue-depth gauges) and \
     render a text dashboard."
  in
  let gauge_period_arg =
    Arg.(
      value
      & opt float 0.25
      & info [ "gauge-period" ]
          ~doc:
            "Sim-seconds between bottleneck queue-depth samples; 0 disables the gauge (gauge \
             sampling consumes scheduler sequence numbers, so it can perturb event tie-breaks)."
          ~docv:"SECONDS")
  in
  let series_arg =
    let doc =
      "Add interval-telemetry series (and incident detection) to the dashboard: per-channel \
       stats plus a sparkline per channel."
    in
    Arg.(value & flag & info [ "series" ] ~doc)
  in
  let run scheme_name n attack transfers max_time seed gauge_period stats series
      telemetry_interval =
    let cfg = single_config scheme_name n attack transfers max_time seed in
    let ti =
      resolve_telemetry_interval ~telemetry:series ~interval:telemetry_interval ~flight_dir:None
    in
    let obs =
      {
        Workload.Experiment.obs_trace_capacity = 0;
        obs_trace_sample = 1;
        obs_profile = true;
        obs_gauge_period = gauge_period;
        obs_telemetry_interval = ti;
        obs_flight_windows = 64;
        obs_flight_dir = None;
        obs_flight_label = "dashboard";
      }
    in
    let r = Workload.Experiment.run ~obs cfg in
    Printf.printf "scheme=%s attackers=%d fraction_completed=%.4f avg_transfer_time=%.4fs\n\n"
      r.Workload.Experiment.scheme_name n r.fraction_completed r.avg_transfer_time;
    (match r.Workload.Experiment.obs with
    | None -> ()
    | Some report ->
        Format.printf "%a@." Obs.Report.pp_dashboard report;
        Option.iter (fun path -> write_file path (run_stats_json r ~attackers:n report)) stats)
  in
  Cmd.v (Cmd.info "dashboard" ~doc)
    Term.(
      const run $ scheme_arg $ nattackers_arg $ attack_arg $ transfers_arg $ max_time_arg
      $ seed_arg $ gauge_period_arg $ stats_arg $ series_arg $ telemetry_interval_arg)

(* --- chaos: fault injection + recovery checking ---------------------- *)

let chaos_stats_json outcomes =
  Obs.Export.to_string_pretty
    (Obs.Export.List
       (List.map
          (fun (o : Workload.Chaos.outcome) ->
            Obs.Export.Obj
              [
                ("scenario", Obs.Export.String o.Workload.Chaos.oc_label);
                ("spec", Obs.Export.String o.oc_spec);
                ("fraction_completed", Obs.Export.number_or_null o.oc_fraction);
                ("avg_transfer_time_s", Obs.Export.number_or_null o.oc_avg_time);
                ( "injected",
                  Obs.Export.Obj
                    (List.map (fun (clause, n) -> (clause, Obs.Export.Int n)) o.oc_injected) );
                ( "reacquire_latencies_s",
                  Obs.Export.List (List.map (fun l -> Obs.Export.Float l) o.oc_latencies) );
                ( "engage_s",
                  match o.oc_engage_s with
                  | None -> Obs.Export.Null
                  | Some v -> Obs.Export.Float v );
                ( "recover_s",
                  match o.oc_recover_s with
                  | None -> Obs.Export.Null
                  | Some v -> Obs.Export.Float v );
                ("recovered", Obs.Export.Bool o.oc_recovered);
                ( "flight_dumps",
                  Obs.Export.List
                    (List.map (fun p -> Obs.Export.String p) o.oc_flight_dumps) );
                ( "verdict",
                  Obs.Export.Obj
                    [
                      ("ok", Obs.Export.Bool o.oc_verdict.Faults.Invariants.ok);
                      ( "checks",
                        Obs.Export.List
                          (List.map
                             (fun (c : Faults.Invariants.check) ->
                               Obs.Export.Obj
                                 [
                                   ("name", Obs.Export.String c.Faults.Invariants.ck_name);
                                   ("ok", Obs.Export.Bool c.ck_ok);
                                   ("detail", Obs.Export.String c.ck_detail);
                                 ])
                             o.oc_verdict.Faults.Invariants.checks) );
                    ] );
                ("report", Obs.Report.to_json o.oc_report);
              ])
          outcomes))

let chaos_cmd =
  let doc =
    "Fault-injection runs with recovery checking (paper Sec. 3.8).  Without $(b,--faults), \
     the stock eight-scenario suite; with it, one run under the given spec.  Exits non-zero \
     if any recovery invariant fails."
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ]
          ~doc:
            "Fault spec: semicolon-separated $(i,kind:target\\[:k=v,...\\]) clauses, e.g. \
             'loss:bottleneck:p=0.01;wipe:all:at=10'.  Kinds: loss, burst, corrupt, dup, \
             reorder, down, flap (link targets: bottleneck, rbottleneck, access, all); wipe, \
             rotate, restart (router targets: left, right, all)."
          ~docv:"SPEC")
  in
  (* Unlike [run], chaos defaults to a clean workload — no attackers — so
     every degradation in the table is the injected fault's doing. *)
  let chaos_nattackers_arg =
    Arg.(value & opt int 0 & info [ "n" ] ~doc:"Number of attackers (default 0).")
  in
  let chaos_attack_arg =
    Arg.(
      value
      & opt string "none"
      & info [ "attack" ] ~doc:"none | legacy | request | authorized | imprecise")
  in
  let run faults scheme_name n attack transfers max_time seed csv jobs stats flight_dir =
    let base = single_config scheme_name n attack transfers max_time seed in
    let outcomes =
      match faults with
      | None -> Workload.Scenario.chaos_suite ~jobs ?flight_dir ~base ()
      | Some spec_str -> (
          match Faults.Spec.parse spec_str with
          | Error e ->
              prerr_endline ("tva_sim chaos: bad --faults spec: " ^ e);
              exit 2
          | Ok spec -> [ Workload.Scenario.chaos_single ?flight_dir ~base spec ])
    in
    print_table csv (Workload.Chaos.render outcomes);
    List.iter
      (fun (o : Workload.Chaos.outcome) ->
        Format.printf "@.%s (%s)@.%a" o.Workload.Chaos.oc_label o.oc_spec
          Faults.Invariants.pp_verdict o.oc_verdict;
        List.iter (fun p -> Printf.printf "flight-dump %s\n" p) o.oc_flight_dumps)
      outcomes;
    Option.iter (fun path -> write_file path (chaos_stats_json outcomes)) stats;
    if not (Workload.Chaos.all_ok outcomes) then exit 1
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ faults_arg $ scheme_arg $ chaos_nattackers_arg $ chaos_attack_arg
      $ transfers_arg $ max_time_arg $ seed_arg $ csv_arg $ jobs_arg $ stats_arg
      $ flight_dir_arg)

let ablation_cmd name ~doc ~run_comparison =
  let run transfers max_time seed csv jobs =
    print_table csv
      (Workload.Ablation.render (run_comparison ~jobs ~transfers ~max_time ~seed ()))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run $ transfers_arg $ max_time_arg $ seed_arg $ csv_arg $ jobs_arg)

let ablation_queueing_cmd =
  ablation_cmd "ablation-queueing"
    ~doc:
      "Per-source vs per-destination fair queueing under spoofed authorized traffic (paper \
       Sec. 7).  Reported metrics are for the spoofed victim."
    ~run_comparison:(fun ~jobs ~transfers ~max_time ~seed () ->
      Workload.Ablation.queueing_discipline ~jobs ~transfers ~max_time ~seed ())

let ablation_state_cmd =
  ablation_cmd "ablation-state"
    ~doc:
      "Flow-cache provisioning (paper Sec. 3.6): the C/(N/T)min sizing rule vs an \
       under-provisioned cache, under 100 cheap authorized flows plus a legacy flood."
    ~run_comparison:(fun ~jobs ~transfers ~max_time ~seed () ->
      Workload.Ablation.state_provisioning ~jobs ~transfers ~max_time ~seed ())

let ablation_sfq_cmd =
  ablation_cmd "ablation-sfq"
    ~doc:
      "Request queueing discipline (paper Sec. 3.9): bounded per-path-id queues vs stochastic \
       fair queueing under a request flood."
    ~run_comparison:(fun ~jobs ~transfers ~max_time ~seed () ->
      Workload.Ablation.request_queueing ~jobs ~transfers ~max_time ~seed ())


(* --- scale ------------------------------------------------------------- *)

let scale_cmd =
  let doc = "Aggregate-attacker scale run: swarms of spoofed flood members on generated topologies." in
  let run scheme_name topology senders aggregates mode sched batch_window attack_mbps users
      transfers max_time seed par_domains stats telemetry telemetry_interval =
    let scheme =
      match List.assoc_opt scheme_name Workload.Scenario.schemes with
      | Some s -> s
      | None -> failwith ("unknown scheme " ^ scheme_name)
    in
    let topology =
      match Workload.Scale.topology_kind_of_string topology with
      | Ok t -> t
      | Error e -> failwith e
    in
    let mode =
      match Workload.Swarm.mode_of_string mode with Ok m -> m | Error e -> failwith e
    in
    let sched =
      match sched with
      | "auto" -> None
      | s -> (
          match Sim.sched_of_string s with
          | Ok s -> Some s
          | Error e -> failwith e)
    in
    let cfg =
      {
        Workload.Scale.default with
        Workload.Scale.sc_scheme = scheme;
        sc_topology = topology;
        sc_senders = senders;
        sc_aggregates = aggregates;
        sc_swarm_mode = mode;
        sc_batch_window = batch_window;
        sc_attack_bps = attack_mbps *. 1e6;
        sc_n_users = users;
        sc_transfers_per_user = transfers;
        sc_max_time = max_time;
        sc_seed = seed;
        sc_sched = sched;
        sc_par_domains = par_domains;
      }
    in
    let ti =
      resolve_telemetry_interval ~telemetry ~interval:telemetry_interval ~flight_dir:None
    in
    let obs =
      if stats = None && ti = 0. then None
      else
        Some
          {
            Workload.Experiment.obs_default with
            Workload.Experiment.obs_profile = stats <> None;
            obs_gauge_period = (if stats = None then 0. else 0.1);
            obs_telemetry_interval = ti;
          }
    in
    let t0 = Unix.gettimeofday () in
    let r = Workload.Scale.run ?obs cfg in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf
      "scheme=%s topology=%s senders=%d sched=%s fraction_completed=%.4f \
       avg_transfer_time=%.4fs\n"
      r.Workload.Scale.sr_scheme r.sr_topology r.sr_senders
      (Sim.sched_to_string r.sr_sched)
      r.sr_fraction_completed r.sr_avg_transfer_time;
    Printf.printf "events=%d attack_packets=%d routers=%d sim_end=%.2fs wall=%.2fs (%.0f ev/s)\n"
      r.sr_events r.sr_attack_packets r.sr_routers r.sr_sim_end wall
      (float_of_int r.sr_events /. wall);
    if r.sr_partitions > 1 then
      Printf.printf "partitions=%d events/partition=[%s] loop_wall=%.2fs (%.0f ev/s in-loop)\n"
        r.sr_partitions
        (String.concat "; " (Array.to_list (Array.map string_of_int r.sr_partition_events)))
        r.sr_wall_s
        (float_of_int r.sr_events /. r.sr_wall_s);
    (match r.Workload.Scale.sr_obs with
    | Some report when ti > 0. -> Format.printf "@.%a" Obs.Report.pp_series report
    | Some _ | None -> ());
    match (stats, r.Workload.Scale.sr_obs) with
    | Some path, Some report ->
        let json =
          Obs.Export.to_string_pretty
            (Obs.Export.Obj
               [
                 ( "scale",
                   Obs.Export.Obj
                     [
                       ("scheme", Obs.Export.String r.Workload.Scale.sr_scheme);
                       ("topology", Obs.Export.String r.sr_topology);
                       ("senders", Obs.Export.Int r.sr_senders);
                       ("sched", Obs.Export.String (Sim.sched_to_string r.sr_sched));
                       ( "fraction_completed",
                         Obs.Export.number_or_null r.sr_fraction_completed );
                       ("events", Obs.Export.Int r.sr_events);
                       ("attack_packets", Obs.Export.Int r.sr_attack_packets);
                       ("wall_s", Obs.Export.Float wall);
                       ("loop_wall_s", Obs.Export.Float r.sr_wall_s);
                       ( "events_per_s",
                         Obs.Export.number_or_null (float_of_int r.sr_events /. r.sr_wall_s) );
                       ("partitions", Obs.Export.Int r.sr_partitions);
                       ( "partition_events",
                         Obs.Export.List
                           (Array.to_list
                              (Array.map (fun e -> Obs.Export.Int e) r.sr_partition_events)) );
                     ] );
                 ("report", Obs.Report.to_json report);
               ])
        in
        write_file path json
    | _ -> ()
  in
  let topology_arg =
    Arg.(
      value
      & opt string "fanin"
      & info [ "topology" ]
          ~doc:"dumbbell | fanin[:depth:fanout] | parking-lot[:segments] | power-law[:n:m]")
  in
  let senders_arg =
    Arg.(value & opt int 10_000 & info [ "senders" ] ~doc:"Total flood members.")
  in
  let aggregates_arg =
    Arg.(value & opt int 8 & info [ "aggregates" ] ~doc:"Swarm objects the members fold into.")
  in
  let mode_arg =
    Arg.(
      value
      & opt string "coalesced"
      & info [ "mode" ] ~doc:"coalesced (one event per swarm) | independent (one timer per member)")
  in
  let sched_arg =
    Arg.(value & opt string "auto" & info [ "sched" ] ~doc:"auto | heap | wheel")
  in
  let batch_window_arg =
    Arg.(
      value
      & opt float 0.
      & info [ "batch-window" ] ~doc:"Coalesce members due within this many seconds (0 = exact).")
  in
  let attack_mbps_arg =
    Arg.(value & opt float 40. & info [ "attack-mbps" ] ~doc:"Aggregate attack rate, Mb/s.")
  in
  let users_arg = Arg.(value & opt int 10 & info [ "users" ] ~doc:"Legitimate users.") in
  let par_domains_arg =
    Arg.(
      value
      & opt int 1
      & info [ "par-domains" ]
          ~doc:
            "Partition the topology and run K event loops on K domains (conservative PDES); 1 = \
             the classic sequential loop. Result-identical to sequential by construction.")
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const run $ scheme_arg $ topology_arg $ senders_arg $ aggregates_arg $ mode_arg $ sched_arg
      $ batch_window_arg $ attack_mbps_arg $ users_arg $ transfers_arg $ max_time_arg $ seed_arg
      $ par_domains_arg $ stats_arg $ telemetry_arg $ telemetry_interval_arg)

let report_cmd =
  let doc =
    "Unified cross-scheme fairness report: the fig8-style legacy-flood sweep over all \
     registered schemes, scored by completion fraction, median transfer time, and the Jain \
     fairness index.  Writes results/REPORT.md and BENCH_report.json."
  in
  let report_attackers_arg =
    let doc = "Comma-separated attacker counts for the report sweep." in
    Arg.(value & opt ints_conv Workload.Report.default_attacker_counts & info [ "attackers" ] ~doc)
  in
  let report_schemes_arg =
    let doc =
      Printf.sprintf "Comma-separated subset of schemes (default: all of %s)."
        (String.concat "," all_scheme_names)
    in
    Arg.(value & opt (list string) all_scheme_names & info [ "schemes" ] ~doc)
  in
  let out_arg =
    let doc = "Markdown report output path." in
    Arg.(value & opt string "results/REPORT.md" & info [ "o"; "out" ] ~doc ~docv:"FILE")
  in
  let json_arg =
    let doc = "JSON report output path (the file readme_check pins the README table to)." in
    Arg.(value & opt string "BENCH_report.json" & info [ "json" ] ~doc ~docv:"FILE")
  in
  let run attackers transfers max_time seed schemes jobs out json_out =
    let base = base_config transfers max_time seed in
    let schemes = select_schemes schemes in
    let report = Workload.Report.run ~jobs ~schemes ~attacker_counts:attackers ~base () in
    write_file out (Workload.Report.to_markdown report);
    write_file json_out (Workload.Report.to_json report);
    List.iter print_endline (Workload.Report.headline_rows report);
    Printf.printf "wrote %s and %s\n" out json_out
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ report_attackers_arg $ transfers_arg $ max_time_arg $ seed_arg
      $ report_schemes_arg $ jobs_arg $ out_arg $ json_arg)

let default_info =
  Cmd.info "tva_sim" ~version:"1.0.0"
    ~doc:"Reproduce the evaluation of 'A DoS-limiting Network Architecture' (SIGCOMM 2005)."

let () =
  exit
    (Cmd.eval
       (Cmd.group default_info
          [
            fig8_cmd;
            fig9_cmd;
            fig10_cmd;
            fig11_cmd;
            table1_cmd;
            fig12_cmd;
            report_cmd;
            run_cmd;
            scale_cmd;
            chaos_cmd;
            dashboard_cmd;
            ablation_queueing_cmd;
            ablation_state_cmd;
            ablation_sfq_cmd;
          ]))
