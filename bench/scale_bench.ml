(* Million-sender scale benchmark (DESIGN.md section 13).

   A fig8-style sweep over botnet size on the fan-in topology: legitimate
   users run real transfers while the attack is folded into [Swarm]
   aggregates in Independent mode — one simulator timer per member, the
   regime the timing wheel exists for.  The aggregate attack rate is held
   constant across the sweep so event volume tracks traffic while pending
   state tracks senders.

   Per sender count the sweep runs a heap leg and a wheel leg and requires
   them to agree exactly (events, packets, completion, end time) — the
   scheduler differential at whole-simulation granularity.  At the largest
   count a coalesced leg rides along to show the aggregate model's pending
   set collapse, plus a profiled run for Obs.Profile attribution.

   At the largest count the conservative-PDES legs ride along: an obs-free
   sequential leg and an obs-free K-domain leg ([--par-domains], wheel
   sched both).  They must be result-identical — the whole-simulation
   determinism gate for the partitioned driver — and the K-domain leg's
   in-loop events/s must reach [--par-speedup-min] x the sequential leg's.
   The speedup gate is enforced only when the host exposes more than one
   core ([Domain.recommended_domain_count]); on a single-core host the
   ratio is recorded with [par_speedup_enforced = false] so CI's
   multi-core runners remain the arbiter.

   Gates (exit 1):
     - every leg completes its run;
     - heap and wheel legs are result-identical at every sweep point;
     - sequential and K-domain legs are result-identical at the largest
       count (unconditional, any core count);
     - wheel events/s >= heap events/s at the largest count (best of
       [--reps]);
     - wheel peak live-heap <= [--mem-ratio] x heap peak live-heap at the
       largest count (the tick-node freelist gate);
     - K-domain in-loop events/s >= [--par-speedup-min] x sequential
       (multi-core hosts only);
     - wall clock and peak live-heap at the largest count stay inside
       [--wall-budget-s] / [--mem-budget-mb].

   Run with:            dune exec bench/scale_bench.exe
   Smoke mode (CI):     dune exec bench/scale_bench.exe -- --smoke *)

let senders_list = ref [ 1_000; 10_000; 100_000 ]
let reps = ref 3
let transfers = ref 50
let max_sim = ref 30.
let wall_budget_s = ref 30.
let mem_budget_mb = ref 512.
let mem_ratio = ref 1.15
let par_domains = ref 4
let par_speedup_min = ref 1.5
let out_path = ref "BENCH_scale.json"
let smoke = ref false

let spec =
  [
    ( "--senders",
      Arg.String
        (fun s -> senders_list := List.map int_of_string (String.split_on_char ',' s)),
      "N,N,..  sweep points (default 1000,10000,100000)" );
    ("--reps", Arg.Set_int reps, "K  timing repetitions at the largest count (default 3)");
    ("--transfers", Arg.Set_int transfers, "K  transfers per user (default 50)");
    ("--max-sim", Arg.Set_float max_sim, "S  simulated-seconds cap per leg (default 30)");
    ( "--wall-budget-s",
      Arg.Set_float wall_budget_s,
      "S  max wall seconds for the wheel leg at the largest count (default 30)" );
    ( "--mem-budget-mb",
      Arg.Set_float mem_budget_mb,
      "M  max peak live-heap MB at the largest count (default 512)" );
    ( "--mem-ratio",
      Arg.Set_float mem_ratio,
      "R  max wheel/heap peak live-heap ratio at the largest count (default 1.15)" );
    ( "--par-domains",
      Arg.Set_int par_domains,
      "K  domains for the parallel legs at the largest count; 0 disables (default 4)" );
    ( "--par-speedup-min",
      Arg.Set_float par_speedup_min,
      "X  min K-domain/sequential events/s ratio, enforced on multi-core hosts (default 1.5)" );
    ("--out", Arg.Set_string out_path, "FILE  JSON output (default BENCH_scale.json)");
    ("--smoke", Arg.Set smoke, "  reduced sweep (500,5000) with relaxed budgets, for CI");
  ]

let () = Arg.parse spec (fun _ -> ()) "scale_bench [options]"

let () =
  if !smoke then begin
    senders_list := [ 500; 5_000 ];
    reps := 2;
    transfers := 10
  end

type leg = {
  l_senders : int;
  l_sched : string; (* "heap" | "wheel" | "coalesced" | "seq" | "par-kN" *)
  l_partitions : int;
  l_wall_s : float; (* best over reps *)
  l_events : int;
  l_attack_packets : int;
  l_fraction : float;
  l_sim_end : float;
  l_peak_heap_mb : float;
  l_peak_pending : float;
}

let failed = ref false

let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "FATAL: %s\n" s; failed := true) fmt

let gauge_max report name =
  match report with
  | None -> 0.
  | Some r -> (
      match List.find_opt (fun g -> g.Obs.Report.g_name = name) r.Obs.Report.gauges with
      | Some g -> g.Obs.Report.g_max
      | None -> 0.)

let config ~senders ~mode ~sched =
  {
    Workload.Scale.default with
    Workload.Scale.sc_senders = senders;
    sc_aggregates = 16;
    sc_swarm_mode = mode;
    sc_transfers_per_user = !transfers;
    sc_max_time = !max_sim;
    sc_sched = sched;
  }

let obs =
  {
    Workload.Experiment.obs_default with
    Workload.Experiment.obs_gauge_period = 0.1 (* memory gauges only; no probe *);
  }

(* Best wall over [reps] runs; results must be identical across reps (same
   seed, same code path), so everything but the clock comes from the last.

   [par] > 1 runs the partitioned driver.  [with_obs:false] drops gauges so
   the sequential/parallel pair compares pure event-loop work ([loop_wall]
   then times just [Net.run_parallel], excluding topology build). *)
let run_leg ?(par = 1) ?(with_obs = true) ?(loop_wall = false) ~senders ~mode ~sched ~label
    ~reps () =
  let best = ref infinity and result = ref None in
  let cfg =
    { (config ~senders ~mode ~sched) with Workload.Scale.sc_par_domains = par }
  in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = if with_obs then Workload.Scale.run ~obs cfg else Workload.Scale.run cfg in
    let wall =
      if loop_wall then r.Workload.Scale.sr_wall_s else Unix.gettimeofday () -. t0
    in
    if wall < !best then best := wall;
    result := Some r
  done;
  let r = match !result with Some r -> r | None -> assert false in
  if r.Workload.Scale.sr_attack_packets = 0 then
    fail "%s @ %d senders: no attack packets emitted" label senders;
  if r.Workload.Scale.sr_sim_end <= 0. then fail "%s @ %d senders: empty run" label senders;
  {
    l_senders = senders;
    l_sched = label;
    l_partitions = r.sr_partitions;
    l_wall_s = !best;
    l_events = r.Workload.Scale.sr_events;
    l_attack_packets = r.sr_attack_packets;
    l_fraction = r.sr_fraction_completed;
    l_sim_end = r.sr_sim_end;
    l_peak_heap_mb = gauge_max r.sr_obs "live-heap-words" *. 8. /. 1e6;
    l_peak_pending = gauge_max r.sr_obs "sim-pending-events";
  }

let events_per_s l = float_of_int l.l_events /. l.l_wall_s

let check_identical a b =
  if
    a.l_events <> b.l_events
    || a.l_attack_packets <> b.l_attack_packets
    || a.l_fraction <> b.l_fraction
    || a.l_sim_end <> b.l_sim_end
  then
    fail "%s and %s legs diverge at %d senders (events %d vs %d, packets %d vs %d)" a.l_sched
      b.l_sched a.l_senders a.l_events b.l_events a.l_attack_packets b.l_attack_packets

let () =
  let counts = List.sort compare !senders_list in
  let largest = List.fold_left max 0 counts in
  let legs =
    List.concat_map
      (fun senders ->
        let reps = if senders = largest then !reps else 1 in
        let heap =
          run_leg ~senders ~mode:Workload.Swarm.Independent ~sched:(Some Sim.Heap) ~label:"heap"
            ~reps ()
        in
        let wheel =
          run_leg ~senders ~mode:Workload.Swarm.Independent ~sched:(Some Sim.Wheel)
            ~label:"wheel" ~reps ()
        in
        check_identical heap wheel;
        Printf.printf
          "%8d senders: heap %7.0f ev/s (%.2fs)  wheel %7.0f ev/s (%.2fs)  peak-heap %.0f MB  \
           pending %.0f\n\
           %!"
          senders (events_per_s heap) heap.l_wall_s (events_per_s wheel) wheel.l_wall_s
          wheel.l_peak_heap_mb wheel.l_peak_pending;
        if senders = largest then begin
          (* The aggregate model at the same point: identical sim results
             with a pending set that no longer scales with the botnet. *)
          let coalesced =
            run_leg ~senders ~mode:Workload.Swarm.Coalesced ~sched:None ~label:"coalesced"
              ~reps:1 ()
          in
          check_identical wheel coalesced;
          Printf.printf
          "%8d senders: coalesced %7.0f ev/s (%.2fs)  peak-heap %.0f MB  pending %.0f\n%!"
            senders (events_per_s coalesced) coalesced.l_wall_s coalesced.l_peak_heap_mb
            coalesced.l_peak_pending;
          (* Conservative-PDES legs: obs-free so the pair compares pure
             event-loop work, in-loop wall so topology build is excluded.
             Identity between them is the whole-simulation determinism
             gate for the partitioned driver. *)
          let par_legs =
            if !par_domains > 1 then begin
              let seq =
                run_leg ~with_obs:false ~loop_wall:true ~senders
                  ~mode:Workload.Swarm.Independent ~sched:(Some Sim.Wheel) ~label:"seq" ~reps
                  ()
              in
              let par =
                run_leg ~par:!par_domains ~with_obs:false ~loop_wall:true ~senders
                  ~mode:Workload.Swarm.Independent ~sched:(Some Sim.Wheel)
                  ~label:(Printf.sprintf "par-k%d" !par_domains)
                  ~reps ()
              in
              check_identical seq par;
              Printf.printf
                "%8d senders: seq %7.0f ev/s (%.2fs)  %s %7.0f ev/s (%.2fs)  speedup %.2fx\n%!"
                senders (events_per_s seq) seq.l_wall_s par.l_sched (events_per_s par)
                par.l_wall_s
                (events_per_s par /. events_per_s seq);
              [ seq; par ]
            end
            else []
          in
          [ heap; wheel; coalesced ] @ par_legs
        end
        else [ heap; wheel ])
      counts
  in
  (* Gates at the largest sweep point. *)
  let at_largest label =
    List.find (fun l -> l.l_senders = largest && l.l_sched = label) legs
  in
  let heap_l = at_largest "heap" and wheel_l = at_largest "wheel" in
  let wheel_beats_heap = events_per_s wheel_l >= events_per_s heap_l in
  if not wheel_beats_heap then
    fail "wheel %.0f ev/s < heap %.0f ev/s at %d senders" (events_per_s wheel_l)
      (events_per_s heap_l) largest;
  let wall_ok = wheel_l.l_wall_s <= !wall_budget_s in
  if not wall_ok then
    fail "wheel leg took %.1fs wall at %d senders (budget %g)" wheel_l.l_wall_s largest
      !wall_budget_s;
  let mem_ok = wheel_l.l_peak_heap_mb <= !mem_budget_mb in
  if not mem_ok then
    fail "peak live-heap %.0f MB at %d senders (budget %g)" wheel_l.l_peak_heap_mb largest
      !mem_budget_mb;
  (* Tick-node freelist gate: the wheel's peak live heap must stay within
     [--mem-ratio] of the binary heap's at the same sweep point. *)
  let wheel_heap_ratio =
    if heap_l.l_peak_heap_mb > 0. then wheel_l.l_peak_heap_mb /. heap_l.l_peak_heap_mb else 1.
  in
  let mem_ratio_ok = wheel_heap_ratio <= !mem_ratio in
  if not mem_ratio_ok then
    fail "wheel peak heap %.1f MB is %.2fx heap's %.1f MB at %d senders (max ratio %g)"
      wheel_l.l_peak_heap_mb wheel_heap_ratio heap_l.l_peak_heap_mb largest !mem_ratio;
  (* Parallel speedup gate.  Identity between seq and par legs was already
     checked inline (unconditional); the throughput ratio is only
     enforceable where the host actually has cores to run domains on. *)
  let cores = Domain.recommended_domain_count () in
  let par_gates =
    if !par_domains > 1 then begin
      let seq_l = at_largest "seq" in
      let par_l = at_largest (Printf.sprintf "par-k%d" !par_domains) in
      let speedup = events_per_s par_l /. events_per_s seq_l in
      let enforced = cores > 1 in
      let ok = speedup >= !par_speedup_min in
      if enforced && not ok then
        fail "parallel speedup %.2fx < %.2fx at %d senders (K=%d, %d cores)" speedup
          !par_speedup_min largest !par_domains cores;
      [
        ("par_domains", Obs.Export.Int !par_domains);
        ("par_events_per_s", Obs.Export.Float (events_per_s par_l));
        ("seq_events_per_s", Obs.Export.Float (events_per_s seq_l));
        ("par_speedup", Obs.Export.Float speedup);
        ("par_speedup_min", Obs.Export.Float !par_speedup_min);
        ("par_speedup_enforced", Obs.Export.Bool enforced);
        ("par_speedup_ok", Obs.Export.Bool (ok || not enforced));
        ("par_identical", Obs.Export.Bool (not !failed));
        ("host_cores", Obs.Export.Int cores);
      ]
    end
    else []
  in
  (* Obs.Profile attribution of the wheel leg at the largest count: where
     the event-loop wall time actually goes. *)
  let attribution =
    let obs =
      { Workload.Experiment.obs_default with Workload.Experiment.obs_profile = true }
    in
    let r =
      Workload.Scale.run ~obs
        (config ~senders:largest ~mode:Workload.Swarm.Independent ~sched:(Some Sim.Wheel))
    in
    match r.Workload.Scale.sr_obs with
    | None -> []
    | Some rep ->
        List.map
          (fun p -> (p.Obs.Report.p_kind, p.Obs.Report.p_events, p.Obs.Report.p_wall_s))
          rep.Obs.Report.profile
  in
  let leg_json l =
    Obs.Export.Obj
      [
        ("senders", Obs.Export.Int l.l_senders);
        ("sched", Obs.Export.String l.l_sched);
        ("partitions", Obs.Export.Int l.l_partitions);
        ("wall_s", Obs.Export.Float l.l_wall_s);
        ("events", Obs.Export.Int l.l_events);
        ("events_per_s", Obs.Export.Float (events_per_s l));
        ("attack_packets", Obs.Export.Int l.l_attack_packets);
        ("fraction_completed", Obs.Export.Float l.l_fraction);
        ("sim_end_s", Obs.Export.Float l.l_sim_end);
        ("peak_heap_mb", Obs.Export.Float l.l_peak_heap_mb);
        ("peak_pending_events", Obs.Export.Float l.l_peak_pending);
      ]
  in
  let json =
    Obs.Export.Obj
      [
        ("benchmark", Obs.Export.String "aggregate-attacker scale sweep (fan-in, independent mode)");
        ("smoke", Obs.Export.Bool !smoke);
        ("senders", Obs.Export.List (List.map (fun n -> Obs.Export.Int n) counts));
        ("largest_senders", Obs.Export.Int largest);
        ("legs", Obs.Export.List (List.map leg_json legs));
        ( "gates",
          Obs.Export.Obj
            ([
              ("wheel_beats_heap", Obs.Export.Bool wheel_beats_heap);
              ("wheel_events_per_s", Obs.Export.Float (events_per_s wheel_l));
              ("heap_events_per_s", Obs.Export.Float (events_per_s heap_l));
              ("wall_budget_s", Obs.Export.Float !wall_budget_s);
              ("wall_s", Obs.Export.Float wheel_l.l_wall_s);
              ("wall_budget_ok", Obs.Export.Bool wall_ok);
              ("mem_budget_mb", Obs.Export.Float !mem_budget_mb);
              ("peak_heap_mb", Obs.Export.Float wheel_l.l_peak_heap_mb);
              ("mem_budget_ok", Obs.Export.Bool mem_ok);
              ("wheel_heap_ratio", Obs.Export.Float wheel_heap_ratio);
              ("mem_ratio_max", Obs.Export.Float !mem_ratio);
              ("mem_ratio_ok", Obs.Export.Bool mem_ratio_ok);
            ]
          @ par_gates) );
        ( "profile",
          Obs.Export.List
            (List.map
               (fun (kind, events, wall) ->
                 Obs.Export.Obj
                   [
                     ("kind", Obs.Export.String kind);
                     ("events", Obs.Export.Int events);
                     ("wall_s", Obs.Export.Float wall);
                   ])
               attribution) );
      ]
  in
  let oc = open_out !out_path in
  output_string oc (Obs.Export.to_string_pretty json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" !out_path;
  if !failed then exit 1
