(* Times a reduced Fig. 8 flood sweep sequentially (-j 1) and on the
   parallel run engine (-j N), checks the two rendered sweep tables are
   byte-identical, and writes BENCH_sweep.json so the perf trajectory of
   the event loop and the domain pool is tracked from PR to PR.

   Run with:            dune exec bench/sweep_bench.exe
   Smoke mode (CI):     dune exec bench/sweep_bench.exe -- --max-time 5 *)

let jobs = ref (Pool.default_jobs ())
let max_time = ref 60.
let transfers = ref 10
let attacker_counts = ref [ 1; 10; 40; 100 ]
let out_path = ref "BENCH_sweep.json"

let spec =
  [
    ("--jobs", Arg.Set_int jobs, "N  worker domains for the parallel leg (default: all cores)");
    ( "--max-time",
      Arg.Set_float max_time,
      "S  simulated-time cutoff per run, seconds (default 60; use 5 for a smoke run)" );
    ("--transfers", Arg.Set_int transfers, "K  transfers per legitimate user (default 10)");
    ( "--attackers",
      Arg.String
        (fun s -> attacker_counts := List.map int_of_string (String.split_on_char ',' s)),
      "LIST  comma-separated attacker counts (default 1,10,40,100)" );
    ("--out", Arg.Set_string out_path, "PATH  where to write the JSON report");
  ]

let usage = "sweep_bench [--jobs N] [--max-time S] [--transfers K] [--attackers LIST] [--out PATH]"

(* One sweep leg: run the reduced Fig. 8 grid at the given parallelism,
   returning (wall seconds, per-cell results, rendered table). *)
let run_leg ~jobs =
  let base =
    {
      Workload.Experiment.default with
      Workload.Experiment.transfers_per_user = !transfers;
      max_time = !max_time;
    }
  in
  let t0 = Unix.gettimeofday () in
  let series =
    Workload.Scenario.fig8 ~jobs ~attacker_counts:!attacker_counts ~base ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  (wall, series, Stats.Table.render (Workload.Scenario.render series))

(* Rendered tables carry fractions and times but not event counts; total
   events come from one extra pass over the grid configs (sequential,
   excluded from both timed legs). *)
let count_events () =
  let base =
    {
      Workload.Experiment.default with
      Workload.Experiment.transfers_per_user = !transfers;
      max_time = !max_time;
    }
  in
  List.fold_left
    (fun acc (_, factory) ->
      List.fold_left
        (fun acc n ->
          let cfg =
            {
              base with
              Workload.Experiment.scheme = factory;
              n_attackers = n;
              attack = Workload.Experiment.Legacy_flood { rate_bps = 1e6 };
            }
          in
          acc + (Workload.Experiment.run cfg).Workload.Experiment.events)
        acc !attacker_counts)
    0 Workload.Scenario.paper_schemes

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let jobs = max 1 !jobs in
  let n_schemes = List.length Workload.Scenario.paper_schemes in
  let cells = n_schemes * List.length !attacker_counts in
  Printf.printf "sweep_bench: %d cells (%d schemes x %d attacker counts), max_time=%gs\n%!" cells
    n_schemes
    (List.length !attacker_counts) !max_time;
  let seq_wall, _, seq_table = run_leg ~jobs:1 in
  Printf.printf "  -j 1:  %.2fs\n%!" seq_wall;
  let par_wall, _, par_table = run_leg ~jobs in
  Printf.printf "  -j %d:  %.2fs\n%!" jobs par_wall;
  let identical = String.equal seq_table par_table in
  let speedup = seq_wall /. par_wall in
  let events = count_events () in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"benchmark\": \"reduced fig8 flood sweep\",";
        Printf.sprintf "  \"cells\": %d," cells;
        Printf.sprintf "  \"transfers_per_user\": %d," !transfers;
        Printf.sprintf "  \"max_time_s\": %g," !max_time;
        Printf.sprintf "  \"jobs\": %d," jobs;
        Printf.sprintf "  \"recommended_domains\": %d," (Domain.recommended_domain_count ());
        Printf.sprintf "  \"wall_seconds_j1\": %.3f," seq_wall;
        Printf.sprintf "  \"wall_seconds_jN\": %.3f," par_wall;
        Printf.sprintf "  \"speedup\": %.3f," speedup;
        Printf.sprintf "  \"events_total\": %d," events;
        Printf.sprintf "  \"events_per_sec_j1\": %.0f," (float_of_int events /. seq_wall);
        Printf.sprintf "  \"events_per_sec_jN\": %.0f," (float_of_int events /. par_wall);
        Printf.sprintf "  \"tables_identical\": %b" identical;
        "}";
      ]
  in
  let oc = open_out !out_path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  speedup %.2fx, %d events, tables identical: %b -> %s\n%!" speedup events
    identical !out_path;
  if not identical then begin
    prerr_endline "FATAL: parallel sweep table differs from sequential table";
    exit 1
  end
