(* Compare freshly measured benchmark JSONs against the committed
   baselines and fail on a real throughput regression.

     dune exec bench/compare_bench.exe -- \
       --old-pps BENCH_pps.json --new-pps /tmp/fresh_pps.json \
       [--old-sweep BENCH_sweep.json --new-sweep /tmp/fresh_sweep.json] \
       [--old-scale BENCH_scale.json --new-scale /tmp/fresh_scale.json] \
       [--threshold 0.25] [--relative-to-legacy] [--summary $GITHUB_STEP_SUMMARY]

   The gate: each router path's pps in the new report must be within
   [threshold] (default 25%) of the committed value, else exit 1.  With
   [--relative-to-legacy], each path's pps is first divided by the same
   report's legacy-path pps — the legacy path does no TVA work, so the
   ratio cancels raw machine speed and isolates per-path cost, which keeps
   the gate meaningful on CI runners slower than the machine that produced
   the committed numbers.  The sweep comparison is reported but never
   gates: its wall-clock depends on domain scheduling noise.

   The scale comparison gates the wheel leg's events/s always normalized
   by the same report's heap-leg events/s (the heap is the machine-speed
   reference there, playing the role the legacy path plays for pps), and
   peak live-heap — machine-independent at a fixed sweep size — gated on
   growth.  Both only gate when the two reports ran the same largest
   sweep point; a smoke report against a full baseline is informational.
   The parallel-speedup ratio is informational here because core counts
   differ across hosts — scale_bench itself gates it where enforced.

   The report is a markdown table on stdout; [--summary FILE] appends the
   same markdown there (pass $GITHUB_STEP_SUMMARY in CI). *)

let old_pps = ref "BENCH_pps.json"
let new_pps = ref ""
let old_sweep = ref ""
let new_sweep = ref ""
let old_scale = ref ""
let new_scale = ref ""
let threshold = ref 0.25
let relative = ref false
let summary = ref ""

let spec =
  [
    ("--old-pps", Arg.Set_string old_pps, "FILE  committed per-packet report (default BENCH_pps.json)");
    ("--new-pps", Arg.Set_string new_pps, "FILE  freshly measured per-packet report (required)");
    ("--old-sweep", Arg.Set_string old_sweep, "FILE  committed sweep report (optional)");
    ("--new-sweep", Arg.Set_string new_sweep, "FILE  freshly measured sweep report (optional)");
    ("--old-scale", Arg.Set_string old_scale, "FILE  committed scale report (optional)");
    ("--new-scale", Arg.Set_string new_scale, "FILE  freshly measured scale report (optional)");
    ("--threshold", Arg.Set_float threshold, "F  max tolerated pps regression fraction (default 0.25)");
    ( "--relative-to-legacy",
      Arg.Set relative,
      "  compare each path's pps normalized by the same report's legacy pps" );
    ("--summary", Arg.Set_string summary, "FILE  also append the markdown report here");
  ]

let usage = "compare_bench --new-pps FILE [options]"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The reports are written by our own benches with one "key": value per
   line, so a scan for the quoted key suffices — no JSON library in the
   dependency set. *)
let find_number ?(from = 0) text key =
  let needle = "\"" ^ key ^ "\":" in
  match
    let rec search i =
      if i + String.length needle > String.length text then None
      else if String.sub text i (String.length needle) = needle then Some i
      else search (i + 1)
    in
    search from
  with
  | None -> None
  | Some i ->
      let j = i + String.length needle in
      let k = ref j in
      while
        !k < String.length text
        && (match text.[!k] with '0' .. '9' | '.' | '-' | 'e' | '+' | ' ' -> true | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.trim (String.sub text j (!k - j)))

let section_start text name =
  let needle = "\"" ^ name ^ "\":" in
  let rec search i =
    if i + String.length needle > String.length text then None
    else if String.sub text i (String.length needle) = needle then Some i
    else search (i + 1)
  in
  search 0

let section_pps text name =
  match section_start text name with None -> None | Some i -> find_number ~from:i text "pps"

(* Scale-report gates live in the "gates" object; several of its keys
   ("peak_heap_mb", "wall_s") also appear per leg, so scan from there. *)
let scale_gate text key =
  match section_start text "gates" with None -> None | Some i -> find_number ~from:i text key

let paths = [ "cached_nonce"; "validate"; "request"; "legacy" ]

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  if !new_pps = "" then begin
    prerr_endline "compare_bench: --new-pps is required";
    exit 2
  end;
  let old_text = read_file !old_pps and new_text = read_file !new_pps in
  let get text name =
    match section_pps text name with
    | Some v -> v
    | None ->
        Printf.eprintf "compare_bench: no \"%s\" pps in report\n" name;
        exit 2
  in
  let normalize text v = if !relative then v /. get text "legacy" else v in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "### Router per-packet throughput vs committed baseline\n\n";
  if !relative then
    Buffer.add_string buf "_pps normalized by each report's legacy-path pps._\n\n";
  Buffer.add_string buf "| path | committed pps | fresh pps | change | gate |\n";
  Buffer.add_string buf "|---|---|---|---|---|\n";
  let failed = ref false in
  List.iter
    (fun name ->
      let o = get old_text name and n = get new_text name in
      let delta = (normalize new_text n /. normalize old_text o) -. 1. in
      (* Legacy is the normalization denominator; gating it against itself
         would be vacuous under --relative-to-legacy, and raw machine speed
         otherwise, so it is informational. *)
      let gated = name <> "legacy" in
      let regressed = gated && delta < -. !threshold in
      if regressed then failed := true;
      Buffer.add_string buf
        (Printf.sprintf "| %s | %.0f | %.0f | %+.1f%% | %s |\n" name o n (100. *. delta)
           (if not gated then "—" else if regressed then "FAIL" else "ok")))
    paths;
  (* The obs-enabled cached-nonce section is newer than some committed
     baselines; show it only when both reports carry it.  pps_bench itself
     gates the obs overhead, so here it is informational. *)
  (match (section_pps old_text "cached_nonce_obs", section_pps new_text "cached_nonce_obs") with
  | Some o, Some n ->
      let delta = (normalize new_text n /. normalize old_text o) -. 1. in
      Buffer.add_string buf
        (Printf.sprintf "| cached_nonce_obs | %.0f | %.0f | %+.1f%% | — |\n" o n (100. *. delta))
  | _ -> ());
  (* Likewise the telemetry-tick duel row: pps_bench gates its overhead and
     allocation against the obs-only path, so the cross-report delta here
     is informational. *)
  (match
     (section_pps old_text "cached_nonce_telemetry", section_pps new_text "cached_nonce_telemetry")
   with
  | Some o, Some n ->
      let delta = (normalize new_text n /. normalize old_text o) -. 1. in
      Buffer.add_string buf
        (Printf.sprintf "| cached_nonce_telemetry | %.0f | %.0f | %+.1f%% | — |\n" o n
           (100. *. delta))
  | _ -> ());
  (* Batched and sharded cached-nonce rows, also newer than some committed
     baselines.  The batch row is gated like the router paths when both
     reports carry it — it is the PR's headline number; the sharded row is
     informational because its wall-clock includes domain scheduling. *)
  (match (section_pps old_text "cached_nonce_batch", section_pps new_text "cached_nonce_batch") with
  | Some o, Some n ->
      let delta = (normalize new_text n /. normalize old_text o) -. 1. in
      let regressed = delta < -. !threshold in
      if regressed then failed := true;
      Buffer.add_string buf
        (Printf.sprintf "| cached_nonce_batch | %.0f | %.0f | %+.1f%% | %s |\n" o n (100. *. delta)
           (if regressed then "FAIL" else "ok"))
  | _ -> ());
  (match
     (section_pps old_text "cached_nonce_sharded", section_pps new_text "cached_nonce_sharded")
   with
  | Some o, Some n ->
      let delta = (normalize new_text n /. normalize old_text o) -. 1. in
      Buffer.add_string buf
        (Printf.sprintf "| cached_nonce_sharded | %.0f | %.0f | %+.1f%% | — |\n" o n
           (100. *. delta))
  | _ -> ());
  (match (find_number old_text "batch_speedup", find_number new_text "batch_speedup") with
  | Some o, Some n ->
      Buffer.add_string buf
        (Printf.sprintf
           "\n_batch speedup over same-run sequential cached-nonce: %.2fx committed, %.2fx fresh \
            (gated inside pps_bench)._\n"
           o n)
  | _ -> ());
  (match (find_number old_text "obs_overhead_pct", find_number new_text "obs_overhead_pct") with
  | Some o, Some n ->
      Buffer.add_string buf
        (Printf.sprintf "\n_obs counter overhead on the cached path: %.2f%% committed, %.2f%% \
                         fresh (gated inside pps_bench)._\n"
           o n)
  | _ -> ());
  (match
     (find_number old_text "telemetry_overhead_pct", find_number new_text "telemetry_overhead_pct")
   with
  | Some o, Some n ->
      Buffer.add_string buf
        (Printf.sprintf "\n_telemetry tick overhead on the obs cached path: %.2f%% committed, \
                         %.2f%% fresh (gated inside pps_bench)._\n"
           o n)
  | _ -> ());
  (match (!old_sweep, !new_sweep) with
  | "", _ | _, "" -> ()
  | os, ns ->
      let ot = read_file os and nt = read_file ns in
      Buffer.add_string buf "\n### Sweep engine (informational)\n\n";
      Buffer.add_string buf "| metric | committed | fresh | change |\n|---|---|---|---|\n";
      List.iter
        (fun key ->
          match (find_number ot key, find_number nt key) with
          | Some o, Some n ->
              Buffer.add_string buf
                (Printf.sprintf "| %s | %.0f | %.0f | %+.1f%% |\n" key o n
                   (100. *. ((n /. o) -. 1.)))
          | _ -> ())
        [ "events_per_sec_j1"; "events_per_sec_jN" ]);
  (match (!old_scale, !new_scale) with
  | "", _ | _, "" -> ()
  | os, ns ->
      let ot = read_file os and nt = read_file ns in
      let comparable =
        match (find_number ot "largest_senders", find_number nt "largest_senders") with
        | Some a, Some b -> a = b
        | _ -> false
      in
      Buffer.add_string buf "\n### Million-sender scale sweep vs committed baseline\n\n";
      if not comparable then
        Buffer.add_string buf
          "_Sweep sizes differ between the reports, so nothing below gates._\n\n"
      else
        Buffer.add_string buf
          "_Gated events/s are normalized by each report's heap-leg events/s (cancels machine \
           speed)._\n\n";
      Buffer.add_string buf "| metric | committed | fresh | change | gate |\n|---|---|---|---|---|\n";
      (* higher_is_better flips the regression direction for peak heap.
         normalize divides by the same report's heap-leg events/s under
         --relative-to-legacy, the scale analogue of the legacy path. *)
      let row ?(normalize = false) ?(gated = true) ?(higher_is_better = true) key =
        match (scale_gate ot key, scale_gate nt key) with
        | Some o, Some n ->
            let norm text v =
              match (normalize, scale_gate text "heap_events_per_s") with
              | true, Some h when h > 0. -> v /. h
              | _ -> v
            in
            let delta = (norm nt n /. norm ot o) -. 1. in
            let gated = gated && comparable in
            let regressed =
              gated && if higher_is_better then delta < -. !threshold else delta > !threshold
            in
            if regressed then failed := true;
            Buffer.add_string buf
              (Printf.sprintf "| %s | %.6g | %.6g | %+.1f%% | %s |\n" key o n (100. *. delta)
                 (if not gated then "—" else if regressed then "FAIL" else "ok"))
        | _ -> ()
      in
      (* Under --relative-to-legacy the heap leg is the denominator, so
         gating it would be vacuous; raw events/s otherwise tracks machine
         speed, so it stays informational either way. *)
      row ~gated:false "heap_events_per_s";
      row ~normalize:true "wheel_events_per_s";
      row ~higher_is_better:false "peak_heap_mb";
      row ~gated:false "wheel_heap_ratio";
      row ~gated:false "seq_events_per_s";
      row ~gated:false "par_events_per_s";
      row ~gated:false "par_speedup");
  Buffer.add_string buf
    (Printf.sprintf
       "\nGate: fail if any router path or gated scale metric regresses more than %.0f%%.  \
        Result: **%s**\n"
       (100. *. !threshold)
       (if !failed then "FAIL" else "pass"));
  print_string (Buffer.contents buf);
  if !summary <> "" then begin
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 !summary in
    output_string oc (Buffer.contents buf);
    close_out oc
  end;
  if !failed then exit 1
