(* Guard against metadata drift between the committed bench reports and
   the README tables: both are regenerated in lockstep on the same host,
   so the figures quoted in the README's "Committed" columns must match
   the JSON within a small tolerance.  Two tables are covered: the §6.1
   per-packet table against BENCH_pps.json, and the million-sender scale
   table against BENCH_scale.json's "gates" object.

     dune exec bench/readme_check.exe -- \
       [--readme README.md] [--json BENCH_pps.json] \
       [--ns-tol 0.05] [--words-tol 1.0] \
       [--scale-json BENCH_scale.json] [--scale-tol 0.05]

   Exit 1 on any row that drifted, exit 2 on a malformed table or report.
   The check is content-only — it never runs the benchmarks — so it is
   cheap enough for every CI run. *)

let readme = ref "README.md"
let json = ref "BENCH_pps.json"
let ns_tol = ref 0.05
let words_tol = ref 1.0
let scale_json = ref "BENCH_scale.json"
let scale_tol = ref 0.05
let report_json = ref "BENCH_report.json"

let spec =
  [
    ("--readme", Arg.Set_string readme, "FILE  the README carrying the §6.1 table");
    ("--json", Arg.Set_string json, "FILE  the committed per-packet report");
    ( "--ns-tol",
      Arg.Set_float ns_tol,
      "F  max fractional ns drift between table and JSON (default 0.05)" );
    ( "--words-tol",
      Arg.Set_float words_tol,
      "W  max absolute words/pkt drift between table and JSON (default 1.0)" );
    ( "--scale-json",
      Arg.Set_string scale_json,
      "FILE  the committed scale-sweep report (default BENCH_scale.json)" );
    ( "--scale-tol",
      Arg.Set_float scale_tol,
      "F  max fractional drift between the scale table and its JSON (default 0.05)" );
    ( "--report-json",
      Arg.Set_string report_json,
      "FILE  the committed cross-scheme fairness report (default BENCH_report.json)" );
  ]

let usage =
  "readme_check [--readme FILE] [--json FILE] [--ns-tol F] [--words-tol W] [--scale-json FILE] \
   [--scale-tol F] [--report-json FILE]"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Same scan-for-quoted-key parsing as compare_bench: our benches write one
   "key": value per line. *)
let find_number ?(from = 0) text key =
  let needle = "\"" ^ key ^ "\":" in
  let rec search i =
    if i + String.length needle > String.length text then None
    else if String.sub text i (String.length needle) = needle then Some i
    else search (i + 1)
  in
  match search from with
  | None -> None
  | Some i ->
      let j = i + String.length needle in
      let k = ref j in
      while
        !k < String.length text
        && (match text.[!k] with '0' .. '9' | '.' | '-' | 'e' | '+' | ' ' -> true | _ -> false)
      do
        incr k
      done;
      float_of_string_opt (String.trim (String.sub text j (!k - j)))

let section_field text name field =
  let needle = "\"" ^ name ^ "\":" in
  let rec search i =
    if i + String.length needle > String.length text then None
    else if String.sub text i (String.length needle) = needle then Some i
    else search (i + 1)
  in
  match search 0 with None -> None | Some i -> find_number ~from:i text field

(* The README row for a path looks like
     | `cached_nonce` | ... | ... | 96.4 ns, 11 words/pkt |
   The committed column is the last nonempty cell; the first float before
   " ns" is the latency, an optional "<float> words" is the allocation. *)
let split_cells line =
  String.split_on_char '|' line |> List.map String.trim |> List.filter (fun c -> c <> "")

let rec find_sub text needle from =
  if from + String.length needle > String.length text then None
  else if String.sub text from (String.length needle) = needle then Some from
  else find_sub text needle (from + 1)

(* The float that ends just before [unit] in a committed-column cell. *)
let cell_figure cell unit =
  let num_ending_at j =
    (* walk back over the float that ends just before index j *)
    let i = ref j in
    while !i > 0 && (match cell.[!i - 1] with '0' .. '9' | '.' -> true | _ -> false) do
      decr i
    done;
    if !i = j then None else float_of_string_opt (String.sub cell !i (j - !i))
  in
  match find_sub cell unit 0 with None -> None | Some j -> num_ending_at j

(* Scan a committed-column cell for "<float> ns" and an optional
   "<float> words". *)
let parse_cell cell = (cell_figure cell " ns", cell_figure cell " words")

let row_cell readme_text key =
  let marker = "| `" ^ key ^ "` |" in
  let lines = String.split_on_char '\n' readme_text in
  match List.find_opt (fun l -> find_sub l marker 0 <> None) lines with
  | None -> None
  | Some line -> (
      match List.rev (split_cells line) with cell :: _ -> Some cell | [] -> None)

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let readme_text = read_file !readme and json_text = read_file !json in
  let failed = ref false and checked = ref 0 in
  let fatal fmt = Printf.ksprintf (fun s -> prerr_endline ("readme_check: " ^ s); exit 2) fmt in
  let check ~key ~words_expected =
    match row_cell readme_text key with
    | None -> fatal "README has no table row for `%s`" key
    | Some cell ->
        let table_ns, table_words = parse_cell cell in
        let json_ns = section_field json_text key "ns_per_packet" in
        let json_words = section_field json_text key "minor_words_per_packet" in
        (match (table_ns, json_ns) with
        | Some t, Some j ->
            incr checked;
            if Float.abs (t -. j) > (!ns_tol *. j) +. 0.051 (* quantization of one decimal *)
            then begin
              Printf.eprintf "readme_check: `%s` ns drifted: README says %.1f, JSON says %.2f\n"
                key t j;
              failed := true
            end
        | None, _ -> fatal "no ns figure in README row `%s` (cell %S)" key cell
        | _, None -> fatal "no \"%s\".ns_per_packet in %s" key !json);
        if words_expected then
          match (table_words, json_words) with
          | Some t, Some j ->
              incr checked;
              if Float.abs (t -. j) > !words_tol then begin
                Printf.eprintf
                  "readme_check: `%s` words/pkt drifted: README says %g, JSON says %.3f\n" key t j;
                failed := true
              end
          | None, _ -> fatal "no words figure in README row `%s` (cell %S)" key cell
          | _, None -> fatal "no \"%s\".minor_words_per_packet in %s" key !json
  in
  List.iter
    (fun key -> check ~key ~words_expected:true)
    [
      "cached_nonce";
      "validate";
      "request";
      "legacy";
      "cached_nonce_batch";
      "cached_nonce_telemetry";
    ];
  check ~key:"cached_nonce_sharded" ~words_expected:false;
  let pps_checked = !checked in
  (* The README's million-sender scale table quotes the "gates" object of
     BENCH_scale.json; [section_field] scoped to "gates" skips the same
     field names inside the per-leg objects that precede it. *)
  let scale_text = read_file !scale_json in
  let check_scale ~key ~unit =
    match row_cell readme_text key with
    | None -> fatal "README has no scale-table row for `%s`" key
    | Some cell -> (
        match (cell_figure cell unit, section_field scale_text "gates" key) with
        | Some t, Some j ->
            incr checked;
            if Float.abs (t -. j) > (!scale_tol *. Float.abs j) +. 0.051 then begin
              Printf.eprintf
                "readme_check: `%s` drifted: README says %g%s, JSON says %g\n" key t unit j;
              failed := true
            end
        | None, _ -> fatal "no \"%s\" figure in README scale row (cell %S)" key cell
        | _, None -> fatal "no gates.%s in %s" key !scale_json)
  in
  check_scale ~key:"heap_events_per_s" ~unit:" ev/s";
  check_scale ~key:"wheel_events_per_s" ~unit:" ev/s";
  check_scale ~key:"wall_s" ~unit:" s";
  check_scale ~key:"peak_heap_mb" ~unit:" MB";
  check_scale ~key:"seq_events_per_s" ~unit:" ev/s";
  check_scale ~key:"par_events_per_s" ~unit:" ev/s";
  check_scale ~key:"par_speedup" ~unit:"x";
  let scale_checked = !checked - pps_checked in
  (* The README's five-scheme comparison table quotes the headline
     "<scheme>_fraction/_median_s/_jain" keys of BENCH_report.json, both
     written in lockstep by `tva_sim report`.  The table renders three
     decimals, so only that quantization is tolerated. *)
  let report_text = read_file !report_json in
  let report_section =
    match find_sub readme_text "Five-scheme comparison" 0 with
    | None -> fatal "README has no \"Five-scheme comparison\" section"
    | Some i -> String.sub readme_text i (String.length readme_text - i)
  in
  let check_report scheme =
    let marker = "| `" ^ scheme ^ "` |" in
    let lines = String.split_on_char '\n' report_section in
    let line =
      match List.find_opt (fun l -> find_sub l marker 0 <> None) lines with
      | None -> fatal "README five-scheme table has no row for `%s`" scheme
      | Some l -> l
    in
    let cells =
      match split_cells line with
      | [ _; completed; median; jain ] ->
          [ ("fraction", completed); ("median_s", median); ("jain", jain) ]
      | cs -> fatal "malformed five-scheme row for `%s` (%d cells)" scheme (List.length cs)
    in
    List.iter
      (fun (field, cell) ->
        let key = scheme ^ "_" ^ field in
        if find_sub report_text ("\"" ^ key ^ "\":") 0 = None then
          fatal "no \"%s\" in %s" key !report_json;
        match (float_of_string_opt cell, find_number report_text key) with
        | Some t, Some j ->
            incr checked;
            if Float.abs (t -. j) > 0.00051 then begin
              Printf.eprintf "readme_check: `%s` drifted: README says %g, JSON says %g\n" key t j;
              failed := true
            end
        | None, None when cell = "-" ->
            (* A null median: no transfer completed in that cell, and the
               table shows the same dash the report renderer emits. *)
            incr checked
        | None, Some j ->
            Printf.eprintf "readme_check: `%s`: README cell %S is not a number, JSON says %g\n"
              key cell j;
            failed := true
        | Some t, None ->
            Printf.eprintf "readme_check: `%s`: README says %g but the JSON value is null\n" key t;
            failed := true
        | None, None -> fatal "unreadable README cell %S for `%s`" cell key)
      cells
  in
  List.iter check_report [ "internet"; "siff"; "pushback"; "tva"; "netfence" ];
  if !failed then begin
    prerr_endline
      "readme_check: regenerate in lockstep: dune exec bench/pps_bench.exe (§6.1 table), dune \
       exec bench/scale_bench.exe (scale table), or dune exec bin/tva_sim.exe -- report \
       (five-scheme table), then update the README from the fresh JSON";
    exit 1
  end;
  Printf.printf "readme_check: %d figures in the README §6.1 table match %s, %d in the scale \
                 table match %s, %d in the five-scheme table match %s\n"
    pps_checked !json scale_checked !scale_json
    (!checked - pps_checked - scale_checked)
    !report_json
