(* The benchmark harness regenerates every table and figure of the paper's
   evaluation:

   - Table 1 (per-packet processing cost) as Bechamel micro-benchmarks of
     the real fast path (AES-hash + HMAC-SHA1, like the Linux prototype),
     plus supporting micro-benchmarks (crypto primitives, header codec,
     flow cache, fair queues);
   - Fig. 12 (forwarding rate vs input rate) from the livelock model
     parameterized by Table 1 costs;
   - Figs. 8, 9, 10 and 11 as reduced-size simulation sweeps (the full
     paper-scale sweeps are available from bin/tva_sim).

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing: run a grouped test and print ns/run per case.    *)

let benchmark_and_print test =
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw_results = Benchmark.all cfg [ instance ] test in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw_results in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-48s %12.1f ns/run\n%!" name est
      | Some _ | None -> Printf.printf "  %-48s %12s\n%!" name "n/a")
    rows

(* ------------------------------------------------------------------ *)
(* Table 1: the six packet-processing paths.                           *)

let table1_tests () =
  let fp = Forwarder.Fastpath.create () in
  Test.make_grouped ~name:"table1"
    (List.map
       (fun op ->
         Test.make ~name:(Forwarder.Fastpath.op_name op)
           (Staged.stage (Forwarder.Fastpath.runner fp op)))
       Forwarder.Fastpath.all_ops)

(* The same paths with the simulator's SipHash binding — the ablation for
   the hash-function choice. *)
let table1_fast_tests () =
  let fp =
    Forwarder.Fastpath.create
      ~hash_precap:(module Crypto.Keyed_hash.Fast)
      ~hash_cap:(module Crypto.Keyed_hash.Fast)
      ()
  in
  Test.make_grouped ~name:"table1-siphash"
    (List.map
       (fun op ->
         Test.make ~name:(Forwarder.Fastpath.op_name op)
           (Staged.stage (Forwarder.Fastpath.runner fp op)))
       Forwarder.Fastpath.all_ops)

(* Supporting micro-benchmarks: the primitives Table 1 costs decompose
   into. *)
let primitive_tests () =
  let key16 = String.init 16 Char.chr in
  let msg = String.init 64 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let aes_key = Crypto.Aes128.expand_key key16 in
  let block = Bytes.make 16 'x' in
  let shim =
    Wire.Cap_shim.regular ~nonce:0x1234567890abL
      ~caps:
        [
          { Wire.Cap_shim.ts = 42; hash = 0xdeadbeefL };
          { Wire.Cap_shim.ts = 43; hash = 0xfeedfaceL };
        ]
      ~n_kb:32 ~t_sec:10 ~renewal:false ()
  in
  let encoded = Wire.Cap_shim.encode shim in
  Test.make_grouped ~name:"primitives"
    [
      Test.make ~name:"sha1 (64B)" (Staged.stage (fun () -> ignore (Crypto.Sha1.digest msg)));
      Test.make ~name:"aes128 block"
        (Staged.stage (fun () ->
             Crypto.Aes128.encrypt_block aes_key block ~src_off:0 block ~dst_off:0));
      Test.make ~name:"aes-hash mac (64B)"
        (Staged.stage (fun () -> ignore (Crypto.Aes_hash.mac ~key:key16 msg)));
      Test.make ~name:"hmac-sha1 (64B)"
        (Staged.stage (fun () -> ignore (Crypto.Hmac_sha1.mac ~key:key16 msg)));
      Test.make ~name:"siphash-2-4 (64B)"
        (Staged.stage (fun () -> ignore (Crypto.Siphash.mac ~key:key16 msg)));
      Test.make ~name:"cap header encode"
        (Staged.stage (fun () -> ignore (Wire.Cap_shim.encode shim)));
      Test.make ~name:"cap header decode"
        (Staged.stage (fun () -> ignore (Wire.Cap_shim.decode encoded)));
    ]

let queueing_tests () =
  let drr =
    Drr.create ~name:"bench" ~classify:(fun p -> Wire.Addr.to_int p.Wire.Packet.dst land 0xf) ()
  in
  let packets =
    Array.init 16 (fun i ->
        Wire.Packet.make
          ~src:(Wire.Addr.of_int (0x0a000000 + i))
          ~dst:(Wire.Addr.of_int (0xc0a80000 + i))
          ~created:0. (Wire.Packet.Raw 1000))
  in
  let i = ref 0 in
  Test.make_grouped ~name:"queueing"
    [
      Test.make ~name:"drr enqueue+dequeue"
        (Staged.stage (fun () ->
             let p = packets.(!i land 0xf) in
             incr i;
             ignore (Qdisc.enqueue drr ~now:0. p);
             ignore (Qdisc.dequeue drr ~now:0.)));
    ]

(* ------------------------------------------------------------------ *)
(* Figure regenerations.                                               *)

let print_series title series =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-');
  print_string (Stats.Table.render (Workload.Scenario.render series))

let quick_base =
  {
    Workload.Experiment.default with
    Workload.Experiment.transfers_per_user = 20;
    max_time = 90.;
  }

let quick_counts = [ 1; 10; 40; 100 ]

let fig8 () =
  print_series "Fig 8: legacy traffic floods (fraction completed / avg transfer time)"
    (Workload.Scenario.fig8 ~attacker_counts:quick_counts ~base:quick_base ())

let fig9 () =
  print_series "Fig 9: request packet floods"
    (Workload.Scenario.fig9 ~attacker_counts:quick_counts ~base:quick_base ())

let fig10 () =
  print_series "Fig 10: authorized floods via a colluder"
    (Workload.Scenario.fig10 ~attacker_counts:quick_counts ~base:quick_base ())

let fig11 () =
  let runs = Workload.Scenario.fig11 ~base:quick_base ~duration:60. () in
  Printf.printf "\nFig 11: imprecise authorization (max transfer time per 5s bin)\n";
  Printf.printf "---------------------------------------------------------------\n";
  print_string (Stats.Table.render (Workload.Scenario.render_fig11 runs ~bins:5.))

let fig12 () =
  Printf.printf "\nFig 12: forwarding rate vs input rate (livelock model, Table 1 costs)\n";
  Printf.printf "----------------------------------------------------------------------\n";
  let costs =
    [
      ("legacy IP", 10e-9);
      ("regular w/ entry", 33e-9);
      ("request", 460e-9);
      ("renewal w/ entry", 439e-9);
      ("regular w/o entry", 1486e-9);
      ("renewal w/o entry", 1821e-9);
    ]
  in
  let table = Stats.Table.create ~columns:("input_kpps" :: List.map fst costs) in
  List.iter
    (fun input_pps ->
      Stats.Table.add_row table
        (Printf.sprintf "%.0f" (input_pps /. 1e3)
        :: List.map
             (fun (_, processing_s) ->
               Printf.sprintf "%.0f"
                 (Forwarder.Livelock.output_rate Forwarder.Livelock.Naive
                    ~interrupt_s:Forwarder.Livelock.default_interrupt_s ~processing_s ~input_pps
                 /. 1e3))
             costs))
    (List.init 11 (fun i -> float_of_int i *. 40_000.));
  print_string (Stats.Table.render table);
  List.iter
    (fun (name, processing_s) ->
      Printf.printf "  peak (%s): %.0f kpps\n" name
        (Forwarder.Livelock.peak_rate ~interrupt_s:Forwarder.Livelock.default_interrupt_s
           ~processing_s
        /. 1e3))
    costs

let () =
  Printf.printf "Table 1: per-packet processing cost (AES-hash + HMAC-SHA1 fast path)\n";
  Printf.printf "---------------------------------------------------------------------\n";
  benchmark_and_print (table1_tests ());
  Printf.printf "\nTable 1 ablation: SipHash binding (the simulator default)\n";
  Printf.printf "---------------------------------------------------------\n";
  benchmark_and_print (table1_fast_tests ());
  Printf.printf "\nSupporting micro-benchmarks\n";
  Printf.printf "---------------------------\n";
  benchmark_and_print (primitive_tests ());
  benchmark_and_print (queueing_tests ());
  fig12 ();
  fig8 ();
  fig9 ();
  fig10 ();
  fig11 ()
