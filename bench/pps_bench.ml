(* Packets/sec through the router's per-packet paths (paper Sec. 6.1).

   Drives N synthetic flows through a single [Router.process] loop and
   reports, for each of the four paths a packet can take —

     cached-nonce  flow-cache hit on the 48-bit nonce (paper: ~33 ns)
     validate      capability listed in the packet, two hash checks
                   (paper: ~460 ns)
     request       pre-capability minted and appended
     legacy        no shim, counted straight through

   — the throughput and the minor-heap words allocated per packet.  The
   cached-nonce path is the line-rate path, so the benchmark FAILS (exit 1)
   if it allocates more than [budget] minor words per packet; the same
   budget is pinned by a regression test in the test suite.

   The cached-nonce path is then re-measured on a second router with the
   observability counter registry attached (tracing stays off).  The
   zero-overhead contract gates here too: counters may cost at most
   [--obs-overhead-pct] percent of cached-nonce pps (default 5%) and must
   allocate no extra minor words per packet.

   Run with:            dune exec bench/pps_bench.exe
   Smoke mode (CI):     dune exec bench/pps_bench.exe -- --flows 64 --passes 50 *)

let flows = ref 1024
let passes = ref 512
let budget = ref 12.
let validate_budget = ref 42.
let request_budget = ref 24.
let batch_budget = ref 2.
let batch_speedup_min = ref 2.
let shards = ref 4
let obs_overhead_pct = ref 5.
let out_path = ref "BENCH_pps.json"
let profile_out = ref ""

let spec =
  [
    ("--flows", Arg.Set_int flows, "N  distinct (src,dst) flows (default 1024)");
    ("--passes", Arg.Set_int passes, "K  timed passes over all flows per path (default 512)");
    ( "--budget",
      Arg.Set_float budget,
      "W  max minor words/packet on the cached-nonce path (default 12)" );
    ( "--validate-budget",
      Arg.Set_float validate_budget,
      "W  max minor words/packet on the validate path (default 42)" );
    ( "--request-budget",
      Arg.Set_float request_budget,
      "W  max minor words/packet on the request path (default 24)" );
    ( "--batch-budget",
      Arg.Set_float batch_budget,
      "W  max amortized minor words/packet on the batched cached-nonce path (default 2)" );
    ( "--batch-speedup-min",
      Arg.Set_float batch_speedup_min,
      "X  min cached_nonce_batch pps as a multiple of same-run cached_nonce pps (default 2)" );
    ( "--shards",
      Arg.Set_int shards,
      "K  flow-hash shards for the cached_nonce_sharded row (default 4)" );
    ( "--obs-overhead-pct",
      Arg.Set_float obs_overhead_pct,
      "P  max cached-nonce pps loss with obs counters attached (default 5)" );
    ("--out", Arg.Set_string out_path, "PATH  where to write the JSON report");
    ( "--profile-out",
      Arg.Set_string profile_out,
      "PATH  also write the per-stage ns budget report (Obs.Profile gauges)" );
  ]

let usage =
  "pps_bench [--flows N] [--passes K] [--budget W] [--validate-budget W] [--request-budget W] \
   [--batch-budget W] [--batch-speedup-min X] [--shards K] [--obs-overhead-pct P] [--out PATH] \
   [--profile-out PATH]"

let n_kb = 1023
let t_sec = 32

type measurement = { pps : float; ns_per_packet : float; minor_words_per_packet : float }

(* Time [passes] repetitions of [per_pass] (each processing [flows]
   packets) and read the Gc's minor-words counter across the same loop so
   timing and allocation come from one pass. *)
let measure ~flows ~passes per_pass =
  let packets = flows * passes in
  Gc.full_major ();
  let words0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for pass = 0 to passes - 1 do
    per_pass pass
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. words0 in
  {
    pps = float_of_int packets /. wall;
    ns_per_packet = wall *. 1e9 /. float_of_int packets;
    minor_words_per_packet = words /. float_of_int packets;
  }

(* Compare two variants of the same path fairly on a noisy machine:
   alternate [reps] chunks of each and keep each side's best (max-pps)
   chunk.  Adjacent chunks share the noise environment, and scheduler
   stalls only ever slow a chunk down, so the best chunk is the cleanest
   estimate of each side's true rate.  Minor words are averaged over every
   chunk — allocation does not depend on timing noise. *)
let measure_duel ?(reps = 8) ~flows ~passes pass_a pass_b =
  let chunk = max 1 (passes / reps) in
  let reps = passes / chunk in
  let best_a = ref None and best_b = ref None in
  let words_a = ref 0. and words_b = ref 0. in
  let packets = ref 0 in
  for r = 0 to reps - 1 do
    (* Fold the division remainder into the last chunk so each side times
       exactly [passes] passes in total. *)
    let p = chunk + if r = reps - 1 then passes - (chunk * reps) else 0 in
    (* Swap which side goes first each round: cache- and frequency-state
       left behind by one measurement must not systematically favor the
       other. *)
    let ma, mb =
      if r land 1 = 0 then
        let ma = measure ~flows ~passes:p pass_a in
        (ma, measure ~flows ~passes:p pass_b)
      else
        let mb = measure ~flows ~passes:p pass_b in
        (measure ~flows ~passes:p pass_a, mb)
    in
    let n = float_of_int (flows * p) in
    words_a := !words_a +. (ma.minor_words_per_packet *. n);
    words_b := !words_b +. (mb.minor_words_per_packet *. n);
    packets := !packets + (flows * p);
    (match !best_a with Some m when m.pps >= ma.pps -> () | _ -> best_a := Some ma);
    match !best_b with Some m when m.pps >= mb.pps -> () | _ -> best_b := Some mb
  done;
  let finish best words =
    let m = Option.get best in
    { m with minor_words_per_packet = words /. float_of_int !packets }
  in
  (finish !best_a !words_a, finish !best_b !words_b)

let check_counters ~label ~(before : Tva.Router.counters) ~(after : Tva.Router.counters)
    ~expect_field ~expected =
  let got = expect_field after - expect_field before in
  if got <> expected then begin
    Printf.eprintf "FATAL: %s path processed %d packets on the expected branch, wanted %d\n" label
      got expected;
    exit 1
  end;
  if after.Tva.Router.demotions <> before.Tva.Router.demotions then begin
    Printf.eprintf "FATAL: %s path demoted %d packets\n" label
      (after.Tva.Router.demotions - before.Tva.Router.demotions);
    exit 1
  end

let snapshot (c : Tva.Router.counters) = { c with Tva.Router.requests = c.Tva.Router.requests }

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let flows = max 1 !flows and passes = max 1 !passes in
  let sim = Sim.create () in
  (* 1 Gbps provisions a flow cache far larger than [flows], so the cached
     path is measured without evictions. *)
  let router =
    Tva.Router.create ~secret_master:"pps-bench" ~router_id:1 ~sim ~link_bps:1e9 ()
  in
  let src f = Wire.Addr.of_int (0x0A000000 + f) in
  let dst = Wire.Addr.of_int 0x0B000001 in
  Printf.printf "pps_bench: %d flows x %d passes per path\n%!" flows passes;

  (* --- request path ---------------------------------------------------- *)
  (* One reusable request packet per flow; the shim's hop-by-hop lists are
     reset in place each pass so the loop allocates only what the router
     path itself allocates. *)
  let req_packets =
    Array.init flows (fun f ->
        Wire.Packet.make ~shim:(Wire.Cap_shim.request ()) ~src:(src f) ~dst ~created:0.
          (Wire.Packet.Raw 64))
  in
  let reset_request (p : Wire.Packet.t) =
    match p.Wire.Packet.shim with
    | Some ({ Wire.Cap_shim.kind = Wire.Cap_shim.Request req; _ } as shim) ->
        req.Wire.Cap_shim.rev_path_ids <- [];
        req.Wire.Cap_shim.rev_precaps <- [];
        shim.Wire.Cap_shim.demoted <- false
    | _ -> assert false
  in
  let request_pass _pass =
    for f = 0 to flows - 1 do
      let p = req_packets.(f) in
      reset_request p;
      Tva.Router.process router ~in_interface:0 p
    done
  in
  request_pass 0 (* warmup *);
  let before = snapshot (Tva.Router.counters router) in
  let request_m = measure ~flows ~passes request_pass in
  check_counters ~label:"request" ~before ~after:(Tva.Router.counters router)
    ~expect_field:(fun c -> c.Tva.Router.requests)
    ~expected:(flows * passes);

  (* Convert each flow's pre-capability into a capability, destination-side,
     for the regular-packet paths. *)
  let caps =
    Array.init flows (fun f ->
        let p = req_packets.(f) in
        reset_request p;
        Tva.Router.process router ~in_interface:0 p;
        match p.Wire.Packet.shim with
        | Some { Wire.Cap_shim.kind = Wire.Cap_shim.Request { rev_precaps = [ pc ]; _ }; _ } ->
            Tva.Capability.cap_of_precap
              ~hash:(module Crypto.Keyed_hash.Fast : Crypto.Keyed_hash.S)
              ~precap:pc ~n_kb ~t_sec
        | _ -> failwith "request packet did not gain a pre-capability")
  in

  (* --- validate path --------------------------------------------------- *)
  (* Two packet sets per flow with different nonces: every process sees a
     nonce mismatch against the cache entry and must re-validate the listed
     capability (two hashes) and renew the entry — the paper's "validate a
     listed capability" cost.  The capability ptr is rewound after each
     packet so the same shim revalidates forever. *)
  let regular_packets ~nonce =
    Array.init flows (fun f ->
        let shim =
          Wire.Cap_shim.regular ~nonce ~caps:[ caps.(f) ] ~n_kb ~t_sec ~renewal:false ()
        in
        Wire.Packet.make ~shim ~src:(src f) ~dst ~created:0. (Wire.Packet.Raw 64))
  in
  let val_a = regular_packets ~nonce:1L and val_b = regular_packets ~nonce:2L in
  let validate_pass pass =
    let arr = if pass land 1 = 0 then val_a else val_b in
    for f = 0 to flows - 1 do
      let p = arr.(f) in
      Tva.Router.process router ~in_interface:0 p;
      (match p.Wire.Packet.shim with Some s -> s.Wire.Cap_shim.ptr <- 0 | None -> ())
    done
  in
  validate_pass 1 (* warmup with the B nonces: pass 0's A nonces all mismatch *);
  let before = snapshot (Tva.Router.counters router) in
  let validate_m = measure ~flows ~passes validate_pass in
  check_counters ~label:"validate" ~before ~after:(Tva.Router.counters router)
    ~expect_field:(fun c -> c.Tva.Router.regular_validated)
    ~expected:(flows * passes);

  (* --- cached-nonce path ----------------------------------------------- *)
  (* Leave every cache entry holding nonce A, then time nonce-only packets
     carrying A: pure lookup + charge. *)
  validate_pass (if passes land 1 = 0 then 0 else 1);
  let cached_packets =
    Array.init flows (fun f ->
        let shim =
          Wire.Cap_shim.regular
            ~nonce:(if passes land 1 = 0 then 1L else 2L)
            ~caps:[] ~n_kb ~t_sec ~renewal:false ()
        in
        Wire.Packet.make ~shim ~src:(src f) ~dst ~created:0. (Wire.Packet.Raw 64))
  in
  let cached_pass _pass =
    for f = 0 to flows - 1 do
      Tva.Router.process router ~in_interface:0 cached_packets.(f)
    done
  in
  cached_pass 0 (* warmup *);
  let before = snapshot (Tva.Router.counters router) in
  let cached_m = measure ~flows ~passes cached_pass in
  check_counters ~label:"cached-nonce" ~before ~after:(Tva.Router.counters router)
    ~expect_field:(fun c -> c.Tva.Router.regular_cached)
    ~expected:(flows * passes);

  (* --- legacy path ----------------------------------------------------- *)
  let legacy_packets =
    Array.init flows (fun f -> Wire.Packet.make ~src:(src f) ~dst ~created:0. (Wire.Packet.Raw 64))
  in
  let legacy_pass _pass =
    for f = 0 to flows - 1 do
      Tva.Router.process router ~in_interface:0 legacy_packets.(f)
    done
  in
  legacy_pass 0 (* warmup *);
  let before = snapshot (Tva.Router.counters router) in
  let legacy_m = measure ~flows ~passes legacy_pass in
  check_counters ~label:"legacy" ~before ~after:(Tva.Router.counters router)
    ~expect_field:(fun c -> c.Tva.Router.legacy)
    ~expected:(flows * passes);

  (* --- cached-nonce path, observability counters attached --------------- *)
  (* A second router with the same secret master and id (so the caps minted
     above validate on it) but a live counter registry.  The counters are
     unconditional int-array stores, so both gates below should be slack:
     pps within [--obs-overhead-pct] of the bare cached path, and not one
     extra minor word per packet. *)
  let obs_counters = Obs.Counters.create ~name:"pps-bench-router" () in
  let router_obs =
    Tva.Router.create ~obs:obs_counters ~secret_master:"pps-bench" ~router_id:1 ~sim
      ~link_bps:1e9 ()
  in
  let obs_nonce = 3L in
  let obs_prime =
    Array.init flows (fun f ->
        let shim =
          Wire.Cap_shim.regular ~nonce:obs_nonce ~caps:[ caps.(f) ] ~n_kb ~t_sec ~renewal:false ()
        in
        Wire.Packet.make ~shim ~src:(src f) ~dst ~created:0. (Wire.Packet.Raw 64))
  in
  Array.iter (fun p -> Tva.Router.process router_obs ~in_interface:0 p) obs_prime;
  let obs_cached_packets =
    Array.init flows (fun f ->
        let shim =
          Wire.Cap_shim.regular ~nonce:obs_nonce ~caps:[] ~n_kb ~t_sec ~renewal:false ()
        in
        Wire.Packet.make ~shim ~src:(src f) ~dst ~created:0. (Wire.Packet.Raw 64))
  in
  let obs_cached_pass _pass =
    for f = 0 to flows - 1 do
      Tva.Router.process router_obs ~in_interface:0 obs_cached_packets.(f)
    done
  in
  obs_cached_pass 0 (* warmup *);
  let before_bare = snapshot (Tva.Router.counters router) in
  let before_obs = snapshot (Tva.Router.counters router_obs) in
  let obs_events_before = Obs.Counters.get obs_counters Obs.Event.Nonce_hit in
  (* The overhead comparison re-times the bare cached path head-to-head
     against the obs one rather than reusing [cached_m]: back-to-back
     alternating chunks are the only fair comparison on a machine with
     minutes-scale speed drift. *)
  let bare_duel_m, obs_cached_m = measure_duel ~flows ~passes cached_pass obs_cached_pass in
  check_counters ~label:"cached-nonce (duel)" ~before:before_bare
    ~after:(Tva.Router.counters router)
    ~expect_field:(fun c -> c.Tva.Router.regular_cached)
    ~expected:(flows * passes);
  check_counters ~label:"cached-nonce+obs" ~before:before_obs
    ~after:(Tva.Router.counters router_obs)
    ~expect_field:(fun c -> c.Tva.Router.regular_cached)
    ~expected:(flows * passes);
  (* The registry really was on the path: every timed packet hit the nonce
     counter. *)
  if Obs.Counters.get obs_counters Obs.Event.Nonce_hit - obs_events_before <> flows * passes
  then begin
    Printf.eprintf "FATAL: obs cached-nonce path did not tick the nonce_hit counter\n";
    exit 1
  end;
  let obs_overhead = 100. *. (bare_duel_m.pps -. obs_cached_m.pps) /. bare_duel_m.pps in
  let obs_extra_words =
    obs_cached_m.minor_words_per_packet -. bare_duel_m.minor_words_per_packet
  in

  (* --- cached-nonce path, obs + telemetry tick --------------------------- *)
  (* The obs router again, now with a telemetry ring snapshotting its
     counters once per pass — one tick per [flows] packets, the cadence a
     100 ms interval has at line rate.  Head-to-head against the plain obs
     pass: the tick must cost under [--telemetry-overhead-pct] percent of
     cached-nonce pps and allocate nothing (the tick path is unsafe float
     stores into preallocated rings). *)
  let ts = Obs.Timeseries.create ~interval:1.0 () in
  Obs.Timeseries.add ts ~name:"nonce_hits" ~mode:Obs.Timeseries.Cumulative
    (Obs.Timeseries.Cell (obs_counters, Obs.Event.to_int Obs.Event.Nonce_hit));
  Obs.Timeseries.add ts ~name:"demoted" ~mode:Obs.Timeseries.Cumulative
    (Obs.Timeseries.Cell (obs_counters, Obs.Event.to_int Obs.Event.Demoted));
  Obs.Timeseries.add ts ~name:"packets" ~mode:Obs.Timeseries.Cumulative
    (Obs.Timeseries.Cell (obs_counters, Obs.Event.to_int Obs.Event.Packets_in));
  let tick_no = ref 0 in
  let telemetry_pass pass =
    obs_cached_pass pass;
    incr tick_no;
    Obs.Timeseries.tick ts ~time:(float_of_int !tick_no)
  in
  telemetry_pass 0 (* warmup; also freezes the channel set *);
  let before_obs = snapshot (Tva.Router.counters router_obs) in
  let obs_ref_m, telemetry_m = measure_duel ~flows ~passes obs_cached_pass telemetry_pass in
  check_counters ~label:"cached-nonce (telemetry duel)" ~before:before_obs
    ~after:(Tva.Router.counters router_obs)
    ~expect_field:(fun c -> c.Tva.Router.regular_cached)
    ~expected:(2 * flows * passes);
  (* The ring really recorded: every timed telemetry pass stored one
     window, and the nonce-hit deltas over those windows sum to the side's
     packet count. *)
  if Obs.Timeseries.written ts < passes then begin
    Printf.eprintf "FATAL: telemetry ring recorded %d windows, wanted >= %d\n"
      (Obs.Timeseries.written ts) passes;
    exit 1
  end;
  let telemetry_overhead = 100. *. (obs_ref_m.pps -. telemetry_m.pps) /. obs_ref_m.pps in
  let telemetry_extra_words =
    telemetry_m.minor_words_per_packet -. obs_ref_m.minor_words_per_packet
  in

  (* --- cached-nonce path, batched --------------------------------------- *)
  (* Same router, same packets: [Router.process_batch] against the
     sequential loop, head-to-head in alternating chunks.  The speedup gate
     is a ratio inside one report, so it holds on any machine — the batch
     path must beat the sequential path by [--batch-speedup-min] on the
     strength of its hoisted epoch stamp, sentinel-based cache probe and
     batch-local counter flush alone. *)
  let batch_pass _pass = Tva.Router.process_batch router ~in_interface:0 cached_packets in
  batch_pass 0 (* warmup *);
  let before = snapshot (Tva.Router.counters router) in
  let seq_ref_m, batch_m = measure_duel ~flows ~passes cached_pass batch_pass in
  check_counters ~label:"cached-nonce (batch duel)" ~before ~after:(Tva.Router.counters router)
    ~expect_field:(fun c -> c.Tva.Router.regular_cached)
    ~expected:(2 * flows * passes);
  let batch_speedup = batch_m.pps /. seq_ref_m.pps in

  (* --- cached-nonce path, sharded ---------------------------------------- *)
  (* K shard routers sharing the bench router's secret and id (the caps
     minted above validate on every shard), packets partitioned once by
     flow hash, each shard's stream processed on its own domain.  Minor
     words are a per-domain counter, so the row reports pps/ns only. *)
  let shards = max 1 !shards in
  let sp =
    Forwarder.Shardpath.create ~k:shards ~secret_master:"pps-bench" ~router_id:1 ~sim
      ~link_bps:1e9 ()
  in
  let shard_nonce = 4L in
  Array.iteri
    (fun f (cap : Wire.Cap_shim.cap) ->
      let shim =
        Wire.Cap_shim.regular ~nonce:shard_nonce ~caps:[ cap ] ~n_kb ~t_sec ~renewal:false ()
      in
      let p = Wire.Packet.make ~shim ~src:(src f) ~dst ~created:0. (Wire.Packet.Raw 64) in
      Forwarder.Shardpath.process sp ~in_interface:0 p)
    caps;
  let shard_packets =
    Array.init flows (fun f ->
        let shim =
          Wire.Cap_shim.regular ~nonce:shard_nonce ~caps:[] ~n_kb ~t_sec ~renewal:false ()
        in
        Wire.Packet.make ~shim ~src:(src f) ~dst ~created:0. (Wire.Packet.Raw 64))
  in
  Forwarder.Shardpath.repeat_staged sp ~in_interface:0 ~passes:1 shard_packets (* warmup *);
  let before_shard = Forwarder.Shardpath.merged_counters sp in
  let t0 = Unix.gettimeofday () in
  Forwarder.Shardpath.repeat_staged sp ~in_interface:0 ~passes shard_packets;
  let shard_wall = Unix.gettimeofday () -. t0 in
  let after_shard = Forwarder.Shardpath.merged_counters sp in
  if after_shard.Tva.Router.regular_cached - before_shard.Tva.Router.regular_cached
     <> flows * passes
     || after_shard.Tva.Router.demotions <> before_shard.Tva.Router.demotions
  then begin
    Printf.eprintf "FATAL: sharded cached-nonce path strayed off the cached branch\n";
    exit 1
  end;
  let sharded_pps = float_of_int (flows * passes) /. shard_wall in
  let sharded_ns = shard_wall *. 1e9 /. float_of_int (flows * passes) in

  (* --- report ---------------------------------------------------------- *)
  let pp_path name m =
    Printf.printf "  %-13s %10.0f pps  %8.1f ns/pkt  %6.2f minor words/pkt\n%!" name m.pps
      m.ns_per_packet m.minor_words_per_packet
  in
  pp_path "cached-nonce" cached_m;
  pp_path "validate" validate_m;
  pp_path "request" request_m;
  pp_path "legacy" legacy_m;
  pp_path "cached+obs" obs_cached_m;
  Printf.printf "  obs counters: %+.2f%% pps, %+.3f minor words/pkt vs bare cached-nonce\n%!"
    obs_overhead obs_extra_words;
  pp_path "cached+telem" telemetry_m;
  Printf.printf "  telemetry tick: %+.2f%% pps, %+.3f minor words/pkt vs obs cached-nonce\n%!"
    telemetry_overhead telemetry_extra_words;
  pp_path "cached+batch" batch_m;
  Printf.printf "  batch speedup: %.2fx over same-run sequential cached-nonce (gate: >= %gx)\n%!"
    batch_speedup !batch_speedup_min;
  Printf.printf "  %-13s %10.0f pps  %8.1f ns/pkt  (%d shards, per-domain words not comparable)\n%!"
    "cached+shard" sharded_pps sharded_ns shards;
  let budget_ok = cached_m.minor_words_per_packet <= !budget in
  let validate_ok = validate_m.minor_words_per_packet <= !validate_budget in
  let request_ok = request_m.minor_words_per_packet <= !request_budget in
  let batch_budget_ok = batch_m.minor_words_per_packet <= !batch_budget in
  let batch_speedup_ok = batch_speedup >= !batch_speedup_min in
  let json_path name m =
    String.concat "\n"
      [
        Printf.sprintf "  \"%s\": {" name;
        Printf.sprintf "    \"pps\": %.0f," m.pps;
        Printf.sprintf "    \"ns_per_packet\": %.2f," m.ns_per_packet;
        Printf.sprintf "    \"minor_words_per_packet\": %.3f" m.minor_words_per_packet;
        "  }";
      ]
  in
  let json =
    String.concat "\n"
      [
        "{";
        "  \"benchmark\": \"router per-packet paths\",";
        Printf.sprintf "  \"flows\": %d," flows;
        Printf.sprintf "  \"passes\": %d," passes;
        Printf.sprintf "  \"packets_per_path\": %d," (flows * passes);
        json_path "cached_nonce" cached_m ^ ",";
        json_path "validate" validate_m ^ ",";
        json_path "request" request_m ^ ",";
        json_path "legacy" legacy_m ^ ",";
        json_path "cached_nonce_obs" obs_cached_m ^ ",";
        json_path "cached_nonce_telemetry" telemetry_m ^ ",";
        json_path "cached_nonce_batch" batch_m ^ ",";
        "  \"cached_nonce_sharded\": {";
        Printf.sprintf "    \"pps\": %.0f," sharded_pps;
        Printf.sprintf "    \"ns_per_packet\": %.2f," sharded_ns;
        Printf.sprintf "    \"shards\": %d" shards;
        "  },";
        Printf.sprintf "  \"batch_speedup\": %.2f," batch_speedup;
        Printf.sprintf "  \"batch_speedup_min\": %g," !batch_speedup_min;
        Printf.sprintf "  \"batch_speedup_ok\": %b," batch_speedup_ok;
        Printf.sprintf "  \"obs_overhead_pct\": %.2f," obs_overhead;
        Printf.sprintf "  \"obs_overhead_budget_pct\": %g," !obs_overhead_pct;
        Printf.sprintf "  \"obs_extra_minor_words\": %.3f," obs_extra_words;
        Printf.sprintf "  \"telemetry_overhead_pct\": %.2f," telemetry_overhead;
        Printf.sprintf "  \"telemetry_overhead_budget_pct\": %g," !obs_overhead_pct;
        Printf.sprintf "  \"telemetry_extra_minor_words\": %.3f," telemetry_extra_words;
        Printf.sprintf "  \"cached_nonce_budget_words\": %g," !budget;
        Printf.sprintf "  \"cached_nonce_budget_ok\": %b," budget_ok;
        Printf.sprintf "  \"validate_budget_words\": %g," !validate_budget;
        Printf.sprintf "  \"validate_budget_ok\": %b," validate_ok;
        Printf.sprintf "  \"request_budget_words\": %g," !request_budget;
        Printf.sprintf "  \"request_budget_ok\": %b," request_ok;
        Printf.sprintf "  \"batch_budget_words\": %g," !batch_budget;
        Printf.sprintf "  \"batch_budget_ok\": %b" batch_budget_ok;
        "}";
      ]
  in
  let oc = open_out !out_path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf "  -> %s\n%!" !out_path;
  let failed = ref false in
  let check_budget name actual limit =
    if actual > limit then begin
      Printf.eprintf "FATAL: %s path allocates %.2f minor words/packet (budget %g)\n" name actual
        limit;
      failed := true
    end
  in
  check_budget "cached-nonce" cached_m.minor_words_per_packet !budget;
  check_budget "validate" validate_m.minor_words_per_packet !validate_budget;
  check_budget "request" request_m.minor_words_per_packet !request_budget;
  check_budget "cached-nonce batch" batch_m.minor_words_per_packet !batch_budget;
  if not batch_speedup_ok then begin
    Printf.eprintf "FATAL: process_batch is only %.2fx the sequential cached-nonce pps (gate %gx)\n"
      batch_speedup !batch_speedup_min;
    failed := true
  end;
  (* --- per-stage ns budgets (Obs.Profile gauges) ------------------------- *)
  (* Each stage's ns/packet goes through a [Obs.Profile] gauge and is
     gated as a multiple of the same report's legacy ns — the legacy path
     does no TVA work, so the ratio cancels machine speed and the budgets
     hold on slow CI runners.  Multipliers leave about 2x headroom over
     the committed ratios. *)
  let profile = Obs.Profile.create ~clock:Unix.gettimeofday () in
  let stages =
    [
      ("cached_nonce", cached_m.ns_per_packet, 10.);
      ("cached_nonce_batch", batch_m.ns_per_packet, 6.);
      ("validate", validate_m.ns_per_packet, 25.);
      ("request", request_m.ns_per_packet, 20.);
    ]
  in
  let stage_rows =
    List.map
      (fun (name, ns, mult) ->
        let g =
          Obs.Profile.gauge profile ~name:("ns_per_packet/" ^ name) ~lo:1. ~hi:1e5 ~bins:40
        in
        Obs.Profile.observe g ns;
        let ratio = ns /. legacy_m.ns_per_packet in
        let ok = ratio <= mult in
        if not ok then begin
          Printf.eprintf "FATAL: %s stage costs %.1fx legacy ns (budget %gx)\n" name ratio mult;
          failed := true
        end;
        (name, ns, ratio, mult, ok))
      stages
  in
  if !profile_out <> "" then begin
    (* Gauge means come back out of the profile so the export is what the
       observability layer saw, not a re-derivation. *)
    let by_gauge =
      List.map (fun r -> (r.Obs.Report.g_name, r.Obs.Report.g_mean)) (Obs.Report.gauge_rows profile)
    in
    let stage_json (name, _, ratio, mult, ok) =
      let ns = List.assoc ("ns_per_packet/" ^ name) by_gauge in
      String.concat "\n"
        [
          Printf.sprintf "  \"%s\": {" name;
          Printf.sprintf "    \"ns_per_packet\": %.2f," ns;
          Printf.sprintf "    \"x_legacy\": %.2f," ratio;
          Printf.sprintf "    \"budget_x_legacy\": %g," mult;
          Printf.sprintf "    \"ok\": %b" ok;
          "  },";
        ]
    in
    let pj =
      String.concat "\n"
        ([
           "{";
           "  \"benchmark\": \"router per-stage ns budgets\",";
           Printf.sprintf "  \"legacy_ns_per_packet\": %.2f," legacy_m.ns_per_packet;
         ]
        @ List.map stage_json stage_rows
        @ [ Printf.sprintf "  \"all_ok\": %b" (List.for_all (fun (_, _, _, _, ok) -> ok) stage_rows); "}" ])
    in
    let oc = open_out !profile_out in
    output_string oc pj;
    output_char oc '\n';
    close_out oc;
    Printf.printf "  -> %s\n%!" !profile_out
  end;
  if obs_overhead > !obs_overhead_pct then begin
    Printf.eprintf "FATAL: obs counters cost %.2f%% cached-nonce pps (budget %g%%)\n" obs_overhead
      !obs_overhead_pct;
    failed := true
  end;
  (* Counters are unconditional stores into a preallocated array: the obs
     run must not allocate a single extra minor word per packet.  The
     epsilon only absorbs the per-measurement fixed costs amortized over
     flows*passes packets. *)
  if obs_extra_words > 0.01 then begin
    Printf.eprintf "FATAL: obs counters allocate %.3f extra minor words/packet\n" obs_extra_words;
    failed := true
  end;
  (* The telemetry tick is one float store per channel into a preallocated
     ring, amortized over [flows] packets — same budget as the counters:
     within [obs_overhead_pct] of the obs-only pps and no allocation. *)
  if telemetry_overhead > !obs_overhead_pct then begin
    Printf.eprintf "FATAL: telemetry tick costs %.2f%% cached-nonce pps (budget %g%%)\n"
      telemetry_overhead !obs_overhead_pct;
    failed := true
  end;
  if telemetry_extra_words > 0.01 then begin
    Printf.eprintf "FATAL: telemetry tick allocates %.3f extra minor words/packet\n"
      telemetry_extra_words;
    failed := true
  end;
  if !failed then exit 1
