(* Gates the unified cross-scheme fairness report (`tva_sim report`):
   runs the five-scheme flood sweep at -j 1 and -j N, checks the rendered
   markdown and JSON are byte-identical across parallelism, sanity-checks
   the headline ordering (per-sender-fair schemes stay up while the
   legacy internet collapses), and writes the canonical report JSON.

   Run with:            dune exec bench/report_bench.exe
   Smoke mode (CI):     dune exec bench/report_bench.exe -- --max-time 5 \
                          --transfers 10 --attackers 1,100 \
                          --out report_smoke.json --md report_smoke.md *)

let jobs = ref (Pool.default_jobs ())
let max_time = ref 120.
let transfers = ref 50
let attacker_counts = ref Workload.Report.default_attacker_counts
let out_path = ref "BENCH_report.json"
let md_path = ref ""

let spec =
  [
    ("--jobs", Arg.Set_int jobs, "N  worker domains for the parallel leg (default: all cores)");
    ( "--max-time",
      Arg.Set_float max_time,
      "S  simulated-time cutoff per run, seconds (default 120; use 5 for a smoke run)" );
    ("--transfers", Arg.Set_int transfers, "K  transfers per legitimate user (default 50)");
    ( "--attackers",
      Arg.String
        (fun s -> attacker_counts := List.map int_of_string (String.split_on_char ',' s)),
      "LIST  comma-separated attacker counts (default 1,10,40,100)" );
    ("--out", Arg.Set_string out_path, "PATH  where to write the report JSON");
    ("--md", Arg.Set_string md_path, "PATH  also write the markdown report here");
  ]

let usage = "report_bench [--jobs N] [--max-time S] [--transfers K] [--attackers LIST] [--out PATH]"

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_leg ~jobs =
  let base =
    {
      Workload.Experiment.default with
      Workload.Experiment.transfers_per_user = !transfers;
      max_time = !max_time;
    }
  in
  let t0 = Unix.gettimeofday () in
  let report = Workload.Report.run ~jobs ~attacker_counts:!attacker_counts ~base () in
  let wall = Unix.gettimeofday () -. t0 in
  (wall, report)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("report_bench: FAIL " ^ msg); exit 1) fmt

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let jobs = max 1 !jobs in
  let n_schemes = List.length Workload.Scenario.schemes in
  Printf.printf "report_bench: %d cells (%d schemes x %d attacker counts), max_time=%gs\n%!"
    (n_schemes * List.length !attacker_counts)
    n_schemes
    (List.length !attacker_counts)
    !max_time;
  let seq_wall, seq_report = run_leg ~jobs:1 in
  Printf.printf "  -j 1:  %.2fs\n%!" seq_wall;
  let par_wall, par_report = run_leg ~jobs in
  Printf.printf "  -j %d:  %.2fs\n%!" jobs par_wall;
  let seq_md = Workload.Report.to_markdown seq_report in
  let par_md = Workload.Report.to_markdown par_report in
  let seq_json = Workload.Report.to_json seq_report in
  let par_json = Workload.Report.to_json par_report in
  if not (String.equal seq_md par_md && String.equal seq_json par_json) then
    fail "report differs between -j 1 and -j %d" jobs;
  Printf.printf "  reports identical across parallelism\n%!";
  (* Headline sanity: every metric is in range, all registered schemes are
     present, and the schemes that police per-sender keep completing while
     the undefended internet collapses under the same flood. *)
  let headline = Workload.Report.headline seq_report in
  if List.length headline <> n_schemes then
    fail "headline has %d rows, expected %d" (List.length headline) n_schemes;
  let cell name =
    match List.find_opt (fun c -> c.Workload.Report.rc_scheme = name) headline with
    | Some c -> c
    | None -> fail "scheme %s missing from headline" name
  in
  List.iter
    (fun (c : Workload.Report.cell) ->
      if not (c.rc_fraction >= 0. && c.rc_fraction <= 1.) then
        fail "%s completion fraction %g out of range" c.rc_scheme c.rc_fraction;
      if not (c.rc_jain >= 0. && c.rc_jain <= 1. +. 1e-9) then
        fail "%s jain index %g out of range" c.rc_scheme c.rc_jain)
    headline;
  let internet = cell "internet" and tva = cell "tva" and netfence = cell "netfence" in
  if tva.rc_fraction < internet.rc_fraction then
    fail "tva completes less than the undefended internet under flood";
  if netfence.rc_fraction < internet.rc_fraction then
    fail "netfence completes less than the undefended internet under flood";
  write_file !out_path seq_json;
  if !md_path <> "" then write_file !md_path seq_md;
  Printf.printf "report_bench: OK, wrote %s\n%!" !out_path
