(* Times the stock chaos suite sequentially (-j 1) and on the parallel run
   engine (-j N), checks the two rendered tables are byte-identical,
   aggregates the recovery-time distribution across scenarios, and writes
   BENCH_chaos.json.  Exits non-zero if any recovery invariant fails or
   the worst re-acquisition latency lands over the documented bound — the
   robustness story's CI gate.

   Run with:            dune exec bench/chaos_bench.exe
   Smoke mode (CI):     dune exec bench/chaos_bench.exe -- --transfers 10 *)

let jobs = ref (Pool.default_jobs ())
let max_time = ref 120.
let transfers = ref 50
let out_path = ref "BENCH_chaos.json"

let spec =
  [
    ("--jobs", Arg.Set_int jobs, "N  worker domains for the parallel leg (default: all cores)");
    ( "--max-time",
      Arg.Set_float max_time,
      "S  simulated-time cutoff per run, seconds (default 120)" );
    ( "--transfers",
      Arg.Set_int transfers,
      "K  transfers per legitimate user (default 50; use 10 for a smoke run)" );
    ("--out", Arg.Set_string out_path, "PATH  where to write the JSON report");
  ]

let usage = "chaos_bench [--jobs N] [--max-time S] [--transfers K] [--out PATH]"

let run_leg ~jobs =
  let base =
    {
      Workload.Chaos.base_config with
      Workload.Experiment.transfers_per_user = !transfers;
      max_time = !max_time;
    }
  in
  let t0 = Unix.gettimeofday () in
  let outcomes = Workload.Scenario.chaos_suite ~jobs ~base () in
  let wall = Unix.gettimeofday () -. t0 in
  (wall, outcomes, Stats.Table.render (Workload.Chaos.render outcomes))

let () =
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let jobs = max 1 !jobs in
  let cells = List.length Workload.Chaos.default_suite in
  Printf.printf "chaos_bench: %d fault scenarios, transfers=%d, max_time=%gs\n%!" cells
    !transfers !max_time;
  let seq_wall, outcomes, seq_table = run_leg ~jobs:1 in
  Printf.printf "  -j 1:  %.2fs\n%!" seq_wall;
  let par_wall, _, par_table = run_leg ~jobs in
  Printf.printf "  -j %d:  %.2fs\n%!" jobs par_wall;
  let identical = String.equal seq_table par_table in
  let all_ok = Workload.Chaos.all_ok outcomes in
  let latencies =
    List.concat_map (fun o -> o.Workload.Chaos.oc_latencies) outcomes
  in
  let n_lat = List.length latencies in
  let worst = List.fold_left Float.max 0. latencies in
  let mean =
    if n_lat = 0 then 0. else List.fold_left ( +. ) 0. latencies /. float_of_int n_lat
  in
  let injected =
    List.fold_left
      (fun acc o ->
        acc + List.fold_left (fun a (_, n) -> a + n) 0 o.Workload.Chaos.oc_injected)
      0 outcomes
  in
  (* Per-scenario detector timings: when the incident detectors first
     noticed the fault (engage) and how long the run stayed inside
     incidents (recover).  Continuous faults hold their detectors engaged
     to run end, so their recover_s is the remaining run time — a floor,
     flagged by "recovered": false, not a measured recovery. *)
  let opt_s = function None -> "null" | Some v -> Printf.sprintf "%.3f" v in
  let scenario_rows =
    List.map
      (fun o ->
        String.concat "\n"
          [
            Printf.sprintf "    \"%s\": {" o.Workload.Chaos.oc_label;
            Printf.sprintf "      \"engage_s\": %s," (opt_s o.Workload.Chaos.oc_engage_s);
            Printf.sprintf "      \"recover_s\": %s," (opt_s o.Workload.Chaos.oc_recover_s);
            Printf.sprintf "      \"recovered\": %b," o.Workload.Chaos.oc_recovered;
            Printf.sprintf "      \"incidents\": %d"
              (List.length o.Workload.Chaos.oc_report.Obs.Report.incidents);
            "    }";
          ])
      outcomes
  in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  \"benchmark\": \"stock chaos suite recovery time\",";
        Printf.sprintf "  \"scenarios\": %d," cells;
        Printf.sprintf "  \"transfers_per_user\": %d," !transfers;
        Printf.sprintf "  \"max_time_s\": %g," !max_time;
        Printf.sprintf "  \"jobs\": %d," jobs;
        Printf.sprintf "  \"wall_seconds_j1\": %.3f," seq_wall;
        Printf.sprintf "  \"wall_seconds_jN\": %.3f," par_wall;
        Printf.sprintf "  \"speedup\": %.3f," (seq_wall /. par_wall);
        Printf.sprintf "  \"faults_injected\": %d," injected;
        Printf.sprintf "  \"reacquisitions\": %d," n_lat;
        Printf.sprintf "  \"reacquire_mean_s\": %.4f," mean;
        Printf.sprintf "  \"reacquire_worst_s\": %.4f," worst;
        Printf.sprintf "  \"reacquire_bound_s\": %.4f," Workload.Chaos.reacquire_bound;
        Printf.sprintf "  \"tables_identical\": %b," identical;
        Printf.sprintf "  \"all_invariants_ok\": %b," all_ok;
        "  \"scenarios_detail\": {";
        String.concat ",\n" scenario_rows;
        "  }";
        "}";
      ]
  in
  let oc = open_out !out_path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  Printf.printf
    "  %d injections, %d reacquisitions (mean %.3fs, worst %.3fs vs %.1fs bound)\n%!" injected
    n_lat mean worst Workload.Chaos.reacquire_bound;
  Printf.printf "  tables identical: %b, invariants ok: %b -> %s\n%!" identical all_ok
    !out_path;
  if not identical then begin
    prerr_endline "FATAL: parallel chaos table differs from sequential table";
    exit 1
  end;
  if not all_ok then begin
    prerr_endline "FATAL: a recovery invariant failed (see tva_sim chaos for details)";
    exit 1
  end
