type filter = {
  rate : float; (* bytes/s *)
  mutable tokens : float;
  mutable last : float;
}

(* Per-link state: drop attribution for detection, and the rate limiters
   pushback installs.  The limiter shapes: a head packet belonging to a
   limited aggregate waits in the queue for tokens rather than being
   dropped, exactly like Mahajan et al.'s rate-limited aggregate queues. *)
type link_state = {
  mutable window_tx : int;
  mutable window_drops : int;
  drops_by_dst : (int, int) Hashtbl.t;
  limits : (int, filter) Hashtbl.t; (* destination -> shaper *)
  mutable staged : Wire.Packet.t option;
}

type node_state = {
  node : Net.node;
  arrivals : (int * int, int) Hashtbl.t; (* (in-link id, dst) -> bytes this window *)
  mutable installed : (int * int) list; (* (in-link id, dst) limits we own *)
}

type t = {
  interval : float;
  drop_threshold : float;
  headroom : float;
  release_after : int;
  max_filters : int;
  sim : Sim.t;
  mutable registry : (Qdisc.stats * link_state) list; (* physical-identity keyed *)
  mutable nodes : node_state list;
  ages : (int * int, int) Hashtbl.t; (* quiet intervals per installed limit *)
}

let create ?(interval = 1.0) ?(drop_threshold = 0.05) ?(headroom = 0.10) ?(release_after = 3)
    ?(max_filters = 50) ~sim () =
  {
    interval;
    drop_threshold;
    headroom;
    release_after;
    max_filters;
    sim;
    registry = [];
    nodes = [];
    ages = Hashtbl.create 32;
  }

let link_state_of t (qdisc : Qdisc.t) =
  let rec find = function
    | [] -> None
    | (stats, ls) :: rest -> if stats == qdisc.Qdisc.stats then Some ls else find rest
  in
  find t.registry

let make_qdisc t ~bandwidth_bps =
  let inner =
    Droptail.create ~name:"pushback-fifo"
      ~capacity_packets:(Droptail.default_capacity_packets ~bandwidth_bps ~delay:0.06)
      ~capacity_bytes:(Droptail.default_capacity ~bandwidth_bps ~delay:0.06)
      ()
  in
  let ls =
    {
      window_tx = 0;
      window_drops = 0;
      drops_by_dst = Hashtbl.create 16;
      limits = Hashtbl.create 4;
      staged = None;
    }
  in
  let enqueue ~now p =
    let accepted = Qdisc.enqueue inner ~now p in
    if accepted then ls.window_tx <- ls.window_tx + 1
    else begin
      ls.window_drops <- ls.window_drops + 1;
      let dst = Wire.Addr.to_int p.Wire.Packet.dst in
      Hashtbl.replace ls.drops_by_dst dst
        (1 + Option.value ~default:0 (Hashtbl.find_opt ls.drops_by_dst dst))
    end;
    accepted
  in
  let refill f ~now =
    if now > f.last then begin
      f.tokens <- Float.min (f.rate *. 0.25) (f.tokens +. (f.rate *. (now -. f.last)));
      f.last <- now
    end
  in
  let release_staged ~now =
    match ls.staged with
    | None -> None
    | Some p -> begin
        match Hashtbl.find_opt ls.limits (Wire.Addr.to_int p.Wire.Packet.dst) with
        | None ->
            ls.staged <- None;
            Some p
        | Some f ->
            refill f ~now;
            let size = float_of_int (Wire.Packet.size p) in
            if f.tokens >= size then begin
              f.tokens <- f.tokens -. size;
              ls.staged <- None;
              Some p
            end
            else None
      end
  in
  let dequeue ~now =
    match release_staged ~now with
    | Some p -> p
    | None -> begin
        match ls.staged with
        | Some _ -> Qdisc.none
        | None -> begin
            let p = Qdisc.dequeue inner ~now in
            if p == Qdisc.none then Qdisc.none
            else begin
              ls.staged <- Some p;
              match release_staged ~now with Some p -> p | None -> Qdisc.none
            end
          end
      end
  in
  let next_ready ~now =
    match ls.staged with
    | Some p -> begin
        match Hashtbl.find_opt ls.limits (Wire.Addr.to_int p.Wire.Packet.dst) with
        | None -> now
        | Some f ->
            refill f ~now;
            let size = float_of_int (Wire.Packet.size p) in
            if f.tokens >= size then now else now +. ((size -. f.tokens) /. f.rate)
      end
    | None -> Qdisc.next_ready inner ~now
  in
  let qdisc =
    Qdisc.make_custom ~name:"pushback-link" ~enqueue ~dequeue ~next_ready
      ~packet_count:(fun () -> Qdisc.packet_count inner + if ls.staged = None then 0 else 1)
      ~byte_count:(fun () ->
        Qdisc.byte_count inner
        + match ls.staged with None -> 0 | Some p -> Wire.Packet.size p)
      ()
  in
  t.registry <- (qdisc.Qdisc.stats, ls) :: t.registry;
  qdisc

(* Contributing-link identification from sampled drop history, as in
   Mahajan et al.: the router examines a bounded sample of recent drops and
   attributes each to the incoming link it arrived on.  We emulate the
   sample by drawing [samples] attributions from the true per-link arrival
   distribution.  With few attackers the heavy links stand clearly above
   the per-link average and are clipped; with many attackers every link's
   expected sample count is O(1), so identification blurs — legitimate
   links get clipped and many attack links escape.  That estimation noise,
   not the allocation arithmetic, is what makes pushback degrade at high
   attacker counts (TVA paper Sec. 5.1). *)
let sample_contributors rng ~samples contributions =
  let total = List.fold_left (fun acc (_, d) -> acc +. d) 0. contributions in
  let counts = Array.make (List.length contributions) 0 in
  if total > 0. then
    for _ = 1 to samples do
      let x = Rng.float rng total in
      let rec pick i acc = function
        | [] -> ()
        | (_, d) :: rest ->
            if x < acc +. d then counts.(i) <- counts.(i) + 1 else pick (i + 1) (acc +. d) rest
      in
      pick 0 0. contributions
    done;
  counts

let set_limit t st in_link ~dst ~rate =
  match link_state_of t (Net.link_qdisc in_link) with
  | None -> ()
  | Some ls ->
      let key = (Net.link_id in_link, dst) in
      let already = List.mem key st.installed in
      (* A pushback daemon maintains a bounded number of rate-limit
         sessions; past the cap, further contributing links go unlimited —
         the reason the defense loses ground against very wide floods. *)
      if already || List.length st.installed < t.max_filters then begin
        Hashtbl.replace ls.limits dst { rate; tokens = rate *. 0.25; last = Sim.now t.sim };
        Hashtbl.replace t.ages key 0;
        if not already then st.installed <- key :: st.installed
      end

let clear_limit t st in_link ~dst =
  match link_state_of t (Net.link_qdisc in_link) with
  | None -> ()
  | Some ls ->
      let key = (Net.link_id in_link, dst) in
      Hashtbl.remove ls.limits dst;
      Hashtbl.remove t.ages key;
      st.installed <- List.filter (fun k -> k <> key) st.installed

let control_link t st out_link =
  match link_state_of t (Net.link_qdisc out_link) with
  | None -> ()
  | Some ds ->
      let total = ds.window_tx + ds.window_drops in
      let drop_rate = if total = 0 then 0. else float_of_int ds.window_drops /. float_of_int total in
      if drop_rate > t.drop_threshold then begin
        let dst_star =
          Hashtbl.fold
            (fun dst n acc ->
              match acc with Some (_, best) when best >= n -> acc | _ -> Some (dst, n))
            ds.drops_by_dst None
        in
        match dst_star with
        | None -> ()
        | Some (dst, _) ->
            let contributions =
              List.filter_map
                (fun in_link ->
                  match Hashtbl.find_opt st.arrivals (Net.link_id in_link, dst) with
                  | Some bytes when bytes > 0 -> Some (in_link, float_of_int bytes /. t.interval)
                  | Some _ | None -> None)
                (Net.links_into st.node)
            in
            let other_bytes =
              Hashtbl.fold
                (fun (_, d) bytes acc -> if d <> dst then acc + bytes else acc)
                st.arrivals 0
            in
            let other_rate = float_of_int other_bytes /. t.interval in
            let capacity = Net.link_bandwidth out_link /. 8. in
            let limit_total = Float.max 0. ((capacity *. (1. -. t.headroom)) -. other_rate) in
            (* Identify heavy contributors from a bounded drop-history
               sample (estimation noise is what blurs identification at
               high attacker counts), then clip the minimal top set whose
               limiting brings the aggregate under the limit. *)
            (* Mahajan's drop history is a bounded sample; 250 attributions
               separate heavy links cleanly when there are tens of sources
               and blur once there are a hundred similar ones.  Ties are
               broken randomly: equally-sampled links are genuinely
               indistinguishable to the router. *)
            let samples = min 250 (max 1 ds.window_drops) in
            let counts = sample_contributors (Sim.rng t.sim) ~samples contributions in
            let total_rate = List.fold_left (fun acc (_, d) -> acc +. d) 0. contributions in
            let est_rate c = float_of_int c /. float_of_int samples *. total_rate in
            let rng = Sim.rng t.sim in
            let by_count =
              List.map fst
                (List.sort
                   (fun ((_, c1), t1) ((_, c2), t2) ->
                     match compare c2 c1 with 0 -> compare t1 t2 | cmp -> cmp)
                   (List.map2
                      (fun (link, _) c -> ((link, c), Rng.bits64 rng))
                      contributions (Array.to_list counts)))
            in
            (* Greedily clip the largest estimated senders until what
               remains unclipped fits under the limit. *)
            let rec split clipped unclipped_rate = function
              | [] -> (clipped, unclipped_rate)
              | ((_, c) as entry) :: rest ->
                  if unclipped_rate <= limit_total then (clipped, unclipped_rate)
                  else split (entry :: clipped) (unclipped_rate -. est_rate c) rest
            in
            let clipped, unclipped_rate = split [] total_rate by_count in
            let m = List.length clipped in
            let share =
              if m = 0 then limit_total
              else Float.max 1000. ((limit_total -. unclipped_rate) /. float_of_int m)
            in
            (* Only install/refresh limits; release is age-based in [tick].
               Rates measured here are post-shaping for already-limited
               links, so "this link now looks innocent" must never clear a
               filter — that misreading is what causes limit/flood
               oscillation.  Heaviest contributors first, so they win the
               bounded filter slots. *)
            List.iter
              (fun (in_link, _) -> set_limit t st in_link ~dst ~rate:share)
              (List.rev clipped)
      end

let tick t st =
  List.iter (control_link t st) (Net.links_out_of st.node);
  (* A limited link whose queue is backlogged still has pre-limit demand
     above its allocation: keep its filter pinned. *)
  List.iter
    (fun ((lid, _) as key) ->
      match List.find_opt (fun l -> Net.link_id l = lid) (Net.links_into st.node) with
      | Some in_link when Qdisc.packet_count (Net.link_qdisc in_link) > 0 ->
          Hashtbl.replace t.ages key 0
      | Some _ | None -> ())
    st.installed;
  (* Withdraw limits that have gone unconfirmed for several intervals. *)
  let stale =
    List.filter
      (fun key ->
        match Hashtbl.find_opt t.ages key with
        | None -> true
        | Some age ->
            Hashtbl.replace t.ages key (age + 1);
            age + 1 > t.release_after)
      st.installed
  in
  List.iter
    (fun ((lid, dst) as key) ->
      (match
         List.find_opt (fun l -> Net.link_id l = lid) (Net.links_into st.node)
       with
      | Some in_link -> clear_limit t st in_link ~dst
      | None -> ());
      Hashtbl.remove t.ages key)
    stale;
  (* Fresh measurement window for this node's own queues. *)
  Hashtbl.reset st.arrivals;
  List.iter
    (fun out_link ->
      match link_state_of t (Net.link_qdisc out_link) with
      | None -> ()
      | Some ds ->
          ds.window_tx <- 0;
          ds.window_drops <- 0;
          Hashtbl.reset ds.drops_by_dst)
    (Net.links_out_of st.node)

let handler st node ~in_link (p : Wire.Packet.t) =
  (match in_link with
  | None -> ()
  | Some l ->
      let key = (Net.link_id l, Wire.Addr.to_int p.Wire.Packet.dst) in
      Hashtbl.replace st.arrivals key
        (Wire.Packet.size p + Option.value ~default:0 (Hashtbl.find_opt st.arrivals key)));
  Net.forward node p

let install t node =
  let st = { node; arrivals = Hashtbl.create 64; installed = [] } in
  t.nodes <- st :: t.nodes;
  Net.set_handler node (handler st);
  let rec loop () =
    ignore
      (Sim.schedule ~kind:Sim.Kind.agent t.sim ~delay:t.interval (fun () ->
           tick t st;
           loop ()))
  in
  loop ()

let active_filters t = List.fold_left (fun acc st -> acc + List.length st.installed) 0 t.nodes
