(* Fixed-bin histograms.  Two binnings share one representation: [Linear]
   keeps the original equal-width arithmetic bit-for-bit (existing users
   depend on exact bucket edges), [Log] spaces bucket edges geometrically
   so counts spanning decades — queue depths, latencies — resolve at every
   scale.  Nonpositive values cannot be log-binned and land in the
   underflow bucket. *)

type binning =
  | Linear of { width : float }
  | Log of { log_lo : float; log_width : float }

type t = {
  lo : float;
  hi : float;
  binning : binning;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  {
    lo;
    hi;
    binning = Linear { width = (hi -. lo) /. float_of_int bins };
    counts = Array.make bins 0;
    under = 0;
    over = 0;
    total = 0;
  }

let create_log ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create_log: bins must be positive";
  if lo <= 0. then invalid_arg "Histogram.create_log: lo must be positive";
  if hi <= lo then invalid_arg "Histogram.create_log: hi must exceed lo";
  let log_lo = log lo in
  {
    lo;
    hi;
    binning = Log { log_lo; log_width = (log hi -. log_lo) /. float_of_int bins };
    counts = Array.make bins 0;
    under = 0;
    over = 0;
    total = 0;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let i =
      match t.binning with
      | Linear { width } -> int_of_float ((x -. t.lo) /. width)
      | Log { log_lo; log_width } -> int_of_float ((log x -. log_lo) /. log_width)
    in
    let i = if i < 0 then 0 else if i >= Array.length t.counts then Array.length t.counts - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let bins t = Array.length t.counts

let bin_count t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_count: index out of range";
  t.counts.(i)

let underflow t = t.under
let overflow t = t.over

let bin_bounds t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.bin_bounds: index out of range";
  match t.binning with
  | Linear { width } -> (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width))
  | Log { log_lo; log_width } ->
      ( exp (log_lo +. (float_of_int i *. log_width)),
        exp (log_lo +. (float_of_int (i + 1) *. log_width)) )

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q must be in [0,1]";
  if t.total = 0 then nan
  else begin
    let target = q *. float_of_int t.total in
    let acc = ref (float_of_int t.under) in
    if !acc >= target then t.lo
    else begin
      let result = ref t.hi in
      (try
         for i = 0 to Array.length t.counts - 1 do
           let c = float_of_int t.counts.(i) in
           if !acc +. c >= target && c > 0. then begin
             let lo, hi = bin_bounds t i in
             let width =
               match t.binning with Linear { width } -> width | Log _ -> hi -. lo
             in
             result := lo +. (width *. ((target -. !acc) /. c));
             raise Exit
           end;
           acc := !acc +. c
         done
       with Exit -> ());
      !result
    end
  end

let merge_into acc x =
  let same_binning =
    match (acc.binning, x.binning) with
    | Linear { width = a }, Linear { width = b } -> a = b
    | Log { log_lo = a; log_width = aw }, Log { log_lo = b; log_width = bw } -> a = b && aw = bw
    | Linear _, Log _ | Log _, Linear _ -> false
  in
  if acc.lo <> x.lo || acc.hi <> x.hi || Array.length acc.counts <> Array.length x.counts
     || not same_binning
  then invalid_arg "Histogram.merge_into: shapes differ";
  for i = 0 to Array.length acc.counts - 1 do
    acc.counts.(i) <- acc.counts.(i) + x.counts.(i)
  done;
  acc.under <- acc.under + x.under;
  acc.over <- acc.over + x.over;
  acc.total <- acc.total + x.total

(* Aligned rendering: measure every bound and count string first, then pad,
   so multi-histogram dashboards line up column for column.  (The old pp
   printed "[%g,%g): n" raw, and widths jumped line to line.) *)
let pp fmt t =
  let lines = ref [] in
  if t.over > 0 then lines := (Printf.sprintf ">=%g" t.hi, "", t.over) :: !lines;
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bin_bounds t i in
      lines := (Printf.sprintf "[%g" lo, Printf.sprintf "%g)" hi, t.counts.(i)) :: !lines
    end
  done;
  if t.under > 0 then lines := (Printf.sprintf "<%g" t.lo, "", t.under) :: !lines;
  let lines = !lines in
  let wa = List.fold_left (fun w (a, _, _) -> max w (String.length a)) 0 lines in
  let wb = List.fold_left (fun w (_, b, _) -> max w (String.length b)) 0 lines in
  let wc =
    List.fold_left (fun w (_, _, c) -> max w (String.length (string_of_int c))) 0 lines
  in
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (a, b, c) ->
      let bounds = if b = "" then a else a ^ "," ^ b in
      let width = wa + wb + 1 in
      Format.fprintf fmt "%-*s %*d@," width bounds wc c)
    lines;
  Format.fprintf fmt "@]"
