(** Fixed-bin histograms with overflow/underflow buckets, used for
    transfer-time distributions and observability gauges. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [bins] equal-width buckets covering [\[lo, hi)]; values outside land in
    dedicated under/overflow counters.  Raises [Invalid_argument] on
    [bins <= 0] or [hi <= lo]. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** [bins] geometrically spaced buckets covering [\[lo, hi)] — bucket edges
    form a geometric progression, so values spanning decades (queue depths,
    latencies) resolve at every scale.  Values below [lo] (including zero
    and negatives, which cannot be log-binned) land in the underflow
    counter.  Raises [Invalid_argument] on [bins <= 0], [lo <= 0] or
    [hi <= lo]. *)

val add : t -> float -> unit
val count : t -> int
(** Total samples including under/overflow. *)

val bin_count : t -> int -> int
(** Samples in bucket [i] (0-based).  Raises [Invalid_argument] when out of
    range. *)

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** Inclusive-exclusive bounds of bucket [i]. *)

val bins : t -> int

val quantile : t -> float -> float
(** [quantile t q] approximates the [q]-quantile ([0 <= q <= 1]) by linear
    interpolation within the bucket; under/overflow clamp to [lo]/[hi]. *)

val merge_into : t -> t -> unit
(** [merge_into acc x] adds [x]'s buckets pointwise into [acc].  Both must
    share the same shape (bounds, bin count, binning); raises
    [Invalid_argument] otherwise.  Used to aggregate per-worker gauges
    after a parallel sweep. *)

val pp : Format.formatter -> t -> unit
(** A compact ASCII rendering, one line per non-empty bucket, with bounds
    and counts padded to stable column widths so stacked histograms align. *)
