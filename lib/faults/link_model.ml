let bernoulli ~rng ~p ~action _packet =
  if p > 0. && Rng.float rng 1.0 < p then action else Net.Fault_pass

let gilbert_elliott ~rng ~p_gb ~p_bg ~p_bad ~p_good =
  let bad = ref false in
  fun _packet ->
    (* Advance the chain first, then draw the loss: the packet sees the
       state it arrives in transition to. *)
    (if !bad then begin
       if Rng.float rng 1.0 < p_bg then bad := false
     end
     else if Rng.float rng 1.0 < p_gb then bad := true);
    let p = if !bad then p_bad else p_good in
    if p > 0. && Rng.float rng 1.0 < p then Net.Fault_lose else Net.Fault_pass

let reorder ~rng ~p ~delay _packet =
  if p > 0. && Rng.float rng 1.0 < p then Net.Fault_delay delay else Net.Fault_pass

(* Every model runs on every packet (keeping each model's own state and
   rng consumption independent of the others); the earliest non-pass
   decision is the one applied. *)
let compose models packet =
  List.fold_left
    (fun acc m ->
      let d = m packet in
      match acc with Net.Fault_pass -> d | _ -> acc)
    Net.Fault_pass models
