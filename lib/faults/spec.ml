type link_target = Bottleneck | Bottleneck_rev | Access_links | All_links
type router_target = Left | Right | All_routers
type target = Link of link_target | Router of router_target

type kind =
  | Loss of { p : float }
  | Burst of { p_gb : float; p_bg : float; p_bad : float; p_good : float }
  | Corrupt of { p : float }
  | Dup of { p : float }
  | Reorder of { p : float; delay : float }
  | Down of { at : float; dur : float }
  | Flap of { at : float; until : float; period : float; down : float }
  | Wipe of { at : float; every : float option }
  | Rotate of { at : float; every : float option }
  | Restart of { at : float; dur : float }

type clause = { kind : kind; target : target }
type t = clause list

let kind_name = function
  | Loss _ -> "loss"
  | Burst _ -> "burst"
  | Corrupt _ -> "corrupt"
  | Dup _ -> "dup"
  | Reorder _ -> "reorder"
  | Down _ -> "down"
  | Flap _ -> "flap"
  | Wipe _ -> "wipe"
  | Rotate _ -> "rotate"
  | Restart _ -> "restart"

let link_target_name = function
  | Bottleneck -> "bottleneck"
  | Bottleneck_rev -> "rbottleneck"
  | Access_links -> "access"
  | All_links -> "all"

let router_target_name = function Left -> "left" | Right -> "right" | All_routers -> "all"

let target_name = function
  | Link lt -> link_target_name lt
  | Router rt -> router_target_name rt

(* %g is compact and round-trips every value we emit through
   [float_of_string] (it may lose bits on pathological literals a user
   typed, but [to_string] only prints what [parse] already produced). *)
let f = Printf.sprintf "%g"

let params_of_kind = function
  | Loss { p } | Corrupt { p } | Dup { p } -> [ ("p", f p) ]
  | Burst { p_gb; p_bg; p_bad; p_good } ->
      [ ("pgb", f p_gb); ("pbg", f p_bg); ("pbad", f p_bad) ]
      @ (if p_good > 0. then [ ("pgood", f p_good) ] else [])
  | Reorder { p; delay } -> [ ("p", f p); ("delay", f delay) ]
  | Down { at; dur } -> [ ("at", f at); ("for", f dur) ]
  | Flap { at; until; period; down } ->
      [ ("at", f at) ]
      @ (if until < infinity then [ ("until", f until) ] else [])
      @ [ ("period", f period); ("down", f down) ]
  | Wipe { at; every } | Rotate { at; every } ->
      [ ("at", f at) ] @ (match every with None -> [] | Some e -> [ ("every", f e) ])
  | Restart { at; dur } -> [ ("at", f at); ("for", f dur) ]

let clause_to_string c =
  let params = params_of_kind c.kind in
  let head = kind_name c.kind ^ ":" ^ target_name c.target in
  if params = [] then head
  else head ^ ":" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) params)

let to_string t = String.concat ";" (List.map clause_to_string t)
let pp fmt t = Format.pp_print_string fmt (to_string t)

(* --- parsing --------------------------------------------------------- *)

let ( let* ) = Result.bind

let parse_link_target ~clause = function
  | "bottleneck" -> Ok Bottleneck
  | "rbottleneck" -> Ok Bottleneck_rev
  | "access" -> Ok Access_links
  | "all" -> Ok All_links
  | s -> Error (Printf.sprintf "%s: %S is not a link target" clause s)

let parse_router_target ~clause = function
  | "left" -> Ok Left
  | "right" -> Ok Right
  | "all" -> Ok All_routers
  | s -> Error (Printf.sprintf "%s: %S is not a router target" clause s)

let parse_params ~clause s =
  if String.trim s = "" then Ok []
  else
    List.fold_left
      (fun acc kv ->
        let* acc = acc in
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "%s: parameter %S is not key=value" clause kv)
        | Some i ->
            let key = String.trim (String.sub kv 0 i) in
            let v = String.trim (String.sub kv (i + 1) (String.length kv - i - 1)) in
            (match float_of_string_opt v with
            | Some x -> Ok ((key, x) :: acc)
            | None -> Error (Printf.sprintf "%s: %S is not a number" clause v)))
      (Ok []) (String.split_on_char ',' s)

let take ~clause params key =
  match List.assoc_opt key params with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing parameter %S" clause key)

let take_opt params key = List.assoc_opt key params

let take_default params key d = match List.assoc_opt key params with Some v -> v | None -> d

let check_prob ~clause key v =
  if v >= 0. && v <= 1. then Ok v
  else Error (Printf.sprintf "%s: %s=%g is not a probability" clause key v)

let check_keys ~clause ~allowed params =
  List.fold_left
    (fun acc (k, _) ->
      let* () = acc in
      if List.mem k allowed then Ok ()
      else Error (Printf.sprintf "%s: unknown parameter %S" clause k))
    (Ok ()) params

let parse_clause s =
  let clause = String.trim s in
  let parts = String.split_on_char ':' clause in
  let* kw, tgt, params_str =
    match parts with
    | [ kw; tgt ] -> Ok (String.trim kw, String.trim tgt, "")
    | [ kw; tgt; params ] -> Ok (String.trim kw, String.trim tgt, params)
    | _ -> Error (Printf.sprintf "%s: expected kind:target[:params]" clause)
  in
  let* params = parse_params ~clause params_str in
  let prob key =
    let* v = take ~clause params key in
    check_prob ~clause key v
  in
  let prob_default key d =
    match take_opt params key with Some v -> check_prob ~clause key v | None -> Ok d
  in
  let link kind ~allowed =
    let* () = check_keys ~clause ~allowed params in
    let* k = kind in
    let* lt = parse_link_target ~clause tgt in
    Ok { kind = k; target = Link lt }
  in
  let router kind ~allowed =
    let* () = check_keys ~clause ~allowed params in
    let* k = kind in
    let* rt = parse_router_target ~clause tgt in
    Ok { kind = k; target = Router rt }
  in
  match kw with
  | "loss" ->
      link ~allowed:[ "p" ]
        (let* p = prob "p" in
         Ok (Loss { p }))
  | "burst" ->
      link
        ~allowed:[ "pgb"; "pbg"; "pbad"; "pgood" ]
        (let* p_gb = prob "pgb" in
         let* p_bg = prob "pbg" in
         let* p_bad = prob "pbad" in
         let* p_good = prob_default "pgood" 0. in
         Ok (Burst { p_gb; p_bg; p_bad; p_good }))
  | "corrupt" ->
      link ~allowed:[ "p" ]
        (let* p = prob "p" in
         Ok (Corrupt { p }))
  | "dup" ->
      link ~allowed:[ "p" ]
        (let* p = prob "p" in
         Ok (Dup { p }))
  | "reorder" ->
      link ~allowed:[ "p"; "delay" ]
        (let* p = prob "p" in
         let delay = take_default params "delay" 0.05 in
         Ok (Reorder { p; delay }))
  | "down" ->
      link ~allowed:[ "at"; "for" ]
        (let* at = take ~clause params "at" in
         let dur = take_default params "for" 1.0 in
         Ok (Down { at; dur }))
  | "flap" ->
      link
        ~allowed:[ "at"; "until"; "period"; "down" ]
        (let* period = take ~clause params "period" in
         let at = take_default params "at" 0. in
         let until = take_default params "until" infinity in
         let down = take_default params "down" (period /. 2.) in
         if period <= 0. then Error (Printf.sprintf "%s: period must be positive" clause)
         else Ok (Flap { at; until; period; down }))
  | "wipe" ->
      router ~allowed:[ "at"; "every" ]
        (let* at = take ~clause params "at" in
         Ok (Wipe { at; every = take_opt params "every" }))
  | "rotate" ->
      router ~allowed:[ "at"; "every" ]
        (let* at = take ~clause params "at" in
         Ok (Rotate { at; every = take_opt params "every" }))
  | "restart" ->
      router ~allowed:[ "at"; "for" ]
        (let* at = take ~clause params "at" in
         let dur = take_default params "for" 0.5 in
         Ok (Restart { at; dur }))
  | _ -> Error (Printf.sprintf "%s: unknown fault kind %S" clause kw)

let parse s =
  let clauses =
    List.filter (fun c -> String.trim c <> "") (String.split_on_char ';' s)
  in
  if clauses = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        let* clause = parse_clause c in
        Ok (clause :: acc))
      (Ok []) clauses
    |> Result.map List.rev
