(** The injector: resolves a parsed {!Spec.t} against a live simulation —
    link fault hooks for the packet-level models, [Sim]-scheduled control
    events (tagged {!Sim.Kind.fault}) for link failures, flaps, cache
    wipes, secret rotations and restarts — and counts what actually fired.

    Determinism contract: [install] splits one child stream off [env_rng]
    per (clause, link) in spec order at install time, and every later draw
    happens inside the simulation's own event order, so a fault schedule
    is a pure function of the seed.  Runs are bit-identical across
    repeats and across [Pool] worker counts (each run owns its env).

    Injection deliberately lives here, against {!Net} hooks, and not
    inside [Tva.Router]: the router implements the paper's mechanisms and
    must not know it is being tested, and the same injector then exercises
    every comparison scheme unchanged (DESIGN.md §11). *)

type link_site = {
  ls_label : string;  (** e.g. ["bottleneck"], ["user0->left-router"] *)
  ls_class : Spec.link_target;
      (** which spec target selects it: [Bottleneck], [Bottleneck_rev] or
          [Access_links] (never [All_links], which selects every site) *)
  ls_link : Net.link;
}

type router_site = {
  rs_name : string;  (** node name, e.g. ["left-router"] *)
  rs_node : Net.node;
  rs_wipe_cache : unit -> unit;
      (** forget all per-flow state (models a route change or crash) *)
  rs_rotate_secret : unit -> unit;
      (** roll the pre-capability secret with no warning: outstanding
          capabilities stop validating here *)
}

val link_sites : Topology.t -> link_site list
(** {!Topology.labeled_links} classified for spec targeting. *)

type env = {
  env_sim : Sim.t;
  env_rng : Rng.t;  (** the injector's private stream; split per clause *)
  env_links : link_site list;
  env_routers : router_site list;
      (** capability routers in creation order ([\[\]] for schemes with no
          wipe/rotate notion — router clauses then no-op) *)
  env_obs : Obs.Counters.t;
      (** counts [Fault_injected] for scheduled control events; per-packet
          link faults are counted by the {!Obs.Bridge} off the
          [Net.Link_fault] trace event instead, so nothing double-counts *)
}

type t
(** An installed fault schedule with its per-clause fire counters. *)

val install : env -> Spec.t -> t
(** Installs every clause.  Link-model clauses targeting the same link
    compose (each model sees every packet; the earliest non-pass decision
    per packet is applied).  A clause whose target matches no site — e.g.
    [wipe:left] under a scheme with no routers — installs nothing and
    keeps a zero count. *)

val injected : t -> (string * int) list
(** Per clause, in spec order: the canonical clause string and how many
    times it fired (packets hit for link models, control firings — one per
    failure window, wipe, rotation or restart — for scheduled clauses). *)

val total_injected : t -> int
(** Sum of {!injected} over all clauses. *)
