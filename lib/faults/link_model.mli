(** Per-packet link fault models, as stateful decision closures suitable
    for {!Net.link_set_fault}.

    Every model draws from the {!Rng.t} it was built with — one dedicated
    stream per installed clause, split from the injector's stream at
    install time — so a fault schedule is a pure function of the seed and
    the packet sequence, and reruns (at any [--jobs]) are bit-identical.
    Each call consumes a bounded number of draws, and the models share no
    global state. *)

val bernoulli :
  rng:Rng.t -> p:float -> action:Net.fault_action -> Wire.Packet.t -> Net.fault_action
(** Independently with probability [p], return [action]; otherwise pass.
    Loss, corruption and duplication are all Bernoulli models over
    different actions. *)

val gilbert_elliott :
  rng:Rng.t ->
  p_gb:float ->
  p_bg:float ->
  p_bad:float ->
  p_good:float ->
  Wire.Packet.t ->
  Net.fault_action
(** The classic two-state burst-loss chain.  The state advances once per
    transmitted packet: from good to bad with probability [p_gb], back
    with [p_bg]; the packet is then lost with [p_bad] in the bad state and
    [p_good] in the good one.  Expected sojourn in the bad state is
    [1 / p_bg] packets — losses cluster, which is what defeats protocols
    that only tolerate independent loss. *)

val reorder : rng:Rng.t -> p:float -> delay:float -> Wire.Packet.t -> Net.fault_action
(** With probability [p], hold the packet for [delay] extra seconds of
    propagation so later packets overtake it. *)

val compose :
  (Wire.Packet.t -> Net.fault_action) list -> Wire.Packet.t -> Net.fault_action
(** Consult the models in order; the first non-pass decision wins.  Every
    model still advances its own state on every packet (a Gilbert-Elliott
    chain keeps ticking while a loss model ahead of it fires), keeping
    each model's schedule independent of the others. *)
