type expectation = {
  exp_injected : bool;
  exp_demotions : bool;
  exp_reacquire : bool;
  exp_latency_bound : float;
  exp_min_fraction : float;
}

let relaxed =
  {
    exp_injected = false;
    exp_demotions = false;
    exp_reacquire = false;
    exp_latency_bound = infinity;
    exp_min_fraction = 0.;
  }

type check = { ck_name : string; ck_ok : bool; ck_detail : string }
type verdict = { ok : bool; checks : check list }

let zeros = lazy (Array.make Obs.Event.count 0)

let row counters name =
  match List.assoc_opt name counters with Some arr -> arr | None -> Lazy.force zeros

let get arr ev = arr.(Obs.Event.to_int ev)

let demotion_reasons =
  [
    Obs.Event.Demoted_header_full;
    Obs.Event.Demoted_bad_cap;
    Obs.Event.Demoted_cap_expired;
    Obs.Event.Demoted_no_cap;
    Obs.Event.Demoted_bytes_exhausted;
    Obs.Event.Demoted_cache_full;
    Obs.Event.Demoted_over_limit;
  ]

(* Run [per_router] over every named router row; the check fails on the
   first violation, whose detail names the router and the numbers. *)
let per_router_check ~name counters router_names per_router =
  let rec go = function
    | [] -> { ck_name = name; ck_ok = true; ck_detail = "all routers" }
    | r :: rest -> (
        match per_router r (row counters r) with
        | None -> go rest
        | Some detail -> { ck_name = name; ck_ok = false; ck_detail = detail })
  in
  go router_names

let check exp ~counters ~router_names ~injected ~reacquire_latencies ~fraction =
  let fault_fired =
    if not exp.exp_injected then
      { ck_name = "fault-fired"; ck_ok = true; ck_detail = "not required" }
    else
      {
        ck_name = "fault-fired";
        ck_ok = injected > 0;
        ck_detail =
          (if injected > 0 then Printf.sprintf "%d injections" injected
           else "spec installed but nothing fired (check timing vs run length)");
      }
  in
  let sum_over ev =
    List.fold_left (fun acc r -> acc + get (row counters r) ev) 0 router_names
  in
  let class_partition =
    per_router_check ~name:"class-partition" counters router_names (fun r arr ->
        let inp = get arr Obs.Event.Packets_in in
        let parts =
          get arr Obs.Event.Legacy_in + get arr Obs.Event.Request_in
          + get arr Obs.Event.Regular_in
        in
        if inp = parts then None
        else Some (Printf.sprintf "%s: packets_in=%d but class sum=%d" r inp parts))
  in
  let regular_partition =
    per_router_check ~name:"regular-partition" counters router_names (fun r arr ->
        let reg = get arr Obs.Event.Regular_in in
        let parts = get arr Obs.Event.Nonce_hit + get arr Obs.Event.Nonce_miss in
        if reg = parts then None
        else Some (Printf.sprintf "%s: regular_in=%d but hit+miss=%d" r reg parts))
  in
  let demotion_reasons_check =
    per_router_check ~name:"demotion-reasons" counters router_names (fun r arr ->
        let demoted = get arr Obs.Event.Demoted in
        let reasons = List.fold_left (fun acc ev -> acc + get arr ev) 0 demotion_reasons in
        if demoted = reasons then None
        else Some (Printf.sprintf "%s: demoted=%d but reason sum=%d" r demoted reasons))
  in
  let demote_not_drop =
    per_router_check ~name:"demote-not-drop" counters router_names (fun r arr ->
        let miss = get arr Obs.Event.Nonce_miss in
        let accounted = get arr Obs.Event.Regular_validated + get arr Obs.Event.Demoted in
        if miss <= accounted then None
        else
          Some
            (Printf.sprintf "%s: %d nonce misses but only %d validated+demoted" r miss
               accounted))
  in
  let demotions_observed =
    let demoted = sum_over Obs.Event.Demoted in
    if not exp.exp_demotions then
      { ck_name = "demotions-observed"; ck_ok = true; ck_detail = "not required" }
    else
      {
        ck_name = "demotions-observed";
        ck_ok = demoted > 0;
        ck_detail =
          (if demoted > 0 then Printf.sprintf "%d demotions" demoted
           else "expected demotions, saw none");
      }
  in
  let reacquire =
    let n = List.length reacquire_latencies in
    let worst = List.fold_left Float.max 0. reacquire_latencies in
    if exp.exp_reacquire && n = 0 then
      {
        ck_name = "reacquire-latency";
        ck_ok = false;
        ck_detail = "expected reacquisition, saw none";
      }
    else if n > 0 && worst > exp.exp_latency_bound then
      {
        ck_name = "reacquire-latency";
        ck_ok = false;
        ck_detail =
          Printf.sprintf "worst %.3fs over the %.3fs bound (%d reacquisitions)" worst
            exp.exp_latency_bound n;
      }
    else
      {
        ck_name = "reacquire-latency";
        ck_ok = true;
        ck_detail =
          (if n = 0 then "not required"
           else Printf.sprintf "%d reacquisitions, worst %.3fs" n worst);
      }
  in
  let degradation =
    {
      ck_name = "smooth-degradation";
      ck_ok = fraction >= exp.exp_min_fraction;
      ck_detail =
        Printf.sprintf "completion %.3f vs floor %.3f" fraction exp.exp_min_fraction;
    }
  in
  let checks =
    [
      fault_fired;
      class_partition;
      regular_partition;
      demotion_reasons_check;
      demote_not_drop;
      demotions_observed;
      reacquire;
      degradation;
    ]
  in
  { ok = List.for_all (fun c -> c.ck_ok) checks; checks }

let pp_verdict fmt v =
  List.iter
    (fun c ->
      Format.fprintf fmt "%s %-19s %s@." (if c.ck_ok then "  ok" else "FAIL") c.ck_name
        c.ck_detail)
    v.checks
