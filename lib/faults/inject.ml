type link_site = { ls_label : string; ls_class : Spec.link_target; ls_link : Net.link }

type router_site = {
  rs_name : string;
  rs_node : Net.node;
  rs_wipe_cache : unit -> unit;
  rs_rotate_secret : unit -> unit;
}

type env = {
  env_sim : Sim.t;
  env_rng : Rng.t;
  env_links : link_site list;
  env_routers : router_site list;
  env_obs : Obs.Counters.t;
}

type t = { counts : (string * int ref) list }

let link_sites topo =
  List.map
    (fun (label, link) ->
      let cls =
        match label with
        | "bottleneck" -> Spec.Bottleneck
        | "rbottleneck" -> Spec.Bottleneck_rev
        | _ -> Spec.Access_links
      in
      { ls_label = label; ls_class = cls; ls_link = link })
    (Topology.labeled_links topo)

let link_selected (lt : Spec.link_target) site =
  match lt with Spec.All_links -> true | lt -> lt = site.ls_class

let router_selected (rt : Spec.router_target) site =
  match rt with
  | Spec.All_routers -> true
  | Spec.Left -> String.length site.rs_name >= 4 && String.sub site.rs_name 0 4 = "left"
  | Spec.Right -> String.length site.rs_name >= 5 && String.sub site.rs_name 0 5 = "right"

(* One control-event firing: the clause's own count plus the obs event
   (packet-level faults are instead counted by the Net bridge off
   [Link_fault], so the injector must not also count them there). *)
let fire env cnt =
  incr cnt;
  Obs.Counters.incr env.env_obs Obs.Event.Fault_injected

let schedule_at env ~time f =
  ignore (Sim.schedule_at ~kind:Sim.Kind.fault env.env_sim ~time f)

(* Per-link model accumulation: clauses targeting the same link compose.
   Every model runs on every packet — its state and rng consumption stay
   independent of the other clauses — and the earliest non-pass decision
   is applied (and counted against its clause alone). *)
let add_model hooks link cnt model =
  let models =
    match List.assq_opt link !hooks with
    | Some ms -> ms
    | None ->
        let ms = ref [] in
        hooks := (link, ms) :: !hooks;
        ms
  in
  models := (cnt, model) :: !models

let install_packet_clause env hooks cnt lt make_model =
  List.iter
    (fun site ->
      if link_selected lt site then
        (* One stream per (clause, link), split in deterministic order. *)
        add_model hooks site.ls_link cnt (make_model (Rng.split env.env_rng)))
    env.env_links

let down_window env cnt link ~at ~dur =
  schedule_at env ~time:at (fun () ->
      fire env cnt;
      Net.link_set_up link false);
  schedule_at env ~time:(at +. dur) (fun () -> Net.link_set_up link true)

let install_flap env cnt link ~at ~until ~period ~down =
  let rec edge k =
    let t0 = at +. (float_of_int k *. period) in
    if t0 < until then
      schedule_at env ~time:t0 (fun () ->
          fire env cnt;
          Net.link_set_up link false;
          schedule_at env ~time:(Float.min until (t0 +. down)) (fun () ->
              Net.link_set_up link true);
          edge (k + 1))
  in
  edge 0

let install_repeating env cnt ~at ~every action =
  let rec go time =
    schedule_at env ~time (fun () ->
        fire env cnt;
        action ();
        match every with Some e when e > 0. -> go (time +. e) | Some _ | None -> ())
  in
  go at

let install_restart env cnt site ~at ~dur =
  let links = Net.links_into site.rs_node @ Net.links_out_of site.rs_node in
  schedule_at env ~time:at (fun () ->
      fire env cnt;
      site.rs_wipe_cache ();
      site.rs_rotate_secret ();
      List.iter (fun l -> Net.link_set_up l false) links);
  schedule_at env ~time:(at +. dur) (fun () ->
      List.iter (fun l -> Net.link_set_up l true) links)

let install_clause env hooks (c : Spec.clause) =
  let cnt = ref 0 in
  (match (c.Spec.kind, c.Spec.target) with
  | Spec.Loss { p }, Spec.Link lt ->
      install_packet_clause env hooks cnt lt (fun rng ->
          Link_model.bernoulli ~rng ~p ~action:Net.Fault_lose)
  | Spec.Corrupt { p }, Spec.Link lt ->
      install_packet_clause env hooks cnt lt (fun rng ->
          Link_model.bernoulli ~rng ~p ~action:Net.Fault_lose)
  | Spec.Dup { p }, Spec.Link lt ->
      install_packet_clause env hooks cnt lt (fun rng ->
          Link_model.bernoulli ~rng ~p ~action:Net.Fault_dup)
  | Spec.Burst { p_gb; p_bg; p_bad; p_good }, Spec.Link lt ->
      install_packet_clause env hooks cnt lt (fun rng ->
          Link_model.gilbert_elliott ~rng ~p_gb ~p_bg ~p_bad ~p_good)
  | Spec.Reorder { p; delay }, Spec.Link lt ->
      install_packet_clause env hooks cnt lt (fun rng -> Link_model.reorder ~rng ~p ~delay)
  | Spec.Down { at; dur }, Spec.Link lt ->
      List.iter
        (fun site -> if link_selected lt site then down_window env cnt site.ls_link ~at ~dur)
        env.env_links
  | Spec.Flap { at; until; period; down }, Spec.Link lt ->
      List.iter
        (fun site ->
          if link_selected lt site then install_flap env cnt site.ls_link ~at ~until ~period ~down)
        env.env_links
  | Spec.Wipe { at; every }, Spec.Router rt ->
      let selected = List.filter (router_selected rt) env.env_routers in
      if selected <> [] then
        install_repeating env cnt ~at ~every (fun () ->
            List.iter (fun s -> s.rs_wipe_cache ()) selected)
  | Spec.Rotate { at; every }, Spec.Router rt ->
      let selected = List.filter (router_selected rt) env.env_routers in
      if selected <> [] then
        install_repeating env cnt ~at ~every (fun () ->
            List.iter (fun s -> s.rs_rotate_secret ()) selected)
  | Spec.Restart { at; dur }, Spec.Router rt ->
      List.iter
        (fun site -> if router_selected rt site then install_restart env cnt site ~at ~dur)
        env.env_routers
  | ( ( Spec.Loss _ | Spec.Burst _ | Spec.Corrupt _ | Spec.Dup _ | Spec.Reorder _ | Spec.Down _
      | Spec.Flap _ ),
      Spec.Router _ )
  | (Spec.Wipe _ | Spec.Rotate _ | Spec.Restart _), Spec.Link _ ->
      (* [Spec.parse] never produces these pairings. *)
      invalid_arg ("Faults.Inject: kind/target mismatch in " ^ Spec.clause_to_string c));
  (Spec.clause_to_string c, cnt)

let install env spec =
  let hooks : (Net.link * (int ref * (Wire.Packet.t -> Net.fault_action)) list ref) list ref =
    ref []
  in
  let counts = List.map (install_clause env hooks) spec in
  List.iter
    (fun (link, models) ->
      (* [add_model] consed, so reverse back to spec order. *)
      let models = List.rev !models in
      Net.link_set_fault link
        (Some
           (fun p ->
             List.fold_left
               (fun acc (cnt, m) ->
                 let d = m p in
                 match (acc, d) with
                 | Net.Fault_pass, Net.Fault_pass -> acc
                 | Net.Fault_pass, d ->
                     incr cnt;
                     d
                 | _, _ -> acc)
               Net.Fault_pass models)))
    !hooks;
  { counts }

let injected t = List.map (fun (label, cnt) -> (label, !cnt)) t.counts
let total_injected t = List.fold_left (fun acc (_, cnt) -> acc + !cnt) 0 t.counts
