(** The fault-injection specification: taxonomy, textual grammar, parser
    and canonical printer (DESIGN.md §11).

    A spec is a semicolon-separated list of clauses, each
    [kind:target\[:key=value,...\]]:

    {v
    loss:bottleneck:p=0.01          Bernoulli packet loss
    burst:bottleneck:pgb=0.02,pbg=0.3,pbad=0.5
                                    Gilbert-Elliott burst loss
    corrupt:bottleneck:p=0.005      corruption (lost after serialization,
                                    counted separately from loss)
    dup:access:p=0.01               duplication
    reorder:rbottleneck:p=0.02,delay=0.05
                                    reordering via extra propagation delay
    down:bottleneck:at=5,for=2      link failure window
    flap:bottleneck:at=5,until=30,period=4,down=1
                                    periodic down/up flapping
    wipe:left:at=10                 flow-cache wipe (models a route change:
                                    packets arrive at a router with no
                                    state for them, Sec. 3.8)
    rotate:right:at=10,every=20     router secret rotation (desync)
    restart:left:at=10,for=0.5      full restart: cache wipe + secret
                                    rotation + attached links down
    v}

    Link targets are [bottleneck], [rbottleneck] (the reverse direction),
    [access] (every access link) or [all]; router targets are [left],
    [right] or [all].  Whitespace around tokens is ignored.  Probabilities
    are per transmitted packet; times are virtual seconds. *)

(** Which links a link-level clause applies to. *)
type link_target =
  | Bottleneck  (** the congested direction *)
  | Bottleneck_rev
  | Access_links  (** every non-bottleneck link *)
  | All_links

(** Which routers a control clause applies to. *)
type router_target = Left | Right | All_routers

type target = Link of link_target | Router of router_target

type kind =
  | Loss of { p : float }  (** independent per-packet loss *)
  | Burst of { p_gb : float; p_bg : float; p_bad : float; p_good : float }
      (** Gilbert-Elliott: per-packet transition probabilities
          good->bad [p_gb] and bad->good [p_bg], loss probability [p_bad]
          in the bad state and [p_good] (default 0) in the good state *)
  | Corrupt of { p : float }
      (** the packet is destroyed after serialization — links have no
          checksum to salvage it, so corruption behaves as loss but is
          injected and counted as its own class *)
  | Dup of { p : float }  (** the packet is delivered twice *)
  | Reorder of { p : float; delay : float }
      (** selected packets propagate [delay] extra seconds, letting later
          packets overtake them *)
  | Down of { at : float; dur : float }  (** one failure window *)
  | Flap of { at : float; until : float; period : float; down : float }
      (** from [at] until [until], every [period] seconds the link goes
          down for [down] seconds *)
  | Wipe of { at : float; every : float option }
      (** flow-cache wipe, optionally repeating *)
  | Rotate of { at : float; every : float option }
      (** secret rotation without warning — outstanding capabilities stop
          validating at this router *)
  | Restart of { at : float; dur : float }
      (** cache wipe + secret rotation + all attached links down [dur] s *)

type clause = { kind : kind; target : target }

type t = clause list

val parse : string -> (t, string) result
(** Parses the grammar above.  [Error] names the offending clause and why:
    unknown kind, a target incompatible with the kind (link kinds take
    link targets, control kinds router targets), an unknown or unparsable
    parameter, a missing required one, or a probability outside [0, 1]. *)

val to_string : t -> string
(** Canonical form; [parse (to_string s)] recovers [s] exactly. *)

val clause_to_string : clause -> string

val kind_name : kind -> string
(** The clause's grammar keyword: ["loss"], ["burst"], ..., ["restart"]. *)

val pp : Format.formatter -> t -> unit
