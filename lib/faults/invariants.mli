(** The recovery-property checker: asserts, over one chaos run's
    observability output, the robustness claims of paper Sec. 3.8
    (DESIGN.md §11, EXPERIMENTS.md "Robustness").

    Accounting invariants (always checked, per router):
    - [class-partition]: packets_in = legacy_in + request_in + regular_in;
    - [regular-partition]: regular_in = nonce_hit + nonce_miss;
    - [demotion-reasons]: demoted = the sum of the reason-coded demotions;
    - [demote-not-drop]: nonce_miss <= regular_validated + demoted — every
      regular packet that missed the flow cache (after a wipe, rotation or
      restart) was re-validated or {e demoted}, never dropped by the
      router.  A router that answered state loss with a drop would leak
      packets here.

    Expectation-driven checks (per fault scenario):
    - [fault-fired]: the spec actually injected something;
    - [demotions-observed]: the injected fault actually exercised the
      demotion path;
    - [reacquire-latency]: every sender that lost its grant to a demotion
      echo re-acquired, within the documented bound (one RTT plus request
      queueing; the harness passes the scenario's bound);
    - [smooth-degradation]: the completion fraction stayed above the
      scenario's floor — degraded, not collapsed. *)

type expectation = {
  exp_injected : bool;
      (** the spec must actually fire at least once — catches scenarios
          whose scheduled times fall past the end of the run *)
  exp_demotions : bool;
      (** the fault must produce demotions (cache/secret faults do; pure
          link loss need not) *)
  exp_reacquire : bool;  (** at least one sender must re-acquire a grant *)
  exp_latency_bound : float;
      (** max allowed reacquisition latency in seconds; checked whenever
          any reacquisition happened, [infinity] disables *)
  exp_min_fraction : float;
      (** completion-fraction floor in [0, 1]; [0.] disables *)
}

val relaxed : expectation
(** Accounting invariants only: no demotions or reacquisitions required,
    no latency bound, no fraction floor. *)

type check = { ck_name : string; ck_ok : bool; ck_detail : string }

type verdict = { ok : bool; checks : check list }
(** [ok] iff every check passed. *)

val check :
  expectation ->
  counters:(string * int array) list ->
  router_names:string list ->
  injected:int ->
  reacquire_latencies:float list ->
  fraction:float ->
  verdict
(** [counters] is an {!Obs.Counters} snapshot (registry keyed by node
    name); rows named in [router_names] are held to the router accounting
    invariants.  A missing row counts as all zeroes.  [injected] is
    {!Inject.total_injected}; [reacquire_latencies] aggregates
    {!Tva.Host.reacquire_latencies} over the senders; [fraction] is the
    run's completion fraction. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** One line per check: [" ok demote-not-drop ..."] / ["FAIL ..."]. *)
