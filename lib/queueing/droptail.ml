(* Thin constructor: the FIFO datapath lives in [Qdisc], backed by a
   [Pktring] instead of [Stdlib.Queue] (no per-push cell allocation). *)

let default_capacity ~bandwidth_bps ~delay =
  let bdp = int_of_float (bandwidth_bps *. delay /. 8.) in
  max bdp (30 * 1500)

let default_capacity_packets ~bandwidth_bps ~delay =
  max 50 (default_capacity ~bandwidth_bps ~delay / 1000)

let create ?(name = "droptail") ?capacity_packets ~capacity_bytes () =
  if capacity_bytes <= 0 then invalid_arg "Droptail.create: capacity must be positive";
  (match capacity_packets with
  | Some n when n <= 0 -> invalid_arg "Droptail.create: packet capacity must be positive"
  | Some _ | None -> ());
  Qdisc.make ~name
    (Qdisc.Fifo
       {
         Qdisc.f_capacity_bytes = capacity_bytes;
         f_capacity_packets = (match capacity_packets with Some n -> n | None -> max_int);
         f_ring = Pktring.create ();
         f_bytes = 0;
       })
