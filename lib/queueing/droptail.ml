let default_capacity ~bandwidth_bps ~delay =
  let bdp = int_of_float (bandwidth_bps *. delay /. 8.) in
  max bdp (30 * 1500)

let default_capacity_packets ~bandwidth_bps ~delay =
  max 50 (default_capacity ~bandwidth_bps ~delay / 1000)

let create ?(name = "droptail") ?capacity_packets ~capacity_bytes () =
  if capacity_bytes <= 0 then invalid_arg "Droptail.create: capacity must be positive";
  (match capacity_packets with
  | Some n when n <= 0 -> invalid_arg "Droptail.create: packet capacity must be positive"
  | Some _ | None -> ());
  let q : Wire.Packet.t Queue.t = Queue.create () in
  let bytes = ref 0 in
  let enqueue ~now:_ p =
    let size = Wire.Packet.size p in
    let over_packets =
      match capacity_packets with Some n -> Queue.length q >= n | None -> false
    in
    if !bytes + size > capacity_bytes || over_packets then false
    else begin
      Queue.push p q;
      bytes := !bytes + size;
      true
    end
  in
  let dequeue ~now:_ =
    match Queue.take_opt q with
    | None -> None
    | Some p ->
        bytes := !bytes - Wire.Packet.size p;
        Some p
  in
  let next_ready ~now = if Queue.is_empty q then None else Some now in
  Qdisc.make ~name ~enqueue ~dequeue ~next_ready
    ~packet_count:(fun () -> Queue.length q)
    ~byte_count:(fun () -> !bytes) ()
