(* Thin constructor: the strict-priority datapath lives in [Qdisc]. *)

let create ?(name = "priority") ~classify ~classes () =
  if classes = [] then invalid_arg "Priority.create: need at least one class";
  Qdisc.make ~name (Qdisc.Priority { Qdisc.p_classify = classify; p_classes = Array.of_list classes })
