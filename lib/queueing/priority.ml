let create ?(name = "priority") ~classify ~classes () =
  if classes = [] then invalid_arg "Priority.create: need at least one class";
  let arr = Array.of_list classes in
  let n = Array.length arr in
  let enqueue ~now p =
    let i = classify p in
    let i = if i < 0 then 0 else if i >= n then n - 1 else i in
    arr.(i).Qdisc.enqueue ~now p
  in
  let dequeue ~now =
    let rec go i =
      if i >= n then None
      else begin
        match arr.(i).Qdisc.dequeue ~now with Some p -> Some p | None -> go (i + 1)
      end
    in
    go 0
  in
  let next_ready ~now =
    Array.fold_left
      (fun acc child ->
        match (child.Qdisc.next_ready ~now, acc) with
        | None, acc -> acc
        | Some t, None -> Some t
        | Some t, Some u -> Some (Float.min t u))
      None arr
  in
  Qdisc.make ~name ~enqueue ~dequeue ~next_ready
    ~packet_count:(fun () -> Array.fold_left (fun acc c -> acc + c.Qdisc.packet_count ()) 0 arr)
    ~byte_count:(fun () -> Array.fold_left (fun acc c -> acc + c.Qdisc.byte_count ()) 0 arr)
    ()
