(** Growable ring buffer of ints — DRR's round-robin ring of class keys.
    Steady-state push/pop allocate nothing. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> int -> unit
(** Appends at the tail, doubling the backing array when full. *)

exception Empty

val pop : t -> int
(** Removes and returns the head key.  Raises {!Empty} when empty (check
    {!is_empty} first on hot paths). *)
