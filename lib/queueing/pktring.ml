(* A growable ring buffer of packets: the storage behind every FIFO in the
   queueing layer.  [Stdlib.Queue] allocates a 3-word cell per push; this
   ring allocates only when it doubles its backing array, so a queue that
   has reached its working-set size pushes and pops with zero allocation.

   Empty slots hold [nil] (a shared dummy packet) rather than the last
   occupant, so popping a packet also releases the ring's reference to it
   — a drained queue never pins packets against the GC. *)

type t = {
  mutable buf : Wire.Packet.t array;
  mutable head : int; (* index of the oldest element; wraps via land mask *)
  mutable len : int;
}

(* The shared "no packet" sentinel.  Distinguished by physical identity;
   never enqueued (enqueueing it would make [pop]'s result ambiguous). *)
let nil =
  Wire.Packet.make
    ~src:(Wire.Addr.of_int 0)
    ~dst:(Wire.Addr.of_int 0)
    ~created:neg_infinity (Wire.Packet.Raw 0)

let initial_capacity = 8 (* power of two: index arithmetic is a mask *)

let create () = { buf = Array.make initial_capacity nil; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let[@inline] mask t i = i land (Array.length t.buf - 1)

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) nil in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.(mask t (t.head + i))
  done;
  t.buf <- buf;
  t.head <- 0

let push t p =
  if p == nil then invalid_arg "Pktring.push: cannot enqueue the nil sentinel";
  if t.len = Array.length t.buf then grow t;
  t.buf.(mask t (t.head + t.len)) <- p;
  t.len <- t.len + 1

(* [peek]/[pop] return [nil] when empty: the hot path tests with [==]
   instead of allocating an option. *)

let peek t = if t.len = 0 then nil else t.buf.(t.head)

let pop t =
  if t.len = 0 then nil
  else begin
    let i = t.head in
    let p = t.buf.(i) in
    t.buf.(i) <- nil;
    t.head <- mask t (i + 1);
    t.len <- t.len - 1;
    p
  end
