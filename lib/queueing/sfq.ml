let hash ~seed ~buckets key =
  (* Murmur3 fmix-style finalizer over the seed-perturbed key.  The seed is
     mixed in twice (xor before, add after the first avalanche round) so
     that a set of keys crafted to collide under one seed is scattered by
     another — the defense the paper's Sec. 4.4 hashing discussion assumes.
     (The previous Knuth multiplicative hash left the bucket index
     dependent on only a narrow band of key bits, so collisions survived
     any seed; its trailing [abs] was dead code after [lsr].) *)
  let h = key lxor seed in
  let h = h lxor (h lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = (h + seed) lxor (h lsr 29) in
  let h = h * 0x369DEA0F31A53F85 in
  let h = h lxor (h lsr 32) in
  (h land max_int) mod buckets

let create ?(name = "sfq") ?quantum ?queue_capacity_bytes ?(seed = 0) ~buckets ~flow_key () =
  if buckets <= 0 then invalid_arg "Sfq.create: buckets must be positive";
  Drr.create ~name ?quantum ?queue_capacity_bytes ~max_queues:buckets
    ~classify:(fun p -> hash ~seed ~buckets (flow_key p))
    ()
