type subqueue = {
  q : Wire.Packet.t Queue.t;
  mutable bytes : int;
  mutable deficit : int;
  mutable active : bool; (* present in the round-robin ring *)
}

type state = {
  quantum : int;
  queue_capacity : int;
  max_queues : int;
  classify : Wire.Packet.t -> int;
  table : (int, subqueue) Hashtbl.t;
  ring : int Queue.t; (* keys awaiting service, round-robin order *)
  mutable current : int option; (* key being served within its deficit *)
  mutable packets : int;
  mutable bytes : int;
}

let overflow_key = min_int
(* Shared queue for keys arriving once [max_queues] distinct classes exist. *)

(* [active_queues] recovers the DRR state from the boxed Qdisc.t through
   its [meta] field.  (The seed kept a global registry list for this, which
   was both a cross-run mutable global — off-limits now that sweeps run on
   parallel domains — and an O(registry) lookup.) *)
type Qdisc.meta += Drr_state of state

let subqueue_of st key =
  match Hashtbl.find_opt st.table key with
  | Some sq -> Some (key, sq)
  | None ->
      if Hashtbl.length st.table >= st.max_queues && key <> overflow_key then None
      else begin
        let sq = { q = Queue.create (); bytes = 0; deficit = 0; active = false } in
        Hashtbl.add st.table key sq;
        Some (key, sq)
      end

let enqueue st p =
  let size = Wire.Packet.size p in
  let key = st.classify p in
  let slot =
    match subqueue_of st key with
    | Some s -> Some s
    | None -> subqueue_of st overflow_key (* class table full: share the overflow queue *)
  in
  match slot with
  | None -> false
  | Some (key, sq) ->
      if sq.bytes + size > st.queue_capacity then false
      else begin
        Queue.push p sq.q;
        sq.bytes <- sq.bytes + size;
        st.packets <- st.packets + 1;
        st.bytes <- st.bytes + size;
        if not sq.active then begin
          sq.active <- true;
          sq.deficit <- 0;
          Queue.push key st.ring
        end;
        true
      end

let rec dequeue st =
  match st.current with
  | None ->
      if Queue.is_empty st.ring then None
      else begin
        let key = Queue.pop st.ring in
        (match Hashtbl.find_opt st.table key with
        | None -> ()
        | Some sq -> sq.deficit <- sq.deficit + st.quantum);
        st.current <- Some key;
        dequeue st
      end
  | Some key -> begin
      match Hashtbl.find_opt st.table key with
      | None ->
          st.current <- None;
          dequeue st
      | Some sq -> begin
          match Queue.peek_opt sq.q with
          | None ->
              (* Served dry within its deficit: leaves the ring, and its
                 state is reclaimed so the table only holds backlogged
                 classes. *)
              Hashtbl.remove st.table key;
              st.current <- None;
              dequeue st
          | Some head ->
              let size = Wire.Packet.size head in
              if size <= sq.deficit then begin
                let p = Queue.pop sq.q in
                sq.deficit <- sq.deficit - size;
                sq.bytes <- sq.bytes - size;
                st.packets <- st.packets - 1;
                st.bytes <- st.bytes - size;
                if Queue.is_empty sq.q then begin
                  Hashtbl.remove st.table key;
                  st.current <- None
                end;
                Some p
              end
              else begin
                (* Deficit exhausted: back to the tail of the ring, keeping
                   the accumulated deficit for the next round. *)
                Queue.push key st.ring;
                st.current <- None;
                dequeue st
              end
        end
    end

let create ?(name = "drr") ?(quantum = 1500) ?(queue_capacity_bytes = 65536) ?(max_queues = 4096)
    ~classify () =
  if quantum <= 0 then invalid_arg "Drr.create: quantum must be positive";
  if queue_capacity_bytes <= 0 then invalid_arg "Drr.create: queue capacity must be positive";
  if max_queues <= 0 then invalid_arg "Drr.create: max_queues must be positive";
  let st =
    {
      quantum;
      queue_capacity = queue_capacity_bytes;
      max_queues;
      classify;
      table = Hashtbl.create 64;
      ring = Queue.create ();
      current = None;
      packets = 0;
      bytes = 0;
    }
  in
  Qdisc.make ~meta:(Drr_state st) ~name
    ~enqueue:(fun ~now:_ p -> enqueue st p)
    ~dequeue:(fun ~now:_ -> dequeue st)
    ~next_ready:(fun ~now -> if st.packets > 0 then Some now else None)
    ~packet_count:(fun () -> st.packets)
    ~byte_count:(fun () -> st.bytes)
    ()

let active_queues (qdisc : Qdisc.t) =
  match qdisc.Qdisc.meta with
  | Some (Drr_state st) ->
      Hashtbl.fold (fun _ sq acc -> if sq.active then acc + 1 else acc) st.table 0
  | Some _ | None -> invalid_arg "Drr.active_queues: not a DRR qdisc"
