(* Thin constructor: the DRR datapath itself lives in [Qdisc] (direct
   dispatch over the concrete variant). *)

let overflow_key = Qdisc.overflow_key

let create ?(name = "drr") ?(quantum = 1500) ?(queue_capacity_bytes = 65536) ?(max_queues = 4096)
    ~classify () =
  if quantum <= 0 then invalid_arg "Drr.create: quantum must be positive";
  if queue_capacity_bytes <= 0 then invalid_arg "Drr.create: queue capacity must be positive";
  if max_queues <= 0 then invalid_arg "Drr.create: max_queues must be positive";
  Qdisc.make ~name
    (Qdisc.Drr
       {
         Qdisc.d_quantum = quantum;
         d_capacity = queue_capacity_bytes;
         d_max_queues = max_queues;
         d_classify = classify;
         d_table = Hashtbl.create 64;
         d_ring = Intring.create ();
         d_current = 0;
         d_has_current = false;
         d_packets = 0;
         d_bytes = 0;
         d_pool = [||];
         d_pool_len = 0;
       })

let active_queues (qdisc : Qdisc.t) =
  match qdisc.Qdisc.kind with
  | Qdisc.Drr d ->
      Hashtbl.fold (fun _ sq acc -> if sq.Qdisc.dc_active then acc + 1 else acc) d.Qdisc.d_table 0
  | _ -> invalid_arg "Drr.active_queues: not a DRR qdisc"
