(** Queueing disciplines.

    A qdisc sits between a node's forwarding decision and a link's
    transmitter.  The transmitter calls [dequeue] each time it finishes a
    packet; a qdisc that is nonempty but momentarily unservable (e.g. a
    rate-limited request queue out of tokens) answers [None] and reports
    via [next_ready] when it should be polled again. *)

type stats = {
  mutable enqueued : int;
  mutable dequeued : int;
  mutable dropped : int;
  mutable bytes_enqueued : int;
  mutable bytes_dequeued : int;
  mutable bytes_dropped : int;
}

type meta = ..
(** Discipline-private state a qdisc can attach to itself so introspection
    helpers (e.g. {!Drr.active_queues}) can recover it from the boxed [t]
    without any global registry — registries are cross-run mutable globals,
    which the parallel sweep engine forbids. *)

type t = {
  name : string;
  enqueue : now:float -> Wire.Packet.t -> bool;
      (** [false] means the packet was dropped (queue full or policy). *)
  dequeue : now:float -> Wire.Packet.t option;
  next_ready : now:float -> float option;
      (** [None] when empty; [Some at] when a packet will become servable at
          virtual time [at] (which may be [now]). *)
  packet_count : unit -> int;
  byte_count : unit -> int;
  stats : stats;
  meta : meta option;
}

val make :
  ?meta:meta ->
  name:string ->
  enqueue:(now:float -> Wire.Packet.t -> bool) ->
  dequeue:(now:float -> Wire.Packet.t option) ->
  next_ready:(now:float -> float option) ->
  packet_count:(unit -> int) ->
  byte_count:(unit -> int) ->
  unit ->
  t
(** Wraps the callbacks with automatic stats accounting. *)

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit
