(** Queueing disciplines.

    A qdisc sits between a node's forwarding decision and a link's
    transmitter.  The transmitter calls [dequeue] each time it finishes a
    packet; a qdisc that is nonempty but momentarily unservable (e.g. a
    rate-limited request queue out of tokens) answers {!none} and reports
    via [next_ready] when it should be polled again.

    The type is a concrete variant rather than a record of closures: the
    datapath functions dispatch over [kind] directly, so a composite like
    the TVA link scheduler (tri-class over token bucket over DRR) dequeues
    through one match chain with no indirect calls and — by design — no
    steady-state allocation: "no packet" is the physical sentinel {!none}
    (never a boxed [option]) and "never ready" is [infinity]. *)

type stats = {
  mutable enqueued : int;
  mutable dequeued : int;
  mutable dropped : int;
  mutable bytes_enqueued : int;
  mutable bytes_dequeued : int;
  mutable bytes_dropped : int;
  mutable hwm_packets : int;
      (** Occupancy high-water mark.  Tracked at leaf disciplines (FIFO,
          DRR) where it costs one compare per accepted packet; composite
          levels leave it 0 and report through their children. *)
}

type t = { name : string; stats : stats; kind : kind }

and kind =
  | Fifo of fifo
  | Drr of drr
  | Token_bucket of token_bucket
  | Tri_class of tri_class
  | Priority of priority
  | Custom of custom

and fifo = {
  f_capacity_bytes : int;
  f_capacity_packets : int;  (** [max_int] when unbounded *)
  f_ring : Pktring.t;
  mutable f_bytes : int;
}

and drr = {
  d_quantum : int;
  d_capacity : int;  (** per-class byte capacity *)
  d_max_queues : int;
  d_classify : Wire.Packet.t -> int;
  d_table : (int, drr_class) Hashtbl.t;  (** backlogged classes only *)
  d_ring : Intring.t;  (** keys awaiting service, round-robin order *)
  mutable d_current : int;
  mutable d_has_current : bool;
  mutable d_packets : int;
  mutable d_bytes : int;
  mutable d_pool : drr_class array;  (** recycled class records *)
  mutable d_pool_len : int;
}

and drr_class = {
  mutable dc_key : int;
  dc_ring : Pktring.t;
  mutable dc_bytes : int;
  mutable dc_deficit : int;
  mutable dc_active : bool;  (** present in the round-robin ring *)
}

and token_bucket = {
  tb_rate_bytes : float;
  tb_rate_fp : float;  (** bytes/s scaled by [2{^fp_shift}] *)
  tb_burst_fp : int;
  tb_horizon_fp : int;  (** min(burst, mtu): poll horizon when unstaged *)
  mutable tb_tokens : int;  (** fixed point: bytes * [2{^fp_shift}] *)
  tb_last : float array;  (** single cell: last refill time *)
  mutable tb_staged : Wire.Packet.t;  (** head awaiting tokens, or {!none} *)
  tb_inner : t;
}

and tri_class = {
  tc_classify : Wire.Packet.t -> int;  (** 0 request / 1 regular / _ legacy *)
  tc_request : t;
  tc_regular : t;
  tc_legacy : t;
}

and priority = {
  p_classify : Wire.Packet.t -> int;  (** clamped into [0, classes-1] *)
  p_classes : t array;
}

and custom = {
  c_enqueue : now:float -> Wire.Packet.t -> bool;
  c_dequeue : now:float -> Wire.Packet.t;  (** {!none} when unservable *)
  c_next_ready : now:float -> float;  (** [infinity] when never *)
  c_packet_count : unit -> int;
  c_byte_count : unit -> int;
}

val none : Wire.Packet.t
(** The "no packet" sentinel (= {!Pktring.nil}), compared by physical
    identity: [dequeue q ~now == Qdisc.none] means nothing was servable. *)

val enqueue : t -> now:float -> Wire.Packet.t -> bool
(** [false] means the packet was dropped (queue full or policy).  Stats are
    accounted at every level of a composite qdisc. *)

val dequeue : t -> now:float -> Wire.Packet.t
(** The next servable packet, or {!none}. *)

val dequeue_opt : t -> now:float -> Wire.Packet.t option
(** Convenience boxing of {!dequeue} for cold callers and tests. *)

val next_ready : t -> now:float -> float
(** Earliest virtual time a packet could become servable (may be [now]),
    or [infinity] when the qdisc is empty.  May be conservative — the
    transmitter re-polls — but never later than actual readiness. *)

val packet_count : t -> int
val byte_count : t -> int

val iter_nested : t -> (t -> unit) -> unit
(** Visit [t] and every nested qdisc, parent first, children in service
    order.  Lets observability walk a composite's per-level stats and
    residual occupancy without knowing its shape. *)

val tb_fp_shift : int
(** Token-bucket fixed-point scale: tokens are bytes times [2{^tb_fp_shift}],
    kept in an immediate [int] so refills do not box. *)

val overflow_key : int
(** DRR key under which packets share one queue once [d_max_queues]
    distinct classes are backlogged ([min_int], outside the tag space). *)

val make : name:string -> kind -> t

val make_custom :
  ?name:string ->
  enqueue:(now:float -> Wire.Packet.t -> bool) ->
  dequeue:(now:float -> Wire.Packet.t) ->
  next_ready:(now:float -> float) ->
  packet_count:(unit -> int) ->
  byte_count:(unit -> int) ->
  unit ->
  t
(** A discipline defined outside this module (e.g. pushback shapers, test
    doubles).  The callbacks use the sentinel conventions of {!dequeue} and
    {!next_ready}; stats accounting is layered on automatically. *)

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit
