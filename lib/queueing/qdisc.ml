type stats = {
  mutable enqueued : int;
  mutable dequeued : int;
  mutable dropped : int;
  mutable bytes_enqueued : int;
  mutable bytes_dequeued : int;
  mutable bytes_dropped : int;
}

type meta = ..

type t = {
  name : string;
  enqueue : now:float -> Wire.Packet.t -> bool;
  dequeue : now:float -> Wire.Packet.t option;
  next_ready : now:float -> float option;
  packet_count : unit -> int;
  byte_count : unit -> int;
  stats : stats;
  meta : meta option;
}

let fresh_stats () =
  { enqueued = 0; dequeued = 0; dropped = 0; bytes_enqueued = 0; bytes_dequeued = 0; bytes_dropped = 0 }

let make ?meta ~name ~enqueue ~dequeue ~next_ready ~packet_count ~byte_count () =
  let stats = fresh_stats () in
  let enqueue ~now p =
    let size = Wire.Packet.size p in
    let accepted = enqueue ~now p in
    if accepted then begin
      stats.enqueued <- stats.enqueued + 1;
      stats.bytes_enqueued <- stats.bytes_enqueued + size
    end
    else begin
      stats.dropped <- stats.dropped + 1;
      stats.bytes_dropped <- stats.bytes_dropped + size
    end;
    accepted
  in
  let dequeue ~now =
    match dequeue ~now with
    | None -> None
    | Some p ->
        stats.dequeued <- stats.dequeued + 1;
        stats.bytes_dequeued <- stats.bytes_dequeued + Wire.Packet.size p;
        Some p
  in
  { name; enqueue; dequeue; next_ready; packet_count; byte_count; stats; meta }

let pp_stats fmt s =
  Format.fprintf fmt "enq=%d deq=%d drop=%d (%dB in, %dB out, %dB dropped)" s.enqueued s.dequeued
    s.dropped s.bytes_enqueued s.bytes_dequeued s.bytes_dropped
