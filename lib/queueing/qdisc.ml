(* The queueing datapath.

   A qdisc used to be a record of closures (each discipline wrapping the
   next), which made the per-packet path three indirect calls deep, each
   returning a freshly boxed [option].  It is now a concrete variant: the
   disciplines' state lives here and [enqueue]/[dequeue]/[next_ready]
   dispatch over [kind] as a match chain, so the TVA link scheduler
   (tri-class -> token bucket -> DRR) runs as straight-line code.

   Allocation discipline (DESIGN.md Sec. 9): steady-state enqueue/dequeue
   allocate nothing.  FIFOs are ring buffers ([Pktring]), DRR's round-robin
   ring is an int ring ([Intring]), the token bucket counts fixed-point
   integer tokens, "no packet" is the physical sentinel [none] instead of
   [option], and "never ready" is [infinity] instead of [float option]. *)

type stats = {
  mutable enqueued : int;
  mutable dequeued : int;
  mutable dropped : int;
  mutable bytes_enqueued : int;
  mutable bytes_dequeued : int;
  mutable bytes_dropped : int;
  mutable hwm_packets : int;
}

let fresh_stats () =
  {
    enqueued = 0;
    dequeued = 0;
    dropped = 0;
    bytes_enqueued = 0;
    bytes_dequeued = 0;
    bytes_dropped = 0;
    hwm_packets = 0;
  }

let pp_stats fmt s =
  Format.fprintf fmt "enq=%d deq=%d drop=%d hwm=%d (%dB in, %dB out, %dB dropped)" s.enqueued
    s.dequeued s.dropped s.hwm_packets s.bytes_enqueued s.bytes_dequeued s.bytes_dropped

(* "No packet", by physical identity.  Shared with the rings' empty-slot
   filler so [Pktring.pop] on an empty ring and "dequeue found nothing"
   are the same value. *)
let none = Pktring.nil

type t = { name : string; stats : stats; kind : kind }

and kind =
  | Fifo of fifo
  | Drr of drr
  | Token_bucket of token_bucket
  | Tri_class of tri_class
  | Priority of priority
  | Custom of custom

(* --- droptail FIFO ----------------------------------------------------- *)
and fifo = {
  f_capacity_bytes : int;
  f_capacity_packets : int; (* [max_int] when unbounded *)
  f_ring : Pktring.t;
  mutable f_bytes : int;
}

(* --- deficit round robin ----------------------------------------------- *)
and drr = {
  d_quantum : int;
  d_capacity : int; (* per-class byte capacity *)
  d_max_queues : int;
  d_classify : Wire.Packet.t -> int;
  d_table : (int, drr_class) Hashtbl.t; (* backlogged classes only *)
  d_ring : Intring.t; (* keys awaiting service, round-robin order *)
  mutable d_current : int; (* key being served within its deficit... *)
  mutable d_has_current : bool; (* ...valid only when this is set *)
  mutable d_packets : int;
  mutable d_bytes : int;
  (* Drained class records are recycled through this stack so a class that
     reactivates costs no fresh record or ring allocation. *)
  mutable d_pool : drr_class array;
  mutable d_pool_len : int;
}

and drr_class = {
  mutable dc_key : int; (* the table key this record is filed under *)
  dc_ring : Pktring.t;
  mutable dc_bytes : int;
  mutable dc_deficit : int;
  mutable dc_active : bool; (* present in the round-robin ring *)
}

(* --- token bucket ------------------------------------------------------ *)
and token_bucket = {
  tb_rate_bytes : float; (* bytes per second, for readiness arithmetic *)
  tb_rate_fp : float; (* bytes/s scaled by 2^fp_shift, for refill *)
  tb_burst_fp : int;
  tb_horizon_fp : int; (* min(burst, mtu): poll horizon for an unstaged head *)
  mutable tb_tokens : int; (* fixed-point: bytes * 2^fp_shift, an immediate *)
  tb_last : float array; (* [|last refill time|]: flat float, unboxed store *)
  mutable tb_staged : Wire.Packet.t; (* head awaiting tokens; [none] if absent *)
  tb_inner : t;
}

(* --- strict classifiers ------------------------------------------------ *)
and tri_class = {
  tc_classify : Wire.Packet.t -> int; (* 0 request / 1 regular / _ legacy *)
  tc_request : t;
  tc_regular : t;
  tc_legacy : t;
}

and priority = {
  p_classify : Wire.Packet.t -> int; (* clamped into [0, classes-1] *)
  p_classes : t array;
}

(* --- escape hatch for disciplines defined outside this module ---------- *)
and custom = {
  c_enqueue : now:float -> Wire.Packet.t -> bool;
  c_dequeue : now:float -> Wire.Packet.t; (* [none] when unservable *)
  c_next_ready : now:float -> float; (* [infinity] when never *)
  c_packet_count : unit -> int;
  c_byte_count : unit -> int;
}

(* --- token-bucket fixed point ------------------------------------------ *)

(* Tokens are bytes scaled by 2^20: sub-microbyte resolution, so the
   truncation on refill shifts a release time by well under a nanosecond
   of virtual time, while a 4 GB burst still fits an immediate int with
   twenty bits to spare.  Being an immediate is the point — a mutable
   int64 or float record field would box on every store. *)
let tb_fp_shift = 20

let tb_refill tb ~now =
  let last = Array.unsafe_get tb.tb_last 0 in
  if now > last then begin
    let grant = tb.tb_rate_fp *. (now -. last) in
    let deficit = tb.tb_burst_fp - tb.tb_tokens in
    if grant >= float_of_int deficit then begin
      tb.tb_tokens <- tb.tb_burst_fp;
      Array.unsafe_set tb.tb_last 0 now
    end
    else begin
      (* Advance [last] only over the interval the whole units account
         for, so the fractional remainder keeps accruing.  Truncating it
         away (last <- now) live-locks: when a staged packet is one unit
         short, the re-poll interval is 1/rate_fp seconds, over which the
         truncated grant is 0 whole units — tokens freeze and the
         transmitter polls forever. *)
      let g = int_of_float grant in
      if g > 0 then begin
        tb.tb_tokens <- tb.tb_tokens + g;
        Array.unsafe_set tb.tb_last 0 (last +. (float_of_int g /. tb.tb_rate_fp))
      end
    end
  end

(* --- DRR class pool ---------------------------------------------------- *)

let drr_fresh_class () =
  { dc_key = 0; dc_ring = Pktring.create (); dc_bytes = 0; dc_deficit = 0; dc_active = false }

let drr_take_class d ~key =
  let sq =
    if d.d_pool_len = 0 then drr_fresh_class ()
    else begin
      d.d_pool_len <- d.d_pool_len - 1;
      d.d_pool.(d.d_pool_len)
    end
  in
  sq.dc_key <- key;
  sq.dc_bytes <- 0;
  sq.dc_deficit <- 0;
  sq.dc_active <- false;
  sq
  [@@inline]

let drr_release_class d sq =
  if d.d_pool_len = Array.length d.d_pool then begin
    let bigger = Array.make (max 8 (2 * d.d_pool_len)) sq in
    Array.blit d.d_pool 0 bigger 0 d.d_pool_len;
    d.d_pool <- bigger
  end;
  d.d_pool.(d.d_pool_len) <- sq;
  d.d_pool_len <- d.d_pool_len + 1

let overflow_key = min_int
(* Shared queue for keys arriving once [d_max_queues] distinct classes
   exist. *)

(* Find or create the class for [key]; once the class table is full, new
   keys share the overflow class.  (Mirrors the paper's bounded per-path-id
   and per-destination queues, Sec. 3.2/3.6.) *)
let rec drr_slot d key =
  match Hashtbl.find d.d_table key with
  | sq -> sq
  | exception Not_found ->
      if Hashtbl.length d.d_table >= d.d_max_queues && key <> overflow_key then
        drr_slot d overflow_key
      else begin
        let sq = drr_take_class d ~key in
        Hashtbl.add d.d_table key sq;
        sq
      end

(* --- the datapath ------------------------------------------------------ *)

let rec enqueue t ~now p =
  let size = Wire.Packet.size p in
  let accepted =
    match t.kind with
    | Fifo f ->
        if f.f_bytes + size > f.f_capacity_bytes || Pktring.length f.f_ring >= f.f_capacity_packets
        then false
        else begin
          Pktring.push f.f_ring p;
          f.f_bytes <- f.f_bytes + size;
          true
        end
    | Drr d ->
        let sq = drr_slot d (d.d_classify p) in
        if sq.dc_bytes + size > d.d_capacity then false
        else begin
          Pktring.push sq.dc_ring p;
          sq.dc_bytes <- sq.dc_bytes + size;
          d.d_packets <- d.d_packets + 1;
          d.d_bytes <- d.d_bytes + size;
          if not sq.dc_active then begin
            sq.dc_active <- true;
            sq.dc_deficit <- 0;
            Intring.push d.d_ring sq.dc_key
          end;
          true
        end
    | Token_bucket tb -> enqueue tb.tb_inner ~now p
    | Tri_class tc -> begin
        match tc.tc_classify p with
        | 0 -> enqueue tc.tc_request ~now p
        | 1 -> enqueue tc.tc_regular ~now p
        | _ -> enqueue tc.tc_legacy ~now p
      end
    | Priority pr ->
        let n = Array.length pr.p_classes in
        let i = pr.p_classify p in
        let i = if i < 0 then 0 else if i >= n then n - 1 else i in
        enqueue pr.p_classes.(i) ~now p
    | Custom c -> c.c_enqueue ~now p
  in
  let stats = t.stats in
  if accepted then begin
    stats.enqueued <- stats.enqueued + 1;
    stats.bytes_enqueued <- stats.bytes_enqueued + size;
    (* Occupancy high-water mark, kept at the leaves where it is one int
       compare; composite levels report the max of their children. *)
    match t.kind with
    | Fifo f ->
        let n = Pktring.length f.f_ring in
        if n > stats.hwm_packets then stats.hwm_packets <- n
    | Drr d -> if d.d_packets > stats.hwm_packets then stats.hwm_packets <- d.d_packets
    | Token_bucket _ | Tri_class _ | Priority _ | Custom _ -> ()
  end
  else begin
    stats.dropped <- stats.dropped + 1;
    stats.bytes_dropped <- stats.bytes_dropped + size
  end;
  accepted

(* DRR dequeue, structured exactly like the closure version it replaces:
   pick up the ring head as [current], spend its deficit, rotate it to the
   tail when the deficit runs dry, and reclaim its record (into the pool)
   the moment it goes empty so the table only holds backlogged classes. *)
and drr_dequeue d =
  if not d.d_has_current then begin
    if Intring.is_empty d.d_ring then none
    else begin
      let key = Intring.pop d.d_ring in
      (match Hashtbl.find d.d_table key with
      | sq -> sq.dc_deficit <- sq.dc_deficit + d.d_quantum
      | exception Not_found -> ());
      d.d_current <- key;
      d.d_has_current <- true;
      drr_dequeue d
    end
  end
  else begin
    let key = d.d_current in
    match Hashtbl.find d.d_table key with
    | exception Not_found ->
        d.d_has_current <- false;
        drr_dequeue d
    | sq ->
        let head = Pktring.peek sq.dc_ring in
        if head == none then begin
          (* Served dry within its deficit: leaves the ring and its record
             is reclaimed. *)
          Hashtbl.remove d.d_table key;
          drr_release_class d sq;
          d.d_has_current <- false;
          drr_dequeue d
        end
        else begin
          let size = Wire.Packet.size head in
          if size <= sq.dc_deficit then begin
            let p = Pktring.pop sq.dc_ring in
            sq.dc_deficit <- sq.dc_deficit - size;
            sq.dc_bytes <- sq.dc_bytes - size;
            d.d_packets <- d.d_packets - 1;
            d.d_bytes <- d.d_bytes - size;
            if Pktring.is_empty sq.dc_ring then begin
              Hashtbl.remove d.d_table key;
              drr_release_class d sq;
              d.d_has_current <- false
            end;
            p
          end
          else begin
            (* Deficit exhausted: back to the tail of the ring, keeping the
               accumulated deficit for the next round. *)
            Intring.push d.d_ring key;
            d.d_has_current <- false;
            drr_dequeue d
          end
        end
  end

and dequeue t ~now =
  let p =
    match t.kind with
    | Fifo f ->
        let p = Pktring.pop f.f_ring in
        if p != none then f.f_bytes <- f.f_bytes - Wire.Packet.size p;
        p
    | Drr d -> drr_dequeue d
    | Token_bucket tb -> begin
        tb_refill tb ~now;
        match tb.tb_staged with
        | staged when staged != none ->
            let size_fp = Wire.Packet.size staged lsl tb_fp_shift in
            if tb.tb_tokens >= size_fp then begin
              tb.tb_tokens <- tb.tb_tokens - size_fp;
              tb.tb_staged <- none;
              staged
            end
            else none
        | _ -> begin
            match dequeue tb.tb_inner ~now with
            | p when p == none -> none
            | p ->
                let size_fp = Wire.Packet.size p lsl tb_fp_shift in
                if tb.tb_tokens >= size_fp then begin
                  tb.tb_tokens <- tb.tb_tokens - size_fp;
                  p
                end
                else begin
                  (* Stage the head until tokens accrue; a one-slot buffer
                     rate-limits without a peek operation on the inner. *)
                  tb.tb_staged <- p;
                  none
                end
          end
      end
    | Tri_class tc -> begin
        (* Requests first — their own rate limiter keeps them below their
           link share — then regular, then legacy scavenges. *)
        match dequeue tc.tc_request ~now with
        | p when p != none -> p
        | _ -> begin
            match dequeue tc.tc_regular ~now with
            | p when p != none -> p
            | _ -> dequeue tc.tc_legacy ~now
          end
      end
    | Priority pr ->
        let n = Array.length pr.p_classes in
        let rec go i = if i >= n then none else
          match dequeue pr.p_classes.(i) ~now with
          | p when p != none -> p
          | _ -> go (i + 1)
        in
        go 0
    | Custom c -> c.c_dequeue ~now
  in
  if p != none then begin
    let stats = t.stats in
    stats.dequeued <- stats.dequeued + 1;
    stats.bytes_dequeued <- stats.bytes_dequeued + Wire.Packet.size p
  end;
  p

let dequeue_opt t ~now =
  match dequeue t ~now with p when p == none -> None | p -> Some p

(* Earliest time the head packet could be released, or [infinity] when the
   qdisc is empty.  The value may be conservative (the transmitter
   re-polls), never late. *)
let rec next_ready t ~now =
  match t.kind with
  | Fifo f -> if Pktring.is_empty f.f_ring then infinity else now
  | Drr d -> if d.d_packets > 0 then now else infinity
  | Token_bucket tb ->
      tb_refill tb ~now;
      let ready_at size_fp =
        if tb.tb_tokens >= size_fp then now
        else now +. (float_of_int (size_fp - tb.tb_tokens) /. tb.tb_rate_fp)
      in
      let staged = tb.tb_staged in
      if staged != none then ready_at (Wire.Packet.size staged lsl tb_fp_shift)
      else begin
        let at = next_ready tb.tb_inner ~now in
        if at = infinity then infinity
        else
          (* The inner head's exact size is unknown until staged; poll at
             the later of the inner readiness and a one-MTU token horizon.
             The transmitter will stage-and-recheck, so this is only a
             lower bound on readiness, never a miss. *)
          Float.max at (ready_at tb.tb_horizon_fp)
      end
  | Tri_class tc ->
      Float.min
        (next_ready tc.tc_request ~now)
        (Float.min (next_ready tc.tc_regular ~now) (next_ready tc.tc_legacy ~now))
  | Priority pr ->
      let acc = ref infinity in
      for i = 0 to Array.length pr.p_classes - 1 do
        acc := Float.min !acc (next_ready pr.p_classes.(i) ~now)
      done;
      !acc
  | Custom c -> c.c_next_ready ~now

let rec packet_count t =
  match t.kind with
  | Fifo f -> Pktring.length f.f_ring
  | Drr d -> d.d_packets
  | Token_bucket tb -> packet_count tb.tb_inner + if tb.tb_staged == none then 0 else 1
  | Tri_class tc -> packet_count tc.tc_request + packet_count tc.tc_regular + packet_count tc.tc_legacy
  | Priority pr -> Array.fold_left (fun acc c -> acc + packet_count c) 0 pr.p_classes
  | Custom c -> c.c_packet_count ()

let rec byte_count t =
  match t.kind with
  | Fifo f -> f.f_bytes
  | Drr d -> d.d_bytes
  | Token_bucket tb ->
      byte_count tb.tb_inner
      + if tb.tb_staged == none then 0 else Wire.Packet.size tb.tb_staged
  | Tri_class tc -> byte_count tc.tc_request + byte_count tc.tc_regular + byte_count tc.tc_legacy
  | Priority pr -> Array.fold_left (fun acc c -> acc + byte_count c) 0 pr.p_classes
  | Custom c -> c.c_byte_count ()

(* Walk a composite qdisc, parent before children, depth-first in service
   order (request, regular, legacy for the tri-class).  Observability reads
   per-level stats and residual occupancy through this without knowing the
   composite's shape. *)
let rec iter_nested t f =
  f t;
  match t.kind with
  | Fifo _ | Custom _ -> ()
  | Drr _ -> ()
  | Token_bucket tb -> iter_nested tb.tb_inner f
  | Tri_class tc ->
      iter_nested tc.tc_request f;
      iter_nested tc.tc_regular f;
      iter_nested tc.tc_legacy f
  | Priority pr -> Array.iter (fun c -> iter_nested c f) pr.p_classes

(* --- constructors ------------------------------------------------------ *)

let make ~name kind = { name; stats = fresh_stats (); kind }

let make_custom ?(name = "custom") ~enqueue ~dequeue ~next_ready ~packet_count ~byte_count () =
  make ~name
    (Custom
       {
         c_enqueue = enqueue;
         c_dequeue = dequeue;
         c_next_ready = next_ready;
         c_packet_count = packet_count;
         c_byte_count = byte_count;
       })
