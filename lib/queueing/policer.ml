(* A metering sibling of the token-bucket qdisc: same fixed-point token
   arithmetic (whole-unit grants so fractional credit keeps accruing), but
   no inner queue — [admit] is a pure conformance check, and the fill rate
   is mutable so an AIMD controller can retune it between packets. *)

type t = {
  mutable rate_bytes : float;
  mutable rate_fp : float;
  burst_fp : int;
  mutable tokens : int;
  last : float array; (* flat array so refills never box the float *)
}

let fp_one = float_of_int (1 lsl Qdisc.tb_fp_shift)

let create ~rate_bps ~burst_bytes =
  if rate_bps <= 0. then invalid_arg "Policer.create: rate must be positive";
  if burst_bytes <= 0 then invalid_arg "Policer.create: burst must be positive";
  let rate_bytes = rate_bps /. 8. in
  let burst_fp = burst_bytes lsl Qdisc.tb_fp_shift in
  {
    rate_bytes;
    rate_fp = rate_bytes *. fp_one;
    burst_fp;
    tokens = burst_fp;
    last = [| 0. |];
  }

let set_rate t ~rate_bps =
  if rate_bps <= 0. then invalid_arg "Policer.set_rate: rate must be positive";
  let rate_bytes = rate_bps /. 8. in
  t.rate_bytes <- rate_bytes;
  t.rate_fp <- rate_bytes *. fp_one

let rate_bps t = t.rate_bytes *. 8.

let refill t ~now =
  let last = Array.unsafe_get t.last 0 in
  if now > last then begin
    let grant = t.rate_fp *. (now -. last) in
    let deficit = t.burst_fp - t.tokens in
    if grant >= float_of_int deficit then begin
      t.tokens <- t.burst_fp;
      Array.unsafe_set t.last 0 now
    end
    else begin
      let g = int_of_float grant in
      if g > 0 then begin
        t.tokens <- t.tokens + g;
        Array.unsafe_set t.last 0 (last +. (float_of_int g /. t.rate_fp))
      end
    end
  end

let admit t ~now ~bytes =
  refill t ~now;
  let need = bytes lsl Qdisc.tb_fp_shift in
  if t.tokens >= need then begin
    t.tokens <- t.tokens - need;
    true
  end
  else false
