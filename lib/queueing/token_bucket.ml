type state = {
  rate_bytes_per_s : float;
  burst : float;
  inner : Qdisc.t;
  mutable tokens : float;
  mutable last : float;
  mutable staged : Wire.Packet.t option;
      (* Head packet pulled from [inner] but still waiting for tokens; a
         one-slot buffer lets us rate-limit without a peek operation. *)
}

let refill st ~now =
  if now > st.last then begin
    st.tokens <- Float.min st.burst (st.tokens +. (st.rate_bytes_per_s *. (now -. st.last)));
    st.last <- now
  end

let take_staged st =
  match st.staged with
  | None -> None
  | Some p ->
      let size = float_of_int (Wire.Packet.size p) in
      if st.tokens >= size then begin
        st.tokens <- st.tokens -. size;
        st.staged <- None;
        Some p
      end
      else None

let dequeue st ~now =
  refill st ~now;
  match take_staged st with
  | Some p -> Some p
  | None ->
      if st.staged <> None then None
      else begin
        match st.inner.Qdisc.dequeue ~now with
        | None -> None
        | Some p ->
            st.staged <- Some p;
            take_staged st
      end

let next_ready st ~now =
  refill st ~now;
  let ready_time size =
    if st.tokens >= size then now else now +. ((size -. st.tokens) /. st.rate_bytes_per_s)
  in
  match st.staged with
  | Some p -> Some (ready_time (float_of_int (Wire.Packet.size p)))
  | None -> begin
      match st.inner.Qdisc.next_ready ~now with
      | None -> None
      | Some at ->
          (* The inner head's exact size is unknown until staged; poll at
             the later of the inner readiness and a one-MTU token horizon.
             The transmitter will stage-and-recheck, so this is only a
             lower bound on readiness, never a miss. *)
          Some (Float.max at (ready_time (Float.min st.burst 1500.)))
    end

let create ?(name = "token-bucket") ~rate_bps ~burst_bytes ~inner () =
  if rate_bps <= 0. then invalid_arg "Token_bucket.create: rate must be positive";
  if burst_bytes <= 0 then invalid_arg "Token_bucket.create: burst must be positive";
  let st =
    {
      rate_bytes_per_s = rate_bps /. 8.;
      burst = float_of_int burst_bytes;
      inner;
      tokens = float_of_int burst_bytes;
      last = 0.;
      staged = None;
    }
  in
  Qdisc.make ~name
    ~enqueue:(fun ~now p -> inner.Qdisc.enqueue ~now p)
    ~dequeue:(fun ~now -> dequeue st ~now)
    ~next_ready:(fun ~now -> next_ready st ~now)
    ~packet_count:(fun () -> inner.Qdisc.packet_count () + if st.staged = None then 0 else 1)
    ~byte_count:(fun () ->
      inner.Qdisc.byte_count ()
      + match st.staged with None -> 0 | Some p -> Wire.Packet.size p)
    ()
