(* Thin constructor: the token-bucket datapath lives in [Qdisc].  Tokens
   are fixed-point bytes (an immediate int) and the last-refill time sits
   in a flat float array, so refills never box — see DESIGN.md Sec. 9. *)

let create ?(name = "token-bucket") ?(mtu = 1500) ~rate_bps ~burst_bytes ~inner () =
  if rate_bps <= 0. then invalid_arg "Token_bucket.create: rate must be positive";
  if burst_bytes <= 0 then invalid_arg "Token_bucket.create: burst must be positive";
  if mtu <= 0 then invalid_arg "Token_bucket.create: mtu must be positive";
  let rate_bytes = rate_bps /. 8. in
  let burst_fp = burst_bytes lsl Qdisc.tb_fp_shift in
  Qdisc.make ~name
    (Qdisc.Token_bucket
       {
         Qdisc.tb_rate_bytes = rate_bytes;
         tb_rate_fp = rate_bytes *. float_of_int (1 lsl Qdisc.tb_fp_shift);
         tb_burst_fp = burst_fp;
         tb_horizon_fp = min burst_fp (mtu lsl Qdisc.tb_fp_shift);
         tb_tokens = burst_fp;
         tb_last = [| 0. |];
         tb_staged = Qdisc.none;
         tb_inner = inner;
       })
