(** A rate limiter in front of another qdisc.

    TVA guarantees request packets a small fixed fraction of each link and
    also caps them at that fraction (paper Sec. 3.2, 5% default; the
    simulations use 1%).  The limiter shapes the *service* rate: packets
    stay queued in the inner qdisc and are released only when the bucket
    holds enough tokens, with [next_ready] telling the link transmitter
    when to poll again. *)

val create :
  ?name:string ->
  ?mtu:int ->
  rate_bps:float ->
  burst_bytes:int ->
  inner:Qdisc.t ->
  unit ->
  Qdisc.t
(** Raises [Invalid_argument] on nonpositive rate, burst, or mtu.
    [burst_bytes] must cover at least one MTU or full-size packets would
    never be serviceable.  [mtu] (default 1500) bounds the token horizon
    [next_ready] assumes for a not-yet-staged head packet. *)
