(** Deficit round robin fair queueing (Shreedhar & Varghese).

    TVA fair-queues request packets by path identifier and regular packets
    by destination address (paper Sec. 3.2 and 3.9).  DRR gives each active
    class a quantum of bytes per round in O(1) per packet, and its state is
    proportional to the number of active classes — which TVA bounds by the
    tag space / flow-cache size respectively.

    [max_queues] enforces that bound here: packets whose key would create a
    queue beyond the limit share a single overflow queue (FIFO among
    themselves), mirroring the paper's observation that uncached low-rate
    flows effectively receive FIFO service. *)

val overflow_key : int
(** Key under which packets share one queue once [max_queues] distinct
    classes are backlogged. *)

val create :
  ?name:string ->
  ?quantum:int ->
  ?queue_capacity_bytes:int ->
  ?max_queues:int ->
  classify:(Wire.Packet.t -> int) ->
  unit ->
  Qdisc.t
(** Defaults: quantum 1500 B (one MTU), 64 KB per class queue, 4096 classes.
    Raises [Invalid_argument] on nonpositive parameters. *)

val active_queues : Qdisc.t -> int
(** Number of classes currently backlogged.  Raises [Invalid_argument] if
    the qdisc was not created by this module. *)
