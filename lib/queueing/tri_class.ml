(* Thin constructor: the tri-class datapath lives in [Qdisc], where the
   request -> regular -> legacy dequeue is a direct match chain. *)

type cls = Request | Regular | Legacy

let classify_by_shim p =
  match p.Wire.Packet.shim with
  | None -> Legacy
  | Some shim ->
      if shim.Wire.Cap_shim.demoted then Legacy
      else begin
        match shim.Wire.Cap_shim.kind with
        | Wire.Cap_shim.Request _ -> Request
        | Wire.Cap_shim.Regular _ -> Regular
      end

let create ?(name = "tri-class") ~classify ~request ~regular ~legacy () =
  Qdisc.make ~name
    (Qdisc.Tri_class
       {
         Qdisc.tc_classify =
           (fun p -> match classify p with Request -> 0 | Regular -> 1 | Legacy -> 2);
         tc_request = request;
         tc_regular = regular;
         tc_legacy = legacy;
       })
