type cls = Request | Regular | Legacy

let classify_by_shim p =
  match p.Wire.Packet.shim with
  | None -> Legacy
  | Some shim ->
      if shim.Wire.Cap_shim.demoted then Legacy
      else begin
        match shim.Wire.Cap_shim.kind with
        | Wire.Cap_shim.Request _ -> Request
        | Wire.Cap_shim.Regular _ -> Regular
      end

let create ?(name = "tri-class") ~classify ~request ~regular ~legacy () =
  let children = [ request; regular; legacy ] in
  let enqueue ~now p =
    let child =
      match classify p with Request -> request | Regular -> regular | Legacy -> legacy
    in
    child.Qdisc.enqueue ~now p
  in
  let dequeue ~now =
    (* Requests first — their own rate limiter keeps them below their link
       share — then regular, then legacy scavenges. *)
    match request.Qdisc.dequeue ~now with
    | Some p -> Some p
    | None -> begin
        match regular.Qdisc.dequeue ~now with
        | Some p -> Some p
        | None -> legacy.Qdisc.dequeue ~now
      end
  in
  let next_ready ~now =
    List.fold_left
      (fun acc child ->
        match (child.Qdisc.next_ready ~now, acc) with
        | None, acc -> acc
        | Some t, None -> Some t
        | Some t, Some u -> Some (Float.min t u))
      None children
  in
  Qdisc.make ~name ~enqueue ~dequeue ~next_ready
    ~packet_count:(fun () -> List.fold_left (fun acc c -> acc + c.Qdisc.packet_count ()) 0 children)
    ~byte_count:(fun () -> List.fold_left (fun acc c -> acc + c.Qdisc.byte_count ()) 0 children)
    ()
