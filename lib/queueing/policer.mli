(** Token-bucket traffic meter with a retunable rate.

    The qdisc-level token bucket ([Token_bucket]) shapes: packets queue
    behind it and drain at the configured rate.  NetFence's access-router
    rate limiters instead need a {e policer}: a conformance check that
    drops non-conforming packets on the spot, with a fill rate an AIMD
    controller adjusts every control interval.  This module is that meter,
    on the same [Qdisc.tb_fp_shift] fixed-point arithmetic (whole-unit
    grants, so fractional credit accrues instead of being truncated
    away). *)

type t

val create : rate_bps:float -> burst_bytes:int -> t
(** Fresh meter, bucket full.  Raises [Invalid_argument] on non-positive
    rate or burst. *)

val admit : t -> now:float -> bytes:int -> bool
(** Refill for the elapsed time, then try to debit [bytes]: [true] means
    the packet conforms (tokens were consumed), [false] means it should be
    dropped.  [now] must not go backwards between calls. *)

val set_rate : t -> rate_bps:float -> unit
(** Retune the fill rate (AIMD step).  Accumulated tokens are kept; the
    burst cap is fixed at creation. *)

val rate_bps : t -> float
(** The current fill rate in bits per second. *)
