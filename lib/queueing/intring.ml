(* A growable ring buffer of ints: DRR's round-robin ring of class keys.
   Replaces [int Queue.t], whose every push allocated a cell (and boxed
   the key when polymorphic).  Steady-state push/pop allocate nothing. *)

type t = {
  mutable buf : int array;
  mutable head : int;
  mutable len : int;
}

let initial_capacity = 8 (* power of two *)

let create () = { buf = Array.make initial_capacity 0; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let[@inline] mask t i = i land (Array.length t.buf - 1)

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) 0 in
  for i = 0 to t.len - 1 do
    buf.(i) <- t.buf.(mask t (t.head + i))
  done;
  t.buf <- buf;
  t.head <- 0

let push t k =
  if t.len = Array.length t.buf then grow t;
  t.buf.(mask t (t.head + t.len)) <- k;
  t.len <- t.len + 1

exception Empty

let pop t =
  if t.len = 0 then raise Empty
  else begin
    let k = t.buf.(t.head) in
    t.head <- mask t (t.head + 1);
    t.len <- t.len - 1;
    k
  end
