(** Growable ring buffer of packets — the allocation-free FIFO backing the
    queueing disciplines.  Pushes and pops allocate nothing once the ring
    has grown to its working-set size; vacated slots are reset to {!nil} so
    the ring never pins dequeued packets against the GC. *)

type t

val nil : Wire.Packet.t
(** The shared "no packet" sentinel, compared by physical identity ([==]).
    Returned by {!peek}/{!pop} on an empty ring; rejected by {!push}. *)

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> Wire.Packet.t -> unit
(** Appends at the tail, doubling the backing array when full.  Raises
    [Invalid_argument] if given {!nil}. *)

val peek : t -> Wire.Packet.t
(** The head packet, or {!nil} when empty.  No allocation. *)

val pop : t -> Wire.Packet.t
(** Removes and returns the head packet, or {!nil} when empty. *)
