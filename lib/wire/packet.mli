(** Simulator packets.

    A packet couples addressing and a transport body with the optional
    protocol shims (TVA capability header, SIFF marking).  Its wire size is
    always computed from content, so a router that appends a pre-capability
    automatically makes the packet cost more link time — the overhead the
    paper accounts as "40 TCP/IP bytes plus 20 capability bytes". *)

type body =
  | Raw of int (** opaque flood/legacy payload; the int is total wire bytes *)
  | Tcp of Tcp_segment.t

type t = {
  id : int; (** unique per process, for tracing *)
  src : Addr.t;
  dst : Addr.t;
  created : float; (** virtual time the packet entered the network *)
  body : body;
  mutable shim : Cap_shim.t option; (** TVA capability header *)
  mutable siff : Siff_marking.t option;
  mutable nf : Nf_feedback.t option; (** NetFence congestion feedback *)
  mutable hops : int; (** decremented per router hop; dropped at zero *)
}

val make :
  ?shim:Cap_shim.t ->
  ?siff:Siff_marking.t ->
  ?nf:Nf_feedback.t ->
  src:Addr.t ->
  dst:Addr.t ->
  created:float ->
  body ->
  t

val size : t -> int
(** Current wire size in bytes. *)

val size_fast : t -> int
(** [size], with the dominant fast-path shape — raw body, nonce-only
    regular shim, no SIFF marking — served as a constant add instead of
    recomputing the shim's bit layout.  Always equal to [size]. *)

val copy : t -> t
(** A physically distinct packet with the same content: fresh [id], deep
    copies of the mutable shims, so the fault layer's duplication delivers
    two packets whose hop counts and header mutations evolve
    independently. *)

val is_tcp : t -> bool
val tcp : t -> Tcp_segment.t option

val flow_key : t -> int
(** A flow is a (source, destination) address pair (paper Sec. 3.5). *)

val flow_key_of : src:Addr.t -> dst:Addr.t -> int
val reverse_flow_key : t -> int

val default_hops : int

val pp : Format.formatter -> t -> unit
