type action = Incr | Decr

type token = { nf_router : int; nf_ts : int; nf_action : action; nf_mac : int64 }

type t = {
  mutable token : token option;
  mutable stamped : token option;
  mutable returned : token option;
}

let empty () = { token = None; stamped = None; returned = None }
let with_token tok = { token = Some tok; stamped = None; returned = None }
let copy t = { token = t.token; stamped = t.stamped; returned = t.returned }

let action_bit = function Incr -> 0 | Decr -> 1

(* The congestion feedback is monotone within a control interval: once any
   router on the path says "decrease", no later router may soften it back
   to "increase".  Stamping goes through this join so the property holds by
   construction. *)
let stamp t tok =
  match t.stamped with
  | Some { nf_action = Decr; _ } -> ()
  | _ -> t.stamped <- Some tok

let token_wire_size = 12
let base_wire_size = 4

let wire_size t =
  let slot = function None -> 0 | Some _ -> token_wire_size in
  base_wire_size + slot t.token + slot t.stamped + slot t.returned

let pp_action fmt = function
  | Incr -> Format.pp_print_string fmt "incr"
  | Decr -> Format.pp_print_string fmt "decr"

let pp_token fmt tok =
  Format.fprintf fmt "r%d/ts%d/%a" tok.nf_router tok.nf_ts pp_action tok.nf_action

let pp fmt t =
  let pp_slot name fmt = function
    | None -> ()
    | Some tok -> Format.fprintf fmt " %s=%a" name pp_token tok
  in
  Format.fprintf fmt "@[<h>nf%a%a%a@]" (pp_slot "tok") t.token (pp_slot "stamp") t.stamped
    (pp_slot "ret") t.returned
