type cap = { ts : int; hash : int64 }

let pp_cap fmt c = Format.fprintf fmt "cap(ts=%d,h=%014Lx)" c.ts c.hash
let cap_equal a b = a.ts = b.ts && Int64.equal a.hash b.hash

type return_info =
  | Demotion_notice
  | Grant of { n_kb : int; t_sec : int; caps : cap list }

(* Hop-by-hop fields are reverse-accumulated: routers cons onto the [rev_*]
   lists in O(1) and readers get path order back via the accessors below.
   The old representation appended with [l @ [x]], which copied the whole
   list at every hop — quadratic over a path.  The regular-packet
   capability list is an array so the router's "capability ptr" indexes it
   in O(1) rather than [List.nth]. *)

type request = { mutable rev_path_ids : int list; mutable rev_precaps : cap list }

type regular = {
  nonce : int64;
  caps : cap array;
  n_kb : int;
  t_sec : int;
  renewal : bool;
  mutable rev_fresh_precaps : cap list;
}

type kind = Request of request | Regular of regular

let path_ids req = List.rev req.rev_path_ids
let precaps req = List.rev req.rev_precaps
let precap_count req = List.length req.rev_precaps
let push_path_id req pid = req.rev_path_ids <- pid :: req.rev_path_ids
let push_precap req c = req.rev_precaps <- c :: req.rev_precaps
let fresh_precaps r = List.rev r.rev_fresh_precaps
let push_fresh_precap r c = r.rev_fresh_precaps <- c :: r.rev_fresh_precaps

type t = {
  mutable kind : kind;
  mutable demoted : bool;
  mutable return_info : return_info option;
  mutable ptr : int;
}

let request () =
  {
    kind = Request { rev_path_ids = []; rev_precaps = [] };
    demoted = false;
    return_info = None;
    ptr = 0;
  }

let regular ?(fresh_precaps = []) ~nonce ~caps ~n_kb ~t_sec ~renewal () =
  let caps = match caps with [] -> [||] | caps -> Array.of_list caps in
  {
    kind =
      Regular { nonce; caps; n_kb; t_sec; renewal; rev_fresh_precaps = List.rev fresh_precaps };
    demoted = false;
    return_info = None;
    ptr = 0;
  }

let fresh_precap = { ts = 0; hash = 0L }

let copy t =
  let kind =
    match t.kind with
    | Request r -> Request { rev_path_ids = r.rev_path_ids; rev_precaps = r.rev_precaps }
    | Regular r -> Regular { r with caps = Array.copy r.caps }
  in
  { kind; demoted = t.demoted; return_info = t.return_info; ptr = t.ptr }

let upper_protocol = 6

(* Sizes in bits, per Fig. 5. *)
let common_bits = 16
let count_bits = 8 (* capability num / capability ptr *)
let path_id_bits = 16
let cap_bits = 64
let nonce_bits = 48
let n_bits = 10
let t_bits = 6
let return_type_bits = 8

let return_info_bits = function
  | None -> 0
  | Some Demotion_notice -> return_type_bits
  | Some (Grant { caps; _ }) ->
      return_type_bits + count_bits + n_bits + t_bits + (cap_bits * List.length caps)

let kind_bits = function
  | Request req ->
      (2 * count_bits)
      + (path_id_bits * List.length req.rev_path_ids)
      + (cap_bits * List.length req.rev_precaps)
  | Regular r ->
      nonce_bits + (2 * count_bits) + n_bits + t_bits
      + (cap_bits * Array.length r.caps)
      + (if r.renewal then count_bits + (cap_bits * List.length r.rev_fresh_precaps) else 0)

let wire_size t = (common_bits + kind_bits t.kind + return_info_bits t.return_info + 7) / 8

(* The one shim shape on the steady-state fast path — regular, nonce only,
   no capability list, no return info — has a constant wire size.  Compute
   it from [wire_size] itself (not by re-deriving the bit arithmetic) so
   it can never drift from the encoder. *)
let nonce_only_wire_size =
  wire_size
    {
      kind =
        Regular
          { nonce = 0L; caps = [||]; n_kb = 0; t_sec = 0; renewal = false; rev_fresh_precaps = [] };
      demoted = false;
      return_info = None;
      ptr = 0;
    }

(* Type nibble per Fig. 5: bit3 = demoted, bit2 = return info present,
   bits 1..0 = 00 request / 01 regular w/ capabilities / 10 regular w/
   nonce only / 11 renewal. *)
let type_nibble t =
  let low =
    match t.kind with
    | Request _ -> 0b00
    | Regular { renewal = true; _ } -> 0b11
    | Regular { caps = [||]; _ } -> 0b10
    | Regular _ -> 0b01
  in
  (if t.demoted then 0b1000 else 0)
  lor (if t.return_info <> None then 0b0100 else 0)
  lor low

let version = 1

let check_range name v limit = if v < 0 || v >= limit then invalid_arg ("Cap_shim.encode: " ^ name ^ " out of range")

let put_cap w c =
  check_range "cap timestamp" c.ts 256;
  if Int64.shift_right_logical c.hash 56 <> 0L then invalid_arg "Cap_shim.encode: cap hash wider than 56 bits";
  Bitbuf.Writer.put w ~bits:8 c.ts;
  Bitbuf.Writer.put64 w ~bits:56 c.hash

let encode t =
  let w = Bitbuf.Writer.create () in
  Bitbuf.Writer.put w ~bits:4 version;
  Bitbuf.Writer.put w ~bits:4 (type_nibble t);
  Bitbuf.Writer.put w ~bits:8 upper_protocol;
  (match t.kind with
  | Request req ->
      (* Fig. 5 shows a single n for path-ids and blank capabilities; in the
         protocol only trust-boundary routers tag, so the two lists can have
         different lengths and we carry both counts. *)
      let path_ids = path_ids req and precaps = precaps req in
      check_range "path-id count" (List.length path_ids) 256;
      check_range "pre-capability count" (List.length precaps) 256;
      Bitbuf.Writer.put w ~bits:count_bits (List.length path_ids);
      Bitbuf.Writer.put w ~bits:count_bits (List.length precaps);
      List.iter
        (fun pid ->
          check_range "path id" pid 65536;
          Bitbuf.Writer.put w ~bits:path_id_bits pid)
        path_ids;
      List.iter (put_cap w) precaps
  | Regular r ->
      if Int64.shift_right_logical r.nonce 48 <> 0L then invalid_arg "Cap_shim.encode: nonce wider than 48 bits";
      check_range "capability count" (Array.length r.caps) 256;
      check_range "N" r.n_kb 1024;
      check_range "T" r.t_sec 64;
      Bitbuf.Writer.put64 w ~bits:nonce_bits r.nonce;
      Bitbuf.Writer.put w ~bits:count_bits (Array.length r.caps);
      check_range "capability ptr" t.ptr 256;
      Bitbuf.Writer.put w ~bits:count_bits t.ptr;
      Bitbuf.Writer.put w ~bits:n_bits r.n_kb;
      Bitbuf.Writer.put w ~bits:t_bits r.t_sec;
      Array.iter (put_cap w) r.caps;
      if r.renewal then begin
        let fresh = fresh_precaps r in
        check_range "fresh pre-capability count" (List.length fresh) 256;
        Bitbuf.Writer.put w ~bits:count_bits (List.length fresh);
        List.iter (put_cap w) fresh
      end
      else if r.rev_fresh_precaps <> [] then
        invalid_arg "Cap_shim.encode: fresh pre-capabilities on a non-renewal packet");
  (match t.return_info with
  | None -> ()
  | Some Demotion_notice -> Bitbuf.Writer.put w ~bits:return_type_bits 0x01
  | Some (Grant { n_kb; t_sec; caps }) ->
      check_range "return capability count" (List.length caps) 256;
      check_range "return N" n_kb 1024;
      check_range "return T" t_sec 64;
      Bitbuf.Writer.put w ~bits:return_type_bits 0x02;
      Bitbuf.Writer.put w ~bits:count_bits (List.length caps);
      Bitbuf.Writer.put w ~bits:n_bits n_kb;
      Bitbuf.Writer.put w ~bits:t_bits t_sec;
      List.iter (put_cap w) caps);
  Bitbuf.Writer.contents w

let get_cap r =
  let ts = Bitbuf.Reader.get r ~bits:8 in
  let hash = Bitbuf.Reader.get64 r ~bits:56 in
  { ts; hash }

let get_list r n f = List.init n (fun _ -> f r)

let decode s =
  let r = Bitbuf.Reader.create s in
  match
    let v = Bitbuf.Reader.get r ~bits:4 in
    if v <> version then Error (Printf.sprintf "bad version %d" v)
    else begin
      let ty = Bitbuf.Reader.get r ~bits:4 in
      let proto = Bitbuf.Reader.get r ~bits:8 in
      if proto <> upper_protocol then Error (Printf.sprintf "bad upper protocol %d" proto)
      else begin
        let demoted = ty land 0b1000 <> 0 in
        let has_return = ty land 0b0100 <> 0 in
        let ptr = ref 0 in
        let kind =
          match ty land 0b11 with
          | 0b00 ->
              let n_path = Bitbuf.Reader.get r ~bits:count_bits in
              let n_caps = Bitbuf.Reader.get r ~bits:count_bits in
              let path_ids = get_list r n_path (fun r -> Bitbuf.Reader.get r ~bits:path_id_bits) in
              let precaps = get_list r n_caps get_cap in
              (* Wire order is path order, so store it reversed. *)
              Request { rev_path_ids = List.rev path_ids; rev_precaps = List.rev precaps }
          | low ->
              let renewal = low = 0b11 in
              let nonce = Bitbuf.Reader.get64 r ~bits:nonce_bits in
              let n_caps = Bitbuf.Reader.get r ~bits:count_bits in
              ptr := Bitbuf.Reader.get r ~bits:count_bits;
              let n_kb = Bitbuf.Reader.get r ~bits:n_bits in
              let t_sec = Bitbuf.Reader.get r ~bits:t_bits in
              let caps = Array.init n_caps (fun _ -> get_cap r) in
              let fresh_precaps =
                if renewal then begin
                  let n_fresh = Bitbuf.Reader.get r ~bits:count_bits in
                  get_list r n_fresh get_cap
                end
                else []
              in
              Regular
                { nonce; caps; n_kb; t_sec; renewal; rev_fresh_precaps = List.rev fresh_precaps }
        in
        let return_info =
          if not has_return then None
          else
            match Bitbuf.Reader.get r ~bits:return_type_bits with
            | 0x01 -> Some Demotion_notice
            | 0x02 ->
                let n_caps = Bitbuf.Reader.get r ~bits:count_bits in
                let n_kb = Bitbuf.Reader.get r ~bits:n_bits in
                let t_sec = Bitbuf.Reader.get r ~bits:t_bits in
                let caps = get_list r n_caps get_cap in
                Some (Grant { n_kb; t_sec; caps })
            | ty -> invalid_arg (Printf.sprintf "bad return type %#x" ty)
        in
        Ok { kind; demoted; return_info; ptr = !ptr }
      end
    end
  with
  | result -> result
  | exception Bitbuf.Reader.Truncated -> Error "truncated header"
  | exception Invalid_argument msg -> Error msg

let pp fmt t =
  let pp_kind fmt = function
    | Request req ->
        Format.fprintf fmt "request paths=[%s] precaps=%d"
          (String.concat ";" (List.map string_of_int (path_ids req)))
          (precap_count req)
    | Regular r ->
        Format.fprintf fmt "%s nonce=%012Lx caps=%d N=%dKB T=%ds fresh=%d"
          (if r.renewal then "renewal" else if r.caps = [||] then "regular/nonce" else "regular/caps")
          r.nonce (Array.length r.caps) r.n_kb r.t_sec
          (List.length r.rev_fresh_precaps)
  in
  Format.fprintf fmt "@[<h>%a%s%s@]" pp_kind t.kind
    (if t.demoted then " DEMOTED" else "")
    (match t.return_info with
    | None -> ""
    | Some Demotion_notice -> " +demotion-notice"
    | Some (Grant { caps; _ }) -> Printf.sprintf " +grant(%d caps)" (List.length caps))
