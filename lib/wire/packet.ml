type body = Raw of int | Tcp of Tcp_segment.t

type t = {
  id : int;
  src : Addr.t;
  dst : Addr.t;
  created : float;
  body : body;
  mutable shim : Cap_shim.t option;
  mutable siff : Siff_marking.t option;
  mutable nf : Nf_feedback.t option;
  mutable hops : int;
}

let default_hops = 64

(* Packet ids exist for debugging and physical-identity checks only — no
   simulation decision reads them — so a process-wide atomic keeps them
   unique (and race-free) across the parallel sweep engine's domains
   without threatening run determinism. *)
let counter = Atomic.make 0

let make ?shim ?siff ?nf ~src ~dst ~created body =
  let id = Atomic.fetch_and_add counter 1 + 1 in
  { id; src; dst; created; body; shim; siff; nf; hops = default_hops }

let copy t =
  let id = Atomic.fetch_and_add counter 1 + 1 in
  {
    t with
    id;
    shim = (match t.shim with None -> None | Some s -> Some (Cap_shim.copy s));
    siff = (match t.siff with None -> None | Some s -> Some (Siff_marking.copy s));
    nf = (match t.nf with None -> None | Some s -> Some (Nf_feedback.copy s));
  }

let body_size = function Raw n -> n | Tcp seg -> Tcp_segment.wire_size seg

let size t =
  body_size t.body
  + (match t.shim with None -> 0 | Some s -> Cap_shim.wire_size s)
  + (match t.siff with None -> 0 | Some s -> Siff_marking.wire_size s)
  + (match t.nf with None -> 0 | Some s -> Nf_feedback.wire_size s)

(* [size], specialized for the batch fast path: a raw-body packet whose
   shim is the constant-size nonce-only shape (and no SIFF marking) skips
   the [wire_size] bit arithmetic.  Anything else falls through to [size],
   so the two always agree — a property test holds them together. *)
let[@inline] size_fast t =
  match t.body, t.shim, t.siff, t.nf with
  | ( Raw n,
      Some
        {
          Cap_shim.kind = Cap_shim.Regular { caps = [||]; renewal = false; _ };
          return_info = None;
          _;
        },
      None,
      None ) ->
      n + Cap_shim.nonce_only_wire_size
  | _ -> size t

let is_tcp t = match t.body with Tcp _ -> true | Raw _ -> false
let tcp t = match t.body with Tcp seg -> Some seg | Raw _ -> None

let flow_key_of ~src ~dst = (Addr.to_int src * 1_048_573) lxor Addr.to_int dst
let flow_key t = flow_key_of ~src:t.src ~dst:t.dst
let reverse_flow_key t = flow_key_of ~src:t.dst ~dst:t.src

let pp fmt t =
  let pp_body fmt = function
    | Raw n -> Format.fprintf fmt "raw(%dB)" n
    | Tcp seg -> Tcp_segment.pp fmt seg
  in
  Format.fprintf fmt "@[<h>#%d %a->%a %a size=%d%a@]" t.id Addr.pp t.src Addr.pp t.dst pp_body
    t.body (size t)
    (fun fmt -> function None -> () | Some s -> Format.fprintf fmt " [%a]" Cap_shim.pp s)
    t.shim
