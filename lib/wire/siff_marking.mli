(** SIFF header state (Yaar et al., the paper's closest comparator).

    SIFF embeds a few marking bits per router into the IP header.  EXP
    (explorer) packets collect markings; the receiver returns the collected
    marking to the sender, whose DTA (data) packets then carry it for
    routers to re-verify.  We model the marking as an association from
    router id to that router's marking bits, which preserves the semantics
    (per-router verification, brute-forceable 2-bit space, expiry on secret
    rotation) without fixing a bit-packing. *)

type flavor =
  | Exp (** explorer / request: forwarded as legacy priority in SIFF *)
  | Dta (** data packet carrying a marking to verify *)

type t = {
  flavor : flavor;
  mutable markings : (int * int) list; (* router id -> marking bits, path order *)
  mutable returned : (int * int) list option;
      (* markings the receiver echoes back to authorize the sender's
         forward direction (SIFF's handshake piggyback) *)
}

val exp_packet : unit -> t
val dta : markings:(int * int) list -> t

val copy : t -> t
(** A marking whose mutable fields are independent of the original (the
    association lists themselves are immutable and shared). *)

val marking_of : t -> router:int -> int option

val add_marking : t -> router:int -> bits:int -> unit
(** Appends (used by routers on EXP packets). *)

val bits_per_router : int
(** 2, as the TVA paper notes when comparing against SIFF. *)

val wire_size : t -> int
(** SIFF steals bits from existing IP fields, so its shim adds no bytes;
    we charge 4 bytes for the flags/nonce word SIFF repurposes. *)
