(** NetFence congestion-feedback header (Liu et al., PAPERS.md).

    NetFence replaces per-destination capabilities with closed-loop
    congestion policing: every data packet carries an unforgeable feedback
    token [(router, timestamp, action, MAC)].  A bottleneck router stamps
    [Decr] when congested (else [Incr]) on the forward path, the receiver
    echoes the stamped token back, and the sender must present the echoed
    token on its next packets — the access router verifies the MAC and
    drives a per-sender AIMD rate limiter from the action.  A compromised
    sender cannot forge an [Incr] token, so ignoring congestion only gets
    its traffic policed down to its fair share.

    The header has three slots so one record covers the whole loop:
    [token] is what the sender presents, [stamped] is what routers wrote on
    this packet's own path, and [returned] carries a stamped token back on
    a reply. *)

type action =
  | Incr  (** path uncongested: additive-increase the sender's rate *)
  | Decr  (** congestion seen: multiplicative-decrease the sender's rate *)

type token = {
  nf_router : int;  (** id of the stamping (bottleneck) router *)
  nf_ts : int;  (** epoch timestamp, same 8-bit clock as [Crypto.Secret] *)
  nf_action : action;
  nf_mac : int64;  (** keyed MAC over (src, router, ts, action) *)
}

type t = {
  mutable token : token option;  (** feedback the sender presents *)
  mutable stamped : token option;  (** feedback routers wrote on this packet *)
  mutable returned : token option;  (** stamped feedback echoed on a reply *)
}

val empty : unit -> t
(** Header with no token — a sender bootstrapping before any feedback. *)

val with_token : token -> t
(** Header presenting [token] (the sender's latest echoed feedback). *)

val copy : t -> t
(** Independent mutable slots; tokens themselves are immutable. *)

val stamp : t -> token -> unit
(** Write [token] into the [stamped] slot, unless a [Decr] is already
    there: congestion feedback is monotone, a downstream [Incr] never
    overwrites an upstream [Decr]. *)

val action_bit : action -> int
(** 0 for [Incr], 1 for [Decr] — the bit that goes under the MAC. *)

val wire_size : t -> int
(** 4 header bytes plus 12 per occupied slot, so carrying feedback costs
    link time the same way capability shims do. *)

val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit
