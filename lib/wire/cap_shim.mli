(** The TVA capability header (paper Fig. 5), carried as a shim between IP
    and transport on every non-legacy packet.

    Two representations live here: the structured form that the simulator
    manipulates directly, and a bit-exact wire codec used to account for
    header bytes and to demonstrate the format round-trips.  Field widths
    follow Fig. 5: 4-bit version and type, 8-bit upper protocol, 16-bit path
    identifiers, 64-bit capabilities (8-bit timestamp + 56-bit hash), 48-bit
    flow nonce, 10-bit N in KB and 6-bit T in seconds. *)

type cap = { ts : int; hash : int64 }
(** One per-router capability (or pre-capability): [ts] is the router's
    8-bit timestamp, [hash] the 56-bit keyed hash. *)

val pp_cap : Format.formatter -> cap -> unit
val cap_equal : cap -> cap -> bool

type return_info =
  | Demotion_notice
      (** The destination echoes a demotion so the sender re-requests. *)
  | Grant of { n_kb : int; t_sec : int; caps : cap list }
      (** Capabilities granted by the destination for the reverse direction:
          up to [n_kb] KB within [t_sec] seconds. *)

type request = {
  mutable rev_path_ids : int list;
      (** Path identifiers, newest first.  Filled in hop by hop:
          trust-boundary routers push a 16-bit identifier.  Use
          {!path_ids} / {!push_path_id} rather than touching the reversed
          list directly. *)
  mutable rev_precaps : cap list;
      (** Pre-capabilities, newest first — every capability router pushes
          one.  Reverse accumulation makes the per-hop append O(1); use
          {!precaps} / {!push_precap}. *)
}

type regular = {
  nonce : int64;
  caps : cap array;
      (** An array so the router's capability ptr indexes in O(1);
          [\[||\]] is the common nonce-only format. *)
  n_kb : int;
  t_sec : int;
  renewal : bool;
  mutable rev_fresh_precaps : cap list;
      (** Only on renewal packets: the fresh pre-capabilities routers
          mint en route (paper Sec. 4.3: "a fresh pre-capability is
          minted and placed in the packet"), newest first.  The paper does
          not pin a bit layout for these; we append them after the old
          capability list with their own count byte.  Use
          {!fresh_precaps} / {!push_fresh_precap}. *)
}

type kind = Request of request | Regular of regular

val path_ids : request -> int list
(** In path order (oldest hop first). *)

val precaps : request -> cap list
(** In path order, matching the order routers were traversed — the
    destination converts these positionally into the capability list. *)

val precap_count : request -> int

val push_path_id : request -> int -> unit
(** O(1) append at the path's tail. *)

val push_precap : request -> cap -> unit

val fresh_precaps : regular -> cap list
(** In path order. *)

val push_fresh_precap : regular -> cap -> unit

type t = {
  mutable kind : kind;
  mutable demoted : bool;
  mutable return_info : return_info option;
  mutable ptr : int;
      (** Fig. 5's "capability ptr": index of the capability belonging to
          the next router on the path.  Senders emit 0; each capability
          router that validates from the list increments it. *)
}

val request : unit -> t
(** A fresh, empty request shim as a sender emits it. *)

val regular :
  ?fresh_precaps:cap list ->
  nonce:int64 ->
  caps:cap list ->
  n_kb:int ->
  t_sec:int ->
  renewal:bool ->
  unit ->
  t

val fresh_precap : cap
(** Placeholder for renewal: routers replace the pre-capability in place. *)

val copy : t -> t
(** A shim whose mutable state (kind record, capability array, pointer) is
    independent of the original, so a duplicated packet's hop-by-hop
    mutations do not leak into the other copy.  The immutable list spines
    are shared. *)

val wire_size : t -> int
(** The encoded size in bytes (what links charge for the shim). *)

val nonce_only_wire_size : int
(** [wire_size] of a regular shim carrying only a nonce — no capability
    list, no fresh pre-capabilities, no return info.  This is the
    steady-state fast-path shape, so its size is a constant the batch
    datapath can add without walking the shim. *)

val encode : t -> string
(** Bit-exact encoding.  Raises [Invalid_argument] if a field is out of its
    Fig. 5 range (e.g. [n_kb >= 1024]). *)

val decode : string -> (t, string) result
(** Inverse of [encode]; [Error] describes a malformed header. *)

val upper_protocol : int
(** The demultiplexing value carried in the common header (6 = TCP). *)

val pp : Format.formatter -> t -> unit
