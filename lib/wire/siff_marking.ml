type flavor = Exp | Dta

type t = { flavor : flavor; mutable markings : (int * int) list; mutable returned : (int * int) list option }

let exp_packet () = { flavor = Exp; markings = []; returned = None }
let dta ~markings = { flavor = Dta; markings; returned = None }

let copy t = { t with flavor = t.flavor }

let marking_of t ~router = List.assoc_opt router t.markings

let add_marking t ~router ~bits = t.markings <- t.markings @ [ (router, bits) ]

let bits_per_router = 2

let wire_size _ = 4
