(* Epoch keys are derived from the master by hashing, which costs two
   SipHash calls and three allocations.  Validation asks for the epoch key
   on every packet, so [t] memoizes the two epochs that can ever be live at
   once (current and previous) in two mutable slots; rotation shifts
   current into previous.  Epochs are non-negative, so -1 marks an empty
   slot. *)
type t = {
  master : string;
  mutable e_cur : int;
  mutable k_cur : string;
  mutable e_prev : int;
  mutable k_prev : string;
}

let rollover_period = 256.
let rotation_period = 128.

let create ~master = { master; e_cur = -1; k_cur = ""; e_prev = -1; k_prev = "" }

let epoch ~now = int_of_float (floor (now /. rotation_period))

let timestamp ~now = int_of_float (floor now) land 0xff

let derive t e =
  (* Epoch secrets are a keyed hash of the epoch under the master key:
     deterministic, and old secrets are recoverable only via the master. *)
  Siphash.mac_string ~key:"TVA secret deriv" (t.master ^ string_of_int e)
  ^ Siphash.mac_string ~key:"ation epoch key." (t.master ^ string_of_int e)

let secret_of_epoch t e =
  if e = t.e_cur then t.k_cur
  else if e = t.e_prev then t.k_prev
  else begin
    let k = derive t e in
    t.e_prev <- t.e_cur;
    t.k_prev <- t.k_cur;
    t.e_cur <- e;
    t.k_cur <- k;
    k
  end

let issuing_secret t ~now = secret_of_epoch t (epoch ~now)

(* Epoch parity equals the high bit of the timestamps minted during it:
   epochs cover [0,128), [128,256), [256,384), ... so timestamps 0..127
   (high bit 0) come from even epochs and 128..255 from odd ones. *)
let epoch_parity e = e land 1

let validating_secret t ~now ~ts =
  let e_now = epoch ~now in
  let high_bit = (ts lsr 7) land 1 in
  if epoch_parity e_now = high_bit then Some (secret_of_epoch t e_now)
  else if e_now > 0 && epoch_parity (e_now - 1) = high_bit then Some (secret_of_epoch t (e_now - 1))
  else if e_now = 0 then None
  else
    (* Parity alternates every epoch, so one of current/previous always
       matches; this branch is unreachable but kept total. *)
    None
