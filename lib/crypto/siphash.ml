(* SipHash-2-4: 2 compression rounds per 8-byte word, 4 finalization
   rounds.  All arithmetic is on Int64 with wraparound, which matches the
   reference implementation exactly.

   Two entry points share the core: [mac] consumes an arbitrary string
   message, and [mac_short] consumes a short message already packed into
   little-endian words.  The short path exists for the router's per-packet
   hashes (9- and 11-byte preimages): it is written as one straight-line
   chain of immutable [let]-bindings so the native compiler keeps every
   intermediate int64 unboxed in registers — no state record, no per-round
   stores, no per-word list as the original word loader had. *)

let digest_size = 8

let[@inline] rotl x b = Int64.logor (Int64.shift_left x b) (Int64.shift_right_logical x (64 - b))

let le64 s off =
  (* Little-endian 64-bit load; a chain of ors rather than a fold over a
     freshly built list, so loading a word allocates nothing. *)
  let g i n = Int64.shift_left (Int64.of_int (Char.code s.[off + i])) n in
  Int64.logor
    (Int64.logor (Int64.logor (g 0 0) (g 1 8)) (Int64.logor (g 2 16) (g 3 24)))
    (Int64.logor (Int64.logor (g 4 32) (g 5 40)) (Int64.logor (g 6 48) (g 7 56)))

type state = { mutable v0 : int64; mutable v1 : int64; mutable v2 : int64; mutable v3 : int64 }

let sipround s =
  s.v0 <- Int64.add s.v0 s.v1;
  s.v1 <- rotl s.v1 13;
  s.v1 <- Int64.logxor s.v1 s.v0;
  s.v0 <- rotl s.v0 32;
  s.v2 <- Int64.add s.v2 s.v3;
  s.v3 <- rotl s.v3 16;
  s.v3 <- Int64.logxor s.v3 s.v2;
  s.v0 <- Int64.add s.v0 s.v3;
  s.v3 <- rotl s.v3 21;
  s.v3 <- Int64.logxor s.v3 s.v0;
  s.v2 <- Int64.add s.v2 s.v1;
  s.v1 <- rotl s.v1 17;
  s.v1 <- Int64.logxor s.v1 s.v2;
  s.v2 <- rotl s.v2 32

let mac ~key msg =
  if String.length key <> 16 then invalid_arg "Siphash.mac: key must be 16 bytes";
  let k0 = le64 key 0 and k1 = le64 key 8 in
  let s =
    {
      v0 = Int64.logxor k0 0x736f6d6570736575L;
      v1 = Int64.logxor k1 0x646f72616e646f6dL;
      v2 = Int64.logxor k0 0x6c7967656e657261L;
      v3 = Int64.logxor k1 0x7465646279746573L;
    }
  in
  let len = String.length msg in
  let full_words = len / 8 in
  for i = 0 to full_words - 1 do
    let m = le64 msg (8 * i) in
    s.v3 <- Int64.logxor s.v3 m;
    sipround s;
    sipround s;
    s.v0 <- Int64.logxor s.v0 m
  done;
  (* Last word: remaining bytes plus the message length in the top byte. *)
  let b = ref (Int64.shift_left (Int64.of_int (len land 0xff)) 56) in
  for i = 0 to (len mod 8) - 1 do
    b := Int64.logor !b (Int64.shift_left (Int64.of_int (Char.code msg.[(8 * full_words) + i])) (8 * i))
  done;
  s.v3 <- Int64.logxor s.v3 !b;
  sipround s;
  sipround s;
  s.v0 <- Int64.logxor s.v0 !b;
  s.v2 <- Int64.logxor s.v2 0xffL;
  sipround s;
  sipround s;
  sipround s;
  sipround s;
  Int64.logxor (Int64.logxor s.v0 s.v1) (Int64.logxor s.v2 s.v3)

(* The hot-path variant: a message of 8..15 bytes is exactly one full word
   [w0] plus a final word made of [tail] (the remaining [len - 8] bytes in
   little-endian order, upper bytes zero) and the length byte.  The eight
   SipRounds are unrolled as shadowing [let]s on purpose: a mutable state
   record would box an int64 on every field store (~100 allocations per
   call), while this form compiles to register arithmetic. *)
let mac_short_k ~k0 ~k1 ~len ~w0 ~tail =
  if len < 8 || len > 15 then invalid_arg "Siphash.mac_short_k: len must be in 8..15";
  let v0 = Int64.logxor k0 0x736f6d6570736575L in
  let v1 = Int64.logxor k1 0x646f72616e646f6dL in
  let v2 = Int64.logxor k0 0x6c7967656e657261L in
  let v3 = Int64.logxor k1 0x7465646279746573L in
  (* Compress w0: SIPROUND x2. *)
  let v3 = Int64.logxor v3 w0 in
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  let v0 = Int64.logxor v0 w0 in
  (* Compress the final word: tail bytes + length in the top byte. *)
  let b = Int64.logor (Int64.shift_left (Int64.of_int len) 56) tail in
  let v3 = Int64.logxor v3 b in
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  let v0 = Int64.logxor v0 b in
  (* Finalization: SIPROUND x4. *)
  let v2 = Int64.logxor v2 0xffL in
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  let v0 = Int64.add v0 v1 in
  let v1 = rotl v1 13 in
  let v1 = Int64.logxor v1 v0 in
  let v0 = rotl v0 32 in
  let v2 = Int64.add v2 v3 in
  let v3 = rotl v3 16 in
  let v3 = Int64.logxor v3 v2 in
  let v0 = Int64.add v0 v3 in
  let v3 = rotl v3 21 in
  let v3 = Int64.logxor v3 v0 in
  let v2 = Int64.add v2 v1 in
  let v1 = rotl v1 17 in
  let v1 = Int64.logxor v1 v2 in
  let v2 = rotl v2 32 in
  Int64.logxor (Int64.logxor v0 v1) (Int64.logxor v2 v3)

(* The two-message entry point: both SipHash states advance through the
   same round schedule in lockstep, one instruction stream, all sixteen
   locals live in registers.  The rounds of one message form a serial
   dependency chain, so a lone hash leaves half the ALU ports idle;
   interleaving an independent second message fills them.  Callers with
   a batch of packets hash them two at a time (see Fastpath). *)
let mac_short_k2 ~k0 ~k1 ~len ~w0a ~taila ~w0b ~tailb =
  if len < 8 || len > 15 then invalid_arg "Siphash.mac_short_k2: len must be in 8..15";
  let iv0 = Int64.logxor k0 0x736f6d6570736575L in
  let iv1 = Int64.logxor k1 0x646f72616e646f6dL in
  let iv2 = Int64.logxor k0 0x6c7967656e657261L in
  let iv3 = Int64.logxor k1 0x7465646279746573L in
  let lenw = Int64.shift_left (Int64.of_int len) 56 in
  let ba = Int64.logor lenw taila and bb = Int64.logor lenw tailb in
  let a0 = iv0 and a1 = iv1 and a2 = iv2 and a3 = Int64.logxor iv3 w0a in
  let b0 = iv0 and b1 = iv1 and b2 = iv2 and b3 = Int64.logxor iv3 w0b in
  let a0 = Int64.add a0 a1 and b0 = Int64.add b0 b1 in
  let a1 = rotl a1 13 and b1 = rotl b1 13 in
  let a1 = Int64.logxor a1 a0 and b1 = Int64.logxor b1 b0 in
  let a0 = rotl a0 32 and b0 = rotl b0 32 in
  let a2 = Int64.add a2 a3 and b2 = Int64.add b2 b3 in
  let a3 = rotl a3 16 and b3 = rotl b3 16 in
  let a3 = Int64.logxor a3 a2 and b3 = Int64.logxor b3 b2 in
  let a0 = Int64.add a0 a3 and b0 = Int64.add b0 b3 in
  let a3 = rotl a3 21 and b3 = rotl b3 21 in
  let a3 = Int64.logxor a3 a0 and b3 = Int64.logxor b3 b0 in
  let a2 = Int64.add a2 a1 and b2 = Int64.add b2 b1 in
  let a1 = rotl a1 17 and b1 = rotl b1 17 in
  let a1 = Int64.logxor a1 a2 and b1 = Int64.logxor b1 b2 in
  let a2 = rotl a2 32 and b2 = rotl b2 32 in
  let a0 = Int64.add a0 a1 and b0 = Int64.add b0 b1 in
  let a1 = rotl a1 13 and b1 = rotl b1 13 in
  let a1 = Int64.logxor a1 a0 and b1 = Int64.logxor b1 b0 in
  let a0 = rotl a0 32 and b0 = rotl b0 32 in
  let a2 = Int64.add a2 a3 and b2 = Int64.add b2 b3 in
  let a3 = rotl a3 16 and b3 = rotl b3 16 in
  let a3 = Int64.logxor a3 a2 and b3 = Int64.logxor b3 b2 in
  let a0 = Int64.add a0 a3 and b0 = Int64.add b0 b3 in
  let a3 = rotl a3 21 and b3 = rotl b3 21 in
  let a3 = Int64.logxor a3 a0 and b3 = Int64.logxor b3 b0 in
  let a2 = Int64.add a2 a1 and b2 = Int64.add b2 b1 in
  let a1 = rotl a1 17 and b1 = rotl b1 17 in
  let a1 = Int64.logxor a1 a2 and b1 = Int64.logxor b1 b2 in
  let a2 = rotl a2 32 and b2 = rotl b2 32 in
  let a0 = Int64.logxor a0 w0a and b0 = Int64.logxor b0 w0b in
  let a3 = Int64.logxor a3 ba and b3 = Int64.logxor b3 bb in
  let a0 = Int64.add a0 a1 and b0 = Int64.add b0 b1 in
  let a1 = rotl a1 13 and b1 = rotl b1 13 in
  let a1 = Int64.logxor a1 a0 and b1 = Int64.logxor b1 b0 in
  let a0 = rotl a0 32 and b0 = rotl b0 32 in
  let a2 = Int64.add a2 a3 and b2 = Int64.add b2 b3 in
  let a3 = rotl a3 16 and b3 = rotl b3 16 in
  let a3 = Int64.logxor a3 a2 and b3 = Int64.logxor b3 b2 in
  let a0 = Int64.add a0 a3 and b0 = Int64.add b0 b3 in
  let a3 = rotl a3 21 and b3 = rotl b3 21 in
  let a3 = Int64.logxor a3 a0 and b3 = Int64.logxor b3 b0 in
  let a2 = Int64.add a2 a1 and b2 = Int64.add b2 b1 in
  let a1 = rotl a1 17 and b1 = rotl b1 17 in
  let a1 = Int64.logxor a1 a2 and b1 = Int64.logxor b1 b2 in
  let a2 = rotl a2 32 and b2 = rotl b2 32 in
  let a0 = Int64.add a0 a1 and b0 = Int64.add b0 b1 in
  let a1 = rotl a1 13 and b1 = rotl b1 13 in
  let a1 = Int64.logxor a1 a0 and b1 = Int64.logxor b1 b0 in
  let a0 = rotl a0 32 and b0 = rotl b0 32 in
  let a2 = Int64.add a2 a3 and b2 = Int64.add b2 b3 in
  let a3 = rotl a3 16 and b3 = rotl b3 16 in
  let a3 = Int64.logxor a3 a2 and b3 = Int64.logxor b3 b2 in
  let a0 = Int64.add a0 a3 and b0 = Int64.add b0 b3 in
  let a3 = rotl a3 21 and b3 = rotl b3 21 in
  let a3 = Int64.logxor a3 a0 and b3 = Int64.logxor b3 b0 in
  let a2 = Int64.add a2 a1 and b2 = Int64.add b2 b1 in
  let a1 = rotl a1 17 and b1 = rotl b1 17 in
  let a1 = Int64.logxor a1 a2 and b1 = Int64.logxor b1 b2 in
  let a2 = rotl a2 32 and b2 = rotl b2 32 in
  let a0 = Int64.logxor a0 ba and b0 = Int64.logxor b0 bb in
  let a2 = Int64.logxor a2 0xffL and b2 = Int64.logxor b2 0xffL in
  let a0 = Int64.add a0 a1 and b0 = Int64.add b0 b1 in
  let a1 = rotl a1 13 and b1 = rotl b1 13 in
  let a1 = Int64.logxor a1 a0 and b1 = Int64.logxor b1 b0 in
  let a0 = rotl a0 32 and b0 = rotl b0 32 in
  let a2 = Int64.add a2 a3 and b2 = Int64.add b2 b3 in
  let a3 = rotl a3 16 and b3 = rotl b3 16 in
  let a3 = Int64.logxor a3 a2 and b3 = Int64.logxor b3 b2 in
  let a0 = Int64.add a0 a3 and b0 = Int64.add b0 b3 in
  let a3 = rotl a3 21 and b3 = rotl b3 21 in
  let a3 = Int64.logxor a3 a0 and b3 = Int64.logxor b3 b0 in
  let a2 = Int64.add a2 a1 and b2 = Int64.add b2 b1 in
  let a1 = rotl a1 17 and b1 = rotl b1 17 in
  let a1 = Int64.logxor a1 a2 and b1 = Int64.logxor b1 b2 in
  let a2 = rotl a2 32 and b2 = rotl b2 32 in
  let a0 = Int64.add a0 a1 and b0 = Int64.add b0 b1 in
  let a1 = rotl a1 13 and b1 = rotl b1 13 in
  let a1 = Int64.logxor a1 a0 and b1 = Int64.logxor b1 b0 in
  let a0 = rotl a0 32 and b0 = rotl b0 32 in
  let a2 = Int64.add a2 a3 and b2 = Int64.add b2 b3 in
  let a3 = rotl a3 16 and b3 = rotl b3 16 in
  let a3 = Int64.logxor a3 a2 and b3 = Int64.logxor b3 b2 in
  let a0 = Int64.add a0 a3 and b0 = Int64.add b0 b3 in
  let a3 = rotl a3 21 and b3 = rotl b3 21 in
  let a3 = Int64.logxor a3 a0 and b3 = Int64.logxor b3 b0 in
  let a2 = Int64.add a2 a1 and b2 = Int64.add b2 b1 in
  let a1 = rotl a1 17 and b1 = rotl b1 17 in
  let a1 = Int64.logxor a1 a2 and b1 = Int64.logxor b1 b2 in
  let a2 = rotl a2 32 and b2 = rotl b2 32 in
  let a0 = Int64.add a0 a1 and b0 = Int64.add b0 b1 in
  let a1 = rotl a1 13 and b1 = rotl b1 13 in
  let a1 = Int64.logxor a1 a0 and b1 = Int64.logxor b1 b0 in
  let a0 = rotl a0 32 and b0 = rotl b0 32 in
  let a2 = Int64.add a2 a3 and b2 = Int64.add b2 b3 in
  let a3 = rotl a3 16 and b3 = rotl b3 16 in
  let a3 = Int64.logxor a3 a2 and b3 = Int64.logxor b3 b2 in
  let a0 = Int64.add a0 a3 and b0 = Int64.add b0 b3 in
  let a3 = rotl a3 21 and b3 = rotl b3 21 in
  let a3 = Int64.logxor a3 a0 and b3 = Int64.logxor b3 b0 in
  let a2 = Int64.add a2 a1 and b2 = Int64.add b2 b1 in
  let a1 = rotl a1 17 and b1 = rotl b1 17 in
  let a1 = Int64.logxor a1 a2 and b1 = Int64.logxor b1 b2 in
  let a2 = rotl a2 32 and b2 = rotl b2 32 in
  let a0 = Int64.add a0 a1 and b0 = Int64.add b0 b1 in
  let a1 = rotl a1 13 and b1 = rotl b1 13 in
  let a1 = Int64.logxor a1 a0 and b1 = Int64.logxor b1 b0 in
  let a0 = rotl a0 32 and b0 = rotl b0 32 in
  let a2 = Int64.add a2 a3 and b2 = Int64.add b2 b3 in
  let a3 = rotl a3 16 and b3 = rotl b3 16 in
  let a3 = Int64.logxor a3 a2 and b3 = Int64.logxor b3 b2 in
  let a0 = Int64.add a0 a3 and b0 = Int64.add b0 b3 in
  let a3 = rotl a3 21 and b3 = rotl b3 21 in
  let a3 = Int64.logxor a3 a0 and b3 = Int64.logxor b3 b0 in
  let a2 = Int64.add a2 a1 and b2 = Int64.add b2 b1 in
  let a1 = rotl a1 17 and b1 = rotl b1 17 in
  let a1 = Int64.logxor a1 a2 and b1 = Int64.logxor b1 b2 in
  let a2 = rotl a2 32 and b2 = rotl b2 32 in
  ( Int64.logxor (Int64.logxor a0 a1) (Int64.logxor a2 a3),
    Int64.logxor (Int64.logxor b0 b1) (Int64.logxor b2 b3) )

(* Loading the key costs more than the rounds on this path (the [le64]
   closure work dominates), so per-epoch callers preload (k0, k1) once via
   [key_words] and call [mac_short_k] directly. *)
let mac_short ~key ~len ~w0 ~tail =
  if String.length key <> 16 then invalid_arg "Siphash.mac_short: key must be 16 bytes";
  mac_short_k ~k0:(le64 key 0) ~k1:(le64 key 8) ~len ~w0 ~tail

let key_words key =
  if String.length key <> 16 then invalid_arg "Siphash.key_words: key must be 16 bytes";
  (le64 key 0, le64 key 8)

let mac_string ~key msg =
  let v = mac ~key msg in
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done;
  Bytes.unsafe_to_string b
