(** A common interface over the keyed hashes used to bind capabilities.

    TVA routers need two keyed-hash roles (Fig. 3 of the paper): one that
    mints pre-capabilities from (src, dst, timestamp, router secret), and
    one that folds (pre-capability, N, T) into a full capability.  The
    prototype used AES-hash and SHA-1 for these; the simulator defaults to
    SipHash for speed.  Implementations are interchangeable through this
    signature. *)

type prepared
(** A key preprocessed for the per-packet [_p] entry points (for SipHash:
    normalized and split into its two 64-bit words, which is most of the
    per-call setup cost).  Prepare once per key via {!S.prepare} or a
    {!prep_cache}. *)

module type S = sig
  val name : string

  val mac56 : key:string -> string -> int64
  (** [mac56 ~key msg] is a 56-bit tag (top 8 bits clear), the width of the
      hash field in a 64-bit capability. *)

  val mac56_precap : key:string -> src:int -> dst:int -> ts:int -> int64
  (** The pre-capability hash, equal to
      [mac56 ~key (precap_preimage ~src ~dst ~ts)] but taking the fields
      directly so implementations can skip building the preimage string. *)

  val mac56_cap :
    key:string -> precap_ts:int -> precap_hash:int64 -> n_kb:int -> t_sec:int -> int64
  (** The capability hash over (pre-capability, N, T), equal to
      [mac56 ~key (cap_preimage ~precap_ts ~precap_hash ~n_kb ~t_sec)]. *)

  val prepare : string -> prepared
  (** Preprocess a key for the [_p] entry points; call once per key, not
      per packet. *)

  val mac56_precap_p : prep:prepared -> src:int -> dst:int -> ts:int -> int64
  (** {!mac56_precap} against a prepared key — the per-packet validation
      entry point: same tag, none of the per-call key setup. *)

  val mac56_cap_p :
    prep:prepared -> precap_ts:int -> precap_hash:int64 -> n_kb:int -> t_sec:int -> int64
  (** {!mac56_cap} against a prepared key. *)

  val mac56_precap_p2 :
    prep:prepared ->
    src_a:int ->
    dst_a:int ->
    ts_a:int ->
    src_b:int ->
    dst_b:int ->
    ts_b:int ->
    int64 * int64
  (** Two pre-capability tags under one prepared key, in argument order —
      batch callers pair packets so implementations can interleave the two
      hash computations (see {!Siphash.mac_short_k2}).  Always equal to two
      {!mac56_precap_p} calls. *)

  val mac56_cap_p2 :
    prep:prepared ->
    precap_ts_a:int ->
    precap_hash_a:int64 ->
    n_kb_a:int ->
    t_sec_a:int ->
    precap_ts_b:int ->
    precap_hash_b:int64 ->
    n_kb_b:int ->
    t_sec_b:int ->
    int64 * int64
  (** Two capability tags under one prepared key, in argument order.
      Always equal to two {!mac56_cap_p} calls. *)
end

type prep_cache
(** A three-slot memo from key strings (by physical identity) to their
    prepared form — sized to the live set of a validating router: current
    epoch secret, previous epoch secret, public capability key. *)

val prep_cache : unit -> prep_cache

val prepared_of : (module S) -> prep_cache -> string -> prepared
(** The prepared form of a key, reusing a cache slot when the same string
    was prepared recently. *)

val precap_preimage : src:int -> dst:int -> ts:int -> string
(** The canonical 9-byte pre-capability preimage:
    src (4 bytes BE) | dst (4 bytes BE) | ts (1 byte).  The reference the
    direct entry points must agree with. *)

val cap_preimage : precap_ts:int -> precap_hash:int64 -> n_kb:int -> t_sec:int -> string
(** The canonical 11-byte capability preimage:
    ts (1) | pre-capability hash (7 bytes BE) | N (2 bytes, 10 used bits) |
    T (1 byte, 6 used bits). *)

module Fast : S
(** SipHash-2-4 based; the simulation default.  Its fixed-preimage entry
    points pack the fields into SipHash words directly and do not
    allocate. *)

module Aes : S
(** AES-hash (MMO) based, as the prototype uses for pre-capabilities. *)

module Sha : S
(** HMAC-SHA1 based, as the prototype uses for full capabilities. *)
