(* A key preprocessed for per-packet use.  For SipHash this is the
   normalized key already split into its two 64-bit words — loading those
   words costs more than the hash rounds themselves, so the router prepares
   each epoch secret once and hashes packets against the prepared form.
   String-preimage implementations just carry the key through [pk]. *)
type prepared = { pk : string; k0 : int64; k1 : int64 }

module type S = sig
  val name : string
  val mac56 : key:string -> string -> int64
  val mac56_precap : key:string -> src:int -> dst:int -> ts:int -> int64

  val mac56_cap :
    key:string -> precap_ts:int -> precap_hash:int64 -> n_kb:int -> t_sec:int -> int64

  val prepare : string -> prepared
  (** Preprocess a key for the [_p] entry points; call once per key, not
      per packet. *)

  val mac56_precap_p : prep:prepared -> src:int -> dst:int -> ts:int -> int64
  (** [mac56_precap] against a prepared key: same tag, none of the per-call
      key setup. *)

  val mac56_cap_p :
    prep:prepared -> precap_ts:int -> precap_hash:int64 -> n_kb:int -> t_sec:int -> int64

  val mac56_precap_p2 :
    prep:prepared ->
    src_a:int ->
    dst_a:int ->
    ts_a:int ->
    src_b:int ->
    dst_b:int ->
    ts_b:int ->
    int64 * int64
  (** Two pre-capability tags under one prepared key, for batch callers
      that can pair packets.  Equal to two [mac56_precap_p] calls, in
      argument order. *)

  val mac56_cap_p2 :
    prep:prepared ->
    precap_ts_a:int ->
    precap_hash_a:int64 ->
    n_kb_a:int ->
    t_sec_a:int ->
    precap_ts_b:int ->
    precap_hash_b:int64 ->
    n_kb_b:int ->
    t_sec_b:int ->
    int64 * int64
  (** Two capability tags under one prepared key.  Equal to two
      [mac56_cap_p] calls, in argument order. *)
end

let mask56 = 0x00ffffffffffffffL

let int64_of_prefix s =
  (* First 8 bytes of [s], big-endian; [s] must be at least 8 bytes. *)
  let g i = Int64.of_int (Char.code s.[i]) in
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (g i)
  done;
  !acc

(* The two capability preimages (paper Fig. 3), as strings.  These define
   the canonical byte layouts; [mac56_precap]/[mac56_cap] must agree with
   hashing these bit-for-bit, which the crypto property tests check. *)

let precap_preimage ~src ~dst ~ts =
  (* src (4 bytes BE) | dst (4 bytes BE) | ts (1 byte) — 9 bytes. *)
  let b = Bytes.create 9 in
  Bytes.set b 0 (Char.chr ((src lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((src lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((src lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (src land 0xff));
  Bytes.set b 4 (Char.chr ((dst lsr 24) land 0xff));
  Bytes.set b 5 (Char.chr ((dst lsr 16) land 0xff));
  Bytes.set b 6 (Char.chr ((dst lsr 8) land 0xff));
  Bytes.set b 7 (Char.chr (dst land 0xff));
  Bytes.set b 8 (Char.chr (ts land 0xff));
  Bytes.unsafe_to_string b

let cap_preimage ~precap_ts ~precap_hash ~n_kb ~t_sec =
  (* ts (1) | precap hash (7 bytes BE) | N (10 bits in 2 bytes) | T (1) —
     11 bytes.  The hash is 56 bits wide so it fits an OCaml int. *)
  let h = Int64.to_int precap_hash in
  let b = Bytes.create 11 in
  Bytes.set b 0 (Char.chr (precap_ts land 0xff));
  for i = 0 to 6 do
    Bytes.set b (i + 1) (Char.chr ((h lsr (8 * (6 - i))) land 0xff))
  done;
  Bytes.set b 8 (Char.chr ((n_kb lsr 8) land 0x03));
  Bytes.set b 9 (Char.chr (n_kb land 0xff));
  Bytes.set b 10 (Char.chr (t_sec land 0x3f));
  Bytes.unsafe_to_string b

module Fast = struct
  let name = "siphash-2-4"

  (* SipHash wants a 16-byte key; shorter/longer keys are normalized by
     hashing them under a fixed key first.  Keys from [Crypto.Secret] are
     already 16 bytes, so the hot path takes the no-op branch. *)
  let[@inline] normalize key =
    if String.length key = 16 then key
    else
      Siphash.mac_string ~key:"TVA key normali." key
      ^ Siphash.mac_string ~key:"zation constant." key

  let mac56 ~key msg = Int64.logand (Siphash.mac ~key:(normalize key) msg) mask56

  let[@inline] bswap32 x =
    ((x lsr 24) land 0xff)
    lor ((x lsr 8) land 0xff00)
    lor ((x lsl 8) land 0xff0000)
    lor ((x land 0xff) lsl 24)

  (* Direct word-packed equivalents of hashing the preimage strings: byte i
     of the message lands in bits [8i, 8i+8) of the little-endian word. *)

  let mac56_precap_p ~prep ~src ~dst ~ts =
    let w0 =
      Int64.logor
        (Int64.of_int (bswap32 src))
        (Int64.shift_left (Int64.of_int (bswap32 dst)) 32)
    in
    let tail = Int64.of_int (ts land 0xff) in
    Int64.logand (Siphash.mac_short_k ~k0:prep.k0 ~k1:prep.k1 ~len:9 ~w0 ~tail) mask56

  let mac56_cap_p ~prep ~precap_ts ~precap_hash ~n_kb ~t_sec =
    let h = Int64.to_int precap_hash in
    let lo =
      (precap_ts land 0xff)
      lor (((h lsr 48) land 0xff) lsl 8)
      lor (((h lsr 40) land 0xff) lsl 16)
      lor (((h lsr 32) land 0xff) lsl 24)
      lor (((h lsr 24) land 0xff) lsl 32)
      lor (((h lsr 16) land 0xff) lsl 40)
      lor (((h lsr 8) land 0xff) lsl 48)
    in
    let w0 = Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int (h land 0xff)) 56) in
    let tail =
      Int64.of_int
        (((n_kb lsr 8) land 0x03) lor ((n_kb land 0xff) lsl 8) lor ((t_sec land 0x3f) lsl 16))
    in
    Int64.logand (Siphash.mac_short_k ~k0:prep.k0 ~k1:prep.k1 ~len:11 ~w0 ~tail) mask56

  (* The paired entry points pack both preimages and hand them to the
     interleaved [mac_short_k2] core, so two packets' tags cost barely more
     than one serial hash. *)

  let mac56_precap_p2 ~prep ~src_a ~dst_a ~ts_a ~src_b ~dst_b ~ts_b =
    let w0a =
      Int64.logor
        (Int64.of_int (bswap32 src_a))
        (Int64.shift_left (Int64.of_int (bswap32 dst_a)) 32)
    and w0b =
      Int64.logor
        (Int64.of_int (bswap32 src_b))
        (Int64.shift_left (Int64.of_int (bswap32 dst_b)) 32)
    in
    let ha, hb =
      Siphash.mac_short_k2 ~k0:prep.k0 ~k1:prep.k1 ~len:9 ~w0a
        ~taila:(Int64.of_int (ts_a land 0xff))
        ~w0b
        ~tailb:(Int64.of_int (ts_b land 0xff))
    in
    (Int64.logand ha mask56, Int64.logand hb mask56)

  let[@inline] cap_w0 ~precap_ts ~precap_hash =
    let h = Int64.to_int precap_hash in
    let lo =
      (precap_ts land 0xff)
      lor (((h lsr 48) land 0xff) lsl 8)
      lor (((h lsr 40) land 0xff) lsl 16)
      lor (((h lsr 32) land 0xff) lsl 24)
      lor (((h lsr 24) land 0xff) lsl 32)
      lor (((h lsr 16) land 0xff) lsl 40)
      lor (((h lsr 8) land 0xff) lsl 48)
    in
    Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int (h land 0xff)) 56)

  let[@inline] cap_tail ~n_kb ~t_sec =
    Int64.of_int
      (((n_kb lsr 8) land 0x03) lor ((n_kb land 0xff) lsl 8) lor ((t_sec land 0x3f) lsl 16))

  let mac56_cap_p2 ~prep ~precap_ts_a ~precap_hash_a ~n_kb_a ~t_sec_a ~precap_ts_b
      ~precap_hash_b ~n_kb_b ~t_sec_b =
    let ha, hb =
      Siphash.mac_short_k2 ~k0:prep.k0 ~k1:prep.k1 ~len:11
        ~w0a:(cap_w0 ~precap_ts:precap_ts_a ~precap_hash:precap_hash_a)
        ~taila:(cap_tail ~n_kb:n_kb_a ~t_sec:t_sec_a)
        ~w0b:(cap_w0 ~precap_ts:precap_ts_b ~precap_hash:precap_hash_b)
        ~tailb:(cap_tail ~n_kb:n_kb_b ~t_sec:t_sec_b)
    in
    (Int64.logand ha mask56, Int64.logand hb mask56)

  let prepare key =
    let key = normalize key in
    let k0, k1 = Siphash.key_words key in
    { pk = key; k0; k1 }

  let mac56_precap ~key ~src ~dst ~ts = mac56_precap_p ~prep:(prepare key) ~src ~dst ~ts

  let mac56_cap ~key ~precap_ts ~precap_hash ~n_kb ~t_sec =
    mac56_cap_p ~prep:(prepare key) ~precap_ts ~precap_hash ~n_kb ~t_sec
end

(* Aes and Sha serve the prototype-fidelity benchmarks, not the hot path,
   so their fixed-preimage entry points just build the string preimage and
   their paired entry points are two sequential calls. *)

module Aes = struct
  let name = "aes-hash-mmo"
  let mac56 ~key msg = Int64.logand (int64_of_prefix (Aes_hash.mac ~key msg)) mask56
  let mac56_precap ~key ~src ~dst ~ts = mac56 ~key (precap_preimage ~src ~dst ~ts)

  let mac56_cap ~key ~precap_ts ~precap_hash ~n_kb ~t_sec =
    mac56 ~key (cap_preimage ~precap_ts ~precap_hash ~n_kb ~t_sec)

  let prepare key = { pk = key; k0 = 0L; k1 = 0L }
  let mac56_precap_p ~prep = mac56_precap ~key:prep.pk

  let mac56_cap_p ~prep = mac56_cap ~key:prep.pk

  let mac56_precap_p2 ~prep ~src_a ~dst_a ~ts_a ~src_b ~dst_b ~ts_b =
    ( mac56_precap_p ~prep ~src:src_a ~dst:dst_a ~ts:ts_a,
      mac56_precap_p ~prep ~src:src_b ~dst:dst_b ~ts:ts_b )

  let mac56_cap_p2 ~prep ~precap_ts_a ~precap_hash_a ~n_kb_a ~t_sec_a ~precap_ts_b
      ~precap_hash_b ~n_kb_b ~t_sec_b =
    ( mac56_cap_p ~prep ~precap_ts:precap_ts_a ~precap_hash:precap_hash_a ~n_kb:n_kb_a
        ~t_sec:t_sec_a,
      mac56_cap_p ~prep ~precap_ts:precap_ts_b ~precap_hash:precap_hash_b ~n_kb:n_kb_b
        ~t_sec:t_sec_b )
end

module Sha = struct
  let name = "hmac-sha1"
  let mac56 ~key msg = Int64.logand (int64_of_prefix (Hmac_sha1.mac ~key msg)) mask56
  let mac56_precap ~key ~src ~dst ~ts = mac56 ~key (precap_preimage ~src ~dst ~ts)

  let mac56_cap ~key ~precap_ts ~precap_hash ~n_kb ~t_sec =
    mac56 ~key (cap_preimage ~precap_ts ~precap_hash ~n_kb ~t_sec)

  let prepare key = { pk = key; k0 = 0L; k1 = 0L }
  let mac56_precap_p ~prep = mac56_precap ~key:prep.pk

  let mac56_cap_p ~prep = mac56_cap ~key:prep.pk

  let mac56_precap_p2 ~prep ~src_a ~dst_a ~ts_a ~src_b ~dst_b ~ts_b =
    ( mac56_precap_p ~prep ~src:src_a ~dst:dst_a ~ts:ts_a,
      mac56_precap_p ~prep ~src:src_b ~dst:dst_b ~ts:ts_b )

  let mac56_cap_p2 ~prep ~precap_ts_a ~precap_hash_a ~n_kb_a ~t_sec_a ~precap_ts_b
      ~precap_hash_b ~n_kb_b ~t_sec_b =
    ( mac56_cap_p ~prep ~precap_ts:precap_ts_a ~precap_hash:precap_hash_a ~n_kb:n_kb_a
        ~t_sec:t_sec_a,
      mac56_cap_p ~prep ~precap_ts:precap_ts_b ~precap_hash:precap_hash_b ~n_kb:n_kb_b
        ~t_sec:t_sec_b )
end

(* A three-slot memo from key strings to their prepared form, keyed by
   physical identity.  [Secret] hands back the same memoized string for a
   given epoch, and the live set is at most {current epoch, previous
   epoch, public capability key}, so three slots make re-preparation a
   cold event (epoch rotation only). *)
type prep_cache = {
  mutable s0 : string;
  mutable p0 : prepared;
  mutable s1 : string;
  mutable p1 : prepared;
  mutable s2 : string;
  mutable p2 : prepared;
}

let empty_prepared = { pk = ""; k0 = 0L; k1 = 0L }

let prep_cache () =
  { s0 = ""; p0 = empty_prepared; s1 = ""; p1 = empty_prepared; s2 = ""; p2 = empty_prepared }

let prepared_of (module H : S) cache key =
  if cache.s0 == key then cache.p0
  else if cache.s1 == key then cache.p1
  else if cache.s2 == key then cache.p2
  else begin
    let p = H.prepare key in
    cache.s2 <- cache.s1;
    cache.p2 <- cache.p1;
    cache.s1 <- cache.s0;
    cache.p1 <- cache.p0;
    cache.s0 <- key;
    cache.p0 <- p;
    p
  end
