(** SipHash-2-4 (Aumasson–Bernstein), a fast keyed hash with a 128-bit key
    and 64-bit output.

    The simulator validates millions of capabilities per run, so by default
    it binds capabilities with SipHash rather than the heavier AES-hash /
    SHA-1 pair used for the Table 1 prototype benchmarks.  Both sit behind
    the {!Keyed_hash} interface. *)

val mac : key:string -> string -> int64
(** [mac ~key msg] is the 64-bit SipHash-2-4 tag of [msg].  Raises
    [Invalid_argument] if [key] is not 16 bytes. *)

val mac_string : key:string -> string -> string
(** Same tag rendered as 8 little-endian bytes. *)

val mac_short : key:string -> len:int -> w0:int64 -> tail:int64 -> int64
(** [mac_short ~key ~len ~w0 ~tail] is [mac ~key msg] for a message of
    [len] bytes (8 to 15) whose first 8 bytes, loaded little-endian, are
    [w0] and whose remaining [len - 8] bytes, loaded little-endian with
    upper bytes zero, are [tail].  This is the per-packet entry point: the
    caller packs the preimage into words directly and no string or buffer
    is built.  Raises [Invalid_argument] outside the 8..15 range or if
    [key] is not 16 bytes. *)

val mac_short_k : k0:int64 -> k1:int64 -> len:int -> w0:int64 -> tail:int64 -> int64
(** {!mac_short} with the key already loaded into its two little-endian
    words (see {!key_words}).  Loading the key is most of {!mac_short}'s
    cost, so per-epoch callers hoist it and hit this entry point per
    packet. *)

val mac_short_k2 :
  k0:int64 ->
  k1:int64 ->
  len:int ->
  w0a:int64 ->
  taila:int64 ->
  w0b:int64 ->
  tailb:int64 ->
  int64 * int64
(** Two {!mac_short_k} computations under the same key and length,
    interleaved into one instruction stream.  A single hash is a serial
    dependency chain that leaves ALU ports idle; pairing two independent
    messages roughly halves the per-hash latency.  Returns the pair of
    digests in argument order; equal to calling {!mac_short_k} twice.
    Raises [Invalid_argument] outside the 8..15 length range. *)

val key_words : string -> int64 * int64
(** The two little-endian 64-bit words of a 16-byte key, for
    {!mac_short_k}.  Raises [Invalid_argument] on any other length. *)

val digest_size : int
(** 8 bytes. *)
