(** RSS-style flow-hash sharding of the router datapath (DESIGN §12).

    Hardware line-rate forwarders spread packets across queues by hashing
    the flow tuple at the NIC; this module is that layer for the simulated
    TVA router.  [create ~k] builds K routers ("shards") that share one
    secret and router identity — a capability minted through any shard
    validates on every other — but own private flow caches and counters.
    Packets are partitioned by a dedicated flow hash, so a flow's packets
    always land on the same shard and no lock or atomic is needed anywhere
    on the fast path.

    Determinism: the partition is a pure function of (src, dst), each
    shard's packets stay in submission order, and per-shard observability
    snapshots merge in fixed shard order — results are bit-identical
    however many domains run the shards, and a K=1 instance is
    bit-identical to a plain unsharded {!Tva.Router}. *)

type t

val create :
  ?params:Tva.Params.t ->
  ?hash:Tva.Capability.keyed ->
  ?trust_boundary:bool ->
  ?observe:bool ->
  ?cache_entries:int ->
  k:int ->
  secret_master:string ->
  router_id:int ->
  sim:Sim.t ->
  link_bps:float ->
  unit ->
  t
(** [cache_entries] (default: the {!Tva.Params} provisioning for
    [link_bps]) is the TOTAL flow-cache capacity, split [total / K] per
    shard (remainder to the low shards) with each shard's table pre-sized
    to its share, so the aggregate state bound matches an unsharded
    router's.  [observe] (default false) gives every shard a private
    counter registry; leave it off for the zero-overhead fast path.
    Raises [Invalid_argument] if [k < 1] or there are fewer entries than
    shards. *)

val k : t -> int

val router : t -> int -> Tva.Router.t
(** The underlying shard, for inspection (cache, counters). *)

val shard_of : t -> src:Wire.Addr.t -> dst:Wire.Addr.t -> int
(** The shard a flow maps to.  The hash is deliberately independent of
    both {!Sfq.hash} (queueing bucket choice) and the flow cache's slot
    hash — see DESIGN §12. *)

val process : t -> in_interface:int -> Wire.Packet.t -> unit
(** Route one packet through its shard (sequential). *)

val partition : t -> ?off:int -> ?len:int -> Wire.Packet.t array -> Wire.Packet.t array array
(** Stable partition of a window into per-shard arrays (index = shard):
    within a shard, packets keep their submission order. *)

val process_batch : t -> in_interface:int -> ?off:int -> ?len:int -> Wire.Packet.t array -> unit
(** Partition, then run every shard's batch sequentially in shard order —
    the single-domain reference the staged runners must match. *)

val process_staged :
  ?jobs:int -> t -> in_interface:int -> ?off:int -> ?len:int -> Wire.Packet.t array -> unit
(** {!process_batch} with the shards run on {!Pool} worker domains.  Each
    job owns exactly one shard (router, cache, counters, packets), so no
    cross-shard synchronization exists on the fast path and the results
    are identical to the sequential reference for any [jobs]. *)

val repeat_staged :
  ?jobs:int ->
  t ->
  in_interface:int ->
  passes:int ->
  ?off:int ->
  ?len:int ->
  Wire.Packet.t array ->
  unit
(** Partition once, then have each shard's domain process its packets
    [passes] times — the steady-state benchmark driver, amortizing both
    the partition and the domain spawn across the whole run. *)

val occupancy : t -> int
(** Total live flow-cache records across shards.  Because the partition
    assigns each flow to exactly one shard, this equals the occupancy an
    unsharded router would have on the same trace (while under capacity) —
    the conservation law the test suite checks. *)

val merged_counters : t -> Tva.Router.counters
(** Sum of the shard counters (a fresh record). *)

val counters_snapshot : t -> Obs.Counters.snap
(** Per-shard counter snapshots in shard order ([[]] unless [observe]);
    deterministic regardless of domain scheduling. *)

val shard_counters : t -> Obs.Counters.t array
(** The live per-shard counter instances in shard order ([[||]] unless
    [observe]) — the allocation-free sources a telemetry ring watches
    ({!Obs.Timeseries.Cells} for the sum, per-shard [Cell] channels for
    balance). *)

val merged_events : t -> int array
(** The snapshot summed pointwise into one array indexed by
    [Obs.Event.to_int]. *)
