type t = {
  shards : Tva.Router.t array;
  k : int;
  registry : Obs.Counters.registry option;
}

(* The shard selector.  Deliberately NOT [Sfq.hash] (whose seed-perturbed
   buckets must stay uncorrelated with shard placement so a queueing
   collision never implies a shard collision) and NOT
   [Flow_cache.slot_hash] (correlation there would funnel each shard's
   flows into a narrow band of its private table).  Multipliers (MMIX LCG
   and an xxHash-family prime, both fitting OCaml's 63-bit int) are shared
   with neither. *)
let[@inline] shard_hash src dst =
  let h = (src * 0x27BB2EE687B0B0FD) lxor (dst * 0x2127599BF4325C37) in
  let h = (h lxor (h lsr 31)) * 0x165667B19E3779F9 in
  (h lxor (h lsr 29)) land max_int

let create ?(params = Tva.Params.default) ?hash ?trust_boundary ?(observe = false) ?cache_entries
    ~k ~secret_master ~router_id ~sim ~link_bps () =
  if k < 1 then invalid_arg "Shardpath.create: k must be >= 1";
  let total =
    match cache_entries with
    | Some n -> n
    | None -> Tva.Params.flow_cache_entries params ~link_bps
  in
  if total < k then invalid_arg "Shardpath.create: fewer cache entries than shards";
  let registry = if observe then Some (Obs.Counters.registry ()) else None in
  let base = total / k and rem = total mod k in
  let shards =
    Array.init k (fun i ->
        let obs =
          match registry with
          | Some r -> Obs.Counters.register r ~name:(Printf.sprintf "shard/%d" i)
          | None -> Obs.Counters.nop
        in
        let entries = base + if i < rem then 1 else 0 in
        (* K=1 must construct its cache exactly as an unsharded router
           would (same initial table, same growth schedule) so the two are
           bit-identical even where behavior depends on table layout
           (eviction scan order); only genuine shards pre-size. *)
        let cache_presize = if k = 1 then None else Some entries in
        Tva.Router.create ~params ?hash ?trust_boundary ~obs ~cache_entries:entries
          ?cache_presize ~secret_master ~router_id ~sim ~link_bps ())
  in
  { shards; k; registry }

let k t = t.k
let router t i = t.shards.(i)

let[@inline] shard_of t ~src ~dst =
  if t.k = 1 then 0 else shard_hash (Wire.Addr.to_int src) (Wire.Addr.to_int dst) mod t.k

let process t ~in_interface (p : Wire.Packet.t) =
  Tva.Router.process t.shards.(shard_of t ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst)
    ~in_interface p

let partition t ?(off = 0) ?len (packets : Wire.Packet.t array) =
  let len = match len with Some n -> n | None -> Array.length packets - off in
  if off < 0 || len < 0 || off + len > Array.length packets then
    invalid_arg "Shardpath.partition: window out of bounds";
  let counts = Array.make t.k 0 in
  for i = off to off + len - 1 do
    let p = Array.unsafe_get packets i in
    let s = shard_of t ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst in
    counts.(s) <- counts.(s) + 1
  done;
  let out =
    Array.map (fun c -> if c = 0 then [||] else Array.make c (Array.unsafe_get packets off)) counts
  in
  let fill = Array.make t.k 0 in
  for i = off to off + len - 1 do
    let p = Array.unsafe_get packets i in
    let s = shard_of t ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst in
    out.(s).(fill.(s)) <- p;
    fill.(s) <- fill.(s) + 1
  done;
  out

let process_batch t ~in_interface ?off ?len packets =
  let parts = partition t ?off ?len packets in
  for s = 0 to t.k - 1 do
    Tva.Router.process_batch t.shards.(s) ~in_interface parts.(s)
  done

(* Each [Pool] job owns exactly one shard — its router, flow cache,
   counters and packets are touched by no other domain, so the fast path
   runs without a single cross-shard lock or atomic.  Results equal
   [process_batch] because the shard hash partitions flows: no two domains
   ever race on a cache entry or a packet. *)
let shard_ids t = List.init t.k Fun.id

let process_staged ?jobs t ~in_interface ?off ?len packets =
  let parts = partition t ?off ?len packets in
  if t.k = 1 then Tva.Router.process_batch t.shards.(0) ~in_interface parts.(0)
  else
    ignore
      (Pool.map ?jobs
         (fun s -> Tva.Router.process_batch t.shards.(s) ~in_interface parts.(s))
         (shard_ids t))

let repeat_staged ?jobs t ~in_interface ~passes ?off ?len packets =
  let parts = partition t ?off ?len packets in
  let run s =
    let mine = parts.(s) in
    for _ = 1 to passes do
      Tva.Router.process_batch t.shards.(s) ~in_interface mine
    done
  in
  if t.k = 1 then run 0 else ignore (Pool.map ?jobs run (shard_ids t))

let occupancy t =
  Array.fold_left (fun acc r -> acc + Tva.Flow_cache.size (Tva.Router.cache r)) 0 t.shards

let merged_counters t =
  let acc =
    {
      Tva.Router.requests = 0;
      regular_cached = 0;
      regular_validated = 0;
      renewals = 0;
      demotions = 0;
      legacy = 0;
    }
  in
  Array.iter
    (fun r ->
      let c = Tva.Router.counters r in
      acc.Tva.Router.requests <- acc.Tva.Router.requests + c.Tva.Router.requests;
      acc.Tva.Router.regular_cached <- acc.Tva.Router.regular_cached + c.Tva.Router.regular_cached;
      acc.Tva.Router.regular_validated <-
        acc.Tva.Router.regular_validated + c.Tva.Router.regular_validated;
      acc.Tva.Router.renewals <- acc.Tva.Router.renewals + c.Tva.Router.renewals;
      acc.Tva.Router.demotions <- acc.Tva.Router.demotions + c.Tva.Router.demotions;
      acc.Tva.Router.legacy <- acc.Tva.Router.legacy + c.Tva.Router.legacy)
    t.shards;
  acc

(* Registry instances come back in creation order — shard order — so the
   snapshot (and any fold over it) is deterministic regardless of how many
   domains ran the shards. *)
let counters_snapshot t =
  match t.registry with None -> [] | Some r -> Obs.Counters.snapshot_all r

(* The live per-shard counter instances, shard order — the telemetry tick
   path watches these through [Obs.Timeseries.Cells] (summed) or per-shard
   [Cell] channels without ever snapshotting. *)
let shard_counters t =
  match t.registry with
  | None -> [||]
  | Some r -> Array.of_list (Obs.Counters.registered r)

let merged_events t =
  List.fold_left
    (fun acc (_, arr) -> Array.mapi (fun i v -> v + arr.(i)) acc)
    (Array.make Obs.Event.count 0)
    (counters_snapshot t)
