(** The software-router fast path of the paper's Sec. 6 prototype, set up
    so each of Table 1's packet types can be exercised in isolation.

    The prototype used the kernel crypto API's AES for pre-capability
    hashes and SHA-1 for capability hashes; this module runs the same
    constructions from {!Crypto}.  The five operations perform exactly the
    work the paper counts:

    - request: one pre-capability hash (AES);
    - regular with a cached entry: flow lookup, nonce compare, byte/ttl
      update — no crypto;
    - regular without a cached entry: two hashes (recompute pre-capability,
      recompute capability) plus entry creation;
    - renewal with a cached entry: fast-path checks plus one fresh
      pre-capability hash;
    - renewal without a cached entry: two validation hashes plus one fresh
      pre-capability hash.

    Each operation is packaged as a closure whose per-call side effects are
    reset internally, so benchmark harnesses can run them millions of
    times. *)

type t

type op =
  | Legacy_forward
  | Request
  | Regular_cached
  | Regular_uncached
  | Renewal_cached
  | Renewal_uncached

val all_ops : op list
val op_name : op -> string

val create :
  ?hash_precap:(module Crypto.Keyed_hash.S) ->
  ?hash_cap:(module Crypto.Keyed_hash.S) ->
  unit ->
  t
(** Defaults: AES-hash for pre-capabilities and HMAC-SHA1 for capabilities,
    the prototype's pairing. *)

val run : t -> op -> unit
(** Execute one packet's worth of processing for [op]. *)

val runner : t -> op -> unit -> unit
(** [runner t op] is a closure for benchmark harnesses. *)

val calibrate : ?iters:int -> t -> op -> float
(** Rough wall-clock nanoseconds per operation (for feeding the Fig. 12
    model outside the Bechamel harness). *)

(** {1 Batched operation} *)

type op_class =
  | Forward  (** route lookup only *)
  | Mint  (** one pre-capability hash *)
  | Cached  (** flow-cache fast path, no crypto *)
  | Validate  (** two validation hashes *)

val op_class : op -> op_class
(** The batch-grouping class: ops of one class share an inner loop whose
    invariants (flow entry, prepared keys) hoist out per group. *)

val class_name : op_class -> string

val validate_batch : t -> int -> int
(** [validate_batch t n] runs [n] capability validations with the expiry
    test, epoch-secret selection and key preparation done once per batch,
    and the per-capability hash pairs computed two capabilities at a time
    through the interleaved {!Crypto.Keyed_hash.S.mac56_cap_p2} entry
    points.  Returns how many were Valid — each verdict identical to
    {!run}'s [Regular_uncached] validation. *)

val run_batch : t -> op array -> unit
(** Process a mixed batch: ops are counted into their {!op_class} groups
    and each group runs branch-free.  Equivalent to [Array.iter (run t)]
    (the ops touch disjoint sink state, so regrouping is unobservable). *)

val calibrate_batch : ?iters:int -> ?batch:int -> t -> op -> float
(** {!calibrate} through {!run_batch} windows of [batch] (default 64)
    identical ops: nanoseconds per operation with batch hoisting. *)
