type op =
  | Legacy_forward
  | Request
  | Regular_cached
  | Regular_uncached
  | Renewal_cached
  | Renewal_uncached

let all_ops =
  [ Legacy_forward; Request; Regular_cached; Regular_uncached; Renewal_cached; Renewal_uncached ]

let op_name = function
  | Legacy_forward -> "legacy IP forward"
  | Request -> "request"
  | Regular_cached -> "regular w/ cached entry"
  | Regular_uncached -> "regular w/o cached entry"
  | Renewal_cached -> "renewal w/ cached entry"
  | Renewal_uncached -> "renewal w/o cached entry"

type entry = {
  mutable nonce : int64;
  mutable n_bytes : int;
  mutable bytes_used : int;
  mutable ttl_expiry : float;
  mutable cap_ts : int;
}

type t = {
  precap_hash : (module Crypto.Keyed_hash.S);
  cap_hash : (module Crypto.Keyed_hash.S);
  secret : Crypto.Secret.t;
  now : float;
  src : Wire.Addr.t;
  dst : Wire.Addr.t;
  n_kb : int;
  t_sec : int;
  cap : Wire.Cap_shim.cap; (* a valid capability for (src, dst, n, t) *)
  nonce : int64;
  flows : (int, entry) Hashtbl.t; (* flow key -> state *)
  flow_key : int;
  routes : (int, int) Hashtbl.t; (* destination -> port, the legacy path *)
  mutable sink_cap : Wire.Cap_shim.cap; (* last minted pre-capability *)
  mutable sink_port : int;
}

let create ?(hash_precap = (module Crypto.Keyed_hash.Aes : Crypto.Keyed_hash.S))
    ?(hash_cap = (module Crypto.Keyed_hash.Sha : Crypto.Keyed_hash.S)) () =
  let secret = Crypto.Secret.create ~master:"forwarder-bench-secret" in
  let now = 7.0 in
  let src = Wire.Addr.of_int 0x0a000001 and dst = Wire.Addr.of_int 0xc0a80001 in
  let n_kb = 32 and t_sec = 10 in
  let precap = Tva.Capability.mint_precap2 ~precap_hash:hash_precap ~secret ~now ~src ~dst in
  let cap = Tva.Capability.cap_of_precap2 ~cap_hash:hash_cap ~precap ~n_kb ~t_sec in
  let flows = Hashtbl.create 1024 in
  let flow_key = Wire.Packet.flow_key_of ~src ~dst in
  let nonce = 0x123456789abcL in
  Hashtbl.replace flows flow_key
    { nonce; n_bytes = n_kb * 1024; bytes_used = 0; ttl_expiry = now +. 1.; cap_ts = cap.Wire.Cap_shim.ts };
  let routes = Hashtbl.create 1024 in
  for i = 0 to 255 do
    Hashtbl.replace routes (0xc0a80000 + i) (i land 7)
  done;
  {
    precap_hash = hash_precap;
    cap_hash = hash_cap;
    secret;
    now;
    src;
    dst;
    n_kb;
    t_sec;
    cap;
    nonce;
    flows;
    flow_key;
    routes;
    sink_cap = cap;
    sink_port = 0;
  }

let packet_bytes = 1060 (* 1000 B payload + TCP/IP + capability shim *)

let route t =
  match Hashtbl.find_opt t.routes (Wire.Addr.to_int t.dst) with
  | Some port -> t.sink_port <- port
  | None -> ()

let fast_path_checks t (entry : entry) =
  (* Nonce compare, byte-limit check and charge, ttl update — the entire
     cached-entry cost (no crypto). *)
  Int64.equal entry.nonce t.nonce
  && entry.bytes_used + packet_bytes <= entry.n_bytes
  && begin
       entry.bytes_used <- entry.bytes_used + packet_bytes;
       entry.ttl_expiry <-
         entry.ttl_expiry
         +. (float_of_int packet_bytes *. float_of_int t.t_sec /. float_of_int (t.n_kb * 1024));
       (* Reset so millions of benchmark iterations never trip the byte
          limit and change the measured path. *)
       entry.bytes_used <- 0;
       true
     end

let validate t =
  Tva.Capability.validate2 ~precap_hash:t.precap_hash ~cap_hash:t.cap_hash ~secret:t.secret
    ~now:t.now ~src:t.src ~dst:t.dst ~n_kb:t.n_kb ~t_sec:t.t_sec t.cap

let mint t =
  t.sink_cap <-
    Tva.Capability.mint_precap2 ~precap_hash:t.precap_hash ~secret:t.secret ~now:t.now ~src:t.src
      ~dst:t.dst

let insert_entry t =
  Hashtbl.replace t.flows (t.flow_key + 1)
    {
      nonce = t.nonce;
      n_bytes = t.n_kb * 1024;
      bytes_used = packet_bytes;
      ttl_expiry = t.now +. 1.;
      cap_ts = t.cap.Wire.Cap_shim.ts;
    };
  Hashtbl.remove t.flows (t.flow_key + 1)

let run t op =
  match op with
  | Legacy_forward -> route t
  | Request ->
      mint t;
      route t
  | Regular_cached -> begin
      match Hashtbl.find_opt t.flows t.flow_key with
      | Some entry ->
          ignore (fast_path_checks t entry);
          route t
      | None -> assert false
    end
  | Regular_uncached ->
      (* Two hash computations, then entry creation. *)
      (match validate t with Tva.Capability.Valid -> () | _ -> assert false);
      insert_entry t;
      route t
  | Renewal_cached -> begin
      match Hashtbl.find_opt t.flows t.flow_key with
      | Some entry ->
          ignore (fast_path_checks t entry);
          mint t;
          route t
      | None -> assert false
    end
  | Renewal_uncached ->
      (match validate t with Tva.Capability.Valid -> () | _ -> assert false);
      insert_entry t;
      mint t;
      route t

let runner t op () = run t op

(* Batch grouping (DESIGN §12): ops sharing a class share an inner loop
   whose invariants are hoisted once per group. *)
type op_class = Forward | Mint | Cached | Validate

let op_class = function
  | Legacy_forward -> Forward
  | Request -> Mint
  | Regular_cached | Renewal_cached -> Cached
  | Regular_uncached | Renewal_uncached -> Validate

let class_name = function
  | Forward -> "forward"
  | Mint -> "mint"
  | Cached -> "cached"
  | Validate -> "validate"

(* Batched validation: the expiry test, the epoch-secret choice and the
   key preparation for both hash roles are per-batch work, leaving only
   the two hash computations per capability — and those run two
   capabilities at a time through the interleaved pair entry points.
   Returns the number of Valid verdicts; each is exactly [validate]'s
   verdict for the configured capability. *)
let validate_batch t n =
  if n <= 0 then 0
  else begin
    let (cap : Wire.Cap_shim.cap) = t.cap in
    let ts = cap.Wire.Cap_shim.ts in
    if Tva.Capability.expired ~now:t.now ~ts ~t_sec:t.t_sec then 0
    else begin
      match Crypto.Secret.validating_secret t.secret ~now:t.now ~ts with
      | None -> 0
      | Some key ->
          let module P = (val t.precap_hash : Crypto.Keyed_hash.S) in
          let module C = (val t.cap_hash : Crypto.Keyed_hash.S) in
          let prep = P.prepare key in
          let pub = C.prepare Tva.Capability.public_key in
          let src = Wire.Addr.to_int t.src and dst = Wire.Addr.to_int t.dst in
          let n_kb = t.n_kb and t_sec = t.t_sec in
          let expect = cap.Wire.Cap_shim.hash in
          let valid = ref 0 in
          for _ = 1 to n / 2 do
            let ph_a, ph_b =
              P.mac56_precap_p2 ~prep ~src_a:src ~dst_a:dst ~ts_a:ts ~src_b:src ~dst_b:dst
                ~ts_b:ts
            in
            let ca, cb =
              C.mac56_cap_p2 ~prep:pub ~precap_ts_a:ts ~precap_hash_a:ph_a ~n_kb_a:n_kb
                ~t_sec_a:t_sec ~precap_ts_b:ts ~precap_hash_b:ph_b ~n_kb_b:n_kb ~t_sec_b:t_sec
            in
            if Int64.equal ca expect then incr valid;
            if Int64.equal cb expect then incr valid
          done;
          if n land 1 = 1 then begin
            let ph = P.mac56_precap_p ~prep ~src ~dst ~ts in
            let c = C.mac56_cap_p ~prep:pub ~precap_ts:ts ~precap_hash:ph ~n_kb ~t_sec in
            if Int64.equal c expect then incr valid
          end;
          !valid
    end
  end

(* A mixed batch, stably regrouped so each class runs branch-free: the six
   ops touch disjoint sink state and reset their own side effects, so
   regrouping cannot change what the batch computes — only how often the
   dispatcher runs (once per group instead of once per op). *)
let run_batch t ops =
  let counts = Array.make 6 0 in
  let idx = function
    | Legacy_forward -> 0
    | Request -> 1
    | Regular_cached -> 2
    | Regular_uncached -> 3
    | Renewal_cached -> 4
    | Renewal_uncached -> 5
  in
  Array.iter (fun op -> counts.(idx op) <- counts.(idx op) + 1) ops;
  for _ = 1 to counts.(0) do
    route t
  done;
  for _ = 1 to counts.(1) do
    mint t;
    route t
  done;
  (* Cached classes hoist the flow lookup: the entry is loop-invariant,
     which is precisely what batching buys on this path. *)
  let cached n ~renew =
    if n > 0 then begin
      match Hashtbl.find_opt t.flows t.flow_key with
      | None -> assert false
      | Some entry ->
          for _ = 1 to n do
            ignore (fast_path_checks t entry);
            if renew then mint t;
            route t
          done
    end
  in
  cached counts.(2) ~renew:false;
  cached counts.(4) ~renew:true;
  let validated n ~renew =
    if n > 0 then begin
      ignore (validate_batch t n);
      for _ = 1 to n do
        insert_entry t;
        if renew then mint t;
        route t
      done
    end
  in
  validated counts.(3) ~renew:false;
  validated counts.(5) ~renew:true

let calibrate_batch ?(iters = 20000) ?(batch = 64) t op =
  let batch = max 1 batch in
  let ops = Array.make batch op in
  let batches = max 1 (iters / batch) in
  for _ = 1 to min 16 batches do
    run_batch t ops
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to batches do
    run_batch t ops
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int (batches * batch)

let calibrate ?(iters = 20000) t op =
  (* One warmup pass, then a timed loop. *)
  for _ = 1 to min 1000 iters do
    run t op
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    run t op
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int iters
