(** NetFence routers (Liu et al., SIGCOMM 2010; PAPERS.md).

    One router object plays both NetFence roles, picked per packet:

    - {b access router} for packets arriving over a link whose source node
      is an end host: it validates the congestion-feedback token the
      sender presents, drives a per-(sender, bottleneck) AIMD rate limiter
      from the feedback, and drops packets that exceed the policed rate —
      so a compromised sender converges to its fair share no matter how
      fast it transmits;
    - {b bottleneck router} on the forward path: it stamps every
      feedback-carrying packet with a fresh MACed token whose action is
      [Decr] when the outgoing regular-channel queue is congested and
      [Incr] otherwise ([Decr] is sticky across hops).

    Packets with no NetFence header are the legacy channel: forwarded
    unpoliced but at strict low priority, so a legacy flood starves itself
    rather than the regular channel (the TVA demotion analogue).

    Tokens are bound to the sender address and an 8-bit timestamp with a
    MAC under [Crypto.Secret] epoch keys, exactly the machinery the TVA
    router uses for pre-capabilities; all routers of a run share one
    [secret_master], modeling NetFence's pairwise inter-AS key agreement
    (DESIGN.md Sec. 16). *)

type t

(** AIMD and policing constants, all relative to the access link rate
    where sensible (DESIGN.md Sec. 16 documents the deviations from the
    paper's wide-area constants). *)
type params = {
  control_interval : float;  (** seconds between AIMD rate adjustments *)
  feedback_timeout : float;
      (** a sender still transmitting with no valid feedback for this long
          is treated as if every interval said [Decr] — not presenting
          feedback must never beat presenting it *)
  token_lifetime : int;
      (** seconds (of the 8-bit timestamp clock) a token stays fresh;
          older tokens are ignored, bounding replay *)
  initial_fraction : float;
      (** initial policed rate, as a fraction of the link *)
  incr_fraction : float;
      (** additive increase per interval, as a fraction of the link *)
  decr_factor : float;  (** multiplicative decrease on [Decr] *)
  min_rate_bps : float;  (** floor of the policed rate *)
  burst_bytes : int;  (** policer bucket depth *)
}

val default_params : params

val create :
  ?params:params ->
  secret_master:string ->
  router_id:int ->
  sim:Sim.t ->
  link_bps:float ->
  unit ->
  t
(** A router for one node.  [link_bps] is the bottleneck rate the AIMD
    constants scale from; [secret_master] must be shared by every router
    of the run for cross-router token validation. *)

val handler : t -> Net.handler
(** The node handler: access-side policing for packets arriving from an
    attached host, congestion stamping toward the packet's next link,
    then [Net.forward]. *)

val make_qdisc : bandwidth_bps:float -> Qdisc.t
(** Two-class strict-priority link scheduler: feedback-carrying packets in
    the regular class, headerless legacy traffic below them.  Both classes
    sized like the baseline drop-tail. *)

val mint : t -> now:float -> src:Wire.Addr.t -> Wire.Nf_feedback.action -> Wire.Nf_feedback.token
(** A fresh token binding (sender, this router, timestamp, action) under
    the current epoch secret — what [handler] stamps on the forward
    path.  Exposed for the datapath tests. *)

val validate : t -> now:float -> Wire.Nf_feedback.token -> src:Wire.Addr.t -> Wire.Nf_feedback.action option
(** [Some action] iff the token's MAC verifies for sender [src] under the
    current-or-previous epoch secret and the token is still fresh
    ([token_lifetime]); [None] for forged, stale, or re-bound tokens. *)

val sender_count : t -> int
(** Live (sender, bottleneck) policing entries. *)

val sender_rates : t -> (Wire.Addr.t * float) list
(** Current policed rate per tracked sender, sorted by address — the
    AIMD-convergence observable the tests assert on. *)

val policed : t -> int
(** Packets dropped for exceeding the sender's policed rate. *)

val rejected : t -> int
(** Presented tokens discarded as forged or stale. *)

val flush_senders : t -> unit
(** Drop all policing state (fault injection: state wipe). *)

val rotate_secret : t -> unit
(** Replace the epoch-secret chain (fault injection: key rotation).  A
    router rotated alone stops agreeing with its peers until senders
    re-acquire fresh tokens. *)
