(* Per-destination feedback the sender presents, and per-source stamped
   tokens waiting to be echoed back — the host side of the NetFence loop,
   shaped like [Siff.Host]'s marking echo. *)

type t = {
  node : Net.node;
  sim : Sim.t;
  addr : Wire.Addr.t;
  auto_reply : bool;
  feedback : Wire.Nf_feedback.token Wire.Addr.Tbl.t; (* dst -> token to present *)
  pending_return : Wire.Nf_feedback.token Wire.Addr.Tbl.t; (* src -> token to echo *)
  mutable on_segment : src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit;
}

let addr t = t.addr
let node t = t.node
let set_segment_handler t f = t.on_segment <- f
let feedback_for t ~dst = Wire.Addr.Tbl.find_opt t.feedback dst

let make_header t ~dst =
  let nf =
    match Wire.Addr.Tbl.find_opt t.feedback dst with
    | Some tok -> Wire.Nf_feedback.with_token tok
    | None -> Wire.Nf_feedback.empty ()
  in
  (match Wire.Addr.Tbl.find_opt t.pending_return dst with
  | Some tok ->
      Wire.Addr.Tbl.remove t.pending_return dst;
      nf.Wire.Nf_feedback.returned <- Some tok
  | None -> ());
  nf

let send_body t ~dst body =
  let nf = make_header t ~dst in
  Net.originate t.node (Wire.Packet.make ~nf ~src:t.addr ~dst ~created:(Sim.now t.sim) body)

let send_segment t ~dst seg = send_body t ~dst (Wire.Packet.Tcp seg)
let send_raw t ~dst ~bytes = send_body t ~dst (Wire.Packet.Raw bytes)

let send_legacy t ~dst ~bytes =
  let p = Wire.Packet.make ~src:t.addr ~dst ~created:(Sim.now t.sim) (Wire.Packet.Raw bytes) in
  Net.originate t.node p

let handle_packet t _node ~in_link:_ (p : Wire.Packet.t) =
  if Wire.Addr.equal p.Wire.Packet.dst t.addr then begin
    let src = p.Wire.Packet.src in
    (match p.Wire.Packet.nf with
    | None -> ()
    | Some nf ->
        (* What the path stamped on this packet goes back to its sender on
           our next packet (or the auto reply); what the peer echoed to us
           becomes the token we present from now on.  Last writer wins —
           the freshest feedback is the binding one. *)
        (match nf.Wire.Nf_feedback.stamped with
        | Some tok -> Wire.Addr.Tbl.replace t.pending_return src tok
        | None -> ());
        (match nf.Wire.Nf_feedback.returned with
        | Some tok -> Wire.Addr.Tbl.replace t.feedback src tok
        | None -> ()));
    (match p.Wire.Packet.body with
    | Wire.Packet.Tcp seg -> t.on_segment ~src seg
    | Wire.Packet.Raw _ -> ());
    if t.auto_reply && Wire.Addr.Tbl.mem t.pending_return src then
      send_body t ~dst:src (Wire.Packet.Raw 64)
  end

let create ?(auto_reply = false) ~node () =
  let addr =
    match Net.node_addr node with
    | Some a -> a
    | None -> invalid_arg "Netfence.Host.create: node has no address"
  in
  let t =
    {
      node;
      sim = Net.node_sim node;
      addr;
      auto_reply;
      feedback = Wire.Addr.Tbl.create 16;
      pending_return = Wire.Addr.Tbl.create 16;
      on_segment = (fun ~src:_ _ -> ());
    }
  in
  Net.set_handler node (handle_packet t);
  t
