type params = {
  control_interval : float;
  feedback_timeout : float;
  token_lifetime : int;
  initial_fraction : float;
  incr_fraction : float;
  decr_factor : float;
  min_rate_bps : float;
  burst_bytes : int;
}

let default_params =
  {
    control_interval = 0.25;
    feedback_timeout = 1.0;
    token_lifetime = 2;
    initial_fraction = 1. /. 16.;
    incr_fraction = 1. /. 200.;
    decr_factor = 0.5;
    min_rate_bps = 8e3;
    burst_bytes = 32 * 1024;
  }

(* Per-(sender, bottleneck) AIMD state at the access router.  [pending] is
   the worst feedback seen this control interval ([Decr] wins);
   [last_feedback] is the last time a *valid* token arrived, so a sender
   that stops presenting feedback while still sending decays as if every
   interval said [Decr]. *)
type aimd = {
  policer : Policer.t;
  mutable last_adjust : float;
  mutable last_feedback : float;
  mutable pending : Wire.Nf_feedback.action option;
}

type t = {
  params : params;
  secret_master : string;
  mutable secret : Crypto.Secret.t;
  mutable rotations : int;
  router_id : int;
  sim : Sim.t;
  link_bps : float;
  senders : (int * int, aimd) Hashtbl.t;
  (* outgoing link id -> (regular-channel qdisc if found, congestion
     threshold in packets), resolved once per link *)
  cong : (int, Qdisc.t option * int) Hashtbl.t;
  mutable policed : int;
  mutable rejected : int;
}

let create ?(params = default_params) ~secret_master ~router_id ~sim ~link_bps () =
  {
    params;
    secret_master;
    secret = Crypto.Secret.create ~master:secret_master;
    rotations = 0;
    router_id;
    sim;
    link_bps;
    senders = Hashtbl.create 64;
    cong = Hashtbl.create 8;
    policed = 0;
    rejected = 0;
  }

let policed t = t.policed
let rejected t = t.rejected
let sender_count t = Hashtbl.length t.senders

let sender_rates t =
  Hashtbl.fold
    (fun (src, _) st acc -> (Wire.Addr.of_int src, Policer.rate_bps st.policer) :: acc)
    t.senders []
  |> List.sort (fun (a, _) (b, _) -> Wire.Addr.compare a b)

let flush_senders t = Hashtbl.reset t.senders

let rotate_secret t =
  t.rotations <- t.rotations + 1;
  t.secret <- Crypto.Secret.create ~master:(t.secret_master ^ "#" ^ string_of_int t.rotations)

(* --- feedback tokens ------------------------------------------------- *)

let preimage ~src ~router ~ts ~action =
  Printf.sprintf "nf|%d|%d|%d|%d" src router ts (Wire.Nf_feedback.action_bit action)

let mint t ~now ~src action =
  let ts = Crypto.Secret.timestamp ~now in
  let key = Crypto.Secret.issuing_secret t.secret ~now in
  let mac =
    Crypto.Keyed_hash.Fast.mac56 ~key
      (preimage ~src:(Wire.Addr.to_int src) ~router:t.router_id ~ts ~action)
  in
  { Wire.Nf_feedback.nf_router = t.router_id; nf_ts = ts; nf_action = action; nf_mac = mac }

(* All routers in a run validate each other's tokens: the shared
   [secret_master] models NetFence's pairwise inter-AS key agreement
   (DESIGN.md Sec. 16), so a token minted at the bottleneck checks out at
   the sender's access router without any per-pair state here. *)
let validate t ~now (tok : Wire.Nf_feedback.token) ~src =
  let reject () =
    t.rejected <- t.rejected + 1;
    None
  in
  let age = (Crypto.Secret.timestamp ~now - tok.Wire.Nf_feedback.nf_ts) land 0xff in
  if age > t.params.token_lifetime then reject ()
  else
    match Crypto.Secret.validating_secret t.secret ~now ~ts:tok.Wire.Nf_feedback.nf_ts with
    | None -> reject ()
    | Some key ->
        let expect =
          Crypto.Keyed_hash.Fast.mac56 ~key
            (preimage ~src:(Wire.Addr.to_int src) ~router:tok.Wire.Nf_feedback.nf_router
               ~ts:tok.Wire.Nf_feedback.nf_ts ~action:tok.Wire.Nf_feedback.nf_action)
        in
        if Int64.equal expect tok.Wire.Nf_feedback.nf_mac then
          Some tok.Wire.Nf_feedback.nf_action
        else reject ()

(* --- access-side AIMD policing --------------------------------------- *)

let sender_state t ~now ~src ~bottleneck =
  let src_i = Wire.Addr.to_int src in
  let key = (src_i, bottleneck) in
  match Hashtbl.find_opt t.senders key with
  | Some st -> st
  | None -> (
      (* The token's minting router moves as congestion does: bootstrap
         packets carry none (bottleneck 0), uncongested paths echo the
         last hop's stamp, and a congested bottleneck takes over via the
         sticky Decr.  The sender's entry follows the feedback — migrating
         keeps one continuous rate history, so an Incr cannot grow a
         different limiter than the one the bottleneck's Decr shrank. *)
      let prev =
        Hashtbl.fold
          (fun (s, b) st acc -> if s = src_i && acc = None then Some (b, st) else acc)
          t.senders None
      in
      match prev with
      | Some (b, st) ->
          Hashtbl.remove t.senders (src_i, b);
          Hashtbl.add t.senders key st;
          st
      | None ->
          let st =
            {
              policer =
                Policer.create
                  ~rate_bps:(t.params.initial_fraction *. t.link_bps)
                  ~burst_bytes:t.params.burst_bytes;
              last_adjust = now;
              last_feedback = now;
              pending = None;
            }
          in
          Hashtbl.add t.senders key st;
          st)

let adjust t st ~now =
  if now -. st.last_adjust >= t.params.control_interval then begin
    let action =
      if now -. st.last_feedback > t.params.feedback_timeout then Some Wire.Nf_feedback.Decr
      else st.pending
    in
    (match action with
    | Some Wire.Nf_feedback.Incr ->
        Policer.set_rate st.policer
          ~rate_bps:
            (Float.min t.link_bps
               (Policer.rate_bps st.policer +. (t.params.incr_fraction *. t.link_bps)))
    | Some Wire.Nf_feedback.Decr ->
        Policer.set_rate st.policer
          ~rate_bps:
            (Float.max t.params.min_rate_bps
               (Policer.rate_bps st.policer *. t.params.decr_factor))
    | None -> ());
    st.pending <- None;
    st.last_adjust <- now
  end

(* [true] when the packet conforms and may be forwarded. *)
let police t ~now ~src (nf : Wire.Nf_feedback.t) ~bytes =
  let bottleneck, feedback =
    match nf.Wire.Nf_feedback.token with
    | None -> (0, None)
    | Some tok -> begin
        match validate t ~now tok ~src with
        | Some action -> (tok.Wire.Nf_feedback.nf_router, Some action)
        | None -> (0, None)
      end
  in
  let st = sender_state t ~now ~src ~bottleneck in
  (match feedback with
  | Some action ->
      st.last_feedback <- now;
      st.pending <-
        (match (st.pending, action) with
        | Some Wire.Nf_feedback.Decr, _ | _, Wire.Nf_feedback.Decr -> Some Wire.Nf_feedback.Decr
        | _, Wire.Nf_feedback.Incr -> Some Wire.Nf_feedback.Incr)
  | None -> ());
  adjust t st ~now;
  Policer.admit st.policer ~now ~bytes

(* --- forward-path congestion stamping -------------------------------- *)

let regular_qdisc_name = "netfence-reg"

(* Congestion is judged on the regular channel's queue only: the legacy
   class fills under a legacy flood, and charging that backlog to
   feedback-carrying senders would collapse exactly the traffic NetFence
   protects. *)
let congestion_site t out =
  let id = Net.link_id out in
  match Hashtbl.find_opt t.cong id with
  | Some site -> site
  | None ->
      let q = Net.link_qdisc out in
      let reg = ref None in
      Qdisc.iter_nested q (fun sub ->
          if String.equal sub.Qdisc.name regular_qdisc_name && !reg = None then reg := Some sub);
      let capacity =
        Droptail.default_capacity_packets ~bandwidth_bps:(Net.link_bandwidth out) ~delay:0.06
      in
      let site = (!reg, max 4 (capacity / 4)) in
      Hashtbl.add t.cong id site;
      site

let stamp t node ~now (p : Wire.Packet.t) (nf : Wire.Nf_feedback.t) =
  match Net.route_for node p.Wire.Packet.dst with
  | None -> ()
  | Some out ->
      let reg, threshold = congestion_site t out in
      let depth =
        match reg with Some q -> Qdisc.packet_count q | None -> Qdisc.packet_count (Net.link_qdisc out)
      in
      let action =
        if depth >= threshold then Wire.Nf_feedback.Decr else Wire.Nf_feedback.Incr
      in
      Wire.Nf_feedback.stamp nf (mint t ~now ~src:p.Wire.Packet.src action)

(* --- the router datapath --------------------------------------------- *)

let from_attached_host in_link =
  match in_link with
  | None -> false
  | Some l -> Net.node_addr (Net.link_src l) <> None

let handler t node ~in_link (p : Wire.Packet.t) =
  let now = Sim.now t.sim in
  match p.Wire.Packet.nf with
  | None ->
      (* Legacy channel: no policing state, forwarded at low priority by
         [make_qdisc]'s classifier. *)
      Net.forward node p
  | Some nf ->
      let conform =
        if from_attached_host in_link then
          police t ~now ~src:p.Wire.Packet.src nf ~bytes:(Wire.Packet.size p)
        else true
      in
      if conform then begin
        stamp t node ~now p nf;
        Net.forward node p
      end
      else t.policed <- t.policed + 1

(* --- link scheduler --------------------------------------------------- *)

let classify (p : Wire.Packet.t) =
  match p.Wire.Packet.nf with Some _ -> 0 (* regular *) | None -> 1 (* legacy *)

let make_qdisc ~bandwidth_bps =
  let packets = Droptail.default_capacity_packets ~bandwidth_bps ~delay:0.06 in
  let bytes = Droptail.default_capacity ~bandwidth_bps ~delay:0.06 in
  let regular =
    Droptail.create ~name:regular_qdisc_name ~capacity_packets:packets ~capacity_bytes:bytes ()
  in
  let legacy =
    Droptail.create ~name:"netfence-legacy" ~capacity_packets:packets ~capacity_bytes:bytes ()
  in
  Priority.create ~name:"netfence-link" ~classify ~classes:[ regular; legacy ] ()
