(** NetFence end hosts.

    Every non-legacy packet leaves with a feedback header: the latest
    token the destination echoed back (or an empty header while
    bootstrapping), plus — piggybacked — the echo of whatever the path
    stamped on the peer's packets to us.  Receivers with [auto_reply]
    answer raw packets with a 64-byte reply so one-way senders (floods
    included) still close the feedback loop; that is deliberate, because
    in NetFence fairness comes from policing, not from denying
    feedback. *)

type t

val create : ?auto_reply:bool -> node:Net.node -> unit -> t
(** Attach a host to [node] (which must have an address) and take over its
    packet handler.  [auto_reply] is for destination-side hosts. *)

val addr : t -> Wire.Addr.t
val node : t -> Net.node

val send_segment : t -> dst:Wire.Addr.t -> Wire.Tcp_segment.t -> unit
(** TCP segment with the feedback header attached. *)

val send_raw : t -> dst:Wire.Addr.t -> bytes:int -> unit
(** Raw payload with the feedback header attached. *)

val send_legacy : t -> dst:Wire.Addr.t -> bytes:int -> unit
(** No NetFence header at all: travels the legacy (low-priority)
    channel. *)

val set_segment_handler : t -> (src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit) -> unit
(** Demux for received TCP segments. *)

val feedback_for : t -> dst:Wire.Addr.t -> Wire.Nf_feedback.token option
(** The token currently presented on packets to [dst], if any — test
    observability for the echo loop. *)
