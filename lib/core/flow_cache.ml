type entry = {
  e_src : Wire.Addr.t;
  e_dst : Wire.Addr.t;
  mutable nonce : int64;
  mutable n_bytes : int;
  mutable t_sec : int;
  mutable cap_ts : int;
  mutable bytes_used : int;
  mutable slot : int;
}

(* Open addressing with linear probing instead of a Hashtbl keyed on a
   boxed (src, dst) tuple: a lookup touches one flat array and allocates
   nothing but the final [Some].  [Tomb] marks a deleted slot so probe
   chains stay intact; tombs are recycled by [rehash].  The invariant
   live + tombs <= length/2 guarantees every probe terminates at an
   [Empty] slot.

   The ttl lives outside the entry record, in an unboxed float array
   parallel to [slots] ([ttls.(e.slot)] is [e]'s expiry).  A [mutable
   float] field in a mixed record is a pointer to a boxed float, so every
   ttl update used to allocate 2 minor words — the last avoidable
   allocation on the cached-nonce path (ROADMAP item 2).  Storing it SoA
   makes the charge path allocation-free and keeps every entry record
   all-scalar. *)
type slot = Empty | Tomb | Used of entry

type t = {
  mutable slots : slot array; (* length always a power of two *)
  mutable ttls : float array; (* unboxed; parallel to [slots] by index *)
  mutable live : int;
  mutable tombs : int;
  mutable cursor : int; (* incremental-sweep position, see [reclaim_one] *)
  max_entries : int;
  mutable evictions : int; (* records reclaimed (ttl/cap expiry), ever *)
  mutable hwm : int; (* live-records high-water mark *)
  obs : Obs.Counters.t;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

(* Table length that holds [n] live records without violating the
   live + tombs <= length/2 probe-termination invariant. *)
let len_for n = next_pow2 (2 * n) 16

let create ?(obs = Obs.Counters.nop) ?presize ~max_entries () =
  if max_entries <= 0 then invalid_arg "Flow_cache.create: capacity must be positive";
  let len =
    match presize with
    | None -> next_pow2 (min (2 * max_entries) 1024) 16
    | Some n ->
        if n <= 0 then invalid_arg "Flow_cache.create: presize must be positive";
        len_for (min n max_entries)
  in
  {
    slots = Array.make len Empty;
    ttls = Array.make len neg_infinity;
    live = 0;
    tombs = 0;
    cursor = 0;
    max_entries;
    evictions = 0;
    hwm = 0;
    obs;
  }

let size t = t.live
let capacity t = t.max_entries
let evictions t = t.evictions
let hwm t = t.hwm
let ttls t = t.ttls

(* Deterministic multiplicative mix of the two 32-bit addresses; OCaml int
   multiplication wraps, which is exactly what we want here. *)
let[@inline] slot_hash src dst =
  let h = (src * 0x9E3779B1) + dst in
  let h = h * 0x85EBCA6B in
  (h lxor (h lsr 29)) land max_int

let[@inline] home t ~src ~dst =
  slot_hash (Wire.Addr.to_int src) (Wire.Addr.to_int dst) land (Array.length t.slots - 1)

(* Physical-identity miss sentinel for the allocation-free [find]: the
   batch fast path compares [find ... != no_entry] instead of matching an
   allocated option.  Nothing ever inserts it; [slot = -1] makes any
   accidental ttl access fail fast on the bounds check. *)
let no_entry =
  {
    e_src = Wire.Addr.of_int 0;
    e_dst = Wire.Addr.of_int 0;
    nonce = -1L;
    n_bytes = 0;
    t_sec = 0;
    cap_ts = 0;
    bytes_used = 0;
    slot = -1;
  }

(* A top-level tail-recursive probe on purpose: the natural local [rec go]
   closes over [slots]/[mask]/[src]/[dst], and that closure is 7 minor
   words on every call — the single biggest allocation on the cached-nonce
   path.  With everything passed as arguments the tail call compiles to a
   jump and the whole probe allocates nothing. *)
let rec probe slots mask src dst i =
  match Array.unsafe_get slots i with
  | Empty -> no_entry
  | Used e when Wire.Addr.equal e.e_src src && Wire.Addr.equal e.e_dst dst -> e
  | Used _ | Tomb -> probe slots mask src dst ((i + 1) land mask)

let[@inline] find t ~src ~dst =
  probe t.slots (Array.length t.slots - 1) src dst (home t ~src ~dst)

let lookup t ~src ~dst =
  let slots = t.slots in
  let mask = Array.length slots - 1 in
  let rec go i =
    match Array.unsafe_get slots i with
    | Empty -> None
    | Used e when Wire.Addr.equal e.e_src src && Wire.Addr.equal e.e_dst dst -> Some e
    | Used _ | Tomb -> go ((i + 1) land mask)
  in
  go (home t ~src ~dst)

let ttl_remaining t entry ~now = t.ttls.(entry.slot) -. now

(* The byte->time conversion at the heart of the bound: a packet of L bytes
   under a grant of N bytes / T seconds extends the ttl by L*T/N. *)
let time_value ~bytes ~n_bytes ~t_sec =
  float_of_int bytes *. float_of_int t_sec /. float_of_int n_bytes

let[@inline] reclaimable_at t i entry ~now =
  t.ttls.(i) -. now <= 0.
  || Capability.expired ~now ~ts:entry.cap_ts ~t_sec:entry.t_sec

let[@inline] kill t i =
  t.slots.(i) <- Tomb;
  t.live <- t.live - 1;
  t.tombs <- t.tombs + 1

(* A reclaim is an eviction for accounting purposes; explicit [remove] (a
   host tearing down its own flow) is not. *)
let[@inline] evict t i =
  kill t i;
  t.evictions <- t.evictions + 1;
  Obs.Counters.incr t.obs Obs.Event.Cache_evicted

let sweep t ~now =
  let slots = t.slots in
  let reclaimed = ref 0 in
  for i = 0 to Array.length slots - 1 do
    match slots.(i) with
    | Used e when reclaimable_at t i e ~now ->
        evict t i;
        incr reclaimed
    | Used _ | Empty | Tomb -> ()
  done;
  !reclaimed

(* Amortized eviction: instead of folding over the whole table on every
   insert into a full cache, resume a scan from where the last one stopped
   and free the first reclaimable record found.  A full cycle without a
   find means the cache is genuinely full. *)
let reclaim_one t ~now =
  let slots = t.slots in
  let len = Array.length slots in
  let mask = len - 1 in
  let rec go remaining i =
    if remaining = 0 then false
    else
      match slots.(i) with
      | Used e when reclaimable_at t i e ~now ->
          evict t i;
          t.cursor <- (i + 1) land mask;
          true
      | Used _ | Empty | Tomb -> go (remaining - 1) ((i + 1) land mask)
  in
  go len (t.cursor land mask)

let rehash t new_len =
  let old = t.slots in
  let old_ttls = t.ttls in
  let slots = Array.make new_len Empty in
  let ttls = Array.make new_len neg_infinity in
  let mask = new_len - 1 in
  t.slots <- slots;
  t.ttls <- ttls;
  t.tombs <- 0;
  t.cursor <- 0;
  Array.iter
    (function
      | Used e ->
          let ttl = old_ttls.(e.slot) in
          let rec place i =
            match slots.(i) with
            | Empty ->
                slots.(i) <- Used e;
                ttls.(i) <- ttl;
                e.slot <- i
            | Used _ | Tomb -> place ((i + 1) land mask)
          in
          place (slot_hash (Wire.Addr.to_int e.e_src) (Wire.Addr.to_int e.e_dst) land mask)
      | Empty | Tomb -> ())
    old

(* Grow (never shrink) the table so [n] live records fit without another
   rehash — per-shard caches call this once at creation instead of paying
   log2(n) incremental rehashes while they warm up. *)
let presize t n =
  if n <= 0 then invalid_arg "Flow_cache.presize: hint must be positive";
  let want = len_for (min n t.max_entries) in
  if want > Array.length t.slots then rehash t want

type insert_result = Inserted of entry | Cache_full | Over_limit

let insert t ~now ~src ~dst ~nonce ~n_kb ~t_sec ~cap_ts ~packet_bytes =
  let n_bytes = n_kb * 1024 in
  if packet_bytes > n_bytes then Over_limit
  else if t.live >= t.max_entries && not (reclaim_one t ~now) then Cache_full
  else begin
    let len = Array.length t.slots in
    if (t.live + t.tombs + 1) * 2 > len then
      rehash t (if (t.live + 1) * 2 > len then 2 * len else len);
    let ttl = now +. time_value ~bytes:packet_bytes ~n_bytes ~t_sec in
    let entry =
      {
        e_src = src;
        e_dst = dst;
        nonce;
        n_bytes;
        t_sec;
        cap_ts;
        bytes_used = packet_bytes;
        slot = -1;
      }
    in
    let slots = t.slots in
    let mask = Array.length slots - 1 in
    (* Replace an existing record for the flow if there is one; otherwise
       reuse the first tombstone on the chain or claim the empty slot. *)
    let rec place i tomb =
      match slots.(i) with
      | Empty ->
          let dest = if tomb >= 0 then tomb else i in
          if tomb >= 0 then t.tombs <- t.tombs - 1;
          slots.(dest) <- Used entry;
          entry.slot <- dest;
          t.ttls.(dest) <- ttl;
          t.live <- t.live + 1;
          if t.live > t.hwm then t.hwm <- t.live
      | Used e when Wire.Addr.equal e.e_src src && Wire.Addr.equal e.e_dst dst ->
          slots.(i) <- Used entry;
          entry.slot <- i;
          t.ttls.(i) <- ttl
      | Tomb -> place ((i + 1) land mask) (if tomb >= 0 then tomb else i)
      | Used _ -> place ((i + 1) land mask) tomb
    in
    place (home t ~src ~dst) (-1);
    Inserted entry
  end

type charge_result = Charged | Byte_limit

let charge t entry ~now:_ ~bytes =
  if entry.bytes_used + bytes > entry.n_bytes then Byte_limit
  else begin
    entry.bytes_used <- entry.bytes_used + bytes;
    (* ttl grows by the packet's time value; deliberately no clamping to
       [now] — the 2N bound's proof needs total ttl = bytes * T/N. *)
    t.ttls.(entry.slot) <-
      t.ttls.(entry.slot) +. time_value ~bytes ~n_bytes:entry.n_bytes ~t_sec:entry.t_sec;
    Charged
  end

let renew t entry ~now ~nonce ~n_kb ~t_sec ~cap_ts ~packet_bytes =
  let n_bytes = n_kb * 1024 in
  if packet_bytes > n_bytes then Byte_limit
  else begin
    entry.nonce <- nonce;
    entry.n_bytes <- n_bytes;
    entry.t_sec <- t_sec;
    entry.cap_ts <- cap_ts;
    entry.bytes_used <- packet_bytes;
    (* A fresh capability's clock starts now; stale credit from the old
       grant must not carry over. *)
    t.ttls.(entry.slot) <-
      Float.max t.ttls.(entry.slot) now +. time_value ~bytes:packet_bytes ~n_bytes ~t_sec;
    Charged
  end

let remove t entry =
  let slots = t.slots in
  let mask = Array.length slots - 1 in
  let rec go i =
    match slots.(i) with
    | Empty -> ()
    | Used e when e == entry -> kill t i
    | Used _ | Tomb -> go ((i + 1) land mask)
  in
  go (home t ~src:entry.e_src ~dst:entry.e_dst)

let iter t f =
  Array.iter (function Used e -> f e | Empty | Tomb -> ()) t.slots

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) Empty;
  t.live <- 0;
  t.tombs <- 0;
  t.cursor <- 0
