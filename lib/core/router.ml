type counters = {
  mutable requests : int;
  mutable regular_cached : int;
  mutable regular_validated : int;
  mutable renewals : int;
  mutable demotions : int;
  mutable legacy : int;
}

type t = {
  params : Params.t;
  hash : Capability.keyed;
  trust_boundary : bool;
  mutable secret : Crypto.Secret.t;
  secret_master : string;
  mutable rotations : int;
  router_id : int;
  sim : Sim.t;
  cache : Flow_cache.t;
  counters : counters;
  obs : Obs.Counters.t; (* event-coded registry; [Obs.Counters.nop] when off *)
  (* Per-packet hot-path memos: prepared hash keys (per epoch secret) and
     this router's path-id tag per incoming interface.  Both hold pure
     functions of stable inputs, so they are caches in the strict sense —
     hits and misses produce identical packets. *)
  prep : Crypto.Keyed_hash.prep_cache;
  tags : (int, int) Hashtbl.t;
}

let create ?(params = Params.default) ?(hash = (module Crypto.Keyed_hash.Fast : Crypto.Keyed_hash.S))
    ?(trust_boundary = true) ?(obs = Obs.Counters.nop) ?cache_entries ?cache_presize ~secret_master
    ~router_id ~sim ~link_bps () =
  let max_entries =
    match cache_entries with
    | Some n -> n
    | None -> Params.flow_cache_entries params ~link_bps
  in
  {
    params;
    hash;
    trust_boundary;
    secret = Crypto.Secret.create ~master:secret_master;
    secret_master;
    rotations = 0;
    router_id;
    sim;
    cache = Flow_cache.create ~obs ?presize:cache_presize ~max_entries ();
    counters =
      { requests = 0; regular_cached = 0; regular_validated = 0; renewals = 0; demotions = 0; legacy = 0 };
    obs;
    prep = Crypto.Keyed_hash.prep_cache ();
    tags = Hashtbl.create 16;
  }

let counters t = t.counters
let cache t = t.cache

let flush_cache t = Flow_cache.clear t.cache

let rotate_secret t =
  (* Each rotation must yield a fresh secret, so derive the new master from
     a counter — rotating twice used to land on the same "<id>/rotated"
     master, silently re-validating capabilities from before the first
     rotation. *)
  t.rotations <- t.rotations + 1;
  t.secret <-
    Crypto.Secret.create ~master:(t.secret_master ^ "/rotated/" ^ string_of_int t.rotations)

(* Every demotion carries a reason event; the total under [Obs.Event.Demoted]
   always equals the sum of the reasons (and [counters.demotions]). *)
let demote t (shim : Wire.Cap_shim.t) ~(reason : Obs.Event.t) =
  shim.Wire.Cap_shim.demoted <- true;
  t.counters.demotions <- t.counters.demotions + 1;
  Obs.Counters.incr t.obs reason;
  Obs.Counters.incr t.obs Obs.Event.Demoted

(* The capability addressed to this router sits at [ptr] in the array. *)
let my_cap (shim : Wire.Cap_shim.t) (caps : Wire.Cap_shim.cap array) =
  let ptr = shim.Wire.Cap_shim.ptr in
  if ptr >= 0 && ptr < Array.length caps then Some caps.(ptr) else None

(* [Path_id.tag] is a SipHash over a formatted string; it is a pure
   function of (router, interface), so each interface's tag is computed
   once and then served from [t.tags]. *)
let tag_of_interface t ~in_interface =
  match Hashtbl.find t.tags in_interface with
  | tag -> tag
  | exception Not_found ->
      let tag = Path_id.tag ~router_id:t.router_id ~interface_id:in_interface in
      Hashtbl.add t.tags in_interface tag;
      tag

let process_request t ~in_interface (p : Wire.Packet.t) (shim : Wire.Cap_shim.t) =
  t.counters.requests <- t.counters.requests + 1;
  if t.trust_boundary then Path_id.push shim (tag_of_interface t ~in_interface);
  let now = Sim.now t.sim in
  let precap =
    Capability.mint_precap_cached ~hash:t.hash ~cache:t.prep ~secret:t.secret ~now
      ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst
  in
  match shim.Wire.Cap_shim.kind with
  | Wire.Cap_shim.Request req ->
      if Wire.Cap_shim.precap_count req >= 255 then
        demote t shim ~reason:Obs.Event.Demoted_header_full (* header space exhausted *)
      else begin
        Wire.Cap_shim.push_precap req precap;
        Obs.Counters.incr t.obs Obs.Event.Request_minted
      end
  | Wire.Cap_shim.Regular _ -> assert false

(* The outcome of checking the capability addressed to this router, with
   the failure reason preserved so demotions can be attributed. *)
type listed =
  | L_ok of Wire.Cap_shim.cap
  | L_no_cap (* nothing at [ptr]: sender listed no capability for us *)
  | L_expired
  | L_bad

(* Validate the capability at [ptr] against this router's secret and the
   packet's addresses / N / T.  Two hash computations, per the paper. *)
let validate_listed t (p : Wire.Packet.t) (shim : Wire.Cap_shim.t) ~caps ~n_kb ~t_sec =
  match my_cap shim caps with
  | None -> L_no_cap
  | Some cap -> begin
      let now = Sim.now t.sim in
      match
        Capability.validate_cached ~hash:t.hash ~cache:t.prep ~secret:t.secret ~now
          ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst ~n_kb ~t_sec cap
      with
      | Capability.Valid -> L_ok cap
      | Capability.Expired -> L_expired
      | Capability.Bad_hash -> L_bad
    end

let listed_failure = function
  | L_no_cap -> Obs.Event.Demoted_no_cap
  | L_expired -> Obs.Event.Demoted_cap_expired
  | L_bad | L_ok _ -> Obs.Event.Demoted_bad_cap

(* The "no demotion" sentinel: [valid = true] iff reason is physically this
   value, so the hot path carries no allocated option. *)
let no_demotion = Obs.Event.Packets_in

let process_regular t (p : Wire.Packet.t) (shim : Wire.Cap_shim.t) ~nonce ~caps ~n_kb ~t_sec
    ~renewal =
  let now = Sim.now t.sim in
  let size = Wire.Packet.size p in
  let src = p.Wire.Packet.src and dst = p.Wire.Packet.dst in
  let reason =
    match Flow_cache.lookup t.cache ~src ~dst with
    | Some entry when Int64.equal entry.Flow_cache.nonce nonce ->
        (* Fast path: nonce match.  Still subject to expiry and the byte
           limit. *)
        Obs.Counters.incr t.obs Obs.Event.Nonce_hit;
        if Capability.expired ~now ~ts:entry.Flow_cache.cap_ts ~t_sec:entry.Flow_cache.t_sec then
          Obs.Event.Demoted_cap_expired
        else begin
          match Flow_cache.charge t.cache entry ~now ~bytes:size with
          | Flow_cache.Charged ->
              t.counters.regular_cached <- t.counters.regular_cached + 1;
              no_demotion
          | Flow_cache.Byte_limit -> Obs.Event.Demoted_bytes_exhausted
        end
    | Some entry -> begin
        (* Nonce mismatch: possibly the first packet of a renewed grant.
           Validate the listed capability and replace the entry. *)
        Obs.Counters.incr t.obs Obs.Event.Nonce_miss;
        match validate_listed t p shim ~caps ~n_kb ~t_sec with
        | (L_no_cap | L_expired | L_bad) as fail -> listed_failure fail
        | L_ok cap -> begin
            match
              Flow_cache.renew t.cache entry ~now ~nonce ~n_kb ~t_sec ~cap_ts:cap.Wire.Cap_shim.ts
                ~packet_bytes:size
            with
            | Flow_cache.Charged ->
                t.counters.regular_validated <- t.counters.regular_validated + 1;
                Obs.Counters.incr t.obs Obs.Event.Regular_validated;
                Obs.Counters.incr t.obs Obs.Event.Cache_renewed;
                no_demotion
            | Flow_cache.Byte_limit -> Obs.Event.Demoted_bytes_exhausted
          end
      end
    | None -> begin
        Obs.Counters.incr t.obs Obs.Event.Nonce_miss;
        match validate_listed t p shim ~caps ~n_kb ~t_sec with
        | (L_no_cap | L_expired | L_bad) as fail -> listed_failure fail
        | L_ok cap -> begin
            match
              Flow_cache.insert t.cache ~now ~src ~dst ~nonce ~n_kb ~t_sec
                ~cap_ts:cap.Wire.Cap_shim.ts ~packet_bytes:size
            with
            | Flow_cache.Inserted _ ->
                t.counters.regular_validated <- t.counters.regular_validated + 1;
                Obs.Counters.incr t.obs Obs.Event.Regular_validated;
                Obs.Counters.incr t.obs Obs.Event.Cache_inserted;
                no_demotion
            | Flow_cache.Cache_full -> Obs.Event.Demoted_cache_full
            | Flow_cache.Over_limit -> Obs.Event.Demoted_over_limit
          end
      end
  in
  if reason != no_demotion then demote t shim ~reason
  else begin
    if Array.length caps > 0 then shim.Wire.Cap_shim.ptr <- shim.Wire.Cap_shim.ptr + 1;
    if renewal then begin
      t.counters.renewals <- t.counters.renewals + 1;
      Obs.Counters.incr t.obs Obs.Event.Renewal;
      let precap =
        Capability.mint_precap_cached ~hash:t.hash ~cache:t.prep ~secret:t.secret ~now ~src ~dst
      in
      match shim.Wire.Cap_shim.kind with
      | Wire.Cap_shim.Regular r -> Wire.Cap_shim.push_fresh_precap r precap
      | Wire.Cap_shim.Request _ -> assert false
    end
  end

let process t ~in_interface (p : Wire.Packet.t) =
  Obs.Counters.incr t.obs Obs.Event.Packets_in;
  match p.Wire.Packet.shim with
  | None ->
      t.counters.legacy <- t.counters.legacy + 1;
      Obs.Counters.incr t.obs Obs.Event.Legacy_in
  | Some shim when shim.Wire.Cap_shim.demoted ->
      t.counters.legacy <- t.counters.legacy + 1;
      Obs.Counters.incr t.obs Obs.Event.Legacy_in
  | Some shim -> begin
      match shim.Wire.Cap_shim.kind with
      | Wire.Cap_shim.Request _ ->
          Obs.Counters.incr t.obs Obs.Event.Request_in;
          process_request t ~in_interface p shim
      | Wire.Cap_shim.Regular { nonce; caps; n_kb; t_sec; renewal; rev_fresh_precaps = _ } ->
          Obs.Counters.incr t.obs Obs.Event.Regular_in;
          process_regular t p shim ~nonce ~caps ~n_kb ~t_sec ~renewal
    end

(* Batched [process]: one call, many packets, identical per-packet results
   and identical counter totals — the differential test in the suite holds
   the two together.  Per-batch invariants (the clock, its 8-bit stamp, the
   cache) are hoisted out of the loop, and the events that fire once per
   packet on the hot path are accumulated in locals and flushed once at the
   end.  The steady-state shape — regular packet, cached entry, nonce
   match — runs entirely in the inlined block; every other shape falls back
   to the per-packet functions above, which re-probe the cache but cannot
   drift from the sequential semantics. *)
let process_batch t ~in_interface ?(off = 0) ?len (packets : Wire.Packet.t array) =
  let len = match len with Some n -> n | None -> Array.length packets - off in
  if off < 0 || len < 0 || off + len > Array.length packets then
    invalid_arg "Router.process_batch: window out of bounds";
  let now = Sim.now t.sim in
  let now_ts = Crypto.Secret.timestamp ~now in
  let cache = t.cache in
  let n_legacy = ref 0 and n_request = ref 0 and n_regular = ref 0 in
  let n_nonce_hit = ref 0 and n_cached = ref 0 in
  for i = off to off + len - 1 do
    let p = Array.unsafe_get packets i in
    match p.Wire.Packet.shim with
    | None -> incr n_legacy
    | Some shim when shim.Wire.Cap_shim.demoted -> incr n_legacy
    | Some shim -> begin
        match shim.Wire.Cap_shim.kind with
        | Wire.Cap_shim.Request _ ->
            incr n_request;
            process_request t ~in_interface p shim
        | Wire.Cap_shim.Regular { nonce; caps; n_kb; t_sec; renewal; rev_fresh_precaps = _ } ->
            incr n_regular;
            let entry = Flow_cache.find cache ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst in
            if entry != Flow_cache.no_entry && Int64.equal entry.Flow_cache.nonce nonce then begin
              incr n_nonce_hit;
              if
                Capability.expired_ts ~now_ts ~ts:entry.Flow_cache.cap_ts
                  ~t_sec:entry.Flow_cache.t_sec
              then demote t shim ~reason:Obs.Event.Demoted_cap_expired
              else begin
                (* [Flow_cache.charge], inlined so the cross-module call and
                   its result constructor stay out of the hot loop.  The
                   float expression is operation-for-operation [time_value]
                   — bit-identical ttl growth is part of the batch
                   equivalence contract (differential-tested). *)
                let bytes = Wire.Packet.size_fast p in
                if entry.Flow_cache.bytes_used + bytes > entry.Flow_cache.n_bytes then
                  demote t shim ~reason:Obs.Event.Demoted_bytes_exhausted
                else begin
                    entry.Flow_cache.bytes_used <- entry.Flow_cache.bytes_used + bytes;
                    (* The ttl lives in the cache's SoA float store; re-read
                       the array here because a cold-shape fallback earlier
                       in this batch may have inserted and rehashed. *)
                    let ttls = Flow_cache.ttls cache in
                    let slot = entry.Flow_cache.slot in
                    Array.unsafe_set ttls slot
                      (Array.unsafe_get ttls slot
                      +. float_of_int bytes
                         *. float_of_int entry.Flow_cache.t_sec
                         /. float_of_int entry.Flow_cache.n_bytes);
                    incr n_cached;
                    if Array.length caps > 0 then
                      shim.Wire.Cap_shim.ptr <- shim.Wire.Cap_shim.ptr + 1;
                    if renewal then begin
                      t.counters.renewals <- t.counters.renewals + 1;
                      Obs.Counters.incr t.obs Obs.Event.Renewal;
                      let precap =
                        Capability.mint_precap_cached ~hash:t.hash ~cache:t.prep ~secret:t.secret
                          ~now ~src:p.Wire.Packet.src ~dst:p.Wire.Packet.dst
                      in
                      match shim.Wire.Cap_shim.kind with
                      | Wire.Cap_shim.Regular r -> Wire.Cap_shim.push_fresh_precap r precap
                      | Wire.Cap_shim.Request _ -> assert false
                    end
                  end
              end
            end
            else
              (* Cold shapes — no entry, or a nonce mismatch needing full
                 validation — share the sequential implementation, which
                 fires its own [Nonce_miss] and validation events. *)
              process_regular t p shim ~nonce ~caps ~n_kb ~t_sec ~renewal
      end
  done;
  t.counters.legacy <- t.counters.legacy + !n_legacy;
  t.counters.regular_cached <- t.counters.regular_cached + !n_cached;
  let obs = t.obs in
  Obs.Counters.add obs Obs.Event.Packets_in len;
  Obs.Counters.add obs Obs.Event.Legacy_in !n_legacy;
  Obs.Counters.add obs Obs.Event.Request_in !n_request;
  Obs.Counters.add obs Obs.Event.Regular_in !n_regular;
  Obs.Counters.add obs Obs.Event.Nonce_hit !n_nonce_hit

let handler t node ~in_link p =
  let in_interface = match in_link with None -> -1 | Some l -> Net.node_id (Net.link_src l) in
  process t ~in_interface p;
  Net.forward node p
