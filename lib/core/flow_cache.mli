(** Bounded router state for byte-limited capabilities (paper Sec. 3.6).

    A router keeps a cache record only for flows that send faster than
    [N/T].  Each record carries a time-to-live measured in "time-equivalent
    bytes": it starts at [L*T/N] for the first packet and grows by the same
    conversion for every charged packet.  A record whose ttl has run out may
    be reclaimed at any moment, and the paper proves that no matter when
    reclamation happens a capability can never ship more than [2N] bytes
    (at most [N] across all cached intervals plus [N] in a final uncached
    burst) — the property test in the test suite exercises exactly this
    bound under adversarial eviction.

    Capacity is fixed at creation ([C/(N/T)_min] records for a link of
    capacity [C]); inserting into a full cache reclaims expired records and
    otherwise fails, so attackers cannot exhaust router memory. *)

type t

type entry = {
  e_src : Wire.Addr.t;
  e_dst : Wire.Addr.t;
  mutable nonce : int64;
  mutable n_bytes : int; (* the grant's N, in bytes *)
  mutable t_sec : int;
  mutable cap_ts : int; (* router timestamp inside the validated capability *)
  mutable bytes_used : int;
  mutable slot : int; (* index of this record in the table; see {!ttls} *)
}
(** All-scalar on purpose: the ttl expiry lives in the table's unboxed
    float store ([ttls t].(slot)), not in the record — a [mutable float]
    in a mixed record is boxed, and updating it costs 2 minor words per
    charged packet. *)

val create : ?obs:Obs.Counters.t -> ?presize:int -> max_entries:int -> unit -> t
(** Raises [Invalid_argument] on a nonpositive bound.  [obs] (default
    {!Obs.Counters.nop}) receives a [Cache_evicted] increment per
    reclaimed record.  [presize] is an expected-occupancy hint: the slot
    table is allocated large enough up front that [presize] live records
    (clamped to [max_entries]) trigger no incremental rehash — per-shard
    caches sized [capacity / K] pass it to avoid rehash churn while they
    warm up.  Without it, large caches start small and grow on demand. *)

val size : t -> int
val capacity : t -> int

val evictions : t -> int
(** Records reclaimed over the cache's lifetime — ttl run out or
    capability expired, via {!sweep} or the amortized insert-path scan.
    Explicit {!remove} is not an eviction. *)

val hwm : t -> int
(** Live-record high-water mark, for checking the Sec. 3.6 state bound
    [records <= C/(N/T)_min] empirically. *)

val lookup : t -> src:Wire.Addr.t -> dst:Wire.Addr.t -> entry option

val no_entry : entry
(** The miss sentinel returned by {!find}; compare by physical identity.
    Never stored in any cache. *)

val find : t -> src:Wire.Addr.t -> dst:Wire.Addr.t -> entry
(** Allocation-free {!lookup}: returns {!no_entry} on a miss instead of
    building an option.  This is the batch datapath's entry point. *)

val ttls : t -> float array
(** The SoA ttl store: [(ttls t).(e.slot)] is the absolute virtual time
    entry [e]'s ttl runs out.  The array is replaced wholesale when the
    table rehashes, so never cache it across a call that may {!insert} or
    {!presize} — re-read it per packet (one field load).  The batch
    datapath charges through this array directly. *)

val presize : t -> int -> unit
(** Grow (never shrink) the slot table so the given number of live records
    fits without further rehashing.  Raises [Invalid_argument] on a
    nonpositive hint. *)

type insert_result =
  | Inserted of entry
  | Cache_full  (** no reclaimable record: the packet is demoted, state unchanged *)
  | Over_limit  (** the first packet alone exceeds N *)

val insert :
  t ->
  now:float ->
  src:Wire.Addr.t ->
  dst:Wire.Addr.t ->
  nonce:int64 ->
  n_kb:int ->
  t_sec:int ->
  cap_ts:int ->
  packet_bytes:int ->
  insert_result
(** Creates state for a newly validated capability and charges the packet
    that carried it. *)

type charge_result =
  | Charged
  | Byte_limit  (** would exceed N: demote, no state change *)

val charge : t -> entry -> now:float -> bytes:int -> charge_result
(** The table parameter locates the SoA ttl store the entry charges into
    ([entry] must belong to [t]). *)

val renew :
  t -> entry -> now:float -> nonce:int64 -> n_kb:int -> t_sec:int -> cap_ts:int ->
  packet_bytes:int -> charge_result
(** Replace the entry's capability with a freshly validated one (first
    packet of a renewed grant): byte accounting restarts for the new N. *)

val remove : t -> entry -> unit

val ttl_remaining : t -> entry -> now:float -> float
(** Negative values mean the record is reclaimable. *)

val sweep : t -> now:float -> int
(** Reclaim every record whose ttl has run out or whose capability has
    expired on the modulo clock; returns how many were reclaimed. *)

val iter : t -> (entry -> unit) -> unit

val clear : t -> unit
(** Drop every record (router restart / route change, Sec. 3.8). *)
