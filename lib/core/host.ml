type grant = {
  caps : Wire.Cap_shim.cap list;
  nonce : int64;
  n_kb : int;
  t_sec : int;
  granted_at : float;
  mutable bytes_sent : int;
  mutable caps_carried : bool;
}

type dest_state = {
  mutable grant : grant option;
  mutable renewal_sent_at : float option;
  mutable lost_at : float option;
      (* when a demotion echo (or refusal after one) cancelled the grant;
         cleared on reacquisition.  The earliest loss time is kept. *)
  mutable reacquire_request_at : float option;
      (* first request sent after [lost_at] — the reacquisition latency is
         measured from here, so request-channel queueing counts and the
         time we merely sat without traffic to send does not. *)
}

type counters = {
  mutable requests_sent : int;
  mutable renewals_sent : int;
  mutable grants_received : int;
  mutable refusals_received : int;
  mutable demotions_seen : int;
  mutable demotion_echoes_sent : int;
  mutable grants_issued : int;
  mutable requests_refused : int;
  mutable reacquired : int;
  mutable demoted_recovered : int;
}

type t = {
  params : Params.t;
  hash : Capability.keyed;
  sim : Sim.t;
  node : Net.node;
  addr : Wire.Addr.t;
  policy : Policy.t;
  rng : Rng.t;
  auto_reply : bool;
  dests : dest_state Wire.Addr.Tbl.t;
  pending_return : Wire.Cap_shim.return_info Wire.Addr.Tbl.t;
  pending_demotion_echo : unit Wire.Addr.Tbl.t;
  demoted_srcs : unit Wire.Addr.Tbl.t;
      (* sources whose last capability-bearing packet arrived demoted;
         cleared (counting [Demoted_recovered]) on the next clean regular
         packet from them *)
  mutable on_segment : src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit;
  counters : counters;
  obs : Obs.Counters.t;
  mutable rev_reacquire_latencies : float list;
}

let addr t = t.addr
let node t = t.node
let policy t = t.policy
let counters t = t.counters

let set_segment_handler t f = t.on_segment <- f

let dest_state t dst =
  match Wire.Addr.Tbl.find_opt t.dests dst with
  | Some ds -> ds
  | None ->
      let ds =
        { grant = None; renewal_sent_at = None; lost_at = None; reacquire_request_at = None }
      in
      Wire.Addr.Tbl.add t.dests dst ds;
      ds

let grant_for t ~dst = (dest_state t dst).grant
let invalidate_grant t ~dst = (dest_state t dst).grant <- None
let reacquire_latencies t = List.rev t.rev_reacquire_latencies

let fresh_nonce t = Int64.logand (Rng.bits64 t.rng) 0xffffffffffffL

let grant_expired t g ~now =
  ignore t;
  now -. g.granted_at >= float_of_int g.t_sec || g.bytes_sent >= g.n_kb * 1024

(* Decide the shim for one outgoing packet to [dst]. *)
let choose_shim t ~dst =
  let now = Sim.now t.sim in
  let ds = dest_state t dst in
  (match ds.grant with
  | Some g when grant_expired t g ~now -> ds.grant <- None
  | Some _ | None -> ());
  match ds.grant with
  | None ->
      (match (ds.lost_at, ds.reacquire_request_at) with
      | Some _, None -> ds.reacquire_request_at <- Some now
      | _, _ -> ());
      Policy.note_outgoing_request t.policy ~now ~dst;
      t.counters.requests_sent <- t.counters.requests_sent + 1;
      Wire.Cap_shim.request ()
  | Some g ->
      let n_bytes = g.n_kb * 1024 in
      let age = now -. g.granted_at in
      let renewal_due =
        float_of_int g.bytes_sent > t.params.Params.renewal_bytes_threshold *. float_of_int n_bytes
        || age > t.params.Params.renewal_time_threshold *. float_of_int g.t_sec
      in
      let renewal_allowed =
        match ds.renewal_sent_at with None -> true | Some at -> now -. at > 1.0
      in
      if renewal_due && renewal_allowed then begin
        ds.renewal_sent_at <- Some now;
        t.counters.renewals_sent <- t.counters.renewals_sent + 1;
        g.caps_carried <- true;
        Wire.Cap_shim.regular ~nonce:g.nonce ~caps:g.caps ~n_kb:g.n_kb ~t_sec:g.t_sec
          ~renewal:true ()
      end
      else if not g.caps_carried then begin
        g.caps_carried <- true;
        Wire.Cap_shim.regular ~nonce:g.nonce ~caps:g.caps ~n_kb:g.n_kb ~t_sec:g.t_sec
          ~renewal:false ()
      end
      else
        Wire.Cap_shim.regular ~nonce:g.nonce ~caps:[] ~n_kb:g.n_kb ~t_sec:g.t_sec ~renewal:false ()

(* Piggyback anything we owe the peer: a grant first (it unblocks their
   sending), otherwise a demotion echo. *)
let attach_return_info t ~dst (shim : Wire.Cap_shim.t) =
  match Wire.Addr.Tbl.find_opt t.pending_return dst with
  | Some info ->
      Wire.Addr.Tbl.remove t.pending_return dst;
      shim.Wire.Cap_shim.return_info <- Some info
  | None ->
      if Wire.Addr.Tbl.mem t.pending_demotion_echo dst then begin
        Wire.Addr.Tbl.remove t.pending_demotion_echo dst;
        t.counters.demotion_echoes_sent <- t.counters.demotion_echoes_sent + 1;
        shim.Wire.Cap_shim.return_info <- Some Wire.Cap_shim.Demotion_notice
      end

let dispatch t ~dst ?shim body =
  let p = Wire.Packet.make ?shim ~src:t.addr ~dst ~created:(Sim.now t.sim) body in
  (* Charge the grant for what the routers will see on the wire. *)
  (match (shim, grant_for t ~dst) with
  | Some { Wire.Cap_shim.kind = Wire.Cap_shim.Regular _; _ }, Some g ->
      g.bytes_sent <- g.bytes_sent + Wire.Packet.size p
  | _, _ -> ());
  Net.originate t.node p

let send_body t ~dst body =
  let shim = choose_shim t ~dst in
  attach_return_info t ~dst shim;
  dispatch t ~dst ~shim body

let send_segment t ~dst seg = send_body t ~dst (Wire.Packet.Tcp seg)
let send_raw t ~dst ~bytes = send_body t ~dst (Wire.Packet.Raw bytes)

let send_legacy t ~dst ~bytes = dispatch t ~dst (Wire.Packet.Raw bytes)

let send_request_flood_packet t ~dst ~bytes =
  let shim = Wire.Cap_shim.request () in
  dispatch t ~dst ~shim (Wire.Packet.Raw bytes)

(* --- receive path ------------------------------------------------- *)

let handle_request t ~src ~renewal precaps =
  let now = Sim.now t.sim in
  match Policy.decide t.policy ~now ~src ~renewal with
  | Policy.Granted { n_kb; t_sec } ->
      let caps =
        List.map (fun precap -> Capability.cap_of_precap ~hash:t.hash ~precap ~n_kb ~t_sec) precaps
      in
      t.counters.grants_issued <- t.counters.grants_issued + 1;
      Wire.Addr.Tbl.replace t.pending_return src (Wire.Cap_shim.Grant { n_kb; t_sec; caps })
  | Policy.Refused ->
      (* An empty capability list is the explicit refusal of Sec. 4.2. *)
      t.counters.requests_refused <- t.counters.requests_refused + 1;
      Wire.Addr.Tbl.replace t.pending_return src
        (Wire.Cap_shim.Grant { n_kb = 0; t_sec = 0; caps = [] })

let handle_return_info t ~src info =
  let now = Sim.now t.sim in
  let ds = dest_state t src in
  match info with
  | Wire.Cap_shim.Demotion_notice ->
      (* Our packets were demoted somewhere en route: drop the grant and
         bootstrap again (Sec. 3.8).  Start the reacquisition clock at the
         first echo of an episode. *)
      ds.grant <- None;
      if ds.lost_at = None then begin
        ds.lost_at <- Some now;
        ds.reacquire_request_at <- None
      end
  | Wire.Cap_shim.Grant { caps = []; _ } ->
      t.counters.refusals_received <- t.counters.refusals_received + 1;
      ds.grant <- None
  | Wire.Cap_shim.Grant { n_kb; t_sec; caps } ->
      t.counters.grants_received <- t.counters.grants_received + 1;
      (match ds.lost_at with
      | Some _ ->
          (* End of a demotion episode: measure from the first re-request
             (grant piggybacked with no request in flight measures 0). *)
          let from = match ds.reacquire_request_at with Some at -> at | None -> now in
          t.counters.reacquired <- t.counters.reacquired + 1;
          Obs.Counters.incr t.obs Obs.Event.Reacquired;
          t.rev_reacquire_latencies <- (now -. from) :: t.rev_reacquire_latencies;
          ds.lost_at <- None;
          ds.reacquire_request_at <- None
      | None -> ());
      ds.grant <-
        Some
          {
            caps;
            nonce = fresh_nonce t;
            n_kb;
            t_sec;
            granted_at = now;
            bytes_sent = 0;
            caps_carried = false;
          };
      ds.renewal_sent_at <- None

let handle_packet t _node ~in_link:_ (p : Wire.Packet.t) =
  if Wire.Addr.equal p.Wire.Packet.dst t.addr then begin
    let now = Sim.now t.sim in
    let src = p.Wire.Packet.src in
    (match p.Wire.Packet.shim with
    | None -> Policy.note_traffic t.policy ~now ~src ~bytes:(Wire.Packet.size p) ~demoted:false
    | Some shim ->
        (if shim.Wire.Cap_shim.demoted then begin
           t.counters.demotions_seen <- t.counters.demotions_seen + 1;
           Wire.Addr.Tbl.replace t.pending_demotion_echo src ();
           Wire.Addr.Tbl.replace t.demoted_srcs src ()
         end
         else
           match shim.Wire.Cap_shim.kind with
           | Wire.Cap_shim.Regular _ when Wire.Addr.Tbl.mem t.demoted_srcs src ->
               (* The source's traffic validates again: its demotion episode
                  at this receiver is over. *)
               Wire.Addr.Tbl.remove t.demoted_srcs src;
               t.counters.demoted_recovered <- t.counters.demoted_recovered + 1;
               Obs.Counters.incr t.obs Obs.Event.Demoted_recovered
           | _ -> ());
        (match shim.Wire.Cap_shim.kind with
        | Wire.Cap_shim.Request req ->
            handle_request t ~src ~renewal:false (Wire.Cap_shim.precaps req)
        | Wire.Cap_shim.Regular ({ renewal = true; _ } as r) when r.Wire.Cap_shim.rev_fresh_precaps <> [] ->
            handle_request t ~src ~renewal:true (Wire.Cap_shim.fresh_precaps r)
        | Wire.Cap_shim.Regular _ -> ());
        (match shim.Wire.Cap_shim.return_info with
        | Some info -> handle_return_info t ~src info
        | None -> ());
        Policy.note_traffic t.policy ~now ~src ~bytes:(Wire.Packet.size p)
          ~demoted:shim.Wire.Cap_shim.demoted);
    (match p.Wire.Packet.body with
    | Wire.Packet.Tcp seg -> t.on_segment ~src seg
    | Wire.Packet.Raw _ -> ());
    (* Auto-reply only for actual grants: a transport reply (SYN/ACK etc.)
       has already consumed the pending info in the common case, and
       refusals are kept silent so request floods gain no amplification. *)
    match (t.auto_reply, Wire.Addr.Tbl.find_opt t.pending_return src) with
    | true, Some (Wire.Cap_shim.Grant { caps = _ :: _; _ }) ->
        send_body t ~dst:src (Wire.Packet.Raw 64)
    | _, _ -> ()
  end

let create ?(params = Params.default) ?(hash = (module Crypto.Keyed_hash.Fast : Crypto.Keyed_hash.S))
    ?(auto_reply = false) ?(obs = Obs.Counters.nop) ~policy ~node ~rng () =
  let addr =
    match Net.node_addr node with
    | Some a -> a
    | None -> invalid_arg "Host.create: node has no address"
  in
  let t =
    {
      params;
      hash;
      sim = Net.node_sim node;
      node;
      addr;
      policy;
      rng;
      auto_reply;
      dests = Wire.Addr.Tbl.create 16;
      pending_return = Wire.Addr.Tbl.create 16;
      pending_demotion_echo = Wire.Addr.Tbl.create 16;
      demoted_srcs = Wire.Addr.Tbl.create 16;
      on_segment = (fun ~src:_ _ -> ());
      counters =
        {
          requests_sent = 0;
          renewals_sent = 0;
          grants_received = 0;
          refusals_received = 0;
          demotions_seen = 0;
          demotion_echoes_sent = 0;
          grants_issued = 0;
          requests_refused = 0;
          reacquired = 0;
          demoted_recovered = 0;
        };
      obs;
      rev_reacquire_latencies = [];
    }
  in
  Net.set_handler node (handle_packet t);
  t
