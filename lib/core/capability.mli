(** Pre-capability and capability construction and validation (paper
    Fig. 3 and Secs. 3.4–3.5).

    A router mints a pre-capability as

      [ts (8 bits) | hash(src, dst, ts, router secret) (56 bits)]

    and the destination folds its grant into a full capability

      [ts (8 bits) | hash(pre-capability, N, T) (56 bits)]

    Routers validate with exactly two hash computations: recompute the
    pre-capability from the packet's addresses and their own secret (chosen
    by the timestamp's high bit), then recompute the capability hash with
    the packet's N and T.  Expiry is checked on the router's modulo-256
    clock, which is why T must fit in half the clock period. *)

type keyed = (module Crypto.Keyed_hash.S)

val mint_precap :
  hash:keyed ->
  secret:Crypto.Secret.t ->
  now:float ->
  src:Wire.Addr.t ->
  dst:Wire.Addr.t ->
  Wire.Cap_shim.cap

val cap_of_precap : hash:keyed -> precap:Wire.Cap_shim.cap -> n_kb:int -> t_sec:int -> Wire.Cap_shim.cap
(** The destination-side conversion.  Needs no secret: the binding to the
    router comes from the pre-capability inside the hash. *)

val mint_precap2 :
  precap_hash:keyed ->
  secret:Crypto.Secret.t ->
  now:float ->
  src:Wire.Addr.t ->
  dst:Wire.Addr.t ->
  Wire.Cap_shim.cap
(** Like {!mint_precap} but named for symmetry with {!validate2}. *)

val cap_of_precap2 :
  cap_hash:keyed -> precap:Wire.Cap_shim.cap -> n_kb:int -> t_sec:int -> Wire.Cap_shim.cap

val public_key : string
(** The fixed key under which capability hashes are computed.  The
    capability hash is unkeyed in spirit — any party holding the
    pre-capability can compute it — but the {!Crypto.Keyed_hash} interface
    wants a key, so this public constant plays the role.  Exposed for batch
    validators that hoist key preparation out of their loops. *)

type verdict =
  | Valid
  | Expired  (** the T window has passed on the router clock *)
  | Bad_hash  (** forged, stolen onto another path, or secret retired *)

val validate :
  hash:keyed ->
  secret:Crypto.Secret.t ->
  now:float ->
  src:Wire.Addr.t ->
  dst:Wire.Addr.t ->
  n_kb:int ->
  t_sec:int ->
  Wire.Cap_shim.cap ->
  verdict

val validate2 :
  precap_hash:keyed ->
  cap_hash:keyed ->
  secret:Crypto.Secret.t ->
  now:float ->
  src:Wire.Addr.t ->
  dst:Wire.Addr.t ->
  n_kb:int ->
  t_sec:int ->
  Wire.Cap_shim.cap ->
  verdict
(** Validation with distinct hash functions for the two steps — the
    prototype pairs AES-hash (pre-capabilities) with HMAC-SHA1 (full
    capabilities).  {!validate} is [validate2] with both hashes equal. *)

val mint_precap_cached :
  hash:keyed ->
  cache:Crypto.Keyed_hash.prep_cache ->
  secret:Crypto.Secret.t ->
  now:float ->
  src:Wire.Addr.t ->
  dst:Wire.Addr.t ->
  Wire.Cap_shim.cap
(** {!mint_precap} with per-epoch key preparation memoized in [cache] —
    the router's per-packet entry point.  Results are identical. *)

val validate_cached :
  hash:keyed ->
  cache:Crypto.Keyed_hash.prep_cache ->
  secret:Crypto.Secret.t ->
  now:float ->
  src:Wire.Addr.t ->
  dst:Wire.Addr.t ->
  n_kb:int ->
  t_sec:int ->
  Wire.Cap_shim.cap ->
  verdict
(** {!validate} with per-epoch key preparation memoized in [cache]. *)

val expired : now:float -> ts:int -> t_sec:int -> bool
(** The modulo-clock expiry test alone (used for cached entries, where the
    hash was checked at insertion). *)

val expired_ts : now_ts:int -> ts:int -> t_sec:int -> bool
(** {!expired} with the router clock already converted to its 8-bit stamp
    ([Crypto.Secret.timestamp]); the batch datapath hoists that conversion
    out of its per-packet loop.  Equal to [expired] whenever
    [now_ts = Crypto.Secret.timestamp ~now]. *)

val pp_verdict : Format.formatter -> verdict -> unit
