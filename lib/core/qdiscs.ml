let request_path_id (p : Wire.Packet.t) =
  match p.Wire.Packet.shim with None -> 0 | Some shim -> Path_id.most_recent shim

let dst_key (p : Wire.Packet.t) = Wire.Addr.to_int p.Wire.Packet.dst
let src_key (p : Wire.Packet.t) = Wire.Addr.to_int p.Wire.Packet.src

let build ?(regular_key = `Destination) ~(params : Params.t) ~bandwidth_bps ~request_inner () =
  let request =
    Token_bucket.create ~name:"request-limiter" ~mtu:params.Params.mtu
      ~rate_bps:(params.Params.request_fraction *. bandwidth_bps)
      ~burst_bytes:params.Params.request_burst_bytes ~inner:request_inner ()
  in
  let classify, name =
    match regular_key with
    | `Destination -> (dst_key, "regular-per-dest")
    | `Source -> (src_key, "regular-per-source")
  in
  let regular =
    Drr.create ~name ~quantum:params.Params.mtu
      ~queue_capacity_bytes:params.Params.queue_capacity_bytes
      ~max_queues:(Params.flow_cache_entries params ~link_bps:bandwidth_bps)
      ~classify ()
  in
  let legacy =
    Droptail.create ~name:"legacy-fifo" ~capacity_bytes:params.Params.queue_capacity_bytes ()
  in
  Tri_class.create ~name:"tva-link" ~classify:Tri_class.classify_by_shim ~request ~regular
    ~legacy ()

let make ?regular_key ~params ~bandwidth_bps () =
  let request_inner =
    Drr.create ~name:"request-per-pathid" ~quantum:256
      ~queue_capacity_bytes:(params.Params.queue_capacity_bytes / 4)
      ~max_queues:params.Params.max_path_id_queues ~classify:request_path_id ()
  in
  build ?regular_key ~params ~bandwidth_bps ~request_inner ()

let make_sfq_requests ~params ~bandwidth_bps ~buckets ~seed =
  let request_inner =
    Sfq.create ~name:"request-sfq" ~quantum:256
      ~queue_capacity_bytes:(params.Params.queue_capacity_bytes / 4)
      ~seed ~buckets ~flow_key:request_path_id ()
  in
  build ~params ~bandwidth_bps ~request_inner ()
