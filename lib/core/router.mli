(** The TVA capability router (paper Sec. 4.3 and Fig. 6).

    On each packet the router:
    - passes legacy (shimless or already-demoted) packets through to the
      legacy queue;
    - stamps request packets with a pre-capability (and, at a trust
      boundary, a path identifier derived from the arrival interface);
    - checks regular packets against the flow cache (nonce match) or, when
      carrying a capability list, validates the capability addressed to
      this router by recomputing the two hashes; valid packets are charged
      against their byte limit, renewals get a fresh pre-capability minted
      into the packet, and anything that fails is demoted to legacy
      priority rather than dropped.

    Scheduling (Fig. 2) is in the qdiscs built by {!Qdiscs}; this module is
    purely the per-packet processing and state. *)

type t

val create :
  ?params:Params.t ->
  ?hash:Capability.keyed ->
  ?trust_boundary:bool ->
  ?obs:Obs.Counters.t ->
  ?cache_entries:int ->
  ?cache_presize:int ->
  secret_master:string ->
  router_id:int ->
  sim:Sim.t ->
  link_bps:float ->
  unit ->
  t
(** [link_bps] provisions the flow cache ([C/(N/T)_min] records).
    [trust_boundary] defaults to [true] (edge router).  [obs] (default
    {!Obs.Counters.nop}) receives per-event increments — packet class on
    arrival, validation outcomes, reason-coded demotions, flow-cache
    activity; with the default sink the increments are blind stores and
    the processing path stays allocation-free.  [cache_entries] overrides
    the provisioned flow-cache capacity (the sharded datapath gives each
    shard [capacity / K]); [cache_presize] is forwarded to
    {!Flow_cache.create} as its pre-sizing hint. *)

val handler : t -> Net.handler
(** A drop-in node handler: processes the packet then forwards it along
    the route. *)

val process : t -> in_interface:int -> Wire.Packet.t -> unit
(** The processing step alone (exposed for tests and the forwarder
    benchmarks): mutates the packet's shim — appending pre-capabilities /
    path ids, demoting, charging byte counts. *)

val process_batch : t -> in_interface:int -> ?off:int -> ?len:int -> Wire.Packet.t array -> unit
(** [process] over [packets.(off) .. packets.(off + len - 1)] (default:
    the whole array) in one call: per-packet results are identical to
    [len] sequential {!process} calls in array order — same shim
    mutations, same demotion reasons, same flow-cache state — and counter
    totals (both {!counters} and the [obs] registry) are equal, though
    hot-path events are accumulated batch-locally and flushed once rather
    than incremented per packet.  The steady-state shape (regular packet,
    cached flow, nonce match) runs a hoisted, allocation-light inner loop;
    other shapes fall back to the sequential code.  Raises
    [Invalid_argument] if the window is out of bounds. *)

(** {1 Introspection and fault injection} *)

type counters = {
  mutable requests : int;
  mutable regular_cached : int; (* validated via nonce match *)
  mutable regular_validated : int; (* validated via capability hashes *)
  mutable renewals : int;
  mutable demotions : int;
  mutable legacy : int;
}

val counters : t -> counters
val cache : t -> Flow_cache.t

val flush_cache : t -> unit
(** Simulates a route change / router restart losing cache state
    (Sec. 3.8): subsequent nonce-only packets demote until the sender
    re-sends capabilities or re-requests. *)

val rotate_secret : t -> unit
(** Forces the router onto a fresh master secret, invalidating all
    outstanding capabilities (restart without persistence). *)
