let tag ~router_id ~interface_id =
  (* A fixed-key SipHash keeps tags stable across runs while spreading
     interfaces across the 16-bit space. *)
  let msg = Printf.sprintf "%d/%d" router_id interface_id in
  Int64.to_int (Crypto.Siphash.mac ~key:"TVA path-id tag." msg) land 0xffff

let most_recent (shim : Wire.Cap_shim.t) =
  (* The newest tag is the head of the reverse-accumulated list. *)
  match shim.Wire.Cap_shim.kind with
  | Wire.Cap_shim.Request { rev_path_ids = last :: _; _ } -> last
  | Wire.Cap_shim.Request { rev_path_ids = []; _ } | Wire.Cap_shim.Regular _ -> 0

let push (shim : Wire.Cap_shim.t) tag =
  match shim.Wire.Cap_shim.kind with
  | Wire.Cap_shim.Request req -> Wire.Cap_shim.push_path_id req tag
  | Wire.Cap_shim.Regular _ -> ()
