type keyed = (module Crypto.Keyed_hash.S)

(* The preimage layouts live in [Crypto.Keyed_hash] ([precap_preimage] /
   [cap_preimage]); here we call the fixed-preimage entry points so the
   per-packet path builds no Buffer or string.  The secret arrives as the
   MAC key, not as part of the message. *)

let mint_precap ~hash:(module H : Crypto.Keyed_hash.S) ~secret ~now ~src ~dst =
  let ts = Crypto.Secret.timestamp ~now in
  let key = Crypto.Secret.issuing_secret secret ~now in
  {
    Wire.Cap_shim.ts;
    hash = H.mac56_precap ~key ~src:(Wire.Addr.to_int src) ~dst:(Wire.Addr.to_int dst) ~ts;
  }

(* The capability hash is unkeyed in spirit — any party holding the
   pre-capability can compute it — but our Keyed_hash interface wants a
   key, so we use a public constant. *)
let public_key = "TVA public hash!"

let cap_of_precap ~hash:(module H : Crypto.Keyed_hash.S) ~(precap : Wire.Cap_shim.cap) ~n_kb ~t_sec =
  {
    Wire.Cap_shim.ts = precap.Wire.Cap_shim.ts;
    hash =
      H.mac56_cap ~key:public_key ~precap_ts:precap.Wire.Cap_shim.ts
        ~precap_hash:precap.Wire.Cap_shim.hash ~n_kb ~t_sec;
  }

type verdict = Valid | Expired | Bad_hash

let pp_verdict fmt = function
  | Valid -> Format.pp_print_string fmt "valid"
  | Expired -> Format.pp_print_string fmt "expired"
  | Bad_hash -> Format.pp_print_string fmt "bad-hash"

(* Age on the modulo-256 clock.  Values above half the clock period are
   indistinguishable from the future and treated as expired; the paper
   requires T <= half the rollover for exactly this reason. *)
let mod_age ~now ~ts =
  let now_ts = Crypto.Secret.timestamp ~now in
  (now_ts - ts + 256) mod 256

(* With both stamps in 0..255 the difference + 256 lies in 1..511, where
   [mod 256] and [land 255] agree — the batch loop hoists the float->stamp
   conversion (a [floor] C call) once per batch and uses this form. *)
let[@inline] expired_ts ~now_ts ~ts ~t_sec = (now_ts - ts + 256) land 255 > t_sec

let expired ~now ~ts ~t_sec =
  let age = mod_age ~now ~ts in
  age > t_sec

let validate2 ~precap_hash:(module P : Crypto.Keyed_hash.S)
    ~cap_hash:(module C : Crypto.Keyed_hash.S) ~secret ~now ~src ~dst ~n_kb ~t_sec
    (cap : Wire.Cap_shim.cap) =
  let ts = cap.Wire.Cap_shim.ts in
  if expired ~now ~ts ~t_sec then Expired
  else begin
    match Crypto.Secret.validating_secret secret ~now ~ts with
    | None -> Bad_hash
    | Some key ->
        let ph =
          P.mac56_precap ~key ~src:(Wire.Addr.to_int src) ~dst:(Wire.Addr.to_int dst) ~ts
        in
        let expect =
          C.mac56_cap ~key:public_key ~precap_ts:ts ~precap_hash:ph ~n_kb ~t_sec
        in
        if Int64.equal expect cap.Wire.Cap_shim.hash then Valid else Bad_hash
  end

let validate ~hash ~secret ~now ~src ~dst ~n_kb ~t_sec cap =
  validate2 ~precap_hash:hash ~cap_hash:hash ~secret ~now ~src ~dst ~n_kb ~t_sec cap

(* The [_cached] pair is what routers call per packet: identical results
   to {!mint_precap}/{!validate}, but the epoch secrets and the public
   capability key are preprocessed once per epoch through [cache] instead
   of per call. *)

let mint_precap_cached ~hash:(module H : Crypto.Keyed_hash.S) ~cache ~secret ~now ~src ~dst =
  let ts = Crypto.Secret.timestamp ~now in
  let key = Crypto.Secret.issuing_secret secret ~now in
  let prep = Crypto.Keyed_hash.prepared_of (module H) cache key in
  {
    Wire.Cap_shim.ts;
    hash = H.mac56_precap_p ~prep ~src:(Wire.Addr.to_int src) ~dst:(Wire.Addr.to_int dst) ~ts;
  }

let validate_cached ~hash:(module H : Crypto.Keyed_hash.S) ~cache ~secret ~now ~src ~dst ~n_kb
    ~t_sec (cap : Wire.Cap_shim.cap) =
  let ts = cap.Wire.Cap_shim.ts in
  if expired ~now ~ts ~t_sec then Expired
  else begin
    match Crypto.Secret.validating_secret secret ~now ~ts with
    | None -> Bad_hash
    | Some key ->
        let prep = Crypto.Keyed_hash.prepared_of (module H) cache key in
        let ph =
          H.mac56_precap_p ~prep ~src:(Wire.Addr.to_int src) ~dst:(Wire.Addr.to_int dst) ~ts
        in
        let pub = Crypto.Keyed_hash.prepared_of (module H) cache public_key in
        let expect = H.mac56_cap_p ~prep:pub ~precap_ts:ts ~precap_hash:ph ~n_kb ~t_sec in
        if Int64.equal expect cap.Wire.Cap_shim.hash then Valid else Bad_hash
  end

let mint_precap2 ~precap_hash ~secret ~now ~src ~dst =
  mint_precap ~hash:precap_hash ~secret ~now ~src ~dst

let cap_of_precap2 ~cap_hash ~precap ~n_kb ~t_sec = cap_of_precap ~hash:cap_hash ~precap ~n_kb ~t_sec
