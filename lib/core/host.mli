(** The TVA host layer (paper Sec. 4.2) — what the paper deploys as a
    proxy/NAT-style box at the customer edge.

    On the send side it decides, per destination, what shim each outgoing
    packet carries: a request when it holds no capabilities, the full
    capability list right after a grant (so routers can populate their
    caches), the 48-bit nonce alone afterwards, and a renewal once the
    byte or time budget passes the renewal threshold.  On the receive side
    it converts pre-capabilities into grants according to the destination
    {!Policy}, piggybacks them (and demotion echoes) on the next reverse
    packet, and installs grants carried by arriving packets.

    Transport is decoupled: TCP connections send through {!send_segment}
    and receive via the demux callback, so the same host logic serves the
    legitimate users, the public server, and the colluder. *)

type t

type grant = {
  caps : Wire.Cap_shim.cap list;
  nonce : int64;
  n_kb : int;
  t_sec : int;
  granted_at : float;
  mutable bytes_sent : int;
  mutable caps_carried : bool;
      (** Whether a packet carrying the full list has been sent, i.e. the
          sender models router caches as warm (Sec. 3.7, optimistic). *)
}

type counters = {
  mutable requests_sent : int;
  mutable renewals_sent : int;
  mutable grants_received : int;
  mutable refusals_received : int;
  mutable demotions_seen : int; (* demoted packets that reached us *)
  mutable demotion_echoes_sent : int;
  mutable grants_issued : int;
  mutable requests_refused : int;
  mutable reacquired : int;
      (** grants received that ended a demotion episode (the grant was
          previously cancelled by a demotion echo) *)
  mutable demoted_recovered : int;
      (** receive side: sources whose traffic was arriving demoted and then
          validated again *)
}

val create :
  ?params:Params.t ->
  ?hash:Capability.keyed ->
  ?auto_reply:bool ->
  ?obs:Obs.Counters.t ->
  policy:Policy.t ->
  node:Net.node ->
  rng:Rng.t ->
  unit ->
  t
(** Installs itself as the node's handler.  The node must have an address.
    Raises [Invalid_argument] otherwise.

    [auto_reply] (default false) makes the host immediately send a small
    packet whenever it owes return information to a peer and has no
    transport traffic to piggyback it on — how a colluder answers raw
    request floods with grants.  TCP-based hosts leave it off; their
    SYN/ACKs and ACKs carry the return channel.

    [obs] (default {!Obs.Counters.nop}) receives the recovery events
    [Reacquired] and [Demoted_recovered]. *)

val addr : t -> Wire.Addr.t
val node : t -> Net.node
val policy : t -> Policy.t
val counters : t -> counters

val set_segment_handler : t -> (src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit) -> unit
(** Where inbound TCP segments are delivered (the workload's demux). *)

val send_segment : t -> dst:Wire.Addr.t -> Wire.Tcp_segment.t -> unit
(** Wrap a TCP segment in a packet with the appropriate capability shim
    and originate it. *)

val send_raw : t -> dst:Wire.Addr.t -> bytes:int -> unit
(** Same shim logic, opaque payload (well-behaved bulk sender). *)

val send_legacy : t -> dst:Wire.Addr.t -> bytes:int -> unit
(** No shim at all: legacy traffic (also what legacy-flood attackers emit). *)

val send_request_flood_packet : t -> dst:Wire.Addr.t -> bytes:int -> unit
(** A fresh request shim on an opaque payload — the Sec. 5.2 request flood. *)

val grant_for : t -> dst:Wire.Addr.t -> grant option
(** The current sender-side grant towards [dst], if any (flooders read this
    to craft their own over-budget packets). *)

val invalidate_grant : t -> dst:Wire.Addr.t -> unit
(** Forget the grant (the sender will re-request). *)

val reacquire_latencies : t -> float list
(** One entry per reacquisition, in order: seconds from the first request
    sent after a demotion echo cancelled the grant until the replacement
    grant arrived.  The paper's Sec. 3.8 bound is one round trip plus the
    request-channel queueing delay; {!Faults.Invariants} checks it. *)
