(** Aggregate attacker: one event source standing in for [n] identical
    CBR flood members.

    Every member draws from a private {!Rng.Bank} lane (bit-identical to
    [Rng.lane ~seed i]) in exactly the order a real {!Agents.Flooder}
    would — one start phase at creation, one +-5% jitter per packet — so
    the emitted [(due, member)] stream is equal to [n] real flooders given
    the same lanes.  The aggregate-equivalence property tests pin this.

    Per-member cost in [Coalesced] mode is three words (a deadline, a heap
    slot, and a bank lane) and exactly one simulator event is pending per
    swarm, so a million-member botnet neither bloats the GC heap nor the
    pending-event queue (DESIGN.md section 13). *)

type t

type mode =
  | Coalesced
      (** Member deadlines in an unboxed float array under a member-index
          min-heap (ties fire the lower member id first); one simulator
          event pending per swarm. *)
  | Independent
      (** One simulator timer per member — same stream, maximal scheduler
          load.  The scale benchmark's scheduler-stress leg. *)

val mode_of_string : string -> (mode, string) result
(** ["coalesced"] or ["independent"]. *)

val mode_to_string : mode -> string

val start :
  sim:Sim.t ->
  n:int ->
  seed:int ->
  rate_bps:float ->
  ?pkt_bytes:int ->
  ?start_at:float ->
  ?stop_at:float ->
  ?batch_window:float ->
  ?mode:mode ->
  emit:(member:int -> due:float -> unit) ->
  unit ->
  t
(** Start [n] members, each a CBR source of [pkt_bytes] (default 1000)
    packets at [rate_bps] {e per member}, active from [start_at] (default
    0) until [stop_at] (default forever; a member whose deadline lands at
    or past it retires without sending, like a real flooder).  [emit] is
    called once per packet with the member index and its nominal due time
    ([Sim.now] at the call differs from [due] only under batching).
    [batch_window] (default 0, [Coalesced] only) drains every member due
    within that many seconds of the fired deadline in one event — member
    deadlines and RNG draws stay nominal, only the injection instant
    coarsens.  [seed] names the bank: member [i] reproduces a flooder
    driven by [Rng.lane ~seed i]. *)

val members : t -> int
val live_members : t -> int
(** Members that have not yet retired at [stop_at]. *)

val packets_sent : t -> int
