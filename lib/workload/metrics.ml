type t = {
  mutable attempted : int;
  mutable completed : int;
  mutable aborted : int;
  mutable bytes_completed : int;
  mutable times : Stats.Summary.t;
  timeline : Stats.Timeseries.t;
}

let create () =
  {
    attempted = 0;
    completed = 0;
    aborted = 0;
    bytes_completed = 0;
    times = Stats.Summary.create ();
    timeline = Stats.Timeseries.create ~name:"transfer-time" ();
  }

let record_start t = t.attempted <- t.attempted + 1

let record_outcome t ~now ?(bytes = 0) outcome =
  match outcome with
  | Tcp.Conn.Completed { duration } ->
      t.completed <- t.completed + 1;
      t.bytes_completed <- t.bytes_completed + bytes;
      Stats.Summary.add t.times duration;
      Stats.Timeseries.add t.timeline ~time:now duration
  | Tcp.Conn.Aborted _ -> t.aborted <- t.aborted + 1

let attempted t = t.attempted
let completed t = t.completed
let aborted t = t.aborted

(* "Nothing attempted" is not "everything completed": exports must be able
   to tell an idle cell from a perfect one, so the honest form is an
   option.  The float form keeps returning 1.0 for the plots (an idle cell
   plots as undamaged, matching the paper's figures). *)
let fraction_completed_opt t =
  if t.attempted = 0 then None else Some (float_of_int t.completed /. float_of_int t.attempted)

let fraction_completed t =
  match fraction_completed_opt t with None -> 1.0 | Some f -> f

let avg_transfer_time t = if t.completed = 0 then nan else Stats.Summary.mean t.times

(* The timeline keeps every completed duration (one point per transfer),
   so the median comes from sorting its values — [Stats.Summary] only
   carries moments. *)
let median_transfer_time t =
  let points = Stats.Timeseries.points t.timeline in
  let n = Array.length points in
  if n = 0 then nan
  else begin
    let values = Array.map snd points in
    Array.sort Float.compare values;
    if n mod 2 = 1 then values.(n / 2) else (values.((n / 2) - 1) +. values.(n / 2)) /. 2.
  end

let bytes_completed t = t.bytes_completed

(* Jain's fairness index (x1..xn) = (Σx)² / (n·Σx²): 1.0 for equal
   shares, 1/n when one sender hogs everything.  The empty list and the
   all-zero list are "no information", reported as perfectly fair so an
   idle cell does not plot as unfair. *)
let jain_index shares =
  match shares with
  | [] -> 1.0
  | _ ->
      let sum = List.fold_left ( +. ) 0. shares in
      let sumsq = List.fold_left (fun acc x -> acc +. (x *. x)) 0. shares in
      if sumsq = 0. then 1.0
      else sum *. sum /. (float_of_int (List.length shares) *. sumsq)

let transfer_times t = t.times
let timeline t = t.timeline

let merge_into acc x =
  acc.attempted <- acc.attempted + x.attempted;
  acc.completed <- acc.completed + x.completed;
  acc.aborted <- acc.aborted + x.aborted;
  acc.bytes_completed <- acc.bytes_completed + x.bytes_completed;
  acc.times <- Stats.Summary.merge acc.times x.times;
  Array.iter
    (fun (time, v) -> Stats.Timeseries.add acc.timeline ~time v)
    (Stats.Timeseries.points x.timeline)
