type t = {
  mutable attempted : int;
  mutable completed : int;
  mutable aborted : int;
  mutable times : Stats.Summary.t;
  timeline : Stats.Timeseries.t;
}

let create () =
  {
    attempted = 0;
    completed = 0;
    aborted = 0;
    times = Stats.Summary.create ();
    timeline = Stats.Timeseries.create ~name:"transfer-time" ();
  }

let record_start t = t.attempted <- t.attempted + 1

let record_outcome t ~now outcome =
  match outcome with
  | Tcp.Conn.Completed { duration } ->
      t.completed <- t.completed + 1;
      Stats.Summary.add t.times duration;
      Stats.Timeseries.add t.timeline ~time:now duration
  | Tcp.Conn.Aborted _ -> t.aborted <- t.aborted + 1

let attempted t = t.attempted
let completed t = t.completed
let aborted t = t.aborted

(* "Nothing attempted" is not "everything completed": exports must be able
   to tell an idle cell from a perfect one, so the honest form is an
   option.  The float form keeps returning 1.0 for the plots (an idle cell
   plots as undamaged, matching the paper's figures). *)
let fraction_completed_opt t =
  if t.attempted = 0 then None else Some (float_of_int t.completed /. float_of_int t.attempted)

let fraction_completed t =
  match fraction_completed_opt t with None -> 1.0 | Some f -> f

let avg_transfer_time t = if t.completed = 0 then nan else Stats.Summary.mean t.times

let transfer_times t = t.times
let timeline t = t.timeline

let merge_into acc x =
  acc.attempted <- acc.attempted + x.attempted;
  acc.completed <- acc.completed + x.completed;
  acc.aborted <- acc.aborted + x.aborted;
  acc.times <- Stats.Summary.merge acc.times x.times;
  Array.iter
    (fun (time, v) -> Stats.Timeseries.add acc.timeline ~time v)
    (Stats.Timeseries.points x.timeline)
