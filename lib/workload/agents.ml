module Transfer_client = struct
  type t = {
    sim : Sim.t;
    endpoint : Scheme.endpoint;
    server : Wire.Addr.t;
    transfer_bytes : int;
    max_transfers : int;
    conn_base : int;
    metrics : Metrics.t;
    on_all_done : unit -> unit;
    mutable done_count : int;
    mutable current : Tcp.Conn.client option;
  }

  let finished t = t.done_count >= t.max_transfers
  let transfers_done t = t.done_count

  let rec start_next t =
    if not (finished t) then begin
      let conn_id = t.conn_base + t.done_count in
      Metrics.record_start t.metrics;
      let client =
        Tcp.Conn.create_client ~sim:t.sim ~conn_id ~transfer_bytes:t.transfer_bytes
          ~tx:(fun seg -> t.endpoint.Scheme.ep_send_segment ~dst:t.server seg)
          ~on_complete:(fun outcome ->
            Metrics.record_outcome t.metrics ~now:(Sim.now t.sim) ~bytes:t.transfer_bytes outcome;
            t.done_count <- t.done_count + 1;
            t.current <- None;
            if finished t then t.on_all_done ()
            else
              (* Back-to-back transfers, as in the paper; a fresh event
                 keeps the call stack flat. *)
              ignore (Sim.schedule ~kind:Sim.Kind.agent t.sim ~delay:0. (fun () -> start_next t)))
          ()
      in
      t.current <- Some client;
      Tcp.Conn.start client
    end

  let create ~sim ~endpoint ~server ~transfer_bytes ~max_transfers ?(start_at = 0.)
      ?(conn_base = 0) ~metrics ?(on_all_done = fun () -> ()) () =
    let t =
      {
        sim;
        endpoint;
        server;
        transfer_bytes;
        max_transfers;
        conn_base;
        metrics;
        on_all_done;
        done_count = 0;
        current = None;
      }
    in
    endpoint.Scheme.ep_set_demux (fun ~src seg ->
        if Wire.Addr.equal src server then begin
          match t.current with
          | Some client when Tcp.Conn.client_conn_id client = seg.Wire.Tcp_segment.conn ->
              Tcp.Conn.client_receive client seg
          | Some _ | None -> () (* stale segment from a finished transfer *)
        end);
    ignore (Sim.schedule_at ~kind:Sim.Kind.agent sim ~time:start_at (fun () -> start_next t));
    t
end

module Transfer_server = struct
  type t = {
    sim : Sim.t;
    endpoint : Scheme.endpoint;
    conns : (int * int, Tcp.Conn.server) Hashtbl.t;
  }

  let connections_seen t = Hashtbl.length t.conns

  let create ~sim ~endpoint () =
    let t = { sim; endpoint; conns = Hashtbl.create 64 } in
    endpoint.Scheme.ep_set_demux (fun ~src seg ->
        let key = (Wire.Addr.to_int src, seg.Wire.Tcp_segment.conn) in
        let server =
          match Hashtbl.find_opt t.conns key with
          | Some s -> s
          | None ->
              let s =
                Tcp.Conn.create_server ~sim ~conn_id:seg.Wire.Tcp_segment.conn
                  ~tx:(fun reply -> endpoint.Scheme.ep_send_segment ~dst:src reply)
                  ()
              in
              Hashtbl.add t.conns key s;
              s
        in
        Tcp.Conn.server_receive server seg);
    t
end

module Flooder = struct
  type mode = Legacy | Request | Authorized | Misbehaving

  let start ~sim ~endpoint ~dst ~rate_bps ?(pkt_bytes = 1000) ?(start_at = 0.) ?stop_at ?rng
      ~mode () =
    if rate_bps <= 0. then invalid_arg "Flooder.start: rate must be positive";
    let interval = float_of_int pkt_bytes *. 8. /. rate_bps in
    let send =
      match mode with
      | Legacy -> endpoint.Scheme.ep_send_legacy
      | Request -> endpoint.Scheme.ep_send_request
      | Authorized -> endpoint.Scheme.ep_send_raw
      | Misbehaving -> endpoint.Scheme.ep_flood_misbehaving
    in
    let rng = match rng with Some r -> r | None -> Rng.split (Sim.rng sim) in
    let rec tick () =
      let now = Sim.now sim in
      let stopped = match stop_at with Some s -> now >= s | None -> false in
      if not stopped then begin
        send ~dst ~bytes:pkt_bytes;
        (* ±5% per-packet jitter: pure CBR in a deterministic simulator
           phase-locks with TCP's whole-second timers, which makes losses
           systematically repeat instead of being independent per try. *)
        let jitter = 0.95 +. Rng.float rng 0.1 in
        ignore (Sim.schedule ~kind:Sim.Kind.agent sim ~delay:(interval *. jitter) tick)
      end
    in
    (* A random phase per flooder: otherwise all CBR sources fire in
       lockstep and the victim queue drains between synchronized bursts,
       making the flood artificially harmless. *)
    let phase = Rng.float rng interval in
    ignore (Sim.schedule_at ~kind:Sim.Kind.agent sim ~time:(start_at +. phase) tick)
end
