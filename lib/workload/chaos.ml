(* The chaos harness: one experiment run per fault scenario, with the
   injector installed through [Experiment.run ?faults] and the recovery
   invariants checked against the run's observability output. *)

type cell = {
  cl_label : string;
  cl_spec : Faults.Spec.t;
  cl_expect : Faults.Invariants.expectation;
}

type outcome = {
  oc_label : string;
  oc_spec : string;
  oc_fraction : float;
  oc_avg_time : float;
  oc_injected : (string * int) list;
  oc_latencies : float list;
  oc_verdict : Faults.Invariants.verdict;
  oc_report : Obs.Report.t;
  oc_engage_s : float option;
  oc_recover_s : float option;
  oc_recovered : bool;
  oc_flight_dumps : string list;
}

let sim_params = { Tva.Params.default with Tva.Params.request_fraction = 0.01 }

let base_config =
  { Experiment.default with Experiment.scheme = Scheme.tva ~params:sim_params () }

(* Chaos runs telemetry by default: the detectors are what turn a fault
   scenario's raw series into the measured engage/recover columns.  The
   tick chain rides auxiliary events, so the workload numbers stay
   bit-identical to a telemetry-off run. *)
let obs_default = { Experiment.obs_default with Experiment.obs_telemetry_interval = 0.1 }

(* One cell = one independent deterministic simulation: the cell carries
   pure data (spec + expectation), [Experiment.run] builds a private
   sim/rng, and the injector's stream splits off it at install time — so
   cells fan out over [Pool.map] and come back bit-identical whatever
   [jobs] is. *)
let run_cell ?(obs = obs_default) ?flight_dir ?(base = base_config) cell =
  let obs =
    {
      obs with
      Experiment.obs_flight_dir =
        (match flight_dir with Some _ -> flight_dir | None -> obs.Experiment.obs_flight_dir);
      obs_flight_label = cell.cl_label;
    }
  in
  let injector = ref None in
  let fault_env = ref None in
  let r =
    Experiment.run ~obs
      ~faults:(fun env ->
        fault_env := Some env;
        injector :=
          Some
            (Faults.Inject.install
               {
                 Faults.Inject.env_sim = env.Experiment.fe_sim;
                 env_rng = env.Experiment.fe_rng;
                 env_links = env.Experiment.fe_links;
                 env_routers = env.Experiment.fe_routers;
                 env_obs = env.Experiment.fe_obs;
               }
               cell.cl_spec))
      base
  in
  let env = match !fault_env with Some e -> e | None -> assert false in
  let inj = match !injector with Some i -> i | None -> assert false in
  let latencies =
    List.concat_map (fun ep -> ep.Scheme.ep_reacquire_latencies ()) env.Experiment.fe_users
  in
  let report = match r.Experiment.obs with Some o -> o | None -> Obs.Report.empty in
  let router_names =
    List.map (fun site -> site.Faults.Inject.rs_name) env.Experiment.fe_routers
  in
  let verdict =
    Faults.Invariants.check cell.cl_expect ~counters:report.Obs.Report.counters
      ~router_names
      ~injected:(Faults.Inject.total_injected inj)
      ~reacquire_latencies:latencies ~fraction:r.Experiment.fraction_completed
  in
  (* The invariant failure itself is a flight trigger: the verdict is
     computed here, inside the (possibly worker-domain) cell run, so the
     dump freezes this run's own rings. *)
  (match r.Experiment.flight with
  | Some f when not verdict.Faults.Invariants.ok ->
      ignore (Obs.Flight.trigger f ~reason:"invariant-failure" ~time:r.Experiment.sim_end)
  | Some _ | None -> ());
  (* Measured engagement and recovery, from the detectors' incidents:
     engage = first onset, recover = last clear - first onset.  For
     continuous faults (loss, burst) the detectors stay engaged to run
     end: [Detect.finish] closes those incidents at run-end time but
     leaves [i_open] set, so [recovered] distinguishes a true clear from
     a clear stamped at the end of the run. *)
  let engage, recover, recovered =
    match report.Obs.Report.incidents with
    | [] -> (None, None, true)
    | rows ->
        let onset =
          List.fold_left (fun a (r : Obs.Report.incident_row) -> Float.min a r.i_onset) infinity
            rows
        in
        let clear =
          List.fold_left
            (fun a (r : Obs.Report.incident_row) -> Float.max a r.i_clear)
            neg_infinity rows
        in
        ( Some onset,
          Some (clear -. onset),
          List.for_all (fun (r : Obs.Report.incident_row) -> not r.i_open) rows )
  in
  {
    oc_label = cell.cl_label;
    oc_spec = Faults.Spec.to_string cell.cl_spec;
    oc_fraction = r.Experiment.fraction_completed;
    oc_avg_time = r.Experiment.avg_transfer_time;
    oc_injected = Faults.Inject.injected inj;
    oc_latencies = latencies;
    oc_verdict = verdict;
    oc_report = report;
    oc_engage_s = engage;
    oc_recover_s = recover;
    oc_recovered = recovered;
    oc_flight_dumps = (match r.Experiment.flight with None -> [] | Some f -> Obs.Flight.dumps f);
  }

let run_suite ?(jobs = 1) ?obs ?flight_dir ?base cells =
  Pool.map ~jobs (run_cell ?obs ?flight_dir ?base) cells

let parse_exn spec =
  match Faults.Spec.parse spec with
  | Ok s -> s
  | Error e -> invalid_arg ("Chaos.default_suite: " ^ e)

(* The documented re-acquisition bound (EXPERIMENTS.md "Robustness"): one
   RTT (63 ms) plus request-channel queueing.  A router-state fault hits
   every sender at once, so the worst case queues the whole cohort's
   re-requests behind each other on the 1% request channel (100 kb/s at
   the 10 Mb/s bottleneck): 10 MTU-sized re-requests drain in ~1.2 s.
   1.5 s is RTT + full-cohort drain with slack; restart adds its outage,
   during which re-requests sit in access qdiscs until the links return. *)
let reacquire_bound = 1.5

let restart_outage = 0.5

let expect_recovery ~bound ~floor =
  {
    Faults.Invariants.exp_injected = true;
    exp_demotions = true;
    exp_reacquire = true;
    exp_latency_bound = bound;
    exp_min_fraction = floor;
  }

let degrade_only floor =
  {
    Faults.Invariants.relaxed with
    Faults.Invariants.exp_injected = true;
    exp_min_fraction = floor;
  }

(* Scheduled faults hit at t = 2 s: the staggered transfer clients are all
   active by t = 0.13 and even the shortest sensible workload (10 users x
   10 x 20 KB over the 10 Mb/s bottleneck) runs past 2 s, so every
   scenario fires inside the run whatever [--transfers] says. *)
let default_suite =
  [
    {
      cl_label = "loss";
      cl_spec = parse_exn "loss:bottleneck:p=0.01";
      cl_expect = degrade_only 0.5;
    };
    {
      cl_label = "burst";
      cl_spec = parse_exn "burst:bottleneck:pgb=0.02,pbg=0.3,pbad=0.5";
      cl_expect = degrade_only 0.2;
    };
    {
      cl_label = "dup-reorder";
      cl_spec = parse_exn "dup:bottleneck:p=0.01;reorder:bottleneck:p=0.02,delay=0.05";
      cl_expect = degrade_only 0.5;
    };
    {
      cl_label = "down";
      cl_spec = parse_exn "down:bottleneck:at=2,for=1";
      cl_expect = degrade_only 0.3;
    };
    {
      cl_label = "flap";
      cl_spec = parse_exn "flap:bottleneck:at=2,until=8,period=3,down=0.5";
      cl_expect = degrade_only 0.2;
    };
    {
      cl_label = "wipe";
      cl_spec = parse_exn "wipe:all:at=2,every=10";
      cl_expect = expect_recovery ~bound:reacquire_bound ~floor:0.5;
    };
    {
      cl_label = "rotate";
      cl_spec = parse_exn "rotate:all:at=2,every=10";
      (* Rotation alone barely shows: established flows validate by cached
         nonce, not by pre-capability, so only flows arriving with fresh
         capabilities notice.  Accounting invariants still apply. *)
      cl_expect = degrade_only 0.5;
    };
    {
      cl_label = "restart";
      cl_spec = parse_exn "restart:left:at=2,for=0.5";
      cl_expect =
        expect_recovery ~bound:(reacquire_bound +. restart_outage) ~floor:0.3;
    };
  ]

let all_ok outcomes = List.for_all (fun o -> o.oc_verdict.Faults.Invariants.ok) outcomes

let worst_latency o = List.fold_left Float.max 0. o.oc_latencies

let render outcomes =
  let table =
    Stats.Table.create
      ~columns:
        [
          "scenario";
          "spec";
          "fraction";
          "injected";
          "reacq";
          "worst_reacq_s";
          "engage_s";
          "recover_s";
          "verdict";
        ]
  in
  let opt = function None -> "-" | Some v -> Printf.sprintf "%.1f" v in
  (* A "+" marks a scenario whose detectors never cleared: the recover
     figure is the time to run end, a floor, not a measured recovery. *)
  let recover o =
    match o.oc_recover_s with
    | None -> "-"
    | Some v -> Printf.sprintf "%.1f%s" v (if o.oc_recovered then "" else "+")
  in
  List.iter
    (fun o ->
      Stats.Table.add_row table
        [
          o.oc_label;
          o.oc_spec;
          Printf.sprintf "%.3f" o.oc_fraction;
          string_of_int (List.fold_left (fun acc (_, n) -> acc + n) 0 o.oc_injected);
          string_of_int (List.length o.oc_latencies);
          (if o.oc_latencies = [] then "-" else Printf.sprintf "%.3f" (worst_latency o));
          opt o.oc_engage_s;
          recover o;
          (if o.oc_verdict.Faults.Invariants.ok then "ok" else "FAIL");
        ])
    outcomes;
  table
