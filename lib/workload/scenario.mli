(** Canned reproductions of the paper's simulation figures.

    Each function sweeps the attack intensity (number of 1 Mb/s attackers)
    across the paper's four schemes and reports its two metrics; Fig. 11
    instead produces transfer-time-vs-time series.  Simulation parameters
    follow Sec. 5: the dumbbell of Fig. 7, requests limited to 1% of
    capacity for TVA, 20 KB transfers, 60 ms RTT. *)

type point = {
  n_attackers : int;
  fraction_completed : float;
  avg_transfer_time : float;
  median_transfer_time : float;  (** median of completed transfers; [nan] if none *)
  jain : float;  (** Jain fairness index over per-user goodputs *)
}

type series = { scheme : string; points : point list }

val default_attacker_counts : int list
(** [1; 2; 5; 10; 20; 40; 60; 80; 100] — a log-spaced sweep of the paper's
    1–100 range. *)

val sim_params : Tva.Params.t
(** {!Tva.Params.default} with the request limit tightened to 1% (Sec. 5). *)

val paper_schemes : (string * Scheme.factory) list
(** internet, siff, pushback, tva — the four the paper plots, with
    simulation parameters applied.  The default scheme set of the figure
    sweeps, so figure output is pinned even as the registry grows. *)

val schemes : (string * Scheme.factory) list
(** The full scheme registry: {!paper_schemes} followed by netfence.  CLI
    name validation and the cross-scheme report derive from this list. *)

val flood_sweep :
  ?jobs:int ->
  ?schemes:(string * Scheme.factory) list ->
  ?attacker_counts:int list ->
  ?base:Experiment.config ->
  attack:(rate_bps:float -> Experiment.attack) ->
  unit ->
  series list
(** Every (scheme × attacker-count) cell is an independent simulation, so
    the grid runs on [jobs] worker domains via {!Pool.map} (default 1 =
    sequential).  Output is bit-identical for every [jobs] value: results
    return in submission order and each run owns its simulator and RNG.
    [schemes] defaults to {!paper_schemes}. *)

type cell_report = { cr_scheme : string; cr_attackers : int; cr_report : Obs.Report.t }

type observed = {
  obs_series : series list;
  obs_cells : cell_report list;  (** grid order: scheme-major, then attackers *)
  obs_counters : Obs.Counters.snap;  (** all cells merged, submission order *)
}

val flood_sweep_observed :
  ?jobs:int ->
  ?obs:Experiment.obs_config ->
  ?schemes:(string * Scheme.factory) list ->
  ?attacker_counts:int list ->
  ?base:Experiment.config ->
  attack:(rate_bps:float -> Experiment.attack) ->
  unit ->
  observed
(** {!flood_sweep} with per-cell observability: each cell runs under
    [obs] (default {!Experiment.obs_default}: counters only) and returns
    its report alongside the series points.  Reports are plain data and
    merge in submission order, so the aggregate counters are identical
    for every [jobs] value. *)

val fig8 :
  ?jobs:int -> ?attacker_counts:int list -> ?base:Experiment.config -> unit -> series list
(** Legacy traffic floods. *)

val fig9 :
  ?jobs:int -> ?attacker_counts:int list -> ?base:Experiment.config -> unit -> series list
(** Request packet floods. *)

val fig10 :
  ?jobs:int -> ?attacker_counts:int list -> ?base:Experiment.config -> unit -> series list
(** Authorized floods via a colluder. *)

type fig11_run = {
  label : string; (* e.g. "tva/all-at-once" *)
  timeline : Stats.Timeseries.t; (* (completion time, duration) points *)
}

val fig11 :
  ?jobs:int -> ?base:Experiment.config -> ?duration:float -> unit -> fig11_run list
(** Imprecise authorization: TVA (32 KB / 10 s grants, no renewal for
    attackers) vs SIFF (3 s secret rotation), each under an all-at-once
    100-attacker flood and a 10-groups-of-10 staggered flood starting at
    t = 10 s. *)

val chaos_suite :
  ?jobs:int ->
  ?obs:Experiment.obs_config ->
  ?flight_dir:string ->
  ?base:Experiment.config ->
  unit ->
  Chaos.outcome list
(** {!Chaos.default_suite} over {!Chaos.run_suite}: the eight stock fault
    scenarios against the TVA dumbbell, each an independent deterministic
    run (telemetry + detectors on by default — {!Chaos.obs_default}).
    [tva_sim chaos] without [--faults]. *)

val chaos_single :
  ?obs:Experiment.obs_config ->
  ?flight_dir:string ->
  ?base:Experiment.config ->
  ?expect:Faults.Invariants.expectation ->
  Faults.Spec.t ->
  Chaos.outcome
(** One custom fault spec under {!Faults.Invariants.relaxed} expectations
    (accounting invariants only) unless [expect] says otherwise.
    [tva_sim chaos --faults <spec>]. *)

val render : series list -> Stats.Table.t
(** One row per (attackers, scheme): completion fraction and mean time. *)

val render_fig11 : fig11_run list -> bins:float -> Stats.Table.t
(** Max transfer time per [bins]-second interval for each run — the shape
    Fig. 11 plots. *)
