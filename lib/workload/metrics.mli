(** Collection of the paper's two evaluation metrics (Sec. 5): the average
    fraction of completed transfers and the average time of the transfers
    that complete — plus the completion-time series that Fig. 11 plots. *)

type t

val create : unit -> t

val record_start : t -> unit

val record_outcome : t -> now:float -> ?bytes:int -> Tcp.Conn.outcome -> unit
(** [bytes] is the transfer's payload size, credited to
    {!bytes_completed} on completion (default 0, so callers that only
    track counts are unchanged). *)

val attempted : t -> int
val completed : t -> int
val aborted : t -> int

val fraction_completed : t -> float
(** [completed / attempted]; transfers still in flight at cutoff count as
    not completed.  1.0 when nothing was attempted (so idle cells plot as
    undamaged) — export paths that must distinguish "no attempts" from a
    perfect score use {!fraction_completed_opt}. *)

val fraction_completed_opt : t -> float option
(** [None] when nothing was attempted; JSON exports render it as [null]
    rather than a fabricated 1.0. *)

val avg_transfer_time : t -> float
(** Mean duration of completed transfers; [nan] if none completed. *)

val median_transfer_time : t -> float
(** Median duration of completed transfers (from the timeline's
    per-transfer points); [nan] if none completed. *)

val bytes_completed : t -> int
(** Payload bytes of completed transfers — per-sender goodput when the
    metrics object is per sender, as in [Experiment]. *)

val jain_index : float list -> float
(** Jain's fairness index [(Σx)² / (n·Σx²)] over per-sender shares: 1.0
    for equal shares (and for the empty or all-zero list), [1/n] when one
    sender takes everything. *)

val transfer_times : t -> Stats.Summary.t

val timeline : t -> Stats.Timeseries.t
(** One point per completed transfer: (completion time, duration). *)

val merge_into : t -> t -> unit
(** [merge_into acc x] folds [x]'s counts and samples into [acc]
    (timeline points included). *)
