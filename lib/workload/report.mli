(** The unified cross-scheme fairness report.

    One deterministic artifact that puts all registered schemes side by
    side on the fig8-style legacy-flood sweep, scored by the three
    cross-scheme metrics: completion fraction, median transfer time, and
    the Jain fairness index over per-user goodputs.  [tva_sim report]
    renders it to [results/REPORT.md] and [BENCH_report.json];
    [bench/report_bench] regenerates and gates it in CI. *)

type cell = {
  rc_scheme : string;
  rc_attackers : int;
  rc_fraction : float;  (** completion fraction *)
  rc_median : float;  (** median transfer time, seconds; [nan] if none completed *)
  rc_jain : float;  (** Jain index over per-user goodputs *)
}

type t = {
  cells : cell list;  (** scheme-major, then attacker count *)
  attacker_counts : int list;
  scheme_names : string list;
}

val default_attacker_counts : int list
(** [1; 10; 40; 100] — the fig8 sweep's decades, kept small enough for a
    CI smoke run at full fidelity. *)

val run :
  ?jobs:int ->
  ?schemes:(string * Scheme.factory) list ->
  ?attacker_counts:int list ->
  ?base:Experiment.config ->
  unit ->
  t
(** Run the sweep ([schemes] defaults to the full {!Scenario.schemes}
    registry — all five).  Deterministic and bit-identical for every
    [jobs] value, like every {!Scenario.flood_sweep}. *)

val headline : t -> cell list
(** One cell per scheme at the largest attacker count — the rows the
    README comparison table shows. *)

val headline_rows : t -> string list
(** {!headline} as README-ready markdown rows
    ([| `scheme` | completed | median_s | jain |]). *)

val to_markdown : t -> string
(** The full [results/REPORT.md] document: headline table plus the
    per-cell sweep table.  Contains no timestamps, so regeneration with
    the same parameters is byte-identical. *)

val to_json : t -> string
(** [BENCH_report.json]: flat ["<scheme>_fraction" / "_median_s" /
    "_jain"] headline keys (what [readme_check] pins) plus the full cell
    list. *)
