(** Traffic agents: the repeating-transfer application the paper's
    legitimate users run, the TCP transfer sink on the destination, and the
    constant-rate flooders of the attack scenarios. *)

module Transfer_client : sig
  type t

  val create :
    sim:Sim.t ->
    endpoint:Scheme.endpoint ->
    server:Wire.Addr.t ->
    transfer_bytes:int ->
    max_transfers:int ->
    ?start_at:float ->
    ?conn_base:int ->
    metrics:Metrics.t ->
    ?on_all_done:(unit -> unit) ->
    unit ->
    t
  (** Starts transfer 1 at [start_at]; each subsequent transfer starts the
      moment the previous completes or aborts (paper Sec. 5).  Installs the
      endpoint demux. *)

  val finished : t -> bool
  val transfers_done : t -> int
end

module Transfer_server : sig
  type t

  val create : sim:Sim.t -> endpoint:Scheme.endpoint -> unit -> t
  (** Accepts any number of concurrent connections from any source,
      keyed by (source, connection id). *)

  val connections_seen : t -> int
end

module Flooder : sig
  type mode =
    | Legacy  (** unauthorized packets, Fig. 8 *)
    | Request  (** fresh request/explorer per packet, Fig. 9 *)
    | Authorized  (** well-behaved bulk sender via a colluder grant, Fig. 10 *)
    | Misbehaving  (** authorized once then over-budget, Fig. 11 *)

  val start :
    sim:Sim.t ->
    endpoint:Scheme.endpoint ->
    dst:Wire.Addr.t ->
    rate_bps:float ->
    ?pkt_bytes:int ->
    ?start_at:float ->
    ?stop_at:float ->
    ?rng:Rng.t ->
    mode:mode ->
    unit ->
    unit
  (** Emits fixed-size packets at constant rate from [start_at] (default 0)
      until [stop_at] (default: forever).  Default packet size 1000 bytes,
      matching the legitimate users' data packets.  [rng] (default
      [Rng.split (Sim.rng sim)]) drives the start phase and per-packet
      jitter; passing [Rng.lane ~seed i] makes flooder [i] reproduce member
      [i] of a {!Swarm} bit-for-bit, which the aggregate-equivalence tests
      rely on. *)
end
