type attack =
  | No_attack
  | Legacy_flood of { rate_bps : float }
  | Request_flood of { rate_bps : float }
  | Authorized_flood of { rate_bps : float }
  | Imprecise_flood of { rate_bps : float; groups : int; group_interval : float; start_at : float }

type config = {
  scheme : Scheme.factory;
  n_users : int;
  n_attackers : int;
  attack : attack;
  transfers_per_user : int;
  transfer_bytes : int;
  max_time : float;
  seed : int;
  bottleneck_bps : float;
  access_bps : float;
}

let default =
  {
    scheme = Scheme.tva ();
    n_users = 10;
    n_attackers = 0;
    attack = No_attack;
    transfers_per_user = 50;
    transfer_bytes = 20 * 1024;
    max_time = 120.;
    seed = 1;
    bottleneck_bps = 10e6;
    access_bps = 10e6;
  }

type result = {
  scheme_name : string;
  fraction_completed : float;
  avg_transfer_time : float;
  metrics : Metrics.t;
  user_goodputs : float list;
  jain_index : float;
  sim_end : float;
  events : int;
  obs : Obs.Report.t option;
  flight : Obs.Flight.t option;
}

(* What to observe, as pure data: a config (not live state) crosses Pool
   worker domains safely, each run building its own registry/trace/profiler
   from it. *)
type obs_config = {
  obs_trace_capacity : int; (* 0 = no trace ring *)
  obs_trace_sample : int; (* keep 1 record in k *)
  obs_profile : bool; (* event-loop wall-time profiler (Unix clock) *)
  obs_gauge_period : float; (* sim-seconds between queue-depth samples; 0 = off *)
  obs_telemetry_interval : float; (* sim-seconds between interval windows; 0 = off *)
  obs_flight_windows : int; (* telemetry windows frozen into a flight dump *)
  obs_flight_dir : string option; (* where dumps land; None = no flight recorder *)
  obs_flight_label : string; (* dump file stem, e.g. the chaos scenario label *)
}

let obs_default =
  {
    obs_trace_capacity = 0;
    obs_trace_sample = 1;
    obs_profile = false;
    obs_gauge_period = 0.;
    obs_telemetry_interval = 0.;
    obs_flight_windows = 64;
    obs_flight_dir = None;
    obs_flight_label = "run";
  }

type obs_state = {
  st_registry : Obs.Counters.registry;
  st_counters_for : Net.node -> Obs.Counters.t;
  st_trace : Obs.Trace.t;
  st_profile : Obs.Profile.t option;
}

(* Everything a fault-injection hook needs, handed over after the topology,
   routers, endpoints and attack are wired but before the clock starts.
   The rng is split off the simulation stream only when a hook is present,
   so unfaulted runs consume exactly the draws they always did. *)
type fault_env = {
  fe_sim : Sim.t;
  fe_rng : Rng.t;
  fe_links : Faults.Inject.link_site list;
  fe_routers : Faults.Inject.router_site list;
  fe_users : Scheme.endpoint list;
  fe_destination : Scheme.endpoint;
  fe_obs : Obs.Counters.t;
}

let attacker_oracle a = Wire.Addr.to_int a lsr 24 = 0x0b

let destination_policy cfg =
  match cfg.attack with
  | Request_flood _ ->
      (* Sec. 5.2 assumes the destination can tell attacker requests from
         legitimate ones: refuse attackers outright. *)
      Tva.Policy.make
        ~decide:(fun ~now:_ ~src ~renewal:_ ->
          if attacker_oracle src then Tva.Policy.Refused
          else
            Tva.Policy.Granted
              {
                n_kb = Tva.Params.default.Tva.Params.default_n_kb;
                t_sec = Tva.Params.default.Tva.Params.default_t_sec;
              })
        ()
  | No_attack | Legacy_flood _ | Authorized_flood _ | Imprecise_flood _ ->
      (* Sec. 5.4's public-server policy: grant everyone once, stop
         renewing recognized misbehavers. *)
      Tva.Policy.server ~suspicious:attacker_oracle ()

let install_attack cfg sim (topo : Topology.t) attacker_endpoints =
  let destination = Topology.destination_addr in
  match cfg.attack with
  | No_attack -> ()
  | Legacy_flood { rate_bps } ->
      List.iter
        (fun ep ->
          Agents.Flooder.start ~sim ~endpoint:ep ~dst:destination ~rate_bps
            ~mode:Agents.Flooder.Legacy ())
        attacker_endpoints
  | Request_flood { rate_bps } ->
      (* The paper keeps request packets small; 250 bytes is its example
         request size. *)
      List.iter
        (fun ep ->
          Agents.Flooder.start ~sim ~endpoint:ep ~dst:destination ~rate_bps ~pkt_bytes:250
            ~mode:Agents.Flooder.Request ())
        attacker_endpoints
  | Authorized_flood { rate_bps } ->
      let colluder =
        match topo.Topology.colluder with
        | Some c -> c
        | None -> invalid_arg "Experiment: authorized flood needs a colluder"
      in
      let dst =
        match Net.node_addr colluder with Some a -> a | None -> assert false
      in
      List.iter
        (fun ep ->
          Agents.Flooder.start ~sim ~endpoint:ep ~dst ~rate_bps ~mode:Agents.Flooder.Authorized
            ())
        attacker_endpoints
  | Imprecise_flood { rate_bps; groups; group_interval; start_at } ->
      let n = List.length attacker_endpoints in
      let per_group = max 1 ((n + groups - 1) / groups) in
      List.iteri
        (fun i ep ->
          let group = i / per_group in
          Agents.Flooder.start ~sim ~endpoint:ep ~dst:destination ~rate_bps
            ~start_at:(start_at +. (float_of_int group *. group_interval))
            ~mode:Agents.Flooder.Misbehaving ())
        attacker_endpoints

let run ?obs ?faults cfg =
  let sim = Sim.create ~seed:cfg.seed () in
  let scheme = cfg.scheme sim in
  let with_colluder = match cfg.attack with Authorized_flood _ -> true | _ -> false in
  let topo =
    Topology.dumbbell ~bottleneck_bps:cfg.bottleneck_bps ~access_bps:cfg.access_bps
      ~n_users:cfg.n_users ~with_colluder ~n_attackers:cfg.n_attackers
      ~make_qdisc:(fun ~bandwidth_bps -> scheme.Scheme.make_qdisc ~bandwidth_bps)
      sim
  in
  (* Observability, when asked for: a counter registry keyed by node name,
     the net-event bridge, and optionally a trace ring, an event-loop
     profiler and a queue-depth gauge on the bottleneck.  With [?obs]
     absent nothing is installed and the run is byte-identical to an
     unobserved one. *)
  let obs_state =
    match obs with
    | None -> None
    | Some oc ->
        let reg = Obs.Counters.registry () in
        let counters_for node =
          let name = Net.node_name node in
          match Obs.Counters.find reg ~name with
          | Some c -> c
          | None -> Obs.Counters.register reg ~name
        in
        let trace =
          if oc.obs_trace_capacity > 0 then
            Obs.Trace.create ~capacity:oc.obs_trace_capacity ~sample:oc.obs_trace_sample ()
          else Obs.Trace.nop
        in
        Obs.Bridge.install ~trace ~counters_for topo.Topology.net;
        let profile =
          if oc.obs_profile || oc.obs_gauge_period > 0. then
            Some (Obs.Profile.create ~clock:Unix.gettimeofday ())
          else None
        in
        (match profile with
        | Some p when oc.obs_profile -> Obs.Profile.attach p sim
        | Some _ | None -> ());
        (match profile with
        | Some p when oc.obs_gauge_period > 0. ->
            (* The congested direction's queue is the interesting one; its
               depth under each attack is the dashboard's headline gauge.
               Sampling events consume scheduler sequence numbers, so
               gauge-enabled runs are deterministic but not tie-break
               identical to unobserved ones (DESIGN.md §10). *)
            let q = Net.link_qdisc topo.Topology.bottleneck in
            let g =
              Obs.Profile.gauge p ~name:"bottleneck-queue-depth" ~lo:1. ~hi:4096. ~bins:24
            in
            Obs.Profile.sample_every p sim ~period:oc.obs_gauge_period
              [ (g, fun () -> float_of_int (Qdisc.packet_count q)) ]
        | Some _ | None -> ());
        Some { st_registry = reg; st_counters_for = counters_for; st_trace = trace; st_profile = profile }
  in
  (* Node-id -> name, for the trace dump (flight recorder and report). *)
  let node_name =
    match obs_state with
    | None -> string_of_int
    | Some _ ->
        let names = Hashtbl.create 64 in
        List.iter
          (fun node -> Hashtbl.replace names (Net.node_id node) (Net.node_name node))
          (Net.nodes topo.Topology.net);
        fun id ->
          (match Hashtbl.find_opt names id with Some n -> n | None -> string_of_int id)
  in
  (match obs_state with
  | None ->
      scheme.Scheme.install_router topo.Topology.left ~link_bps:cfg.bottleneck_bps;
      scheme.Scheme.install_router topo.Topology.right ~link_bps:cfg.bottleneck_bps
  | Some st ->
      scheme.Scheme.install_router
        ~obs:(st.st_counters_for topo.Topology.left)
        topo.Topology.left ~link_bps:cfg.bottleneck_bps;
      scheme.Scheme.install_router
        ~obs:(st.st_counters_for topo.Topology.right)
        topo.Topology.right ~link_bps:cfg.bottleneck_bps);
  let ep_obs node =
    match obs_state with None -> None | Some st -> Some (st.st_counters_for node)
  in
  let dest_endpoint =
    scheme.Scheme.make_endpoint
      ?obs:(ep_obs topo.Topology.destination)
      topo.Topology.destination ~role:Scheme.Destination ~policy:(destination_policy cfg)
  in
  let _server = Agents.Transfer_server.create ~sim ~endpoint:dest_endpoint () in
  (match topo.Topology.colluder with
  | Some c ->
      let colluder_endpoint =
        scheme.Scheme.make_endpoint ?obs:(ep_obs c) c ~role:Scheme.Colluder
          ~policy:(Tva.Policy.allow_all ~n_kb:1023 ~t_sec:63 ())
      in
      ignore colluder_endpoint
  | None -> ());
  let metrics = Metrics.create () in
  let users_left = ref cfg.n_users in
  let per_user =
    Array.to_list
      (Array.mapi
         (fun i user ->
           let endpoint =
             scheme.Scheme.make_endpoint ?obs:(ep_obs user) user ~role:Scheme.User
               ~policy:(Tva.Policy.client ())
           in
           let m = Metrics.create () in
           let _client =
             Agents.Transfer_client.create ~sim ~endpoint ~server:Topology.destination_addr
               ~transfer_bytes:cfg.transfer_bytes ~max_transfers:cfg.transfers_per_user
               ~start_at:(0.01 +. (0.011 *. float_of_int i))
               ~conn_base:((i + 1) * 1_000_000)
               ~metrics:m
               ~on_all_done:(fun () ->
                 decr users_left;
                 if !users_left = 0 then Sim.stop sim)
               ()
           in
           (endpoint, m))
         topo.Topology.users)
  in
  let user_endpoints = List.map fst per_user in
  let per_user_metrics = List.map snd per_user in
  let attacker_endpoints =
    Array.to_list
      (Array.map
         (fun a ->
           scheme.Scheme.make_endpoint ?obs:(ep_obs a) a ~role:Scheme.Attacker
             ~policy:(Tva.Policy.client ()))
         topo.Topology.attackers)
  in
  install_attack cfg sim topo attacker_endpoints;
  (match faults with
  | None -> ()
  | Some hook ->
      let fe_obs =
        match obs_state with
        | None -> Obs.Counters.nop
        | Some st -> (
            match Obs.Counters.find st.st_registry ~name:"faults" with
            | Some c -> c
            | None -> Obs.Counters.register st.st_registry ~name:"faults")
      in
      hook
        {
          fe_sim = sim;
          fe_rng = Rng.split (Sim.rng sim);
          fe_links = Faults.Inject.link_sites topo;
          fe_routers = scheme.Scheme.fault_targets ();
          fe_users = user_endpoints;
          fe_destination = dest_endpoint;
          fe_obs;
        });
  (* Telemetry: interval windows over the hot counters and queues, online
     incident detection, and (optionally) a flight recorder.  Set up last so
     the channels can watch the "faults" counter the hook just registered.
     The tick chain rides on auxiliary (negative-sequence) events, so a
     telemetry-on run is bit-identical to a telemetry-off one. *)
  let telemetry =
    match (obs, obs_state) with
    | Some oc, Some st when oc.obs_telemetry_interval > 0. ->
        let ts = Obs.Timeseries.create ~interval:oc.obs_telemetry_interval () in
        let bq = Net.link_qdisc topo.Topology.bottleneck in
        Obs.Timeseries.add ts ~name:"demoted" ~mode:Obs.Timeseries.Cumulative
          (Obs.Timeseries.Cells
             ( [|
                 st.st_counters_for topo.Topology.left;
                 st.st_counters_for topo.Topology.right;
               |],
               Obs.Event.to_int Obs.Event.Demoted ));
        (* The congested direction's request channel, found by name inside
           the composite link scheduler (TVA only; absent elsewhere). *)
        let request_limiter = ref None in
        Qdisc.iter_nested bq (fun q ->
            if q.Qdisc.name = "request-limiter" && !request_limiter = None then
              request_limiter := Some q);
        (match !request_limiter with
        | Some q ->
            Obs.Timeseries.add ts ~name:"request_bytes" ~mode:Obs.Timeseries.Cumulative
              (Obs.Timeseries.Int_fn (fun () -> q.Qdisc.stats.Qdisc.bytes_dequeued))
        | None -> ());
        (* Resolve the nested stats records once; the tick probe is then a
           pure int fold with no traversal. *)
        let drop_stats =
          let acc = ref [] in
          Qdisc.iter_nested bq (fun q -> acc := q.Qdisc.stats :: !acc);
          Array.of_list !acc
        in
        Obs.Timeseries.add ts ~name:"drops" ~mode:Obs.Timeseries.Cumulative
          (Obs.Timeseries.Int_fn
             (fun () ->
               let n = ref 0 in
               Array.iter (fun (s : Qdisc.stats) -> n := !n + s.Qdisc.dropped) drop_stats;
               !n));
        Obs.Timeseries.add ts ~name:"queue_depth" ~mode:Obs.Timeseries.Level
          (Obs.Timeseries.Int_fn (fun () -> Qdisc.packet_count bq));
        Obs.Timeseries.add ts ~name:"flow_cache" ~mode:Obs.Timeseries.Level
          (Obs.Timeseries.Int_fn scheme.Scheme.cache_occupancy);
        (match Obs.Counters.find st.st_registry ~name:"faults" with
        | Some c ->
            Obs.Timeseries.add ts ~name:"faults" ~mode:Obs.Timeseries.Cumulative
              (Obs.Timeseries.Cell (c, Obs.Event.to_int Obs.Event.Fault_injected))
        | None -> ());
        Obs.Timeseries.add ts ~name:"events" ~mode:Obs.Timeseries.Cumulative
          (Obs.Timeseries.Int_fn (fun () -> Sim.events_processed sim));
        let rules =
          let r = ref [] in
          r := Obs.Detect.rule ~name:"demotion-storm" ~chan:"demoted" ~on:50. ~off:5. () :: !r;
          (match !request_limiter with
          | Some { Qdisc.kind = Qdisc.Token_bucket tb; _ } ->
              (* Saturation relative to the channel's configured rate. *)
              let cap = tb.Qdisc.tb_rate_bytes in
              r :=
                Obs.Detect.rule ~name:"request-saturation" ~chan:"request_bytes"
                  ~on:(0.9 *. cap) ~off:(0.3 *. cap) ()
                :: !r
          | Some _ | None -> ());
          r :=
            Obs.Detect.rule ~signal:`Value ~up:2 ~down:3 ~name:"queue-buildup"
              ~chan:"queue_depth" ~on:64. ~off:8. ()
            :: !r;
          if Obs.Timeseries.chan_index ts "faults" <> None then
            r :=
              Obs.Detect.rule ~down:3 ~name:"fault-activity" ~chan:"faults" ~on:0.5 ~off:0.05 ()
              :: !r;
          List.rev !r
        in
        let det = Obs.Detect.create ~rules ts in
        let flight =
          match oc.obs_flight_dir with
          | None -> None
          | Some dir ->
              let f =
                Obs.Flight.create ~windows:oc.obs_flight_windows ~dir
                  ~label:oc.obs_flight_label ()
              in
              Obs.Flight.set_timeseries f ts;
              Obs.Flight.set_trace f st.st_trace;
              Obs.Flight.set_detect f det;
              Obs.Detect.on_onset det (fun inc ->
                  ignore
                    (Obs.Flight.trigger ~node_name f
                       ~reason:("incident:" ^ inc.Obs.Detect.in_rule)
                       ~time:inc.Obs.Detect.in_onset));
              Some f
        in
        Some (ts, det, flight)
    | _ -> None
  in
  let loop_t0 = Unix.gettimeofday () in
  (match telemetry with
  | None -> Sim.run ~until:cfg.max_time sim
  | Some (ts, det, _) ->
      Net.run_parallel
        ~pulse:
          ( Obs.Timeseries.interval ts,
            fun tm ->
              Obs.Timeseries.tick ts ~time:tm;
              Obs.Detect.step det )
        ~until:cfg.max_time topo.Topology.net);
  let loop_wall = Unix.gettimeofday () -. loop_t0 in
  List.iter (Metrics.merge_into metrics) per_user_metrics;
  let obs_report =
    match obs_state with
    | None -> None
    | Some st ->
        (match st.st_profile with Some _ -> Obs.Profile.detach sim | None -> ());
        let series, series_interval, series_json, incidents =
          match telemetry with
          | None -> ([], 0., None, [])
          | Some (ts, det, _) ->
              Obs.Detect.finish det ~time:(Sim.now sim);
              ( Obs.Report.series_rows ts,
                Obs.Timeseries.interval ts,
                Some (Obs.Timeseries.to_json ts),
                Obs.Report.incident_rows det )
        in
        Some
          {
            Obs.Report.counters = Obs.Counters.snapshot_all st.st_registry;
            links = Obs.Report.link_rows_of_net topo.Topology.net;
            caches = scheme.Scheme.report_caches ();
            profile =
              (match st.st_profile with None -> [] | Some p -> Obs.Report.profile_rows p);
            gauges = (match st.st_profile with None -> [] | Some p -> Obs.Report.gauge_rows p);
            (* Single-loop runs report one partition row so the dashboard's
               throughput section renders events/s here too. *)
            partitions =
              [ { Obs.Report.pt_label = "p0"; pt_events = Sim.events_processed sim } ];
            wall_s = loop_wall;
            trace_jsonl = Obs.Report.trace_jsonl ~node_name st.st_trace;
            series;
            series_interval;
            series_json;
            incidents;
          }
  in
  (* Per-sender goodput, user order: payload bytes each user completed
     over the run, as bits/s of simulated time.  Every user's metrics
     object is private to it, so this is exact, not attributed. *)
  let horizon = Float.max (Sim.now sim) 1e-9 in
  let user_goodputs =
    List.map
      (fun m -> float_of_int (Metrics.bytes_completed m) *. 8. /. horizon)
      per_user_metrics
  in
  {
    scheme_name = scheme.Scheme.name;
    fraction_completed = Metrics.fraction_completed metrics;
    avg_transfer_time = Metrics.avg_transfer_time metrics;
    metrics;
    user_goodputs;
    jain_index = Metrics.jain_index user_goodputs;
    sim_end = Sim.now sim;
    events = Sim.events_processed sim;
    obs = obs_report;
    flight = (match telemetry with Some (_, _, f) -> f | None -> None);
  }
