(** Ablations of TVA's design choices, beyond the paper's headline figures
    (each backs a claim the paper makes in prose).

    - {!queueing_discipline}: Sec. 7's spoofed-authorized-traffic attack.
      An attacker spoofs sender S's address, gets a colluder to authorize
      the spoofed flow, and floods.  With per-{e source} fair queueing the
      flood shares S's queue and starves S; with TVA's default
      per-{e destination} queueing S is unaffected.

    - {!state_provisioning}: Sec. 3.6's sizing rule.  A flow cache
      provisioned at [C/(N/T)_min] records cannot be exhausted — flows
      must sustain at least [N/T] each to keep a record alive, and the
      link fits only that many.  An under-provisioned cache, by contrast,
      lets attacker flows crowd out the legitimate user's entry and demote
      its traffic.

    - {!request_queueing}: Sec. 3.9's argument for bounded per-path-id
      queues over stochastic fair queueing: with few SFQ buckets, request
      floods land in every bucket and crowd out legitimate requests that
      share one; per-path-id queues isolate them. *)

type comparison = {
  label_a : string;
  result_a : Experiment.result;
  label_b : string;
  result_b : Experiment.result;
}

val queueing_discipline :
  ?jobs:int ->
  ?n_attackers:int ->
  ?transfers:int ->
  ?max_time:float ->
  ?seed:int ->
  unit ->
  comparison
(** [result_a]: per-destination (TVA default); [result_b]: per-source.
    Metrics are for the spoofed victim S (user 0).  [jobs >= 2] runs the
    two variants on parallel domains via {!Pool.map}; output is identical
    either way. *)

val state_provisioning :
  ?jobs:int ->
  ?n_attacker_flows:int ->
  ?transfers:int ->
  ?max_time:float ->
  ?seed:int ->
  unit ->
  comparison
(** [result_a]: cache provisioned per the paper's rule; [result_b]: a
    64-entry cache under the same attacker flow load. *)

val request_queueing :
  ?jobs:int ->
  ?n_attackers:int ->
  ?buckets:int ->
  ?transfers:int ->
  ?max_time:float ->
  ?seed:int ->
  unit ->
  comparison
(** [result_a]: per-path-id DRR; [result_b]: SFQ over [buckets] (default 8)
    buckets, both under a request flood. *)

val render : comparison -> Stats.Table.t
