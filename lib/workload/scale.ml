(* The million-sender scale experiment (DESIGN.md section 13): legitimate
   users run real transfer clients while the attack side is folded into
   [Swarm] aggregates — per-member state in unboxed arrays, packets
   injected with per-member spoofed source addresses from a handful of
   ingress nodes.  Senders scale to 10^5..10^6 while the node/link graph
   stays structural (tens of routers), which is what lets one process
   sweep botnet sizes three orders of magnitude past the dumbbell's
   node-per-attacker design. *)

type topology_kind =
  | Scale_dumbbell
  | Fan_in of { depth : int; fanout : int }
  | Parking_lot of { segments : int }
  | Power_law of { routers : int; edges_per_node : int }

let topology_kind_to_string = function
  | Scale_dumbbell -> "dumbbell"
  | Fan_in { depth; fanout } -> Printf.sprintf "fanin-d%d-f%d" depth fanout
  | Parking_lot { segments } -> Printf.sprintf "parking-lot-%d" segments
  | Power_law { routers; edges_per_node } -> Printf.sprintf "power-law-%d-m%d" routers edges_per_node

let topology_kind_of_string s =
  match String.split_on_char ':' s with
  | [ "dumbbell" ] -> Ok Scale_dumbbell
  | [ "fanin" ] -> Ok (Fan_in { depth = 3; fanout = 4 })
  | [ "fanin"; d; f ] -> (
      match (int_of_string_opt d, int_of_string_opt f) with
      | Some depth, Some fanout -> Ok (Fan_in { depth; fanout })
      | _ -> Error "fanin wants fanin:<depth>:<fanout>")
  | [ "parking-lot" ] -> Ok (Parking_lot { segments = 3 })
  | [ "parking-lot"; k ] -> (
      match int_of_string_opt k with
      | Some segments -> Ok (Parking_lot { segments })
      | None -> Error "parking-lot wants parking-lot:<segments>")
  | [ "power-law" ] -> Ok (Power_law { routers = 64; edges_per_node = 2 })
  | [ "power-law"; n; m ] -> (
      match (int_of_string_opt n, int_of_string_opt m) with
      | Some routers, Some edges_per_node -> Ok (Power_law { routers; edges_per_node })
      | _ -> Error "power-law wants power-law:<routers>:<edges>")
  | _ ->
      Error
        (Printf.sprintf
           "unknown topology %S (want dumbbell | fanin[:d:f] | parking-lot[:k] | power-law[:n:m])"
           s)

type config = {
  sc_scheme : Scheme.factory;
  sc_topology : topology_kind;
  sc_senders : int;  (* total flood members across all aggregates *)
  sc_aggregates : int;
  sc_swarm_mode : Swarm.mode;
  sc_batch_window : float;
  sc_attack_bps : float;  (* aggregate attack rate, split evenly over members *)
  sc_attack_pkt_bytes : int;
  sc_n_users : int;
  sc_transfers_per_user : int;
  sc_transfer_bytes : int;
  sc_max_time : float;
  sc_seed : int;
  sc_bottleneck_bps : float;
  sc_access_bps : float;
  sc_sched : Sim.sched option; (* None = auto via Sim.recommended_sched *)
  sc_par_domains : int; (* 1 = sequential; K > 1 = conservative PDES on K domains *)
}

let default =
  {
    sc_scheme = Scheme.tva ();
    sc_topology = Fan_in { depth = 3; fanout = 4 };
    sc_senders = 1000;
    sc_aggregates = 4;
    sc_swarm_mode = Swarm.Coalesced;
    sc_batch_window = 0.;
    sc_attack_bps = 40e6;
    sc_attack_pkt_bytes = 1000;
    sc_n_users = 10;
    sc_transfers_per_user = 5;
    sc_transfer_bytes = 20 * 1024;
    sc_max_time = 30.;
    sc_seed = 1;
    sc_bottleneck_bps = 10e6;
    sc_access_bps = 10e6;
    sc_sched = None;
    sc_par_domains = 1;
  }

type result = {
  sr_scheme : string;
  sr_topology : string;
  sr_sched : Sim.sched;  (* what actually ran, after auto-selection *)
  sr_senders : int;
  sr_fraction_completed : float;
  sr_avg_transfer_time : float;
  sr_metrics : Metrics.t;
  sr_sim_end : float;
  sr_events : int;
  sr_attack_packets : int;
  sr_routers : int;
  sr_wall_s : float;
  sr_partitions : int;
  sr_partition_events : int array;
  sr_obs : Obs.Report.t option;
}

(* One view over every generator: where senders plug in, where the scheme
   routers go, and who the victim is. *)
type built = {
  b_net : Net.t;
  b_routers : Net.node list;
  b_attach : Net.node array; (* round-robin ingress points for hosts *)
  b_destination : Net.node;
  b_dest_addr : Wire.Addr.t;
}

let build_topology cfg scheme sim =
  let make_qdisc ~bandwidth_bps = scheme.Scheme.make_qdisc ~bandwidth_bps in
  match cfg.sc_topology with
  | Scale_dumbbell ->
      let topo =
        Topology.dumbbell ~bottleneck_bps:cfg.sc_bottleneck_bps ~access_bps:cfg.sc_access_bps
          ~n_users:0 ~n_attackers:0 ~make_qdisc sim
      in
      {
        b_net = topo.Topology.net;
        b_routers = [ topo.Topology.left; topo.Topology.right ];
        b_attach = [| topo.Topology.left |];
        b_destination = topo.Topology.destination;
        b_dest_addr = Topology.destination_addr;
      }
  | Fan_in { depth; fanout } ->
      let t =
        Topology.fanin ~depth ~fanout ~bottleneck_bps:cfg.sc_bottleneck_bps ~make_qdisc sim
      in
      {
        b_net = t.Topology.fi_net;
        b_routers = Array.to_list t.Topology.fi_routers;
        b_attach = t.Topology.fi_leaves;
        b_destination = t.Topology.fi_destination;
        b_dest_addr = Topology.fanin_destination_addr;
      }
  | Parking_lot { segments } ->
      let t =
        Topology.parking_lot ~segments ~bottleneck_bps:cfg.sc_bottleneck_bps
          ~access_bps:cfg.sc_access_bps ~make_qdisc sim
      in
      (* Hosts enter at every router but the last, so traffic to the far
         destination loads later segments cumulatively. *)
      {
        b_net = t.Topology.pl_net;
        b_routers = Array.to_list t.Topology.pl_routers;
        b_attach = Array.sub t.Topology.pl_routers 0 segments;
        b_destination = t.Topology.pl_destination;
        b_dest_addr = Topology.parking_destination_addr;
      }
  | Power_law { routers; edges_per_node } ->
      let t =
        Topology.power_law ~routers ~edges_per_node ~bottleneck_bps:cfg.sc_bottleneck_bps
          ~seed:cfg.sc_seed ~make_qdisc sim
      in
      {
        b_net = t.Topology.pw_net;
        b_routers = Array.to_list t.Topology.pw_routers;
        b_attach = t.Topology.pw_routers;
        b_destination = t.Topology.pw_destination;
        b_dest_addr = Topology.power_law_destination_addr;
      }

let run ?obs cfg =
  if cfg.sc_senders <= 0 then invalid_arg "Scale.run: need at least one sender";
  if cfg.sc_senders >= 0x01000000 then
    invalid_arg "Scale.run: sender count exceeds the 0x0b spoofed-address prefix (2^24)";
  if cfg.sc_aggregates <= 0 then invalid_arg "Scale.run: need at least one aggregate";
  if cfg.sc_par_domains < 1 then invalid_arg "Scale.run: need at least one domain";
  let aggregates = min cfg.sc_aggregates cfg.sc_senders in
  let sched =
    match cfg.sc_sched with
    | Some s -> s
    | None ->
        let expected =
          match cfg.sc_swarm_mode with
          | Swarm.Independent -> cfg.sc_senders
          | Swarm.Coalesced -> aggregates + (4 * cfg.sc_n_users)
        in
        Sim.recommended_sched ~expected_pending:expected
  in
  let sim = Sim.create ~seed:cfg.sc_seed ~sched () in
  let scheme = cfg.sc_scheme sim in
  let b = build_topology cfg scheme sim in
  let make_qdisc ~bandwidth_bps = scheme.Scheme.make_qdisc ~bandwidth_bps in
  let pick i = b.b_attach.(i mod Array.length b.b_attach) in
  let users =
    Array.init cfg.sc_n_users (fun i ->
        Topology.attach_host ~bandwidth_bps:cfg.sc_access_bps ~make_qdisc ~net:b.b_net
          ~router:(pick i) ~addr:(Topology.user_addr i)
          ~name:(Printf.sprintf "user%d" i)
          ())
  in
  (* The swarm ingress nodes carry the whole attack share of their members,
     so their uplinks must not be the choke point — the interesting drops
     belong to the scheme's router queues. *)
  let swarm_uplink_bps =
    Float.max cfg.sc_access_bps (2. *. cfg.sc_attack_bps /. float_of_int aggregates)
  in
  let swarm_nodes =
    Array.init aggregates (fun k ->
        let node = Net.add_node ~name:(Printf.sprintf "swarm%d" k) b.b_net (fun _ ~in_link:_ _ -> ()) in
        ignore
          (Net.duplex b.b_net node (pick k) ~bandwidth_bps:swarm_uplink_bps ~delay:0.010
             ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:swarm_uplink_bps));
        node)
  in
  Net.compute_routes b.b_net;
  (* Partitioning happens here — topology and routes are final, but no
     agent has scheduled anything yet, so every partition's simulator
     starts empty and the master has no pending events to strand. *)
  let kpar = cfg.sc_par_domains in
  if kpar > 1 then begin
    if not scheme.Scheme.partition_safe then
      invalid_arg
        (Printf.sprintf "Scale.run: scheme %S is not partition-safe (sc_par_domains > 1)"
           scheme.Scheme.name);
    (match obs with
    | Some oc when oc.Experiment.obs_trace_capacity > 0 ->
        invalid_arg "Scale.run: packet tracing is not supported with sc_par_domains > 1"
    | Some _ | None -> ());
    (* Load-aware balance: a node's event count tracks the packets it
       receives plus the packets it forwards, and floods are clipped at
       bottleneck links (the fan-in root takes the full offered load in
       but only the bottleneck's share out).  Estimate both with two
       walks over each source's route to the victim: one accumulating
       offered packets per link, one charging arrivals + capped
       departures per node with proportional sharing at saturated links.
       Balancing on these sums instead of node counts keeps the hot
       victim-side nodes from also dragging the rest of the tree into
       their region, which is what caps parallel speedup on a fan-in. *)
    let weights =
      let n = List.length (Net.nodes b.b_net) in
      let w = Array.make n 1. in
      let offered = Hashtbl.create 64 in
      let load l = Option.value ~default:0. (Hashtbl.find_opt offered (Net.link_id l)) in
      let walk ~charge src pkts0 =
        let cur = ref src and pkts = ref pkts0 and steps = ref 0 and continue = ref true in
        while !continue && !steps <= n do
          match Net.node_addr !cur with
          | Some a when Wire.Addr.equal a b.b_dest_addr ->
              if charge then w.(Net.node_id !cur) <- w.(Net.node_id !cur) +. !pkts;
              continue := false
          | _ -> (
              match Net.route_for !cur b.b_dest_addr with
              | None -> continue := false
              | Some l ->
                  if not charge then
                    Hashtbl.replace offered (Net.link_id l) (load l +. !pkts)
                  else begin
                    let cap =
                      Net.link_bandwidth l
                      /. (8. *. float_of_int cfg.sc_attack_pkt_bytes)
                      *. cfg.sc_max_time
                    in
                    let lo = load l in
                    let out = if lo > cap then !pkts *. cap /. lo else !pkts in
                    w.(Net.node_id !cur) <- w.(Net.node_id !cur) +. !pkts +. out;
                    pkts := out
                  end;
                  cur := Net.link_dst l;
                  incr steps)
        done
      in
      let attack_pkts_per_swarm =
        cfg.sc_attack_bps
        /. (8. *. float_of_int cfg.sc_attack_pkt_bytes)
        *. cfg.sc_max_time
        /. float_of_int aggregates
      in
      (* Users see both directions (requests up, data and grants back);
         routes are symmetric, so doubling the forward charge stands in
         for the return traffic. *)
      let user_pkts =
        2.
        *. float_of_int cfg.sc_transfers_per_user
        *. ((float_of_int cfg.sc_transfer_bytes /. 1000.) +. 4.)
      in
      Array.iter (fun s -> walk ~charge:false s attack_pkts_per_swarm) swarm_nodes;
      Array.iter (fun u -> walk ~charge:false u user_pkts) users;
      Array.iter (fun s -> walk ~charge:true s attack_pkts_per_swarm) swarm_nodes;
      Array.iter (fun u -> walk ~charge:true u user_pkts) users;
      w
    in
    let parts = Topology.partition ~k:kpar ~weights b.b_net in
    Net.install_partitions b.b_net ~parts
  end;
  let psims = Net.partition_sims b.b_net in
  (* Observability mirrors Experiment.run, plus the footprint gauges that
     back BENCH_scale.json's peak-memory column.  Under K > 1 the counter
     registry is frozen (pre-registered) before the run so the bridge only
     ever reads it from worker domains, each profile instance belongs to
     one partition's domain, and the heap gauges sample from partition 0
     (the coordinating domain) — the OCaml heap they measure is global. *)
  let obs_state =
    match obs with
    | None -> None
    | Some (oc : Experiment.obs_config) ->
        let reg = Obs.Counters.registry () in
        let counters_for node =
          let name = Net.node_name node in
          match Obs.Counters.find reg ~name with
          | Some c -> c
          | None -> Obs.Counters.register reg ~name
        in
        if kpar > 1 then List.iter (fun node -> ignore (counters_for node)) (Net.nodes b.b_net);
        let trace =
          if oc.Experiment.obs_trace_capacity > 0 then
            Obs.Trace.create ~capacity:oc.Experiment.obs_trace_capacity
              ~sample:oc.Experiment.obs_trace_sample ()
          else Obs.Trace.nop
        in
        Obs.Bridge.install ~trace ~counters_for b.b_net;
        let profiles =
          if oc.Experiment.obs_profile || oc.Experiment.obs_gauge_period > 0. then
            Array.map (fun _ -> Obs.Profile.create ~clock:Unix.gettimeofday ()) psims
          else [||]
        in
        if oc.Experiment.obs_profile then
          Array.iteri (fun i p -> Obs.Profile.attach p psims.(i)) profiles;
        if Array.length profiles > 0 && oc.Experiment.obs_gauge_period > 0. then
          Obs.Profile.memory_gauges profiles.(0) psims.(0) ~period:oc.Experiment.obs_gauge_period;
        Some (reg, counters_for, trace, profiles)
  in
  let router_obs node =
    match obs_state with None -> None | Some (_, f, _, _) -> Some (f node)
  in
  List.iter
    (fun r ->
      match router_obs r with
      | None -> scheme.Scheme.install_router r ~link_bps:cfg.sc_bottleneck_bps
      | Some c -> scheme.Scheme.install_router ~obs:c r ~link_bps:cfg.sc_bottleneck_bps)
    b.b_routers;
  let dest_endpoint =
    scheme.Scheme.make_endpoint ?obs:(router_obs b.b_destination) b.b_destination
      ~role:Scheme.Destination
      ~policy:(Tva.Policy.server ~suspicious:Experiment.attacker_oracle ())
  in
  let _server =
    Agents.Transfer_server.create ~sim:(Net.node_sim b.b_destination) ~endpoint:dest_endpoint ()
  in
  let metrics = Metrics.create () in
  let per_user_metrics =
    Array.to_list
      (Array.mapi
         (fun i user ->
           let endpoint =
             scheme.Scheme.make_endpoint ?obs:(router_obs user) user ~role:Scheme.User
               ~policy:(Tva.Policy.client ())
           in
           let m = Metrics.create () in
           (* No early [Sim.stop] when the users finish: the lockstep
              windows of the parallel driver cannot stop mid-window
              deterministically, so both the sequential and parallel paths
              always run to [sc_max_time] — which keeps them comparable. *)
           let _client =
             Agents.Transfer_client.create ~sim:(Net.node_sim user) ~endpoint
               ~server:b.b_dest_addr ~transfer_bytes:cfg.sc_transfer_bytes
               ~max_transfers:cfg.sc_transfers_per_user
               ~start_at:(0.01 +. (0.011 *. float_of_int i))
               ~conn_base:((i + 1) * 1_000_000)
               ~metrics:m ()
           in
           m)
         users)
  in
  (* Split members over aggregates; member addresses are globally indexed
     spoofed 0x0b-prefix sources, so the destination's suspicion oracle and
     any per-sender router state see the full botnet, not the few ingress
     nodes.  A legacy flood packet is shim-less and draws no replies, so
     the spoofed sources never need reverse routes. *)
  let per = cfg.sc_senders / aggregates and rem = cfg.sc_senders mod aggregates in
  let swarms =
    Array.init aggregates (fun k ->
        let n = per + (if k < rem then 1 else 0) in
        if n = 0 then None
        else begin
          let base = (k * per) + min k rem in
          let node = swarm_nodes.(k) in
          let member_rate = cfg.sc_attack_bps /. float_of_int cfg.sc_senders in
          let emit ~member ~due =
            let src = Topology.attacker_addr (base + member) in
            Net.originate node
              (Wire.Packet.make ~src ~dst:b.b_dest_addr ~created:due
                 (Wire.Packet.Raw cfg.sc_attack_pkt_bytes))
          in
          Some
            (Swarm.start ~sim:(Net.node_sim node) ~n ~seed:(cfg.sc_seed + (1000 * k))
               ~rate_bps:member_rate ~pkt_bytes:cfg.sc_attack_pkt_bytes
               ~batch_window:cfg.sc_batch_window ~mode:cfg.sc_swarm_mode ~emit ())
        end)
  in
  (* Telemetry rides the same machinery in both execution modes: the
     sequential path drives ticks from an auxiliary event chain, the
     partitioned path from the barrier pulses — both stamp window k at
     [k *. interval], so the interval series is identical for any
     [sc_par_domains].  The datapath channels (demoted, drops, flow_cache)
     are partition-invariant; [events]/[p<i>_events] are diagnostic and
     depend on the execution mode by construction. *)
  let telemetry =
    match (obs, obs_state) with
    | Some (oc : Experiment.obs_config), Some (_, counters_for, _, _)
      when oc.Experiment.obs_telemetry_interval > 0. ->
        let ts = Obs.Timeseries.create ~interval:oc.Experiment.obs_telemetry_interval () in
        Obs.Timeseries.add ts ~name:"demoted" ~mode:Obs.Timeseries.Cumulative
          (Obs.Timeseries.Cells
             ( Array.map counters_for (Array.of_list b.b_routers),
               Obs.Event.to_int Obs.Event.Demoted ));
        let drop_stats =
          let acc = ref [] in
          List.iter
            (fun l -> Qdisc.iter_nested (Net.link_qdisc l) (fun q -> acc := q.Qdisc.stats :: !acc))
            (Net.links b.b_net);
          Array.of_list !acc
        in
        Obs.Timeseries.add ts ~name:"drops" ~mode:Obs.Timeseries.Cumulative
          (Obs.Timeseries.Int_fn
             (fun () ->
               let n = ref 0 in
               Array.iter (fun (s : Qdisc.stats) -> n := !n + s.Qdisc.dropped) drop_stats;
               !n));
        Obs.Timeseries.add ts ~name:"flow_cache" ~mode:Obs.Timeseries.Level
          (Obs.Timeseries.Int_fn scheme.Scheme.cache_occupancy);
        Obs.Timeseries.add ts ~name:"events" ~mode:Obs.Timeseries.Cumulative
          (Obs.Timeseries.Int_fn
             (fun () -> Array.fold_left (fun acc s -> acc + Sim.events_processed s) 0 psims));
        if Array.length psims > 1 then
          Array.iteri
            (fun i s ->
              Obs.Timeseries.add ts
                ~name:(Printf.sprintf "p%d_events" i)
                ~mode:Obs.Timeseries.Cumulative
                (Obs.Timeseries.Int_fn (fun () -> Sim.events_processed s)))
            psims;
        Some ts
    | _ -> None
  in
  let pulse =
    match telemetry with
    | None -> None
    | Some ts -> Some (Obs.Timeseries.interval ts, fun tm -> Obs.Timeseries.tick ts ~time:tm)
  in
  let wall_start = Unix.gettimeofday () in
  Net.run_parallel ?pulse ~until:cfg.sc_max_time b.b_net;
  let wall_s = Unix.gettimeofday () -. wall_start in
  List.iter (Metrics.merge_into metrics) per_user_metrics;
  let attack_packets =
    Array.fold_left
      (fun acc s -> match s with None -> acc | Some s -> acc + Swarm.packets_sent s)
      0 swarms
  in
  let partition_events = Array.map Sim.events_processed psims in
  let partition_rows =
    if Array.length psims < 2 then []
    else
      Array.to_list
        (Array.mapi
           (fun i e -> { Obs.Report.pt_label = Printf.sprintf "p%d" i; pt_events = e })
           partition_events)
  in
  let obs_report =
    match obs_state with
    | None -> None
    | Some (reg, _, trace, profiles) ->
        Array.iter Obs.Profile.detach psims;
        (* Fold the per-partition profiler instances into one; each was
           written by exactly one domain, and the run is over. *)
        let profile =
          if Array.length profiles = 0 then None
          else begin
            for i = 1 to Array.length profiles - 1 do
              Obs.Profile.absorb profiles.(0) profiles.(i)
            done;
            Some profiles.(0)
          end
        in
        let names = Hashtbl.create 64 in
        List.iter
          (fun node -> Hashtbl.replace names (Net.node_id node) (Net.node_name node))
          (Net.nodes b.b_net);
        let node_name id =
          match Hashtbl.find_opt names id with Some n -> n | None -> string_of_int id
        in
        Some
          {
            Obs.Report.counters = Obs.Counters.snapshot_all reg;
            links = Obs.Report.link_rows_of_net b.b_net;
            caches = scheme.Scheme.report_caches ();
            profile = (match profile with None -> [] | Some p -> Obs.Report.profile_rows p);
            gauges = (match profile with None -> [] | Some p -> Obs.Report.gauge_rows p);
            partitions = partition_rows;
            wall_s;
            trace_jsonl = Obs.Report.trace_jsonl ~node_name trace;
            series = (match telemetry with None -> [] | Some ts -> Obs.Report.series_rows ts);
            series_interval =
              (match telemetry with None -> 0. | Some ts -> Obs.Timeseries.interval ts);
            series_json =
              (match telemetry with None -> None | Some ts -> Some (Obs.Timeseries.to_json ts));
            incidents = [];
          }
  in
  {
    sr_scheme = scheme.Scheme.name;
    sr_topology = topology_kind_to_string cfg.sc_topology;
    sr_sched = sched;
    sr_senders = cfg.sc_senders;
    sr_fraction_completed = Metrics.fraction_completed metrics;
    sr_avg_transfer_time = Metrics.avg_transfer_time metrics;
    sr_metrics = metrics;
    sr_sim_end = Array.fold_left (fun acc s -> Float.max acc (Sim.now s)) neg_infinity psims;
    sr_events = Array.fold_left ( + ) 0 partition_events;
    sr_attack_packets = attack_packets;
    sr_routers = List.length b.b_routers;
    sr_wall_s = wall_s;
    sr_partitions = Array.length psims;
    sr_partition_events = partition_events;
    sr_obs = obs_report;
  }
