(** The Sec. 5 experiment harness: a dumbbell with 10 legitimate users
    repeatedly transferring 20 KB to a destination while a configurable
    attack runs, measured by completion fraction and transfer time. *)

type attack =
  | No_attack
  | Legacy_flood of { rate_bps : float }
      (** Each attacker floods the destination with unauthorized packets
          (Fig. 8). *)
  | Request_flood of { rate_bps : float }
      (** Each attacker floods the destination with request packets; the
          destination can tell attacker requests apart and refuses them
          (Fig. 9). *)
  | Authorized_flood of { rate_bps : float }
      (** A colluder behind the bottleneck authorizes the attackers, who
          send fully authorized traffic at maximum rate (Fig. 10). *)
  | Imprecise_flood of {
      rate_bps : float;
      groups : int;
      group_interval : float;
      start_at : float;
    }
      (** The Fig. 11 policy experiment: the destination grants everyone
          once (32 KB / 10 s) but never renews attackers; attackers flood
          past their budget.  [groups = 1] is the high-intensity attack;
          [groups = 10] staggers group starts by [group_interval]. *)

type config = {
  scheme : Scheme.factory;
  n_users : int;
  n_attackers : int;
  attack : attack;
  transfers_per_user : int;
  transfer_bytes : int;
  max_time : float;  (** hard simulation cutoff *)
  seed : int;
  bottleneck_bps : float;
  access_bps : float;
}

val default : config
(** The paper's setup: 10 users, 10 Mb/s bottleneck, 60 ms RTT, 20 KB
    transfers, TVA scheme, no attack; 50 transfers per user and a 120 s
    cutoff to keep runs laptop-sized. *)

type result = {
  scheme_name : string;
  fraction_completed : float;
  avg_transfer_time : float;
  metrics : Metrics.t;
  user_goodputs : float list;
      (** per-user completed-payload goodput (bits/s of simulated time),
          user order — the shares the Jain index is computed over *)
  jain_index : float;
      (** {!Metrics.jain_index} over [user_goodputs]: how evenly the
          attack's survivors share the bottleneck *)
  sim_end : float;
  events : int;  (** simulator events fired during the run (for events/sec) *)
  obs : Obs.Report.t option;  (** present iff [run ?obs] was given a config *)
  flight : Obs.Flight.t option;
      (** the run's flight recorder (present iff telemetry was on and
          [obs_flight_dir] was set) — callers may {!Obs.Flight.trigger} it
          post-run, e.g. on a chaos invariant failure *)
}

type obs_config = {
  obs_trace_capacity : int;  (** trace-ring capacity; 0 disables tracing *)
  obs_trace_sample : int;  (** keep 1 trace record in [k] *)
  obs_profile : bool;  (** event-loop wall-time profiler (Unix clock) *)
  obs_gauge_period : float;
      (** sim-seconds between bottleneck queue-depth samples; 0 disables.
          The sampler consumes scheduler sequence numbers, so gauge-enabled
          runs are deterministic but not tie-break-identical to unobserved
          ones. *)
  obs_telemetry_interval : float;
      (** sim-seconds between telemetry windows; 0 disables.  The tick
          chain rides on auxiliary (negative-sequence) events, so — unlike
          the gauge sampler — telemetry-on runs ARE bit-identical to
          telemetry-off ones.  Channels: demoted, request_bytes (TVA),
          drops, queue_depth, flow_cache, faults (when a hook is
          installed), events; detectors: demotion-storm,
          request-saturation, queue-buildup, fault-activity. *)
  obs_flight_windows : int;  (** telemetry windows frozen into each flight dump *)
  obs_flight_dir : string option;
      (** directory for flight-recorder dumps ([flight_<label>_<n>.json]);
          [None] disables the recorder.  Requires telemetry. *)
  obs_flight_label : string;  (** dump file stem, e.g. the chaos scenario label *)
}

val obs_default : obs_config
(** Counters + net-event bridge only: no trace, no profiler, no gauges. *)

type fault_env = {
  fe_sim : Sim.t;
  fe_rng : Rng.t;
      (** a private stream split off the simulation rng — injector draws
          never perturb workload randomness *)
  fe_links : Faults.Inject.link_site list;  (** every link, labeled/classified *)
  fe_routers : Faults.Inject.router_site list;
      (** {!Scheme.t.fault_targets} — empty for schemes without wipeable
          router state *)
  fe_users : Scheme.endpoint list;
      (** the legitimate senders, user order; read their
          [ep_reacquire_latencies] after the run *)
  fe_destination : Scheme.endpoint;
  fe_obs : Obs.Counters.t;
      (** registry row ["faults"] when observability is on, else a nop *)
}
(** Everything a fault-injection hook needs, snapshotted after the
    topology, routers, endpoints and attack are installed but before
    [Sim.run] (see {!Faults.Inject.env}). *)

val run : ?obs:obs_config -> ?faults:(fault_env -> unit) -> config -> result
(** With [?obs] absent, nothing observability-related is installed and the
    run is byte-identical to the pre-observability harness.  [obs_config]
    is pure data, so sweep cells can carry it across [Pool] domains and
    each run builds private counter/trace/profiler state.

    With [?faults] present the hook runs once, just before the clock
    starts; typically it calls {!Faults.Inject.install} with the env and
    stashes what it needs for post-run checks.  With it absent no fault
    state is created and no rng is split, so unfaulted runs stay
    byte-identical. *)

val attacker_oracle : Wire.Addr.t -> bool
(** True for addresses in the attacker range — the "destination can
    distinguish likely attackers, even imprecisely" oracle of Secs. 5.2
    and 5.4. *)
