type comparison = {
  label_a : string;
  result_a : Experiment.result;
  label_b : string;
  result_b : Experiment.result;
}

let params = Scenario.sim_params

(* A hand-rolled experiment skeleton for the ablations that need attacks
   the standard harness does not model (spoofing, state exhaustion).
   Returns the per-user metrics and the dumbbell so callers can wire in
   custom attackers before the run starts. *)
let run_custom ?(n_users = 10) ?(with_colluder = false) ?(transfers = 20) ?(max_time = 60.)
    ?(seed = 1) ?(user_start = 0.01) ~scheme ~attach_attack () =
  let sim = Sim.create ~seed () in
  let scheme = scheme sim in
  let topo =
    Topology.dumbbell ~n_users ~with_colluder ~n_attackers:0
      ~make_qdisc:(fun ~bandwidth_bps -> scheme.Scheme.make_qdisc ~bandwidth_bps)
      sim
  in
  scheme.Scheme.install_router topo.Topology.left ~link_bps:10e6;
  scheme.Scheme.install_router topo.Topology.right ~link_bps:10e6;
  let dest_endpoint =
    scheme.Scheme.make_endpoint topo.Topology.destination ~role:Scheme.Destination
      ~policy:(Tva.Policy.server ~suspicious:Experiment.attacker_oracle ())
  in
  let _server = Agents.Transfer_server.create ~sim ~endpoint:dest_endpoint () in
  let metrics = Metrics.create () in
  let per_user =
    Array.to_list
      (Array.mapi
         (fun i user ->
           let endpoint =
             scheme.Scheme.make_endpoint user ~role:Scheme.User ~policy:(Tva.Policy.client ())
           in
           let m = Metrics.create () in
           ignore
             (Agents.Transfer_client.create ~sim ~endpoint ~server:Topology.destination_addr
                ~transfer_bytes:(20 * 1024) ~max_transfers:transfers
                ~start_at:(user_start +. (0.011 *. float_of_int i))
                ~conn_base:((i + 1) * 1_000_000)
                ~metrics:m ());
           m)
         topo.Topology.users)
  in
  attach_attack ~sim ~topo;
  Sim.run ~until:max_time sim;
  List.iter (Metrics.merge_into metrics) per_user;
  let horizon = Float.max (Sim.now sim) 1e-9 in
  let goodputs =
    List.map (fun m -> float_of_int (Metrics.bytes_completed m) *. 8. /. horizon) per_user
  in
  let result user_metrics =
    {
      Experiment.scheme_name = scheme.Scheme.name;
      fraction_completed = Metrics.fraction_completed user_metrics;
      avg_transfer_time = Metrics.avg_transfer_time user_metrics;
      metrics = user_metrics;
      user_goodputs = goodputs;
      jain_index = Metrics.jain_index goodputs;
      sim_end = Sim.now sim;
      events = Sim.events_processed sim;
      obs = None;
      flight = None;
    }
  in
  (result metrics, List.map result per_user)

(* --- Sec. 7: per-source vs per-destination queueing -------------------- *)

(* Each ablation compares two self-contained variant runs; [Pool.map] over
   the two-element variant list keeps A/B labelling (and output) identical
   to the sequential order while letting [~jobs:2] overlap the runs. *)
let ab_pair ~jobs run variant_a variant_b =
  match Pool.map ~jobs run [ variant_a; variant_b ] with
  | [ a; b ] -> (a, b)
  | _ -> assert false

let queueing_discipline ?(jobs = 1) ?(n_attackers = 20) ?(transfers = 20) ?(max_time = 60.)
    ?(seed = 1) () =
  let run key =
    let scheme sim =
      let base = Scheme.tva ~params () sim in
      {
        base with
        Scheme.make_qdisc =
          (fun ~bandwidth_bps -> Tva.Qdiscs.make ~regular_key:key ~params ~bandwidth_bps ());
      }
    in
    let attach_attack ~sim ~(topo : Topology.t) =
      let colluder = match topo.Topology.colluder with Some c -> c | None -> assert false in
      let colluder_addr = match Net.node_addr colluder with Some a -> a | None -> assert false in
      let victim_addr = Topology.user_addr 0 in
      let fast = (module Crypto.Keyed_hash.Fast : Crypto.Keyed_hash.S) in
      let n_kb = 1023 and t_sec = 63 in
      (* One physical attacker host is enough: it spoofs S on every packet
         and scales its flood rate. *)
      let net = topo.Topology.net in
      let attacker_addr = Topology.attacker_addr 0 in
      let caps_ref = ref None in
      let attacker =
        Net.add_node ~addr:attacker_addr ~name:"spoofer" net (fun _ ~in_link:_ p ->
            match p.Wire.Packet.shim with
            | Some { Wire.Cap_shim.return_info = Some (Wire.Cap_shim.Grant { caps; _ }); _ }
              when caps <> [] ->
                caps_ref := Some caps
            | Some _ | None -> ())
      in
      ignore
        (Net.duplex net attacker topo.Topology.left ~bandwidth_bps:100e6 ~delay:0.010
           ~qdisc:(fun () -> Tva.Qdiscs.make ~regular_key:key ~params ~bandwidth_bps:100e6 ()));
      Net.compute_routes net;
      (* The colluder grants (src = S, dst = colluder) requests, returning
         the capabilities to the attacker's real address. *)
      Net.set_handler colluder (fun _ ~in_link:_ p ->
          match p.Wire.Packet.shim with
          | Some { Wire.Cap_shim.kind = Wire.Cap_shim.Request req; _ } ->
              let caps =
                List.map
                  (fun precap -> Tva.Capability.cap_of_precap ~hash:fast ~precap ~n_kb ~t_sec)
                  (Wire.Cap_shim.precaps req)
              in
              let shim = Wire.Cap_shim.request () in
              shim.Wire.Cap_shim.return_info <- Some (Wire.Cap_shim.Grant { n_kb; t_sec; caps });
              Net.originate colluder
                (Wire.Packet.make ~shim ~src:colluder_addr ~dst:attacker_addr
                   ~created:(Sim.now sim) (Wire.Packet.Raw 64))
          | Some _ | None -> ());
      let rate_bps = float_of_int n_attackers *. 1e6 in
      let interval = 1000. *. 8. /. rate_bps in
      let nonce = ref 1L in
      let sent_caps = ref false in
      let budget = ref 0 in
      let last_request = ref neg_infinity in
      let rng = Rng.split (Sim.rng sim) in
      let rec tick () =
        let now = Sim.now sim in
        (match !caps_ref with
        | Some caps when !budget > 2000 ->
            let shim =
              Wire.Cap_shim.regular ~nonce:!nonce
                ~caps:(if !sent_caps then [] else caps)
                ~n_kb ~t_sec ~renewal:false ()
            in
            sent_caps := true;
            let p =
              Wire.Packet.make ~shim ~src:victim_addr ~dst:colluder_addr ~created:now
                (Wire.Packet.Raw 1000)
            in
            budget := !budget - Wire.Packet.size p;
            Net.originate attacker p
        | Some _ | None ->
            if now -. !last_request > 0.5 then begin
              last_request := now;
              caps_ref := None;
              sent_caps := false;
              nonce := Int64.add !nonce 1L;
              budget := n_kb * 1024;
              let shim = Wire.Cap_shim.request () in
              Net.originate attacker
                (Wire.Packet.make ~shim ~src:victim_addr ~dst:colluder_addr ~created:now
                   (Wire.Packet.Raw 64))
            end);
        ignore (Sim.schedule ~kind:Sim.Kind.agent sim ~delay:(interval *. (0.95 +. Rng.float rng 0.1)) tick)
      in
      ignore (Sim.schedule_at ~kind:Sim.Kind.agent sim ~time:(Rng.float rng interval) tick)
    in
    let _, per_user =
      run_custom ~with_colluder:true ~transfers ~max_time ~seed ~scheme ~attach_attack ()
    in
    (* The victim is user 0 — the one whose address is spoofed. *)
    List.hd per_user
  in
  let result_a, result_b = ab_pair ~jobs run `Destination `Source in
  { label_a = "per-destination (TVA default)"; result_a; label_b = "per-source"; result_b }

(* --- Sec. 3.6: flow-cache provisioning ---------------------------------- *)

let state_provisioning ?(jobs = 1) ?(n_attacker_flows = 100) ?(transfers = 20) ?(max_time = 60.)
    ?(seed = 1) () =
  let run router_params =
    let scheme sim =
      let base = Scheme.tva ~params () sim in
      {
        base with
        Scheme.install_router =
          (fun ?obs:_ node ~link_bps ->
            let router =
              Tva.Router.create ~params:router_params
                ~secret_master:("tva-secret-" ^ string_of_int (Net.node_id node))
                ~router_id:(Net.node_id node) ~sim ~link_bps ()
            in
            Net.set_handler node (Tva.Router.handler router));
      }
    in
    let attach_attack ~sim ~(topo : Topology.t) =
      let scheme_for_attackers = Scheme.tva ~params () sim in
      let colluder = match topo.Topology.colluder with Some c -> c | None -> assert false in
      let colluder_addr = match Net.node_addr colluder with Some a -> a | None -> assert false in
      (* The colluder hands out the smallest conforming grants so attacker
         flows are cheap to keep alive (4 KB / 10 s ≈ 410 B/s each). *)
      let _colluder_ep =
        scheme_for_attackers.Scheme.make_endpoint colluder ~role:Scheme.Colluder
          ~policy:(Tva.Policy.allow_all ~n_kb:4 ~t_sec:10 ())
      in
      let net = topo.Topology.net in
      for i = 0 to n_attacker_flows - 1 do
        let node =
          Net.add_node ~addr:(Topology.attacker_addr i)
            ~name:(Printf.sprintf "flow%d" i)
            net
            (fun _ ~in_link:_ _ -> ())
        in
        ignore
          (Net.duplex net node topo.Topology.left ~bandwidth_bps:10e6 ~delay:0.010
             ~qdisc:(fun () -> Tva.Qdiscs.make ~params ~bandwidth_bps:10e6 ()));
        Net.compute_routes net;
        let ep =
          scheme_for_attackers.Scheme.make_endpoint node ~role:Scheme.Attacker
            ~policy:(Tva.Policy.client ())
        in
        (* Send just above N/T so the cache entry never becomes
           reclaimable. *)
        Agents.Flooder.start ~sim ~endpoint:ep ~dst:colluder_addr ~rate_bps:4000. ~pkt_bytes:250
          ~mode:Agents.Flooder.Authorized ()
      done;
      Net.compute_routes net;
      (* Plus a plain legacy flood to make demotion hurt: demoted users
         share the lowest class with this. *)
      for i = 0 to 39 do
        let node =
          Net.add_node
            ~addr:(Topology.attacker_addr (1000 + i))
            ~name:(Printf.sprintf "legacy%d" i)
            net
            (fun _ ~in_link:_ _ -> ())
        in
        ignore
          (Net.duplex net node topo.Topology.left ~bandwidth_bps:10e6 ~delay:0.010
             ~qdisc:(fun () -> Tva.Qdiscs.make ~params ~bandwidth_bps:10e6 ()));
        Net.compute_routes net;
        let ep =
          scheme_for_attackers.Scheme.make_endpoint node ~role:Scheme.Attacker
            ~policy:(Tva.Policy.client ())
        in
        Agents.Flooder.start ~sim ~endpoint:ep ~dst:Topology.destination_addr ~rate_bps:1e6
          ~mode:Agents.Flooder.Legacy ()
      done
    in
    (* The legitimate users are *new* flows arriving after the attacker
       flows have been running for a while: the cache-exhaustion attack
       targets flow setup, not flows already in cache. *)
    let all, _ =
      run_custom ~with_colluder:true ~transfers ~max_time ~seed ~user_start:5.0 ~scheme
        ~attach_attack ()
    in
    all
  in
  let result_a, result_b =
    (* An absurd rate floor shrinks C/(N/T)min to the 64-record minimum. *)
    ab_pair ~jobs run params { params with Tva.Params.min_rate_bytes_per_sec = 1e9 }
  in
  {
    label_a = "provisioned: C/(N/T)min records";
    result_a;
    label_b = "under-provisioned: 64 records";
    result_b;
  }

(* --- Sec. 3.9: request queueing discipline -------------------------------- *)

let request_queueing ?(jobs = 1) ?(n_attackers = 100) ?(buckets = 8) ?(transfers = 20)
    ?(max_time = 60.) ?(seed = 1) () =
  let run (make_qdisc, label) =
    ignore label;
    let scheme sim =
      let base = Scheme.tva ~params () sim in
      { base with Scheme.make_qdisc }
    in
    Experiment.run
      {
        Experiment.default with
        Experiment.scheme;
        n_attackers;
        attack = Experiment.Request_flood { rate_bps = 1e6 };
        transfers_per_user = transfers;
        max_time;
        seed;
      }
  in
  let result_a, result_b =
    ab_pair ~jobs run
      ((fun ~bandwidth_bps -> Tva.Qdiscs.make ~params ~bandwidth_bps ()), "drr")
      ( (fun ~bandwidth_bps -> Tva.Qdiscs.make_sfq_requests ~params ~bandwidth_bps ~buckets ~seed:1),
        "sfq" )
  in
  {
    label_a = "requests fair-queued per path-id";
    result_a;
    label_b = Printf.sprintf "requests SFQ over %d buckets" buckets;
    result_b;
  }

let render c =
  let table =
    Stats.Table.create ~columns:[ "variant"; "fraction_completed"; "avg_transfer_time_s" ]
  in
  let row label (r : Experiment.result) =
    Stats.Table.add_row table
      [
        label;
        Printf.sprintf "%.3f" r.Experiment.fraction_completed;
        (if Float.is_nan r.Experiment.avg_transfer_time then "-"
         else Printf.sprintf "%.3f" r.Experiment.avg_transfer_time);
      ]
  in
  row c.label_a c.result_a;
  row c.label_b c.result_b;
  table
