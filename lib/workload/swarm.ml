(* An aggregate flooder: one object stands in for [n] identical CBR
   zombies.  Each member owns a private RNG lane ([Rng.Bank], bit-identical
   to [Rng.lane ~seed i]) and draws exactly what a real [Agents.Flooder]
   with that lane would draw — one phase at creation, one jitter per packet
   — so the emitted (time, member) stream equals [n] real flooders
   regardless of how the members are multiplexed onto the simulator.

   Two multiplexings:

   - [Coalesced]: member deadlines live in an unboxed float array with a
     binary member-index heap over it (ties break toward the lower member
     id, matching the creation-order seq tie-break [n] real flooders would
     get).  Exactly ONE simulator event is pending per swarm, so scheduler
     load is independent of [n]; per-member state is three words.
   - [Independent]: one simulator timer per member.  Functionally identical
     stream; exists to put a million real timers in the pending queue —
     the scheduler-stress leg of the scale benchmark.

   [batch_window] (Coalesced only) drains every member due within [w]
   seconds of the fired deadline in one event, trading event count for
   admission jitter.  Deadlines and RNG draws still use each member's
   nominal due time, so the per-member stream stays exact; only the
   injection instant coarsens. *)

type mode = Coalesced | Independent

let mode_of_string = function
  | "coalesced" -> Ok Coalesced
  | "independent" -> Ok Independent
  | s -> Error (Printf.sprintf "unknown swarm mode %S (want coalesced|independent)" s)

let mode_to_string = function Coalesced -> "coalesced" | Independent -> "independent"

type t = {
  sim : Sim.t;
  bank : Rng.Bank.t;
  n : int;
  interval : float;
  stop_at : float;
  batch_window : float;
  emit : member:int -> due:float -> unit;
  (* Coalesced state; unused ([||]) in Independent mode. *)
  next : float array; (* member -> nominal next fire time *)
  heap : int array; (* member-index heap keyed by (next.(i), i) *)
  mutable hsize : int;
  mutable sent : int;
}

let members t = t.n
let packets_sent t = t.sent
let live_members t = if Array.length t.heap = 0 then t.n else t.hsize

(* --- member heap (Coalesced) ------------------------------------------- *)

let earlier t a b =
  let ta = t.next.(a) and tb = t.next.(b) in
  ta < tb || (ta = tb && a < b)

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.hsize then begin
    let r = l + 1 in
    let c = if r < t.hsize && earlier t t.heap.(r) t.heap.(l) then r else l in
    if earlier t t.heap.(c) t.heap.(i) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(c);
      t.heap.(c) <- tmp;
      sift_down t c
    end
  end

let heapify t =
  for i = (t.hsize / 2) - 1 downto 0 do
    sift_down t i
  done

(* --- firing ------------------------------------------------------------- *)

let rec coalesced_fire t () =
  let horizon = Sim.now t.sim +. t.batch_window in
  let continue = ref true in
  while t.hsize > 0 && !continue do
    let m = t.heap.(0) in
    let due = t.next.(m) in
    if due > horizon then continue := false
    else if due >= t.stop_at then begin
      (* Same check a real flooder makes at its fire time: past [stop_at]
         it neither sends nor draws, so the member retires. *)
      t.hsize <- t.hsize - 1;
      t.heap.(0) <- t.heap.(t.hsize);
      sift_down t 0
    end
    else begin
      t.emit ~member:m ~due;
      t.sent <- t.sent + 1;
      let jitter = 0.95 +. Rng.Bank.float t.bank m 0.1 in
      t.next.(m) <- due +. (t.interval *. jitter);
      sift_down t 0
    end
  done;
  if t.hsize > 0 then
    ignore
      (Sim.schedule_at ~kind:Sim.Kind.agent t.sim ~time:t.next.(t.heap.(0)) (coalesced_fire t))

let independent_start t ~start_at =
  for i = 0 to t.n - 1 do
    let phase = Rng.Bank.float t.bank i t.interval in
    let rec tick () =
      let now = Sim.now t.sim in
      if now < t.stop_at then begin
        t.emit ~member:i ~due:now;
        t.sent <- t.sent + 1;
        let jitter = 0.95 +. Rng.Bank.float t.bank i 0.1 in
        ignore (Sim.schedule ~kind:Sim.Kind.agent t.sim ~delay:(t.interval *. jitter) tick)
      end
    in
    ignore (Sim.schedule_at ~kind:Sim.Kind.agent t.sim ~time:(start_at +. phase) tick)
  done

let start ~sim ~n ~seed ~rate_bps ?(pkt_bytes = 1000) ?(start_at = 0.) ?stop_at
    ?(batch_window = 0.) ?(mode = Coalesced) ~emit () =
  if n <= 0 then invalid_arg "Swarm.start: n must be positive";
  if rate_bps <= 0. then invalid_arg "Swarm.start: rate must be positive";
  if batch_window < 0. then invalid_arg "Swarm.start: negative batch window";
  let interval = float_of_int pkt_bytes *. 8. /. rate_bps in
  let stop_at = match stop_at with Some s -> s | None -> infinity in
  let bank = Rng.Bank.create ~seed ~n in
  match mode with
  | Independent ->
      let t =
        {
          sim;
          bank;
          n;
          interval;
          stop_at;
          batch_window = 0.;
          emit;
          next = [||];
          heap = [||];
          hsize = 0;
          sent = 0;
        }
      in
      independent_start t ~start_at;
      t
  | Coalesced ->
      (* Phases draw in ascending member order — the same order [n] real
         flooders constructed in a loop would draw theirs. *)
      let next = Array.init n (fun i -> start_at +. Rng.Bank.float bank i interval) in
      let t =
        {
          sim;
          bank;
          n;
          interval;
          stop_at;
          batch_window;
          emit;
          next;
          heap = Array.init n (fun i -> i);
          hsize = n;
          sent = 0;
        }
      in
      heapify t;
      ignore
        (Sim.schedule_at ~kind:Sim.Kind.agent sim ~time:t.next.(t.heap.(0)) (coalesced_fire t));
      t
