(** A uniform interface over the five simulated schemes — TVA plus its
    four comparators (SIFF, pushback, the legacy Internet, and NetFence) —
    so one experiment harness can drive them all (paper Sec. 5). *)

type role =
  | User
  | Attacker
  | Destination
  | Colluder

type endpoint = {
  ep_addr : Wire.Addr.t;
  ep_send_segment : dst:Wire.Addr.t -> Wire.Tcp_segment.t -> unit;
  ep_set_demux : (src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit) -> unit;
  ep_send_raw : dst:Wire.Addr.t -> bytes:int -> unit;
      (** Well-behaved bulk send under the scheme (renews its
          authorization; used for the Fig. 10 authorized flood). *)
  ep_send_legacy : dst:Wire.Addr.t -> bytes:int -> unit;
      (** Unauthorized/legacy packet (Fig. 8 flood). *)
  ep_send_request : dst:Wire.Addr.t -> bytes:int -> unit;
      (** A fresh request/explorer each call (Fig. 9 flood). *)
  ep_flood_misbehaving : dst:Wire.Addr.t -> bytes:int -> unit;
      (** The Fig. 11 attacker: obtain an authorization once, then hammer
          with it regardless of budgets or revocation, falling to whatever
          priority the network then assigns. *)
  ep_reacquire_latencies : unit -> float list;
      (** {!Tva.Host.reacquire_latencies} for TVA endpoints (how long each
          recovery from a demotion echo took); [\[\]] for schemes without
          the demote/re-request cycle. *)
}

type t = {
  name : string;
  partition_safe : bool;
      (** Whether the scheme's router/host state is confined to each node's
          own partition, making it safe to run under the conservative
          parallel driver ({!Net.run_parallel} with [K > 1]).  Pushback is
          [false]: its global controller schedules periodic timers on the
          master simulator and walks every router's queue, which would race
          across domains. *)
  make_qdisc : bandwidth_bps:float -> Qdisc.t;
  install_router : ?obs:Obs.Counters.t -> Net.node -> link_bps:float -> unit;
      (** Set the router handler (and start any controller) on a router
          node; call after links exist.  [obs] threads a counter instance
          into the router's processing path (TVA only; the other schemes
          ignore it). *)
  make_endpoint : ?obs:Obs.Counters.t -> Net.node -> role:role -> policy:Tva.Policy.t -> endpoint;
      (** [obs] threads a counter instance into the host protocol layer
          (recovery events; TVA only). *)
  report_caches : unit -> Obs.Report.cache_row list;
      (** Flow-cache statistics for every router this scheme instance has
          installed, in creation order (empty for schemes without
          per-flow state). *)
  cache_occupancy : unit -> int;
      (** Total live flow-cache entries across this scheme instance's
          routers right now — an allocation-free int probe (0 for schemes
          without per-flow state), suitable as an {!Obs.Timeseries.Int_fn}
          level channel on the telemetry tick path. *)
  fault_targets : unit -> Faults.Inject.router_site list;
      (** Router-level fault surfaces (cache wipe, secret rotation) for
          every router this scheme instance has installed, in creation
          order — what the chaos harness hands to {!Faults.Inject}.  Empty
          for schemes without wipeable/rotatable router state; link-level
          faults still apply to them. *)
}

type factory = Sim.t -> t
(** Schemes are instantiated per simulation run. *)

val tva : ?params:Tva.Params.t -> unit -> factory
val siff : ?rotation_period:float -> unit -> factory
val pushback : ?interval:float -> unit -> factory
val internet : unit -> factory

val netfence : ?params:Netfence.Router.params -> unit -> factory
(** Closed-loop congestion policing (PAPERS.md): MACed congestion
    feedback stamped at the bottleneck, per-(sender, bottleneck) AIMD
    rate limiters at the access router, headerless traffic demoted to a
    low-priority legacy channel. *)

val all : (string * factory) list
(** The paper's four schemes in plotting order — internet, siff,
    pushback, tva — followed by netfence. *)
