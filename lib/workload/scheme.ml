type role = User | Attacker | Destination | Colluder

type endpoint = {
  ep_addr : Wire.Addr.t;
  ep_send_segment : dst:Wire.Addr.t -> Wire.Tcp_segment.t -> unit;
  ep_set_demux : (src:Wire.Addr.t -> Wire.Tcp_segment.t -> unit) -> unit;
  ep_send_raw : dst:Wire.Addr.t -> bytes:int -> unit;
  ep_send_legacy : dst:Wire.Addr.t -> bytes:int -> unit;
  ep_send_request : dst:Wire.Addr.t -> bytes:int -> unit;
  ep_flood_misbehaving : dst:Wire.Addr.t -> bytes:int -> unit;
  ep_reacquire_latencies : unit -> float list;
}

type t = {
  name : string;
  partition_safe : bool;
  make_qdisc : bandwidth_bps:float -> Qdisc.t;
  install_router : ?obs:Obs.Counters.t -> Net.node -> link_bps:float -> unit;
  make_endpoint : ?obs:Obs.Counters.t -> Net.node -> role:role -> policy:Tva.Policy.t -> endpoint;
  report_caches : unit -> Obs.Report.cache_row list;
  cache_occupancy : unit -> int;
  fault_targets : unit -> Faults.Inject.router_site list;
}

type factory = Sim.t -> t

(* --- TVA ------------------------------------------------------------ *)

(* The Fig. 11 attacker: copy the grant out of the host the moment it
   arrives and keep flooding with it, ignoring the byte budget.  Over-limit
   packets are demoted by routers; once the grant's T has passed the local
   copy is dropped, a (refused) re-request goes out and flooding continues
   as legacy traffic. *)
let tva_misbehaving_flood host sim =
  let node = Tva.Host.node host in
  let local : Tva.Host.grant option ref = ref None in
  let sent_caps = ref false in
  let last_request = ref neg_infinity in
  fun ~dst ~bytes ->
    let now = Sim.now sim in
    (match Tva.Host.grant_for host ~dst with
    | Some g ->
        (match !local with
        | Some l when Int64.equal l.Tva.Host.nonce g.Tva.Host.nonce -> ()
        | Some _ | None ->
            local := Some g;
            sent_caps := false)
    | None -> ());
    (match !local with
    | Some g when now -. g.Tva.Host.granted_at > float_of_int g.Tva.Host.t_sec -> local := None
    | Some _ | None -> ());
    match !local with
    | Some g ->
        let caps = if !sent_caps then [] else g.Tva.Host.caps in
        sent_caps := true;
        let shim =
          Wire.Cap_shim.regular ~nonce:g.Tva.Host.nonce ~caps ~n_kb:g.Tva.Host.n_kb
            ~t_sec:g.Tva.Host.t_sec ~renewal:false ()
        in
        Net.originate node
          (Wire.Packet.make ~shim ~src:(Tva.Host.addr host) ~dst ~created:now
             (Wire.Packet.Raw bytes))
    | None ->
        (* Authorization gone and renewals refused: the damage of the bad
           grant is spent.  Keep asking (refused) once a second; flooding
           on as legacy traffic would be the separate Fig. 8 scenario. *)
        ignore bytes;
        if now -. !last_request > 1.0 then begin
          last_request := now;
          Tva.Host.send_request_flood_packet host ~dst ~bytes:64
        end

let tva ?(params = Tva.Params.default) () : factory =
 fun sim ->
  (* Routers created this run, in creation order, so the flow-cache report
     (and the fault-target list) is deterministic. *)
  let routers : (string * Net.node * Tva.Router.t) list ref = ref [] in
  {
    name = "tva";
    partition_safe = true;
    make_qdisc = (fun ~bandwidth_bps -> Tva.Qdiscs.make ~params ~bandwidth_bps ());
    install_router =
      (fun ?obs node ~link_bps ->
        let router =
          Tva.Router.create ~params ?obs
            ~secret_master:("tva-secret-" ^ string_of_int (Net.node_id node))
            ~router_id:(Net.node_id node) ~sim:(Net.node_sim node) ~link_bps ()
        in
        routers := (Net.node_name node, node, router) :: !routers;
        Net.set_handler node (Tva.Router.handler router));
    report_caches =
      (fun () ->
        List.rev_map
          (fun (name, _node, router) ->
            let cache = Tva.Router.cache router in
            {
              Obs.Report.c_router = name;
              c_size = Tva.Flow_cache.size cache;
              c_capacity = Tva.Flow_cache.capacity cache;
              c_evictions = Tva.Flow_cache.evictions cache;
              c_hwm = Tva.Flow_cache.hwm cache;
            })
          !routers);
    cache_occupancy =
      (* Telemetry's flow-cache level channel: an int fold over the live
         routers, so the tick path never builds the report rows. *)
      (fun () ->
        List.fold_left
          (fun acc (_, _, router) -> acc + Tva.Flow_cache.size (Tva.Router.cache router))
          0 !routers);
    fault_targets =
      (fun () ->
        List.rev_map
          (fun (name, node, router) ->
            {
              Faults.Inject.rs_name = name;
              rs_node = node;
              rs_wipe_cache = (fun () -> Tva.Router.flush_cache router);
              rs_rotate_secret = (fun () -> Tva.Router.rotate_secret router);
            })
          !routers);
    make_endpoint =
      (fun ?obs node ~role ~policy ->
        let auto_reply = match role with Destination | Colluder -> true | User | Attacker -> false in
        let host =
          Tva.Host.create ~params ~auto_reply ?obs ~policy ~node ~rng:(Rng.split (Sim.rng sim))
            ()
        in
        {
          ep_addr = Tva.Host.addr host;
          ep_send_segment = Tva.Host.send_segment host;
          ep_set_demux = Tva.Host.set_segment_handler host;
          ep_send_raw = Tva.Host.send_raw host;
          ep_send_legacy = Tva.Host.send_legacy host;
          ep_send_request = Tva.Host.send_request_flood_packet host;
          ep_flood_misbehaving = tva_misbehaving_flood host (Net.node_sim node);
          ep_reacquire_latencies = (fun () -> Tva.Host.reacquire_latencies host);
        });
  }

(* --- SIFF ----------------------------------------------------------- *)

let siff_misbehaving_flood host sim rotation =
  let addr = Siff.Host.addr host in
  let local = ref None in
  let obtained = ref neg_infinity in
  let last_request = ref neg_infinity in
  fun ~dst ~bytes ->
    let now = Sim.now sim in
    (match Siff.Host.markings_for host ~dst with
    | Some m when !local <> Some m ->
        local := Some m;
        obtained := now
    | Some _ | None -> ());
    (* Routers accept current-or-previous epoch, so markings die at most
       2 rotation periods after issue; keep hammering until then. *)
    if !local <> None && now -. !obtained > 2. *. rotation then local := None;
    match !local with
    | Some markings ->
        let siff = Wire.Siff_marking.dta ~markings in
        Net.originate (Siff.Host.node host)
          (Wire.Packet.make ~siff ~src:addr ~dst ~created:now (Wire.Packet.Raw bytes))
    | None ->
        ignore bytes;
        if now -. !last_request > 1.0 then begin
          last_request := now;
          Siff.Host.send_raw host ~dst ~bytes:64 (* no markings: goes out as EXP *)
        end

let siff ?(rotation_period = Siff.Router.default_rotation_period) () : factory =
 fun _sim ->
  {
    name = "siff";
    partition_safe = true;
    make_qdisc = (fun ~bandwidth_bps -> Siff.Router.make_qdisc ~bandwidth_bps);
    report_caches = (fun () -> []);
    cache_occupancy = (fun () -> 0);
    install_router =
      (fun ?obs:_ node ~link_bps:_ ->
        let router =
          Siff.Router.create ~rotation_period
            ~secret_master:("siff-secret-" ^ string_of_int (Net.node_id node))
            ~router_id:(Net.node_id node) ~sim:(Net.node_sim node) ()
        in
        Net.set_handler node (Siff.Router.handler router));
    fault_targets = (fun () -> []);
    make_endpoint =
      (fun ?obs:_ node ~role ~policy ->
        let auto_reply = match role with Destination | Colluder -> true | User | Attacker -> false in
        let host = Siff.Host.create ~rotation_period ~auto_reply ~policy ~node () in
        {
          ep_addr = Siff.Host.addr host;
          ep_send_segment = Siff.Host.send_segment host;
          ep_set_demux = Siff.Host.set_segment_handler host;
          ep_send_raw = Siff.Host.send_raw host;
          ep_send_legacy = Siff.Host.send_legacy host;
          ep_send_request =
            (fun ~dst ~bytes ->
              let siff = Wire.Siff_marking.exp_packet () in
              Net.originate node
                (Wire.Packet.make ~siff ~src:(Siff.Host.addr host) ~dst
                   ~created:(Sim.now (Net.node_sim node)) (Wire.Packet.Raw bytes)));
          ep_flood_misbehaving = siff_misbehaving_flood host (Net.node_sim node) rotation_period;
          ep_reacquire_latencies = (fun () -> []);
        });
  }

(* --- NetFence -------------------------------------------------------- *)

let netfence ?(params = Netfence.Router.default_params) () : factory =
 fun _sim ->
  (* Routers created this run, in creation order; one shared secret master
     models NetFence's pairwise inter-AS key agreement, so any access
     router can validate any bottleneck's feedback tokens. *)
  let routers : (string * Net.node * Netfence.Router.t) list ref = ref [] in
  {
    name = "netfence";
    partition_safe = true;
    make_qdisc = (fun ~bandwidth_bps -> Netfence.Router.make_qdisc ~bandwidth_bps);
    install_router =
      (fun ?obs:_ node ~link_bps ->
        let router =
          Netfence.Router.create ~params ~secret_master:"netfence-as-pairwise-key"
            ~router_id:(Net.node_id node) ~sim:(Net.node_sim node) ~link_bps ()
        in
        routers := (Net.node_name node, node, router) :: !routers;
        Net.set_handler node (Netfence.Router.handler router));
    report_caches = (fun () -> []);
    cache_occupancy =
      (* Telemetry's state-occupancy channel: live (sender, bottleneck)
         policing entries across the run's routers. *)
      (fun () ->
        List.fold_left
          (fun acc (_, _, router) -> acc + Netfence.Router.sender_count router)
          0 !routers);
    fault_targets =
      (fun () ->
        List.rev_map
          (fun (name, node, router) ->
            {
              Faults.Inject.rs_name = name;
              rs_node = node;
              rs_wipe_cache = (fun () -> Netfence.Router.flush_senders router);
              rs_rotate_secret = (fun () -> Netfence.Router.rotate_secret router);
            })
          !routers);
    make_endpoint =
      (fun ?obs:_ node ~role ~policy:_ ->
        let auto_reply = match role with Destination | Colluder -> true | User | Attacker -> false in
        let host = Netfence.Host.create ~auto_reply ~node () in
        {
          ep_addr = Netfence.Host.addr host;
          ep_send_segment = Netfence.Host.send_segment host;
          ep_set_demux = Netfence.Host.set_segment_handler host;
          ep_send_raw = Netfence.Host.send_raw host;
          ep_send_legacy = Netfence.Host.send_legacy host;
          (* NetFence has no request channel: a "request" is just a packet
             sent while still in the bootstrap rate-limiter state. *)
          ep_send_request = Netfence.Host.send_raw host;
          (* A misbehaving sender floods through the normal header path —
             keeping the feedback loop alive is in its interest, and the
             access-router policer is what contains it. *)
          ep_flood_misbehaving = Netfence.Host.send_raw host;
          ep_reacquire_latencies = (fun () -> []);
        });
  }

(* --- Pushback and legacy Internet ------------------------------------ *)

let plain_endpoint node =
  let host = Baseline.Internet.Host.create ~node in
  let send_raw ~dst ~bytes = Baseline.Internet.Host.send_raw host ~dst ~bytes in
  {
    ep_addr = Baseline.Internet.Host.addr host;
    ep_send_segment = Baseline.Internet.Host.send_segment host;
    ep_set_demux = Baseline.Internet.Host.set_segment_handler host;
    ep_send_raw = send_raw;
    ep_send_legacy = send_raw;
    ep_send_request = send_raw;
    ep_flood_misbehaving = send_raw;
    ep_reacquire_latencies = (fun () -> []);
  }

let pushback ?(interval = 1.0) () : factory =
 fun sim ->
  let controller = Pushback.create ~interval ~sim () in
  {
    name = "pushback";
    partition_safe = false;
    make_qdisc = (fun ~bandwidth_bps -> Pushback.make_qdisc controller ~bandwidth_bps);
    install_router = (fun ?obs:_ node ~link_bps:_ -> Pushback.install controller node);
    report_caches = (fun () -> []);
    cache_occupancy = (fun () -> 0);
    fault_targets = (fun () -> []);
    make_endpoint = (fun ?obs:_ node ~role:_ ~policy:_ -> plain_endpoint node);
  }

let internet () : factory =
 fun _sim ->
  {
    name = "internet";
    partition_safe = true;
    make_qdisc = (fun ~bandwidth_bps -> Baseline.Internet.make_qdisc ~bandwidth_bps);
    install_router =
      (fun ?obs:_ node ~link_bps:_ -> Net.set_handler node Baseline.Internet.router_handler);
    report_caches = (fun () -> []);
    cache_occupancy = (fun () -> 0);
    fault_targets = (fun () -> []);
    make_endpoint = (fun ?obs:_ node ~role:_ ~policy:_ -> plain_endpoint node);
  }

let all =
  [
    ("internet", internet ());
    ("siff", siff ());
    ("pushback", pushback ());
    ("tva", tva ());
    ("netfence", netfence ());
  ]
