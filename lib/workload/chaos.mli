(** The chaos harness: deterministic fault-injection runs with recovery
    checking (paper Sec. 3.8; DESIGN.md §11; EXPERIMENTS.md "Robustness").

    Each {!cell} is one fault scenario — a parsed {!Faults.Spec.t} plus
    the {!Faults.Invariants.expectation} it must meet — run as one
    independent simulation via {!Experiment.run}[ ?faults].  Cells are
    pure data, so a suite fans out over {!Pool.map} and its outcomes are
    bit-identical for every [jobs] value and across repeat runs with the
    same seed. *)

type cell = {
  cl_label : string;  (** short scenario name, e.g. ["wipe"] *)
  cl_spec : Faults.Spec.t;
  cl_expect : Faults.Invariants.expectation;
}

type outcome = {
  oc_label : string;
  oc_spec : string;  (** canonical spec string *)
  oc_fraction : float;  (** completion fraction under the fault *)
  oc_avg_time : float;
  oc_injected : (string * int) list;  (** {!Faults.Inject.injected} *)
  oc_latencies : float list;
      (** every sender re-acquisition latency, seconds, user order *)
  oc_verdict : Faults.Invariants.verdict;
  oc_report : Obs.Report.t;  (** the run's full observability report *)
  oc_engage_s : float option;
      (** first detector onset, sim seconds — when the incident detectors
          noticed the fault's effect ([None] if nothing fired) *)
  oc_recover_s : float option;
      (** last detector clear minus first onset — how long the run spent
          inside incidents.  Continuous faults (loss, burst) hold their
          detectors engaged to run end; their last incident closes at
          run-end time, so this is a floor, flagged by [oc_recovered]. *)
  oc_recovered : bool;
      (** true iff every incident truly cleared before run end; false when
          any stayed open (its clear time is the run end, not a recovery).
          Vacuously true without incidents. *)
  oc_flight_dumps : string list;
      (** flight-recorder artifacts written during this cell (incident
          onsets, invariant failure), oldest first; [[]] without
          [flight_dir] *)
}

val base_config : Experiment.config
(** {!Experiment.default} under the TVA scheme with the Sec. 5 simulation
    parameters (1% request channel) — the suite's default workload: 10
    users, no attack, so every degradation is the fault's doing. *)

val obs_default : Experiment.obs_config
(** {!Experiment.obs_default} plus a 100 ms telemetry interval — counters,
    interval series and incident detectors, no trace/profiler/gauges.  The
    tick chain rides auxiliary events, so chaos numbers are bit-identical
    to a telemetry-off run. *)

val run_cell :
  ?obs:Experiment.obs_config -> ?flight_dir:string -> ?base:Experiment.config -> cell -> outcome
(** One scenario: run [base] with the cell's spec installed ([obs] defaults
    to {!obs_default}; the flight label is always the cell's label), then
    check the cell's expectation over the counters, the senders'
    re-acquisition latencies and the completion fraction.  [flight_dir]
    turns the flight recorder on: a dump per incident onset plus one on an
    invariant failure, capped per run. *)

val run_suite :
  ?jobs:int ->
  ?obs:Experiment.obs_config ->
  ?flight_dir:string ->
  ?base:Experiment.config ->
  cell list ->
  outcome list
(** {!run_cell} over {!Pool.map} (default [jobs = 1]); outcomes return in
    cell order whatever [jobs] is. *)

val reacquire_bound : float
(** The documented re-acquisition bound, seconds: one 63 ms RTT plus the
    worst-case request-channel drain when a router-state fault makes the
    whole sender cohort re-request at once (10 MTU-sized requests through
    the 1% request channel ~ 1.2 s), with slack (see EXPERIMENTS.md). *)

val default_suite : cell list
(** The eight stock scenarios — loss, burst, dup+reorder, link down, flap,
    cache wipe, secret rotation, router restart — with their documented
    expectations (wipe and restart must demote, re-acquire within the
    bound, and keep completion above their floors). *)

val all_ok : outcome list -> bool
(** True iff every outcome's verdict passed — the chaos exit-code gate. *)

val render : outcome list -> Stats.Table.t
(** One row per scenario: fraction, injection and re-acquisition counts,
    worst latency, verdict.  A [recover_s] cell suffixed ["+"] means the
    detectors never cleared ([oc_recovered = false]): the figure is time
    to run end, not a measured recovery. *)
