type point = {
  n_attackers : int;
  fraction_completed : float;
  avg_transfer_time : float;
  median_transfer_time : float;
  jain : float;
}

type series = { scheme : string; points : point list }

let default_attacker_counts = [ 1; 2; 5; 10; 20; 40; 60; 80; 100 ]

let sim_params = { Tva.Params.default with Tva.Params.request_fraction = 0.01 }

(* The figure reproductions default to [paper_schemes] — the four the
   paper plots — so adding a scheme to the full registry can never change
   fig8/9/10 output.  [schemes] is the registry everything else (CLI name
   validation, the cross-scheme report) derives from. *)
let paper_schemes =
  [
    ("internet", Scheme.internet ());
    ("siff", Scheme.siff ());
    ("pushback", Scheme.pushback ());
    ("tva", Scheme.tva ~params:sim_params ());
  ]

let schemes = paper_schemes @ [ ("netfence", Scheme.netfence ()) ]

let attack_rate_bps = 1e6 (* each attacker floods at one legitimate-user rate *)

(* Every (scheme × attacker-count) cell is an independent deterministic
   simulation — its config carries its own seed and [Experiment.run] builds
   a private [Sim.t]/[Rng.t] — so the grid fans out over [Pool.map].
   Results come back in submission order, making the sweep's output
   bit-identical whatever [jobs] is; [~jobs:1] (the library default) is
   exactly the seed's sequential loop. *)
let sweep_grid ~schemes ~attacker_counts ~base ~attack =
  List.concat_map
    (fun (_, factory) ->
      List.map
        (fun n ->
          {
            base with
            Experiment.scheme = factory;
            n_attackers = n;
            attack = attack ~rate_bps:attack_rate_bps;
          })
        attacker_counts)
    schemes

(* Re-chunk the flat scheme-major results back into one series per
   scheme. *)
let chunk_series ~schemes ~per_scheme points =
  let rec chunk schemes points =
    match schemes with
    | [] -> []
    | (name, _) :: rest ->
        let mine = List.filteri (fun i _ -> i < per_scheme) points in
        let others = List.filteri (fun i _ -> i >= per_scheme) points in
        { scheme = name; points = mine } :: chunk rest others
  in
  chunk schemes points

let flood_sweep ?(jobs = 1) ?(schemes = paper_schemes)
    ?(attacker_counts = default_attacker_counts) ?(base = Experiment.default) ~attack () =
  let grid = sweep_grid ~schemes ~attacker_counts ~base ~attack in
  let points =
    Pool.map ~jobs
      (fun cfg ->
        let r = Experiment.run cfg in
        {
          n_attackers = cfg.Experiment.n_attackers;
          fraction_completed = r.Experiment.fraction_completed;
          avg_transfer_time = r.Experiment.avg_transfer_time;
          median_transfer_time = Metrics.median_transfer_time r.Experiment.metrics;
          jain = r.Experiment.jain_index;
        })
      grid
  in
  chunk_series ~schemes ~per_scheme:(List.length attacker_counts) points

(* One sweep cell's observability report, tagged with its grid position. *)
type cell_report = { cr_scheme : string; cr_attackers : int; cr_report : Obs.Report.t }

type observed = {
  obs_series : series list;
  obs_cells : cell_report list; (* grid order: scheme-major, then attackers *)
  obs_counters : Obs.Counters.snap; (* all cells merged, submission order *)
}

(* The observed sweep: every cell runs with counters on (and whatever else
   [obs] asks for) and ships its report — plain data — back across the
   worker domain.  [Pool.map] returns results in submission order, so the
   merged counter aggregate is identical whatever [jobs] is. *)
let flood_sweep_observed ?(jobs = 1) ?(obs = Experiment.obs_default) ?(schemes = paper_schemes)
    ?(attacker_counts = default_attacker_counts) ?(base = Experiment.default) ~attack () =
  let grid = sweep_grid ~schemes ~attacker_counts ~base ~attack in
  let cells =
    Pool.map ~jobs
      (fun cfg ->
        let r = Experiment.run ~obs cfg in
        let report = match r.Experiment.obs with Some o -> o | None -> Obs.Report.empty in
        ( {
            n_attackers = cfg.Experiment.n_attackers;
            fraction_completed = r.Experiment.fraction_completed;
            avg_transfer_time = r.Experiment.avg_transfer_time;
            median_transfer_time = Metrics.median_transfer_time r.Experiment.metrics;
            jain = r.Experiment.jain_index;
          },
          {
            cr_scheme = r.Experiment.scheme_name;
            cr_attackers = cfg.Experiment.n_attackers;
            cr_report = report;
          } ))
      grid
  in
  let points = List.map fst cells in
  let reports = List.map snd cells in
  {
    obs_series = chunk_series ~schemes ~per_scheme:(List.length attacker_counts) points;
    obs_cells = reports;
    obs_counters = Obs.Report.merge_counters (List.map (fun c -> c.cr_report) reports);
  }

let fig8 ?jobs ?attacker_counts ?base () =
  flood_sweep ?jobs ?attacker_counts ?base
    ~attack:(fun ~rate_bps -> Experiment.Legacy_flood { rate_bps })
    ()

let fig9 ?jobs ?attacker_counts ?base () =
  flood_sweep ?jobs ?attacker_counts ?base
    ~attack:(fun ~rate_bps -> Experiment.Request_flood { rate_bps })
    ()

let fig10 ?jobs ?attacker_counts ?base () =
  flood_sweep ?jobs ?attacker_counts ?base
    ~attack:(fun ~rate_bps -> Experiment.Authorized_flood { rate_bps })
    ()

type fig11_run = { label : string; timeline : Stats.Timeseries.t }

let fig11 ?(jobs = 1) ?(base = Experiment.default) ?(duration = 60.) () =
  let siff_rotation = 3.0 in
  let runs =
    [
      ("tva/all-at-once", Scheme.tva ~params:sim_params (), 1);
      ("tva/10-at-a-time", Scheme.tva ~params:sim_params (), 10);
      ("siff/all-at-once", Scheme.siff ~rotation_period:siff_rotation (), 1);
      ("siff/10-at-a-time", Scheme.siff ~rotation_period:siff_rotation (), 10);
    ]
  in
  Pool.map ~jobs
    (fun (label, factory, groups) ->
      let cfg =
        {
          base with
          Experiment.scheme = factory;
          n_attackers = 100;
          max_time = duration;
          transfers_per_user = max_int;
          attack =
            Experiment.Imprecise_flood
              { rate_bps = attack_rate_bps; groups; group_interval = siff_rotation; start_at = 10. };
        }
      in
      let r = Experiment.run cfg in
      { label; timeline = Metrics.timeline r.Experiment.metrics })
    runs

(* --- Chaos scenarios (Sec. 3.8 robustness; DESIGN.md §11) ------------- *)

let chaos_suite ?jobs ?obs ?flight_dir ?base () =
  Chaos.run_suite ?jobs ?obs ?flight_dir ?base Chaos.default_suite

let chaos_single ?obs ?flight_dir ?base ?(expect = Faults.Invariants.relaxed) spec =
  Chaos.run_cell ?obs ?flight_dir ?base
    { Chaos.cl_label = "custom"; cl_spec = spec; cl_expect = expect }

let render series_list =
  let table =
    Stats.Table.create ~columns:[ "attackers"; "scheme"; "fraction_completed"; "avg_time_s" ]
  in
  let counts =
    match series_list with [] -> [] | s :: _ -> List.map (fun p -> p.n_attackers) s.points
  in
  (* Pre-index each series' points by attacker count — the seed re-scanned
     every point list per row (O(n²) over the sweep).  First occurrence
     wins, matching the old [List.find_opt]. *)
  let indexed =
    List.map
      (fun s ->
        let by_count = Hashtbl.create (2 * List.length s.points) in
        List.iter
          (fun p ->
            if not (Hashtbl.mem by_count p.n_attackers) then
              Hashtbl.add by_count p.n_attackers p)
          s.points;
        (s, by_count))
      series_list
  in
  List.iter
    (fun n ->
      List.iter
        (fun (s, by_count) ->
          match Hashtbl.find_opt by_count n with
          | None -> ()
          | Some p ->
              Stats.Table.add_row table
                [
                  string_of_int n;
                  s.scheme;
                  Printf.sprintf "%.3f" p.fraction_completed;
                  (if Float.is_nan p.avg_transfer_time then "-"
                   else Printf.sprintf "%.3f" p.avg_transfer_time);
                ])
        indexed)
    counts;
  table

let render_fig11 runs ~bins =
  let horizon =
    List.fold_left
      (fun acc r ->
        Array.fold_left (fun acc (time, _) -> Float.max acc time) acc
          (Stats.Timeseries.points r.timeline))
      0. runs
  in
  let nbins = int_of_float (ceil (horizon /. bins)) in
  let table =
    Stats.Table.create ~columns:("time_s" :: List.map (fun r -> r.label) runs)
  in
  (* One pass per run to bucket points into (count, max) cells — the seed
     rescanned every timeline per bin, O(bins × points) per run.  A point
     lands in bin [i] iff [i*bins <= t < (i+1)*bins], exactly the
     [values_in] window the seed used; the truncated quotient is nudged
     when rounding in the division disagrees with those comparisons. *)
  let binned =
    List.map
      (fun r ->
        let counts = Array.make (max nbins 0) 0 in
        let maxima = Array.make (max nbins 0) neg_infinity in
        Array.iter
          (fun (time, v) ->
            let i = int_of_float (time /. bins) in
            let i =
              if time < float_of_int i *. bins then i - 1
              else if time >= float_of_int (i + 1) *. bins then i + 1
              else i
            in
            if i >= 0 && i < nbins then begin
              counts.(i) <- counts.(i) + 1;
              maxima.(i) <- Float.max maxima.(i) v
            end)
          (Stats.Timeseries.points r.timeline);
        (counts, maxima))
      runs
  in
  for i = 0 to nbins - 1 do
    let lo = float_of_int i *. bins in
    let cells =
      List.map
        (fun (counts, maxima) ->
          if counts.(i) = 0 then "-" else Printf.sprintf "%.2f" maxima.(i))
        binned
    in
    Stats.Table.add_row table (Printf.sprintf "%.0f" lo :: cells)
  done;
  table
