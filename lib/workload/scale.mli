(** The million-sender scale experiment (DESIGN.md section 13).

    Legitimate users run real transfer clients; the botnet is folded into
    {!Swarm} aggregates whose members inject legacy flood packets with
    spoofed per-member 0x0b-prefix sources from a few ingress nodes.  The
    node/link graph stays structural (tens of routers) while the sender
    count sweeps to 10^5 and beyond — the regime the timing-wheel
    scheduler and SoA state exist for. *)

type topology_kind =
  | Scale_dumbbell  (** the Fig. 7 shape, senders behind the left router *)
  | Fan_in of { depth : int; fanout : int }  (** {!Topology.fanin} *)
  | Parking_lot of { segments : int }  (** {!Topology.parking_lot} *)
  | Power_law of { routers : int; edges_per_node : int }  (** {!Topology.power_law} *)

val topology_kind_to_string : topology_kind -> string

val topology_kind_of_string : string -> (topology_kind, string) result
(** ["dumbbell"], ["fanin[:depth:fanout]"], ["parking-lot[:segments]"],
    ["power-law[:routers:edges]"]. *)

type config = {
  sc_scheme : Scheme.factory;
  sc_topology : topology_kind;
  sc_senders : int;
      (** total flood members across all aggregates; must stay below 2^24
          so spoofed sources fit the 0x0b prefix the attacker oracle keys
          on *)
  sc_aggregates : int;  (** swarm objects the members are split over *)
  sc_swarm_mode : Swarm.mode;
  sc_batch_window : float;  (** see {!Swarm.start} *)
  sc_attack_bps : float;  (** aggregate attack rate, split evenly over members *)
  sc_attack_pkt_bytes : int;
  sc_n_users : int;
  sc_transfers_per_user : int;
  sc_transfer_bytes : int;
  sc_max_time : float;
  sc_seed : int;
  sc_bottleneck_bps : float;
  sc_access_bps : float;
  sc_sched : Sim.sched option;
      (** [None] auto-selects via {!Sim.recommended_sched} from the
          expected pending-event count (per-member timers under
          [Independent], per-aggregate under [Coalesced]) *)
  sc_par_domains : int;
      (** [1] (the default) runs the classic sequential loop; [K > 1]
          partitions the topology with {!Topology.partition} and drives one
          event loop per partition on [K] domains ({!Net.run_parallel}),
          differential-tested to produce the same result as sequential.
          Requires a partition-safe scheme and no packet tracing. *)
}

val default : config
(** TVA, 3x4 fan-in, 1000 senders over 4 coalesced aggregates, 40 Mb/s
    attack against a 10 Mb/s bottleneck, 10 users x 5 transfers. *)

type result = {
  sr_scheme : string;
  sr_topology : string;
  sr_sched : Sim.sched;  (** what actually ran, after auto-selection *)
  sr_senders : int;
  sr_fraction_completed : float;
  sr_avg_transfer_time : float;
  sr_metrics : Metrics.t;
  sr_sim_end : float;  (** max over partitions; equals the sequential clock *)
  sr_events : int;  (** summed over partitions *)
  sr_attack_packets : int;
  sr_routers : int;
  sr_wall_s : float;  (** wall-clock seconds spent inside the event loop(s) *)
  sr_partitions : int;  (** 1 when sequential *)
  sr_partition_events : int array;  (** events fired per partition *)
  sr_obs : Obs.Report.t option;
}

val run : ?obs:Experiment.obs_config -> config -> result
(** Build the topology, wire users/aggregates/routers for the scheme, run
    to [sc_max_time], and report.  With [?obs] and a positive gauge
    period, {!Obs.Profile.memory_gauges} rows land in [sr_obs] — the scale
    benchmark's peak-memory source.  Raises [Invalid_argument] when
    [sc_par_domains > 1] meets a scheme with [partition_safe = false]
    (pushback) or a positive trace capacity. *)
