(* xoshiro256** seeded by SplitMix64, per Blackman & Vigna's reference
   implementation.  Int64 arithmetic wraps, which is exactly what both
   algorithms assume. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tt = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let st = ref (bits64 t) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let float t bound =
  (* 53 high bits give a uniform double in [0,1). *)
  let u = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float u /. 9007199254740992. *. bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Modulo bias is negligible for the bounds used here (< 2^32). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (bits64 t) 0xffL)))
  done;
  Bytes.unsafe_to_string b

(* Per-lane derivation for aggregate senders: lane [i] of [seed] is a
   SplitMix64 expansion of a golden-ratio mix of the two, so any lane can
   be materialized independently ([lane]) or held packed in a bank.  The
   two must stay bit-identical — the aggregate-vs-real-senders equivalence
   test depends on it. *)
let lane_seed_state ~seed i =
  ref (Int64.logxor (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L) (Int64.of_int seed))

let lane ~seed i =
  let st = lane_seed_state ~seed i in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

module Bank = struct
  (* Structure-of-arrays xoshiro: four flat int64 Bigarrays hold the state
     of [n] lanes.  Bigarray storage is unboxed and invisible to the GC, so
     a million-member bank costs 32 MB flat and adds nothing to the marking
     load — the point of the layout at aggregate-sender scale. *)
  type lanes = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = { b0 : lanes; b1 : lanes; b2 : lanes; b3 : lanes; n : int }

  let mk n : lanes = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout n

  let create ~seed ~n =
    if n <= 0 then invalid_arg "Rng.Bank.create: n must be positive";
    let b = { b0 = mk n; b1 = mk n; b2 = mk n; b3 = mk n; n } in
    for i = 0 to n - 1 do
      let st = lane_seed_state ~seed i in
      b.b0.{i} <- splitmix64 st;
      b.b1.{i} <- splitmix64 st;
      b.b2.{i} <- splitmix64 st;
      b.b3.{i} <- splitmix64 st
    done;
    b

  let n t = t.n

  let bits64 t i =
    let s0 = t.b0.{i} and s1 = t.b1.{i} and s2 = t.b2.{i} and s3 = t.b3.{i} in
    let result = Int64.mul (rotl (Int64.mul s1 5L) 7) 9L in
    let tt = Int64.shift_left s1 17 in
    let s2 = Int64.logxor s2 s0 in
    let s3 = Int64.logxor s3 s1 in
    let s1 = Int64.logxor s1 s2 in
    let s0 = Int64.logxor s0 s3 in
    let s2 = Int64.logxor s2 tt in
    let s3 = rotl s3 45 in
    t.b0.{i} <- s0;
    t.b1.{i} <- s1;
    t.b2.{i} <- s2;
    t.b3.{i} <- s3;
    result

  let float t i bound =
    let u = Int64.shift_right_logical (bits64 t i) 11 in
    Int64.to_float u /. 9007199254740992. *. bound
end
