(* Two interchangeable event queues behind one scheduler API.

   The reference queue is a 4-ary min-heap of events keyed by (time, seq).
   The sequence number breaks ties in scheduling order so that behaviour
   never depends on heap internals.  Cancellation marks the event and lets
   the queue pop it lazily, which keeps cancel O(1) — important for TCP
   timers, nearly all of which are cancelled rather than fired.

   The heap keys live in parallel unboxed [times]/[seqs] arrays next to the
   event array: a 4-ary heap halves the tree depth of the old binary heap,
   and comparing cached keys avoids chasing an event pointer and unboxing
   its float field on every comparison — together the hottest costs of the
   event loop.  Sift-up/down move the hole rather than swapping, so each
   level costs three array stores instead of nine.

   The second queue is a hierarchical timing wheel for runs whose pending
   set explodes (10^5-10^6 concurrent timers): 4 levels of 256 slots at
   1 us resolution, so insert is O(1) and pop is amortized O(1) instead of
   O(log n).  Events whose integer tick has been reached are promoted into
   a small (time, seq) heap that resolves sub-tick time differences and
   same-time ties, which makes the wheel's firing order *identical* to the
   reference heap's — the differential property test in the suite holds
   the two together, and fig8 stays byte-identical under either queue. *)

(* Scheduling-site tags for the event-loop profiler.  A kind is carried by
   every event (one immediate int; the record is heap-allocated anyway) and
   only ever read when a probe is attached, so tagging costs nothing in
   normal runs.  The flat enumeration lives here because the scheduler is
   the one module every scheduling site already depends on. *)
module Kind = struct
  let other = 0
  let net_transmit = 1
  let net_deliver = 2
  let net_poll = 3
  let tcp_timer = 4
  let agent = 5
  let obs = 6
  let fault = 7
  let telemetry = 8
  let count = 9

  let name = function
    | 0 -> "other"
    | 1 -> "net.transmit"
    | 2 -> "net.deliver"
    | 3 -> "net.poll"
    | 4 -> "tcp.timer"
    | 5 -> "agent"
    | 6 -> "obs"
    | 7 -> "fault"
    | 8 -> "telemetry"
    | _ -> "?"
end

type event = {
  time : float;
  seq : int;
  kind : int; (* a [Kind] tag, read only by the profiler probe *)
  mutable action : (unit -> unit) option;
  live : int ref; (* the owning simulator's count of pending events *)
}

type handle = event

(* The profiler hook: [pr_clock] supplies wall time (injected so this
   module stays free of [Unix]), [pr_hit] is called after each fired
   action with its kind and wall-clock duration. *)
type probe = { pr_clock : unit -> float; pr_hit : kind:int -> dt:float -> unit }

type sched = Heap | Wheel

let dummy = { time = neg_infinity; seq = -1; kind = 0; action = None; live = ref 0 }
let initial_capacity = 256

(* --- The 4-ary (time, seq) heap ------------------------------------------ *)

type heap = {
  mutable evs : event array;
  mutable times : float array; (* cached evs.(i).time (unboxed) *)
  mutable seqs : int array; (* cached evs.(i).seq *)
  mutable size : int;
}

let heap_create capacity =
  {
    evs = Array.make capacity dummy;
    times = Array.make capacity 0.;
    seqs = Array.make capacity 0;
    size = 0;
  }

let heap_grow h =
  let cap = 2 * Array.length h.evs in
  let evs = Array.make cap dummy in
  let times = Array.make cap 0. in
  let seqs = Array.make cap 0 in
  Array.blit h.evs 0 evs 0 h.size;
  Array.blit h.times 0 times 0 h.size;
  Array.blit h.seqs 0 seqs 0 h.size;
  h.evs <- evs;
  h.times <- times;
  h.seqs <- seqs

(* Lexicographic (time, seq) against the cached keys at heap slot [j]. *)
let[@inline] key_earlier h ~time ~seq j =
  time < h.times.(j) || (time = h.times.(j) && seq < h.seqs.(j))

let[@inline] set_slot h i ev ~time ~seq =
  h.evs.(i) <- ev;
  h.times.(i) <- time;
  h.seqs.(i) <- seq

let heap_push h ev =
  if h.size = Array.length h.evs then heap_grow h;
  let time = ev.time and seq = ev.seq in
  (* Sift up, moving the hole towards the root. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    if key_earlier h ~time ~seq parent then begin
      set_slot h !i h.evs.(parent) ~time:h.times.(parent) ~seq:h.seqs.(parent);
      i := parent
    end
    else continue := false
  done;
  set_slot h !i ev ~time ~seq

let heap_pop h =
  assert (h.size > 0);
  let top = h.evs.(0) in
  h.size <- h.size - 1;
  let last = h.evs.(h.size) in
  let time = h.times.(h.size) and seq = h.seqs.(h.size) in
  h.evs.(h.size) <- dummy;
  if h.size > 0 then begin
    (* Sift the hole down from the root, pulling the earliest of up to
       four children up one level each step; [last] drops into the final
       hole. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let first = (4 * !i) + 1 in
      if first >= h.size then continue := false
      else begin
        let stop = min (first + 4) h.size in
        let best = ref first in
        for c = first + 1 to stop - 1 do
          if key_earlier h ~time:h.times.(c) ~seq:h.seqs.(c) !best then best := c
        done;
        (* [last] belongs above the earliest child: hole found. *)
        if key_earlier h ~time ~seq !best then continue := false
        else begin
          set_slot h !i h.evs.(!best) ~time:h.times.(!best) ~seq:h.seqs.(!best);
          i := !best
        end
      end
    done;
    set_slot h !i last ~time ~seq
  end;
  top

(* --- The hierarchical timing wheel ---------------------------------------- *)

(* Integer ticks at 1 us resolution.  [int_of_float] truncates towards zero
   and times are nonnegative, so the mapping is a monotone floor: distinct
   ticks order exactly like the times they quantize, and events that share
   a tick are ordered by the promotion heap on their exact (time, seq).
   Times past the representable horizon (including infinity) clamp to
   [max_int] and live in the overflow list until the wheel catches up. *)
let tick_rate = 1e6
let tick_horizon = 4.0e12 (* seconds; * 1e6 stays well below max_int *)
let[@inline] tick_of_time time = if time >= tick_horizon then max_int else int_of_float (time *. tick_rate)

let slot_bits = 8
let slots_per_level = 256 (* 1 lsl slot_bits *)
let wheel_levels = 4 (* covers 2^32 us ~ 71.6 min beyond [cur_tick]; rest overflows *)

(* A growable event vector — one per wheel slot, plus the overflow. *)
type svec = { mutable sv : event array; mutable sn : int }

let svec_create () = { sv = [||]; sn = 0 }

(* Slot arrays are pooled in per-wheel size-classed free lists: without
   this, each of the 1024 slots (and the overflow) retains its high-water
   capacity forever, and at 10^5-10^6 pending events the sum of those
   high-water marks dwarfs the live working set.  Cascading a slot returns
   its array to the pool; the next slot that grows takes it back, so the
   wheel's peak live heap tracks the peak pending set, not history.
   Capacities are always 8 * 2^c (growth doubles from 8), so the class
   index is exact. *)
let pool_classes = 24

type wheel = {
  mutable cur_tick : int;
      (* Every event with tick <= cur_tick has been promoted into [cur];
         every slot "before" cur_tick at every level is empty. *)
  cur : heap; (* promotion heap: exact (time, seq) order within reached ticks *)
  levels : svec array array; (* [wheel_levels][slots_per_level] *)
  level_count : int array; (* events held per level, to skip empty levels *)
  overflow : svec; (* tick beyond all levels' span; reseeded when reached *)
  mutable total : int; (* physical events anywhere in the structure *)
  free : event array list array; (* pooled slot arrays, by size class *)
}

let wheel_create () =
  {
    cur_tick = 0;
    cur = heap_create initial_capacity;
    levels = Array.init wheel_levels (fun _ -> Array.init slots_per_level (fun _ -> svec_create ()));
    level_count = Array.make wheel_levels 0;
    overflow = svec_create ();
    total = 0;
    free = Array.make pool_classes [];
  }

(* capacity 8 * 2^c -> class c *)
let[@inline] svec_class cap =
  let c = ref 0 and x = ref 8 in
  while !x < cap do
    x := !x lsl 1;
    incr c
  done;
  !c

let svec_alloc w cap =
  let c = svec_class cap in
  if c < pool_classes then
    match w.free.(c) with
    | a :: rest ->
        w.free.(c) <- rest;
        a
    | [] -> Array.make cap dummy
  else Array.make cap dummy

(* [a] must be all-[dummy] so pooled arrays never retain events. *)
let svec_release w a =
  let cap = Array.length a in
  if cap > 0 then begin
    let c = svec_class cap in
    if c < pool_classes then w.free.(c) <- a :: w.free.(c)
  end

let wheel_push w v ev =
  if v.sn = Array.length v.sv then begin
    let cap = if v.sn = 0 then 8 else 2 * v.sn in
    let a = svec_alloc w cap in
    Array.blit v.sv 0 a 0 v.sn;
    if v.sn > 0 then begin
      Array.fill v.sv 0 v.sn dummy;
      svec_release w v.sv
    end;
    v.sv <- a
  end;
  v.sv.(v.sn) <- ev;
  v.sn <- v.sn + 1

(* File an event by its tick, relative to [cur_tick].  Level l holds events
   whose tick agrees with cur_tick on all bits above 8*(l+1) — so a slot
   only ever contains ticks from the window the wheel is currently
   sweeping, and cascading a level-l slot re-files its events strictly
   below l (or straight into [cur]).  Does not touch [total]. *)
let place w ev =
  let tick = tick_of_time ev.time in
  if tick <= w.cur_tick then heap_push w.cur ev
  else begin
    let diff = tick lxor w.cur_tick in
    if diff lsr (slot_bits * wheel_levels) <> 0 then wheel_push w w.overflow ev
    else begin
      let l =
        if diff lsr slot_bits = 0 then 0
        else if diff lsr (2 * slot_bits) = 0 then 1
        else if diff lsr (3 * slot_bits) = 0 then 2
        else 3
      in
      wheel_push w w.levels.(l).((tick lsr (slot_bits * l)) land (slots_per_level - 1)) ev;
      w.level_count.(l) <- w.level_count.(l) + 1
    end
  end

let wheel_add w ev =
  w.total <- w.total + 1;
  place w ev

(* Empty level-l slot j into the structure below it.  For l = 0 every
   event lands in [cur] (a level-0 slot holds exactly one tick); higher
   slots re-file at levels < l. *)
let cascade w l j =
  let v = w.levels.(l).(j) in
  let n = v.sn in
  w.level_count.(l) <- w.level_count.(l) - n;
  v.sn <- 0;
  (* Detach the slot's array before re-filing so [place] can never push
     into it mid-iteration, then return it to the pool fully dummied. *)
  let a = v.sv in
  v.sv <- [||];
  for i = 0 to n - 1 do
    let ev = a.(i) in
    a.(i) <- dummy;
    place w ev
  done;
  svec_release w a

(* Move [cur_tick] forward to the next occupied slot and promote it,
   repeating until the promotion heap is nonempty (cascading a coarse slot
   may land everything at a finer level first).  Caller guarantees there
   is an event somewhere ([total > cur.size]). *)
let advance w =
  let rec go () =
    let found = ref false in
    let l = ref 0 in
    while (not !found) && !l < wheel_levels do
      if w.level_count.(!l) > 0 then begin
        let lvl = w.levels.(!l) in
        let shift = slot_bits * !l in
        (* Slots at or before cur_tick's index are already empty (the
           invariant above), so scan strictly beyond it. *)
        let j = ref (((w.cur_tick lsr shift) land (slots_per_level - 1)) + 1) in
        while (not !found) && !j < slots_per_level do
          if lvl.(!j).sn > 0 then begin
            let above = shift + slot_bits in
            w.cur_tick <- ((w.cur_tick lsr above) lsl above) lor (!j lsl shift);
            cascade w !l !j;
            found := true
          end
          else incr j
        done
      end;
      if not !found then incr l
    done;
    if !found then begin
      if w.cur.size = 0 then go ()
    end
    else if w.overflow.sn > 0 then begin
      (* Jump the wheel to the overflow's earliest tick and re-file; the
         minimum lands in [cur] immediately, stragglers past the new span
         simply overflow again (into a fresh array — the old one is
         detached first, then pooled). *)
      let n = w.overflow.sn in
      let a = w.overflow.sv in
      let min_tick = ref max_int in
      for i = 0 to n - 1 do
        let tick = tick_of_time a.(i).time in
        if tick < !min_tick then min_tick := tick
      done;
      w.overflow.sn <- 0;
      w.overflow.sv <- [||];
      w.cur_tick <- !min_tick;
      for i = 0 to n - 1 do
        let ev = a.(i) in
        a.(i) <- dummy;
        place w ev
      done;
      svec_release w a;
      if w.cur.size = 0 then go ()
    end
  in
  go ()

(* --- The simulator --------------------------------------------------------- *)

type queue = Q_heap of heap | Q_wheel of wheel

type t = {
  queue : queue;
  mutable clock : float;
  mutable next_seq : int;
  mutable aux_seq : int; (* negative, descending: auxiliary (telemetry) events *)
  live : int ref; (* scheduled and not cancelled *)
  mutable stopping : bool;
  mutable fired : int; (* actions executed since creation *)
  mutable probe : probe option;
  root_rng : Rng.t;
}

let create ?(seed = 1) ?(sched = Heap) () =
  {
    queue =
      (match sched with
      | Heap -> Q_heap (heap_create initial_capacity)
      | Wheel -> Q_wheel (wheel_create ()));
    clock = 0.;
    next_seq = 0;
    aux_seq = -1;
    live = ref 0;
    stopping = false;
    fired = 0;
    probe = None;
    root_rng = Rng.create ~seed;
  }

let sched t = match t.queue with Q_heap _ -> Heap | Q_wheel _ -> Wheel

let sched_of_string = function
  | "heap" -> Ok Heap
  | "wheel" -> Ok Wheel
  | s -> Error (Printf.sprintf "unknown scheduler %S (expected \"heap\" or \"wheel\")" s)

let sched_to_string = function Heap -> "heap" | Wheel -> "wheel"

(* The crossover is insensitive within an order of magnitude: below it the
   heap's cache-resident sift beats the wheel's bookkeeping, above it the
   O(log n) comparisons dominate.  Measured in BENCH_scale.json. *)
let recommended_sched ~expected_pending = if expected_pending >= 8192 then Wheel else Heap

let now t = t.clock
let rng t = t.root_rng
let pending t = !(t.live)
let events_processed t = t.fired
let set_probe t probe = t.probe <- probe

let schedule_at ?(kind = Kind.other) t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let ev = { time; seq = t.next_seq; kind; action = Some action; live = t.live } in
  t.next_seq <- t.next_seq + 1;
  (match t.queue with Q_heap h -> heap_push h ev | Q_wheel w -> wheel_add w ev);
  incr t.live;
  ev

let schedule ?kind t ~delay action =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  schedule_at ?kind t ~time:(t.clock +. delay) action

(* Auxiliary events draw from a separate, negative, descending sequence
   counter, so scheduling one never consumes a [next_seq] value — a run
   with read-only auxiliary ticks attached stays bit-identical to the same
   run without them.  At equal time the negative seq sorts before every
   normal event, so a telemetry tick at T observes state with all events
   < T fired and none at T: the same cut a barrier pulse sees in a
   partitioned run ({!Par.drive}), which is what makes K=1 and K>1
   interval series identical. *)
let schedule_aux ?(kind = Kind.telemetry) t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_aux: time %g is before now %g" time t.clock);
  let ev = { time; seq = t.aux_seq; kind; action = Some action; live = t.live } in
  t.aux_seq <- t.aux_seq - 1;
  (match t.queue with Q_heap h -> heap_push h ev | Q_wheel w -> wheel_add w ev);
  incr t.live;
  ev

let cancel ev =
  match ev.action with
  | None -> ()
  | Some _ ->
      ev.action <- None;
      decr ev.live

let cancelled ev = ev.action = None

let stop t = t.stopping <- true

let[@inline] fire t ev action =
  ev.action <- None;
  decr t.live;
  t.clock <- ev.time;
  t.fired <- t.fired + 1;
  match t.probe with
  | None -> action ()
  | Some pr ->
      let t0 = pr.pr_clock () in
      action ();
      pr.pr_hit ~kind:ev.kind ~dt:(pr.pr_clock () -. t0)

(* The earliest uncancelled event, discarded-in-place cancellations and
   all, or [None] on an empty queue.  For the wheel this may advance
   [cur_tick] — safe, because late arrivals at or before a reached tick
   go straight to the promotion heap. *)
let head_live t =
  match t.queue with
  | Q_heap h ->
      let rec go () =
        if h.size = 0 then None
        else
          let top = h.evs.(0) in
          if top.action == None then begin
            ignore (heap_pop h);
            go ()
          end
          else Some top
      in
      go ()
  | Q_wheel w ->
      let rec go () =
        if w.total = 0 then None
        else begin
          if w.cur.size = 0 then advance w;
          let top = w.cur.evs.(0) in
          if top.action == None then begin
            w.total <- w.total - 1;
            ignore (heap_pop w.cur);
            go ()
          end
          else Some top
        end
      in
      go ()

let step t =
  match head_live t with
  | None -> false
  | Some ev ->
      (match t.queue with
      | Q_heap h -> ignore (heap_pop h)
      | Q_wheel w ->
          w.total <- w.total - 1;
          ignore (heap_pop w.cur));
      (match ev.action with
      | Some action -> fire t ev action
      | None -> assert false);
      true

let run ?until t =
  t.stopping <- false;
  let horizon = match until with Some h -> h | None -> infinity in
  match t.queue with
  | Q_heap h ->
      (* The specialised loop keeps the reference queue exactly as fast as
         before the wheel existed: peek the root, pop, fire. *)
      let rec loop () =
        if t.stopping then ()
        else if h.size = 0 then ()
        else begin
          let top = h.evs.(0) in
          match top.action with
          | None ->
              ignore (heap_pop h);
              loop ()
          | Some action ->
              if h.times.(0) > horizon then t.clock <- horizon
              else begin
                ignore (heap_pop h);
                fire t top action;
                loop ()
              end
        end
      in
      loop ()
  | Q_wheel w ->
      let rec loop () =
        if t.stopping then ()
        else if w.total = 0 then ()
        else begin
          if w.cur.size = 0 then advance w;
          let top = w.cur.evs.(0) in
          match top.action with
          | None ->
              w.total <- w.total - 1;
              ignore (heap_pop w.cur);
              loop ()
          | Some action ->
              if top.time > horizon then t.clock <- horizon
              else begin
                w.total <- w.total - 1;
                ignore (heap_pop w.cur);
                fire t top action;
                loop ()
              end
        end
      in
      loop ()

let next_time t = match head_live t with Some ev -> ev.time | None -> infinity

(* One conservative-PDES window: fire events strictly before [upto]
   (or at [upto] too when [inclusive]), then leave the clock at [upto]
   when later events remain — exactly [run ~until]'s stopping rule, with
   the exclusive bound that windowed execution needs (an event AT the
   window edge may race a cross-partition arrival AT the same instant, so
   it belongs to the next window, after the mailbox exchange). *)
let run_window ?(inclusive = false) t ~upto =
  t.stopping <- false;
  match t.queue with
  | Q_heap h ->
      let rec loop () =
        if t.stopping then ()
        else if h.size = 0 then ()
        else begin
          let top = h.evs.(0) in
          match top.action with
          | None ->
              ignore (heap_pop h);
              loop ()
          | Some action ->
              let tm = h.times.(0) in
              if (if inclusive then tm > upto else tm >= upto) then t.clock <- upto
              else begin
                ignore (heap_pop h);
                fire t top action;
                loop ()
              end
        end
      in
      loop ()
  | Q_wheel w ->
      let rec loop () =
        if t.stopping then ()
        else if w.total = 0 then ()
        else begin
          if w.cur.size = 0 then advance w;
          let top = w.cur.evs.(0) in
          match top.action with
          | None ->
              w.total <- w.total - 1;
              ignore (heap_pop w.cur);
              loop ()
          | Some action ->
              if (if inclusive then top.time > upto else top.time >= upto) then t.clock <- upto
              else begin
                w.total <- w.total - 1;
                ignore (heap_pop w.cur);
                fire t top action;
                loop ()
              end
        end
      in
      loop ()
