(* 4-ary min-heap of events keyed by (time, seq).  The sequence number
   breaks ties in scheduling order so that behaviour never depends on heap
   internals.  Cancellation marks the event and lets the heap pop it lazily,
   which keeps cancel O(1) — important for TCP timers, nearly all of which
   are cancelled rather than fired.

   The heap keys live in parallel unboxed [times]/[seqs] arrays next to the
   event array: a 4-ary heap halves the tree depth of the old binary heap,
   and comparing cached keys avoids chasing an event pointer and unboxing
   its float field on every comparison — together the hottest costs of the
   event loop.  Sift-up/down move the hole rather than swapping, so each
   level costs three array stores instead of nine. *)

(* Scheduling-site tags for the event-loop profiler.  A kind is carried by
   every event (one immediate int; the record is heap-allocated anyway) and
   only ever read when a probe is attached, so tagging costs nothing in
   normal runs.  The flat enumeration lives here because the scheduler is
   the one module every scheduling site already depends on. *)
module Kind = struct
  let other = 0
  let net_transmit = 1
  let net_deliver = 2
  let net_poll = 3
  let tcp_timer = 4
  let agent = 5
  let obs = 6
  let fault = 7
  let count = 8

  let name = function
    | 0 -> "other"
    | 1 -> "net.transmit"
    | 2 -> "net.deliver"
    | 3 -> "net.poll"
    | 4 -> "tcp.timer"
    | 5 -> "agent"
    | 6 -> "obs"
    | 7 -> "fault"
    | _ -> "?"
end

type event = {
  time : float;
  seq : int;
  kind : int; (* a [Kind] tag, read only by the profiler probe *)
  mutable action : (unit -> unit) option;
  live : int ref; (* the owning simulator's count of pending events *)
}

type handle = event

(* The profiler hook: [pr_clock] supplies wall time (injected so this
   module stays free of [Unix]), [pr_hit] is called after each fired
   action with its kind and wall-clock duration. *)
type probe = { pr_clock : unit -> float; pr_hit : kind:int -> dt:float -> unit }

type t = {
  mutable evs : event array;
  mutable times : float array; (* cached evs.(i).time (unboxed) *)
  mutable seqs : int array; (* cached evs.(i).seq *)
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  live : int ref; (* scheduled and not cancelled *)
  mutable stopping : bool;
  mutable fired : int; (* actions executed since creation *)
  mutable probe : probe option;
  root_rng : Rng.t;
}

let dummy = { time = neg_infinity; seq = -1; kind = 0; action = None; live = ref 0 }
let initial_capacity = 256

let create ?(seed = 1) () =
  {
    evs = Array.make initial_capacity dummy;
    times = Array.make initial_capacity 0.;
    seqs = Array.make initial_capacity 0;
    size = 0;
    clock = 0.;
    next_seq = 0;
    live = ref 0;
    stopping = false;
    fired = 0;
    probe = None;
    root_rng = Rng.create ~seed;
  }

let now t = t.clock
let rng t = t.root_rng
let pending t = !(t.live)
let events_processed t = t.fired
let set_probe t probe = t.probe <- probe

let grow t =
  let cap = 2 * Array.length t.evs in
  let evs = Array.make cap dummy in
  let times = Array.make cap 0. in
  let seqs = Array.make cap 0 in
  Array.blit t.evs 0 evs 0 t.size;
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  t.evs <- evs;
  t.times <- times;
  t.seqs <- seqs

(* Lexicographic (time, seq) against the cached keys at heap slot [j]. *)
let[@inline] key_earlier t ~time ~seq j =
  time < t.times.(j) || (time = t.times.(j) && seq < t.seqs.(j))

let[@inline] set_slot t i ev ~time ~seq =
  t.evs.(i) <- ev;
  t.times.(i) <- time;
  t.seqs.(i) <- seq

let push t ev =
  if t.size = Array.length t.evs then grow t;
  let time = ev.time and seq = ev.seq in
  (* Sift up, moving the hole towards the root. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    if key_earlier t ~time ~seq parent then begin
      set_slot t !i t.evs.(parent) ~time:t.times.(parent) ~seq:t.seqs.(parent);
      i := parent
    end
    else continue := false
  done;
  set_slot t !i ev ~time ~seq

let pop t =
  assert (t.size > 0);
  let top = t.evs.(0) in
  t.size <- t.size - 1;
  let last = t.evs.(t.size) in
  let time = t.times.(t.size) and seq = t.seqs.(t.size) in
  t.evs.(t.size) <- dummy;
  if t.size > 0 then begin
    (* Sift the hole down from the root, pulling the earliest of up to
       four children up one level each step; [last] drops into the final
       hole. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let first = (4 * !i) + 1 in
      if first >= t.size then continue := false
      else begin
        let stop = min (first + 4) t.size in
        let best = ref first in
        for c = first + 1 to stop - 1 do
          if key_earlier t ~time:t.times.(c) ~seq:t.seqs.(c) !best then best := c
        done;
        (* [last] belongs above the earliest child: hole found. *)
        if key_earlier t ~time ~seq !best then continue := false
        else begin
          set_slot t !i t.evs.(!best) ~time:t.times.(!best) ~seq:t.seqs.(!best);
          i := !best
        end
      end
    done;
    set_slot t !i last ~time ~seq
  end;
  top

let schedule_at ?(kind = Kind.other) t ~time action =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.schedule_at: time %g is before now %g" time t.clock);
  let ev = { time; seq = t.next_seq; kind; action = Some action; live = t.live } in
  t.next_seq <- t.next_seq + 1;
  push t ev;
  incr t.live;
  ev

let schedule ?kind t ~delay action =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  schedule_at ?kind t ~time:(t.clock +. delay) action

let cancel ev =
  match ev.action with
  | None -> ()
  | Some _ ->
      ev.action <- None;
      decr ev.live

let cancelled ev = ev.action = None

let stop t = t.stopping <- true

let step t =
  let rec next () =
    if t.size = 0 then false
    else
      let ev = pop t in
      match ev.action with
      | None -> next () (* cancelled: skip silently *)
      | Some action ->
          ev.action <- None;
          decr t.live;
          t.clock <- ev.time;
          t.fired <- t.fired + 1;
          (match t.probe with
          | None -> action ()
          | Some pr ->
              let t0 = pr.pr_clock () in
              action ();
              pr.pr_hit ~kind:ev.kind ~dt:(pr.pr_clock () -. t0));
          true
  in
  next ()

let run ?until t =
  t.stopping <- false;
  let horizon = match until with Some h -> h | None -> infinity in
  let rec loop () =
    if t.stopping then ()
    else if t.size = 0 then ()
    else begin
      (* Peek without popping to honour the horizon. *)
      let top = t.evs.(0) in
      match top.action with
      | None ->
          ignore (pop t);
          loop ()
      | Some _ ->
          if t.times.(0) > horizon then t.clock <- horizon
          else begin
            ignore (step t);
            loop ()
          end
    end
  in
  loop ()
