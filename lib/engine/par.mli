(** The conservative parallel event-loop driver (DESIGN.md §14).

    A persistent team of domains runs one simulator per partition in
    lockstep windows bounded by the lookahead (the minimum cross-partition
    link delay).  Cross-partition messages travel through {!Mailbox}es and
    are injected at the window barriers by the [exchange] callback, which
    always runs on the coordinating domain. *)

type t

val create : int -> t
(** Spawn a team of the given size: [size - 1] worker domains plus the
    calling domain as lane 0.  A team of 1 spawns nothing and runs jobs
    inline.  Raises [Invalid_argument] on a nonpositive size. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** Run [job lane] on every lane ([0 .. size-1]) and wait for all; lane 0
    runs on the calling domain.  The first lane exception is re-raised
    after the barrier, leaving the team reusable. *)

val drive :
  ?pulse:float * (float -> unit) ->
  t ->
  sims:Sim.t array ->
  lookahead:float ->
  until:float ->
  exchange:(unit -> unit) ->
  unit
(** The lockstep window loop: repeatedly run [exchange] (inject pending
    cross-partition messages — coordinator only), compute the global
    minimum next-event time [t0], and fire one window
    [t0, min (t0 + lookahead) until) on every lane in parallel.  The final
    window at [until] is inclusive, matching [Sim.run ~until]'s closed
    bound, and is repeated while the exchange keeps injecting arrivals at
    or before [until].  Requires one simulator per lane and a positive
    lookahead.

    [pulse = (interval, fire)] asks the coordinator to call
    [fire (k *. interval)] for k = 1, 2, ... at the exact global cut where
    every event strictly before that time has fired and none at or after
    it has — windows are capped (exclusively) at the next pulse time, and
    pulses at or before [until] left over when the events drain still
    fire.  This is the partitioned equivalent of a read-only
    {!Sim.schedule_aux} telemetry tick chain, and produces identical
    observation points for any partition count.  A pulse requires a
    finite [until] (raises [Invalid_argument] otherwise — the pulse
    series never ends on a run-dry drive); without one, [until =
    infinity] runs the lanes dry. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent. *)
