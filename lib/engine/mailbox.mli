(** A single-producer/single-consumer message buffer for cross-partition
    event exchange in the conservative parallel driver (DESIGN.md §14).

    Thread-safety contract: during a lockstep window only the producing
    partition's domain calls {!push}; only the coordinating domain calls
    {!drain}, and only at a window barrier.  The barrier's mutex provides
    the happens-before edge, so the implementation needs no atomics. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] fills cleared slots so drained messages are not retained. *)

val push : 'a t -> time:float -> 'a -> unit
(** Append a message stamped with its (virtual) delivery time. *)

val drain : 'a t -> f:(time:float -> 'a -> unit) -> unit
(** Call [f] on every buffered message in push (FIFO) order and clear the
    mailbox.  Capacity is retained for the next window. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
