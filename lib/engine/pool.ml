(* Deterministic fan-out over OCaml 5 domains.

   Jobs are stamped with their submission index and pushed through a
   Mutex/Condition-guarded queue; each worker pulls the next job, runs it,
   and stores the result in the slot for that index.  Because results are
   keyed by submission index and read only after every worker has been
   joined, the output order (and therefore any output built from it) is
   identical to the sequential [List.map] — parallelism changes wall-clock
   time, never results.  There is deliberately no work stealing: a single
   shared queue keeps ordering trivial and the per-job cost here (whole
   simulation runs) dwarfs queue contention. *)

type 'a queue_state = {
  jobs : (int * 'a) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool; (* no further submissions: drain and exit *)
  mutable aborted : bool; (* a job raised: skip the rest *)
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let take st =
  Mutex.lock st.mutex;
  let rec wait () =
    if st.aborted then None
    else if not (Queue.is_empty st.jobs) then Some (Queue.pop st.jobs)
    else if st.closed then None
    else begin
      Condition.wait st.nonempty st.mutex;
      wait ()
    end
  in
  let job = wait () in
  Mutex.unlock st.mutex;
  job

let map ?jobs f items =
  let n = List.length items in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let workers = min jobs n in
  if workers <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let st =
      {
        jobs = Queue.create ();
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        closed = false;
        aborted = false;
      }
    in
    (* The first failure in submission order wins, so a parallel run
       surfaces the same exception a sequential run would hit first. *)
    let error = ref None in
    let record_error idx exn bt =
      Mutex.lock st.mutex;
      (match !error with
      | Some (prev_idx, _, _) when prev_idx <= idx -> ()
      | Some _ | None -> error := Some (idx, exn, bt));
      st.aborted <- true;
      Condition.broadcast st.nonempty;
      Mutex.unlock st.mutex
    in
    let worker () =
      let rec loop () =
        match take st with
        | None -> ()
        | Some (idx, item) ->
            (match f item with
            | result -> results.(idx) <- Some result
            | exception exn ->
                record_error idx exn (Printexc.get_raw_backtrace ()));
            loop ()
      in
      loop ()
    in
    Mutex.lock st.mutex;
    List.iteri (fun idx item -> Queue.add (idx, item) st.jobs) items;
    st.closed <- true;
    Condition.broadcast st.nonempty;
    Mutex.unlock st.mutex;
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    match !error with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
        List.mapi
          (fun idx _ ->
            match results.(idx) with
            | Some r -> r
            | None -> assert false (* every job ran: no error, queue drained *))
          items
  end
