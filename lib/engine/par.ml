(* The conservative parallel event-loop driver (DESIGN.md section 14): a
   persistent team of domains runs one simulator per partition in lockstep
   windows bounded by the lookahead, with a coordinator-drained exchange
   between windows.

   Why persistent domains and not [Pool.map] per window: a 30-simulated-
   second run at 5 ms lookahead is ~6000 windows, and a [Domain.spawn] per
   worker per window would cost more than the windows themselves.  The team
   spawns [size - 1] workers once; lane 0 always runs on the calling
   domain, so a team of 1 degenerates to plain sequential calls.

   The round protocol is a classic generation barrier: the coordinator
   bumps [round] and broadcasts, each worker runs its lane and counts into
   [arrived], the coordinator waits for all.  Everything the lanes read or
   wrote is ordered by the mutex, which is what makes the plain (non-
   atomic) simulator and mailbox state safe to hand between domains. *)

type t = {
  size : int;
  m : Mutex.t;
  start : Condition.t;
  finish : Condition.t;
  mutable round : int;
  mutable arrived : int;
  mutable job : (int -> unit) option;
  mutable failure : exn option; (* first lane exception of the round *)
  mutable quit : bool;
  mutable domains : unit Domain.t array;
}

let size t = t.size

let create size =
  if size < 1 then invalid_arg "Par.create: team size must be at least 1";
  let t =
    {
      size;
      m = Mutex.create ();
      start = Condition.create ();
      finish = Condition.create ();
      round = 0;
      arrived = 0;
      job = None;
      failure = None;
      quit = false;
      domains = [||];
    }
  in
  let worker lane () =
    Mutex.lock t.m;
    let seen = ref 0 in
    let rec loop () =
      while (not t.quit) && t.round = !seen do
        Condition.wait t.start t.m
      done;
      if t.quit then Mutex.unlock t.m
      else begin
        seen := t.round;
        let job = match t.job with Some j -> j | None -> assert false in
        Mutex.unlock t.m;
        let failed = try job lane; None with e -> Some e in
        Mutex.lock t.m;
        (match failed with
        | Some e when t.failure = None -> t.failure <- Some e
        | Some _ | None -> ());
        t.arrived <- t.arrived + 1;
        if t.arrived = t.size - 1 then Condition.signal t.finish;
        loop ()
      end
    in
    loop ()
  in
  if size > 1 then t.domains <- Array.init (size - 1) (fun k -> Domain.spawn (worker (k + 1)));
  t

(* Run [job lane] on every lane and wait for all of them; lane 0 runs on
   the calling domain.  Re-raises the first lane exception after the
   barrier, so the team stays reusable even when a lane fails. *)
let run t job =
  if t.size = 1 then job 0
  else begin
    Mutex.lock t.m;
    t.job <- Some job;
    t.arrived <- 0;
    t.failure <- None;
    t.round <- t.round + 1;
    Condition.broadcast t.start;
    Mutex.unlock t.m;
    let failed = try job 0; None with e -> Some e in
    Mutex.lock t.m;
    while t.arrived < t.size - 1 do
      Condition.wait t.finish t.m
    done;
    let lane_failure = t.failure in
    t.job <- None;
    Mutex.unlock t.m;
    match (failed, lane_failure) with
    | Some e, _ -> raise e
    | None, Some e -> raise e
    | None, None -> ()
  end

let shutdown t =
  if t.size > 1 then begin
    Mutex.lock t.m;
    t.quit <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.m;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

(* The lockstep window loop.  Invariants (proved in DESIGN.md section 14):
   every event fired in a window starts at or after the window's global
   minimum [t0], so any cross-partition message it emits arrives at or
   after [t0 + lookahead >= w_end] — i.e. never inside the window that
   produced it.  Messages are exchanged at the barrier, before the next
   window's bound is computed, so an injected arrival always lands ahead
   of the window that will fire it.

   The [until] edge needs care twice over: events exactly AT [until] must
   fire (matching [Sim.run ~until]'s closed bound), and a message emitted
   at [until - lookahead] can arrive exactly AT [until] — so the loop
   keeps running inclusive windows at [until] for as long as the exchange
   injects events at or before it.  Each such cascade advances strictly
   through message chains (every hop adds >= lookahead), so it terminates.

   Pulses: with [?pulse:(interval, fire)], the coordinator calls
   [fire (k *. interval)] for k = 1, 2, ... exactly when every event
   strictly before that time has fired on every lane and none at or after
   it has — the same cut a [Sim.schedule_aux] telemetry tick sees in a
   sequential run (aux events sort before normal events at equal time).
   Windows are capped at the next pulse time (exclusively), the pulse
   fires at the barrier on the coordinating domain, and pulses at or
   before [until] that remain when the event supply dries up are drained
   at the end — matching the sequential aux chain, which keeps firing
   after normal events drain.  Pulse times are computed by multiplication
   ([k *. interval]), not accumulation, so sequential tick chains must do
   the same for the two series to carry identical timestamps. *)
let drive ?pulse t ~sims ~lookahead ~until ~exchange =
  if Array.length sims <> t.size then invalid_arg "Par.drive: one simulator per lane";
  if not (lookahead > 0.) then invalid_arg "Par.drive: lookahead must be positive";
  let have_pulse = Option.is_some pulse in
  let p_interval, p_fire =
    match pulse with
    | Some (i, f) ->
        if not (i > 0.) then invalid_arg "Par.drive: pulse interval must be positive";
        if not (Float.is_finite until) then
          invalid_arg "Par.drive: a pulse needs a finite until";
        (i, f)
    | None -> (infinity, fun _ -> ())
  in
  let pulse_idx = ref 1 in
  let next_pulse () = float_of_int !pulse_idx *. p_interval in
  (* Fire every due pulse at or before [limit] (and [until]).  Safe
     whenever the global minimum pending time is >= [limit]: all events
     before each fired pulse time have run, none at it have.  Without a
     pulse this must be a no-op: [next_pulse () = infinity] and a run-dry
     drive has [until = infinity], so the bare comparison would spin. *)
  let fire_pulses_upto limit =
    while
      have_pulse
      && (let np = next_pulse () in
          np <= limit && np <= until)
    do
      p_fire (next_pulse ());
      incr pulse_idx
    done
  in
  let n = t.size in
  let global_min () =
    let m = ref infinity in
    for i = 0 to n - 1 do
      let ti = Sim.next_time sims.(i) in
      if ti < !m then m := ti
    done;
    !m
  in
  let rec loop () =
    exchange ();
    let t0 = global_min () in
    if t0 = infinity then
      (* every partition drained; nothing in flight — drain the pulses *)
      fire_pulses_upto until
    else if t0 <= until then begin
      fire_pulses_upto t0;
      let w0 = Float.min (t0 +. lookahead) until in
      let np = next_pulse () in
      (* Cap the window at the next pulse (exclusive — events AT the pulse
         time fire after it, in the next window), and only close the bound
         at [until] once no pulse is due there. *)
      let w_end, inclusive = if np <= w0 then (np, false) else (w0, w0 >= until) in
      run t (fun lane -> Sim.run_window ~inclusive sims.(lane) ~upto:w_end);
      loop ()
    end
    else begin
      (* Only post-[until] events remain: advance the clocks the way
         [Sim.run ~until] would (no actions fire, so no new messages). *)
      for i = 0 to n - 1 do
        Sim.run_window ~inclusive:true sims.(i) ~upto:until
      done;
      fire_pulses_upto until
    end
  in
  loop ()
