(** Deterministic pseudo-random numbers (xoshiro256starstar), seeded
    explicitly so every simulation run is reproducible bit-for-bit. *)

type t

val create : seed:int -> t
(** Seeds the generator via SplitMix64 expansion of [seed]. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream; used to
    give each traffic source its own stream so adding a source does not
    perturb the arrival pattern of others. *)

val bits64 : t -> int64
val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound] must be positive. *)

val bool : t -> bool
val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (Poisson arrivals). *)

val bytes : t -> int -> string
(** [bytes t n] is [n] random bytes (e.g. keys, nonces). *)

val lane : seed:int -> int -> t
(** [lane ~seed i] is member [i]'s deterministic stream under bank seed
    [seed] — bit-identical to lane [i] of [Bank.create ~seed ~n] for any
    [n > i].  Real per-member agents use this to reproduce exactly the
    draws an aggregate sender makes on their behalf. *)

(** A structure-of-arrays bank of per-member generators: four flat int64
    Bigarrays instead of a record per member, so a 10^6-member bank is
    32 MB of GC-invisible state.  Lane [i]'s stream equals {!lane}
    [~seed i]'s. *)
module Bank : sig
  type t

  val create : seed:int -> n:int -> t
  (** Raises [Invalid_argument] unless [n > 0]. *)

  val n : t -> int
  val bits64 : t -> int -> int64

  val float : t -> int -> float -> float
  (** [float t i bound] is uniform in [\[0, bound)] from lane [i], same
      mapping as the scalar {!float}. *)
end
