(** The discrete-event simulation core.

    A simulator owns a virtual clock and a pending-event queue.  Events
    fire in nondecreasing time order; ties break by scheduling order, which
    makes runs deterministic.  All network components (links, hosts,
    routers) hang their behaviour off this module.

    Two queue implementations sit behind the same API and fire events in
    {e identical} order (differential-tested): the reference 4-ary heap,
    and a hierarchical timing wheel for runs with very large pending sets
    (hundreds of thousands of concurrent timers), where O(1) insert beats
    the heap's O(log n) sift. *)

type t

type sched = Heap | Wheel
(** The pending-event queue implementation.  [Heap] is the reference 4-ary
    (time, seq) min-heap — the default, and what every committed figure is
    pinned to.  [Wheel] is a 4-level, 256-slot hierarchical timing wheel at
    1 us resolution whose reached ticks drain through a small (time, seq)
    heap, so its firing order is identical to [Heap]'s. *)

val sched : t -> sched

val sched_of_string : string -> (sched, string) result
(** ["heap"] or ["wheel"]. *)

val sched_to_string : sched -> string

val recommended_sched : expected_pending:int -> sched
(** Scheduler auto-selection: [Wheel] once the expected steady-state
    pending-event count is large enough (>= 8192) that heap sifts dominate,
    [Heap] otherwise. *)

type handle
(** A scheduled event, usable for cancellation (e.g. retransmit timers). *)

(** Scheduling-site tags carried by every event, read only by an attached
    {!probe}.  Sites that matter to the event-loop profiler (link
    transmitters, propagation deliveries, qdisc polls, TCP timers, workload
    agents) pass their tag to {!schedule}; everything else defaults to
    {!Kind.other}. *)
module Kind : sig
  val other : int
  val net_transmit : int
  val net_deliver : int
  val net_poll : int
  val tcp_timer : int
  val agent : int
  val obs : int

  val fault : int
  (** scheduled fault-injection control events (link down/up, flap edges,
      cache wipes, secret rotations, restarts) *)

  val telemetry : int
  (** cadence-scheduled telemetry snapshot ticks ({!Obs.Timeseries}); always
      scheduled through {!schedule_aux} so they never perturb normal
      sequence numbers *)

  val count : int
  val name : int -> string
end

type probe = {
  pr_clock : unit -> float;  (** wall-clock source (e.g. [Unix.gettimeofday]) *)
  pr_hit : kind:int -> dt:float -> unit;
      (** called after every fired action with its kind tag and wall time *)
}
(** The event-loop profiler hook.  The clock is injected so the engine
    stays free of [Unix]; with no probe attached the per-event cost is one
    field load and branch. *)

val create : ?seed:int -> ?sched:sched -> unit -> t
(** A fresh simulator at time 0.  [seed] (default 1) seeds {!rng}; [sched]
    (default [Heap]) picks the pending-event queue. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Rng.t
(** The simulator's root random stream. *)

val schedule_at : ?kind:int -> t -> time:float -> (unit -> unit) -> handle
(** Fire the callback at absolute virtual [time].  Raises
    [Invalid_argument] if [time] is in the past.  [kind] (default
    {!Kind.other}) tags the event for the profiler {!probe}. *)

val schedule : ?kind:int -> t -> delay:float -> (unit -> unit) -> handle
(** Fire the callback [delay] seconds from {!now} ([delay >= 0]). *)

val schedule_aux : ?kind:int -> t -> time:float -> (unit -> unit) -> handle
(** Fire the callback at absolute virtual [time], drawing from a separate
    {e negative, descending} sequence counter.  Scheduling an auxiliary
    event never consumes a normal sequence number, so a run with read-only
    auxiliary ticks attached is bit-identical to the same run without them
    (unlike {!schedule}, whose sequence-number consumption perturbs later
    ties).  At equal time an auxiliary event fires {e before} every normal
    event — the observation cut "all events < T fired, none at T", matching
    the barrier pulses of partitioned runs.  [kind] defaults to
    {!Kind.telemetry}.  The callback must not mutate simulation state. *)

val cancel : handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val cancelled : handle -> bool

val run : ?until:float -> t -> unit
(** Process events until the heap is empty or virtual time would exceed
    [until].  When stopped by [until], the clock is left at [until]. *)

val next_time : t -> float
(** The time of the earliest pending (uncancelled) event, or [infinity]
    when none remain.  May lazily discard cancelled events. *)

val run_window : ?inclusive:bool -> t -> upto:float -> unit
(** One conservative-PDES window: fire events with time strictly below
    [upto] — or [<= upto] when [inclusive] (the final window of a
    partitioned run, mirroring [run ~until]'s closed bound) — and leave
    the clock at [upto] if later events remain.  The exclusive default is
    what windowed execution requires: an event exactly at the window edge
    may tie with a cross-partition arrival at the same instant, so it must
    fire in the next window, after the mailbox exchange.  Used by {!Par}
    drivers; [run] is unchanged and remains the sequential path. *)

val step : t -> bool
(** Process exactly one event; [false] when none remain. *)

val stop : t -> unit
(** Makes the current [run] return after the in-flight event completes. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val events_processed : t -> int
(** Total number of event actions executed since creation (cancelled events
    are not counted).  Used by benchmarks to report events/second and by
    tests to bound event-loop work. *)

val set_probe : t -> probe option -> unit
(** Attach (or detach with [None]) the event-loop profiler hook.  The probe
    observes only; it cannot change scheduling order, so attaching one
    never perturbs a run's results. *)
