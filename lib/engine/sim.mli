(** The discrete-event simulation core.

    A simulator owns a virtual clock and a pending-event heap.  Events fire
    in nondecreasing time order; ties break by scheduling order, which makes
    runs deterministic.  All network components (links, hosts, routers) hang
    their behaviour off this module. *)

type t

type handle
(** A scheduled event, usable for cancellation (e.g. retransmit timers). *)

val create : ?seed:int -> unit -> t
(** A fresh simulator at time 0.  [seed] (default 1) seeds {!rng}. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val rng : t -> Rng.t
(** The simulator's root random stream. *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Fire the callback at absolute virtual [time].  Raises
    [Invalid_argument] if [time] is in the past. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** Fire the callback [delay] seconds from {!now} ([delay >= 0]). *)

val cancel : handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val cancelled : handle -> bool

val run : ?until:float -> t -> unit
(** Process events until the heap is empty or virtual time would exceed
    [until].  When stopped by [until], the clock is left at [until]. *)

val step : t -> bool
(** Process exactly one event; [false] when none remain. *)

val stop : t -> unit
(** Makes the current [run] return after the in-flight event completes. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val events_processed : t -> int
(** Total number of event actions executed since creation (cancelled events
    are not counted).  Used by benchmarks to report events/second and by
    tests to bound event-loop work. *)
