(** A deterministic parallel run engine on OCaml 5 domains.

    [map f items] farms independent jobs out to worker domains and returns
    the results {b in submission order}, so parallel output is bit-identical
    to [List.map f items] provided each job is self-contained (builds its
    own {!Sim.t} / {!Rng.t} and touches no cross-run mutable globals — the
    contract every module under [lib/] upholds; see DESIGN.md
    "Determinism contract").

    There is no work stealing: workers pull index-stamped jobs from a
    single queue guarded by a [Mutex]/[Condition] pair and write results
    into a slot keyed by the job's index.  Joining the workers establishes
    the happens-before edge that lets the caller read every slot. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], clamped to at least 1 — one
    worker per available core, leaving a core for the spawning domain. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] applies [f] to every item on [jobs] worker domains
    (default {!default_jobs}).  [~jobs:1] (or a singleton/empty list) runs
    sequentially in the calling domain — exactly [List.map f items].

    If any job raises, the first exception (in submission order among those
    that raised) is re-raised in the caller with its original backtrace
    after all workers have stopped; remaining queued jobs are skipped. *)
