(* A single-producer/single-consumer message buffer for cross-partition
   event exchange (DESIGN.md section 14).  During a lockstep window exactly
   one domain pushes (the partition owning the link's transmitter); at the
   window barrier exactly one domain drains (the coordinator).  The barrier
   mutex establishes the happens-before edge between the two phases, so
   plain growable arrays are data-race-free here — no atomics, no locks on
   the hot path.

   Times ride in a parallel unboxed float array so a push costs two stores
   and no tuple allocation. *)

type 'a t = {
  dummy : 'a;
  mutable times : float array;
  mutable items : 'a array;
  mutable n : int;
}

let create ~dummy () = { dummy; times = [||]; items = [||]; n = 0 }

let length t = t.n
let is_empty t = t.n = 0

let push t ~time v =
  if t.n = Array.length t.items then begin
    let cap = if t.n = 0 then 16 else 2 * t.n in
    let items = Array.make cap t.dummy in
    let times = Array.make cap 0. in
    Array.blit t.items 0 items 0 t.n;
    Array.blit t.times 0 times 0 t.n;
    t.items <- items;
    t.times <- times
  end;
  t.times.(t.n) <- time;
  t.items.(t.n) <- v;
  t.n <- t.n + 1

(* FIFO drain; entries are cleared so the mailbox never retains messages
   (capacity is kept for the next window). *)
let drain t ~f =
  let n = t.n in
  t.n <- 0;
  for i = 0 to n - 1 do
    let v = t.items.(i) in
    t.items.(i) <- t.dummy;
    f ~time:t.times.(i) v
  done
