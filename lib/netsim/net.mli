(** The packet-level network: nodes joined by unidirectional links, each
    link owning a qdisc and a store-and-forward transmitter.

    A link serializes one packet at a time at its bandwidth, then the
    packet propagates for the link delay (so several packets ride the wire
    concurrently).  When a link's qdisc is nonempty but unservable (a rate
    limiter out of tokens), the transmitter re-polls at the qdisc's
    [next_ready] time. *)

type t
(** A network: the node/link tables plus the simulator driving them. *)

type node
(** A host or router; owns a packet handler and a next-hop table. *)

type link
(** One unidirectional link: qdisc, transmitter state, and fault hooks. *)

type handler = node -> in_link:link option -> Wire.Packet.t -> unit
(** Invoked when a packet arrives at a node ([in_link = None] only for
    locally injected packets). *)

type fault_action =
  | Fault_pass  (** deliver normally *)
  | Fault_lose  (** discard after serialization (loss or corruption) *)
  | Fault_dup  (** deliver the packet and an independent copy of it *)
  | Fault_delay of float
      (** deliver after [link delay + extra] seconds — later packets can
          overtake it, which is how reordering is modeled *)

(** What a per-link fault hook may decide for one transmitted packet.
    The decision is made after the packet has been dequeued and charged
    serialization time: a lost packet still occupied the wire. *)

type event =
  | Queue_drop of link * Wire.Packet.t
  | Hops_exceeded of node * Wire.Packet.t
  | No_route of node * Wire.Packet.t
  | Transmit of link * Wire.Packet.t
  | Deliver of node * Wire.Packet.t
  | Link_fault of link * Wire.Packet.t
      (** a fault hook returned a non-pass action for this packet *)

(** Observable forwarding events, reported through {!set_trace}. *)

val create : Sim.t -> t
(** An empty network scheduled on the given simulator. *)

val sim : t -> Sim.t
(** The simulator this network runs on. *)

val now : t -> float
(** Current virtual time, [Sim.now (sim t)]. *)

val set_trace : t -> (event -> unit) option -> unit
(** A global observation hook for tests and debugging; [None] disables. *)

(** {1 Building the network} *)

val add_node : ?addr:Wire.Addr.t -> name:string -> t -> handler -> node
(** Addresses must be unique across the network; routers typically have
    none.  Raises [Invalid_argument] on a duplicate address. *)

val set_handler : node -> handler -> unit
(** Replace the node's packet handler (schemes install theirs here). *)

val node_sim : node -> Sim.t
(** The simulator the node's network runs on. *)

val node_name : node -> string
(** The name given at {!add_node}; unique is conventional, not enforced. *)

val node_addr : node -> Wire.Addr.t option
(** The node's address, or [None] for unaddressed routers. *)

val node_id : node -> int
(** Dense creation-order index, usable as an array key. *)

val link_oneway :
  t -> src:node -> dst:node -> bandwidth_bps:float -> delay:float -> qdisc:Qdisc.t -> link
(** Raises [Invalid_argument] on nonpositive bandwidth or negative delay. *)

val duplex :
  t ->
  node ->
  node ->
  bandwidth_bps:float ->
  delay:float ->
  qdisc:(unit -> Qdisc.t) ->
  link * link
(** Two symmetric one-way links; [qdisc] is called once per direction. *)

val compute_routes : t -> unit
(** Populates every node's next-hop table with shortest paths (hop count,
    ties by link creation order) towards every addressed node.  Call after
    the topology is complete; may be called again after changes. *)

(** {1 Moving packets} *)

val originate : node -> Wire.Packet.t -> unit
(** Inject a packet at its source host: routes and transmits it. *)

val forward : node -> Wire.Packet.t -> unit
(** Route the packet from this node towards [packet.dst], charging one hop.
    Drops (with a trace event) when hops run out or no route exists. *)

val forward_on : node -> link -> Wire.Packet.t -> unit
(** Forward on an explicit link, bypassing the route lookup. *)

val route_for : node -> Wire.Addr.t -> link option
(** The node's current next hop towards an address, if any. *)

val min_poll_delay : float
(** The minimum self-poll backoff (in virtual seconds) a link transmitter
    waits when a qdisc claims readiness at the current instant but refuses
    to dequeue — e.g. a token bucket momentarily short of one packet's
    tokens.  Without this floor the transmitter would re-poll at the same
    virtual time forever and the event loop would spin. *)

(** {1 Introspection} *)

val links_into : node -> link list
(** All links whose destination is this node (for pushback's per-upstream
    rate limiting). *)

val links_out_of : node -> link list
(** All links whose source is this node. *)

val link_id : link -> int
(** Dense creation-order index, usable as an array key. *)

val link_src : link -> node
(** The transmitting end. *)

val link_dst : link -> node
(** The receiving end. *)

val link_qdisc : link -> Qdisc.t
(** The queue feeding this link's transmitter. *)

val link_bandwidth : link -> float
(** Serialization rate in bits per second. *)

val link_delay : link -> float
(** Propagation delay in seconds. *)

val link_tx_packets : link -> int
(** Packets fully serialized onto the wire so far (faulted ones included). *)

val link_tx_bytes : link -> int
(** Bytes fully serialized onto the wire so far. *)

val link_set_limiter : link -> (Wire.Packet.t -> bool) option -> unit
(** An admission predicate consulted before the qdisc on every enqueue
    ([false] = drop).  Pushback installs its per-upstream-link rate limits
    here. *)

(** {1 Fault hooks}

    The injection points the fault layer ({!module:Faults}) drives; with no
    hook installed and every link up, the transmitter's code path is the
    exact pre-fault one (DESIGN.md §11). *)

val link_set_fault : link -> (Wire.Packet.t -> fault_action) option -> unit
(** A per-packet fault decision consulted once per transmission, between
    dequeue and propagation.  [None] (the default) disables.  The hook must
    be deterministic given the simulation state — draw randomness from a
    dedicated {!Rng.t} stream, never from wall-clock sources. *)

val link_set_up : link -> bool -> unit
(** Administratively raise or fail the link.  While down, the transmitter
    stalls (the qdisc keeps queueing and tail-drops when full) but a packet
    already serializing finishes, and packets already propagating are
    delivered.  Raising a downed link restarts service immediately. *)

val link_is_up : link -> bool
(** Whether the link is administratively up (the default). *)

val nodes : t -> node list
(** Every node in the network, in creation order. *)

val links : t -> link list
(** Every link in the network, in creation order. *)

val find_node_by_addr : t -> Wire.Addr.t -> node option
(** The unique node owning this address, if one was registered. *)

(** {1 Conservative parallel execution}

    A network can be partitioned once, after the topology is complete and
    routes are computed but before any agent or scheme schedules events:
    each partition gets its own simulator (partition 0 keeps the master),
    every node re-homes to its partition's simulator ({!node_sim} returns
    it), and every link whose endpoints land in different partitions
    exchanges its deliveries through a {!Mailbox} drained at lockstep
    window barriers (DESIGN.md §14).  With no partitions installed, every
    code path is byte-identical to the sequential engine. *)

val install_partitions : t -> parts:int array -> unit
(** [install_partitions t ~parts] assigns node [id] to partition
    [parts.(id)] (indices [0..k-1] for [k = max + 1] partitions).  Raises
    [Invalid_argument] if already partitioned, if [parts] does not cover
    exactly the nodes, if fewer than two partitions are named, if a
    partition owns no node, if the master simulator already has pending
    events (partitioning must precede agent setup), or if the cut crosses
    a zero-delay link (the lookahead would collapse). *)

val partition_count : t -> int
(** Number of partitions; 1 when {!install_partitions} was never called. *)

val partition_sims : t -> Sim.t array
(** The per-partition simulators (a copy; index = partition).  With no
    partitions installed, the singleton master simulator. *)

val partition_of : node -> int
(** The node's partition index (0 when unpartitioned). *)

val lookahead : t -> float
(** Minimum cross-partition link delay — the lockstep window bound.
    [infinity] when unpartitioned or when no link crosses the cut. *)

val exchange_mailboxes : t -> unit
(** Drain every cut-link mailbox and inject the buffered deliveries into
    their destination partitions' simulators, stably ordered by (arrival
    time, cut-link creation order, FIFO) per partition.  Called by
    {!run_parallel} at window barriers; exposed for tests. *)

val run_parallel : ?pulse:float * (float -> unit) -> ?until:float -> t -> unit
(** Run the network to [until] (default: run dry).  Unpartitioned this is
    exactly [Sim.run ~until]; partitioned it drives one domain per
    partition in lockstep windows of the {!lookahead}, exchanging
    mailboxes at each barrier.  Differential-tested to produce the same
    metrics, counters and packet streams as the sequential run.

    [pulse = (interval, fire)] calls [fire (k *. interval)] for
    k = 1, 2, ... at the deterministic cut where every event strictly
    before that time has fired and none at or after it has — via a
    read-only {!Sim.schedule_aux} tick chain when unpartitioned, and
    {!Par.drive}'s barrier pulses when partitioned, so the observation
    points are identical for any partition count.  The callback runs on
    the coordinating domain and must not mutate simulation state.
    Requires a finite [until]. *)
