(** The packet-level network: nodes joined by unidirectional links, each
    link owning a qdisc and a store-and-forward transmitter.

    A link serializes one packet at a time at its bandwidth, then the
    packet propagates for the link delay (so several packets ride the wire
    concurrently).  When a link's qdisc is nonempty but unservable (a rate
    limiter out of tokens), the transmitter re-polls at the qdisc's
    [next_ready] time. *)

type t

type node

type link

type handler = node -> in_link:link option -> Wire.Packet.t -> unit
(** Invoked when a packet arrives at a node ([in_link = None] only for
    locally injected packets). *)

type event =
  | Queue_drop of link * Wire.Packet.t
  | Hops_exceeded of node * Wire.Packet.t
  | No_route of node * Wire.Packet.t
  | Transmit of link * Wire.Packet.t
  | Deliver of node * Wire.Packet.t

val create : Sim.t -> t
val sim : t -> Sim.t
val now : t -> float

val set_trace : t -> (event -> unit) option -> unit
(** A global observation hook for tests and debugging; [None] disables. *)

(** {1 Building the network} *)

val add_node : ?addr:Wire.Addr.t -> name:string -> t -> handler -> node
(** Addresses must be unique across the network; routers typically have
    none.  Raises [Invalid_argument] on a duplicate address. *)

val set_handler : node -> handler -> unit
val node_sim : node -> Sim.t
val node_name : node -> string
val node_addr : node -> Wire.Addr.t option
val node_id : node -> int

val link_oneway :
  t -> src:node -> dst:node -> bandwidth_bps:float -> delay:float -> qdisc:Qdisc.t -> link
(** Raises [Invalid_argument] on nonpositive bandwidth or negative delay. *)

val duplex :
  t ->
  node ->
  node ->
  bandwidth_bps:float ->
  delay:float ->
  qdisc:(unit -> Qdisc.t) ->
  link * link
(** Two symmetric one-way links; [qdisc] is called once per direction. *)

val compute_routes : t -> unit
(** Populates every node's next-hop table with shortest paths (hop count,
    ties by link creation order) towards every addressed node.  Call after
    the topology is complete; may be called again after changes. *)

(** {1 Moving packets} *)

val originate : node -> Wire.Packet.t -> unit
(** Inject a packet at its source host: routes and transmits it. *)

val forward : node -> Wire.Packet.t -> unit
(** Route the packet from this node towards [packet.dst], charging one hop.
    Drops (with a trace event) when hops run out or no route exists. *)

val forward_on : node -> link -> Wire.Packet.t -> unit
(** Forward on an explicit link, bypassing the route lookup. *)

val route_for : node -> Wire.Addr.t -> link option

val min_poll_delay : float
(** The minimum self-poll backoff (in virtual seconds) a link transmitter
    waits when a qdisc claims readiness at the current instant but refuses
    to dequeue — e.g. a token bucket momentarily short of one packet's
    tokens.  Without this floor the transmitter would re-poll at the same
    virtual time forever and the event loop would spin. *)

(** {1 Introspection} *)

val links_into : node -> link list
(** All links whose destination is this node (for pushback's per-upstream
    rate limiting). *)

val links_out_of : node -> link list
val link_id : link -> int
val link_src : link -> node
val link_dst : link -> node
val link_qdisc : link -> Qdisc.t
val link_bandwidth : link -> float
val link_delay : link -> float
val link_tx_packets : link -> int
val link_tx_bytes : link -> int
val link_set_limiter : link -> (Wire.Packet.t -> bool) option -> unit
(** An admission predicate consulted before the qdisc on every enqueue
    ([false] = drop).  Pushback installs its per-upstream-link rate limits
    here. *)

val nodes : t -> node list
val find_node_by_addr : t -> Wire.Addr.t -> node option
