(** Canned topologies for the paper's experiments.

    {!dumbbell} is Fig. 7: 10 legitimate users and a variable number of
    attackers on one side of a 10 Mb/s, 10 ms bottleneck; the destination
    (and optionally a colluder) on the other side.  Every access link is
    10 ms, giving the paper's 60 ms RTT.  Handlers are installed separately
    by the protocol/agent layers; nodes start with a sink handler. *)

type t = {
  net : Net.t;
  left : Net.node;  (** bottleneck ingress router *)
  right : Net.node;  (** bottleneck egress router *)
  users : Net.node array;
  attackers : Net.node array;
  destination : Net.node;
  colluder : Net.node option;
  bottleneck : Net.link;  (** left -> right, the congested direction *)
  bottleneck_reverse : Net.link;
}
(** A built dumbbell: both routers, every endpoint node, and the two
    bottleneck directions, ready for handler installation. *)

val user_addr : int -> Wire.Addr.t
(** Address of legitimate user [i] (0-based). *)

val attacker_addr : int -> Wire.Addr.t
(** Address of attacker [i] (0-based); disjoint from the user range. *)

val destination_addr : Wire.Addr.t
(** Address of the shared destination behind the bottleneck. *)

val colluder_addr : Wire.Addr.t
(** Address of the optional colluder co-located with the destination. *)

val dumbbell :
  ?bottleneck_bps:float ->
  ?bottleneck_delay:float ->
  ?access_bps:float ->
  ?access_delay:float ->
  ?n_users:int ->
  ?with_colluder:bool ->
  n_attackers:int ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  Sim.t ->
  t
(** Defaults: 10 Mb/s / 10 ms bottleneck, 10 Mb/s / 10 ms access links,
    10 users, no colluder.  [make_qdisc] builds the queue for every
    unidirectional link (rate limits inside schemes are fractions of the
    given bandwidth).  Routes are computed before returning. *)

val labeled_links : t -> (string * Net.link) list
(** Deterministic fault-targeting labels: [("bottleneck", _)] and
    [("rbottleneck", _)] first, then every access link as ["src->dst"] in
    creation order.  The fault layer ({!module:Faults}) resolves spec
    targets against these labels. *)

type chain = {
  chain_net : Net.t;
  chain_routers : Net.node array;
  chain_source : Net.node;
  chain_attacker : Net.node;
  chain_destination : Net.node;
}
(** A built linear chain (see {!chain}): routers in path order plus the
    three endpoints hanging off it. *)

val chain_source_addr : Wire.Addr.t
(** Address of the chain's legitimate source. *)

val chain_attacker_addr : Wire.Addr.t
(** Address of the chain's attacker. *)

val chain_destination_addr : Wire.Addr.t
(** Address of the chain's destination. *)

val chain :
  ?hops:int ->
  ?bandwidth_bps:float ->
  ?delay:float ->
  ?attacker_entry:int ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  Sim.t ->
  chain
(** A linear chain of [hops] routers with the source on router 0, the
    destination past the last router, and an attacker joining at router
    [attacker_entry].  Used by the incremental-deployment example: upgrade
    a prefix/suffix of the routers and observe attack localization. *)

(** {1 Scale topologies}

    Generators for the million-sender scale experiments (DESIGN.md
    section 13).  Unlike {!dumbbell} and {!chain} they do {e not} compute
    routes: attach host nodes first (e.g. with {!attach_host}), then run
    {!Net.compute_routes} once, paying the O(V * E) relaxation a single
    time. *)

val attach_host :
  ?bandwidth_bps:float ->
  ?delay:float ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  net:Net.t ->
  router:Net.node ->
  addr:Wire.Addr.t ->
  name:string ->
  unit ->
  Net.node
(** A host node duplex-linked to [router] (defaults: 10 Mb/s, 10 ms),
    starting with a sink handler like every generator-made node. *)

type fanin = {
  fi_net : Net.t;
  fi_routers : Net.node array;
      (** BFS order; the children of router [i] are
          [i * fanout + 1 .. i * fanout + fanout] *)
  fi_leaves : Net.node array;  (** the deepest level — sender attach points *)
  fi_root : Net.node;
  fi_destination : Net.node;
  fi_bottleneck : Net.link;  (** root -> destination, the congested hop *)
}
(** An ISP-style fan-in tree: edge routers aggregate through [depth]
    levels into one root whose link to the destination is the bottleneck. *)

val fanin_destination_addr : Wire.Addr.t

val fanin :
  ?depth:int ->
  ?fanout:int ->
  ?bottleneck_bps:float ->
  ?link_bps:float ->
  ?delay:float ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  Sim.t ->
  fanin
(** Defaults: 3 levels of 4-way fan-in (21 routers, 16 leaves), 100 Mb/s
    interior links, a 10 Mb/s bottleneck, 5 ms per hop. *)

type parking_lot = {
  pl_net : Net.t;
  pl_routers : Net.node array;  (** [segments + 1] routers in path order *)
  pl_segments : Net.link array;
      (** forward links [routers.(i) -> routers.(i+1)], each a bottleneck *)
  pl_exits : Net.node array;
      (** a sink host off [routers.(i + 1)]: traffic entering at router [i]
          addressed to exit [i] crosses exactly segment [i] *)
  pl_destination : Net.node;  (** past the last router — the full-path target *)
}
(** The multi-bottleneck parking lot: every segment link has the same
    (bottleneck) capacity, so cross-traffic entering mid-chain congests
    individual segments independently. *)

val parking_exit_addr : int -> Wire.Addr.t
val parking_destination_addr : Wire.Addr.t

val parking_lot :
  ?segments:int ->
  ?bottleneck_bps:float ->
  ?access_bps:float ->
  ?delay:float ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  Sim.t ->
  parking_lot
(** Defaults: 3 segments at 10 Mb/s, 100 Mb/s host access links, 5 ms per
    hop. *)

type power_law = {
  pw_net : Net.t;
  pw_routers : Net.node array;
  pw_degrees : int array;  (** final degree of each router, same order *)
  pw_core : Net.node;  (** the highest-degree router *)
  pw_destination : Net.node;  (** host off the core *)
  pw_bottleneck : Net.link;  (** core -> destination *)
}
(** An AS-like graph grown by preferential attachment (Barabasi-Albert),
    so router degrees follow a power law; the destination hangs off the
    emergent highest-degree core.  Deterministic under [seed]. *)

val power_law_destination_addr : Wire.Addr.t

val power_law :
  ?routers:int ->
  ?edges_per_node:int ->
  ?link_bps:float ->
  ?bottleneck_bps:float ->
  ?delay:float ->
  seed:int ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  Sim.t ->
  power_law
(** Defaults: 64 routers, 2 edges per new node, 100 Mb/s interior links,
    a 10 Mb/s bottleneck, 5 ms per hop. *)

(** {1 Partitioning for the parallel driver}

    Splits the node set into [k] connected, roughly balanced regions for
    {!Net.install_partitions}.  Deterministic: the first seed is the
    highest-degree node (lowest id on ties), later seeds come from
    farthest-point BFS sampling, and regions grow one node at a time with
    the currently smallest region expanding next in link-creation order.
    Hosts normally land with their access router, so the cut tends to run
    along the (positive-delay) core links. *)

val partition : k:int -> ?weights:float array -> Net.t -> int array
(** [partition ~k ?weights net] maps [Net.node_id] to a partition index
    in [0 .. k-1].  [k = 1] assigns everything to partition 0.

    [weights], indexed by [Net.node_id], biases the balance: regions grow
    to equalize summed weight rather than node count, so a node expected
    to process most of the traffic (a flood victim, a fan-in root) ends
    up nearly alone in its region while the rest of the graph spreads
    over the others.  Weights scale freely — only ratios matter; negative
    entries clamp to zero.  Omitted, every node weighs 1.

    Raises [Invalid_argument] when [k < 1], [k] exceeds the node count,
    or [weights] length differs from the node count. *)
