(** Canned topologies for the paper's experiments.

    {!dumbbell} is Fig. 7: 10 legitimate users and a variable number of
    attackers on one side of a 10 Mb/s, 10 ms bottleneck; the destination
    (and optionally a colluder) on the other side.  Every access link is
    10 ms, giving the paper's 60 ms RTT.  Handlers are installed separately
    by the protocol/agent layers; nodes start with a sink handler. *)

type t = {
  net : Net.t;
  left : Net.node;  (** bottleneck ingress router *)
  right : Net.node;  (** bottleneck egress router *)
  users : Net.node array;
  attackers : Net.node array;
  destination : Net.node;
  colluder : Net.node option;
  bottleneck : Net.link;  (** left -> right, the congested direction *)
  bottleneck_reverse : Net.link;
}
(** A built dumbbell: both routers, every endpoint node, and the two
    bottleneck directions, ready for handler installation. *)

val user_addr : int -> Wire.Addr.t
(** Address of legitimate user [i] (0-based). *)

val attacker_addr : int -> Wire.Addr.t
(** Address of attacker [i] (0-based); disjoint from the user range. *)

val destination_addr : Wire.Addr.t
(** Address of the shared destination behind the bottleneck. *)

val colluder_addr : Wire.Addr.t
(** Address of the optional colluder co-located with the destination. *)

val dumbbell :
  ?bottleneck_bps:float ->
  ?bottleneck_delay:float ->
  ?access_bps:float ->
  ?access_delay:float ->
  ?n_users:int ->
  ?with_colluder:bool ->
  n_attackers:int ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  Sim.t ->
  t
(** Defaults: 10 Mb/s / 10 ms bottleneck, 10 Mb/s / 10 ms access links,
    10 users, no colluder.  [make_qdisc] builds the queue for every
    unidirectional link (rate limits inside schemes are fractions of the
    given bandwidth).  Routes are computed before returning. *)

val labeled_links : t -> (string * Net.link) list
(** Deterministic fault-targeting labels: [("bottleneck", _)] and
    [("rbottleneck", _)] first, then every access link as ["src->dst"] in
    creation order.  The fault layer ({!module:Faults}) resolves spec
    targets against these labels. *)

type chain = {
  chain_net : Net.t;
  chain_routers : Net.node array;
  chain_source : Net.node;
  chain_attacker : Net.node;
  chain_destination : Net.node;
}
(** A built linear chain (see {!chain}): routers in path order plus the
    three endpoints hanging off it. *)

val chain_source_addr : Wire.Addr.t
(** Address of the chain's legitimate source. *)

val chain_attacker_addr : Wire.Addr.t
(** Address of the chain's attacker. *)

val chain_destination_addr : Wire.Addr.t
(** Address of the chain's destination. *)

val chain :
  ?hops:int ->
  ?bandwidth_bps:float ->
  ?delay:float ->
  ?attacker_entry:int ->
  make_qdisc:(bandwidth_bps:float -> Qdisc.t) ->
  Sim.t ->
  chain
(** A linear chain of [hops] routers with the source on router 0, the
    destination past the last router, and an attacker joining at router
    [attacker_entry].  Used by the incremental-deployment example: upgrade
    a prefix/suffix of the routers and observe attack localization. *)
