type t = {
  net : Net.t;
  left : Net.node;
  right : Net.node;
  users : Net.node array;
  attackers : Net.node array;
  destination : Net.node;
  colluder : Net.node option;
  bottleneck : Net.link;
  bottleneck_reverse : Net.link;
}

let user_addr i = Wire.Addr.of_int (0x0a000000 + i)
let attacker_addr i = Wire.Addr.of_int (0x0b000000 + i)
let destination_addr = Wire.Addr.of_int 0xc0a80001
let colluder_addr = Wire.Addr.of_int 0xc0a80002

let sink_handler _node ~in_link:_ _p = ()

let dumbbell ?(bottleneck_bps = 10e6) ?(bottleneck_delay = 0.010) ?(access_bps = 10e6)
    ?(access_delay = 0.010) ?(n_users = 10) ?(with_colluder = false) ~n_attackers ~make_qdisc sim =
  if n_users < 0 || n_attackers < 0 then invalid_arg "Topology.dumbbell: negative host count";
  let net = Net.create sim in
  let left = Net.add_node ~name:"left-router" net sink_handler in
  let right = Net.add_node ~name:"right-router" net sink_handler in
  let attach host bps delay =
    ignore (Net.duplex net host left ~bandwidth_bps:bps ~delay ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bps))
  in
  let users =
    Array.init n_users (fun i ->
        let u = Net.add_node ~addr:(user_addr i) ~name:(Printf.sprintf "user%d" i) net sink_handler in
        attach u access_bps access_delay;
        u)
  in
  let attackers =
    Array.init n_attackers (fun i ->
        let a =
          Net.add_node ~addr:(attacker_addr i) ~name:(Printf.sprintf "attacker%d" i) net sink_handler
        in
        attach a access_bps access_delay;
        a)
  in
  let bottleneck, bottleneck_reverse =
    Net.duplex net left right ~bandwidth_bps:bottleneck_bps ~delay:bottleneck_delay
      ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bottleneck_bps)
  in
  let destination = Net.add_node ~addr:destination_addr ~name:"destination" net sink_handler in
  ignore
    (Net.duplex net right destination ~bandwidth_bps:access_bps ~delay:access_delay
       ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:access_bps));
  let colluder =
    if with_colluder then begin
      let c = Net.add_node ~addr:colluder_addr ~name:"colluder" net sink_handler in
      ignore
        (Net.duplex net right c ~bandwidth_bps:access_bps ~delay:access_delay
           ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:access_bps));
      Some c
    end
    else None
  in
  Net.compute_routes net;
  { net; left; right; users; attackers; destination; colluder; bottleneck; bottleneck_reverse }

let labeled_links t =
  let label l = Net.node_name (Net.link_src l) ^ "->" ^ Net.node_name (Net.link_dst l) in
  ("bottleneck", t.bottleneck)
  :: ("rbottleneck", t.bottleneck_reverse)
  :: List.filter_map
       (fun l ->
         if l == t.bottleneck || l == t.bottleneck_reverse then None else Some (label l, l))
       (Net.links t.net)

type chain = {
  chain_net : Net.t;
  chain_routers : Net.node array;
  chain_source : Net.node;
  chain_attacker : Net.node;
  chain_destination : Net.node;
}

let chain_source_addr = Wire.Addr.of_int 0x0a010001
let chain_attacker_addr = Wire.Addr.of_int 0x0b010001
let chain_destination_addr = Wire.Addr.of_int 0xc0a90001

let chain ?(hops = 4) ?(bandwidth_bps = 10e6) ?(delay = 0.005) ?(attacker_entry = 0) ~make_qdisc sim
    =
  if hops < 1 then invalid_arg "Topology.chain: need at least one router";
  if attacker_entry < 0 || attacker_entry >= hops then
    invalid_arg "Topology.chain: attacker entry out of range";
  let net = Net.create sim in
  let routers =
    Array.init hops (fun i -> Net.add_node ~name:(Printf.sprintf "router%d" i) net sink_handler)
  in
  let connect a b =
    ignore
      (Net.duplex net a b ~bandwidth_bps ~delay ~qdisc:(fun () -> make_qdisc ~bandwidth_bps))
  in
  for i = 0 to hops - 2 do
    connect routers.(i) routers.(i + 1)
  done;
  let chain_source = Net.add_node ~addr:chain_source_addr ~name:"source" net sink_handler in
  connect chain_source routers.(0);
  let chain_attacker = Net.add_node ~addr:chain_attacker_addr ~name:"attacker" net sink_handler in
  connect chain_attacker routers.(attacker_entry);
  let chain_destination =
    Net.add_node ~addr:chain_destination_addr ~name:"destination" net sink_handler
  in
  connect routers.(hops - 1) chain_destination;
  Net.compute_routes net;
  { chain_net = net; chain_routers = routers; chain_source; chain_attacker; chain_destination }

(* --- scale topologies --------------------------------------------------- *)
(* Generators for the million-sender scale experiments (DESIGN.md section
   13).  Unlike [dumbbell]/[chain] these do NOT compute routes: the caller
   attaches host nodes (users, aggregate-attacker ingress points) first and
   runs [Net.compute_routes] once, paying the O(V * E) relaxation a single
   time. *)

let attach_host ?(bandwidth_bps = 10e6) ?(delay = 0.010) ~make_qdisc ~net ~router ~addr ~name ()
    =
  let h = Net.add_node ~addr ~name net sink_handler in
  ignore
    (Net.duplex net h router ~bandwidth_bps ~delay ~qdisc:(fun () -> make_qdisc ~bandwidth_bps));
  h

type fanin = {
  fi_net : Net.t;
  fi_routers : Net.node array;
  fi_leaves : Net.node array;
  fi_root : Net.node;
  fi_destination : Net.node;
  fi_bottleneck : Net.link;
}

let fanin_destination_addr = Wire.Addr.of_int 0xc0ac0001

let fanin ?(depth = 3) ?(fanout = 4) ?(bottleneck_bps = 10e6) ?(link_bps = 100e6)
    ?(delay = 0.005) ~make_qdisc sim =
  if depth < 1 then invalid_arg "Topology.fanin: depth must be at least 1";
  if fanout < 1 then invalid_arg "Topology.fanin: fanout must be at least 1";
  let net = Net.create sim in
  (* Routers in BFS order: index 0 is the root; the children of router [i]
     are routers [i * fanout + 1 .. i * fanout + fanout]. *)
  let n_routers = ref 1 and level = ref 1 in
  for _ = 2 to depth do
    level := !level * fanout;
    n_routers := !n_routers + !level
  done;
  let routers =
    Array.init !n_routers (fun i ->
        Net.add_node ~name:(Printf.sprintf "fanin-r%d" i) net sink_handler)
  in
  for i = 1 to !n_routers - 1 do
    let parent = (i - 1) / fanout in
    ignore
      (Net.duplex net routers.(i) routers.(parent) ~bandwidth_bps:link_bps ~delay
         ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:link_bps))
  done;
  let first_leaf = if depth = 1 then 0 else !n_routers - !level in
  let leaves = Array.sub routers first_leaf (!n_routers - first_leaf) in
  let destination =
    Net.add_node ~addr:fanin_destination_addr ~name:"destination" net sink_handler
  in
  let bottleneck, _ =
    Net.duplex net routers.(0) destination ~bandwidth_bps:bottleneck_bps ~delay
      ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bottleneck_bps)
  in
  {
    fi_net = net;
    fi_routers = routers;
    fi_leaves = leaves;
    fi_root = routers.(0);
    fi_destination = destination;
    fi_bottleneck = bottleneck;
  }

type parking_lot = {
  pl_net : Net.t;
  pl_routers : Net.node array;
  pl_segments : Net.link array;
  pl_exits : Net.node array;
  pl_destination : Net.node;
}

let parking_exit_addr i = Wire.Addr.of_int (0xc0aa0000 + i)
let parking_destination_addr = Wire.Addr.of_int 0xc0ab0001

let parking_lot ?(segments = 3) ?(bottleneck_bps = 10e6) ?(access_bps = 100e6) ?(delay = 0.005)
    ~make_qdisc sim =
  if segments < 1 then invalid_arg "Topology.parking_lot: need at least one segment";
  let net = Net.create sim in
  let routers =
    Array.init (segments + 1) (fun i ->
        Net.add_node ~name:(Printf.sprintf "pl-r%d" i) net sink_handler)
  in
  let seg_links =
    Array.init segments (fun i ->
        let fwd, _ =
          Net.duplex net routers.(i) routers.(i + 1) ~bandwidth_bps:bottleneck_bps ~delay
            ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bottleneck_bps)
        in
        fwd)
  in
  (* A sink host off each interior/egress router: a short flow entering at
     router [i] and exiting at router [i + 1] crosses exactly segment [i],
     which is what makes the chain multi-bottleneck. *)
  let exits =
    Array.init segments (fun i ->
        attach_host ~bandwidth_bps:access_bps ~delay ~make_qdisc ~net ~router:routers.(i + 1)
          ~addr:(parking_exit_addr i)
          ~name:(Printf.sprintf "pl-exit%d" i)
          ())
  in
  let destination =
    attach_host ~bandwidth_bps:access_bps ~delay ~make_qdisc ~net ~router:routers.(segments)
      ~addr:parking_destination_addr ~name:"destination" ()
  in
  {
    pl_net = net;
    pl_routers = routers;
    pl_segments = seg_links;
    pl_exits = exits;
    pl_destination = destination;
  }

type power_law = {
  pw_net : Net.t;
  pw_routers : Net.node array;
  pw_degrees : int array;
  pw_core : Net.node;
  pw_destination : Net.node;
  pw_bottleneck : Net.link;
}

let power_law_destination_addr = Wire.Addr.of_int 0xc0ad0001

let power_law ?(routers = 64) ?(edges_per_node = 2) ?(link_bps = 100e6) ?(bottleneck_bps = 10e6)
    ?(delay = 0.005) ~seed ~make_qdisc sim =
  let m = edges_per_node in
  if m < 1 then invalid_arg "Topology.power_law: edges_per_node must be at least 1";
  if routers < m + 1 then invalid_arg "Topology.power_law: need more routers than edges_per_node";
  let net = Net.create sim in
  let nodes =
    Array.init routers (fun i ->
        Net.add_node ~name:(Printf.sprintf "as%d" i) net sink_handler)
  in
  let degrees = Array.make routers 0 in
  (* Preferential attachment (Barabasi-Albert): the chance a new node links
     to [v] is proportional to [v]'s degree, sampled from a flat list where
     each edge contributes both endpoints.  Deterministic under [seed]. *)
  let endpoints = ref [] and n_endpoints = ref 0 in
  let rng = Rng.create ~seed in
  let connect a b =
    ignore
      (Net.duplex net nodes.(a) nodes.(b) ~bandwidth_bps:link_bps ~delay
         ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:link_bps));
    degrees.(a) <- degrees.(a) + 1;
    degrees.(b) <- degrees.(b) + 1;
    endpoints := a :: b :: !endpoints;
    n_endpoints := !n_endpoints + 2
  in
  (* Seed graph: a path over the first m + 1 routers. *)
  for i = 1 to m do
    connect (i - 1) i
  done;
  let flat = ref (Array.of_list !endpoints) in
  let flat_len = ref !n_endpoints in
  let push_edges j targets =
    List.iter
      (fun v ->
        connect j v;
        let a = !flat in
        let need = !flat_len + 2 in
        if need > Array.length a then begin
          let bigger = Array.make (max 16 (2 * Array.length a)) 0 in
          Array.blit a 0 bigger 0 !flat_len;
          flat := bigger
        end;
        !flat.(!flat_len) <- j;
        !flat.(!flat_len + 1) <- v;
        flat_len := !flat_len + 2)
      targets
  in
  for j = m + 1 to routers - 1 do
    let picked = ref [] in
    let tries = ref 0 in
    while List.length !picked < m && !tries < 64 * m do
      incr tries;
      let v = !flat.(Rng.int rng !flat_len) in
      if not (List.mem v !picked) then picked := v :: !picked
    done;
    (* Degenerate fallback (tiny graphs): take the first unpicked nodes. *)
    let v = ref 0 in
    while List.length !picked < m do
      if !v <> j && not (List.mem !v !picked) then picked := !v :: !picked;
      incr v
    done;
    push_edges j (List.rev !picked)
  done;
  let core = ref 0 in
  Array.iteri (fun i d -> if d > degrees.(!core) then core := i) degrees;
  let destination =
    Net.add_node ~addr:power_law_destination_addr ~name:"destination" net sink_handler
  in
  let bottleneck, _ =
    Net.duplex net nodes.(!core) destination ~bandwidth_bps:bottleneck_bps ~delay
      ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bottleneck_bps)
  in
  {
    pw_net = net;
    pw_routers = nodes;
    pw_degrees = degrees;
    pw_core = nodes.(!core);
    pw_destination = destination;
    pw_bottleneck = bottleneck;
  }

(* --- graph partitioning for the parallel driver ------------------------- *)

(* Split the node set into [k] roughly weight-balanced regions for
   [Net.install_partitions] (DESIGN.md section 14).  Deterministic by
   construction: seeds come from farthest-point BFS sampling (first seed =
   highest degree, lowest id on ties; later ties broken by the larger
   summed distance to every earlier seed, so a central first seed does
   not collapse the sampling into id order), then regions grow one node
   at a time with the currently-lightest region expanding next, scanning
   its frontier in creation order.  Growing lightest-first keeps the root
   of a fan-in tree from swallowing every equidistant subtree, which is
   what a plain multi-source BFS would do.

   Growth alone cannot balance a hub-and-spoke graph: once the side
   regions exhaust their subtrees, the hub region holds the only live
   frontier and absorbs everything still unassigned.  A final rebalance
   pass therefore moves the largest movable nodes from the heaviest to
   the lightest region while that narrows the spread.  Regions may end
   up non-contiguous — correctness never needed contiguity, since every
   cross-partition link just rides a mailbox; the cost is only extra
   exchange traffic and possibly a smaller lookahead.

   Hosts hang off their access router by a single link, so they land in
   the router's region unless the balance rule needs them elsewhere — the
   cut then crosses their (positive-delay) access link, which is still a
   valid lookahead contributor. *)
let partition ~k ?weights net =
  let nodes = Net.nodes net in
  let n = List.length nodes in
  if k < 1 then invalid_arg "Topology.partition: need at least one partition";
  if k > n then invalid_arg "Topology.partition: more partitions than nodes";
  (match weights with
  | Some w when Array.length w <> n ->
      invalid_arg "Topology.partition: weights length must equal node count"
  | _ -> ());
  let weight i = match weights with None -> 1. | Some w -> Float.max 0. w.(i) in
  let parts = Array.make n (-1) in
  if k = 1 then Array.map (fun _ -> 0) parts
  else begin
    (* Undirected adjacency in link-creation order (duplex links appear
       once per direction; duplicates are harmless to BFS). *)
    let adj = Array.make n [] in
    let degree = Array.make n 0 in
    List.iter
      (fun l ->
        let s = Net.node_id (Net.link_src l) and d = Net.node_id (Net.link_dst l) in
        adj.(s) <- d :: adj.(s);
        adj.(d) <- s :: adj.(d);
        degree.(s) <- degree.(s) + 1;
        degree.(d) <- degree.(d) + 1)
      (Net.links net);
    Array.iteri (fun i l -> adj.(i) <- List.rev l) adj;
    (* Seed 0: the highest-degree node (the natural hub); later seeds by
       farthest-point sampling — the node maximizing BFS distance to the
       nearest existing seed, lowest id on ties. *)
    let seeds = Array.make k 0 in
    let best = ref 0 in
    Array.iteri (fun i d -> if d > degree.(!best) then best := i) degree;
    seeds.(0) <- !best;
    let q = Queue.create () in
    let bfs_dist source =
      let d = Array.make n max_int in
      d.(source) <- 0;
      Queue.clear q;
      Queue.push source q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if d.(v) > d.(u) + 1 then begin
              d.(v) <- d.(u) + 1;
              Queue.push v q
            end)
          adj.(u)
      done;
      d
    in
    (* [dist]: distance to the nearest seed; [sum_dist]: summed distance
       to all seeds so far, the tie-break that spreads seeds over
       distinct branches when a central first seed puts most of the
       graph at one and the same nearest-seed distance. *)
    let dist = bfs_dist seeds.(0) in
    let sum_dist = Array.map (fun d -> if d = max_int then 0 else d) dist in
    for r = 1 to k - 1 do
      let far = ref (-1) in
      Array.iteri
        (fun i d ->
          if
            d < max_int
            && (!far < 0
               || d > dist.(!far)
               || (d = dist.(!far) && sum_dist.(i) > sum_dist.(!far)))
          then far := i)
        dist;
      (* A graph with fewer reachable nodes than partitions degenerates;
         fall back to any still-unseeded node. *)
      let far = if !far >= 0 && dist.(!far) > 0 then !far else
        (let f = ref (-1) in
         Array.iteri (fun i d -> if !f < 0 && d <> 0 then f := i) dist;
         if !f >= 0 then !f else r)
      in
      seeds.(r) <- far;
      let d = bfs_dist far in
      Array.iteri
        (fun i di ->
          if di < max_int then begin
            if di < dist.(i) then dist.(i) <- di;
            sum_dist.(i) <- sum_dist.(i) + di
          end)
        d
    done;
    (* Balanced region growing: the lightest region (ties to the lowest
       region index) expands by one node per step from its FIFO frontier.
       Without [weights] every node weighs 1 and this balances node
       counts; with them a region that swallows a hot node (a traffic
       sink) stops growing and the rest of the graph spreads over the
       remaining regions. *)
    let frontier = Array.init k (fun _ -> Queue.create ()) in
    let size = Array.make k 0. in
    let assigned = ref 0 in
    Array.iteri
      (fun r s ->
        if parts.(s) = -1 then begin
          parts.(s) <- r;
          size.(r) <- size.(r) +. weight s;
          incr assigned;
          Queue.push s frontier.(r)
        end)
      seeds;
    let active () =
      let best = ref (-1) in
      for r = k - 1 downto 0 do
        if not (Queue.is_empty frontier.(r)) then
          if !best < 0 || size.(r) <= size.(!best) then best := r
      done;
      !best
    in
    let continue = ref true in
    while !continue && !assigned < n do
      match active () with
      | -1 -> continue := false
      | r ->
          let u = Queue.pop frontier.(r) in
          let rest = ref adj.(u) and grown = ref false in
          while (not !grown) && !rest <> [] do
            match !rest with
            | [] -> ()
            | v :: tl ->
                rest := tl;
                if parts.(v) = -1 then begin
                  parts.(v) <- r;
                  size.(r) <- size.(r) +. weight v;
                  incr assigned;
                  Queue.push v frontier.(r);
                  grown := true
                end
          done;
          (* [u] grew the region: it may have more unassigned neighbours,
             so it returns to the frontier (behind the newcomer). *)
          if !grown then Queue.push u frontier.(r)
    done;
    (* Disconnected leftovers (none in the canned generators) go to the
       lightest region to keep every simulator busy. *)
    Array.iteri
      (fun i p ->
        if p = -1 then begin
          let smallest = ref 0 in
          for r = 1 to k - 1 do
            if size.(r) < size.(!smallest) then smallest := r
          done;
          parts.(i) <- !smallest;
          size.(!smallest) <- size.(!smallest) +. weight i
        end)
      parts;
    (* Rebalance: repeatedly move the heaviest movable node (largest
       weight strictly below the heaviest-to-lightest gap — any such
       move shrinks the spread; ties to the lowest id) out of the
       heaviest region.  Bounded by 4n moves, though each move strictly
       decreases the summed squared region weight, so it converges long
       before that on real graphs. *)
    let budget = ref (4 * n) in
    let improved = ref true in
    while !improved && !budget > 0 do
      improved := false;
      decr budget;
      let h = ref 0 and l = ref 0 in
      for r = 1 to k - 1 do
        if size.(r) > size.(!h) then h := r;
        if size.(r) < size.(!l) then l := r
      done;
      if !h <> !l then begin
        let gap = size.(!h) -. size.(!l) in
        let u = ref (-1) in
        Array.iteri
          (fun i p ->
            if p = !h then
              let wi = weight i in
              if wi > 0. && wi < gap && (!u < 0 || wi > weight !u) then u := i)
          parts;
        match !u with
        | -1 -> ()
        | i ->
            parts.(i) <- !l;
            size.(!h) <- size.(!h) -. weight i;
            size.(!l) <- size.(!l) +. weight i;
            improved := true
      end
    done;
    parts
  end
