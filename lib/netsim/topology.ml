type t = {
  net : Net.t;
  left : Net.node;
  right : Net.node;
  users : Net.node array;
  attackers : Net.node array;
  destination : Net.node;
  colluder : Net.node option;
  bottleneck : Net.link;
  bottleneck_reverse : Net.link;
}

let user_addr i = Wire.Addr.of_int (0x0a000000 + i)
let attacker_addr i = Wire.Addr.of_int (0x0b000000 + i)
let destination_addr = Wire.Addr.of_int 0xc0a80001
let colluder_addr = Wire.Addr.of_int 0xc0a80002

let sink_handler _node ~in_link:_ _p = ()

let dumbbell ?(bottleneck_bps = 10e6) ?(bottleneck_delay = 0.010) ?(access_bps = 10e6)
    ?(access_delay = 0.010) ?(n_users = 10) ?(with_colluder = false) ~n_attackers ~make_qdisc sim =
  if n_users < 0 || n_attackers < 0 then invalid_arg "Topology.dumbbell: negative host count";
  let net = Net.create sim in
  let left = Net.add_node ~name:"left-router" net sink_handler in
  let right = Net.add_node ~name:"right-router" net sink_handler in
  let attach host bps delay =
    ignore (Net.duplex net host left ~bandwidth_bps:bps ~delay ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bps))
  in
  let users =
    Array.init n_users (fun i ->
        let u = Net.add_node ~addr:(user_addr i) ~name:(Printf.sprintf "user%d" i) net sink_handler in
        attach u access_bps access_delay;
        u)
  in
  let attackers =
    Array.init n_attackers (fun i ->
        let a =
          Net.add_node ~addr:(attacker_addr i) ~name:(Printf.sprintf "attacker%d" i) net sink_handler
        in
        attach a access_bps access_delay;
        a)
  in
  let bottleneck, bottleneck_reverse =
    Net.duplex net left right ~bandwidth_bps:bottleneck_bps ~delay:bottleneck_delay
      ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bottleneck_bps)
  in
  let destination = Net.add_node ~addr:destination_addr ~name:"destination" net sink_handler in
  ignore
    (Net.duplex net right destination ~bandwidth_bps:access_bps ~delay:access_delay
       ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:access_bps));
  let colluder =
    if with_colluder then begin
      let c = Net.add_node ~addr:colluder_addr ~name:"colluder" net sink_handler in
      ignore
        (Net.duplex net right c ~bandwidth_bps:access_bps ~delay:access_delay
           ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:access_bps));
      Some c
    end
    else None
  in
  Net.compute_routes net;
  { net; left; right; users; attackers; destination; colluder; bottleneck; bottleneck_reverse }

let labeled_links t =
  let label l = Net.node_name (Net.link_src l) ^ "->" ^ Net.node_name (Net.link_dst l) in
  ("bottleneck", t.bottleneck)
  :: ("rbottleneck", t.bottleneck_reverse)
  :: List.filter_map
       (fun l ->
         if l == t.bottleneck || l == t.bottleneck_reverse then None else Some (label l, l))
       (Net.links t.net)

type chain = {
  chain_net : Net.t;
  chain_routers : Net.node array;
  chain_source : Net.node;
  chain_attacker : Net.node;
  chain_destination : Net.node;
}

let chain_source_addr = Wire.Addr.of_int 0x0a010001
let chain_attacker_addr = Wire.Addr.of_int 0x0b010001
let chain_destination_addr = Wire.Addr.of_int 0xc0a90001

let chain ?(hops = 4) ?(bandwidth_bps = 10e6) ?(delay = 0.005) ?(attacker_entry = 0) ~make_qdisc sim
    =
  if hops < 1 then invalid_arg "Topology.chain: need at least one router";
  if attacker_entry < 0 || attacker_entry >= hops then
    invalid_arg "Topology.chain: attacker entry out of range";
  let net = Net.create sim in
  let routers =
    Array.init hops (fun i -> Net.add_node ~name:(Printf.sprintf "router%d" i) net sink_handler)
  in
  let connect a b =
    ignore
      (Net.duplex net a b ~bandwidth_bps ~delay ~qdisc:(fun () -> make_qdisc ~bandwidth_bps))
  in
  for i = 0 to hops - 2 do
    connect routers.(i) routers.(i + 1)
  done;
  let chain_source = Net.add_node ~addr:chain_source_addr ~name:"source" net sink_handler in
  connect chain_source routers.(0);
  let chain_attacker = Net.add_node ~addr:chain_attacker_addr ~name:"attacker" net sink_handler in
  connect chain_attacker routers.(attacker_entry);
  let chain_destination =
    Net.add_node ~addr:chain_destination_addr ~name:"destination" net sink_handler
  in
  connect routers.(hops - 1) chain_destination;
  Net.compute_routes net;
  { chain_net = net; chain_routers = routers; chain_source; chain_attacker; chain_destination }

(* --- scale topologies --------------------------------------------------- *)
(* Generators for the million-sender scale experiments (DESIGN.md section
   13).  Unlike [dumbbell]/[chain] these do NOT compute routes: the caller
   attaches host nodes (users, aggregate-attacker ingress points) first and
   runs [Net.compute_routes] once, paying the O(V * E) relaxation a single
   time. *)

let attach_host ?(bandwidth_bps = 10e6) ?(delay = 0.010) ~make_qdisc ~net ~router ~addr ~name ()
    =
  let h = Net.add_node ~addr ~name net sink_handler in
  ignore
    (Net.duplex net h router ~bandwidth_bps ~delay ~qdisc:(fun () -> make_qdisc ~bandwidth_bps));
  h

type fanin = {
  fi_net : Net.t;
  fi_routers : Net.node array;
  fi_leaves : Net.node array;
  fi_root : Net.node;
  fi_destination : Net.node;
  fi_bottleneck : Net.link;
}

let fanin_destination_addr = Wire.Addr.of_int 0xc0ac0001

let fanin ?(depth = 3) ?(fanout = 4) ?(bottleneck_bps = 10e6) ?(link_bps = 100e6)
    ?(delay = 0.005) ~make_qdisc sim =
  if depth < 1 then invalid_arg "Topology.fanin: depth must be at least 1";
  if fanout < 1 then invalid_arg "Topology.fanin: fanout must be at least 1";
  let net = Net.create sim in
  (* Routers in BFS order: index 0 is the root; the children of router [i]
     are routers [i * fanout + 1 .. i * fanout + fanout]. *)
  let n_routers = ref 1 and level = ref 1 in
  for _ = 2 to depth do
    level := !level * fanout;
    n_routers := !n_routers + !level
  done;
  let routers =
    Array.init !n_routers (fun i ->
        Net.add_node ~name:(Printf.sprintf "fanin-r%d" i) net sink_handler)
  in
  for i = 1 to !n_routers - 1 do
    let parent = (i - 1) / fanout in
    ignore
      (Net.duplex net routers.(i) routers.(parent) ~bandwidth_bps:link_bps ~delay
         ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:link_bps))
  done;
  let first_leaf = if depth = 1 then 0 else !n_routers - !level in
  let leaves = Array.sub routers first_leaf (!n_routers - first_leaf) in
  let destination =
    Net.add_node ~addr:fanin_destination_addr ~name:"destination" net sink_handler
  in
  let bottleneck, _ =
    Net.duplex net routers.(0) destination ~bandwidth_bps:bottleneck_bps ~delay
      ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bottleneck_bps)
  in
  {
    fi_net = net;
    fi_routers = routers;
    fi_leaves = leaves;
    fi_root = routers.(0);
    fi_destination = destination;
    fi_bottleneck = bottleneck;
  }

type parking_lot = {
  pl_net : Net.t;
  pl_routers : Net.node array;
  pl_segments : Net.link array;
  pl_exits : Net.node array;
  pl_destination : Net.node;
}

let parking_exit_addr i = Wire.Addr.of_int (0xc0aa0000 + i)
let parking_destination_addr = Wire.Addr.of_int 0xc0ab0001

let parking_lot ?(segments = 3) ?(bottleneck_bps = 10e6) ?(access_bps = 100e6) ?(delay = 0.005)
    ~make_qdisc sim =
  if segments < 1 then invalid_arg "Topology.parking_lot: need at least one segment";
  let net = Net.create sim in
  let routers =
    Array.init (segments + 1) (fun i ->
        Net.add_node ~name:(Printf.sprintf "pl-r%d" i) net sink_handler)
  in
  let seg_links =
    Array.init segments (fun i ->
        let fwd, _ =
          Net.duplex net routers.(i) routers.(i + 1) ~bandwidth_bps:bottleneck_bps ~delay
            ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bottleneck_bps)
        in
        fwd)
  in
  (* A sink host off each interior/egress router: a short flow entering at
     router [i] and exiting at router [i + 1] crosses exactly segment [i],
     which is what makes the chain multi-bottleneck. *)
  let exits =
    Array.init segments (fun i ->
        attach_host ~bandwidth_bps:access_bps ~delay ~make_qdisc ~net ~router:routers.(i + 1)
          ~addr:(parking_exit_addr i)
          ~name:(Printf.sprintf "pl-exit%d" i)
          ())
  in
  let destination =
    attach_host ~bandwidth_bps:access_bps ~delay ~make_qdisc ~net ~router:routers.(segments)
      ~addr:parking_destination_addr ~name:"destination" ()
  in
  {
    pl_net = net;
    pl_routers = routers;
    pl_segments = seg_links;
    pl_exits = exits;
    pl_destination = destination;
  }

type power_law = {
  pw_net : Net.t;
  pw_routers : Net.node array;
  pw_degrees : int array;
  pw_core : Net.node;
  pw_destination : Net.node;
  pw_bottleneck : Net.link;
}

let power_law_destination_addr = Wire.Addr.of_int 0xc0ad0001

let power_law ?(routers = 64) ?(edges_per_node = 2) ?(link_bps = 100e6) ?(bottleneck_bps = 10e6)
    ?(delay = 0.005) ~seed ~make_qdisc sim =
  let m = edges_per_node in
  if m < 1 then invalid_arg "Topology.power_law: edges_per_node must be at least 1";
  if routers < m + 1 then invalid_arg "Topology.power_law: need more routers than edges_per_node";
  let net = Net.create sim in
  let nodes =
    Array.init routers (fun i ->
        Net.add_node ~name:(Printf.sprintf "as%d" i) net sink_handler)
  in
  let degrees = Array.make routers 0 in
  (* Preferential attachment (Barabasi-Albert): the chance a new node links
     to [v] is proportional to [v]'s degree, sampled from a flat list where
     each edge contributes both endpoints.  Deterministic under [seed]. *)
  let endpoints = ref [] and n_endpoints = ref 0 in
  let rng = Rng.create ~seed in
  let connect a b =
    ignore
      (Net.duplex net nodes.(a) nodes.(b) ~bandwidth_bps:link_bps ~delay
         ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:link_bps));
    degrees.(a) <- degrees.(a) + 1;
    degrees.(b) <- degrees.(b) + 1;
    endpoints := a :: b :: !endpoints;
    n_endpoints := !n_endpoints + 2
  in
  (* Seed graph: a path over the first m + 1 routers. *)
  for i = 1 to m do
    connect (i - 1) i
  done;
  let flat = ref (Array.of_list !endpoints) in
  let flat_len = ref !n_endpoints in
  let push_edges j targets =
    List.iter
      (fun v ->
        connect j v;
        let a = !flat in
        let need = !flat_len + 2 in
        if need > Array.length a then begin
          let bigger = Array.make (max 16 (2 * Array.length a)) 0 in
          Array.blit a 0 bigger 0 !flat_len;
          flat := bigger
        end;
        !flat.(!flat_len) <- j;
        !flat.(!flat_len + 1) <- v;
        flat_len := !flat_len + 2)
      targets
  in
  for j = m + 1 to routers - 1 do
    let picked = ref [] in
    let tries = ref 0 in
    while List.length !picked < m && !tries < 64 * m do
      incr tries;
      let v = !flat.(Rng.int rng !flat_len) in
      if not (List.mem v !picked) then picked := v :: !picked
    done;
    (* Degenerate fallback (tiny graphs): take the first unpicked nodes. *)
    let v = ref 0 in
    while List.length !picked < m do
      if !v <> j && not (List.mem !v !picked) then picked := !v :: !picked;
      incr v
    done;
    push_edges j (List.rev !picked)
  done;
  let core = ref 0 in
  Array.iteri (fun i d -> if d > degrees.(!core) then core := i) degrees;
  let destination =
    Net.add_node ~addr:power_law_destination_addr ~name:"destination" net sink_handler
  in
  let bottleneck, _ =
    Net.duplex net nodes.(!core) destination ~bandwidth_bps:bottleneck_bps ~delay
      ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bottleneck_bps)
  in
  {
    pw_net = net;
    pw_routers = nodes;
    pw_degrees = degrees;
    pw_core = nodes.(!core);
    pw_destination = destination;
    pw_bottleneck = bottleneck;
  }
