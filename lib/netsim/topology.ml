type t = {
  net : Net.t;
  left : Net.node;
  right : Net.node;
  users : Net.node array;
  attackers : Net.node array;
  destination : Net.node;
  colluder : Net.node option;
  bottleneck : Net.link;
  bottleneck_reverse : Net.link;
}

let user_addr i = Wire.Addr.of_int (0x0a000000 + i)
let attacker_addr i = Wire.Addr.of_int (0x0b000000 + i)
let destination_addr = Wire.Addr.of_int 0xc0a80001
let colluder_addr = Wire.Addr.of_int 0xc0a80002

let sink_handler _node ~in_link:_ _p = ()

let dumbbell ?(bottleneck_bps = 10e6) ?(bottleneck_delay = 0.010) ?(access_bps = 10e6)
    ?(access_delay = 0.010) ?(n_users = 10) ?(with_colluder = false) ~n_attackers ~make_qdisc sim =
  if n_users < 0 || n_attackers < 0 then invalid_arg "Topology.dumbbell: negative host count";
  let net = Net.create sim in
  let left = Net.add_node ~name:"left-router" net sink_handler in
  let right = Net.add_node ~name:"right-router" net sink_handler in
  let attach host bps delay =
    ignore (Net.duplex net host left ~bandwidth_bps:bps ~delay ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bps))
  in
  let users =
    Array.init n_users (fun i ->
        let u = Net.add_node ~addr:(user_addr i) ~name:(Printf.sprintf "user%d" i) net sink_handler in
        attach u access_bps access_delay;
        u)
  in
  let attackers =
    Array.init n_attackers (fun i ->
        let a =
          Net.add_node ~addr:(attacker_addr i) ~name:(Printf.sprintf "attacker%d" i) net sink_handler
        in
        attach a access_bps access_delay;
        a)
  in
  let bottleneck, bottleneck_reverse =
    Net.duplex net left right ~bandwidth_bps:bottleneck_bps ~delay:bottleneck_delay
      ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:bottleneck_bps)
  in
  let destination = Net.add_node ~addr:destination_addr ~name:"destination" net sink_handler in
  ignore
    (Net.duplex net right destination ~bandwidth_bps:access_bps ~delay:access_delay
       ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:access_bps));
  let colluder =
    if with_colluder then begin
      let c = Net.add_node ~addr:colluder_addr ~name:"colluder" net sink_handler in
      ignore
        (Net.duplex net right c ~bandwidth_bps:access_bps ~delay:access_delay
           ~qdisc:(fun () -> make_qdisc ~bandwidth_bps:access_bps));
      Some c
    end
    else None
  in
  Net.compute_routes net;
  { net; left; right; users; attackers; destination; colluder; bottleneck; bottleneck_reverse }

let labeled_links t =
  let label l = Net.node_name (Net.link_src l) ^ "->" ^ Net.node_name (Net.link_dst l) in
  ("bottleneck", t.bottleneck)
  :: ("rbottleneck", t.bottleneck_reverse)
  :: List.filter_map
       (fun l ->
         if l == t.bottleneck || l == t.bottleneck_reverse then None else Some (label l, l))
       (Net.links t.net)

type chain = {
  chain_net : Net.t;
  chain_routers : Net.node array;
  chain_source : Net.node;
  chain_attacker : Net.node;
  chain_destination : Net.node;
}

let chain_source_addr = Wire.Addr.of_int 0x0a010001
let chain_attacker_addr = Wire.Addr.of_int 0x0b010001
let chain_destination_addr = Wire.Addr.of_int 0xc0a90001

let chain ?(hops = 4) ?(bandwidth_bps = 10e6) ?(delay = 0.005) ?(attacker_entry = 0) ~make_qdisc sim
    =
  if hops < 1 then invalid_arg "Topology.chain: need at least one router";
  if attacker_entry < 0 || attacker_entry >= hops then
    invalid_arg "Topology.chain: attacker entry out of range";
  let net = Net.create sim in
  let routers =
    Array.init hops (fun i -> Net.add_node ~name:(Printf.sprintf "router%d" i) net sink_handler)
  in
  let connect a b =
    ignore
      (Net.duplex net a b ~bandwidth_bps ~delay ~qdisc:(fun () -> make_qdisc ~bandwidth_bps))
  in
  for i = 0 to hops - 2 do
    connect routers.(i) routers.(i + 1)
  done;
  let chain_source = Net.add_node ~addr:chain_source_addr ~name:"source" net sink_handler in
  connect chain_source routers.(0);
  let chain_attacker = Net.add_node ~addr:chain_attacker_addr ~name:"attacker" net sink_handler in
  connect chain_attacker routers.(attacker_entry);
  let chain_destination =
    Net.add_node ~addr:chain_destination_addr ~name:"destination" net sink_handler
  in
  connect routers.(hops - 1) chain_destination;
  Net.compute_routes net;
  { chain_net = net; chain_routers = routers; chain_source; chain_attacker; chain_destination }
