type t = {
  sim : Sim.t;
  mutable node_list : node list; (* reverse creation order *)
  mutable link_list : link list;
  mutable next_node_id : int;
  mutable next_link_id : int;
  mutable next_slot : int; (* dense index over addressed nodes *)
  by_addr : node Wire.Addr.Tbl.t;
  mutable trace : (event -> unit) option;
  mutable par : par option; (* conservative-PDES state; None = sequential *)
}

and node = {
  id : int;
  name : string;
  net : t;
  addr : Wire.Addr.t option;
  slot : int; (* dense destination index; -1 when unaddressed *)
  mutable nsim : Sim.t;
      (* the simulator this node's events run on: the net's simulator
         until [install_partitions] re-homes the node to its partition *)
  mutable handler : handler;
  mutable out_links : link list; (* reverse creation order *)
  mutable in_links : link list;
  mutable routes : link option array;
      (* next hop towards each addressed node, indexed by its [slot];
         filled by [compute_routes].  A dense array replaces the seed's
         per-node Hashtbl: route lookup is one shared address resolution
         plus an array load, with no per-node hashing on the forwarding
         path. *)
}

and handler = node -> in_link:link option -> Wire.Packet.t -> unit

and link = {
  lid : int;
  src : node;
  dst : node;
  bandwidth : float;
  delay : float;
  qdisc : Qdisc.t;
  mutable lsim : Sim.t;
      (* where the transmitter runs: the source node's simulator *)
  mutable xmail : (unit -> unit) Mailbox.t option;
      (* Some = this link crosses a partition cut: deliveries are pushed
         here (stamped with their arrival time) instead of being scheduled,
         and the exchange injects them into the destination partition at
         the next window barrier *)
  mutable busy : bool;
  mutable up : bool;
  mutable poll : Sim.handle option;
  mutable limiter : (Wire.Packet.t -> bool) option;
  mutable fault : (Wire.Packet.t -> fault_action) option;
  mutable tx_packets : int;
  mutable tx_bytes : int;
}

and par = {
  p_sims : Sim.t array; (* p_sims.(0) == the net's master simulator *)
  p_parts : int array; (* node id -> partition index *)
  p_lookahead : float; (* min cross-partition link delay *)
  p_xlinks : link array; (* cut links, creation order (exchange order) *)
  p_xdst : int array; (* destination partition per cut link *)
}

and fault_action = Fault_pass | Fault_lose | Fault_dup | Fault_delay of float

and event =
  | Queue_drop of link * Wire.Packet.t
  | Hops_exceeded of node * Wire.Packet.t
  | No_route of node * Wire.Packet.t
  | Transmit of link * Wire.Packet.t
  | Deliver of node * Wire.Packet.t
  | Link_fault of link * Wire.Packet.t

let create sim =
  {
    sim;
    node_list = [];
    link_list = [];
    next_node_id = 0;
    next_link_id = 0;
    next_slot = 0;
    by_addr = Wire.Addr.Tbl.create 64;
    trace = None;
    par = None;
  }

let sim t = t.sim
let now t = Sim.now t.sim
let set_trace t hook = t.trace <- hook

let emit t ev = match t.trace with None -> () | Some hook -> hook ev

let add_node ?addr ~name t handler =
  (match addr with
  | Some a when Wire.Addr.Tbl.mem t.by_addr a ->
      invalid_arg (Fmt.str "Net.add_node: duplicate address %a" Wire.Addr.pp a)
  | _ -> ());
  let slot =
    match addr with
    | Some _ ->
        let s = t.next_slot in
        t.next_slot <- t.next_slot + 1;
        s
    | None -> -1
  in
  let node =
    {
      id = t.next_node_id;
      name;
      net = t;
      addr;
      slot;
      nsim = t.sim;
      handler;
      out_links = [];
      in_links = [];
      routes = [||];
    }
  in
  t.next_node_id <- t.next_node_id + 1;
  t.node_list <- node :: t.node_list;
  (match addr with Some a -> Wire.Addr.Tbl.add t.by_addr a node | None -> ());
  node

let set_handler node h = node.handler <- h
let node_sim node = node.nsim
let node_name node = node.name
let node_addr node = node.addr
let node_id node = node.id

let link_oneway t ~src ~dst ~bandwidth_bps ~delay ~qdisc =
  if bandwidth_bps <= 0. then invalid_arg "Net.link_oneway: bandwidth must be positive";
  if delay < 0. then invalid_arg "Net.link_oneway: delay must be nonnegative";
  let link =
    {
      lid = t.next_link_id;
      src;
      dst;
      bandwidth = bandwidth_bps;
      delay;
      qdisc;
      lsim = src.nsim;
      xmail = None;
      busy = false;
      up = true;
      poll = None;
      limiter = None;
      fault = None;
      tx_packets = 0;
      tx_bytes = 0;
    }
  in
  t.next_link_id <- t.next_link_id + 1;
  t.link_list <- link :: t.link_list;
  src.out_links <- link :: src.out_links;
  dst.in_links <- link :: dst.in_links;
  link

let duplex t a b ~bandwidth_bps ~delay ~qdisc =
  let ab = link_oneway t ~src:a ~dst:b ~bandwidth_bps ~delay ~qdisc:(qdisc ()) in
  let ba = link_oneway t ~src:b ~dst:a ~bandwidth_bps ~delay ~qdisc:(qdisc ()) in
  (ab, ba)

(* When a qdisc reports [next_ready] at (or before) the current instant but
   still refuses to dequeue — a token bucket whose accumulated tokens round
   to just under one packet, say — re-polling at the same virtual time would
   spin the event loop forever.  Back off by this minimum delay (one virtual
   microsecond: far below any packet serialization time, so it never delays
   real service measurably). *)
let min_poll_delay = 1e-6

(* The transmitter: serialize the head packet, then propagate.  [kick]
   starts service if the link is idle and administratively up; when the
   qdisc is unready it arms a single poll timer at [next_ready].

   The per-link fault hook is consulted once per packet, after the packet
   has been dequeued and charged serialization time (a lost or duplicated
   packet still occupied the wire).  When [fault = None] the match reduces
   to the pass branch, which is the exact pre-fault code path — figure
   output with no injector installed is byte-identical. *)
(* Hand a propagation-done action to the destination side.  On a
   same-partition link this schedules on the (shared) simulator exactly as
   it always did; on a cut link the action rides the mailbox instead and is
   injected into the destination partition's simulator at the next window
   barrier.  The lookahead contract (arrival >= window end) is what makes
   the late injection legal. *)
let[@inline] propagate link ~extra thunk =
  match link.xmail with
  | None -> ignore (Sim.schedule ~kind:Sim.Kind.net_deliver link.lsim ~delay:(link.delay +. extra) thunk)
  | Some mb -> Mailbox.push mb ~time:(Sim.now link.lsim +. link.delay +. extra) thunk

let rec kick link =
  if (not link.busy) && link.up then begin
    let net = link.src.net in
    let sim = link.lsim in
    let time = Sim.now sim in
    (match link.poll with
    | Some h ->
        Sim.cancel h;
        link.poll <- None
    | None -> ());
    let p = Qdisc.dequeue link.qdisc ~now:time in
    if p != Qdisc.none then begin
        link.busy <- true;
        link.tx_packets <- link.tx_packets + 1;
        link.tx_bytes <- link.tx_bytes + Wire.Packet.size p;
        emit net (Transmit (link, p));
        let tx_time = float_of_int (Wire.Packet.size p) *. 8. /. link.bandwidth in
        match (match link.fault with None -> Fault_pass | Some f -> f p) with
        | Fault_pass ->
            ignore
              (Sim.schedule ~kind:Sim.Kind.net_transmit sim ~delay:tx_time (fun () ->
                   link.busy <- false;
                   propagate link ~extra:0. (fun () ->
                       emit net (Deliver (link.dst, p));
                       link.dst.handler link.dst ~in_link:(Some link) p);
                   kick link))
        | Fault_lose ->
            emit net (Link_fault (link, p));
            ignore
              (Sim.schedule ~kind:Sim.Kind.net_transmit sim ~delay:tx_time (fun () ->
                   link.busy <- false;
                   kick link))
        | Fault_dup ->
            emit net (Link_fault (link, p));
            let p2 = Wire.Packet.copy p in
            ignore
              (Sim.schedule ~kind:Sim.Kind.net_transmit sim ~delay:tx_time (fun () ->
                   link.busy <- false;
                   propagate link ~extra:0. (fun () ->
                       emit net (Deliver (link.dst, p));
                       link.dst.handler link.dst ~in_link:(Some link) p;
                       emit net (Deliver (link.dst, p2));
                       link.dst.handler link.dst ~in_link:(Some link) p2);
                   kick link))
        | Fault_delay extra ->
            emit net (Link_fault (link, p));
            let extra = Float.max 0. extra in
            ignore
              (Sim.schedule ~kind:Sim.Kind.net_transmit sim ~delay:tx_time (fun () ->
                   link.busy <- false;
                   propagate link ~extra (fun () ->
                       emit net (Deliver (link.dst, p));
                       link.dst.handler link.dst ~in_link:(Some link) p);
                   kick link))
    end
    else begin
      let at = Qdisc.next_ready link.qdisc ~now:time in
      if at < infinity then begin
        let delay = Float.max 0. (at -. time) in
        (* Never arm a zero-delay self-poll after an empty dequeue: the
           qdisc is momentarily unservable, so wait a token tick. *)
        let delay = if delay <= 0. then min_poll_delay else delay in
        link.poll <-
          Some
            (Sim.schedule ~kind:Sim.Kind.net_poll sim ~delay (fun () ->
                 link.poll <- None;
                 kick link))
      end
    end
  end

let enqueue_on link p =
  let net = link.src.net in
  let admitted = match link.limiter with None -> true | Some f -> f p in
  if not admitted then begin
    link.qdisc.Qdisc.stats.Qdisc.dropped <- link.qdisc.Qdisc.stats.Qdisc.dropped + 1;
    link.qdisc.Qdisc.stats.Qdisc.bytes_dropped <-
      link.qdisc.Qdisc.stats.Qdisc.bytes_dropped + Wire.Packet.size p;
    emit net (Queue_drop (link, p))
  end
  else if Qdisc.enqueue link.qdisc ~now:(Sim.now link.lsim) p then kick link
  else emit net (Queue_drop (link, p))

let charge_hop node p =
  if p.Wire.Packet.hops <= 0 then begin
    emit node.net (Hops_exceeded (node, p));
    false
  end
  else begin
    p.Wire.Packet.hops <- p.Wire.Packet.hops - 1;
    true
  end

let forward_on node link p =
  assert (link.src == node);
  if charge_hop node p then enqueue_on link p

let route_for node addr =
  match Wire.Addr.Tbl.find_opt node.net.by_addr addr with
  | Some dst when dst.slot < Array.length node.routes ->
      Array.unsafe_get node.routes dst.slot (* slot >= 0: addressed node *)
  | Some _ | None -> None

let forward node p =
  if charge_hop node p then begin
    match route_for node p.Wire.Packet.dst with
    | None -> emit node.net (No_route (node, p))
    | Some link -> enqueue_on link p
  end

let originate node p = forward node p

(* Shortest-path routing by BFS from every node over its out-links; ties
   resolve to the earliest-created link, which makes routes deterministic.
   Adjacency arrays (in link-creation order) are built once up front — the
   seed reversed each node's [out_links] list inside every BFS, i.e. O(V·E)
   list reversals per recompute. *)
let compute_routes t =
  let nodes = List.rev t.node_list in
  let n = t.next_node_id in
  let n_slots = t.next_slot in
  let adj = Array.make n [||] in
  List.iter (fun node -> adj.(node.id) <- Array.of_list (List.rev node.out_links)) nodes;
  (* Scratch reused across sources: [seen] is a generation stamp so it needs
     no clearing between BFS runs, [frontier] a preallocated ring (each node
     enters at most once). *)
  let seen = Array.make n (-1) in
  let first_hop : link option array = Array.make n None in
  let frontier = Array.make (max n 1) (-1) in
  let run_bfs source =
    source.routes <- Array.make n_slots None;
    seen.(source.id) <- source.id;
    first_hop.(source.id) <- None;
    frontier.(0) <- source.id;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let u = frontier.(!head) in
      incr head;
      let links = adj.(u) in
      for k = 0 to Array.length links - 1 do
        let link = links.(k) in
        let v = link.dst.id in
        if seen.(v) <> source.id then begin
          seen.(v) <- source.id;
          first_hop.(v) <- (if u = source.id then Some link else first_hop.(u));
          (match (link.dst.addr, first_hop.(v)) with
          | Some _, Some hop -> source.routes.(link.dst.slot) <- Some hop
          | _, _ -> ());
          frontier.(!tail) <- v;
          incr tail
        end
      done
    done
  in
  List.iter run_bfs nodes

let links_into node = List.rev node.in_links
let links_out_of node = List.rev node.out_links
let link_id link = link.lid
let link_src link = link.src
let link_dst link = link.dst
let link_qdisc link = link.qdisc
let link_bandwidth link = link.bandwidth
let link_delay link = link.delay
let link_tx_packets link = link.tx_packets
let link_tx_bytes link = link.tx_bytes
let link_set_limiter link f = link.limiter <- f
let link_set_fault link f = link.fault <- f
let link_is_up link = link.up

let link_set_up link v =
  if link.up <> v then begin
    link.up <- v;
    if v then kick link
    else
      match link.poll with
      | Some h ->
          Sim.cancel h;
          link.poll <- None
      | None -> ()
  end

let nodes t = List.rev t.node_list
let links t = List.rev t.link_list
let find_node_by_addr t addr = Wire.Addr.Tbl.find_opt t.by_addr addr

(* --- conservative-PDES partitioning (DESIGN.md section 14) -------------- *)

let install_partitions t ~parts =
  if t.par <> None then invalid_arg "Net.install_partitions: already partitioned";
  if Array.length parts <> t.next_node_id then
    invalid_arg "Net.install_partitions: need one partition index per node";
  let k = Array.fold_left (fun m p -> max m (p + 1)) 0 parts in
  if k < 2 then invalid_arg "Net.install_partitions: need at least two partitions";
  Array.iteri
    (fun id p ->
      if p < 0 || p >= k then
        invalid_arg (Printf.sprintf "Net.install_partitions: node %d has partition %d" id p))
    parts;
  let seen = Array.make k false in
  Array.iter (fun p -> seen.(p) <- true) parts;
  if not (Array.for_all Fun.id seen) then
    invalid_arg "Net.install_partitions: every partition must own at least one node";
  (* Anything already scheduled would stay pinned to the master simulator
     even when its node moves; force the install to precede agent setup. *)
  if Sim.pending t.sim > 0 then
    invalid_arg "Net.install_partitions: the master simulator already has pending events";
  let sched = Sim.sched t.sim in
  let sims = Array.init k (fun i -> if i = 0 then t.sim else Sim.create ~seed:(i + 1) ~sched ()) in
  List.iter (fun node -> node.nsim <- sims.(parts.(node.id))) t.node_list;
  let xlinks = ref [] and xdst = ref [] and look = ref infinity in
  List.iter
    (fun link ->
      let ps = parts.(link.src.id) and pd = parts.(link.dst.id) in
      link.lsim <- sims.(ps);
      if ps <> pd then begin
        if link.delay <= 0. then
          invalid_arg
            (Printf.sprintf "Net.install_partitions: cut crosses zero-delay link %d" link.lid);
        link.xmail <- Some (Mailbox.create ~dummy:(fun () -> ()) ());
        xlinks := link :: !xlinks;
        xdst := pd :: !xdst;
        if link.delay < !look then look := link.delay
      end)
    (List.rev t.link_list);
  t.par <-
    Some
      {
        p_sims = sims;
        p_parts = Array.copy parts;
        p_lookahead = !look;
        p_xlinks = Array.of_list (List.rev !xlinks);
        p_xdst = Array.of_list (List.rev !xdst);
      }

let partition_count t = match t.par with None -> 1 | Some p -> Array.length p.p_sims
let partition_sims t = match t.par with None -> [| t.sim |] | Some p -> Array.copy p.p_sims
let partition_of node =
  match node.net.par with None -> 0 | Some p -> p.p_parts.(node.id)

let lookahead t = match t.par with None -> infinity | Some p -> p.p_lookahead

(* Drain every cut-link mailbox and inject the buffered deliveries into
   their destination partitions.  Runs on the coordinating domain at a
   window barrier (the Par mutex orders it against the producers).  The
   injection order is the determinism contract: per destination partition,
   entries sort stably by arrival time, ties falling back to cut-link
   creation order then FIFO push order — so a run's merge order depends
   only on the topology and the traffic, never on domain timing. *)
let exchange_mailboxes t =
  match t.par with
  | None -> ()
  | Some p ->
      let k = Array.length p.p_sims in
      let acc = Array.make k [] in
      Array.iteri
        (fun i link ->
          match link.xmail with
          | None -> assert false
          | Some mb ->
              let d = p.p_xdst.(i) in
              Mailbox.drain mb ~f:(fun ~time thunk -> acc.(d) <- (time, thunk) :: acc.(d)))
        p.p_xlinks;
      for d = 0 to k - 1 do
        match acc.(d) with
        | [] -> ()
        | entries ->
            let arr = Array.of_list (List.rev entries) in
            Array.stable_sort (fun (ta, _) (tb, _) -> Float.compare ta tb) arr;
            let sim = p.p_sims.(d) in
            Array.iter
              (fun (time, thunk) ->
                ignore (Sim.schedule_at ~kind:Sim.Kind.net_deliver sim ~time thunk))
              arr
      done

let run_parallel ?pulse ?(until = infinity) t =
  (match pulse with
  | Some (interval, _) ->
      if not (interval > 0.) then invalid_arg "Net.run_parallel: pulse interval must be positive";
      if until = infinity then invalid_arg "Net.run_parallel: a pulse needs a finite until"
  | None -> ());
  match t.par with
  | None -> (
      match pulse with
      | None -> Sim.run ~until t.sim
      | Some (interval, fire) ->
          (* The sequential equivalent of Par.drive's barrier pulses: a
             self-rescheduling auxiliary tick chain.  Aux events draw
             negative sequence numbers, so the run stays bit-identical to
             one without the chain; at equal time they fire before normal
             events, the same cut the partitioned pulse observes.  Times
             are k * interval by multiplication, matching Par.drive, so
             both paths stamp identical series. *)
          let k = ref 1 in
          let rec arm () =
            let tm = float_of_int !k *. interval in
            if tm <= until then
              ignore
                (Sim.schedule_aux t.sim ~time:tm (fun () ->
                     fire tm;
                     incr k;
                     arm ()))
          in
          arm ();
          Sim.run ~until t.sim)
  | Some p ->
      let team = Par.create (Array.length p.p_sims) in
      Fun.protect
        ~finally:(fun () -> Par.shutdown team)
        (fun () ->
          Par.drive ?pulse team ~sims:p.p_sims ~lookahead:p.p_lookahead ~until
            ~exchange:(fun () -> exchange_mailboxes t))
