(* Online incident detection over telemetry intervals (DESIGN.md §15).

   Each rule watches one timeseries channel through an EWMA and a
   hysteresis pair of thresholds: the smoothed signal must sit at or above
   [r_on] for [r_up] consecutive windows to open an incident, and at or
   below [r_off] for [r_down] consecutive windows to clear it.  The EWMA
   rejects single-window spikes; the threshold gap plus the consecutive-
   window counts reject flapping around a single threshold — a signal
   oscillating between [r_off] and [r_on] produces one incident, not one
   per oscillation (property-tested).

   Stepping is allocation-free except at incident onset (one record).
   Incidents carry onset/clear sim-times and the peak raw value, which is
   what the chaos harness turns into measured engage/recover times. *)

type rule = {
  r_name : string;
  r_chan : string; (* Timeseries channel to watch *)
  r_signal : [ `Rate | `Value ]; (* feed the EWMA rates or raw stored values *)
  r_on : float;
  r_off : float; (* r_off <= r_on: the hysteresis gap *)
  r_up : int; (* consecutive windows at/above r_on to open *)
  r_down : int; (* consecutive windows at/below r_off to clear *)
  r_alpha : float; (* EWMA weight of the newest window, in (0, 1] *)
}

let rule ?(signal = `Rate) ?(up = 1) ?(down = 2) ?(alpha = 0.5) ~name ~chan ~on ~off () =
  if not (off <= on) then invalid_arg "Detect.rule: off must be <= on (hysteresis)";
  if up < 1 || down < 1 then invalid_arg "Detect.rule: up/down must be >= 1";
  if not (alpha > 0. && alpha <= 1.) then invalid_arg "Detect.rule: alpha must be in (0, 1]";
  { r_name = name; r_chan = chan; r_signal = signal; r_on = on; r_off = off; r_up = up; r_down = down; r_alpha = alpha }

type incident = {
  in_rule : string;
  in_onset : float; (* sim time of the opening window *)
  mutable in_clear : float; (* nan while open *)
  mutable in_peak : float; (* extreme raw signal while active *)
  mutable in_peak_at : float;
  mutable in_open : bool; (* true if never cleared (finalized open at run end) *)
}

type state = {
  st_rule : rule;
  st_chan : int;
  mutable st_ewma : float; (* nan until the first window *)
  mutable st_up : int;
  mutable st_down : int;
  mutable st_current : incident option;
}

type t = {
  ts : Timeseries.t;
  states : state array;
  mutable incidents : incident list; (* reverse onset order *)
  mutable on_onset : incident -> unit;
}

let create ~rules ts =
  let states =
    List.filter_map
      (fun r ->
        match Timeseries.chan_index ts r.r_chan with
        | None ->
            invalid_arg (Printf.sprintf "Detect.create: rule %S: no channel %S" r.r_name r.r_chan)
        | Some chan ->
            Some
              { st_rule = r; st_chan = chan; st_ewma = nan; st_up = 0; st_down = 0; st_current = None })
      rules
  in
  { ts; states = Array.of_list states; incidents = []; on_onset = ignore }

let on_onset t f = t.on_onset <- f

(* Consume the newest window.  Call once after every Timeseries.tick. *)
let step t =
  let n = Timeseries.length t.ts in
  if n > 0 then begin
    let i = n - 1 in
    let time = Timeseries.time_at t.ts i in
    for k = 0 to Array.length t.states - 1 do
      let st = t.states.(k) in
      let r = st.st_rule in
      let v =
        match r.r_signal with
        | `Rate -> Timeseries.rate t.ts ~chan:st.st_chan i
        | `Value -> Timeseries.value t.ts ~chan:st.st_chan i
      in
      st.st_ewma <-
        (if Float.is_nan st.st_ewma then v
         else (r.r_alpha *. v) +. ((1. -. r.r_alpha) *. st.st_ewma));
      match st.st_current with
      | None ->
          if st.st_ewma >= r.r_on then begin
            st.st_up <- st.st_up + 1;
            if st.st_up >= r.r_up then begin
              let inc =
                {
                  in_rule = r.r_name;
                  in_onset = time;
                  in_clear = nan;
                  in_peak = v;
                  in_peak_at = time;
                  in_open = true;
                }
              in
              st.st_current <- Some inc;
              st.st_up <- 0;
              st.st_down <- 0;
              t.incidents <- inc :: t.incidents;
              t.on_onset inc
            end
          end
          else st.st_up <- 0
      | Some inc ->
          if v > inc.in_peak then begin
            inc.in_peak <- v;
            inc.in_peak_at <- time
          end;
          if st.st_ewma <= r.r_off then begin
            st.st_down <- st.st_down + 1;
            if st.st_down >= r.r_down then begin
              inc.in_clear <- time;
              inc.in_open <- false;
              st.st_current <- None;
              st.st_down <- 0
            end
          end
          else st.st_down <- 0
    done
  end

(* Finalize at run end: incidents still active close at [time] but stay
   marked open, so "never recovered" is distinguishable from "recovered
   exactly at the end". *)
let finish t ~time =
  Array.iter
    (fun st ->
      match st.st_current with
      | Some inc ->
          inc.in_clear <- time;
          st.st_current <- None
      | None -> ())
    t.states

let incidents t = List.rev t.incidents

(* Engagement/recovery summary over all incidents: time of first onset,
   and span from first onset to last clear.  [None] without incidents. *)
let engage_recover t =
  match incidents t with
  | [] -> None
  | incs ->
      let onset = List.fold_left (fun a i -> Float.min a i.in_onset) infinity incs in
      let clear =
        List.fold_left (fun a i -> if Float.is_nan i.in_clear then a else Float.max a i.in_clear) onset incs
      in
      Some (onset, clear -. onset)

let incident_json i =
  Export.Obj
    [
      ("rule", Export.String i.in_rule);
      ("onset", Export.Float i.in_onset);
      ("clear", Export.number_or_null i.in_clear);
      ("peak", Export.number_or_null i.in_peak);
      ("peak_at", Export.Float i.in_peak_at);
      ("open", Export.Bool i.in_open);
    ]

let to_json t = Export.List (List.map incident_json (incidents t))
