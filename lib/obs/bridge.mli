(** Subscribes to the network's event hook ({!Net.set_trace}) and maps
    forwarding-plane events onto the {!Event} taxonomy: queue drops are
    classified per packet class (request / regular / legacy, mirroring the
    tri-class scheduler), and routing failures, transmissions and
    deliveries are counted at the node where they happen. *)

val drop_event : Wire.Packet.t -> Event.t
(** The per-class drop counter a dropped packet belongs to. *)

val install :
  ?trace:Trace.t -> counters_for:(Net.node -> Counters.t) -> Net.t -> unit
(** Installs the hook (replacing any previous one).  [counters_for] maps a
    node to its counter instance — return {!Counters.nop} for nodes not
    being observed.  Events are also offered to [trace] (default
    {!Trace.nop}). *)

val remove : Net.t -> unit
