(** The end-of-run observability report: plain data (safe to build inside a
    {!Pool} worker domain and move across), with JSON and text-dashboard
    renderings. *)

type qdisc_row = {
  q_name : string;
  q_enqueued : int;
  q_dequeued : int;
  q_dropped : int;
  q_bytes_enqueued : int;
  q_bytes_dequeued : int;
  q_bytes_dropped : int;
  q_hwm : int;
  q_residual_packets : int;  (** still queued when the run ended *)
  q_residual_bytes : int;
}

type link_row = {
  l_name : string;  (** ["src->dst"] *)
  l_tx_packets : int;
  l_tx_bytes : int;
  l_qdiscs : qdisc_row list;  (** composite walked parent-first *)
}

type cache_row = {
  c_router : string;
  c_size : int;
  c_capacity : int;
  c_evictions : int;
  c_hwm : int;
}

type profile_row = { p_kind : string; p_events : int; p_wall_s : float }

type gauge_row = {
  g_name : string;
  g_count : int;
  g_mean : float;
  g_max : float;
  g_p50 : float;
  g_p99 : float;
  g_render : string;  (** pre-rendered histogram for the dashboard *)
}

type partition_row = { pt_label : string; pt_events : int }
(** Events fired by one partition's event loop under the parallel driver. *)

type series_row = {
  s_name : string;
  s_mode : string;  (** ["cumulative"] (stats over per-second rates) or ["level"] *)
  s_windows : int;
  s_mean : float;
  s_max : float;
  s_p50 : float;
  s_p99 : float;
  s_spark : string;  (** sparkline over the surviving windows, oldest first *)
}
(** One telemetry channel summarized over its interval windows; the stats
    quadruple matches {!gauge_row} so both render through one formatter. *)

type incident_row = {
  i_rule : string;
  i_onset : float;
  i_clear : float;  (** NaN = still open at report time *)
  i_peak : float;
  i_peak_at : float;
  i_open : bool;
}

type t = {
  counters : Counters.snap;
  links : link_row list;
  caches : cache_row list;
  profile : profile_row list;
  gauges : gauge_row list;
  partitions : partition_row list;  (** empty outside parallel runs *)
  wall_s : float;  (** event-loop wall seconds; [0.] = not measured *)
  trace_jsonl : string option;
  series : series_row list;  (** empty unless telemetry was on *)
  series_interval : float;  (** [0.] unless telemetry was on *)
  series_json : Export.t option;  (** the full interval dump, for [--stats] *)
  incidents : incident_row list;
}

val empty : t

(** {1 Builders} — snapshot live structures into plain data. *)

val qdisc_rows : Qdisc.t -> qdisc_row list
val link_rows_of_net : Net.t -> link_row list
val profile_rows : Profile.t -> profile_row list
val gauge_rows : Profile.t -> gauge_row list

val trace_jsonl : ?node_name:(int -> string) -> Trace.t -> string option
(** [None] when the trace is disabled or empty. *)

val series_rows : Timeseries.t -> series_row list
(** Summarize every channel over its surviving windows — cumulative
    channels over their per-second rates, level channels over raw values
    (exact percentiles; runs once, at report build). *)

val incident_rows : Detect.t -> incident_row list

val sparkline : ?width:int -> float array -> string
(** The last [width] (default 48) values as block glyphs scaled to their
    max. *)

val merge_counters : t list -> Counters.snap
(** Left fold of the reports' counter snapshots in list order; feeding
    [Pool.map] results in submission order makes the aggregate independent
    of [--jobs]. *)

(** {1 Rendering} *)

val to_json : t -> Export.t
val to_json_string : t -> string

val counters_json : Counters.snap -> Export.t
(** The counter section alone (nonzero events only), for aggregates that
    are not a whole report. *)

val pp_dashboard : Format.formatter -> t -> unit

val pp_series : Format.formatter -> t -> unit
(** The interval-series tables alone (what [tva_sim dashboard --series]
    adds); included in {!pp_dashboard} when telemetry was on.  Stats lines
    share one formatter with the gauge rows. *)

val pp_incidents : Format.formatter -> incident_row list -> unit
