(** The static taxonomy of datapath events (DESIGN.md §10).

    Counters ({!Counters}) and the trace ring ({!Trace}) index preallocated
    arrays by {!to_int}, which is why the enumeration is closed and dense:
    an increment is one unsafe array load/store, never a hash or a lookup. *)

type t =
  | Packets_in  (** every packet entering [Router.process] *)
  | Legacy_in  (** shimless or already-demoted arrivals *)
  | Request_in
  | Regular_in
  | Request_minted  (** a pre-capability was appended to a request *)
  | Demoted_header_full  (** request shim out of pre-capability slots *)
  | Nonce_hit  (** flow-cache hit on the 48-bit nonce *)
  | Nonce_miss  (** cache entry present but nonce differs (renewal or stale) *)
  | Regular_validated  (** validated via the two capability hashes *)
  | Renewal  (** fresh pre-capability minted into a renewal packet *)
  | Demoted_bad_cap  (** listed capability failed the hash check *)
  | Demoted_cap_expired  (** T window passed on the modulo clock *)
  | Demoted_no_cap  (** no capability addressed to this router *)
  | Demoted_bytes_exhausted  (** cached grant's N bytes spent *)
  | Demoted_cache_full  (** no reclaimable flow-cache record *)
  | Demoted_over_limit  (** single packet larger than the grant's N *)
  | Demoted  (** total demotions, = sum of the [Demoted_*] reasons *)
  | Cache_inserted
  | Cache_renewed
  | Cache_evicted  (** reclaimed by the cursor sweep or a full sweep *)
  | Queue_drop_request
  | Queue_drop_regular
  | Queue_drop_legacy
  | No_route
  | Hops_exceeded
  | Transmitted  (** packet began serialization on an out-link *)
  | Delivered  (** packet handed to a node's handler after propagation *)
  | Fault_injected
      (** one injected fault took effect: a link-level loss/corrupt/dup/
          reorder decision, or a scheduled control event (down, flap edge,
          cache wipe, secret rotation, restart) firing (DESIGN.md §11) *)
  | Demoted_recovered
      (** a destination saw a previously-demoted source deliver a
          non-demoted regular packet again — end of its demotion episode *)
  | Reacquired
      (** a sender whose grant was cancelled by a demotion echo received a
          fresh grant; {!Tva.Host.reacquire_latencies} records the delay *)

val count : int
(** Number of constructors; the length of every counter array. *)

val to_int : t -> int
(** Dense index in [\[0, count)]. *)

val name : t -> string
val name_of_int : int -> string
val all : t list
(** In [to_int] order. *)
