(* Fixed-capacity packet-lifecycle trace ring.

   Struct-of-arrays: six parallel flat arrays (the float one unboxed), so a
   record is six unsafe stores and two counter bumps — no per-event
   allocation, ever.  The ring overwrites oldest-first once full; [seen]
   counts every offered record that passed the filter so sampling (keep
   1-in-[sample]) and loss accounting stay exact. *)

type t = {
  enabled : bool;
  mask : int; (* capacity - 1; capacity is a power of two *)
  times : float array;
  nodes : int array;
  events : int array; (* Event.to_int codes *)
  srcs : int array;
  dsts : int array;
  sizes : int array;
  sample : int; (* keep 1 record in [sample] filtered offers *)
  filter : bool array; (* indexed by Event.to_int *)
  mutable seen : int; (* offers that passed the filter *)
  mutable written : int; (* records stored (monotonic; ring holds the tail) *)
}

let nop =
  {
    enabled = false;
    mask = 0;
    times = [| 0. |];
    nodes = [| 0 |];
    events = [| 0 |];
    srcs = [| 0 |];
    dsts = [| 0 |];
    sizes = [| 0 |];
    sample = 1;
    filter = Array.make Event.count false;
    seen = 0;
    written = 0;
  }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (2 * k)

let create ?(capacity = 65536) ?(sample = 1) ?filter () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  if sample <= 0 then invalid_arg "Trace.create: sample must be positive";
  let cap = next_pow2 capacity 1 in
  let filter =
    match filter with
    | None -> Array.make Event.count true
    | Some f -> Array.of_list (List.map f Event.all)
  in
  {
    enabled = true;
    mask = cap - 1;
    times = Array.make cap 0.;
    nodes = Array.make cap 0;
    events = Array.make cap 0;
    srcs = Array.make cap 0;
    dsts = Array.make cap 0;
    sizes = Array.make cap 0;
    sample;
    filter;
    seen = 0;
    written = 0;
  }

let is_nop t = not t.enabled
let capacity t = t.mask + 1
let seen t = t.seen
let written t = t.written
let length t = min t.written (t.mask + 1)
let sample t = t.sample

let record t ~time ~node ~event ~src ~dst ~size =
  if t.enabled && Array.unsafe_get t.filter (Event.to_int event) then begin
    let n = t.seen in
    t.seen <- n + 1;
    if n mod t.sample = 0 then begin
      let i = t.written land t.mask in
      Array.unsafe_set t.times i time;
      Array.unsafe_set t.nodes i node;
      Array.unsafe_set t.events i (Event.to_int event);
      Array.unsafe_set t.srcs i src;
      Array.unsafe_set t.dsts i dst;
      Array.unsafe_set t.sizes i size;
      t.written <- t.written + 1
    end
  end

(* Oldest surviving record first. *)
let iter t f =
  let n = length t in
  let start = t.written - n in
  for k = 0 to n - 1 do
    let i = (start + k) land t.mask in
    f ~time:t.times.(i) ~node:t.nodes.(i) ~event:t.events.(i) ~src:t.srcs.(i) ~dst:t.dsts.(i)
      ~size:t.sizes.(i)
  done

let default_node_name id = string_of_int id

let to_jsonl ?(node_name = default_node_name) t buf =
  iter t (fun ~time ~node ~event ~src ~dst ~size ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"t\":%.9f,\"node\":\"%s\",\"event\":\"%s\",\"src\":%d,\"dst\":%d,\"size\":%d}\n" time
           (node_name node) (Event.name_of_int event) src dst size))

let to_csv ?(node_name = default_node_name) t buf =
  Buffer.add_string buf "time,node,event,src,dst,size\n";
  iter t (fun ~time ~node ~event ~src ~dst ~size ->
      Buffer.add_string buf
        (Printf.sprintf "%.9f,%s,%s,%d,%d,%d\n" time (node_name node) (Event.name_of_int event)
           src dst size))
