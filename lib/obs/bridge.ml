(* The net-event bridge: subscribes to [Net.set_trace] and turns the
   forwarding plane's events into per-node counter increments and trace
   records.  The TVA routers count their own processing-path events; this
   bridge covers what only the network layer sees — queue drops (classified
   by packet class, mirroring the tri-class scheduler), routing failures,
   transmissions and deliveries. *)

(* Which per-class drop counter a dropped packet lands on: the same
   classification the tri-class qdisc applies (shimless or demoted ->
   legacy; else by shim kind). *)
let drop_event (p : Wire.Packet.t) =
  match p.Wire.Packet.shim with
  | None -> Event.Queue_drop_legacy
  | Some shim when shim.Wire.Cap_shim.demoted -> Event.Queue_drop_legacy
  | Some shim -> begin
      match shim.Wire.Cap_shim.kind with
      | Wire.Cap_shim.Request _ -> Event.Queue_drop_request
      | Wire.Cap_shim.Regular _ -> Event.Queue_drop_regular
    end

let install ?(trace = Trace.nop) ~counters_for net =
  (* The timestamp comes from the witnessing node's own simulator, not the
     network's master clock: under the partitioned parallel driver the
     master clock belongs to partition 0's domain, and reading it from
     another partition's event would race (and lag by up to a window). *)
  let record node event (p : Wire.Packet.t) =
    Counters.incr (counters_for node) event;
    Trace.record trace ~time:(Sim.now (Net.node_sim node)) ~node:(Net.node_id node) ~event
      ~src:(Wire.Addr.to_int p.Wire.Packet.src)
      ~dst:(Wire.Addr.to_int p.Wire.Packet.dst)
      ~size:(Wire.Packet.size p)
  in
  Net.set_trace net
    (Some
       (function
         | Net.Queue_drop (link, p) -> record (Net.link_src link) (drop_event p) p
         | Net.Hops_exceeded (node, p) -> record node Event.Hops_exceeded p
         | Net.No_route (node, p) -> record node Event.No_route p
         | Net.Transmit (link, p) -> record (Net.link_src link) Event.Transmitted p
         | Net.Deliver (node, p) -> record node Event.Delivered p
         | Net.Link_fault (link, p) -> record (Net.link_src link) Event.Fault_injected p))

let remove net = Net.set_trace net None
