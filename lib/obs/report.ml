(* The end-of-run observability report: plain data, so a report built
   inside a [Pool] worker domain crosses back to the submitting domain and
   merges deterministically.  Builders snapshot live structures (counter
   registry, the net's per-link qdisc stats, a profiler); rendering goes
   through {!Export} (JSON) or a text dashboard. *)

type qdisc_row = {
  q_name : string;
  q_enqueued : int;
  q_dequeued : int;
  q_dropped : int;
  q_bytes_enqueued : int;
  q_bytes_dequeued : int;
  q_bytes_dropped : int;
  q_hwm : int;
  q_residual_packets : int; (* packets still queued when the run ended *)
  q_residual_bytes : int;
}

type link_row = {
  l_name : string; (* "src->dst" *)
  l_tx_packets : int;
  l_tx_bytes : int;
  l_qdiscs : qdisc_row list; (* composite walked parent-first *)
}

type cache_row = {
  c_router : string;
  c_size : int;
  c_capacity : int;
  c_evictions : int;
  c_hwm : int;
}

type profile_row = { p_kind : string; p_events : int; p_wall_s : float }

type gauge_row = {
  g_name : string;
  g_count : int;
  g_mean : float;
  g_max : float;
  g_p50 : float;
  g_p99 : float;
  g_render : string; (* pre-rendered histogram, for the dashboard *)
}

type partition_row = { pt_label : string; pt_events : int }

type t = {
  counters : Counters.snap;
  links : link_row list;
  caches : cache_row list;
  profile : profile_row list;
  gauges : gauge_row list;
  partitions : partition_row list; (* empty outside parallel runs *)
  wall_s : float; (* event-loop wall seconds; 0. = not measured *)
  trace_jsonl : string option;
}

let empty =
  {
    counters = [];
    links = [];
    caches = [];
    profile = [];
    gauges = [];
    partitions = [];
    wall_s = 0.;
    trace_jsonl = None;
  }

(* --- builders ----------------------------------------------------------- *)

let qdisc_rows qdisc =
  let rows = ref [] in
  Qdisc.iter_nested qdisc (fun q ->
      let s = q.Qdisc.stats in
      rows :=
        {
          q_name = q.Qdisc.name;
          q_enqueued = s.Qdisc.enqueued;
          q_dequeued = s.Qdisc.dequeued;
          q_dropped = s.Qdisc.dropped;
          q_bytes_enqueued = s.Qdisc.bytes_enqueued;
          q_bytes_dequeued = s.Qdisc.bytes_dequeued;
          q_bytes_dropped = s.Qdisc.bytes_dropped;
          q_hwm = s.Qdisc.hwm_packets;
          q_residual_packets = Qdisc.packet_count q;
          q_residual_bytes = Qdisc.byte_count q;
        }
        :: !rows);
  List.rev !rows

let link_rows_of_net net =
  List.concat_map
    (fun node ->
      List.map
        (fun link ->
          {
            l_name =
              Net.node_name (Net.link_src link) ^ "->" ^ Net.node_name (Net.link_dst link);
            l_tx_packets = Net.link_tx_packets link;
            l_tx_bytes = Net.link_tx_bytes link;
            l_qdiscs = qdisc_rows (Net.link_qdisc link);
          })
        (Net.links_out_of node))
    (Net.nodes net)

let profile_rows profile =
  List.map
    (fun (name, events, wall, _ns) -> { p_kind = name; p_events = events; p_wall_s = wall })
    (Profile.kind_rows profile)

let gauge_rows profile =
  List.map
    (fun g ->
      let s = Profile.gauge_summary g in
      let h = Profile.gauge_hist g in
      {
        g_name = Profile.gauge_name g;
        g_count = Stats.Summary.count s;
        g_mean = Stats.Summary.mean s;
        g_max = Stats.Summary.max s;
        g_p50 = Stats.Histogram.quantile h 0.5;
        g_p99 = Stats.Histogram.quantile h 0.99;
        g_render = Fmt.str "%a" Stats.Histogram.pp h;
      })
    (Profile.gauges profile)

let trace_jsonl ?node_name trace =
  if Trace.is_nop trace || Trace.length trace = 0 then None
  else begin
    let buf = Buffer.create 4096 in
    Trace.to_jsonl ?node_name trace buf;
    Some (Buffer.contents buf)
  end

(* --- merge -------------------------------------------------------------- *)

(* Fold sweep-cell counter snapshots in submission order (Pool.map returns
   results in that order), so the aggregate is deterministic across --jobs
   settings. *)
let merge_counters reports =
  List.fold_left (fun acc r -> Counters.merge_snaps acc r.counters) [] reports

(* --- JSON --------------------------------------------------------------- *)

let counters_json (snap : Counters.snap) =
  Export.Obj
    (List.map
       (fun (name, counts) ->
         let fields = ref [] in
         for i = Array.length counts - 1 downto 0 do
           if counts.(i) <> 0 then fields := (Event.name_of_int i, Export.Int counts.(i)) :: !fields
         done;
         (name, Export.Obj !fields))
       snap)

let qdisc_json q =
  Export.Obj
    [
      ("name", Export.String q.q_name);
      ("enqueued", Export.Int q.q_enqueued);
      ("dequeued", Export.Int q.q_dequeued);
      ("dropped", Export.Int q.q_dropped);
      ("bytes_enqueued", Export.Int q.q_bytes_enqueued);
      ("bytes_dequeued", Export.Int q.q_bytes_dequeued);
      ("bytes_dropped", Export.Int q.q_bytes_dropped);
      ("hwm_packets", Export.Int q.q_hwm);
      ("residual_packets", Export.Int q.q_residual_packets);
      ("residual_bytes", Export.Int q.q_residual_bytes);
    ]

let link_json l =
  Export.Obj
    [
      ("name", Export.String l.l_name);
      ("tx_packets", Export.Int l.l_tx_packets);
      ("tx_bytes", Export.Int l.l_tx_bytes);
      ("qdiscs", Export.List (List.map qdisc_json l.l_qdiscs));
    ]

let cache_json c =
  Export.Obj
    [
      ("router", Export.String c.c_router);
      ("size", Export.Int c.c_size);
      ("capacity", Export.Int c.c_capacity);
      ("evictions", Export.Int c.c_evictions);
      ("hwm", Export.Int c.c_hwm);
    ]

let profile_json p =
  Export.Obj
    [
      ("kind", Export.String p.p_kind);
      ("events", Export.Int p.p_events);
      ("wall_s", Export.Float p.p_wall_s);
    ]

let gauge_json g =
  Export.Obj
    [
      ("name", Export.String g.g_name);
      ("count", Export.Int g.g_count);
      ("mean", Export.number_or_null g.g_mean);
      ("max", Export.number_or_null g.g_max);
      ("p50", Export.number_or_null g.g_p50);
      ("p99", Export.number_or_null g.g_p99);
    ]

let partition_json p =
  Export.Obj [ ("label", Export.String p.pt_label); ("events", Export.Int p.pt_events) ]

let to_json t =
  Export.Obj
    ([
       ("counters", counters_json t.counters);
       ("links", Export.List (List.map link_json t.links));
       ("flow_caches", Export.List (List.map cache_json t.caches));
       ("profile", Export.List (List.map profile_json t.profile));
       ("gauges", Export.List (List.map gauge_json t.gauges));
     ]
    @ (if t.partitions = [] then []
       else [ ("partitions", Export.List (List.map partition_json t.partitions)) ])
    @ if t.wall_s > 0. then [ ("wall_s", Export.Float t.wall_s) ] else [])

let to_json_string t = Export.to_string_pretty (to_json t)

(* --- dashboard ---------------------------------------------------------- *)

let pp_counters fmt (snap : Counters.snap) =
  List.iter
    (fun (name, counts) ->
      let rows = ref [] in
      for i = Array.length counts - 1 downto 0 do
        if counts.(i) <> 0 then rows := (Event.name_of_int i, counts.(i)) :: !rows
      done;
      if !rows <> [] then begin
        let wname =
          List.fold_left (fun w (n, _) -> max w (String.length n)) 0 !rows
        in
        Format.fprintf fmt "== %s ==@." name;
        List.iter (fun (n, c) -> Format.fprintf fmt "  %-*s %10d@." wname n c) !rows
      end)
    snap

let pp_links fmt links =
  if links <> [] then begin
    Format.fprintf fmt "== links ==@.";
    List.iter
      (fun l ->
        Format.fprintf fmt "  %s: tx=%d (%dB)@." l.l_name l.l_tx_packets l.l_tx_bytes;
        List.iter
          (fun q ->
            Format.fprintf fmt "    %-20s enq=%-9d deq=%-9d drop=%-9d hwm=%-6d residual=%d@."
              q.q_name q.q_enqueued q.q_dequeued q.q_dropped q.q_hwm q.q_residual_packets)
          l.l_qdiscs)
      links
  end

let pp_caches fmt caches =
  if caches <> [] then begin
    Format.fprintf fmt "== flow caches ==@.";
    List.iter
      (fun c ->
        Format.fprintf fmt "  %s: size=%d/%d hwm=%d evictions=%d@." c.c_router c.c_size
          c.c_capacity c.c_hwm c.c_evictions)
      caches
  end

let pp_profile fmt profile =
  if profile <> [] then begin
    Format.fprintf fmt "== event loop ==@.";
    List.iter
      (fun p ->
        let ns = if p.p_events = 0 then 0. else 1e9 *. p.p_wall_s /. float_of_int p.p_events in
        Format.fprintf fmt "  %-14s %10d events %10.3f ms %8.0f ns/event@." p.p_kind p.p_events
          (1e3 *. p.p_wall_s) ns)
      profile
  end

let pp_gauges fmt gauges =
  List.iter
    (fun g ->
      Format.fprintf fmt "== gauge %s ==@." g.g_name;
      Format.fprintf fmt "  samples=%d mean=%.2f max=%.0f p50=%.2f p99=%.2f@." g.g_count g.g_mean
        g.g_max g.g_p50 g.g_p99;
      if g.g_render <> "" then
        String.split_on_char '\n' g.g_render
        |> List.iter (fun line -> if line <> "" then Format.fprintf fmt "  %s@." line))
    gauges

(* Per-partition event counts plus overall throughput: the quick answer to
   "did the parallel run balance, and what did it buy". *)
let pp_partitions fmt t =
  if t.partitions <> [] || t.wall_s > 0. then begin
    Format.fprintf fmt "== event loop throughput ==@.";
    List.iter
      (fun p -> Format.fprintf fmt "  %-12s %12d events@." p.pt_label p.pt_events)
      t.partitions;
    let total = List.fold_left (fun acc p -> acc + p.pt_events) 0 t.partitions in
    if t.wall_s > 0. && total > 0 then
      Format.fprintf fmt "  %-12s %12d events %10.3f s %12.0f events/s@." "total" total t.wall_s
        (float_of_int total /. t.wall_s)
  end

let pp_dashboard fmt t =
  pp_counters fmt t.counters;
  pp_links fmt t.links;
  pp_caches fmt t.caches;
  pp_profile fmt t.profile;
  pp_gauges fmt t.gauges;
  pp_partitions fmt t
