(* The end-of-run observability report: plain data, so a report built
   inside a [Pool] worker domain crosses back to the submitting domain and
   merges deterministically.  Builders snapshot live structures (counter
   registry, the net's per-link qdisc stats, a profiler); rendering goes
   through {!Export} (JSON) or a text dashboard. *)

type qdisc_row = {
  q_name : string;
  q_enqueued : int;
  q_dequeued : int;
  q_dropped : int;
  q_bytes_enqueued : int;
  q_bytes_dequeued : int;
  q_bytes_dropped : int;
  q_hwm : int;
  q_residual_packets : int; (* packets still queued when the run ended *)
  q_residual_bytes : int;
}

type link_row = {
  l_name : string; (* "src->dst" *)
  l_tx_packets : int;
  l_tx_bytes : int;
  l_qdiscs : qdisc_row list; (* composite walked parent-first *)
}

type cache_row = {
  c_router : string;
  c_size : int;
  c_capacity : int;
  c_evictions : int;
  c_hwm : int;
}

type profile_row = { p_kind : string; p_events : int; p_wall_s : float }

type gauge_row = {
  g_name : string;
  g_count : int;
  g_mean : float;
  g_max : float;
  g_p50 : float;
  g_p99 : float;
  g_render : string; (* pre-rendered histogram, for the dashboard *)
}

type partition_row = { pt_label : string; pt_events : int }

(* One telemetry channel summarized over its interval windows; the stats
   quadruple matches [gauge_row] so both render through one formatter. *)
type series_row = {
  s_name : string;
  s_mode : string; (* "cumulative" (stats over per-second rates) or "level" *)
  s_windows : int;
  s_mean : float;
  s_max : float;
  s_p50 : float;
  s_p99 : float;
  s_spark : string; (* sparkline over the surviving windows, oldest first *)
}

type incident_row = {
  i_rule : string;
  i_onset : float;
  i_clear : float; (* NaN = still open at report time *)
  i_peak : float;
  i_peak_at : float;
  i_open : bool;
}

type t = {
  counters : Counters.snap;
  links : link_row list;
  caches : cache_row list;
  profile : profile_row list;
  gauges : gauge_row list;
  partitions : partition_row list; (* empty outside parallel runs *)
  wall_s : float; (* event-loop wall seconds; 0. = not measured *)
  trace_jsonl : string option;
  series : series_row list; (* empty unless telemetry was on *)
  series_interval : float; (* 0. unless telemetry was on *)
  series_json : Export.t option; (* the full interval dump, for --stats *)
  incidents : incident_row list;
}

let empty =
  {
    counters = [];
    links = [];
    caches = [];
    profile = [];
    gauges = [];
    partitions = [];
    wall_s = 0.;
    trace_jsonl = None;
    series = [];
    series_interval = 0.;
    series_json = None;
    incidents = [];
  }

(* --- builders ----------------------------------------------------------- *)

let qdisc_rows qdisc =
  let rows = ref [] in
  Qdisc.iter_nested qdisc (fun q ->
      let s = q.Qdisc.stats in
      rows :=
        {
          q_name = q.Qdisc.name;
          q_enqueued = s.Qdisc.enqueued;
          q_dequeued = s.Qdisc.dequeued;
          q_dropped = s.Qdisc.dropped;
          q_bytes_enqueued = s.Qdisc.bytes_enqueued;
          q_bytes_dequeued = s.Qdisc.bytes_dequeued;
          q_bytes_dropped = s.Qdisc.bytes_dropped;
          q_hwm = s.Qdisc.hwm_packets;
          q_residual_packets = Qdisc.packet_count q;
          q_residual_bytes = Qdisc.byte_count q;
        }
        :: !rows);
  List.rev !rows

let link_rows_of_net net =
  List.concat_map
    (fun node ->
      List.map
        (fun link ->
          {
            l_name =
              Net.node_name (Net.link_src link) ^ "->" ^ Net.node_name (Net.link_dst link);
            l_tx_packets = Net.link_tx_packets link;
            l_tx_bytes = Net.link_tx_bytes link;
            l_qdiscs = qdisc_rows (Net.link_qdisc link);
          })
        (Net.links_out_of node))
    (Net.nodes net)

let profile_rows profile =
  List.map
    (fun (name, events, wall, _ns) -> { p_kind = name; p_events = events; p_wall_s = wall })
    (Profile.kind_rows profile)

let gauge_rows profile =
  List.map
    (fun g ->
      let s = Profile.gauge_summary g in
      let h = Profile.gauge_hist g in
      {
        g_name = Profile.gauge_name g;
        g_count = Stats.Summary.count s;
        g_mean = Stats.Summary.mean s;
        g_max = Stats.Summary.max s;
        g_p50 = Stats.Histogram.quantile h 0.5;
        g_p99 = Stats.Histogram.quantile h 0.99;
        g_render = Fmt.str "%a" Stats.Histogram.pp h;
      })
    (Profile.gauges profile)

(* Sparkline over the last [width] windows, oldest first, scaled to the
   series max (all-low when flat at zero). *)
let spark_glyphs = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 48) values =
  let n = Array.length values in
  let keep = min n width in
  let hi = ref 0. in
  for i = n - keep to n - 1 do
    if values.(i) > !hi then hi := values.(i)
  done;
  let buf = Buffer.create (3 * keep) in
  for i = n - keep to n - 1 do
    let level =
      if !hi <= 0. then 0
      else
        let l = int_of_float (values.(i) /. !hi *. 7.99) in
        if l < 0 then 0 else if l > 7 then 7 else l
    in
    Buffer.add_string buf spark_glyphs.(level)
  done;
  Buffer.contents buf

(* Summarize every telemetry channel: cumulative channels over their
   per-second rates, level channels over raw values.  Percentiles are
   exact (sorted copy) — this runs once, at report build. *)
let series_rows ts =
  List.mapi
    (fun chan name ->
      let n = Timeseries.length ts in
      let vals = Array.init n (fun i -> Timeseries.rate ts ~chan i) in
      let sorted = Array.copy vals in
      Array.sort Float.compare sorted;
      let q p =
        if n = 0 then nan
        else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1) +. 0.5)))
      in
      let sum = Array.fold_left ( +. ) 0. vals in
      {
        s_name = name;
        s_mode =
          (match Timeseries.mode ts ~chan with
          | Timeseries.Cumulative -> "cumulative"
          | Timeseries.Level -> "level");
        s_windows = n;
        s_mean = (if n = 0 then nan else sum /. float_of_int n);
        s_max = (if n = 0 then nan else sorted.(n - 1));
        s_p50 = q 0.5;
        s_p99 = q 0.99;
        s_spark = sparkline vals;
      })
    (Timeseries.channels ts)

let incident_rows detect =
  List.map
    (fun (i : Detect.incident) ->
      {
        i_rule = i.Detect.in_rule;
        i_onset = i.Detect.in_onset;
        i_clear = i.Detect.in_clear;
        i_peak = i.Detect.in_peak;
        i_peak_at = i.Detect.in_peak_at;
        i_open = i.Detect.in_open;
      })
    (Detect.incidents detect)

let trace_jsonl ?node_name trace =
  if Trace.is_nop trace || Trace.length trace = 0 then None
  else begin
    let buf = Buffer.create 4096 in
    Trace.to_jsonl ?node_name trace buf;
    Some (Buffer.contents buf)
  end

(* --- merge -------------------------------------------------------------- *)

(* Fold sweep-cell counter snapshots in submission order (Pool.map returns
   results in that order), so the aggregate is deterministic across --jobs
   settings. *)
let merge_counters reports =
  List.fold_left (fun acc r -> Counters.merge_snaps acc r.counters) [] reports

(* --- JSON --------------------------------------------------------------- *)

let counters_json (snap : Counters.snap) =
  Export.Obj
    (List.map
       (fun (name, counts) ->
         let fields = ref [] in
         for i = Array.length counts - 1 downto 0 do
           if counts.(i) <> 0 then fields := (Event.name_of_int i, Export.Int counts.(i)) :: !fields
         done;
         (name, Export.Obj !fields))
       snap)

let qdisc_json q =
  Export.Obj
    [
      ("name", Export.String q.q_name);
      ("enqueued", Export.Int q.q_enqueued);
      ("dequeued", Export.Int q.q_dequeued);
      ("dropped", Export.Int q.q_dropped);
      ("bytes_enqueued", Export.Int q.q_bytes_enqueued);
      ("bytes_dequeued", Export.Int q.q_bytes_dequeued);
      ("bytes_dropped", Export.Int q.q_bytes_dropped);
      ("hwm_packets", Export.Int q.q_hwm);
      ("residual_packets", Export.Int q.q_residual_packets);
      ("residual_bytes", Export.Int q.q_residual_bytes);
    ]

let link_json l =
  Export.Obj
    [
      ("name", Export.String l.l_name);
      ("tx_packets", Export.Int l.l_tx_packets);
      ("tx_bytes", Export.Int l.l_tx_bytes);
      ("qdiscs", Export.List (List.map qdisc_json l.l_qdiscs));
    ]

let cache_json c =
  Export.Obj
    [
      ("router", Export.String c.c_router);
      ("size", Export.Int c.c_size);
      ("capacity", Export.Int c.c_capacity);
      ("evictions", Export.Int c.c_evictions);
      ("hwm", Export.Int c.c_hwm);
    ]

let profile_json p =
  Export.Obj
    [
      ("kind", Export.String p.p_kind);
      ("events", Export.Int p.p_events);
      ("wall_s", Export.Float p.p_wall_s);
    ]

let gauge_json g =
  Export.Obj
    [
      ("name", Export.String g.g_name);
      ("count", Export.Int g.g_count);
      ("mean", Export.number_or_null g.g_mean);
      ("max", Export.number_or_null g.g_max);
      ("p50", Export.number_or_null g.g_p50);
      ("p99", Export.number_or_null g.g_p99);
    ]

let partition_json p =
  Export.Obj [ ("label", Export.String p.pt_label); ("events", Export.Int p.pt_events) ]

let series_row_json s =
  Export.Obj
    [
      ("name", Export.String s.s_name);
      ("mode", Export.String s.s_mode);
      ("windows", Export.Int s.s_windows);
      ("mean", Export.number_or_null s.s_mean);
      ("max", Export.number_or_null s.s_max);
      ("p50", Export.number_or_null s.s_p50);
      ("p99", Export.number_or_null s.s_p99);
    ]

let incident_json i =
  Export.Obj
    [
      ("rule", Export.String i.i_rule);
      ("onset", Export.Float i.i_onset);
      ("clear", Export.number_or_null i.i_clear);
      ("peak", Export.number_or_null i.i_peak);
      ("peak_at", Export.Float i.i_peak_at);
      ("open", Export.Bool i.i_open);
    ]

let to_json t =
  Export.Obj
    ([
       ("counters", counters_json t.counters);
       ("links", Export.List (List.map link_json t.links));
       ("flow_caches", Export.List (List.map cache_json t.caches));
       ("profile", Export.List (List.map profile_json t.profile));
       ("gauges", Export.List (List.map gauge_json t.gauges));
     ]
    @ (if t.partitions = [] then []
       else [ ("partitions", Export.List (List.map partition_json t.partitions)) ])
    @ (if t.wall_s > 0. then [ ("wall_s", Export.Float t.wall_s) ] else [])
    @ (if t.series = [] then []
       else [ ("series", Export.List (List.map series_row_json t.series)) ])
    @ (match t.series_json with None -> [] | Some j -> [ ("telemetry", j) ])
    @
    if t.incidents = [] then []
    else [ ("incidents", Export.List (List.map incident_json t.incidents)) ])

let to_json_string t = Export.to_string_pretty (to_json t)

(* --- dashboard ---------------------------------------------------------- *)

let pp_counters fmt (snap : Counters.snap) =
  List.iter
    (fun (name, counts) ->
      let rows = ref [] in
      for i = Array.length counts - 1 downto 0 do
        if counts.(i) <> 0 then rows := (Event.name_of_int i, counts.(i)) :: !rows
      done;
      if !rows <> [] then begin
        let wname =
          List.fold_left (fun w (n, _) -> max w (String.length n)) 0 !rows
        in
        Format.fprintf fmt "== %s ==@." name;
        List.iter (fun (n, c) -> Format.fprintf fmt "  %-*s %10d@." wname n c) !rows
      end)
    snap

let pp_links fmt links =
  if links <> [] then begin
    Format.fprintf fmt "== links ==@.";
    List.iter
      (fun l ->
        Format.fprintf fmt "  %s: tx=%d (%dB)@." l.l_name l.l_tx_packets l.l_tx_bytes;
        List.iter
          (fun q ->
            Format.fprintf fmt "    %-20s enq=%-9d deq=%-9d drop=%-9d hwm=%-6d residual=%d@."
              q.q_name q.q_enqueued q.q_dequeued q.q_dropped q.q_hwm q.q_residual_packets)
          l.l_qdiscs)
      links
  end

let pp_caches fmt caches =
  if caches <> [] then begin
    Format.fprintf fmt "== flow caches ==@.";
    List.iter
      (fun c ->
        Format.fprintf fmt "  %s: size=%d/%d hwm=%d evictions=%d@." c.c_router c.c_size
          c.c_capacity c.c_hwm c.c_evictions)
      caches
  end

let pp_profile fmt profile =
  if profile <> [] then begin
    Format.fprintf fmt "== event loop ==@.";
    List.iter
      (fun p ->
        let ns = if p.p_events = 0 then 0. else 1e9 *. p.p_wall_s /. float_of_int p.p_events in
        Format.fprintf fmt "  %-14s %10d events %10.3f ms %8.0f ns/event@." p.p_kind p.p_events
          (1e3 *. p.p_wall_s) ns)
      profile
  end

(* The one stats line both gauge rows and interval-series rows render
   through, so the dashboard and [--series] agree on the format. *)
let pp_stat_line fmt ~count ~count_label ~mean ~max ~p50 ~p99 =
  Format.fprintf fmt "  %s=%d mean=%.2f max=%.0f p50=%.2f p99=%.2f@." count_label count mean max
    p50 p99

let pp_gauges fmt gauges =
  List.iter
    (fun g ->
      Format.fprintf fmt "== gauge %s ==@." g.g_name;
      pp_stat_line fmt ~count:g.g_count ~count_label:"samples" ~mean:g.g_mean ~max:g.g_max
        ~p50:g.g_p50 ~p99:g.g_p99;
      if g.g_render <> "" then
        String.split_on_char '\n' g.g_render
        |> List.iter (fun line -> if line <> "" then Format.fprintf fmt "  %s@." line))
    gauges

let pp_series fmt t =
  if t.series <> [] then begin
    Format.fprintf fmt "== telemetry (interval %gs) ==@." t.series_interval;
    List.iter
      (fun s ->
        Format.fprintf fmt "== series %s (%s%s) ==@." s.s_name s.s_mode
          (if s.s_mode = "cumulative" then ", per-second rates" else "");
        pp_stat_line fmt ~count:s.s_windows ~count_label:"windows" ~mean:s.s_mean ~max:s.s_max
          ~p50:s.s_p50 ~p99:s.s_p99;
        if s.s_spark <> "" then Format.fprintf fmt "  %s@." s.s_spark)
      t.series
  end

let pp_incidents fmt incidents =
  if incidents <> [] then begin
    Format.fprintf fmt "== incidents ==@.";
    List.iter
      (fun i ->
        if Float.is_nan i.i_clear then
          Format.fprintf fmt "  %-24s onset=%.3fs open peak=%.2f@%.3fs@." i.i_rule i.i_onset
            i.i_peak i.i_peak_at
        else
          Format.fprintf fmt "  %-24s onset=%.3fs clear=%.3fs%s peak=%.2f@%.3fs@." i.i_rule
            i.i_onset i.i_clear
            (if i.i_open then " (run end)" else "")
            i.i_peak i.i_peak_at)
      incidents
  end

(* Per-partition event counts plus overall throughput: the quick answer to
   "did the parallel run balance, and what did it buy". *)
let pp_partitions fmt t =
  if t.partitions <> [] || t.wall_s > 0. then begin
    Format.fprintf fmt "== event loop throughput ==@.";
    List.iter
      (fun p -> Format.fprintf fmt "  %-12s %12d events@." p.pt_label p.pt_events)
      t.partitions;
    let total = List.fold_left (fun acc p -> acc + p.pt_events) 0 t.partitions in
    if t.wall_s > 0. && total > 0 then
      Format.fprintf fmt "  %-12s %12d events %10.3f s %12.0f events/s@." "total" total t.wall_s
        (float_of_int total /. t.wall_s)
  end

let pp_dashboard fmt t =
  pp_counters fmt t.counters;
  pp_links fmt t.links;
  pp_caches fmt t.caches;
  pp_profile fmt t.profile;
  pp_gauges fmt t.gauges;
  pp_series fmt t;
  pp_incidents fmt t.incidents;
  pp_partitions fmt t
