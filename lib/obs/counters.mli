(** Preallocated per-router/interface counters over the {!Event} taxonomy.

    The zero-overhead contract: {!incr} is two unsafe operations on a
    preallocated int array — no allocation, no bounds check, no branch on
    an enable flag.  Code that may run unobserved holds the shared {!nop}
    instance, whose array absorbs increments and is never read; the
    datapath therefore never tests whether observability is on. *)

type t

val nop : t
(** The shared sink for disabled observability.  Never read its counts. *)

val create : name:string -> unit -> t
val is_nop : t -> bool
val name : t -> string

val incr : t -> Event.t -> unit
(** O(1), allocation-free, unsafe-indexed. *)

val add : t -> Event.t -> int -> unit
val get : t -> Event.t -> int

(** Raw cell read by [Event.to_int] index — allocation-free, for the
    telemetry tick path, which resolves the index once at registration. *)
val cell : t -> int -> int

val reset : t -> unit
val total : t -> int

(** {1 Registry}

    One registry per simulation run; instances are returned in creation
    order so every rendering/merge derived from a snapshot is
    deterministic. *)

type registry

val registry : unit -> registry
val register : registry -> name:string -> t
val registered : registry -> t list
val find : registry -> name:string -> t option

(** {1 Snapshots}

    Plain data safe to move across {!Pool} worker domains and to merge
    across sweep cells. *)

type snap = (string * int array) list
(** Counter arrays keyed by instance name, indexed by [Event.to_int]. *)

val snapshot : t -> string * int array
val snapshot_all : registry -> snap

val merge_snaps : snap -> snap -> snap
(** Pointwise sum by name; names only in the second operand append in
    order, so a left fold over sweep results in submission order yields a
    deterministic aggregate. *)
