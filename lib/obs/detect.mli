(** Online incident detection over {!Timeseries} intervals (DESIGN.md §15).

    A rule watches one channel through an EWMA with hysteresis: the
    smoothed signal must hold at or above [on] for [up] consecutive
    windows to open an incident and at or below [off] for [down]
    consecutive windows to clear it.  The gap between the two thresholds
    plus the consecutive-window counts is what prevents flapping — a
    signal oscillating between them yields one incident, not one per
    oscillation (property-tested).  Stepping allocates nothing except the
    incident record at onset. *)

type rule = {
  r_name : string;
  r_chan : string;
  r_signal : [ `Rate | `Value ];
  r_on : float;
  r_off : float;
  r_up : int;
  r_down : int;
  r_alpha : float;
}

val rule :
  ?signal:[ `Rate | `Value ] ->
  ?up:int ->
  ?down:int ->
  ?alpha:float ->
  name:string ->
  chan:string ->
  on:float ->
  off:float ->
  unit ->
  rule
(** Defaults: [signal = `Rate], [up = 1], [down = 2], [alpha = 0.5].
    Raises [Invalid_argument] unless [off <= on], [up, down >= 1] and
    [alpha] is in (0, 1]. *)

type incident = {
  in_rule : string;
  in_onset : float;  (** sim time of the opening window *)
  mutable in_clear : float;  (** NaN while open; run-end time if finalized open *)
  mutable in_peak : float;  (** extreme raw signal while active *)
  mutable in_peak_at : float;
  mutable in_open : bool;  (** never cleared before {!finish} *)
}

type t

val create : rules:rule list -> Timeseries.t -> t
(** Resolves each rule's channel; raises [Invalid_argument] on an unknown
    channel name. *)

val on_onset : t -> (incident -> unit) -> unit
(** Hook fired at each incident onset (the flight recorder's trigger). *)

val step : t -> unit
(** Consume the newest window; call once after every [Timeseries.tick]. *)

val finish : t -> time:float -> unit
(** Close incidents still active at run end ([in_clear = time],
    [in_open] stays true). *)

val incidents : t -> incident list
(** Onset order. *)

val engage_recover : t -> (float * float) option
(** [(first onset, last clear - first onset)] over all incidents — the
    chaos harness's measured engage/recover pair.  [None] without
    incidents. *)

val incident_json : incident -> Export.t
val to_json : t -> Export.t
